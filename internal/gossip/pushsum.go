package gossip

import (
	"context"
	"math"

	"filealloc/internal/protocol"
)

// Push-sum averaging (Kempe-style) with flooded extrema. Each tick a
// node halves its (value, weight) state and ships half to one neighbor
// chosen by a pure hash of (seed, epoch, round, tick, node) — both ends
// of every edge can evaluate the choice, so receivers know exactly which
// shares to wait for and the exchange needs no acknowledgements. The
// min/max/AND extrema flood to all neighbors every tick; flooding is
// idempotent and exact after diameter ticks, so every node reaches the
// identical termination decision in the same round. The share rides in
// the same coalesced frame as the target neighbor's extrema flood,
// saving one frame per node per tick.

// pickPeer deterministically chooses node's exchange target for a tick
// from its sorted alive neighbors, using a splitmix64-style mix so the
// choice is computable by any node that knows the schedule inputs.
func pickPeer(seed int64, epoch, round, tick, node int, neighbors []int) int {
	if len(neighbors) == 0 {
		return -1
	}
	z := uint64(seed)
	for _, v := range [...]uint64{uint64(epoch), uint64(round), uint64(tick), uint64(node)} {
		z += v + 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return neighbors[z%uint64(len(neighbors))]
}

// runGossip executes rounds of push-sum aggregation until the flooded
// termination condition holds, rounds run out, or the round deadline
// fires. Unlike the tree mode it is approximate: each node steps against
// its own estimate of the average marginal, and a multiplicative Σx
// repair against the push-sum mass estimate bounds feasibility drift.
func (e *engine) runGossip(ctx context.Context) error {
	neighbors := e.cfg.adj[e.id]
	havePrev := false
	prevEst := 0.0
	for round := 0; round < e.cfg.maxRounds; round++ {
		rctx, cancel := context.WithTimeout(ctx, e.cfg.timeout)
		st, err := e.gossipRound(rctx, round, neighbors, havePrev, prevEst)
		cancel()
		if err != nil {
			return err
		}
		converged := st.ext.BoundOK &&
			(!st.ext.HasInt || st.ext.IntMaxG-st.ext.IntMinG < e.cfg.epsilon)
		if converged {
			e.converged = true
			e.rounds = round
			return nil
		}
		// Interior nodes step toward the estimated average; the flooded
		// best-excluded node re-admits itself (the distributed analogue of
		// core.PlanStep's single re-admission per pass).
		if !math.IsNaN(st.est) && (st.interior || (st.ext.HasOut && st.ext.OutNode == e.id)) {
			e.x += e.cfg.alpha * (st.g - st.est)
			if e.x < 0 {
				e.x = 0
			}
		}
		if st.sumEst > 0 && !math.IsInf(st.sumEst, 0) && !math.IsNaN(st.sumEst) {
			e.x /= st.sumEst
		}
		e.rounds = round + 1
		havePrev = !math.IsNaN(st.est)
		prevEst = st.est
		if e.cfg.onRound != nil {
			e.cfg.onRound(round, e.x)
		}
	}
	return nil
}

// gossipState is what one push-sum round leaves behind.
type gossipState struct {
	est      float64 // estimated average marginal over interior nodes (NaN if no mass arrived)
	sumEst   float64 // estimated Σx over alive nodes
	ext      protocol.GossipExtrema
	g        float64
	interior bool
}

// gossipRound runs the configured number of ticks and returns the
// node's estimates and the flooded extrema.
func (e *engine) gossipRound(ctx context.Context, round int, neighbors []int, havePrev bool, prevEst float64) (gossipState, error) {
	var st gossipState
	g, err := e.cfg.model.Marginal(e.x)
	if err != nil {
		return st, err
	}
	st.g = g
	st.interior = e.x > boundaryTol
	ext := protocol.GossipExtrema{Node: e.id, OutNode: -1, BoundOK: true}
	if st.interior {
		ext.HasInt, ext.IntMinG, ext.IntMaxG = true, g, g
	} else {
		// Boundary KKT check: staying at zero is optimal iff the marginal
		// utility does not exceed the (previous round's) average beyond
		// the slack; with no estimate yet the node cannot certify.
		ext.BoundOK = havePrev && g <= prevEst+e.cfg.epsilon
		if havePrev && g > prevEst {
			ext.HasOut, ext.OutG, ext.OutNode = true, g, e.id
		}
	}
	var sgHi, sgLo, wa float64
	if st.interior {
		sgHi, wa = g, 1
	}
	sxHi, sxLo, wn := e.x, 0.0, 1.0
	for tick := 0; tick < e.cfg.ticks; tick++ {
		target := pickPeer(e.cfg.seed, e.cfg.epoch, round, tick, e.id, neighbors)
		var sharePayload []byte
		if target >= 0 {
			sgHi, sgLo, wa = sgHi/2, sgLo/2, wa/2
			sxHi, sxLo, wn = sxHi/2, sxLo/2, wn/2
			sharePayload, err = protocol.EncodeGossipShare(e.cfg.codec, protocol.GossipShare{
				Round: round, Tick: tick, Epoch: e.cfg.epoch, Node: e.id,
				SG: sgHi, SGC: sgLo, WA: wa,
				SX: sxHi, SXC: sxLo, WN: wn,
			})
			if err != nil {
				return st, err
			}
		}
		extMsg := ext
		extMsg.Round, extMsg.Tick, extMsg.Epoch = round, tick, e.cfg.epoch
		extPayload, err := protocol.EncodeGossipExtrema(e.cfg.codec, extMsg)
		if err != nil {
			return st, err
		}
		for _, nb := range neighbors {
			if nb == target {
				if err := e.ep.Send(ctx, nb, sharePayload); err != nil {
					return st, err
				}
			}
			if err := e.ep.Send(ctx, nb, extPayload); err != nil {
				return st, err
			}
		}
		if err := e.flush(ctx); err != nil {
			return st, err
		}
		shares, exts, err := e.collectTick(ctx, round, tick, neighbors)
		if err != nil {
			return st, err
		}
		// Fold in ascending sender order so the double-double bits are
		// reproducible run-to-run.
		for _, nb := range neighbors {
			if s, ok := shares[nb]; ok {
				sgHi, sgLo = ddAdd(sgHi, sgLo, s.SG, s.SGC)
				wa += s.WA
				sxHi, sxLo = ddAdd(sxHi, sxLo, s.SX, s.SXC)
				wn += s.WN
			}
			mergeExtrema(&ext, exts[nb])
		}
	}
	st.est = math.NaN()
	if wa > 0 {
		st.est = ddValue(sgHi, sgLo) / wa
	}
	st.sumEst = ddValue(sxHi, sxLo) / wn * float64(e.cfg.aliveCount)
	st.ext = ext
	return st, nil
}

// collectTick gathers the tick's expected messages: one extrema flood
// from every neighbor, plus one push-sum share from each neighbor whose
// hashed pick lands on this node. Duplicates are discarded (accepting a
// second copy of a share would double-count its mass); later ticks and
// rounds are buffered.
func (e *engine) collectTick(ctx context.Context, round, tick int, neighbors []int) (map[int]protocol.GossipShare, map[int]protocol.GossipExtrema, error) {
	wantShare := make(map[int]bool, len(neighbors))
	wanted := 0
	for _, nb := range neighbors {
		if pickPeer(e.cfg.seed, e.cfg.epoch, round, tick, nb, e.cfg.adj[nb]) == e.id {
			wantShare[nb] = true
			wanted++
		}
	}
	shares := make(map[int]protocol.GossipShare, wanted)
	exts := make(map[int]protocol.GossipExtrema, len(neighbors))
	take := func(from int, env protocol.Envelope) {
		if sh := env.GossipShare; sh != nil && sh.Round == round && sh.Tick == tick && wantShare[from] {
			if _, dup := shares[from]; !dup {
				shares[from] = *sh
			}
			return
		}
		if ex := env.GossipExtrema; ex != nil && ex.Round == round && ex.Tick == tick && containsInt(neighbors, from) {
			if _, dup := exts[from]; !dup {
				exts[from] = *ex
			}
		}
	}
	e.drainPending(round, tick, take)
	for len(shares) < wanted || len(exts) < len(neighbors) {
		from, env, err := e.recvEnv(ctx, round)
		if err != nil {
			return nil, nil, err
		}
		before := len(shares) + len(exts)
		take(from, env)
		if len(shares)+len(exts) == before {
			e.buffer(from, env, round, tick)
		}
	}
	return shares, exts, nil
}
