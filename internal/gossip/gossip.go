// Package gossip replaces the O(N²) broadcast exchange of the
// decentralized allocation protocol with O(N)-message aggregation over
// the access network graph. Each round of the paper's section 5.2
// algorithm only needs the *average* marginal utility over the active
// set (plus a handful of extrema for the active-set fixed point and the
// feasible-step ratio test) — a sum-and-count that combines
// associatively. Two aggregation schemes are provided:
//
//   - Tree (ModeTree): a deterministic BFS spanning tree over the alive
//     subgraph. Each pass flows partial aggregates up to the root and the
//     root's decision back down, 2(N−1) messages per pass, typically two
//     passes per round. Sums travel as double-double (compensated) pairs,
//     so the root's mean is the correctly rounded mean regardless of tree
//     shape — the resulting trajectory is bit-identical to the broadcast
//     reference whenever the broadcast's naive left-to-right sum happens
//     to round the same way, and KKT-certifiable otherwise.
//
//   - Gossip (ModeGossip): push-sum averaging. Each tick every node
//     halves its (value, weight) state and ships half to one
//     deterministically chosen neighbor, while min/max extrema flood to
//     all neighbors (idempotent, exact after diameter ticks, so every
//     node reaches the identical termination decision). The push-sum
//     share rides in the same coalesced frame as the extrema flood.
//
// Membership churn is handled by the cluster supervisor: when an
// injected crash kills a node mid-round, the survivors' round times out,
// the supervisor probes for crashed endpoints, renormalizes the
// surviving allocation mass, re-roots the tree over the alive set, and
// retries under a fresh epoch. Messages from stale epochs are discarded
// on receipt.
package gossip

import (
	"errors"
	"fmt"
)

// Mode selects the aggregation scheme.
type Mode int

const (
	// ModeTree aggregates over a BFS spanning tree (the default).
	ModeTree Mode = iota
	// ModeGossip aggregates by push-sum averaging with flooded extrema.
	ModeGossip
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTree:
		return "tree"
	case ModeGossip:
		return "gossip"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sentinel errors.
var (
	// ErrRoundTimeout is returned when a round's aggregation cannot
	// complete before its deadline — the loud failure mode for partitions
	// and silent loss. The cluster supervisor retries a bounded number of
	// epochs before surfacing it.
	ErrRoundTimeout = errors.New("gossip: round timed out")
	// ErrPartitioned is returned when the alive subgraph is disconnected,
	// so no spanning tree (and no converging gossip) exists.
	ErrPartitioned = errors.New("gossip: alive subgraph is partitioned")
	// ErrProtocol is returned on an aggregation-protocol violation, such
	// as an active-set fixed point that fails to settle or nodes
	// disagreeing on the round count.
	ErrProtocol = errors.New("gossip: protocol violation")
	// ErrUncertified is returned when a converged allocation fails its
	// KKT certification — a converged-but-wrong plan is never accepted
	// silently.
	ErrUncertified = errors.New("gossip: converged allocation failed KKT certification")
)

// boundaryTol mirrors core's boundary tolerance: allocations at or below
// it count as sitting on the non-negativity boundary.
const boundaryTol = 1e-12

// supportTol mirrors the serving layer's support threshold for KKT
// certification: fragments above it count as interior when deriving the
// multiplier q.
const supportTol = 1e-9
