package gossip

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"filealloc/internal/protocol"
)

func TestTwoSumIsErrorFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	exact := func(vs ...float64) *big.Float {
		sum := new(big.Float).SetPrec(300)
		for _, v := range vs {
			sum.Add(sum, new(big.Float).SetPrec(300).SetFloat64(v))
		}
		return sum
	}
	for i := 0; i < 1000; i++ {
		a := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20)
		b := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20)
		s, e := twoSum(a, b)
		if s != a+b {
			t.Fatalf("head %g != fl(%g+%g)", s, a, b)
		}
		// Error-free: s+e must equal a+b exactly, verified in big floats.
		if exact(s, e).Cmp(exact(a, b)) != 0 {
			t.Fatalf("twoSum(%g, %g) = (%g, %g) is not error-free", a, b, s, e)
		}
	}
}

// The double-double sum must be independent of association order: fold
// the same values left-to-right and in a balanced tree and compare bits.
func TestDDAddOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		vals := make([]float64, 257)
		for i := range vals {
			vals[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(60)-30)
		}
		var hi, lo float64
		for _, v := range vals {
			hi, lo = ddAdd(hi, lo, v, 0)
		}
		var tree func(lo, hi int) (float64, float64)
		tree = func(a, b int) (float64, float64) {
			if b-a == 1 {
				return vals[a], 0
			}
			m := (a + b) / 2
			lh, ll := tree(a, m)
			rh, rl := tree(m, b)
			return ddAdd(lh, ll, rh, rl)
		}
		th, tl := tree(0, len(vals))
		if ddValue(hi, lo) != ddValue(th, tl) {
			t.Fatalf("trial %d: sequential %g != tree %g", trial, ddValue(hi, lo), ddValue(th, tl))
		}
	}
}

func TestCombineAggregateCommutes(t *testing.T) {
	a := protocol.Aggregate{
		SumG: 1.5, SumH: -0.25, SumX: 0.5, Count: 2,
		MinG: -3, MaxG: -1,
		BoundCount: 1, BoundMinG: -3,
		OutNode: 4, OutG: -2.5,
		Changed: 1, RatioCount: 1, MinRatio: 0.7,
	}
	b := protocol.Aggregate{
		SumG: -0.5, SumH: -0.5, SumX: 0.5, Count: 1,
		MinG: -0.5, MaxG: -0.5,
		OutNode: 2, OutG: -2.5, // exact OutG tie: lower id must win
		RatioCount: 2, MinRatio: 0.4,
	}
	ab, ba := a, b
	combineAggregate(&ab, b)
	combineAggregate(&ba, a)
	if ab != ba {
		t.Fatalf("combine not commutative:\n a+b = %+v\n b+a = %+v", ab, ba)
	}
	if ab.Count != 3 || ab.MinG != -3 || ab.MaxG != -0.5 {
		t.Errorf("extrema wrong: %+v", ab)
	}
	if ab.OutNode != 2 {
		t.Errorf("OutNode = %d, want 2 (lower id wins the exact tie)", ab.OutNode)
	}
	if ab.BoundCount != 1 || ab.BoundMinG != -3 {
		t.Errorf("boundary fold wrong: %+v", ab)
	}
	if ab.RatioCount != 3 || ab.MinRatio != 0.4 {
		t.Errorf("ratio fold wrong: %+v", ab)
	}
	if ab.Changed != 1 {
		t.Errorf("Changed = %d, want 1", ab.Changed)
	}
}

func TestCombineAggregateEmptySides(t *testing.T) {
	// An all-excluded subtree contributes only its nomination; folding it
	// in must not disturb extrema validity.
	empty := protocol.Aggregate{OutNode: 7, OutG: -1.25}
	full := protocol.Aggregate{SumG: -2, SumX: 1, Count: 1, MinG: -2, MaxG: -2, OutNode: -1}
	acc := full
	combineAggregate(&acc, empty)
	if acc.Count != 1 || acc.MinG != -2 || acc.MaxG != -2 {
		t.Errorf("extrema corrupted by empty side: %+v", acc)
	}
	if acc.OutNode != 7 || acc.OutG != -1.25 {
		t.Errorf("nomination lost: %+v", acc)
	}
	acc = empty
	combineAggregate(&acc, full)
	if acc.Count != 1 || acc.MinG != -2 || acc.MaxG != -2 {
		t.Errorf("extrema not adopted from full side: %+v", acc)
	}
}

func TestMergeExtremaIdempotent(t *testing.T) {
	a := protocol.GossipExtrema{HasInt: true, IntMinG: -4, IntMaxG: -1, BoundOK: true, OutNode: -1}
	b := protocol.GossipExtrema{HasInt: true, IntMinG: -2, IntMaxG: -0.5, BoundOK: false,
		HasOut: true, OutG: -3, OutNode: 5}
	merged := a
	mergeExtrema(&merged, b)
	again := merged
	mergeExtrema(&again, b)
	if merged != again {
		t.Fatalf("merge not idempotent: %+v vs %+v", merged, again)
	}
	if merged.IntMinG != -4 || merged.IntMaxG != -0.5 || merged.BoundOK {
		t.Errorf("merge wrong: %+v", merged)
	}
	if !merged.HasOut || merged.OutNode != 5 {
		t.Errorf("nomination lost: %+v", merged)
	}
}

func TestPickPeerDeterministicAndInRange(t *testing.T) {
	neighbors := []int{3, 9, 12}
	seen := map[int]bool{}
	for tick := 0; tick < 64; tick++ {
		p := pickPeer(42, 0, 1, tick, 7, neighbors)
		if p != pickPeer(42, 0, 1, tick, 7, neighbors) {
			t.Fatal("pickPeer not deterministic")
		}
		if !containsInt(neighbors, p) {
			t.Fatalf("pick %d outside neighbor set", p)
		}
		seen[p] = true
	}
	if len(seen) != len(neighbors) {
		t.Errorf("64 ticks hit only %d of %d neighbors", len(seen), len(neighbors))
	}
	if pickPeer(42, 0, 0, 0, 0, nil) != -1 {
		t.Error("empty neighbor set must yield -1")
	}
}
