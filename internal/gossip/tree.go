package gossip

import (
	"fmt"
	"sort"

	"filealloc/internal/topology"
)

// Tree is a deterministic BFS spanning tree over the alive subgraph of
// an access network. The root is the lowest alive node id and neighbors
// are expanded in ascending order, so every node that knows the graph
// and the alive set derives the identical tree with no coordination.
type Tree struct {
	// Root is the aggregation root (lowest alive id).
	Root int
	// Parent maps node id to its tree parent; -1 for the root and for
	// dead nodes.
	Parent []int
	// Children maps node id to its tree children in ascending order.
	Children [][]int
	// Depth is the maximum distance from the root to any alive node.
	Depth int
}

// BuildTree constructs the spanning tree for graph g restricted to the
// alive set (nil means every node is alive). It returns ErrPartitioned
// if some alive node is unreachable from the root through alive nodes.
func BuildTree(g *topology.Graph, alive []bool) (*Tree, error) {
	n := g.NumNodes()
	if alive != nil && len(alive) != n {
		return nil, fmt.Errorf("gossip: alive mask has %d entries for %d nodes", len(alive), n)
	}
	isAlive := func(i int) bool { return alive == nil || alive[i] }
	root := -1
	total := 0
	for i := 0; i < n; i++ {
		if isAlive(i) {
			total++
			if root < 0 {
				root = i
			}
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("gossip: no alive nodes")
	}
	t := &Tree{
		Root:     root,
		Parent:   make([]int, n),
		Children: make([][]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	depth := make([]int, n)
	visited := make([]bool, n)
	visited[root] = true
	queue := []int{root}
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbs := append([]int(nil), g.Neighbors(u)...)
		sort.Ints(nbs)
		for _, v := range nbs {
			if !isAlive(v) || visited[v] {
				continue
			}
			visited[v] = true
			t.Parent[v] = u
			t.Children[u] = append(t.Children[u], v)
			depth[v] = depth[u] + 1
			if depth[v] > t.Depth {
				t.Depth = depth[v]
			}
			queue = append(queue, v)
			reached++
		}
	}
	if reached != total {
		return nil, fmt.Errorf("%w: reached %d of %d alive nodes from root %d",
			ErrPartitioned, reached, total, root)
	}
	return t, nil
}

// aliveAdjacency returns, for every alive node, its alive neighbors in
// ascending order — the shared schedule both sides of a push-sum
// exchange derive peer picks from. Entries for dead nodes are nil.
func aliveAdjacency(g *topology.Graph, alive []bool) [][]int {
	n := g.NumNodes()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if alive != nil && !alive[i] {
			continue
		}
		nbs := append([]int(nil), g.Neighbors(i)...)
		sort.Ints(nbs)
		kept := nbs[:0]
		for _, v := range nbs {
			if alive == nil || alive[v] {
				kept = append(kept, v)
			}
		}
		adj[i] = kept
	}
	return adj
}
