package gossip

import (
	"filealloc/internal/protocol"
)

// Double-double (compensated) arithmetic. A value is carried as an
// unevaluated pair hi+lo with |lo| ≤ ½ulp(hi); additions use the
// error-free TwoSum transformation, so a tree of additions accumulates
// error of order 2⁻¹⁰⁴ relative — the rounded result is the correctly
// rounded sum for any realistic operand count, independent of
// association order. That independence is what makes the tree mean
// deterministic across tree shapes and bit-comparable to the broadcast
// reference.

// twoSum returns the exact sum a+b as a rounded head s and exact tail e
// (Knuth's branch-free error-free transformation: s+e == a+b exactly).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	e = (a - (s - bv)) + (b - bv)
	return s, e
}

// ddAdd adds the double-double (bhi, blo) into (ahi, alo), returning a
// renormalized pair.
func ddAdd(ahi, alo, bhi, blo float64) (hi, lo float64) {
	s, e := twoSum(ahi, bhi)
	e += alo + blo
	return twoSum(s, e)
}

// ddValue rounds a double-double pair to the nearest float64.
func ddValue(hi, lo float64) float64 { return hi + lo }

// combineAggregate folds src into dst. The operation is commutative and
// associative up to double-double rounding (2⁻¹⁰⁴ relative), and every
// guarded field (extrema, best-excluded, ratio) combines exactly, so any
// fold order over the same contributions yields the same decision at the
// root; the engine still folds children in ascending id order to make
// the sum bits themselves reproducible run-to-run.
func combineAggregate(dst *protocol.Aggregate, src protocol.Aggregate) {
	dst.SumG, dst.SumGC = ddAdd(dst.SumG, dst.SumGC, src.SumG, src.SumGC)
	dst.SumH, dst.SumHC = ddAdd(dst.SumH, dst.SumHC, src.SumH, src.SumHC)
	dst.SumX, dst.SumXC = ddAdd(dst.SumX, dst.SumXC, src.SumX, src.SumXC)
	if src.Count > 0 {
		if dst.Count == 0 || src.MinG < dst.MinG {
			dst.MinG = src.MinG
		}
		if dst.Count == 0 || src.MaxG > dst.MaxG {
			dst.MaxG = src.MaxG
		}
	}
	if src.BoundCount > 0 {
		if dst.BoundCount == 0 || src.BoundMinG < dst.BoundMinG {
			dst.BoundMinG = src.BoundMinG
		}
		dst.BoundCount += src.BoundCount
	}
	// Best excluded node: highest marginal utility wins, exact ties go to
	// the lower id — the commutative equivalent of core.PlanStep's
	// first-strict-max scan in ascending node order.
	if src.OutNode >= 0 {
		if dst.OutNode < 0 || src.OutG > dst.OutG ||
			(src.OutG == dst.OutG && src.OutNode < dst.OutNode) {
			dst.OutNode, dst.OutG = src.OutNode, src.OutG
		}
	}
	if src.RatioCount > 0 {
		if dst.RatioCount == 0 || src.MinRatio < dst.MinRatio {
			dst.MinRatio = src.MinRatio
		}
		dst.RatioCount += src.RatioCount
	}
	dst.Changed += src.Changed
	dst.Count += src.Count
}

// mergeExtrema folds src into dst. Idempotent and commutative (min, max,
// AND), so re-delivered or duplicated floods cannot corrupt the state —
// after diameter ticks every node holds the exact global extrema.
func mergeExtrema(dst *protocol.GossipExtrema, src protocol.GossipExtrema) {
	if src.HasInt {
		if !dst.HasInt || src.IntMinG < dst.IntMinG {
			dst.IntMinG = src.IntMinG
		}
		if !dst.HasInt || src.IntMaxG > dst.IntMaxG {
			dst.IntMaxG = src.IntMaxG
		}
		dst.HasInt = true
	}
	dst.BoundOK = dst.BoundOK && src.BoundOK
	if src.HasOut {
		if !dst.HasOut || src.OutG > dst.OutG ||
			(src.OutG == dst.OutG && src.OutNode < dst.OutNode) {
			dst.OutG, dst.OutNode = src.OutG, src.OutNode
		}
		dst.HasOut = true
	}
}
