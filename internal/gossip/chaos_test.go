package gossip

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// chaosConfig builds a cluster config over a fixed 6-node topology so
// every chaos case and its clean reference share the same instance.
func chaosConfig(t *testing.T, mode Mode) ClusterConfig {
	t.Helper()
	g, err := topology.RandomConnected(6, 6, 0.1, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	cfg := ClusterConfig{
		Graph:  g,
		Models: testModels(6, rng),
		Init:   uniformInit(6),
		Mode:   mode,
		Alpha:  0.1, Epsilon: 1e-3, MaxRounds: 4000,
	}
	if mode == ModeGossip {
		cfg.Epsilon = 5e-3
		cfg.KKTTol = 0.05
	}
	return cfg
}

// TestChaosMatrix drives the cluster through every injectable fault
// class. The contract under chaos is absolute: a run either converges
// to a KKT-certified allocation or fails loudly with a typed error —
// it never hangs (each case runs under its own deadline) and never
// hands back an uncertified plan.
func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		rules []transport.FaultRule
		// tuning
		roundTimeout time.Duration
		retryBudget  int
		// expectations
		wantConverged bool // must converge (and therefore certify)
		wantIdentical bool // trajectory bit-identical to the fault-free run
		wantLoudErr   bool // must fail with ErrRoundTimeout
		wantDead      int  // node that must end up dead, -1 if none
		// firedStat proves the rule actually bit; a silently dead rule
		// would make the whole case vacuous.
		firedStat func(transport.FaultStats) int64
	}{
		{
			// Transient loss on the wire in early rounds: stalled rounds
			// time out, the supervisor retries, and once the loss window
			// passes the protocol runs clean to a certified fixed point.
			name: "drop",
			rules: []transport.FaultRule{{
				Kind: transport.FaultDrop, Direction: transport.DirSend,
				Probability: 0.04, FromRound: 1, ToRound: 6,
			}},
			roundTimeout: 200 * time.Millisecond, retryBudget: 8,
			wantConverged: true, wantDead: -1,
			firedStat: func(s transport.FaultStats) int64 { return s.SendDropped },
		},
		{
			// Latency changes nothing but the clock: the trajectory must
			// be bit-identical to the fault-free run.
			name: "delay",
			rules: []transport.FaultRule{{
				Kind: transport.FaultDelay, Delay: time.Millisecond,
			}},
			wantConverged: true, wantIdentical: true, wantDead: -1,
			firedStat: func(s transport.FaultStats) int64 { return s.SendDelayed + s.RecvDelayed },
		},
		{
			// Every frame delivered three times: the engines' staleness
			// filter must absorb the copies without perturbing a single bit.
			name: "duplicate",
			rules: []transport.FaultRule{{
				Kind: transport.FaultDuplicate, Direction: transport.DirRecv, Copies: 2,
			}},
			wantConverged: true, wantIdentical: true, wantDead: -1,
			firedStat: func(s transport.FaultStats) int64 { return s.RecvDuplicated },
		},
		{
			// Adjacent deliveries swapped: aggregation folds by sender id,
			// not arrival order, so reordering is invisible.
			name: "reorder",
			rules: []transport.FaultRule{{
				Kind: transport.FaultReorder, Direction: transport.DirRecv,
			}},
			wantConverged: true, wantIdentical: true, wantDead: -1,
			firedStat: func(s transport.FaultStats) int64 { return s.RecvReordered },
		},
		{
			// A clean bisection never heals: the run must fail loudly with
			// ErrRoundTimeout once the retry budget is spent, not hang.
			name: "partition",
			rules: []transport.FaultRule{
				{Kind: transport.FaultPartition, Nodes: []int{0, 1, 2}, Peers: []int{3, 4, 5}},
				{Kind: transport.FaultPartition, Nodes: []int{3, 4, 5}, Peers: []int{0, 1, 2}},
			},
			roundTimeout: 200 * time.Millisecond, retryBudget: 2,
			wantLoudErr: true, wantDead: -1,
		},
		{
			// A non-root node dies mid-protocol: the survivors re-root,
			// absorb its share and still certify.
			name: "crash",
			rules: []transport.FaultRule{{
				Kind: transport.FaultCrash, Nodes: []int{4}, FromRound: 3, ToRound: 4,
			}},
			roundTimeout:  2 * time.Second,
			wantConverged: true, wantDead: 4,
			firedStat: func(s transport.FaultStats) int64 { return s.Crashes },
		},
		{
			// Loss under the randomized exchange: push-sum ticks stall and
			// time out, retries ride through the window, the epidemic still
			// certifies.
			name: "gossip-drop",
			mode: ModeGossip,
			rules: []transport.FaultRule{{
				Kind: transport.FaultDrop, Direction: transport.DirSend,
				Probability: 0.001,
			}},
			roundTimeout: 300 * time.Millisecond, retryBudget: 8,
			wantConverged: true, wantDead: -1,
			firedStat: func(s transport.FaultStats) int64 { return s.SendDropped },
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()

			cfg := chaosConfig(t, tc.mode)
			cfg.RoundTimeout = tc.roundTimeout
			cfg.RetryBudget = tc.retryBudget
			cfg.Faults = &transport.FaultConfig{Seed: 77, Rules: tc.rules}
			res, err := RunCluster(ctx, cfg)

			// The universal invariant first: no silent uncertified success.
			if err == nil && res.Converged && !res.Certified {
				t.Fatal("converged run handed back an uncertified plan")
			}
			if tc.firedStat != nil && tc.firedStat(res.Faults) == 0 {
				t.Fatalf("fault rule never fired: %+v", res.Faults)
			}
			if tc.wantLoudErr {
				if !errors.Is(err, ErrRoundTimeout) {
					t.Fatalf("err = %v, want ErrRoundTimeout", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantConverged && (!res.Converged || !res.Certified) {
				t.Fatalf("converged=%v certified=%v after %d rounds / %d epochs",
					res.Converged, res.Certified, res.Rounds, res.Epochs)
			}
			sum := 0.0
			for _, x := range res.X {
				sum += x
			}
			tol := 1e-9
			if tc.mode == ModeGossip {
				tol = 0.02 // push-sum repairs feasibility approximately
			}
			if math.Abs(sum-1) > tol {
				t.Errorf("Σx = %.17g after chaos", sum)
			}
			if tc.wantDead >= 0 {
				if res.Alive[tc.wantDead] {
					t.Errorf("node %d should have crashed", tc.wantDead)
				}
				if res.X[tc.wantDead] != 0 {
					t.Errorf("dead node %d holds %.3g", tc.wantDead, res.X[tc.wantDead])
				}
				if res.Faults.Crashes == 0 {
					t.Error("fault stats recorded no crash")
				}
			}
			if tc.wantIdentical {
				clean, err := RunCluster(ctx, chaosConfig(t, tc.mode))
				if err != nil {
					t.Fatal(err)
				}
				if res.Rounds != clean.Rounds {
					t.Errorf("fault changed round count: %d vs clean %d", res.Rounds, clean.Rounds)
				}
				for i := range res.X {
					if res.X[i] != clean.X[i] {
						t.Errorf("node %d: %.17g under faults vs clean %.17g", i, res.X[i], clean.X[i])
					}
				}
			}
		})
	}
}
