package gossip

import (
	"context"
	"math"
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

// ulpsApart counts how many representable doubles separate a from b
// (0 = identical bits, 1 = adjacent floats, capped at 16).
func ulpsApart(a, b float64) int {
	if a == b {
		return 0
	}
	steps := 0
	x := a
	for steps < 16 {
		steps++
		x = math.Nextafter(x, b)
		if x == b {
			return steps
		}
	}
	return steps
}

// TestPropertyTreeMeanWithinOneUlp is the numeric headline: folding any
// tree shape of double-double partial aggregates yields a mean within
// one ulp of the exact (big-float) mean. 1000 random instances, each
// folding up to a thousand terms through a random recursive partition —
// the adversarial version of every spanning-tree shape BuildTree could
// produce.
func TestPropertyTreeMeanWithinOneUlp(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 100
	}
	for inst := 0; inst < instances; inst++ {
		rng := rand.New(rand.NewSource(int64(inst)))
		n := 2 + rng.Intn(999)
		gs := make([]float64, n)
		for i := range gs {
			// Marginal utilities live on wildly different scales when
			// queues approach saturation; spread exponents accordingly.
			gs[i] = -(0.1 + rng.Float64()) * math.Ldexp(1, rng.Intn(30))
		}
		var fold func(lo, hi int) (float64, float64)
		fold = func(lo, hi int) (float64, float64) {
			if hi-lo == 1 {
				return gs[lo], 0
			}
			cut := lo + 1 + rng.Intn(hi-lo-1)
			ah, al := fold(lo, cut)
			bh, bl := fold(cut, hi)
			return ddAdd(ah, al, bh, bl)
		}
		hi, lo := fold(0, n)
		got := ddValue(hi, lo) / float64(n)

		exact := new(big.Float).SetPrec(200)
		for _, g := range gs {
			exact.Add(exact, new(big.Float).SetPrec(200).SetFloat64(g))
		}
		exact.Quo(exact, new(big.Float).SetPrec(200).SetInt64(int64(n)))
		want, _ := exact.Float64()
		if d := ulpsApart(got, want); d > 1 {
			t.Fatalf("instance %d (n=%d): tree mean %g is %d ulps from exact %g", inst, n, got, d, want)
		}
	}
}

// TestPropertyPushSumMassConserved checks the gossip mode's invariant:
// however the hashed exchange schedule shuffles shares around, the
// total double-double mass over all nodes never moves by more than one
// ulp. Serial simulation of the tick dynamics, 1000 random instances.
func TestPropertyPushSumMassConserved(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 100
	}
	for inst := 0; inst < instances; inst++ {
		rng := rand.New(rand.NewSource(int64(1_000_000 + inst)))
		n := 4 + rng.Intn(29)
		g, err := topology.RandomConnected(n, n/2, 0.1, 1, int64(inst))
		if err != nil {
			t.Fatal(err)
		}
		adj := aliveAdjacency(g, nil)
		his := make([]float64, n)
		los := make([]float64, n)
		for i := range his {
			his[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(24))
		}
		total := func() float64 {
			var th, tl float64
			for i := range his {
				th, tl = ddAdd(th, tl, his[i], los[i])
			}
			return ddValue(th, tl)
		}
		want := total()
		for tick := 0; tick < 30; tick++ {
			// All sends leave from pre-tick state, like a real tick.
			type share struct {
				to     int
				hi, lo float64
			}
			shares := make([]share, 0, n)
			for i := 0; i < n; i++ {
				to := pickPeer(int64(inst), 0, 0, tick, i, adj[i])
				his[i], los[i] = his[i]/2, los[i]/2
				shares = append(shares, share{to: to, hi: his[i], lo: los[i]})
			}
			for _, s := range shares {
				his[s.to], los[s.to] = ddAdd(his[s.to], los[s.to], s.hi, s.lo)
			}
			if d := ulpsApart(total(), want); d > 1 {
				t.Fatalf("instance %d (n=%d): mass drifted %d ulps by tick %d", inst, n, d, tick)
			}
		}
	}
}

// TestPropertyTreeTrajectoryMatchesBroadcast runs full tree-mode
// clusters against the broadcast reference over random topologies and
// models. Every converged run must be certified (RunCluster enforces
// it); where the double-double mean rounds identically to the
// reference's naive sum — the common case — the entire trajectory,
// round count and final allocation are bit-identical. Per-round
// invariants are pinned along the way: Σx stays 1 and the utility never
// decreases.
func TestPropertyTreeTrajectoryMatchesBroadcast(t *testing.T) {
	instances := 40
	if testing.Short() {
		instances = 8
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	identical := 0
	for inst := 0; inst < instances; inst++ {
		rng := rand.New(rand.NewSource(int64(inst)))
		n := 2 + rng.Intn(7)
		g, err := topology.RandomConnected(n, rng.Intn(n+1), 0.1, 1, int64(inst))
		if err != nil {
			t.Fatal(err)
		}
		models := testModels(n, rng)
		init := uniformInit(n)

		// Collect the trajectory: one allocation vector per round.
		var mu sync.Mutex
		traj := map[int][]float64{}
		onRound := func(epoch, round, node int, x float64) {
			mu.Lock()
			defer mu.Unlock()
			row := traj[round]
			if row == nil {
				row = make([]float64, n)
				for i := range row {
					row[i] = math.NaN()
				}
				traj[round] = row
			}
			row[node] = x
		}

		alpha := 0.03 // inside the Theorem-2 monotonicity bound for these models
		res, err := RunCluster(ctx, ClusterConfig{
			Graph:  g,
			Models: models,
			Init:   init,
			Alpha:  alpha, Epsilon: 1e-3, MaxRounds: 4000,
			OnRound: onRound,
		})
		if err != nil {
			t.Fatalf("instance %d (n=%d): %v", inst, n, err)
		}
		if !res.Converged {
			t.Fatalf("instance %d (n=%d): no convergence in %d rounds", inst, n, res.Rounds)
		}
		if !res.Certified {
			t.Fatalf("instance %d (n=%d): converged but uncertified", inst, n)
		}

		ref, err := agent.RunCluster(ctx, agent.ClusterConfig{
			Models: models,
			Init:   init,
			Alpha:  alpha, Epsilon: 1e-3, MaxRounds: 4000,
			Mode: agent.Broadcast,
		})
		if err != nil {
			t.Fatalf("instance %d: broadcast reference: %v", inst, err)
		}
		// The tree's double-double mean is at least as accurate as the
		// reference's naive sum, so the trajectories can part ways only in
		// the last ulp of the shared average — never in the round count,
		// and never beyond rounding noise in the allocation.
		if res.Rounds != ref.Rounds {
			t.Fatalf("instance %d (n=%d): tree took %d rounds, broadcast %d", inst, n, res.Rounds, ref.Rounds)
		}
		same := true
		for i := 0; i < n; i++ {
			if d := math.Abs(res.X[i] - ref.X[i]); d > 1e-12 {
				t.Fatalf("instance %d node %d: tree %.17g vs broadcast %.17g", inst, i, res.X[i], ref.X[i])
			}
			same = same && res.X[i] == ref.X[i]
		}
		if same {
			identical++
		}
		if n == 2 && !same {
			// Two terms sum exactly in both schemes; any divergence here is
			// a real mirroring bug, not rounding.
			t.Fatalf("instance %d (n=2): allocations differ where sums are exact", inst)
		}

		// Per-round invariants over the recorded trajectory.
		access := make([]float64, n)
		rates := make([]float64, n)
		for i, m := range models {
			access[i] = m.AccessCost
			rates[i] = m.ServiceRate
		}
		sf, err := costmodel.NewSingleFile(access, rates, models[0].Lambda, models[0].K)
		if err != nil {
			t.Fatal(err)
		}
		prevU := math.Inf(-1)
		if u, err := sf.Utility(init); err == nil {
			prevU = u
		}
		for round := 0; round < res.Rounds; round++ {
			row, ok := traj[round]
			if !ok {
				t.Fatalf("instance %d: round %d missing from trajectory", inst, round)
			}
			sum := 0.0
			for node, x := range row {
				if math.IsNaN(x) {
					t.Fatalf("instance %d: round %d missing node %d", inst, round, node)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("instance %d: round %d has Σx = %.17g", inst, round, sum)
			}
			u, err := sf.Utility(row)
			if err != nil {
				t.Fatalf("instance %d: round %d utility: %v", inst, round, err)
			}
			if u < prevU-1e-9 {
				t.Fatalf("instance %d: utility fell %.3g at round %d", inst, prevU-u, round)
			}
			prevU = u
		}
	}
	// A healthy fraction of instances must be bit-for-bit identical end to
	// end, so a regression in the mirroring (wrong drop order, wrong
	// tie-break) cannot hide behind the certified-fallback path.
	if identical*8 < instances {
		t.Errorf("only %d/%d instances bit-identical to broadcast", identical, instances)
	}
}
