package gossip

import (
	"errors"
	"reflect"
	"testing"

	"filealloc/internal/topology"
)

func TestBuildTreeRing(t *testing.T) {
	g, err := topology.Ring(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 0 {
		t.Errorf("root = %d, want 0", tree.Root)
	}
	// BFS from 0 over a 6-ring: children of 0 are its two neighbors.
	if want := []int{1, 5}; !reflect.DeepEqual(tree.Children[0], want) {
		t.Errorf("children of root = %v, want %v", tree.Children[0], want)
	}
	if tree.Parent[0] != -1 {
		t.Errorf("root parent = %d, want -1", tree.Parent[0])
	}
	if tree.Depth != 3 {
		t.Errorf("depth = %d, want 3 (opposite side of a 6-ring)", tree.Depth)
	}
	// Every non-root node has a parent and appears in its parent's children.
	for v := 1; v < 6; v++ {
		p := tree.Parent[v]
		if p < 0 {
			t.Fatalf("node %d has no parent", v)
		}
		if !containsInt(tree.Children[p], v) {
			t.Errorf("node %d missing from children of %d", v, p)
		}
	}
}

func TestBuildTreeRerootsAfterDeath(t *testing.T) {
	g, err := topology.Ring(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	alive := []bool{false, true, true, true, true}
	tree, err := BuildTree(g, alive)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 1 {
		t.Errorf("root = %d, want 1 (lowest alive)", tree.Root)
	}
	// Node 0 is dead: the ring 1-2-3-4 is now a path (1 and 4 lost their
	// common neighbor), so the tree is the chain 1-2-3-4.
	if tree.Parent[0] != -1 || len(tree.Children[0]) != 0 {
		t.Errorf("dead node kept tree links: parent=%d children=%v", tree.Parent[0], tree.Children[0])
	}
	if tree.Depth != 3 {
		t.Errorf("depth = %d, want 3 (chain of four)", tree.Depth)
	}
}

func TestBuildTreePartitionDetected(t *testing.T) {
	// A path 0-1-2: killing the middle node splits {0} from {2}.
	g := topology.New(3)
	if err := g.AddBidirectional(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTree(g, []bool{true, false, true}); !errors.Is(err, ErrPartitioned) {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
}

func TestAliveAdjacencyFiltersDead(t *testing.T) {
	g, err := topology.Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	adj := aliveAdjacency(g, []bool{true, true, false, true})
	if want := []int{1, 3}; !reflect.DeepEqual(adj[0], want) {
		t.Errorf("adj[0] = %v, want %v", adj[0], want)
	}
	if want := []int{0}; !reflect.DeepEqual(adj[1], want) {
		t.Errorf("adj[1] = %v, want %v (dead neighbor 2 filtered)", adj[1], want)
	}
	if adj[2] != nil {
		t.Errorf("dead node has adjacency %v", adj[2])
	}
}
