package gossip

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/metrics"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// testModels builds n stable local models with varied costs and rates.
func testModels(n int, rng *rand.Rand) []agent.LocalModel {
	models := make([]agent.LocalModel, n)
	for i := range models {
		models[i] = agent.LocalModel{
			AccessCost:  0.5 + 2*rng.Float64(),
			ServiceRate: 1.5 + rng.Float64(),
			Lambda:      1,
			K:           1,
		}
	}
	return models
}

func uniformInit(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1 / float64(n)
	}
	return xs
}

func TestTreeClusterMatchesBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := topology.RandomConnected(8, 5, 0.1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	models := testModels(8, rng)
	init := uniformInit(8)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	res, err := RunCluster(ctx, ClusterConfig{
		Graph:  g,
		Models: models,
		Init:   init,
		Alpha:  0.1, Epsilon: 1e-4, MaxRounds: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Certified {
		t.Fatalf("converged=%v certified=%v, want both", res.Converged, res.Certified)
	}
	sum := 0.0
	for _, x := range res.X {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σx = %.17g, want 1", sum)
	}

	ref, err := agent.RunCluster(ctx, agent.ClusterConfig{
		Models: models,
		Init:   init,
		Alpha:  0.1, Epsilon: 1e-4, MaxRounds: 5000,
		Mode: agent.Broadcast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("broadcast reference did not converge")
	}
	for i := range res.X {
		if math.Abs(res.X[i]-ref.X[i]) > 1e-9 {
			t.Errorf("node %d: tree %.17g vs broadcast %.17g", i, res.X[i], ref.X[i])
		}
	}
	if res.Rounds != ref.Rounds {
		t.Errorf("tree took %d rounds, broadcast %d", res.Rounds, ref.Rounds)
	}

	// The message bill is the point of the exercise: a tree round costs
	// passes·2·(N−1) messages. Interior rounds take two passes (aggregate
	// + confirm); rounds with boundary drop/readmit churn take a few
	// more, but the count stays O(N) per round regardless of N.
	perRound := res.Bill.MessagesPerRound()
	if limit := float64(10 * (8 - 1)); perRound > limit {
		t.Errorf("tree bill %.1f messages/round exceeds %g", perRound, limit)
	}
	if bc := float64(BroadcastMessages(8)); perRound >= bc {
		t.Errorf("tree bill %.1f not below broadcast %g", perRound, bc)
	}
}

func TestTreeClusterJSONWireMatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := topology.Ring(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	models := testModels(5, rng)
	ctx := context.Background()
	run := func(json bool) ClusterResult {
		t.Helper()
		res, err := RunCluster(ctx, ClusterConfig{
			Graph:  g,
			Models: models,
			Init:   uniformInit(5),
			Alpha:  0.1, Epsilon: 1e-3, MaxRounds: 3000,
			JSONWire: json,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bin, jsn := run(false), run(true)
	for i := range bin.X {
		if bin.X[i] != jsn.X[i] {
			t.Errorf("node %d: binary %.17g != json %.17g", i, bin.X[i], jsn.X[i])
		}
	}
	if bin.Rounds != jsn.Rounds || bin.Converged != jsn.Converged {
		t.Errorf("wire format changed the trajectory: %+v vs %+v", bin, jsn)
	}
	if bin.Bill.Bytes >= jsn.Bill.Bytes {
		t.Errorf("binary bill %d bytes not below JSON %d", bin.Bill.Bytes, jsn.Bill.Bytes)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	g := topology.New(1)
	res, err := RunCluster(context.Background(), ClusterConfig{
		Graph:  g,
		Models: []agent.LocalModel{{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1}},
		Init:   []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Certified {
		t.Fatalf("converged=%v certified=%v", res.Converged, res.Certified)
	}
	if res.X[0] != 1 || res.Bill.Messages != 0 {
		t.Errorf("X=%v messages=%d, want the whole file and silence", res.X, res.Bill.Messages)
	}
}

func TestGossipModeConvergesCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := topology.RandomConnected(10, 12, 0.1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	res, err := RunCluster(context.Background(), ClusterConfig{
		Graph:  g,
		Models: testModels(10, rng),
		Init:   uniformInit(10),
		Mode:   ModeGossip,
		Alpha:  0.1, Epsilon: 5e-3, MaxRounds: 4000,
		KKTTol:  0.05,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Certified {
		t.Fatalf("converged=%v certified=%v rounds=%d", res.Converged, res.Certified, res.Rounds)
	}
	sum := 0.0
	for _, x := range res.X {
		sum += x
	}
	// Push-sum feasibility repair is approximate; the drift must stay
	// bounded well inside the repair's own tolerance.
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("Σx = %.6f drifted beyond the repair bound", sum)
	}
	// Coalescing must have folded shares into extrema frames.
	if res.Bill.Frames >= res.Bill.Messages {
		t.Errorf("no coalescing: %d frames for %d messages", res.Bill.Frames, res.Bill.Messages)
	}
}

func TestClusterChurnRerootsAndCertifies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := topology.RandomConnected(8, 8, 0.1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(context.Background(), ClusterConfig{
		Graph:  g,
		Models: testModels(8, rng),
		Init:   uniformInit(8),
		Alpha:  0.1, Epsilon: 1e-3, MaxRounds: 5000,
		RoundTimeout: 2 * time.Second,
		Faults: &transport.FaultConfig{
			Seed: 5,
			Rules: []transport.FaultRule{
				// The root dies mid-protocol: the hardest churn case, the
				// whole tree re-roots around the survivor set.
				{Kind: transport.FaultCrash, Nodes: []int{0}, FromRound: 2, ToRound: 3},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive[0] {
		t.Fatal("crashed root still marked alive")
	}
	if res.Epochs < 2 {
		t.Errorf("epochs = %d, want ≥ 2 (churn forces a new epoch)", res.Epochs)
	}
	if !res.Converged || !res.Certified {
		t.Fatalf("converged=%v certified=%v after churn", res.Converged, res.Certified)
	}
	if res.X[0] != 0 {
		t.Errorf("dead node still holds %.3g of the file", res.X[0])
	}
	sum := 0.0
	for _, x := range res.X {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("survivor mass Σx = %.17g, want 1", sum)
	}
	if res.Faults.Crashes == 0 {
		t.Error("fault stats recorded no crash")
	}
}

func TestClusterPartitionFailsLoudly(t *testing.T) {
	g, err := topology.Ring(6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err = RunCluster(ctx, ClusterConfig{
		Graph:  g,
		Models: testModels(6, rng),
		Init:   uniformInit(6),
		Alpha:  0.1, Epsilon: 1e-3, MaxRounds: 100,
		RoundTimeout: 300 * time.Millisecond,
		Faults: &transport.FaultConfig{
			Rules: []transport.FaultRule{
				// Black-hole everything between the two halves, both ways.
				{Kind: transport.FaultPartition, Nodes: []int{0, 1, 2}, Peers: []int{3, 4, 5}},
				{Kind: transport.FaultPartition, Nodes: []int{3, 4, 5}, Peers: []int{0, 1, 2}},
			},
		},
	})
	if !errors.Is(err, ErrRoundTimeout) {
		t.Fatalf("err = %v, want ErrRoundTimeout", err)
	}
}
