package gossip

import (
	"context"
	"errors"
	"fmt"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// nodeConfig is the per-node slice of a cluster run for one epoch. The
// supervisor fills it from ClusterConfig; all fields are required.
type nodeConfig struct {
	endpoint   transport.Endpoint
	model      agent.LocalModel
	x          float64
	alpha      float64
	epsilon    float64
	maxRounds  int
	mode       Mode
	epoch      int
	timeout    time.Duration
	codec      protocol.Codec
	tree       *Tree
	adj        [][]int
	aliveCount int
	seed       int64
	ticks      int
	onRound    func(round int, x float64)
}

// nodeOutcome is what one node's engine reports back. X is valid even
// when the run erred — survivors of a churn event hand their current
// fragment back to the supervisor for renormalization.
type nodeOutcome struct {
	X         float64
	Rounds    int
	Converged bool
	Stats     transport.CoalesceStats
}

// recvMsg is a decoded message buffered for a later round, pass or tick.
type recvMsg struct {
	from int
	env  protocol.Envelope
}

// engine drives one node through one epoch of rounds.
type engine struct {
	cfg       nodeConfig
	id        int
	ep        *transport.Coalescer
	x         float64
	rounds    int
	converged bool
	pending   []recvMsg
}

// runNode executes one node for one epoch and reports its outcome.
func runNode(ctx context.Context, cfg nodeConfig) (nodeOutcome, error) {
	e := &engine{
		cfg: cfg,
		id:  cfg.endpoint.ID(),
		ep:  transport.NewCoalescer(cfg.endpoint),
		x:   cfg.x,
	}
	var err error
	switch cfg.mode {
	case ModeGossip:
		err = e.runGossip(ctx)
	default:
		err = e.runTree(ctx)
	}
	return nodeOutcome{
		X:         e.x,
		Rounds:    e.rounds,
		Converged: e.converged,
		Stats:     e.ep.Stats(),
	}, err
}

// runTree executes rounds of the tree-aggregation protocol until
// convergence, a degenerate (no-op) step, round exhaustion, or failure.
// The exit structure mirrors agent.runBroadcast exactly: convergence is
// checked before the no-op exit, and both happen before the step is
// applied, so e.rounds counts applied steps just like Outcome.Rounds.
func (e *engine) runTree(ctx context.Context) error {
	parent := e.cfg.tree.Parent[e.id]
	children := e.cfg.tree.Children[e.id]
	for round := 0; round < e.cfg.maxRounds; round++ {
		rctx, cancel := context.WithTimeout(ctx, e.cfg.timeout)
		final, g, active, err := e.treeRound(rctx, round, parent, children)
		cancel()
		if err != nil {
			return err
		}
		if final.Converged {
			e.converged = true
			e.rounds = round
			return nil
		}
		if final.NoOp {
			e.rounds = round
			return nil
		}
		if active {
			d := e.cfg.alpha * (g - final.Avg)
			d *= final.Truncation
			e.x += d
			if e.x < 0 && e.x > -1e-9 {
				e.x = 0
			}
		}
		e.rounds = round + 1
		if e.cfg.onRound != nil {
			e.cfg.onRound(round, e.x)
		}
	}
	return nil
}

// maxPassesSlack bounds the active-set fixed point: core.PlanStep's loop
// provably settles within ~2·N passes (each pass drops ≥1 node or
// readmits exactly one, and a readmitted node is never dropped again in
// the same round); anything beyond that is a protocol bug, not slowness.
const maxPassesSlack = 8

// treeRound runs the multi-pass aggregation for one round and returns
// the root's final decision plus this node's local marginal and active
// flag at the fixed point.
func (e *engine) treeRound(ctx context.Context, round, parent int, children []int) (protocol.AggDown, float64, bool, error) {
	g, err := e.cfg.model.Marginal(e.x)
	if err != nil {
		return protocol.AggDown{}, 0, false, err
	}
	h, err := e.cfg.model.Curvature(e.x)
	if err != nil {
		return protocol.AggDown{}, 0, false, err
	}
	active := true
	changed := false
	havePrev := false
	prevAvg := 0.0
	for pass := 0; ; pass++ {
		if pass > 2*e.cfg.aliveCount+maxPassesSlack {
			return protocol.AggDown{}, 0, false,
				fmt.Errorf("%w: active-set fixed point did not settle in %d passes (round %d)",
					ErrProtocol, pass, round)
		}
		agg := e.localAggregate(g, h, active, changed, havePrev, prevAvg)
		if err := e.collectUps(ctx, round, pass, children, &agg); err != nil {
			return protocol.AggDown{}, 0, false, err
		}
		var down protocol.AggDown
		if parent < 0 {
			down = decide(agg, round, pass, e.cfg.epoch, e.cfg.epsilon)
		} else {
			up, err := protocol.EncodeAggUp(e.cfg.codec, protocol.AggUp{
				Round: round, Pass: pass, Epoch: e.cfg.epoch, Node: e.id, Agg: agg,
			})
			if err != nil {
				return protocol.AggDown{}, 0, false, err
			}
			if err := e.post(ctx, parent, up); err != nil {
				return protocol.AggDown{}, 0, false, err
			}
			down, err = e.waitDown(ctx, round, pass, parent)
			if err != nil {
				return protocol.AggDown{}, 0, false, err
			}
		}
		if len(children) > 0 {
			fwd, err := protocol.EncodeAggDown(e.cfg.codec, down)
			if err != nil {
				return protocol.AggDown{}, 0, false, err
			}
			for _, c := range children {
				if err := e.ep.Send(ctx, c, fwd); err != nil {
					return protocol.AggDown{}, 0, false, err
				}
			}
			if err := e.flush(ctx); err != nil {
				return protocol.AggDown{}, 0, false, err
			}
		}
		if down.Final {
			return down, g, active, nil
		}
		was := active
		if down.Drop {
			if active && e.x <= boundaryTol && g <= down.Avg {
				active = false
			}
		} else if down.Readmit == e.id {
			active = true
		}
		changed = active != was
		prevAvg, havePrev = down.Avg, true
	}
}

// localAggregate builds this node's leaf contribution for one pass.
func (e *engine) localAggregate(g, h float64, active, changed, havePrev bool, prevAvg float64) protocol.Aggregate {
	agg := protocol.Aggregate{OutNode: -1, SumX: e.x}
	if changed {
		agg.Changed = 1
	}
	if !active {
		// Excluded nodes only nominate themselves for re-admission.
		agg.OutNode, agg.OutG = e.id, g
		return agg
	}
	agg.SumG = g
	agg.SumH = h
	agg.Count = 1
	agg.MinG, agg.MaxG = g, g
	if e.x <= boundaryTol {
		agg.BoundCount = 1
		agg.BoundMinG = g
	}
	if havePrev {
		// Feasible-direction ratio, computed exactly as core.PlanStep
		// does so the truncation factor matches the broadcast reference
		// bit for bit: d := α·(g − avg); if d < 0 then ratio = x / −d.
		if d := e.cfg.alpha * (g - prevAvg); d < 0 {
			agg.RatioCount = 1
			agg.MinRatio = e.x / -d
		}
	}
	return agg
}

// decide is the root's per-pass decision over the combined aggregate. It
// reproduces core.PlanStep's active-set loop one pass at a time: drop
// boundary shrinkers first, else readmit the best excluded node, else —
// once a pass confirms the set is stable — finalize with the ratio test
// computed against an average the whole tree has already seen. Pass 0
// can never finalize: its aggregate carries no ratio data because no
// average had been broadcast yet.
func decide(agg protocol.Aggregate, round, pass, epoch int, epsilon float64) protocol.AggDown {
	down := protocol.AggDown{
		Round: round, Pass: pass, Epoch: epoch,
		Readmit: -1, Truncation: 1,
	}
	if agg.Count == 0 {
		// Every node dropped to the boundary: the step moves nothing and
		// the spread over an empty set is zero — the broadcast reference
		// reports convergence here (Avg stays 0 for JSON-safety; no node
		// reads it on this path).
		down.Final, down.Converged, down.NoOp = true, true, true
		return down
	}
	avg := ddValue(agg.SumG, agg.SumGC) / float64(agg.Count)
	down.Avg = avg
	down.Count = agg.Count
	if agg.Count == 1 {
		// A singleton active set is a no-op step with zero spread; the
		// broadcast loop's convergence check fires before its no-op exit,
		// so this finalizes as converged (core.PlanStep returns before
		// drop/readmit when one node remains, hence no fixed-point wait).
		down.Final, down.Converged, down.NoOp = true, true, true
		return down
	}
	if agg.BoundCount > 0 && agg.BoundMinG <= avg {
		down.Drop = true
		return down
	}
	if agg.OutNode >= 0 && agg.OutG > avg {
		down.Readmit = agg.OutNode
		return down
	}
	if pass == 0 || agg.Changed != 0 {
		// The set just changed (or no average was out yet), so this
		// pass's ratio data was computed against a stale average; run one
		// confirming pass. With an unchanged set the next aggregate's sum
		// is bit-identical, so the confirming average equals this one.
		return down
	}
	if agg.RatioCount > 0 && agg.MinRatio < 1 {
		down.Truncation = agg.MinRatio
	}
	down.Final = true
	down.Spread = agg.MaxG - agg.MinG
	down.Converged = down.Spread < epsilon
	return down
}

// collectUps gathers one AggUp from every child for (round, pass) and
// folds them into acc in ascending child order. Messages for later
// rounds/passes are buffered; stale ones and duplicates are discarded.
func (e *engine) collectUps(ctx context.Context, round, pass int, children []int, acc *protocol.Aggregate) error {
	if len(children) == 0 {
		return nil
	}
	got := make(map[int]protocol.Aggregate, len(children))
	take := func(from int, env protocol.Envelope) {
		up := env.AggUp
		if up == nil || up.Round != round || up.Pass != pass || !containsInt(children, from) {
			return
		}
		if _, dup := got[from]; !dup {
			got[from] = up.Agg
		}
	}
	e.drainPending(round, pass, take)
	for len(got) < len(children) {
		from, env, err := e.recvEnv(ctx, round)
		if err != nil {
			return err
		}
		before := len(got)
		take(from, env)
		if len(got) == before {
			e.buffer(from, env, round, pass)
		}
	}
	for _, c := range children {
		combineAggregate(acc, got[c])
	}
	return nil
}

// waitDown blocks until the parent's AggDown for (round, pass) arrives.
func (e *engine) waitDown(ctx context.Context, round, pass, parent int) (protocol.AggDown, error) {
	var found *protocol.AggDown
	take := func(from int, env protocol.Envelope) {
		d := env.AggDown
		if found == nil && d != nil && d.Round == round && d.Pass == pass && from == parent {
			found = d
		}
	}
	e.drainPending(round, pass, take)
	for found == nil {
		from, env, err := e.recvEnv(ctx, round)
		if err != nil {
			return protocol.AggDown{}, err
		}
		before := found
		take(from, env)
		if found == before {
			e.buffer(from, env, round, pass)
		}
	}
	return *found, nil
}

// recvEnv receives and decodes the next message from the current epoch.
// Corrupt frames and stale-epoch messages are skipped; a deadline on the
// round context surfaces as ErrRoundTimeout.
func (e *engine) recvEnv(ctx context.Context, round int) (int, protocol.Envelope, error) {
	for {
		msg, err := e.ep.Recv(ctx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return 0, protocol.Envelope{},
					fmt.Errorf("%w: node %d stuck in round %d", ErrRoundTimeout, e.id, round)
			}
			return 0, protocol.Envelope{}, err
		}
		env, err := protocol.Decode(msg.Payload)
		if err != nil {
			continue
		}
		if ep, ok := epochOf(env); !ok || ep != e.cfg.epoch {
			continue
		}
		return msg.From, env, nil
	}
}

// buffer keeps a message addressed to a later (round, sub) stage;
// anything at or before the current stage that was not consumed is a
// duplicate or stray and is dropped.
func (e *engine) buffer(from int, env protocol.Envelope, round, sub int) {
	r, s, ok := stageOf(env)
	if !ok {
		return
	}
	if r > round || (r == round && s > sub) {
		e.pending = append(e.pending, recvMsg{from: from, env: env})
	}
}

// drainPending runs take over the buffered messages for the current
// stage and keeps only strictly later ones.
func (e *engine) drainPending(round, sub int, take func(int, protocol.Envelope)) {
	kept := e.pending[:0]
	for _, pm := range e.pending {
		r, s, ok := stageOf(pm.env)
		if ok && (r > round || (r == round && s > sub)) {
			kept = append(kept, pm)
			continue
		}
		take(pm.from, pm.env)
	}
	e.pending = kept
}

// stageOf extracts the (round, pass-or-tick) ordering key of a message.
func stageOf(env protocol.Envelope) (round, sub int, ok bool) {
	switch {
	case env.AggUp != nil:
		return env.AggUp.Round, env.AggUp.Pass, true
	case env.AggDown != nil:
		return env.AggDown.Round, env.AggDown.Pass, true
	case env.GossipShare != nil:
		return env.GossipShare.Round, env.GossipShare.Tick, true
	case env.GossipExtrema != nil:
		return env.GossipExtrema.Round, env.GossipExtrema.Tick, true
	default:
		return 0, 0, false
	}
}

// epochOf extracts a message's epoch; non-aggregation kinds have none
// and are never expected here.
func epochOf(env protocol.Envelope) (int, bool) {
	switch {
	case env.AggUp != nil:
		return env.AggUp.Epoch, true
	case env.AggDown != nil:
		return env.AggDown.Epoch, true
	case env.GossipShare != nil:
		return env.GossipShare.Epoch, true
	case env.GossipExtrema != nil:
		return env.GossipExtrema.Epoch, true
	default:
		return 0, false
	}
}

// post buffers one payload for a peer and flushes immediately.
func (e *engine) post(ctx context.Context, to int, payload []byte) error {
	if err := e.ep.Send(ctx, to, payload); err != nil {
		return err
	}
	return e.flush(ctx)
}

// flush ships buffered sends, swallowing injected drops: a lost frame
// shows up as a peer's round timeout (the loud failure path), not as a
// local error that would kill a healthy node.
func (e *engine) flush(ctx context.Context) error {
	if err := e.ep.Flush(ctx); err != nil && !errors.Is(err, transport.ErrDropped) {
		return err
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
