package gossip

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/metrics"
	"filealloc/internal/protocol"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// ClusterConfig describes a single-box aggregation cluster: one
// in-process node per graph vertex, connected by a memory network,
// optionally behind deterministic fault injection.
type ClusterConfig struct {
	// Graph is the access network; aggregation messages travel only along
	// its edges.
	Graph *topology.Graph
	// Models holds each node's local slice of the cost model.
	Models []agent.LocalModel
	// Init is the starting allocation (must sum to 1).
	Init []float64
	// Alpha is the ascent stepsize (default 0.1).
	Alpha float64
	// Epsilon is the convergence threshold on the marginal-utility spread
	// (default 1e-3).
	Epsilon float64
	// MaxRounds bounds the total re-allocation rounds across epochs
	// (default 10000).
	MaxRounds int
	// Mode selects tree or push-sum aggregation (default ModeTree).
	Mode Mode
	// RoundTimeout bounds one round's aggregation (default 10s); hitting
	// it is the loud failure that triggers the churn/retry path.
	RoundTimeout time.Duration
	// JSONWire selects the JSON fallback encoding instead of the default
	// binary codec (a debugging/interop switch; the decoder accepts both
	// forms on any peer regardless).
	JSONWire bool
	// Seed drives the push-sum peer schedule.
	Seed int64
	// Ticks is the push-sum mixing length per round; 0 derives it from
	// the tree depth (a diameter bound plus mixing slack).
	Ticks int
	// KKTTol is the certification tolerance (default 0.02).
	KKTTol float64
	// RetryBudget is how many consecutive epochs may fail without any
	// node being found dead before the run surfaces the failure
	// (default 2).
	RetryBudget int
	// Faults, when non-nil, wraps every endpoint in deterministic fault
	// injection. Its RoundOf defaults to protocol.RoundOf.
	Faults *transport.FaultConfig
	// BufferSize overrides the memory network's inbox capacity; 0 sizes
	// it for the aggregation fan-in.
	BufferSize int
	// Metrics, when non-nil, receives the run's counters and gauges.
	Metrics *metrics.Registry
	// OnRound, when non-nil, observes every applied step. It must be safe
	// for concurrent use; node goroutines call it from their own rounds.
	OnRound func(epoch, round, node int, x float64)
}

// Bill is the message bill of a run: what the aggregation actually paid
// on the wire, for comparison against the O(N²) broadcast reference.
type Bill struct {
	// Mode names the aggregation scheme billed.
	Mode string
	// Rounds counts completed re-allocation rounds across all epochs.
	Rounds int
	// Messages counts logical protocol messages sent.
	Messages int64
	// Frames counts wire frames (coalescing folds messages into frames).
	Frames int64
	// Bytes counts wire bytes sent.
	Bytes int64
}

// MessagesPerRound averages the logical message count per round.
func (b Bill) MessagesPerRound() float64 {
	if b.Rounds == 0 {
		return float64(b.Messages)
	}
	return float64(b.Messages) / float64(b.Rounds)
}

// BytesPerRound averages the wire bytes per round.
func (b Bill) BytesPerRound() float64 {
	if b.Rounds == 0 {
		return float64(b.Bytes)
	}
	return float64(b.Bytes) / float64(b.Rounds)
}

// ClusterResult is the outcome of a cluster run.
type ClusterResult struct {
	// X is the final allocation; dead nodes hold zero.
	X []float64
	// Alive flags the nodes that survived.
	Alive []bool
	// Rounds counts completed re-allocation rounds across epochs.
	Rounds int
	// Epochs counts membership epochs (1 + churn events + retries).
	Epochs int
	// Converged reports protocol convergence (spread < ε).
	Converged bool
	// Certified reports that the converged allocation passed
	// costmodel.VerifyKKT; a converged run that fails certification also
	// returns ErrUncertified.
	Certified bool
	// Q is the Lagrange-multiplier estimate used for certification.
	Q float64
	// Bill is the message bill.
	Bill Bill
	// Faults aggregates the injected-fault counters over all endpoints.
	Faults transport.FaultStats
}

// BroadcastMessages is the analytic per-round message count of the
// broadcast reference at cluster size n: every node sends its report to
// every other node.
func BroadcastMessages(n int) int64 { return int64(n) * int64(n-1) }

// RunCluster runs the full decentralized allocation over an in-process
// cluster, supervising membership churn: when a round fails, crashed
// endpoints are detected, the surviving allocation mass is renormalized,
// the spanning tree is rebuilt over the alive set, and the protocol
// resumes under a fresh epoch. A converged allocation is always KKT
// certified before it is returned.
func RunCluster(ctx context.Context, cfg ClusterConfig) (ClusterResult, error) {
	var res ClusterResult
	if cfg.Graph == nil {
		return res, errors.New("gossip: nil graph")
	}
	n := cfg.Graph.NumNodes()
	if len(cfg.Models) != n {
		return res, fmt.Errorf("gossip: %d models for %d nodes", len(cfg.Models), n)
	}
	if len(cfg.Init) != n {
		return res, fmt.Errorf("gossip: %d initial fragments for %d nodes", len(cfg.Init), n)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 10000
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.KKTTol == 0 {
		cfg.KKTTol = 0.02
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 2
	}
	codec := protocol.CodecBinary
	if cfg.JSONWire {
		codec = protocol.CodecJSON
	}
	bufSize := cfg.BufferSize
	if bufSize == 0 {
		// Fan-in bound: a node receives at most one message per neighbor
		// per stage plus one round of pipelining; 2n is comfortably above
		// that for any degree.
		bufSize = 2*n + 64
	}
	net, err := transport.NewMemoryNetwork(n, transport.WithBufferSize(bufSize))
	if err != nil {
		return res, err
	}
	defer net.Close()

	endpoints := make([]transport.Endpoint, n)
	faultEps := make([]*transport.FaultEndpoint, n)
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			return res, err
		}
		if cfg.Faults != nil {
			fc := *cfg.Faults
			if fc.RoundOf == nil {
				fc.RoundOf = protocol.RoundOf
			}
			fep, err := transport.NewFaultEndpoint(ep, fc)
			if err != nil {
				return res, err
			}
			faultEps[i] = fep
			ep = fep
		}
		endpoints[i] = ep
	}

	xs := append([]float64(nil), cfg.Init...)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	res.Alive = alive
	retries := 0
	for epoch := 0; ; epoch++ {
		res.Epochs = epoch + 1
		group := aliveGroup(alive)
		if len(group) == 0 {
			return res, fmt.Errorf("%w: every node crashed", ErrRoundTimeout)
		}
		tree, err := BuildTree(cfg.Graph, alive)
		if err != nil {
			return res, err
		}
		adj := aliveAdjacency(cfg.Graph, alive)
		ticks := cfg.Ticks
		if ticks == 0 {
			ticks = 2*tree.Depth + 8
		}
		remaining := cfg.MaxRounds - res.Rounds
		if remaining <= 0 {
			res.X = xs
			break
		}

		outcomes := make([]nodeOutcome, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for _, i := range group {
			i := i
			nc := nodeConfig{
				endpoint:   endpoints[i],
				model:      cfg.Models[i],
				x:          xs[i],
				alpha:      cfg.Alpha,
				epsilon:    cfg.Epsilon,
				maxRounds:  remaining,
				mode:       cfg.Mode,
				epoch:      epoch,
				timeout:    cfg.RoundTimeout,
				codec:      codec,
				tree:       tree,
				adj:        adj,
				aliveCount: len(group),
				seed:       cfg.Seed,
				ticks:      ticks,
			}
			if cfg.OnRound != nil {
				cb, node, ep := cfg.OnRound, i, epoch
				nc.onRound = func(round int, x float64) { cb(ep, round, node, x) }
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				outcomes[i], errs[i] = runNode(ctx, nc)
			}()
		}
		wg.Wait()

		roundsThisEpoch := 0
		for _, i := range group {
			xs[i] = outcomes[i].X
			if outcomes[i].Rounds > roundsThisEpoch {
				roundsThisEpoch = outcomes[i].Rounds
			}
			res.Bill.Messages += outcomes[i].Stats.MessagesSent
			res.Bill.Frames += outcomes[i].Stats.FramesSent
			res.Bill.Bytes += outcomes[i].Stats.BytesSent
		}
		res.Rounds += roundsThisEpoch

		var joined []error
		for _, i := range group {
			if errs[i] != nil {
				joined = append(joined, fmt.Errorf("node %d: %w", i, errs[i]))
			}
		}
		if len(joined) == 0 {
			first := group[0]
			for _, i := range group {
				if outcomes[i].Rounds != outcomes[first].Rounds ||
					outcomes[i].Converged != outcomes[first].Converged {
					return res, fmt.Errorf("%w: node %d finished (rounds=%d converged=%v), node %d (rounds=%d converged=%v)",
						ErrProtocol,
						first, outcomes[first].Rounds, outcomes[first].Converged,
						i, outcomes[i].Rounds, outcomes[i].Converged)
				}
			}
			res.Converged = outcomes[first].Converged
			res.X = xs
			break
		}
		joinErr := errors.Join(joined...)

		// Churn: find who died, hand their mass to the survivors, retry
		// under a fresh epoch.
		newlyDead := 0
		for _, i := range group {
			crashed := faultEps[i] != nil && faultEps[i].Crashed()
			if crashed || errors.Is(errs[i], transport.ErrCrashed) {
				alive[i] = false
				xs[i] = 0
				newlyDead++
			}
		}
		if newlyDead == 0 {
			// Only epochs that advanced zero rounds burn the retry budget:
			// a lossy-but-live cluster keeps making progress (bounded by
			// MaxRounds), while a partitioned one stalls immediately and
			// fails loudly after the budget.
			if roundsThisEpoch == 0 {
				retries++
			} else {
				retries = 0
			}
			if retries > cfg.RetryBudget {
				res.X = xs
				return res, fmt.Errorf("%w: no progress after %d epochs: %w", ErrRoundTimeout, epoch+1, joinErr)
			}
		} else {
			retries = 0
			survivors := aliveGroup(alive)
			if len(survivors) > 0 {
				if err := core.Renormalize(xs, survivors); err != nil {
					return res, err
				}
			}
		}
	}

	collectFaults(&res, faultEps)
	if res.Converged {
		q, err := certify(cfg.Models, xs, alive, cfg.KKTTol)
		res.Q = q
		if err != nil {
			publish(cfg.Metrics, cfg.Mode, res)
			return res, fmt.Errorf("%w: %v", ErrUncertified, err)
		}
		res.Certified = true
	}
	res.Bill.Mode = cfg.Mode.String()
	res.Bill.Rounds = res.Rounds
	publish(cfg.Metrics, cfg.Mode, res)
	return res, nil
}

// aliveGroup lists the alive node ids in ascending order.
func aliveGroup(alive []bool) []int {
	var group []int
	for i, ok := range alive {
		if ok {
			group = append(group, i)
		}
	}
	return group
}

// collectFaults aggregates the injected-fault counters.
func collectFaults(res *ClusterResult, faultEps []*transport.FaultEndpoint) {
	for _, fep := range faultEps {
		if fep != nil {
			res.Faults.Add(fep.Stats())
		}
	}
}

// certify derives the Lagrange multiplier q as the mean marginal cost
// over the supported alive nodes and checks the allocation against the
// KKT conditions of the reduced (alive-only) cost model.
func certify(models []agent.LocalModel, xs []float64, alive []bool, tol float64) (float64, error) {
	group := aliveGroup(alive)
	access := make([]float64, len(group))
	rates := make([]float64, len(group))
	sub := make([]float64, len(group))
	for k, i := range group {
		access[k] = models[i].AccessCost
		rates[k] = models[i].ServiceRate
		sub[k] = xs[i]
		// A dropped node's truncated final step can leave a residual below
		// the boundary tolerance instead of an exact zero; the protocol
		// treats it as boundary, so the certificate must judge it under
		// the boundary condition, not as support.
		if sub[k] <= boundaryTol {
			sub[k] = 0
		}
	}
	lambda, kf := models[group[0]].Lambda, models[group[0]].K
	model, err := costmodel.NewSingleFile(access, rates, lambda, kf)
	if err != nil {
		return 0, err
	}
	q, support := 0.0, 0
	for k, i := range group {
		if sub[k] <= supportTol {
			continue
		}
		g, err := models[i].Marginal(sub[k])
		if err != nil {
			return 0, err
		}
		q += -g
		support++
	}
	if support > 0 {
		q /= float64(support)
	}
	return q, model.VerifyKKT(sub, q, tol)
}

// publish exports the run's headline numbers.
func publish(reg *metrics.Registry, mode Mode, res ClusterResult) {
	if reg == nil {
		return
	}
	l := metrics.L("mode", mode.String())
	reg.Counter("gossip_messages_total", "logical aggregation messages sent", l).Add(res.Bill.Messages)
	reg.Counter("gossip_frames_total", "wire frames sent after coalescing", l).Add(res.Bill.Frames)
	reg.Counter("gossip_bytes_total", "wire bytes sent", l).Add(res.Bill.Bytes)
	reg.Gauge("gossip_rounds", "completed re-allocation rounds", l).Set(float64(res.Rounds))
	reg.Gauge("gossip_epochs", "membership epochs", l).Set(float64(res.Epochs))
	boolGauge := func(name, help string, v bool) {
		g := reg.Gauge(name, help, l)
		if v {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
	boolGauge("gossip_converged", "protocol convergence flag", res.Converged)
	boolGauge("gossip_certified", "KKT certification flag", res.Certified)
	if res.Faults.Total() > 0 {
		reg.Counter("gossip_faults_total", "injected transport faults observed", l).Add(res.Faults.Total())
	}
}
