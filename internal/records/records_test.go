package records

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

func TestUniformMatchesStorageShares(t *testing.T) {
	// Under uniform popularity, access share = storage share — the
	// paper's base case.
	p, err := Uniform(100)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{25, 25, 25, 25}
	shares, err := p.AccessShare(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if math.Abs(s-0.25) > 1e-12 {
			t.Errorf("share[%d] = %g, want 0.25", i, s)
		}
	}
}

func TestZipfConcentratesOnHead(t *testing.T) {
	p, err := Zipf(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The first 10% of records carry far more than 10% of accesses.
	shares, err := p.AccessShare([]int{100, 900})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] < 0.5 {
		t.Errorf("head share = %g, want > 0.5 under Zipf(1)", shares[0])
	}
	// Zipf(0) is uniform.
	u, err := Zipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if math.Abs(u.Prob(r)-0.1) > 1e-12 {
			t.Errorf("Zipf(0) prob[%d] = %g", r, u.Prob(r))
		}
	}
}

func TestPartitionTracksTargets(t *testing.T) {
	p, err := Zipf(10000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	targets := []float64{0.4, 0.3, 0.2, 0.1}
	counts, err := p.Partition(targets)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10000 {
		t.Fatalf("assignment covers %d records", total)
	}
	worst, err := p.ShareError(targets, counts)
	if err != nil {
		t.Fatal(err)
	}
	// With 10k records each boundary is off by at most one record's
	// mass; the head record carries the largest probability.
	if worst > 2*p.Prob(0) {
		t.Errorf("share error %g exceeds head-record mass %g", worst, p.Prob(0))
	}
	// The hot node (share 0.4) stores FEWER records than the uniform
	// 40% because it got the hot head of the file.
	if counts[0] >= 4000 {
		t.Errorf("hot node stores %d records; expected far fewer than 4000 under Zipf", counts[0])
	}
}

func TestPartitionHandlesZeroShares(t *testing.T) {
	p, err := Uniform(10)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := p.Partition([]float64{0.5, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 0 {
		t.Errorf("zero-share node got %d records", counts[1])
	}
	if counts[0]+counts[2] != 10 {
		t.Errorf("counts = %v", counts)
	}
}

func TestPartitionPropertyCoverageAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		records := 10 + rng.Intn(500)
		s := rng.Float64() * 1.5
		p, err := Zipf(records, s)
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(6)
		targets := make([]float64, n)
		var sum float64
		for i := range targets {
			targets[i] = rng.Float64()
			sum += targets[i]
		}
		for i := range targets {
			targets[i] /= sum
		}
		counts, err := p.Partition(targets)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("trial %d: negative count at %d", trial, i)
			}
			total += c
		}
		if total != records {
			t.Fatalf("trial %d: covers %d of %d records", trial, total, records)
		}
	}
}

func TestEndToEndZipfAllocation(t *testing.T) {
	// Full pipeline: optimize access shares with the paper's algorithm,
	// then map to records under Zipf popularity. The realized shares
	// must reproduce the optimal cost closely.
	m, err := costmodel.NewSingleFile([]float64{2, 1, 3, 2.5}, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := core.NewAllocator(m, core.WithAlpha(0.1), core.WithEpsilon(1e-8), core.WithKKTCheck())
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("optimization did not converge")
	}
	optCost, err := m.Cost(res.X)
	if err != nil {
		t.Fatal(err)
	}

	p, err := Zipf(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := p.Partition(res.X)
	if err != nil {
		t.Fatal(err)
	}
	realized, err := p.AccessShare(counts)
	if err != nil {
		t.Fatal(err)
	}
	realCost, err := m.Cost(realized)
	if err != nil {
		t.Fatal(err)
	}
	if (realCost-optCost)/optCost > 0.01 {
		t.Errorf("record-granular cost %g vs optimal %g (> 1%% penalty)", realCost, optCost)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Custom(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Custom([]float64{-1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative: %v", err)
	}
	if _, err := Custom([]float64{0, 0}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero: %v", err)
	}
	if _, err := Uniform(0); !errors.Is(err, ErrBadInput) {
		t.Errorf("no records: %v", err)
	}
	if _, err := Zipf(10, -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative s: %v", err)
	}
	p, err := Uniform(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AccessShare([]int{5, 4}); !errors.Is(err, ErrBadInput) {
		t.Errorf("under-coverage: %v", err)
	}
	if _, err := p.AccessShare([]int{-1, 11}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative count: %v", err)
	}
	if _, err := p.Partition([]float64{0.5, 0.4}); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad target sum: %v", err)
	}
	if _, err := p.Partition(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("no nodes: %v", err)
	}
	if p.Records() != 10 {
		t.Errorf("Records = %d", p.Records())
	}
}
