// Package records relaxes the paper's uniform record-access assumption
// (section 4: "We will assume that the individual records with a file are
// accessed on a uniform basis (although this can be easily relaxed)").
//
// With non-uniform record popularity, the quantity the cost model cares
// about is each node's ACCESS share p_i — the probability a random access
// lands on a record the node stores — not its storage share. The
// optimization therefore runs unchanged over access shares (equation 1 is
// already written in those terms), and this package supplies the missing
// translation: given a record-popularity distribution, Partition maps the
// optimal access shares to a contiguous record assignment (popularity
// quantiles), and AccessShare maps any assignment back to realized access
// shares. Hot records concentrate on nodes with large access shares even
// when those nodes store few records — the practical upshot of the
// relaxation.
package records

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInput reports invalid popularity or assignment inputs.
var ErrBadInput = errors.New("records: invalid input")

// Popularity is a probability distribution over a file's records.
type Popularity struct {
	probs []float64
	cdf   []float64 // cdf[r] = P(record index ≤ r)
}

// Custom builds a popularity from raw per-record weights (normalized
// internally).
func Custom(weights []float64) (*Popularity, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: no records", ErrBadInput)
	}
	var total float64
	for r, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight[%d] = %v", ErrBadInput, r, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: zero total weight", ErrBadInput)
	}
	p := &Popularity{
		probs: make([]float64, len(weights)),
		cdf:   make([]float64, len(weights)),
	}
	acc := 0.0
	for r, w := range weights {
		p.probs[r] = w / total
		acc += w / total
		p.cdf[r] = acc
	}
	p.cdf[len(weights)-1] = 1 // absorb rounding
	return p, nil
}

// Uniform returns the paper's base case: every record equally likely.
func Uniform(records int) (*Popularity, error) {
	if records < 1 {
		return nil, fmt.Errorf("%w: %d records", ErrBadInput, records)
	}
	weights := make([]float64, records)
	for r := range weights {
		weights[r] = 1
	}
	return Custom(weights)
}

// Zipf returns a Zipf(s) popularity: record r (0-based) has weight
// 1/(r+1)^s. s = 0 reduces to uniform; larger s concentrates accesses on
// the head of the file.
func Zipf(records int, s float64) (*Popularity, error) {
	if records < 1 {
		return nil, fmt.Errorf("%w: %d records", ErrBadInput, records)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("%w: exponent s = %v", ErrBadInput, s)
	}
	weights := make([]float64, records)
	for r := range weights {
		weights[r] = math.Pow(float64(r+1), -s)
	}
	return Custom(weights)
}

// Records returns the record count.
func (p *Popularity) Records() int { return len(p.probs) }

// Prob returns record r's access probability.
func (p *Popularity) Prob(r int) float64 { return p.probs[r] }

// AccessShare converts a contiguous assignment (counts[i] records to node
// i, in file order) into realized per-node access shares. The counts must
// cover the file exactly once.
func (p *Popularity) AccessShare(counts []int) ([]float64, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("%w: empty assignment", ErrBadInput)
	}
	total := 0
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: counts[%d] = %d", ErrBadInput, i, c)
		}
		total += c
	}
	if total != len(p.probs) {
		return nil, fmt.Errorf("%w: assignment covers %d of %d records", ErrBadInput, total, len(p.probs))
	}
	shares := make([]float64, len(counts))
	r := 0
	for i, c := range counts {
		for k := 0; k < c; k++ {
			shares[i] += p.probs[r]
			r++
		}
	}
	return shares, nil
}

// Partition maps target access shares (non-negative, summing to 1) to the
// contiguous record assignment whose realized shares best track the
// running targets: node i's range ends at the first record where the CDF
// reaches the cumulative target Σ_{j≤i} shares[j] (nearest-boundary
// rounding). The assignment always covers the file exactly once.
func (p *Popularity) Partition(targetShares []float64) ([]int, error) {
	n := len(targetShares)
	if n == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadInput)
	}
	var sum float64
	for i, s := range targetShares {
		if s < 0 || math.IsNaN(s) {
			return nil, fmt.Errorf("%w: share[%d] = %v", ErrBadInput, i, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("%w: shares sum to %v, want 1", ErrBadInput, sum)
	}
	counts := make([]int, n)
	records := len(p.probs)
	cum := 0.0
	prevBoundary := 0 // records assigned so far
	for i := 0; i < n; i++ {
		cum += targetShares[i]
		boundary := prevBoundary
		if i == n-1 {
			boundary = records
		} else {
			// Advance to the record where the CDF crosses cum,
			// choosing the nearer side of the crossing. If the CDF
			// already exceeds cum at prevBoundary, this node's range
			// is empty and no adjustment applies.
			for boundary < records && p.cdf[boundary] < cum {
				boundary++
			}
			if boundary < records && boundary > prevBoundary {
				// cdf[boundary] ≥ cum > cdf[boundary-1]; decide
				// whether record `boundary` itself belongs left or
				// right.
				cdfBefore := 0.0
				if boundary > 0 {
					cdfBefore = p.cdf[boundary-1]
				}
				left := cum - cdfBefore
				right := p.cdf[boundary] - cum
				if right < left {
					boundary++
				}
			}
			if boundary > records {
				boundary = records
			}
		}
		counts[i] = boundary - prevBoundary
		prevBoundary = boundary
	}
	return counts, nil
}

// ShareError returns the largest |realized − target| access share after a
// Partition, a measure of how well the record granularity supports the
// optimal fractions.
func (p *Popularity) ShareError(targetShares []float64, counts []int) (float64, error) {
	realized, err := p.AccessShare(counts)
	if err != nil {
		return 0, err
	}
	if len(realized) != len(targetShares) {
		return 0, fmt.Errorf("%w: %d realized vs %d target shares", ErrBadInput, len(realized), len(targetShares))
	}
	var worst float64
	for i := range realized {
		if d := math.Abs(realized[i] - targetShares[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}
