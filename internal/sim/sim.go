// Package sim is a discrete-event simulator for the access traffic of a
// file allocation: every node generates accesses as a Poisson process, each
// access is routed to a storing node (chosen by the allocation-derived
// routing probabilities), pays its communication cost, and queues for FCFS
// service there. It measures the realized mean delay and communication
// cost, validating the closed-form M/M/1 and M/G/1 expressions the cost
// models use (experiment E7).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadWorkload reports an invalid simulation setup.
var ErrBadWorkload = errors.New("sim: invalid workload")

// Sampler draws service times.
type Sampler interface {
	// Sample returns one service time using the provided random source.
	Sample(rng *rand.Rand) float64
}

// ExpSampler draws exponential service times with the given rate, matching
// the paper's M/M/1 servers.
type ExpSampler struct {
	// Rate is μ.
	Rate float64
}

// Sample implements Sampler.
func (s ExpSampler) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() / s.Rate }

// DetSampler draws a constant service time (M/D/1).
type DetSampler struct {
	// D is the fixed service duration.
	D float64
}

// Sample implements Sampler.
func (s DetSampler) Sample(rng *rand.Rand) float64 { return s.D }

// UniformSampler draws service times uniform on [A, B].
type UniformSampler struct {
	A, B float64
}

// Sample implements Sampler.
func (s UniformSampler) Sample(rng *rand.Rand) float64 { return s.A + rng.Float64()*(s.B-s.A) }

// HyperExpSampler draws two-phase hyperexponential service times: rate Mu1
// with probability P, rate Mu2 otherwise.
type HyperExpSampler struct {
	P        float64
	Mu1, Mu2 float64
}

// Sample implements Sampler.
func (s HyperExpSampler) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < s.P {
		return rng.ExpFloat64() / s.Mu1
	}
	return rng.ExpFloat64() / s.Mu2
}

// Workload specifies one simulation run.
type Workload struct {
	// Rates holds the Poisson access generation rate λ_j per source
	// node.
	Rates []float64
	// Route[j][i] is the probability a source-j access is served by
	// node i; each row must sum to 1. For the single-file model this is
	// simply the allocation x (independent of j); for the virtual ring
	// it is the demand matrix.
	Route [][]float64
	// Cost[j][i] is the communication cost charged to a source-j access
	// served at node i (the c_ji of section 4).
	Cost [][]float64
	// Service holds one Sampler per serving node.
	Service []Sampler
	// K scales delay into cost units when reporting TotalCost.
	K float64
	// Accesses is the number of completed accesses to measure
	// (default 100000).
	Accesses int
	// Warmup is the number of initial completions discarded
	// (default Accesses/10).
	Warmup int
	// Seed makes the run reproducible.
	Seed int64
}

// NodeStats aggregates per-node measurements.
type NodeStats struct {
	// Arrivals is the number of accesses served at the node (after
	// warmup).
	Arrivals int
	// MeanSojourn is the average time an access spent queued + in
	// service at this node.
	MeanSojourn float64
	// Utilization is the fraction of measured time the server was busy.
	Utilization float64
}

// Result reports the measured performance of the allocation.
type Result struct {
	// MeanDelay is the average sojourn time over all measured accesses —
	// the simulated counterpart of Σ T_i·x_i.
	MeanDelay float64
	// MeanCommCost is the average communication cost per access — the
	// simulated counterpart of Σ C_i·x_i.
	MeanCommCost float64
	// TotalCost is MeanCommCost + K·MeanDelay, the simulated equation-1
	// cost.
	TotalCost float64
	// Completed is the number of measured accesses.
	Completed int
	// PerNode holds per-node statistics.
	PerNode []NodeStats
}

// event is a pending simulation event.
type event struct {
	at   float64
	kind eventKind
	node int // source for arrivals, server for departures
}

type eventKind int

const (
	evArrival eventKind = iota + 1
	evDeparture
)

// eventHeap orders events by time.
type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// job is one access waiting at or being served by a node.
type job struct {
	enqueued float64
	commCost float64
}

// Run executes the simulation.
func Run(w Workload) (Result, error) {
	n := len(w.Rates)
	if n == 0 {
		return Result{}, fmt.Errorf("%w: no sources", ErrBadWorkload)
	}
	if len(w.Route) != n || len(w.Cost) != n || len(w.Service) != n {
		return Result{}, fmt.Errorf("%w: route/cost/service shape mismatch", ErrBadWorkload)
	}
	var totalRate float64
	for j, r := range w.Rates {
		if r < 0 || math.IsNaN(r) {
			return Result{}, fmt.Errorf("%w: rate[%d] = %v", ErrBadWorkload, j, r)
		}
		totalRate += r
		if len(w.Route[j]) != n || len(w.Cost[j]) != n {
			return Result{}, fmt.Errorf("%w: row %d shape mismatch", ErrBadWorkload, j)
		}
		var rowSum float64
		for i, p := range w.Route[j] {
			if p < -1e-9 {
				return Result{}, fmt.Errorf("%w: route[%d][%d] = %v", ErrBadWorkload, j, i, p)
			}
			rowSum += p
		}
		if r > 0 && math.Abs(rowSum-1) > 1e-6 {
			return Result{}, fmt.Errorf("%w: route row %d sums to %v", ErrBadWorkload, j, rowSum)
		}
	}
	if totalRate <= 0 {
		return Result{}, fmt.Errorf("%w: total rate must be positive", ErrBadWorkload)
	}
	for i, s := range w.Service {
		if s == nil {
			return Result{}, fmt.Errorf("%w: nil service sampler at node %d", ErrBadWorkload, i)
		}
	}
	if w.Accesses <= 0 {
		w.Accesses = 100000
	}
	if w.Warmup <= 0 {
		w.Warmup = w.Accesses / 10
	}

	rng := rand.New(rand.NewSource(w.Seed))
	events := &eventHeap{}
	// Seed one arrival per active source; each arrival schedules its
	// successor, realizing independent Poisson processes.
	for j, r := range w.Rates {
		if r > 0 {
			heap.Push(events, event{at: rng.ExpFloat64() / r, kind: evArrival, node: j})
		}
	}

	queues := make([][]job, n)
	busySince := make([]float64, n)
	busyTotal := make([]float64, n)
	inService := make([]bool, n)

	var (
		completedTotal int
		measured       int
		sumSojourn     float64
		sumComm        float64
		perNode        = make([]NodeStats, n)
		perNodeSojourn = make([]float64, n)
		measureStart   float64
		now            float64
	)

	startService := func(i int) {
		service := w.Service[i].Sample(rng)
		inService[i] = true
		busySince[i] = now
		heap.Push(events, event{at: now + service, kind: evDeparture, node: i})
	}

	for measured < w.Accesses-w.Warmup {
		if events.Len() == 0 {
			return Result{}, fmt.Errorf("%w: event queue drained", ErrBadWorkload)
		}
		ev := heap.Pop(events).(event)
		now = ev.at
		switch ev.kind {
		case evArrival:
			src := ev.node
			// Schedule the next arrival from this source.
			heap.Push(events, event{at: now + rng.ExpFloat64()/w.Rates[src], kind: evArrival, node: src})
			// Route the access.
			dest := pick(rng, w.Route[src])
			queues[dest] = append(queues[dest], job{
				enqueued: now,
				commCost: w.Cost[src][dest],
			})
			if !inService[dest] {
				startService(dest)
			}
		case evDeparture:
			i := ev.node
			done := queues[i][0]
			queues[i] = queues[i][1:]
			busyTotal[i] += now - busySince[i]
			inService[i] = false
			completedTotal++
			if completedTotal == w.Warmup {
				measureStart = now
				// Reset busy accounting at the measurement epoch.
				for v := range busyTotal {
					busyTotal[v] = 0
				}
			}
			if completedTotal > w.Warmup {
				measured++
				sumSojourn += now - done.enqueued
				sumComm += done.commCost
				perNode[i].Arrivals++
				perNodeSojourn[i] += now - done.enqueued
			}
			if len(queues[i]) > 0 {
				startService(i)
			}
		}
	}

	horizon := now - measureStart
	res := Result{
		Completed: measured,
		PerNode:   perNode,
	}
	if measured > 0 {
		res.MeanDelay = sumSojourn / float64(measured)
		res.MeanCommCost = sumComm / float64(measured)
		res.TotalCost = res.MeanCommCost + w.K*res.MeanDelay
	}
	for i := range perNode {
		if perNode[i].Arrivals > 0 {
			res.PerNode[i].MeanSojourn = perNodeSojourn[i] / float64(perNode[i].Arrivals)
		}
		if horizon > 0 {
			res.PerNode[i].Utilization = busyTotal[i] / horizon
		}
	}
	return res, nil
}

// pick samples an index from a probability row.
func pick(rng *rand.Rand, row []float64) int {
	u := rng.Float64()
	acc := 0.0
	last := 0
	for i, p := range row {
		if p <= 0 {
			continue
		}
		acc += p
		last = i
		if u < acc {
			return i
		}
	}
	return last // guard against rounding at the row's end
}

// SurvivorWorkload builds the post-churn Workload: departed nodes neither
// generate accesses (their rate is zeroed) nor serve any (the surviving
// allocation must carry no mass on them), so every access routes among the
// survivors only. x is the full-length allocation as reported after a
// departure round — zero on departed nodes, summing to 1 over the
// survivors.
func SurvivorWorkload(x []float64, alive []bool, rates []float64, cost [][]float64, service []Sampler, k float64) (Workload, error) {
	n := len(rates)
	if len(x) != n || len(alive) != n {
		return Workload{}, fmt.Errorf("%w: x/alive/rates shape mismatch", ErrBadWorkload)
	}
	liveRates := make([]float64, n)
	anyAlive := false
	for i := range alive {
		if alive[i] {
			anyAlive = true
			liveRates[i] = rates[i]
			continue
		}
		if x[i] != 0 {
			return Workload{}, fmt.Errorf("%w: departed node %d holds allocation mass %v", ErrBadWorkload, i, x[i])
		}
	}
	if !anyAlive {
		return Workload{}, fmt.Errorf("%w: no surviving nodes", ErrBadWorkload)
	}
	w := SingleFileWorkload(x, liveRates, cost, service, k)
	return w, nil
}

// SingleFileWorkload builds the Workload that exercises the equation-1
// model: every source routes to node i with probability x_i and pays cost
// c_ji; all nodes serve at the sampler's rate.
func SingleFileWorkload(x []float64, rates []float64, cost [][]float64, service []Sampler, k float64) Workload {
	n := len(rates)
	route := make([][]float64, n)
	for j := 0; j < n; j++ {
		route[j] = append([]float64(nil), x...)
	}
	return Workload{
		Rates:   rates,
		Route:   route,
		Cost:    cost,
		Service: service,
		K:       k,
	}
}
