package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/costmodel"
	"filealloc/internal/multicopy"
	"filealloc/internal/topology"
)

func expServices(n int, mu float64) []Sampler {
	s := make([]Sampler, n)
	for i := range s {
		s[i] = ExpSampler{Rate: mu}
	}
	return s
}

func TestSingleQueueMatchesMM1(t *testing.T) {
	// One node, Poisson(0.75) arrivals, exp(1.5) service: M/M/1 sojourn
	// time 1/(μ−λ) = 1/0.75.
	w := Workload{
		Rates:    []float64{0.75},
		Route:    [][]float64{{1}},
		Cost:     [][]float64{{0}},
		Service:  expServices(1, 1.5),
		K:        1,
		Accesses: 400000,
		Seed:     1,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 1 / (1.5 - 0.75)
	if math.Abs(res.MeanDelay-want) > 0.05*want {
		t.Errorf("mean delay = %g, want ≈ %g", res.MeanDelay, want)
	}
	wantUtil := 0.75 / 1.5
	if math.Abs(res.PerNode[0].Utilization-wantUtil) > 0.03 {
		t.Errorf("utilization = %g, want ≈ %g", res.PerNode[0].Utilization, wantUtil)
	}
}

func TestSimulationValidatesAnalyticSingleFileCost(t *testing.T) {
	// The headline validation (experiment E7): for the figure-3 system
	// at several allocations, the simulated equation-1 cost must match
	// the closed form within a few percent.
	ring, err := topology.Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rates := topology.UniformRates(4, 1)
	access, err := topology.AccessCosts(ring, rates, topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := topology.PairCosts(ring, topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	model, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	allocations := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.8, 0.1, 0.1, 0.0},
		{0.5, 0.3, 0.1, 0.1},
	}
	for _, x := range allocations {
		analytic, err := model.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		w := SingleFileWorkload(x, rates, pair, expServices(4, 1.5), 1)
		w.Accesses = 300000
		w.Seed = 7
		res, err := Run(w)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if math.Abs(res.TotalCost-analytic) > 0.04*analytic {
			t.Errorf("x=%v: simulated cost %g vs analytic %g", x, res.TotalCost, analytic)
		}
	}
}

func TestSimulationValidatesMG1Deterministic(t *testing.T) {
	// M/D/1: simulated delay must match the Pollaczek–Khinchine value,
	// which is below the M/M/1 prediction.
	model, err := costmodel.NewMG1SingleFile([]float64{0, 0},
		[]costmodel.ServiceDist{costmodel.Deterministic(0.5)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	analytic, err := model.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	zero := [][]float64{{0, 0}, {0, 0}}
	w := SingleFileWorkload(x, []float64{0.5, 0.5}, zero,
		[]Sampler{DetSampler{D: 0.5}, DetSampler{D: 0.5}}, 1)
	w.Accesses = 300000
	w.Seed = 3
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-analytic) > 0.04*analytic {
		t.Errorf("simulated M/D/1 cost %g vs analytic %g", res.TotalCost, analytic)
	}
}

func TestSimulationValidatesMultiCopyRing(t *testing.T) {
	// Route by the virtual ring's demand matrix and compare against the
	// ring model's analytic cost.
	r, err := multicopy.New(multicopy.Config{
		LinkCosts:    []float64{1, 1, 1, 1},
		Rates:        []float64{0.25, 0.25, 0.25, 0.25},
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.7, 0.3, 0.6, 0.4}
	analytic, err := r.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	route, err := r.Demands(x)
	if err != nil {
		t.Fatal(err)
	}
	dist := topology.RingDistances([]float64{1, 1, 1, 1})
	w := Workload{
		Rates:    []float64{0.25, 0.25, 0.25, 0.25},
		Route:    route,
		Cost:     dist,
		Service:  expServices(4, 1.5),
		K:        1,
		Accesses: 300000,
		Seed:     11,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-analytic) > 0.05*analytic {
		t.Errorf("simulated ring cost %g vs analytic %g", res.TotalCost, analytic)
	}
}

func TestLittlesLawHolds(t *testing.T) {
	// L = λ·W: the mean number in system (measured via utilization and
	// queueing) must match arrival rate times mean sojourn. We check the
	// single-queue version through utilization = λ·E[S], which is
	// Little's law applied to the server alone — a structural invariant
	// of any correct FCFS simulation, independent of the M/M/1 formula.
	for _, load := range []float64{0.3, 0.6, 0.85} {
		mu := 2.0
		lambda := load * mu
		w := Workload{
			Rates:    []float64{lambda},
			Route:    [][]float64{{1}},
			Cost:     [][]float64{{0}},
			Service:  expServices(1, mu),
			K:        1,
			Accesses: 200000,
			Seed:     int64(100 * load),
		}
		res, err := Run(w)
		if err != nil {
			t.Fatalf("load %g: %v", load, err)
		}
		// Server-level Little's law: utilization = λ/μ.
		if math.Abs(res.PerNode[0].Utilization-load) > 0.02 {
			t.Errorf("load %g: utilization = %g", load, res.PerNode[0].Utilization)
		}
	}
}

func TestHighUtilizationDelayGrows(t *testing.T) {
	// Sanity of the congestion curve: delay at ρ=0.9 must far exceed
	// delay at ρ=0.3 (the effect that drives the whole FAP trade-off).
	delay := func(rho float64) float64 {
		w := Workload{
			Rates:    []float64{rho * 2},
			Route:    [][]float64{{1}},
			Cost:     [][]float64{{0}},
			Service:  expServices(1, 2),
			K:        1,
			Accesses: 150000,
			Seed:     9,
		}
		res, err := Run(w)
		if err != nil {
			t.Fatalf("rho %g: %v", rho, err)
		}
		return res.MeanDelay
	}
	low, high := delay(0.3), delay(0.9)
	if high < 4*low {
		t.Errorf("delay at ρ=0.9 (%g) should dwarf ρ=0.3 (%g)", high, low)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	w := Workload{
		Rates:    []float64{0.5, 0.5},
		Route:    [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		Cost:     [][]float64{{0, 1}, {1, 0}},
		Service:  expServices(2, 2),
		K:        1,
		Accesses: 20000,
		Seed:     42,
	}
	a, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost != b.TotalCost || a.MeanDelay != b.MeanDelay {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
	w.Seed = 43
	c, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCost == a.TotalCost {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestRunValidation(t *testing.T) {
	good := Workload{
		Rates:   []float64{1},
		Route:   [][]float64{{1}},
		Cost:    [][]float64{{0}},
		Service: expServices(1, 2),
	}
	tests := []struct {
		name string
		fn   func(Workload) Workload
	}{
		{"no sources", func(w Workload) Workload { w.Rates = nil; return w }},
		{"shape mismatch", func(w Workload) Workload { w.Route = nil; return w }},
		{"bad row sum", func(w Workload) Workload { w.Route = [][]float64{{0.5}}; return w }},
		{"negative rate", func(w Workload) Workload { w.Rates = []float64{-1}; return w }},
		{"zero total rate", func(w Workload) Workload { w.Rates = []float64{0}; return w }},
		{"nil sampler", func(w Workload) Workload { w.Service = []Sampler{nil}; return w }},
		{"negative route", func(w Workload) Workload { w.Route = [][]float64{{-0.5}}; return w }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.fn(good)); !errors.Is(err, ErrBadWorkload) {
				t.Errorf("error = %v, want ErrBadWorkload", err)
			}
		})
	}
}

func TestSamplersMatchTheirMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tests := []struct {
		name     string
		s        Sampler
		wantMean float64
	}{
		{"exp", ExpSampler{Rate: 2}, 0.5},
		{"det", DetSampler{D: 0.3}, 0.3},
		{"uniform", UniformSampler{A: 0.2, B: 0.6}, 0.4},
		{"hyperexp", HyperExpSampler{P: 0.3, Mu1: 1, Mu2: 5}, 0.3/1 + 0.7/5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var sum float64
			const draws = 200000
			for i := 0; i < draws; i++ {
				v := tt.s.Sample(rng)
				if v < 0 {
					t.Fatalf("negative service time %g", v)
				}
				sum += v
			}
			got := sum / draws
			if math.Abs(got-tt.wantMean) > 0.02*(tt.wantMean+0.01) {
				t.Errorf("mean = %g, want ≈ %g", got, tt.wantMean)
			}
		})
	}
}

func TestPickDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	row := []float64{0.2, 0, 0.5, 0.3}
	counts := make([]int, 4)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[pick(rng, row)]++
	}
	if counts[1] != 0 {
		t.Errorf("picked zero-probability index %d times", counts[1])
	}
	for i, p := range row {
		got := float64(counts[i]) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("index %d frequency %g, want ≈ %g", i, got, p)
		}
	}
}
