// Package neighbor implements the "neighbours-only" variant of the
// allocation algorithm that the paper's section 8.2 poses as future work:
// "To reduce the amount of message sending at each iteration we wish to
// look at restrictions in communication where nodes communicate only with
// their neighbours ... algorithms based on marginal utility that maintain
// the attractive properties of feasibility, monotonicity and rapid
// convergence and yet execute with a 'neighbours-only' restriction."
//
// The algorithm here is the center-free pairwise-exchange scheme of the
// Ho–Servi–Suri class (the paper's reference [20]): in each iteration
// every communication link (i, j) carries an exchange proportional to the
// difference of the endpoints' marginal utilities,
//
//	δ_ij = β · (∂U/∂x_i − ∂U/∂x_j),
//
// and node i receives δ_ij while node j gives it up. Each pairwise
// transfer conserves the total exactly (feasibility needs no global
// averaging), the update direction is an ascent direction for any
// connected graph (⟨∇U, Δx⟩ = β·Σ_(i,j) (g_i − g_j)² ≥ 0, the edge-wise
// Lemma 1), and each node only ever talks to its graph neighbours —
// 2|E| messages per iteration instead of the broadcast mode's n(n−1).
// The price is slower convergence: information diffuses across the graph
// at one hop per iteration, so poorly connected topologies (rings, lines)
// need Θ(n²)-ish iterations where the full-exchange algorithm needs O(1).
package neighbor

import (
	"context"
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
	"filealloc/internal/topology"
)

// ErrBadConfig reports invalid solver configuration.
var ErrBadConfig = errors.New("neighbor: invalid configuration")

// Edge is one undirected communication link.
type Edge struct {
	I, J int
}

// EdgesOf extracts each undirected link of a graph once (I < J), the
// exchange schedule matching the physical topology.
func EdgesOf(g *topology.Graph) []Edge {
	n := g.NumNodes()
	seen := make(map[[2]int]bool)
	var edges []Edge
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, Edge{I: a, J: b})
		}
	}
	return edges
}

// Config assembles a neighbor-only solver.
type Config struct {
	// Objective is the utility to maximize.
	Objective core.Objective
	// Edges lists the undirected links over which exchanges happen; the
	// edge set must connect all variables or the algorithm converges to
	// per-component optima only.
	Edges []Edge
	// Beta is the exchange gain (default 0.05). The stable range shrinks
	// with the maximum node degree: β < α_stable/deg_max, since a node's
	// total update is the sum over its incident edges.
	Beta float64
	// Epsilon is the termination threshold on the global marginal
	// utility spread (default 1e-3). Detecting it needs no extra
	// communication in a synchronous simulation; a real deployment
	// would run a neighbour-based max/min diffusion, which costs the
	// graph diameter in extra rounds.
	Epsilon float64
	// MaxIterations bounds the run (default 100000).
	MaxIterations int
	// OnIteration observes each iteration.
	OnIteration func(core.Iteration)
}

func (c *Config) fill() error {
	if c.Objective == nil {
		return fmt.Errorf("%w: nil objective", ErrBadConfig)
	}
	if len(c.Edges) == 0 {
		return fmt.Errorf("%w: no edges", ErrBadConfig)
	}
	n := c.Objective.Dim()
	for _, e := range c.Edges {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n || e.I == e.J {
			return fmt.Errorf("%w: edge (%d,%d) invalid for %d variables", ErrBadConfig, e.I, e.J, n)
		}
	}
	if c.Beta == 0 {
		c.Beta = 0.05
	}
	if c.Beta < 0 || math.IsNaN(c.Beta) {
		return fmt.Errorf("%w: beta = %v", ErrBadConfig, c.Beta)
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("%w: epsilon = %v", ErrBadConfig, c.Epsilon)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 100000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("%w: max iterations = %d", ErrBadConfig, c.MaxIterations)
	}
	return nil
}

// Result reports a neighbor-only run.
type Result struct {
	// X is the final allocation.
	X []float64
	// Iterations performed.
	Iterations int
	// Converged reports the ε-criterion fired.
	Converged bool
	// Messages is the total message count (2 per edge per iteration —
	// each endpoint sends its marginal utility to the other).
	Messages int
}

// Solve runs the synchronous pairwise-exchange iteration from init.
func Solve(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	obj := cfg.Objective
	n := obj.Dim()
	x := make([]float64, n)
	// init taken from cfg? Solve keeps the signature small: the caller
	// seeds via SolveFrom.
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return solveFrom(ctx, cfg, x)
}

// SolveFrom runs the iteration from the given feasible start.
func SolveFrom(ctx context.Context, cfg Config, init []float64) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	if len(init) != cfg.Objective.Dim() {
		return Result{}, fmt.Errorf("%w: init has %d entries for dimension %d", core.ErrDimension, len(init), cfg.Objective.Dim())
	}
	for i, v := range init {
		if v < 0 || math.IsNaN(v) {
			return Result{}, fmt.Errorf("%w: init[%d] = %v", core.ErrInfeasible, i, v)
		}
	}
	x := append([]float64(nil), init...)
	return solveFrom(ctx, cfg, x)
}

// boundaryTol is the stock below which a node counts as empty for the
// exchange rules.
const boundaryTol = 1e-12

func solveFrom(ctx context.Context, cfg Config, x []float64) (Result, error) {
	obj := cfg.Objective
	n := obj.Dim()
	grad := make([]float64, n)
	res := Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.X = x
			res.Iterations = iter - 1
			return res, nil
		}
		if err := obj.Gradient(grad, x); err != nil {
			return Result{}, fmt.Errorf("neighbor: gradient at iteration %d: %w", iter, err)
		}

		// Per-edge KKT termination: the allocation is edge-wise optimal
		// when every link either has (nearly) equal marginal utilities
		// or its poorer endpoint has nothing left to give. This is a
		// purely local criterion — exactly what a neighbours-only
		// protocol can evaluate.
		converged := true
		for _, e := range cfg.Edges {
			diff := grad[e.I] - grad[e.J]
			if math.Abs(diff) < cfg.Epsilon {
				continue
			}
			giver := e.J
			if diff < 0 {
				giver = e.I
			}
			if x[giver] > boundaryTol {
				converged = false
				break
			}
		}
		if converged {
			res.X = x
			res.Iterations = iter - 1
			res.Converged = true
			return res, nil
		}

		// One exchange per edge, all from the same marginal-utility
		// snapshot (nodes announce once per round), applied
		// sequentially with per-exchange clamping to the giver's
		// current stock. Every pairwise transfer conserves the total
		// and keeps stocks non-negative, and each transfer moves mass
		// toward the higher marginal utility, so the round is an
		// ascent step: ⟨∇U, Δx⟩ = Σ_e d_e·(g_i − g_j) ≥ 0.
		for _, e := range cfg.Edges {
			d := cfg.Beta * (grad[e.I] - grad[e.J])
			switch {
			case d > 0: // j gives to i
				if d > x[e.J] {
					d = x[e.J]
				}
				x[e.I] += d
				x[e.J] -= d
			case d < 0: // i gives to j
				if -d > x[e.I] {
					d = -x[e.I]
				}
				x[e.I] += d
				x[e.J] -= d
			}
		}
		res.Messages += 2 * len(cfg.Edges)
		if cfg.OnIteration != nil {
			u, err := obj.Utility(x)
			if err != nil {
				return Result{}, fmt.Errorf("neighbor: utility at iteration %d: %w", iter, err)
			}
			cfg.OnIteration(core.Iteration{Index: iter, X: x, Utility: u, Alpha: cfg.Beta})
		}
	}
	res.X = x
	res.Iterations = cfg.MaxIterations
	return res, nil
}

// RingEdges returns the edge list of an n-node ring, the natural
// neighbours-only schedule for the paper's evaluation topology.
func RingEdges(n int) []Edge {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{I: i, J: (i + 1) % n})
	}
	return edges
}

// LineEdges returns the edge list of a path graph.
func LineEdges(n int) []Edge {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{I: i, J: i + 1})
	}
	return edges
}

// FullEdges returns all pairs — with which the pairwise algorithm mimics
// (a scaled version of) the full-exchange iteration.
func FullEdges(n int) []Edge {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{I: i, J: j})
		}
	}
	return edges
}
