package neighbor

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

func paperModel(t *testing.T) *costmodel.SingleFile {
	t.Helper()
	ring, err := topology.Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := topology.AccessCosts(ring, topology.UniformRates(4, 1), topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func asymmetricModel(t *testing.T) *costmodel.SingleFile {
	t.Helper()
	m, err := costmodel.NewSingleFile([]float64{2, 1, 3, 2.5}, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSolveConvergesToKKTOnRing(t *testing.T) {
	m := asymmetricModel(t)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveFrom(context.Background(), Config{
		Objective: m,
		Edges:     RingEdges(4),
		Beta:      0.05,
		Epsilon:   1e-6,
	}, []float64{0.8, 0.1, 0.1, 0})
	if err != nil {
		t.Fatalf("SolveFrom: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge after %d iterations", res.Iterations)
	}
	cost, err := m.Cost(res.X)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-sol.Cost) > 1e-5*(1+sol.Cost) {
		t.Errorf("neighbor-only cost %g vs KKT %g", cost, sol.Cost)
	}
}

func TestSolveFeasibilityConserved(t *testing.T) {
	m := asymmetricModel(t)
	var worst float64
	res, err := SolveFrom(context.Background(), Config{
		Objective: m,
		Edges:     LineEdges(4),
		Beta:      0.03,
		Epsilon:   1e-6,
		OnIteration: func(it core.Iteration) {
			var sum float64
			for _, v := range it.X {
				sum += v
			}
			if d := math.Abs(sum - 1); d > worst {
				worst = d
			}
		},
	}, []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Errorf("feasibility drift %g", worst)
	}
	for i, v := range res.X {
		if v < 0 {
			t.Errorf("x[%d] = %g negative", i, v)
		}
	}
}

func TestSolveMonotoneForSmallBeta(t *testing.T) {
	m := asymmetricModel(t)
	prev := math.Inf(-1)
	if _, err := SolveFrom(context.Background(), Config{
		Objective: m,
		Edges:     RingEdges(4),
		Beta:      0.01,
		Epsilon:   1e-6,
		OnIteration: func(it core.Iteration) {
			if it.Utility < prev-1e-12 {
				t.Errorf("utility decreased at iteration %d: %g -> %g", it.Index, prev, it.Utility)
			}
			prev = it.Utility
		},
	}, []float64{0.25, 0.25, 0.25, 0.25}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborSlowerThanBroadcastOnLine(t *testing.T) {
	// The information-diffusion cost: on a path graph the neighbor-only
	// algorithm needs many more iterations than the full-exchange
	// algorithm, but each iteration costs only 2|E| messages.
	const n = 8
	line, err := topology.Line(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := topology.AccessCosts(line, topology.UniformRates(n, 1), topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := make([]float64, n)
	start[0] = 1

	full, err := core.NewAllocator(m, core.WithAlpha(0.3), core.WithEpsilon(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run(context.Background(), start)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveFrom(context.Background(), Config{
		Objective: m,
		Edges:     EdgesOf(line),
		Beta:      0.05,
		Epsilon:   1e-4,
	}, start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !fullRes.Converged {
		t.Fatalf("convergence failed: neighbor=%v full=%v", res.Converged, fullRes.Converged)
	}
	if res.Iterations <= fullRes.Iterations {
		t.Errorf("neighbor-only took %d iterations vs full %d; expected diffusion to be slower",
			res.Iterations, fullRes.Iterations)
	}
	// Same optimum nonetheless.
	nCost, err := m.Cost(res.X)
	if err != nil {
		t.Fatal(err)
	}
	fCost := -fullRes.Utility
	if math.Abs(nCost-fCost) > 1e-3*(1+fCost) {
		t.Errorf("optima differ: neighbor %g vs full %g", nCost, fCost)
	}
	// Message accounting: 2 messages per edge per iteration.
	if res.Messages != 2*len(EdgesOf(line))*res.Iterations {
		t.Errorf("messages = %d, want %d", res.Messages, 2*len(EdgesOf(line))*res.Iterations)
	}
}

func TestFullEdgesMatchCompleteGraph(t *testing.T) {
	if got := len(FullEdges(6)); got != 15 {
		t.Errorf("FullEdges(6) = %d edges, want 15", got)
	}
	if got := len(RingEdges(6)); got != 6 {
		t.Errorf("RingEdges(6) = %d edges, want 6", got)
	}
	if got := len(LineEdges(6)); got != 5 {
		t.Errorf("LineEdges(6) = %d edges, want 5", got)
	}
}

func TestEdgesOfDeduplicatesBidirectionalLinks(t *testing.T) {
	ring, err := topology.Ring(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := EdgesOf(ring)
	if len(edges) != 5 {
		t.Fatalf("EdgesOf(ring5) = %d edges, want 5", len(edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e.I >= e.J {
			t.Errorf("edge (%d,%d) not normalized", e.I, e.J)
		}
		key := [2]int{e.I, e.J}
		if seen[key] {
			t.Errorf("duplicate edge (%d,%d)", e.I, e.J)
		}
		seen[key] = true
	}
}

func TestSolveBoundaryOptimum(t *testing.T) {
	// One node too expensive to host anything; the neighbor algorithm
	// must park it at zero like the others do.
	m, err := costmodel.NewSingleFile([]float64{0, 0, 100}, []float64{3}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveFrom(context.Background(), Config{
		Objective: m,
		Edges:     RingEdges(3),
		Beta:      0.02,
		Epsilon:   1e-6,
		// The global-spread criterion never fires at a boundary
		// optimum (the parked node keeps its bad gradient), so bound
		// the run and check the allocation directly.
		MaxIterations: 20000,
	}, []float64{0.3, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[2] > 1e-6 {
		t.Errorf("x[2] = %g, want ≈ 0", res.X[2])
	}
	if math.Abs(res.X[0]-0.5) > 1e-3 || math.Abs(res.X[1]-0.5) > 1e-3 {
		t.Errorf("X = %v, want ≈ (0.5, 0.5, 0)", res.X)
	}
}

func TestConfigValidation(t *testing.T) {
	m := asymmetricModel(t)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil objective", Config{Edges: RingEdges(4)}},
		{"no edges", Config{Objective: m}},
		{"bad edge", Config{Objective: m, Edges: []Edge{{I: 0, J: 9}}}},
		{"self edge", Config{Objective: m, Edges: []Edge{{I: 1, J: 1}}}},
		{"negative beta", Config{Objective: m, Edges: RingEdges(4), Beta: -1}},
		{"negative epsilon", Config{Objective: m, Edges: RingEdges(4), Epsilon: -1}},
		{"negative iterations", Config{Objective: m, Edges: RingEdges(4), MaxIterations: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(context.Background(), tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
	if _, err := SolveFrom(context.Background(), Config{Objective: m, Edges: RingEdges(4)}, []float64{1}); !errors.Is(err, core.ErrDimension) {
		t.Error("short init accepted")
	}
	if _, err := SolveFrom(context.Background(), Config{Objective: m, Edges: RingEdges(4)}, []float64{-1, 1, 0.5, 0.5}); !errors.Is(err, core.ErrInfeasible) {
		t.Error("negative init accepted")
	}
}

func TestSolveDefaultStartsUniform(t *testing.T) {
	m := paperModel(t)
	res, err := Solve(context.Background(), Config{
		Objective: m,
		Edges:     RingEdges(4),
		Epsilon:   1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform start on the symmetric ring is already optimal.
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("uniform start on symmetric ring: converged=%v after %d iterations", res.Converged, res.Iterations)
	}
}

// TestSolvePropertyFeasibilityOnRandomGraphs hammers the pairwise
// algorithm with random connected topologies and workloads: every run must
// conserve the total, keep stocks non-negative, and never increase cost.
func TestSolvePropertyFeasibilityOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	prop := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw)%6
		g, err := topology.RandomConnected(n, n/2, 0.5, 2, seed)
		if err != nil {
			return false
		}
		access := make([]float64, n)
		for i := range access {
			access[i] = rng.Float64() * 4
		}
		m, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
		if err != nil {
			return false
		}
		init := make([]float64, n)
		var sum float64
		for i := range init {
			init[i] = rng.Float64()
			sum += init[i]
		}
		for i := range init {
			init[i] /= sum
		}
		startCost, err := m.Cost(init)
		if err != nil {
			return false
		}
		res, err := SolveFrom(context.Background(), Config{
			Objective:     m,
			Edges:         EdgesOf(g),
			Beta:          0.02,
			Epsilon:       1e-4,
			MaxIterations: 50000,
		}, init)
		if err != nil {
			return false
		}
		var total float64
		for _, v := range res.X {
			if v < 0 {
				return false
			}
			total += v
		}
		if math.Abs(total-1) > 1e-6 {
			return false
		}
		endCost, err := m.Cost(res.X)
		if err != nil {
			return false
		}
		return endCost <= startCost+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSolveContextCancel(t *testing.T) {
	m := asymmetricModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveFrom(ctx, Config{
		Objective: m,
		Edges:     RingEdges(4),
		Beta:      1e-6,
	}, []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 0 {
		t.Errorf("canceled run reported %+v", res)
	}
}
