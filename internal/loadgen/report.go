package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
)

// PhaseReport aggregates one phase's outcomes. Every field is derived
// from protocol state (model latencies, counts, tick indices), so two
// runs of the same spec and seed produce byte-identical reports whatever
// the worker count.
type PhaseReport struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Ticks    int    `json:"ticks"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors"`
	// ErrorClasses breaks Errors down by outcome class (JSON encodes
	// map keys sorted, keeping the report deterministic).
	ErrorClasses map[string]int `json:"error_classes,omitempty"`
	Degraded     int            `json:"degraded"`
	Fallbacks    int            `json:"fallbacks"`
	P50Micros    int64          `json:"p50_us"`
	P95Micros    int64          `json:"p95_us"`
	P99Micros    int64          `json:"p99_us"`
	MeanMicros   int64          `json:"mean_us"`
	// Replans counts accepted (always certified) re-plans;
	// RejectedPlans the solves vetoed by the KKT certificate;
	// ColdFallbacks the accepted plans whose warm budget ran out.
	Replans          int `json:"replans"`
	CertifiedReplans int `json:"certified_replans"`
	RejectedPlans    int `json:"rejected_plans"`
	ColdFallbacks    int `json:"cold_fallbacks"`
	SolveIterations  int `json:"solve_iterations"`
	// ConvergenceLagTicks is the number of ticks from phase start to
	// the first certified re-plan superseding the plan the phase began
	// under; 0 when the phase never needed one.
	ConvergenceLagTicks int `json:"convergence_lag_ticks"`
	EpochEnd            int `json:"epoch_end"`
	AliveEnd            int `json:"alive_end"`
}

// Totals aggregates across phases.
type Totals struct {
	Requests         int `json:"requests"`
	Errors           int `json:"errors"`
	Degraded         int `json:"degraded"`
	Fallbacks        int `json:"fallbacks"`
	Replans          int `json:"replans"`
	CertifiedReplans int `json:"certified_replans"`
	RejectedPlans    int `json:"rejected_plans"`
}

// Report is the full phase report of one closed-loop run.
type Report struct {
	Spec   string        `json:"spec"`
	Seed   int64         `json:"seed"`
	Nodes  int           `json:"nodes"`
	Phases []PhaseReport `json:"phases"`
	Totals Totals        `json:"totals"`
}

func (r *Report) fillTotals() {
	var t Totals
	for _, p := range r.Phases {
		t.Requests += p.Requests
		t.Errors += p.Errors
		t.Degraded += p.Degraded
		t.Fallbacks += p.Fallbacks
		t.Replans += p.Replans
		t.CertifiedReplans += p.CertifiedReplans
		t.RejectedPlans += p.RejectedPlans
	}
	r.Totals = t
}

// JSON renders the report as indented JSON (stable field and map-key
// order).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// csvHeader is the fixed CSV column set.
const csvHeader = "phase,kind,ticks,requests,errors,degraded,fallbacks,p50_us,p95_us,p99_us,mean_us,replans,certified_replans,rejected_plans,cold_fallbacks,solve_iterations,convergence_lag_ticks,epoch_end,alive_end"

// CSV renders one row per phase under a fixed header.
func (r *Report) CSV() []byte {
	var b strings.Builder
	b.WriteString(csvHeader)
	b.WriteByte('\n')
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.Name, p.Kind, p.Ticks, p.Requests, p.Errors, p.Degraded, p.Fallbacks,
			p.P50Micros, p.P95Micros, p.P99Micros, p.MeanMicros,
			p.Replans, p.CertifiedReplans, p.RejectedPlans, p.ColdFallbacks,
			p.SolveIterations, p.ConvergenceLagTicks, p.EpochEnd, p.AliveEnd)
	}
	return []byte(b.String())
}
