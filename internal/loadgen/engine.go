package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"filealloc/internal/metrics"
	"filealloc/internal/sweep"
)

// latencyBounds are the fap_load_latency_micros histogram buckets
// (microseconds).
var latencyBounds = []int64{
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
}

// Config drives one closed-loop run.
type Config struct {
	// Spec is the load script; Spec.Nodes must match Target.Nodes().
	Spec Spec
	// Target is the cluster under test.
	Target Target
	// Workers fans each tick's batch over this many sweep workers
	// (default 1). The report is byte-identical at any setting.
	Workers int
	// Registry, when non-nil, receives the fap_load_* families.
	Registry *metrics.Registry
}

// loadMetrics holds the per-run fap_load_* instruments.
type loadMetrics struct {
	reg *metrics.Registry
}

func (lm loadMetrics) phase(name string) metrics.Label { return metrics.L("phase", name) }

// Run executes the spec tick by tick. Each tick: pre-draw the batch from
// the single seeded stream (serial, in tick order), fire it over the
// sweep workers (a barrier — every request completes before the control
// plane moves), aggregate outcomes in request-index order, then run one
// control-plane Tick. Randomness never crosses the worker boundary and
// every recorded number derives from protocol state, so the report is a
// pure function of (spec, seed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("loadgen: nil target")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if got := cfg.Target.Nodes(); got != cfg.Spec.Nodes {
		return nil, fmt.Errorf("loadgen: spec expects %d nodes, target has %d", cfg.Spec.Nodes, got)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	lm := loadMetrics{reg: reg}
	epochGauge := reg.Gauge("fap_load_epoch", "current plan epoch")
	aliveGauge := reg.Gauge("fap_load_alive", "nodes the failure detector considers alive")

	rng := rand.New(rand.NewSource(cfg.Spec.Seed))
	report := &Report{Spec: cfg.Spec.Name, Seed: cfg.Spec.Seed, Nodes: cfg.Spec.Nodes}

	globalTick := 0
	prevRPS := cfg.Spec.Phases[0].RPS
	lastP99 := int64(0)
	for _, phase := range cfg.Spec.Phases {
		pr := PhaseReport{Name: phase.Name, Kind: phase.Kind, Ticks: phase.Ticks, ConvergenceLagTicks: -1}
		phaseStartEpoch := 0
		baseRPS := prevRPS
		weights := phase.Weights
		if weights == nil {
			weights = make([]float64, cfg.Spec.Nodes)
			for i := range weights {
				weights[i] = 1
			}
		}
		cdf := weightCDF(weights)

		reqCounter := reg.Counter("fap_load_requests_total", "requests fired", lm.phase(phase.Name))
		errCounter := reg.Counter("fap_load_errors_total", "requests that failed after all recovery", lm.phase(phase.Name))
		degCounter := reg.Counter("fap_load_degraded_total", "requests served in degraded mode", lm.phase(phase.Name))
		fbCounter := reg.Counter("fap_load_fallbacks_total", "requests rerouted around a dead primary", lm.phase(phase.Name))
		latHist := reg.Histogram("fap_load_latency_micros", "model-derived access latency", latencyBounds, lm.phase(phase.Name))
		replanOK := reg.Counter("fap_load_replans_total", "re-plans by outcome", lm.phase(phase.Name), metrics.L("outcome", "certified"))
		replanRej := reg.Counter("fap_load_replans_total", "re-plans by outcome", lm.phase(phase.Name), metrics.L("outcome", "rejected"))
		lagGauge := reg.Gauge("fap_load_convergence_lag_ticks", "ticks from phase start to the first certified re-plan", lm.phase(phase.Name))

		var phaseLatencies []int64
		for pt := 0; pt < phase.Ticks; pt++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			t := float64(globalTick + 1)
			if pt == 0 {
				for _, node := range phase.Kill {
					if err := cfg.Target.Kill(node); err != nil {
						return nil, fmt.Errorf("loadgen: killing node %d: %w", node, err)
					}
				}
			}

			rps := phase.RPS
			if phase.Kind == PhaseRamp {
				rps = baseRPS + (phase.RPS-baseRPS)*float64(pt+1)/float64(phase.Ticks)
			}
			count := int(math.Round(rps))
			if count < 1 {
				count = 1
			}

			// Pre-draw the whole batch serially so the seeded stream is
			// consumed in a worker-independent order.
			batch := make([]Request, count)
			for i := range batch {
				batch[i] = Request{
					ID:     uint64(globalTick)<<20 | uint64(i),
					Origin: drawOrigin(cdf, rng.Float64()),
					U:      rng.Float64(),
					U2:     rng.Float64(),
					T:      t,
				}
			}
			outcomes := make([]Outcome, count)
			if err := sweep.Run(ctx, count, workers, func(ctx context.Context, i int) error {
				outcomes[i] = cfg.Target.Fire(ctx, batch[i])
				return nil
			}); err != nil {
				return nil, fmt.Errorf("loadgen: firing tick %d: %w", globalTick, err)
			}

			// Aggregate in index order (the one canonical order).
			tickLat := make([]int64, 0, count)
			for _, o := range outcomes {
				pr.Requests++
				reqCounter.Inc()
				if !o.OK {
					pr.Errors++
					errCounter.Inc()
					if pr.ErrorClasses == nil {
						pr.ErrorClasses = make(map[string]int)
					}
					pr.ErrorClasses[o.ErrClass]++
					continue
				}
				tickLat = append(tickLat, o.LatencyMicros)
				phaseLatencies = append(phaseLatencies, o.LatencyMicros)
				latHist.Observe(o.LatencyMicros)
				if o.Degraded {
					pr.Degraded++
					degCounter.Inc()
				}
				if o.Fallback {
					pr.Fallbacks++
					fbCounter.Inc()
				}
			}
			sort.Slice(tickLat, func(a, b int) bool { return tickLat[a] < tickLat[b] })
			if len(tickLat) > 0 {
				lastP99 = percentileMicros(tickLat, 0.99)
			}

			info, err := cfg.Target.Tick(ctx, t, lastP99)
			if err != nil {
				return nil, fmt.Errorf("loadgen: control tick %d: %w", globalTick, err)
			}
			if pt == 0 {
				// The epoch entering the phase: lag counts ticks until
				// the first certified plan that supersedes it.
				phaseStartEpoch = info.Epoch
				if info.Replanned {
					phaseStartEpoch = info.Epoch - 1
				}
			}
			if info.Replanned && info.Certified {
				pr.Replans++
				pr.CertifiedReplans++
				replanOK.Inc()
				pr.SolveIterations += info.SolveIterations
				if info.FellBack {
					pr.ColdFallbacks++
				}
				if pr.ConvergenceLagTicks < 0 && info.Epoch > phaseStartEpoch {
					pr.ConvergenceLagTicks = pt + 1
					lagGauge.Set(float64(pt + 1))
				}
			}
			if info.Rejected {
				pr.RejectedPlans++
				replanRej.Inc()
			}
			pr.EpochEnd = info.Epoch
			pr.AliveEnd = 0
			for _, a := range info.Alive {
				if a {
					pr.AliveEnd++
				}
			}
			epochGauge.Set(float64(info.Epoch))
			aliveGauge.Set(float64(pr.AliveEnd))

			globalTick++
			prevRPS = rps
		}

		sort.Slice(phaseLatencies, func(a, b int) bool { return phaseLatencies[a] < phaseLatencies[b] })
		if n := len(phaseLatencies); n > 0 {
			pr.P50Micros = percentileMicros(phaseLatencies, 0.50)
			pr.P95Micros = percentileMicros(phaseLatencies, 0.95)
			pr.P99Micros = percentileMicros(phaseLatencies, 0.99)
			var sum int64
			for _, l := range phaseLatencies {
				sum += l
			}
			pr.MeanMicros = sum / int64(n)
		}
		if pr.ConvergenceLagTicks < 0 {
			pr.ConvergenceLagTicks = 0
		}
		report.Phases = append(report.Phases, pr)
	}
	report.fillTotals()
	return report, nil
}

// weightCDF folds weights into a normalized cumulative distribution.
func weightCDF(weights []float64) []float64 {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1
	return cdf
}

// drawOrigin maps a uniform draw through the CDF.
func drawOrigin(cdf []float64, u float64) int {
	for i, c := range cdf {
		if u < c {
			return i
		}
	}
	return len(cdf) - 1
}

// percentileMicros is the nearest-rank percentile of an ascending-sorted
// slice.
func percentileMicros(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
