package loadgen

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"name": "tiny", "seed": 7, "nodes": 2,
		"phases": [
			{"name": "warm", "kind": "steady", "ticks": 3, "rps": 5},
			{"name": "up", "kind": "ramp", "ticks": 2, "rps": 10, "weights": [1, 3]}
		]
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "tiny" || s.Seed != 7 || s.Nodes != 2 || len(s.Phases) != 2 {
		t.Fatalf("parsed spec = %+v", s)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := func() Spec {
		return Spec{Name: "x", Seed: 1, Nodes: 2, Phases: []Phase{{Name: "p", Kind: PhaseSteady, Ticks: 1, RPS: 1}}}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"one node", func(s *Spec) { s.Nodes = 1 }, "at least 2 nodes"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"unnamed phase", func(s *Spec) { s.Phases[0].Name = "" }, "no name"},
		{"duplicate names", func(s *Spec) { s.Phases = append(s.Phases, s.Phases[0]) }, "duplicate phase name"},
		{"unknown kind", func(s *Spec) { s.Phases[0].Kind = "surge" }, "unknown kind"},
		{"zero ticks", func(s *Spec) { s.Phases[0].Ticks = 0 }, "ticks"},
		{"zero rps", func(s *Spec) { s.Phases[0].RPS = 0 }, "rps"},
		{"huge rps", func(s *Spec) { s.Phases[0].RPS = maxRPS + 1 }, "rps"},
		{"weight dim", func(s *Spec) { s.Phases[0].Weights = []float64{1} }, "weights"},
		{"negative weight", func(s *Spec) { s.Phases[0].Weights = []float64{1, -1} }, "negative weight"},
		{"zero weights", func(s *Spec) { s.Phases[0].Weights = []float64{0, 0} }, "sum to"},
		{"kill out of range", func(s *Spec) { s.Phases[0].Kill = []int{2} }, "unknown node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDefaultSpecValid(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
}

func TestDrawOrigin(t *testing.T) {
	cdf := weightCDF([]float64{1, 1, 2})
	for _, tc := range []struct {
		u    float64
		want int
	}{{0.0, 0}, {0.24, 0}, {0.25, 1}, {0.49, 1}, {0.5, 2}, {0.999, 2}} {
		if got := drawOrigin(cdf, tc.u); got != tc.want {
			t.Fatalf("drawOrigin(%v) = %d, want %d", tc.u, got, tc.want)
		}
	}
}

func TestPercentileMicros(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 50}, {0.95, 100}, {0.99, 100}, {0.1, 10}} {
		if got := percentileMicros(sorted, tc.q); got != tc.want {
			t.Fatalf("percentile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentileMicros(nil, 0.5); got != 0 {
		t.Fatalf("percentile of empty = %d, want 0", got)
	}
}

// fakeTarget is a scripted Target: fixed latency per node, a configurable
// re-plan tick, and full request capture for order checks.
type fakeTarget struct {
	nodes     int
	replanAt  map[int]bool // global tick (1-based T) -> certify a re-plan
	mu        sync.Mutex
	fired     []Request
	epoch     int
	tickCount int
}

func (f *fakeTarget) Nodes() int { return f.nodes }

func (f *fakeTarget) Fire(ctx context.Context, req Request) Outcome {
	f.mu.Lock()
	f.fired = append(f.fired, req)
	f.mu.Unlock()
	return Outcome{OK: true, Node: req.Origin, Epoch: f.epoch, LatencyMicros: int64(1000 + req.Origin)}
}

func (f *fakeTarget) Tick(ctx context.Context, t float64, p99 int64) (TickInfo, error) {
	f.tickCount++
	info := TickInfo{T: t, Epoch: f.epoch, Alive: make([]bool, f.nodes)}
	for i := range info.Alive {
		info.Alive[i] = true
	}
	if f.replanAt[int(t)] {
		f.epoch++
		info.Epoch = f.epoch
		info.Replanned = true
		info.Certified = true
		info.SolveIterations = 5
	}
	return info, nil
}

func (f *fakeTarget) Kill(node int) error { return nil }
func (f *fakeTarget) Close() error        { return nil }

func TestRunAggregatesAndMeasuresLag(t *testing.T) {
	spec := Spec{
		Name: "lag", Seed: 3, Nodes: 2,
		Phases: []Phase{
			{Name: "a", Kind: PhaseSteady, Ticks: 2, RPS: 4},
			{Name: "b", Kind: PhaseShift, Ticks: 3, RPS: 4, Weights: []float64{3, 1}},
		},
	}
	// Phase b starts at global tick 3; the re-plan lands on its second
	// tick -> convergence lag 2.
	ft := &fakeTarget{nodes: 2, replanAt: map[int]bool{4: true}}
	rep, err := Run(context.Background(), Config{Spec: spec, Target: ft})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	a, b := rep.Phases[0], rep.Phases[1]
	if a.Requests != 8 || b.Requests != 12 {
		t.Fatalf("requests = %d, %d; want 8, 12", a.Requests, b.Requests)
	}
	if a.Errors != 0 || b.Errors != 0 {
		t.Fatalf("errors = %d, %d", a.Errors, b.Errors)
	}
	if a.ConvergenceLagTicks != 0 {
		t.Fatalf("phase a lag = %d, want 0", a.ConvergenceLagTicks)
	}
	if b.ConvergenceLagTicks != 2 {
		t.Fatalf("phase b lag = %d, want 2", b.ConvergenceLagTicks)
	}
	if b.Replans != 1 || b.CertifiedReplans != 1 || b.SolveIterations != 5 {
		t.Fatalf("phase b replans = %+v", b)
	}
	if rep.Totals.Requests != 20 || rep.Totals.Replans != 1 {
		t.Fatalf("totals = %+v", rep.Totals)
	}

	// The batch IDs pack (tick, index) and batches are drawn serially.
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if len(ft.fired) != 20 {
		t.Fatalf("fired = %d", len(ft.fired))
	}
	for _, req := range ft.fired {
		if req.Origin < 0 || req.Origin >= 2 {
			t.Fatalf("bad origin %d", req.Origin)
		}
		if req.T != float64(int(req.ID>>20)+1) {
			t.Fatalf("request %d has T %v", req.ID, req.T)
		}
	}
}

func TestRunRampInterpolatesRate(t *testing.T) {
	spec := Spec{
		Name: "ramp", Seed: 1, Nodes: 2,
		Phases: []Phase{
			{Name: "low", Kind: PhaseSteady, Ticks: 1, RPS: 10},
			{Name: "up", Kind: PhaseRamp, Ticks: 5, RPS: 60},
		},
	}
	ft := &fakeTarget{nodes: 2}
	rep, err := Run(context.Background(), Config{Spec: spec, Target: ft})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Ramp ticks: 20, 30, 40, 50, 60 -> 200 requests.
	if got := rep.Phases[1].Requests; got != 200 {
		t.Fatalf("ramp requests = %d, want 200", got)
	}
}

func TestReportJSONAndCSV(t *testing.T) {
	rep := &Report{
		Spec: "s", Seed: 9, Nodes: 2,
		Phases: []PhaseReport{{
			Name: "p", Kind: PhaseSteady, Ticks: 1, Requests: 4, Errors: 1,
			ErrorClasses: map[string]int{"deadline": 1},
			P50Micros:    1000, P95Micros: 2000, P99Micros: 2000, MeanMicros: 1200,
			Replans: 1, CertifiedReplans: 1, ConvergenceLagTicks: 1, EpochEnd: 2, AliveEnd: 2,
		}},
	}
	rep.fillTotals()
	j1, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	j2, _ := rep.JSON()
	if string(j1) != string(j2) {
		t.Fatal("JSON not stable across encodes")
	}
	if !strings.Contains(string(j1), `"convergence_lag_ticks": 1`) {
		t.Fatalf("JSON missing lag field:\n%s", j1)
	}
	csv := string(rep.CSV())
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != csvHeader {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "p,steady,1,4,1,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}
