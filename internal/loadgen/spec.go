package loadgen

import (
	"encoding/json"
	"fmt"
)

// Phase kinds. Only "ramp" changes rate semantics (linear interpolation
// from the previous phase's final rate); the others are labels that make
// specs and reports self-describing.
const (
	PhaseSteady = "steady"
	PhaseRamp   = "ramp"
	PhaseBurst  = "burst"
	PhaseShift  = "shift"
	PhaseCrash  = "crash"
)

// maxRPS bounds per-tick batch sizes; request IDs pack the in-tick index
// into 20 bits.
const maxRPS = 1 << 20

// Phase is one segment of the load script.
type Phase struct {
	// Name labels the phase in the report (unique within a spec).
	Name string `json:"name"`
	// Kind is one of steady/ramp/burst/shift/crash.
	Kind string `json:"kind"`
	// Ticks is the phase length in virtual seconds.
	Ticks int `json:"ticks"`
	// RPS is the request rate per tick. A ramp phase interpolates
	// linearly from the previous phase's final rate to RPS; every other
	// kind holds RPS constant.
	RPS float64 `json:"rps"`
	// Weights is the per-origin demand distribution (normalized by the
	// engine); nil means uniform. A shift phase is just a phase whose
	// weights differ from its predecessor's.
	Weights []float64 `json:"weights,omitempty"`
	// Kill lists nodes crashed at the first tick of the phase.
	Kill []int `json:"kill,omitempty"`
}

// Spec is a full phased load script.
type Spec struct {
	// Name labels the run in the report.
	Name string `json:"name"`
	// Seed feeds the engine's single request-generation stream.
	Seed int64 `json:"seed"`
	// Nodes is the cluster size the spec expects.
	Nodes int `json:"nodes"`
	// Phases run in order.
	Phases []Phase `json:"phases"`
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(b []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return Spec{}, fmt.Errorf("loadgen: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("loadgen: spec needs at least 2 nodes, got %d", s.Nodes)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("loadgen: spec %q has no phases", s.Name)
	}
	seen := make(map[string]bool, len(s.Phases))
	for pi, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("loadgen: phase %d has no name", pi)
		}
		if seen[p.Name] {
			return fmt.Errorf("loadgen: duplicate phase name %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Kind {
		case PhaseSteady, PhaseRamp, PhaseBurst, PhaseShift, PhaseCrash:
		default:
			return fmt.Errorf("loadgen: phase %q has unknown kind %q", p.Name, p.Kind)
		}
		if p.Ticks < 1 {
			return fmt.Errorf("loadgen: phase %q has %d ticks", p.Name, p.Ticks)
		}
		if p.RPS <= 0 || p.RPS > maxRPS {
			return fmt.Errorf("loadgen: phase %q rps %v outside (0, %d]", p.Name, p.RPS, maxRPS)
		}
		if p.Weights != nil {
			if len(p.Weights) != s.Nodes {
				return fmt.Errorf("loadgen: phase %q has %d weights for %d nodes", p.Name, len(p.Weights), s.Nodes)
			}
			sum := 0.0
			for _, w := range p.Weights {
				if w < 0 {
					return fmt.Errorf("loadgen: phase %q has negative weight %v", p.Name, w)
				}
				sum += w
			}
			if sum <= 0 {
				return fmt.Errorf("loadgen: phase %q weights sum to %v", p.Name, sum)
			}
		}
		for _, k := range p.Kill {
			if k < 0 || k >= s.Nodes {
				return fmt.Errorf("loadgen: phase %q kills unknown node %d", p.Name, k)
			}
		}
	}
	return nil
}

// DefaultSpec is the canonical steady → shift → burst → crash script over
// a 5-node cluster: uniform steady demand, a demand shift toward nodes 0
// and 1, a burst at 2.2x the steady rate, then node 1 crashes under
// sustained load. Total capacity (5 x 25) comfortably exceeds the burst
// rate even with one node down.
func DefaultSpec() Spec {
	skew := []float64{0.4, 0.3, 0.1, 0.1, 0.1}
	return Spec{
		Name:  "steady-shift-burst-crash",
		Seed:  1,
		Nodes: 5,
		Phases: []Phase{
			{Name: "steady", Kind: PhaseSteady, Ticks: 10, RPS: 40},
			{Name: "shift", Kind: PhaseShift, Ticks: 10, RPS: 40, Weights: skew},
			{Name: "burst", Kind: PhaseBurst, Ticks: 8, RPS: 90, Weights: skew},
			{Name: "crash", Kind: PhaseCrash, Ticks: 12, RPS: 60, Weights: skew, Kill: []int{1}},
		},
	}
}
