// Package loadgen is the seeded, phased closed-loop load generator: it
// fires access requests at a serving cluster phase by phase (steady /
// ramp / burst / shift / crash), senses the outcomes, and emits a
// deterministic per-phase report (p50/p95/p99 latency, error rate,
// degraded-mode counts, and convergence lag after each demand shift).
//
// Determinism contract: this package never touches the wall clock — the
// fapvet walltime analyzer bans the time import here outright. Virtual
// time is the tick index (one tick = one virtual second); request
// latencies are the serving model's own numbers carried back in replies;
// and all randomness comes from one seeded source drained in tick order
// before any parallel work starts. Same spec + same seed ⇒ byte-identical
// reports at any -workers setting. Real time exists only at the CLI edge
// (cmd/fapload) and inside the transport the cluster runs on.
package loadgen

import "context"

// Request is one generated access request. All randomness a request needs
// is pre-drawn by the engine (single-threaded, in tick order) so firing
// requests in parallel cannot reorder the seeded stream: U drives the
// primary routing draw, U2 the hedge-fallback draw. T is the virtual
// timestamp (the tick clock) the serving node feeds to its demand
// estimator.
type Request struct {
	ID     uint64
	Origin int
	U      float64
	U2     float64
	T      float64
}

// Outcome is the result of one request, every field derived from
// protocol state (never from wall time).
type Outcome struct {
	// OK is true when some node served the request.
	OK bool
	// Node is the node that served it.
	Node int
	// Epoch is the plan epoch the serving node was on.
	Epoch int
	// LatencyMicros is the model-derived access latency in integer
	// microseconds (transfer + queueing at the serving node).
	LatencyMicros int64
	// Degraded marks a request served while part of the cluster was
	// down (including requests rerouted around a dead primary).
	Degraded bool
	// Fallback marks a request whose primary attempt failed and that
	// was rerouted to a surviving replica.
	Fallback bool
	// ErrClass classifies a failed request ("deadline", "crashed",
	// "overloaded", ...); empty when OK.
	ErrClass string
}

// TickInfo reports what the control plane did at a tick boundary:
// heartbeats, failure detection, drift checks, and any re-plan.
type TickInfo struct {
	// T is the virtual time of the tick boundary.
	T float64
	// Epoch is the plan epoch after the tick.
	Epoch int
	// Replanned is true when a new plan was accepted this tick;
	// Certified whether it carried a KKT certificate (accepted plans
	// always do — a failed certificate rejects the plan and sets
	// Rejected instead).
	Replanned bool
	Certified bool
	Rejected  bool
	// FellBack is true when the warm solve exhausted its incremental
	// budget and fell back to a cold solve.
	FellBack bool
	// SolveIterations is the iteration count of the accepted solve.
	SolveIterations int
	// Degraded is true while the current plan excludes dead nodes.
	Degraded bool
	// Alive is the failure detector's current per-node verdict.
	Alive []bool
	// Rates is the aggregated per-origin demand estimate the tick saw.
	Rates []float64
}

// Target is the serving cluster under test. agent.ServeCluster is the
// in-process implementation; Fire must be safe for concurrent use
// (the engine fans a tick's batch over sweep workers) and Tick/Kill are
// only called between batches, so view changes never race a batch.
type Target interface {
	// Nodes returns the cluster size.
	Nodes() int
	// Fire executes one request end to end (routing, deadlines,
	// retries, degraded fallback) and reports the outcome.
	Fire(ctx context.Context, req Request) Outcome
	// Tick runs one control-plane round at virtual time t: heartbeats,
	// demand aggregation, drift check, re-plan. p99Micros is the
	// previous tick's observed p99 latency, offered so the target can
	// derive a hedging delay from it.
	Tick(ctx context.Context, t float64, p99Micros int64) (TickInfo, error)
	// Kill crashes a node (fail-fast: subsequent sends to it error
	// immediately). The failure detector is NOT told — it must notice.
	Kill(node int) error
	// Close tears the cluster down.
	Close() error
}
