package loadgen_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/loadgen"
	"filealloc/internal/transport"
)

// newCluster builds a live in-process serving cluster sized for the spec:
// per-node service rate 2.2x the peak tick rate divided across nodes, so
// capacity comfortably exceeds demand even one node down.
func newCluster(t *testing.T, spec loadgen.Spec, faults *transport.FaultConfig) *agent.ServeCluster {
	t.Helper()
	peak := 0.0
	for _, p := range spec.Phases {
		if p.RPS > peak {
			peak = p.RPS
		}
	}
	mu := make([]float64, spec.Nodes)
	rates := make([]float64, spec.Nodes)
	for i := range mu {
		mu[i] = 2.2 * peak / float64(spec.Nodes)
		rates[i] = spec.Phases[0].RPS / float64(spec.Nodes)
	}
	sc, err := agent.NewServeCluster(context.Background(), agent.ServeClusterConfig{
		N:              spec.Nodes,
		Mu:             mu,
		K:              1,
		InitRates:      rates,
		RequestTimeout: 400 * time.Millisecond,
		Retries:        2,
		DownAfter:      2,
		Seed:           spec.Seed,
		Faults:         faults,
	})
	if err != nil {
		t.Fatalf("serve cluster: %v", err)
	}
	t.Cleanup(func() {
		if err := sc.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	return sc
}

func runSpec(t *testing.T, spec loadgen.Spec, workers int, faults *transport.FaultConfig) *loadgen.Report {
	t.Helper()
	sc := newCluster(t, spec, faults)
	rep, err := loadgen.Run(context.Background(), loadgen.Config{Spec: spec, Target: sc, Workers: workers})
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	return rep
}

// TestPhaseReportDeterministicAcrossWorkers is the determinism contract:
// the same spec and seed produce byte-identical JSON and CSV reports
// whether the batches are fired by 1 worker or 8.
func TestPhaseReportDeterministicAcrossWorkers(t *testing.T) {
	spec := loadgen.DefaultSpec()
	r1 := runSpec(t, spec, 1, nil)
	r8 := runSpec(t, spec, 8, nil)

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j8, err := r8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("JSON reports differ between workers 1 and 8:\n--- workers=1\n%s\n--- workers=8\n%s", j1, j8)
	}
	if !bytes.Equal(r1.CSV(), r8.CSV()) {
		t.Fatal("CSV reports differ between workers 1 and 8")
	}
}

// TestClosedLoopSmoke is the end-to-end gate (run under -race by
// scripts/check.sh): a steady phase then a crash phase over a live 5-node
// cluster. Degraded-mode serving must keep the error count at zero, the
// crash must produce a certified degraded re-plan within the lag ceiling,
// and no request may ever fail with a stale-plan (served_error) class.
func TestClosedLoopSmoke(t *testing.T) {
	spec := loadgen.Spec{
		Name:  "smoke",
		Seed:  1,
		Nodes: 5,
		Phases: []loadgen.Phase{
			{Name: "steady", Kind: loadgen.PhaseSteady, Ticks: 6, RPS: 30},
			{Name: "crash", Kind: loadgen.PhaseCrash, Ticks: 8, RPS: 30, Kill: []int{1}},
		},
	}
	rep := runSpec(t, spec, 4, nil)

	for _, p := range rep.Phases {
		if p.Errors != 0 {
			t.Errorf("phase %s: %d/%d requests failed (%v)", p.Name, p.Errors, p.Requests, p.ErrorClasses)
		}
		if _, ok := p.ErrorClasses["served_error"]; ok {
			t.Errorf("phase %s returned stale-plan errors", p.Name)
		}
		if p.Replans != p.CertifiedReplans {
			t.Errorf("phase %s: %d re-plans but only %d certified", p.Name, p.Replans, p.CertifiedReplans)
		}
	}
	crash := rep.Phases[1]
	if crash.AliveEnd != 4 {
		t.Errorf("crash phase ends with %d alive nodes, want 4", crash.AliveEnd)
	}
	if crash.CertifiedReplans == 0 {
		t.Error("crash phase never adopted a certified degraded re-plan")
	}
	if crash.ConvergenceLagTicks == 0 || crash.ConvergenceLagTicks > 6 {
		t.Errorf("crash convergence lag = %d ticks, want 1..6", crash.ConvergenceLagTicks)
	}
	if crash.Degraded == 0 {
		t.Error("no request was served in degraded mode after the crash")
	}
}

// TestChaosDegradedServing layers seeded message faults (dropped requests,
// dropped and delayed replies) on top of a crash. Retries, rerouting, and
// degraded mode must absorb everything: zero failed requests, no
// stale-plan errors, and every adopted plan certified.
func TestChaosDegradedServing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run burns real deadline time")
	}
	spec := loadgen.Spec{
		Name:  "chaos",
		Seed:  7,
		Nodes: 5,
		Phases: []loadgen.Phase{
			{Name: "steady", Kind: loadgen.PhaseSteady, Ticks: 5, RPS: 20},
			{Name: "shift", Kind: loadgen.PhaseShift, Ticks: 5, RPS: 20, Weights: []float64{0.4, 0.3, 0.1, 0.1, 0.1}},
			{Name: "crash", Kind: loadgen.PhaseCrash, Ticks: 8, RPS: 20, Weights: []float64{0.4, 0.3, 0.1, 0.1, 0.1}, Kill: []int{2}},
		},
	}
	faults := &transport.FaultConfig{
		Seed: 11,
		Rules: []transport.FaultRule{
			// 2% of incoming requests vanish (client burns a deadline and
			// retries); 2% of outgoing replies are dropped; 10% of replies
			// are delayed but well inside the deadline.
			{Kind: transport.FaultDrop, Direction: transport.DirRecv, Probability: 0.02},
			{Kind: transport.FaultDrop, Direction: transport.DirSend, Probability: 0.02},
			{Kind: transport.FaultDelay, Direction: transport.DirSend, Probability: 0.10, Delay: 2 * time.Millisecond},
		},
	}
	rep := runSpec(t, spec, 4, faults)

	if rep.Totals.Errors != 0 {
		for _, p := range rep.Phases {
			if p.Errors > 0 {
				t.Errorf("phase %s: %d/%d failed (%v)", p.Name, p.Errors, p.Requests, p.ErrorClasses)
			}
		}
		t.Fatalf("chaos run failed %d/%d requests", rep.Totals.Errors, rep.Totals.Requests)
	}
	for _, p := range rep.Phases {
		if _, ok := p.ErrorClasses["served_error"]; ok {
			t.Errorf("phase %s returned stale-plan errors", p.Name)
		}
		if p.Replans != p.CertifiedReplans {
			t.Errorf("phase %s: %d re-plans, %d certified", p.Name, p.Replans, p.CertifiedReplans)
		}
	}
	crash := rep.Phases[2]
	if crash.CertifiedReplans == 0 {
		t.Error("chaos crash phase never adopted a certified re-plan")
	}
	if crash.Degraded == 0 {
		t.Error("chaos crash phase served nothing in degraded mode")
	}
}

// TestHedgedServing exercises the hedged client path end to end. Hedging
// races wall-clock timers, so this run asserts service quality (all
// requests served) rather than byte determinism.
func TestHedgedServing(t *testing.T) {
	spec := loadgen.Spec{
		Name:  "hedged",
		Seed:  3,
		Nodes: 3,
		Phases: []loadgen.Phase{
			{Name: "steady", Kind: loadgen.PhaseSteady, Ticks: 4, RPS: 15},
		},
	}
	mu := []float64{11, 11, 11}
	rates := []float64{5, 5, 5}
	sc, err := agent.NewServeCluster(context.Background(), agent.ServeClusterConfig{
		N:              3,
		Mu:             mu,
		K:              1,
		InitRates:      rates,
		RequestTimeout: 400 * time.Millisecond,
		Retries:        1,
		DownAfter:      2,
		Seed:           3,
		HedgeDelay:     time.Millisecond,
		HedgeFromP99:   true,
	})
	if err != nil {
		t.Fatalf("serve cluster: %v", err)
	}
	t.Cleanup(func() {
		if err := sc.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	rep, err := loadgen.Run(context.Background(), loadgen.Config{Spec: spec, Target: sc, Workers: 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("hedged run failed %d/%d requests", rep.Totals.Errors, rep.Totals.Requests)
	}
}
