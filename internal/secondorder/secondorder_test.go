package secondorder

import (
	"context"
	"errors"
	"math"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

func mustModel(t *testing.T, access []float64, mu []float64, lambda, k float64) *costmodel.SingleFile {
	t.Helper()
	m, err := costmodel.NewSingleFile(access, mu, lambda, k)
	if err != nil {
		t.Fatalf("NewSingleFile: %v", err)
	}
	return m
}

func TestPlanStepFeasibilityAndDirection(t *testing.T) {
	x := []float64{0.4, 0.3, 0.3}
	grad := []float64{-1, -2, -3}
	hess := []float64{-2, -2, -2}
	st, err := PlanStep(x, grad, hess, []int{0, 1, 2}, 0.5)
	if err != nil {
		t.Fatalf("PlanStep: %v", err)
	}
	var total float64
	for _, d := range st.Delta {
		total += d
	}
	if math.Abs(total) > 1e-12 {
		t.Errorf("deltas sum to %g, want 0", total)
	}
	if st.Delta[0] <= 0 || st.Delta[2] >= 0 {
		t.Errorf("direction wrong: %v", st.Delta)
	}
	// With uniform curvature the weighted average equals the plain
	// average and the step reduces to the first-order step scaled by
	// 1/|h|.
	first, err := core.PlanStep(x, grad, []int{0, 1, 2}, 0.5/2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Delta {
		if math.Abs(st.Delta[i]-first.Delta[i]) > 1e-12 {
			t.Errorf("uniform-curvature step differs from scaled first-order: %v vs %v", st.Delta, first.Delta)
		}
	}
}

func TestPlanStepValidation(t *testing.T) {
	x := []float64{0.5, 0.5}
	grad := []float64{-1, -2}
	tests := []struct {
		name string
		hess []float64
		want error
	}{
		{"positive curvature", []float64{1, -1}, ErrBadObjective},
		{"zero curvature", []float64{0, -1}, ErrBadObjective},
		{"length mismatch", []float64{-1}, core.ErrDimension},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PlanStep(x, grad, tt.hess, []int{0, 1}, 1); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
	if _, err := PlanStep(x, grad, []float64{-1, -1}, []int{0, 1}, 0); !errors.Is(err, core.ErrBadConfig) {
		t.Error("zero alpha accepted")
	}
	if _, err := PlanStep(x, grad, []float64{-1, -1}, nil, 1); !errors.Is(err, core.ErrBadConfig) {
		t.Error("empty group accepted")
	}
}

func TestSecondOrderConvergesToSameOptimum(t *testing.T) {
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := NewAllocator(m, WithEpsilon(1e-8))
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	res, err := alloc.Run(context.Background(), []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(-res.Utility-sol.Cost) > 1e-6*(1+sol.Cost) {
		t.Errorf("cost %g vs KKT %g", -res.Utility, sol.Cost)
	}
}

func TestSecondOrderScaleResilience(t *testing.T) {
	// Section 8.2's claim: the second-derivative algorithm is "resilient
	// to changes in the scale of the problem, such as would be caused by
	// increasing the link costs". Scaling k and all C_i by 100 must not
	// change the iteration count, whereas the first-order algorithm at a
	// fixed α slows down or diverges.
	base := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	scaled := mustModel(t, []float64{200, 100, 300, 200}, []float64{1.5}, 1, 100)
	start := []float64{0.7, 0.1, 0.1, 0.1}

	run := func(m *costmodel.SingleFile, eps float64) core.Result {
		alloc, err := NewAllocator(m, WithEpsilon(eps), WithMaxIterations(5000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := alloc.Run(context.Background(), start)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// ε must scale with the utility so termination tests the same
	// relative accuracy.
	resBase := run(base, 1e-6)
	resScaled := run(scaled, 1e-4)
	if !resBase.Converged || !resScaled.Converged {
		t.Fatalf("convergence failed: base %+v scaled %+v", resBase.Reason, resScaled.Reason)
	}
	diff := resBase.Iterations - resScaled.Iterations
	if diff < -2 || diff > 2 {
		t.Errorf("iteration counts diverge under scaling: %d vs %d", resBase.Iterations, resScaled.Iterations)
	}
	for i := range resBase.X {
		if math.Abs(resBase.X[i]-resScaled.X[i]) > 1e-3 {
			t.Errorf("x[%d]: %g vs %g", i, resBase.X[i], resScaled.X[i])
		}
	}
}

func TestSecondOrderFasterThanFirstOrderOnIllConditioned(t *testing.T) {
	// Heterogeneous service rates make the curvature wildly uneven; the
	// Newton-like scaling should then need far fewer iterations than the
	// first-order algorithm at its best fixed stepsize.
	m := mustModel(t, []float64{1, 1, 1, 1}, []float64{2, 4, 8, 16}, 1, 1)
	start := []float64{0.25, 0.25, 0.25, 0.25}

	second, err := NewAllocator(m, WithEpsilon(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	resSecond, err := second.Run(context.Background(), start)
	if err != nil {
		t.Fatal(err)
	}
	if !resSecond.Converged {
		t.Fatalf("second order did not converge: %+v", resSecond)
	}

	bestFirst := math.MaxInt
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.5, 1, 2} {
		first, err := core.NewAllocator(m, core.WithAlpha(alpha), core.WithEpsilon(1e-8), core.WithMaxIterations(100000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := first.Run(context.Background(), start)
		if err != nil || !res.Converged {
			continue
		}
		if res.Iterations < bestFirst {
			bestFirst = res.Iterations
		}
	}
	if bestFirst == math.MaxInt {
		t.Fatal("first-order algorithm never converged")
	}
	if resSecond.Iterations > bestFirst {
		t.Errorf("second order took %d iterations, first order best %d", resSecond.Iterations, bestFirst)
	}
}

func TestSecondOrderStepsizeTolerance(t *testing.T) {
	// Any α in (0, 2) must converge — the wide-window property. Compare
	// against α = 1.9 in the first-order algorithm on the same problem,
	// which diverges (its stability window is α < 2/s ≈ 1.3).
	m := mustModel(t, []float64{2, 2, 2, 2}, []float64{1.5}, 1, 1)
	start := []float64{0.8, 0.1, 0.1, 0}
	for _, alpha := range []float64{0.2, 0.5, 1, 1.5, 1.9} {
		alloc, err := NewAllocator(m, WithAlpha(alpha), WithEpsilon(1e-6), WithMaxIterations(100000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := alloc.Run(context.Background(), start)
		if err != nil {
			t.Fatalf("alpha %g: %v", alpha, err)
		}
		if !res.Converged {
			t.Errorf("alpha %g: %v after %d iterations", alpha, res.Reason, res.Iterations)
		}
	}
}

func TestSecondOrderBoundaryOptimum(t *testing.T) {
	// One node too expensive to host anything: second-order must land on
	// the same boundary optimum.
	m := mustModel(t, []float64{0, 0, 100}, []float64{3}, 1, 1)
	alloc, err := NewAllocator(m, WithEpsilon(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), []float64{0.3, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.X[2] > 1e-9 {
		t.Errorf("x[2] = %g, want 0", res.X[2])
	}
	if math.Abs(res.X[0]-0.5) > 1e-6 || math.Abs(res.X[1]-0.5) > 1e-6 {
		t.Errorf("X = %v, want (0.5, 0.5, 0)", res.X)
	}
}

func TestSecondOrderValidation(t *testing.T) {
	m := mustModel(t, []float64{1, 2}, []float64{3}, 1, 1)
	if _, err := NewAllocator(nil); !errors.Is(err, core.ErrBadConfig) {
		t.Error("nil objective accepted")
	}
	if _, err := NewAllocator(&flatObjective{}); !errors.Is(err, ErrBadObjective) {
		t.Error("curvature-free objective accepted")
	}
	if _, err := NewAllocator(m, WithAlpha(-1)); !errors.Is(err, core.ErrBadConfig) {
		t.Error("negative alpha accepted")
	}
	alloc, err := NewAllocator(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.Run(context.Background(), []float64{0.5}); !errors.Is(err, core.ErrDimension) {
		t.Error("short init accepted")
	}
	if _, err := alloc.Run(context.Background(), []float64{-0.5, 1.5}); !errors.Is(err, core.ErrInfeasible) {
		t.Error("negative init accepted")
	}
}

type flatObjective struct{}

func (*flatObjective) Dim() int                             { return 2 }
func (*flatObjective) Utility(x []float64) (float64, error) { return 0, nil }
func (*flatObjective) Gradient(grad, x []float64) error     { return nil }

func TestSecondOrderTraceAndMonotonicity(t *testing.T) {
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	var utilities []float64
	alloc, err := NewAllocator(m,
		WithAlpha(1),
		WithEpsilon(1e-8),
		WithTrace(func(it core.Iteration) { utilities = append(utilities, it.Utility) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.Run(context.Background(), []float64{0.7, 0.1, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if len(utilities) < 2 {
		t.Fatalf("trace too short: %d", len(utilities))
	}
	for i := 1; i < len(utilities); i++ {
		if utilities[i] < utilities[i-1]-1e-12 {
			t.Errorf("utility decreased at %d: %g -> %g", i, utilities[i-1], utilities[i])
		}
	}
}

func TestSecondOrderMaxIterations(t *testing.T) {
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	alloc, err := NewAllocator(m, WithAlpha(0.001), WithEpsilon(1e-15), WithMaxIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != core.StopMaxIterations || res.Iterations != 3 {
		t.Errorf("got %v after %d iterations", res.Reason, res.Iterations)
	}
	var sum float64
	for _, v := range res.X {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("feasibility lost: sum = %g", sum)
	}
}

func TestSecondOrderContextCancel(t *testing.T) {
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	alloc, err := NewAllocator(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(ctx, []float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != core.StopCanceled {
		t.Errorf("reason = %v, want canceled", res.Reason)
	}
}

func TestSecondOrderMoreValidation(t *testing.T) {
	m := mustModel(t, []float64{1, 2}, []float64{3}, 1, 1)
	if _, err := NewAllocator(m, WithEpsilon(-1)); !errors.Is(err, core.ErrBadConfig) {
		t.Error("negative epsilon accepted")
	}
	if _, err := NewAllocator(m, WithMaxIterations(0)); !errors.Is(err, core.ErrBadConfig) {
		t.Error("zero iterations accepted")
	}
}
