// Package secondorder implements the second-derivative variant of the
// allocation algorithm sketched in the paper's section 8.2 ("We are at the
// moment investigating the use of second derivative information in this
// algorithm"). Instead of moving proportionally to the deviation of the raw
// marginal utility from its average, the step scales each deviation by the
// local curvature:
//
//	Δx_i = α·(g_i − ν)/|h_i|,   ν = Σ_j (g_j/|h_j|) / Σ_j (1/|h_j|)
//
// where g_i = ∂U/∂x_i and h_i = ∂²U/∂x_i². ν is the curvature-weighted
// average chosen so the deltas sum to zero (feasibility, as in Theorem 1);
// because the deltas approximate a projected Newton step, α = 1 recovers
// the Newton iterate on separable quadratics. The same construction powers
// the center-free algorithms of Ho, Servi & Suri and the second-derivative
// routing of Bertsekas–Gafni–Gallager, both cited by the paper.
//
// The two properties the paper reports from its pilot study fall out
// directly:
//
//   - Scale resilience: multiplying the utility by a constant rescales g
//     and h together, leaving Δx unchanged, so convergence speed is
//     unaffected by link-cost or service-rate scaling.
//   - Stepsize tolerance: the normalized step is a contraction for any
//     α ∈ (0, 2) on separable concave objectives, a much wider window than
//     the first-order algorithm's problem-dependent bound.
package secondorder

import (
	"context"
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
)

// ErrBadObjective is returned when the objective lacks curvature
// information or yields unusable second derivatives.
var ErrBadObjective = errors.New("secondorder: objective unusable")

// curvatureObjective pairs the Objective and Curvature interfaces.
type curvatureObjective interface {
	core.Objective
	core.Curvature
}

// PlanStep computes one curvature-scaled step over a constraint group with
// the same active-set handling as the first-order algorithm: boundary
// variables that would shrink are excluded (and the weighted average ν
// recomputed), excluded variables whose marginal utility beats ν are
// re-admitted, and the final step is ratio-truncated to preserve
// non-negativity. The objective must be strictly concave along every
// coordinate (h_i < 0) at x.
func PlanStep(x, grad, hess []float64, group []int, alpha float64) (core.Step, error) {
	if len(x) != len(grad) || len(x) != len(hess) {
		return core.Step{}, fmt.Errorf("%w: x/grad/hess length mismatch", core.ErrDimension)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return core.Step{}, fmt.Errorf("%w: alpha = %v", core.ErrBadConfig, alpha)
	}
	m := len(group)
	if m == 0 {
		return core.Step{}, fmt.Errorf("%w: empty constraint group", core.ErrBadConfig)
	}
	for _, gi := range group {
		if gi < 0 || gi >= len(x) {
			return core.Step{}, fmt.Errorf("%w: group index %d outside dimension %d", core.ErrDimension, gi, len(x))
		}
		if math.IsNaN(grad[gi]) || math.IsInf(grad[gi], 0) {
			return core.Step{}, fmt.Errorf("%w: non-finite marginal utility at %d", core.ErrDiverged, gi)
		}
		if !(hess[gi] < 0) || math.IsInf(hess[gi], 0) {
			return core.Step{}, fmt.Errorf("%w: need strictly negative curvature, h[%d] = %v", ErrBadObjective, gi, hess[gi])
		}
	}

	step := core.Step{
		Delta:      make([]float64, m),
		Active:     make([]bool, m),
		Truncation: 1,
	}
	for k := range step.Active {
		step.Active[k] = true
	}
	const boundaryTol = 1e-12

	for pass := 0; ; pass++ {
		if pass > 4*m+4 {
			return core.Step{}, fmt.Errorf("%w: active-set computation did not reach a fixed point", core.ErrDiverged)
		}
		// Curvature-weighted average ν over the active set.
		var num, den float64
		active := 0
		for k, on := range step.Active {
			if on {
				gi := group[k]
				w := 1 / -hess[gi]
				num += grad[gi] * w
				den += w
				active++
			}
		}
		if active == 0 {
			for k := range step.Delta {
				step.Delta[k] = 0
			}
			step.AvgMarginal = math.NaN()
			return step, nil
		}
		nu := num / den
		step.AvgMarginal = nu
		for k, on := range step.Active {
			if on {
				gi := group[k]
				step.Delta[k] = alpha * (grad[gi] - nu) / -hess[gi]
			} else {
				step.Delta[k] = 0
			}
		}
		if active == 1 {
			return step, nil
		}

		dropped := false
		for k, on := range step.Active {
			if on && x[group[k]] <= boundaryTol && step.Delta[k] <= 0 {
				step.Active[k] = false
				dropped = true
			}
		}
		if dropped {
			continue
		}
		best := -1
		for k, on := range step.Active {
			if !on && (best < 0 || grad[group[k]] > grad[group[best]]) {
				best = k
			}
		}
		if best >= 0 && grad[group[best]] > nu {
			step.Active[best] = true
			continue
		}
		break
	}

	t := 1.0
	for k, gi := range group {
		if d := step.Delta[k]; d < 0 {
			if ratio := x[gi] / -d; ratio < t {
				t = ratio
			}
		}
	}
	if t < 1 {
		step.Truncation = t
		for k := range step.Delta {
			step.Delta[k] *= t
		}
	}
	return step, nil
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithAlpha sets the normalized stepsize (default 1, the Newton step).
func WithAlpha(alpha float64) Option {
	return func(a *Allocator) { a.alpha = alpha }
}

// WithEpsilon sets the termination threshold on the marginal-utility
// spread (default 1e-3).
func WithEpsilon(eps float64) Option {
	return func(a *Allocator) { a.epsilon = eps }
}

// WithMaxIterations bounds the run (default 10000).
func WithMaxIterations(n int) Option {
	return func(a *Allocator) { a.maxIter = n }
}

// WithTrace registers a per-iteration hook.
func WithTrace(fn func(core.Iteration)) Option {
	return func(a *Allocator) { a.trace = fn }
}

// Allocator runs the second-derivative algorithm.
type Allocator struct {
	obj     curvatureObjective
	groups  [][]int
	alpha   float64
	epsilon float64
	maxIter int
	trace   func(core.Iteration)
}

// NewAllocator builds a second-order solver; the objective must implement
// core.Curvature.
func NewAllocator(obj core.Objective, opts ...Option) (*Allocator, error) {
	if obj == nil {
		return nil, fmt.Errorf("%w: nil objective", core.ErrBadConfig)
	}
	curved, ok := obj.(curvatureObjective)
	if !ok {
		return nil, fmt.Errorf("%w: objective does not expose second derivatives", ErrBadObjective)
	}
	a := &Allocator{
		obj:     curved,
		alpha:   1,
		epsilon: 1e-3,
		maxIter: 10000,
	}
	for _, opt := range opts {
		opt(a)
	}
	switch {
	case a.alpha <= 0 || math.IsNaN(a.alpha):
		return nil, fmt.Errorf("%w: alpha = %v", core.ErrBadConfig, a.alpha)
	case a.epsilon <= 0:
		return nil, fmt.Errorf("%w: epsilon = %v", core.ErrBadConfig, a.epsilon)
	case a.maxIter < 1:
		return nil, fmt.Errorf("%w: max iterations = %d", core.ErrBadConfig, a.maxIter)
	}
	if g, ok := obj.(core.Grouped); ok {
		a.groups = g.Groups()
	}
	if len(a.groups) == 0 {
		all := make([]int, obj.Dim())
		for i := range all {
			all[i] = i
		}
		a.groups = [][]int{all}
	}
	return a, nil
}

// Run iterates from init until the marginal-utility spread over every
// group's active set falls below ε.
func (a *Allocator) Run(ctx context.Context, init []float64) (core.Result, error) {
	if len(init) != a.obj.Dim() {
		return core.Result{}, fmt.Errorf("%w: init has %d entries for dimension %d", core.ErrDimension, len(init), a.obj.Dim())
	}
	for i, v := range init {
		if v < 0 || math.IsNaN(v) {
			return core.Result{}, fmt.Errorf("%w: init[%d] = %v", core.ErrInfeasible, i, v)
		}
	}
	x := append([]float64(nil), init...)
	grad := make([]float64, len(x))
	hess := make([]float64, len(x))

	u, err := a.obj.Utility(x)
	if err != nil {
		return core.Result{}, fmt.Errorf("secondorder: evaluating initial utility: %w", err)
	}
	if a.trace != nil {
		a.trace(core.Iteration{Index: 0, X: x, Utility: u, Alpha: a.alpha})
	}
	prevU := u
	for iter := 1; iter <= a.maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return core.Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: core.StopCanceled}, nil
		}
		if err := a.obj.Gradient(grad, x); err != nil {
			return core.Result{}, fmt.Errorf("secondorder: gradient at iteration %d: %w", iter, err)
		}
		if err := a.obj.SecondDerivative(hess, x); err != nil {
			return core.Result{}, fmt.Errorf("secondorder: curvature at iteration %d: %w", iter, err)
		}
		steps := make([]core.Step, len(a.groups))
		converged := true
		movable := false
		spread := 0.0
		for gi, g := range a.groups {
			st, err := PlanStep(x, grad, hess, g, a.alpha)
			if err != nil {
				return core.Result{}, fmt.Errorf("secondorder: planning iteration %d: %w", iter, err)
			}
			steps[gi] = st
			sp := st.Spread(grad, g)
			if sp > spread {
				spread = sp
			}
			if sp >= a.epsilon {
				converged = false
			}
			if !st.IsNoOp() {
				movable = true
			}
		}
		if converged {
			return core.Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: core.StopConverged, Converged: true}, nil
		}
		if !movable {
			return core.Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: core.StopStalled}, nil
		}
		for gi, g := range a.groups {
			if err := steps[gi].Apply(x, g); err != nil {
				return core.Result{}, fmt.Errorf("secondorder: applying iteration %d: %w", iter, err)
			}
		}
		u, err := a.obj.Utility(x)
		if err != nil {
			return core.Result{}, fmt.Errorf("secondorder: utility at iteration %d: %w", iter, err)
		}
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return core.Result{}, fmt.Errorf("%w: utility %v at iteration %d", core.ErrDiverged, u, iter)
		}
		if a.trace != nil {
			a.trace(core.Iteration{Index: iter, X: x, Utility: u, Spread: spread, Alpha: a.alpha})
		}
		prevU = u
	}
	return core.Result{X: x, Utility: prevU, Iterations: a.maxIter, Reason: core.StopMaxIterations}, nil
}
