package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
)

// SnapshotSchema identifies the catalog snapshot JSON format.
const SnapshotSchema = "filealloc-catalog/1"

// Snapshot is a self-contained, serializable picture of a solved
// catalog: every object's allocation and true demand, row-major with
// Nodes entries per object. It is what `fapsim catalog -snapshot-out`
// writes and `fapctl placements` queries.
type Snapshot struct {
	Schema  string    `json:"schema"`
	Objects int       `json:"objects"`
	Nodes   int       `json:"nodes"`
	Shards  int       `json:"shards"`
	Epoch   int       `json:"epoch"`
	Skew    float64   `json:"skew"`
	Lambda  float64   `json:"lambda"`
	X       []float64 `json:"x"`
	Demand  []float64 `json:"demand"`
}

// Snapshot captures the catalog's current state.
func (c *Catalog) Snapshot() Snapshot {
	nodes := c.cfg.Nodes
	s := Snapshot{
		Schema:  SnapshotSchema,
		Objects: c.cfg.Objects,
		Nodes:   nodes,
		Shards:  len(c.shards),
		Epoch:   c.epoch,
		Skew:    c.cfg.Skew,
		Lambda:  c.cfg.Lambda,
		X:       make([]float64, c.cfg.Objects*nodes),
		Demand:  make([]float64, c.cfg.Objects*nodes),
	}
	for _, sh := range c.shards {
		copy(s.X[sh.lo*nodes:sh.hi*nodes], sh.x)
		copy(s.Demand[sh.lo*nodes:sh.hi*nodes], sh.demand)
	}
	return s
}

// Encode serializes the snapshot as JSON.
func (s Snapshot) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSnapshot parses and validates a catalog snapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("catalog: decoding snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return Snapshot{}, fmt.Errorf("%w: snapshot schema %q, want %q", ErrCatalog, s.Schema, SnapshotSchema)
	}
	if s.Objects < 1 || s.Nodes < 1 {
		return Snapshot{}, fmt.Errorf("%w: snapshot has %d objects × %d nodes", ErrCatalog, s.Objects, s.Nodes)
	}
	if len(s.X) != s.Objects*s.Nodes || len(s.Demand) != s.Objects*s.Nodes {
		return Snapshot{}, fmt.Errorf("%w: snapshot rows have %d/%d entries, want %d",
			ErrCatalog, len(s.X), len(s.Demand), s.Objects*s.Nodes)
	}
	return s, nil
}

// Placement is one node's share of an object, paired with that node's
// demand rate for it.
type Placement struct {
	Node   int     `json:"node"`
	Share  float64 `json:"share"`
	Demand float64 `json:"demand"`
}

// Placements returns object id's non-zero placements, largest share
// first (ties broken by node index, so the order is deterministic).
func (s Snapshot) Placements(id int) ([]Placement, error) {
	if id < 0 || id >= s.Objects {
		return nil, fmt.Errorf("%w: object %d of %d", ErrCatalog, id, s.Objects)
	}
	row := s.X[id*s.Nodes : (id+1)*s.Nodes]
	demand := s.Demand[id*s.Nodes : (id+1)*s.Nodes]
	out := make([]Placement, 0, s.Nodes)
	for j, share := range row {
		if share > 0 {
			out = append(out, Placement{Node: j, Share: share, Demand: demand[j]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Share != out[b].Share {
			return out[a].Share > out[b].Share
		}
		return out[a].Node < out[b].Node
	})
	return out, nil
}
