package catalog

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"filealloc/internal/metrics"
	"filealloc/internal/sweep"
)

// runScenario drives a full catalog lifetime — cold fill, sensing, three
// drift/re-solve epochs — under the given sweep parallelism and chunk
// size, and returns the encoded catalog snapshot and metrics snapshot.
func runScenario(t *testing.T, workers, chunk int) ([]byte, []byte) {
	t.Helper()
	cfg := Config{
		Objects:       96,
		Nodes:         6,
		ShardSize:     16,
		DriftFraction: 0.3,
		Seed:          11,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := metrics.New()
	c.AttachMetrics(reg)
	ctx := sweep.WithWorkers(context.Background(), workers)
	if chunk > 0 {
		ctx = sweep.WithChunkSize(ctx, chunk)
	}
	ctx = sweep.WithMetrics(ctx, reg)

	if _, err := c.SolveCold(ctx); err != nil {
		t.Fatalf("SolveCold: %v", err)
	}
	if err := c.Sense(ctx); err != nil {
		t.Fatalf("Sense: %v", err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := c.Drift(ctx); err != nil {
			t.Fatalf("Drift: %v", err)
		}
		if _, err := c.ReSolve(ctx); err != nil {
			t.Fatalf("ReSolve: %v", err)
		}
	}

	snap, err := c.Snapshot().Encode()
	if err != nil {
		t.Fatalf("Snapshot.Encode: %v", err)
	}
	msnap, err := metrics.EncodeJSON(reg.Snapshot())
	if err != nil {
		t.Fatalf("metrics.EncodeJSON: %v", err)
	}
	return snap, msnap
}

// TestCatalogDeterminism pins the headline reproducibility contract:
// catalog state and metrics are byte-identical whether the sweeps ran
// serially, on eight workers, or with item-at-a-time claiming.
func TestCatalogDeterminism(t *testing.T) {
	refSnap, refMetrics := runScenario(t, 1, 0)
	for _, workers := range []int{1, 8} {
		for _, chunk := range []int{0, 1} {
			if workers == 1 && chunk == 0 {
				continue
			}
			name := fmt.Sprintf("workers=%d/chunk=%d", workers, chunk)
			snap, msnap := runScenario(t, workers, chunk)
			if !bytes.Equal(refSnap, snap) {
				t.Errorf("%s: catalog snapshot differs from serial reference", name)
			}
			if !bytes.Equal(refMetrics, msnap) {
				t.Errorf("%s: metrics snapshot differs from serial reference", name)
			}
		}
	}
}
