package catalog

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

func solvedSnapshot(t *testing.T) Snapshot {
	t.Helper()
	c, err := New(Config{Objects: 12, Nodes: 5, ShardSize: 4, Seed: 9})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.SolveCold(context.Background()); err != nil {
		t.Fatalf("SolveCold: %v", err)
	}
	return c.Snapshot()
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := solvedSnapshot(t)
	if snap.Schema != SnapshotSchema || snap.Objects != 12 || snap.Nodes != 5 || snap.Shards != 3 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot did not round-trip")
	}
}

func TestDecodeSnapshotRejectsInvalid(t *testing.T) {
	snap := solvedSnapshot(t)
	if _, err := DecodeSnapshot([]byte("{not json")); err == nil {
		t.Errorf("decoded malformed JSON")
	}
	wrongSchema := snap
	wrongSchema.Schema = "filealloc-catalog/999"
	data, _ := wrongSchema.Encode()
	if _, err := DecodeSnapshot(data); !errors.Is(err, ErrCatalog) {
		t.Errorf("wrong schema: err = %v, want ErrCatalog", err)
	}
	truncated := snap
	truncated.X = snap.X[:len(snap.X)-1]
	data, _ = truncated.Encode()
	if _, err := DecodeSnapshot(data); !errors.Is(err, ErrCatalog) {
		t.Errorf("truncated rows: err = %v, want ErrCatalog", err)
	}
	empty := snap
	empty.Objects = 0
	data, _ = empty.Encode()
	if _, err := DecodeSnapshot(data); !errors.Is(err, ErrCatalog) {
		t.Errorf("zero objects: err = %v, want ErrCatalog", err)
	}
}

func TestSnapshotPlacements(t *testing.T) {
	snap := solvedSnapshot(t)
	for id := 0; id < snap.Objects; id++ {
		places, err := snap.Placements(id)
		if err != nil {
			t.Fatalf("Placements(%d): %v", id, err)
		}
		if len(places) == 0 {
			t.Fatalf("object %d has no placements", id)
		}
		total := 0.0
		for i, p := range places {
			if p.Share <= 0 {
				t.Errorf("object %d: zero-share placement %+v listed", id, p)
			}
			if i > 0 && places[i-1].Share < p.Share {
				t.Errorf("object %d: placements not sorted by share: %v before %v",
					id, places[i-1].Share, p.Share)
			}
			if p.Node < 0 || p.Node >= snap.Nodes {
				t.Errorf("object %d: placement on node %d of %d", id, p.Node, snap.Nodes)
			}
			if p.Demand != snap.Demand[id*snap.Nodes+p.Node] {
				t.Errorf("object %d node %d: demand %v, want %v",
					id, p.Node, p.Demand, snap.Demand[id*snap.Nodes+p.Node])
			}
			total += p.Share
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("object %d: placement shares sum to %v", id, total)
		}
	}
	for _, bad := range []int{-1, snap.Objects} {
		if _, err := snap.Placements(bad); !errors.Is(err, ErrCatalog) {
			t.Errorf("Placements(%d): err = %v, want ErrCatalog", bad, err)
		}
	}
}
