// Package catalog scales the paper's single-file solver from one file to
// a placement service: a catalog of N independent objects, each with its
// own Zipf-skewed demand vector over the cluster, sharded and
// batch-solved over the internal/sweep worker pool. Cold fills run the
// full allocator per object; after demand drifts, re-solves go through
// the core.Solver interface's warm path — each object's
// internal/estimate tracker flags drift against the demand its current
// plan assumed, un-drifted objects are skipped entirely, and drifted
// ones are re-solved incrementally from their previous allocation
// (core.WarmSolver), with costmodel.VerifyKKT certifying every warm
// early-exit. This is the ROADMAP's million-object service: the headline
// number is objects/sec, cold vs. warm.
//
// Everything is deterministic: demand, drift, and synthetic sensing are
// hash-derived from Config.Seed, solves are exact functions of their
// inputs, and batches use the sweep engine's order-preserving claiming —
// so catalog state and metrics snapshots are byte-identical across
// worker counts and chunk sizes.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/estimate"
	"filealloc/internal/metrics"
	"filealloc/internal/records"
	"filealloc/internal/sweep"
	"filealloc/internal/topology"
)

// ErrCatalog reports invalid catalog configuration or misuse.
var ErrCatalog = errors.New("catalog: invalid configuration")

// Config sizes and parameterizes a catalog. The zero value of every
// field except Objects picks a sensible default.
type Config struct {
	// Objects is the catalog size (required).
	Objects int
	// Nodes is the cluster size (default 8). The cluster is a uniform
	// ring; per-object demand decides which nodes are cheap.
	Nodes int
	// ShardSize is the number of objects per shard (default 256).
	// Shards are the sweep's work items: contiguous id ranges owned by
	// one worker at a time.
	ShardSize int
	// Skew is the Zipf exponent shaping each object's demand over the
	// nodes (default 1).
	Skew float64
	// Mu is the per-node service rate μ (default 1.5); must exceed
	// Lambda so every feasible allocation has stable queues.
	Mu float64
	// K is the delay-vs-communication scaling factor (default 1).
	K float64
	// Lambda is each object's total access rate λ (default 1).
	Lambda float64
	// DynamicAlpha is the Theorem-2 dynamic stepsize safety factor
	// (default 0.5).
	DynamicAlpha float64
	// Epsilon is the marginal-utility spread termination threshold
	// (default 1e-6).
	Epsilon float64
	// KKTTol is the relative tolerance of the VerifyKKT certificate on
	// warm early-exits (default 1e-5).
	KKTTol float64
	// DriftThreshold is the relative rate deviation above which a
	// tracker flags an object for re-solve (default 0.2; see
	// estimate.DriftExceeds).
	DriftThreshold float64
	// DriftFraction is the fraction of objects whose demand is
	// re-drawn each Drift epoch. Zero means demand never moves (there
	// is no default — a drift-free catalog is meaningful, it is the
	// warm path's best case).
	DriftFraction float64
	// WarmSteps is the incremental-step budget before a re-solve falls
	// back to a cold solve (default 64). Most drifted objects converge
	// within a few dozen warm steps; a long tail sits near a vertex
	// where the dynamic stepsize is tiny and creeps for hundreds. The
	// default is the knee of that curve — and a fallback continues from
	// the current iterate, so an exhausted budget wastes little.
	WarmSteps int
	// HalfLife is the rate estimators' exponential-window half-life,
	// in sensing-time units (default 16).
	HalfLife float64
	// EpochWindow is the sensing window advanced per Sense/Drift call
	// (default 32 — two half-lives, so estimates cover ~75% of the
	// distance to a moved rate within one epoch).
	EpochWindow float64
	// Seed derives demand shapes, drift selection, and re-drawn demand
	// (default 1).
	Seed uint64
}

func (cfg *Config) applyDefaults() {
	if cfg.Nodes == 0 {
		cfg.Nodes = 8
	}
	if cfg.ShardSize == 0 {
		cfg.ShardSize = 256
	}
	if cfg.Skew == 0 {
		cfg.Skew = 1
	}
	if cfg.Mu == 0 {
		cfg.Mu = 1.5
	}
	if cfg.K == 0 {
		cfg.K = 1
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.DynamicAlpha == 0 {
		cfg.DynamicAlpha = 0.5
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-6
	}
	if cfg.KKTTol == 0 {
		cfg.KKTTol = 1e-5
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.2
	}
	if cfg.WarmSteps == 0 {
		cfg.WarmSteps = 64
	}
	if cfg.HalfLife == 0 {
		cfg.HalfLife = 16
	}
	if cfg.EpochWindow == 0 {
		cfg.EpochWindow = 32
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

func (cfg Config) validate() error {
	switch {
	case cfg.Objects < 1:
		return fmt.Errorf("%w: %d objects", ErrCatalog, cfg.Objects)
	case cfg.Nodes < 2:
		return fmt.Errorf("%w: %d nodes", ErrCatalog, cfg.Nodes)
	case cfg.ShardSize < 1:
		return fmt.Errorf("%w: shard size %d", ErrCatalog, cfg.ShardSize)
	case cfg.Mu <= cfg.Lambda:
		return fmt.Errorf("%w: μ = %v must exceed λ = %v", ErrCatalog, cfg.Mu, cfg.Lambda)
	case cfg.Lambda <= 0 || math.IsNaN(cfg.Lambda):
		return fmt.Errorf("%w: λ = %v", ErrCatalog, cfg.Lambda)
	case cfg.Skew < 0 || math.IsNaN(cfg.Skew):
		return fmt.Errorf("%w: skew %v", ErrCatalog, cfg.Skew)
	case cfg.DriftFraction < 0 || cfg.DriftFraction > 1 || math.IsNaN(cfg.DriftFraction):
		return fmt.Errorf("%w: drift fraction %v", ErrCatalog, cfg.DriftFraction)
	case cfg.DriftThreshold < 0 || cfg.DriftThreshold >= 1 || math.IsNaN(cfg.DriftThreshold):
		return fmt.Errorf("%w: drift threshold %v", ErrCatalog, cfg.DriftThreshold)
	case cfg.EpochWindow <= 0 || math.IsNaN(cfg.EpochWindow):
		return fmt.Errorf("%w: epoch window %v", ErrCatalog, cfg.EpochWindow)
	}
	return nil
}

// Stats counts the work one pass (or the catalog's lifetime) performed.
// All fields are object counts except Steps, which totals solver
// iterations.
type Stats struct {
	// Cold counts full solves from the uniform initial allocation.
	Cold int64
	// Warm counts re-solves that converged on the incremental path.
	Warm int64
	// Fallback counts re-solves whose warm budget ran out (or whose
	// certificate was vetoed) and escalated to a cold solve.
	Fallback int64
	// Skipped counts objects whose tracker flagged no drift — their
	// allocation was left untouched.
	Skipped int64
	// Drifted counts objects the tracker flagged for re-solve.
	Drifted int64
	// DriftApplied counts demand re-draws applied by Drift.
	DriftApplied int64
	// Steps totals solver iterations across all solves.
	Steps int64
}

func (s *Stats) add(o Stats) {
	s.Cold += o.Cold
	s.Warm += o.Warm
	s.Fallback += o.Fallback
	s.Skipped += o.Skipped
	s.Drifted += o.Drifted
	s.DriftApplied += o.DriftApplied
	s.Steps += o.Steps
}

// shard is one contiguous range of object ids with structure-of-arrays
// state. A shard is only ever touched by the single sweep worker that
// claimed it, so it needs no locking.
type shard struct {
	lo, hi   int       // object ids [lo, hi)
	demand   []float64 // true demand rates, (hi-lo)×nodes row-major
	x        []float64 // current allocation, same layout
	gen      []int     // demand generation, bumped per applied drift
	models   []*costmodel.SingleFile
	cold     []*core.Allocator
	warm     []*core.WarmSolver
	trackers []*estimate.Tracker
}

func (sh *shard) count() int { return sh.hi - sh.lo }

// meters is the catalog's metrics surface (nil when none attached). All
// series are integer-valued and event-counted, so snapshots stay
// byte-identical across worker scheduling.
type meters struct {
	cold, warm, fallback *metrics.Counter
	skipped, drifted     *metrics.Counter
	driftApplied, epochs *metrics.Counter
	steps                *metrics.Counter
	resolveIters         *metrics.Histogram
}

// Catalog is the solved object catalog. Construction (New) only lays out
// state; SolveCold fills every allocation, Sense establishes the demand
// baselines, and Drift/ReSolve advance epochs. Methods are not safe for
// concurrent use with each other; each method parallelizes internally
// over the sweep pool configured on its context.
type Catalog struct {
	cfg    Config
	pair   [][]float64 // round-trip node-pair costs of the uniform ring
	zipf   *records.Popularity
	shards []*shard
	total  Stats
	epoch  int
	now    float64
	sensed bool
	m      *meters
}

// New lays out a catalog: demand vectors, per-object cost models, cold
// and warm solvers, and drift trackers. No solves happen yet.
func New(cfg Config) (*Catalog, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ring, err := topology.Ring(cfg.Nodes, 1)
	if err != nil {
		return nil, fmt.Errorf("catalog: building ring: %w", err)
	}
	pair, err := topology.PairCosts(ring, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("catalog: pair costs: %w", err)
	}
	zipf, err := records.Zipf(cfg.Nodes, cfg.Skew)
	if err != nil {
		return nil, fmt.Errorf("catalog: demand shape: %w", err)
	}
	c := &Catalog{cfg: cfg, pair: pair, zipf: zipf}

	nodes := cfg.Nodes
	access := make([]float64, nodes)
	service := []float64{cfg.Mu}
	for lo := 0; lo < cfg.Objects; lo += cfg.ShardSize {
		hi := lo + cfg.ShardSize
		if hi > cfg.Objects {
			hi = cfg.Objects
		}
		n := hi - lo
		sh := &shard{
			lo:       lo,
			hi:       hi,
			demand:   make([]float64, n*nodes),
			x:        make([]float64, n*nodes),
			gen:      make([]int, n),
			models:   make([]*costmodel.SingleFile, n),
			cold:     make([]*core.Allocator, n),
			warm:     make([]*core.WarmSolver, n),
			trackers: make([]*estimate.Tracker, n),
		}
		for o := 0; o < n; o++ {
			id := lo + o
			row := sh.demand[o*nodes : (o+1)*nodes]
			c.fillDemand(id, 0, row)
			c.accessCosts(row, access)
			model, err := costmodel.NewSingleFile(access, service, cfg.Lambda, cfg.K)
			if err != nil {
				return nil, fmt.Errorf("catalog: object %d model: %w", id, err)
			}
			alloc, err := core.NewAllocator(model,
				core.WithDynamicAlpha(cfg.DynamicAlpha),
				core.WithEpsilon(cfg.Epsilon),
				core.WithKKTCheck())
			if err != nil {
				return nil, fmt.Errorf("catalog: object %d allocator: %w", id, err)
			}
			warm, err := core.NewWarmSolver(alloc, core.WarmConfig{
				MaxSteps: cfg.WarmSteps,
				Certify: func(x []float64, q float64) error {
					return model.VerifyKKT(x, q, cfg.KKTTol)
				},
			})
			if err != nil {
				return nil, fmt.Errorf("catalog: object %d warm solver: %w", id, err)
			}
			tracker, err := estimate.NewTracker(nodes, cfg.HalfLife)
			if err != nil {
				return nil, fmt.Errorf("catalog: object %d tracker: %w", id, err)
			}
			sh.models[o] = model
			sh.cold[o] = alloc
			sh.warm[o] = warm
			sh.trackers[o] = tracker
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Objects returns the catalog size.
func (c *Catalog) Objects() int { return c.cfg.Objects }

// Nodes returns the cluster size.
func (c *Catalog) Nodes() int { return c.cfg.Nodes }

// NumShards returns the number of shards (the sweep's work items).
func (c *Catalog) NumShards() int { return len(c.shards) }

// Epoch returns the number of completed drift epochs.
func (c *Catalog) Epoch() int { return c.epoch }

// Stats returns the catalog's cumulative work counters.
func (c *Catalog) Stats() Stats { return c.total }

// AttachMetrics registers the catalog's counters on reg; subsequent
// passes record into them. Sweep-level queue-depth metrics are attached
// separately via sweep.WithMetrics on the context.
func (c *Catalog) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m := &meters{
		cold:         reg.Counter("fap_catalog_solves_total", "Catalog solves by kind.", metrics.L("kind", "cold")),
		warm:         reg.Counter("fap_catalog_solves_total", "Catalog solves by kind.", metrics.L("kind", "warm")),
		fallback:     reg.Counter("fap_catalog_solves_total", "Catalog solves by kind.", metrics.L("kind", "fallback")),
		skipped:      reg.Counter("fap_catalog_objects_skipped_total", "Objects left untouched by a re-solve pass (no drift flagged)."),
		drifted:      reg.Counter("fap_catalog_objects_drifted_total", "Objects flagged by their tracker for re-solve."),
		driftApplied: reg.Counter("fap_catalog_drift_applied_total", "Demand re-draws applied by drift epochs."),
		epochs:       reg.Counter("fap_catalog_epochs_total", "Completed drift epochs."),
		steps:        reg.Counter("fap_catalog_solve_steps_total", "Total solver iterations across all solves."),
		resolveIters: reg.Histogram("fap_catalog_resolve_iterations",
			"Solver iterations per re-solved object (warm and fallback).",
			[]int64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
	c.m = m
}

// record merges one pass's stats into the cumulative totals and the
// attached metrics.
func (c *Catalog) record(st Stats) {
	c.total.add(st)
	if c.m == nil {
		return
	}
	c.m.cold.Add(st.Cold)
	c.m.warm.Add(st.Warm)
	c.m.fallback.Add(st.Fallback)
	c.m.skipped.Add(st.Skipped)
	c.m.drifted.Add(st.Drifted)
	c.m.driftApplied.Add(st.DriftApplied)
	c.m.steps.Add(st.Steps)
}

// solveScratch bundles one sweep worker's reusable buffers: the core
// solver scratch plus catalog-side vectors, so steady-state re-solves
// allocate nothing per object.
type solveScratch struct {
	core    *core.Scratch
	init    []float64
	access  []float64
	drifted []int
}

func (c *Catalog) newSolveScratch() *solveScratch {
	return &solveScratch{
		core:    core.NewScratch(),
		init:    make([]float64, c.cfg.Nodes),
		access:  make([]float64, c.cfg.Nodes),
		drifted: make([]int, 0, c.cfg.Nodes),
	}
}

// SolveCold solves every object from the uniform initial allocation —
// the catalog fill. It can be called again at any time to re-solve the
// whole catalog from scratch (the results are idempotent for unchanged
// demand).
func (c *Catalog) SolveCold(ctx context.Context) (Stats, error) {
	nodes := c.cfg.Nodes
	per := make([]Stats, len(c.shards))
	err := sweep.RunWithScratch(ctx, len(c.shards), sweep.WorkersFrom(ctx), c.newSolveScratch,
		func(ctx context.Context, si int, s *solveScratch) error {
			sh := c.shards[si]
			st := &per[si]
			for o := 0; o < sh.count(); o++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				for j := range s.init {
					s.init[j] = 1 / float64(nodes)
				}
				res, err := sh.cold[o].Solve(ctx, s.init, s.core)
				if err != nil {
					return fmt.Errorf("catalog: cold solve of object %d: %w", sh.lo+o, err)
				}
				copy(sh.x[o*nodes:(o+1)*nodes], res.X)
				st.Cold++
				st.Steps += int64(res.Iterations)
			}
			return nil
		})
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for i := range per {
		st.add(per[i])
	}
	c.record(st)
	return st, nil
}

// Sense advances the sensing clock one epoch window, feeding every
// object's tracker synthetic access events drawn from its current true
// demand, and marks the resulting estimates as each object's planning
// baseline. Call it once after SolveCold (so the baselines describe the
// demand the allocations were planned for) and rely on Drift for later
// windows.
func (c *Catalog) Sense(ctx context.Context) error {
	t0, w := c.now, c.cfg.EpochWindow
	err := sweep.Run(ctx, len(c.shards), sweep.WorkersFrom(ctx), func(ctx context.Context, si int) error {
		sh := c.shards[si]
		nodes := c.cfg.Nodes
		for o := 0; o < sh.count(); o++ {
			if err := senseObject(sh.trackers[o], sh.demand[o*nodes:(o+1)*nodes], t0, w); err != nil {
				return fmt.Errorf("catalog: sensing object %d: %w", sh.lo+o, err)
			}
			sh.trackers[o].MarkPlanned(t0 + w)
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.now = t0 + w
	c.sensed = true
	return nil
}

// Drift advances one demand epoch: a hash-selected DriftFraction of
// objects get their demand re-drawn (a rotated, re-weighted Zipf shape —
// a large move), then every tracker senses one window of events from the
// now-current demand. It returns the number of objects whose demand
// changed. Baselines are not re-marked here — that is ReSolve's job, and
// only for the objects it actually re-plans.
func (c *Catalog) Drift(ctx context.Context) (int, error) {
	if !c.sensed {
		return 0, fmt.Errorf("%w: Drift before Sense", ErrCatalog)
	}
	c.epoch++
	epoch := c.epoch
	t0, w := c.now, c.cfg.EpochWindow
	applied := make([]int, len(c.shards))
	err := sweep.Run(ctx, len(c.shards), sweep.WorkersFrom(ctx), func(ctx context.Context, si int) error {
		sh := c.shards[si]
		nodes := c.cfg.Nodes
		for o := 0; o < sh.count(); o++ {
			id := sh.lo + o
			row := sh.demand[o*nodes : (o+1)*nodes]
			if c.drifts(id, epoch) {
				sh.gen[o]++
				c.fillDemand(id, sh.gen[o], row)
				applied[si]++
			}
			if err := senseObject(sh.trackers[o], row, t0, w); err != nil {
				return fmt.Errorf("catalog: sensing object %d: %w", id, err)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.now = t0 + w
	total := 0
	for _, n := range applied {
		total += n
	}
	c.record(Stats{DriftApplied: int64(total)})
	if c.m != nil {
		c.m.epochs.Inc()
	}
	return total, nil
}

// ReSolve is the warm pass: every object whose tracker flags drift above
// the threshold is re-solved through its WarmSolver seeded from the
// previous allocation (model access costs refreshed from the current
// demand first); everything else is skipped untouched. Flagged objects
// re-mark their baselines, so a stable demand stops being re-solved
// after one pass.
func (c *Catalog) ReSolve(ctx context.Context) (Stats, error) {
	if !c.sensed {
		return Stats{}, fmt.Errorf("%w: ReSolve before Sense", ErrCatalog)
	}
	nodes := c.cfg.Nodes
	now, threshold := c.now, c.cfg.DriftThreshold
	per := make([]Stats, len(c.shards))
	err := sweep.RunWithScratch(ctx, len(c.shards), sweep.WorkersFrom(ctx), c.newSolveScratch,
		func(ctx context.Context, si int, s *solveScratch) error {
			sh := c.shards[si]
			st := &per[si]
			for o := 0; o < sh.count(); o++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				var err error
				s.drifted, err = sh.trackers[o].AppendDrifted(s.drifted[:0], now, threshold)
				if err != nil {
					return fmt.Errorf("catalog: drift check of object %d: %w", sh.lo+o, err)
				}
				if len(s.drifted) == 0 {
					st.Skipped++
					continue
				}
				st.Drifted++
				row := sh.demand[o*nodes : (o+1)*nodes]
				c.accessCosts(row, s.access)
				if err := sh.models[o].SetAccessCosts(s.access); err != nil {
					return fmt.Errorf("catalog: updating object %d: %w", sh.lo+o, err)
				}
				xrow := sh.x[o*nodes : (o+1)*nodes]
				res, fellBack, err := sh.warm[o].SolveWarm(ctx, xrow, s.core)
				if err != nil {
					return fmt.Errorf("catalog: warm solve of object %d: %w", sh.lo+o, err)
				}
				copy(xrow, res.X)
				if fellBack {
					st.Fallback++
				} else {
					st.Warm++
				}
				st.Steps += int64(res.Iterations)
				sh.trackers[o].MarkPlanned(now)
				if c.m != nil {
					c.m.resolveIters.Observe(int64(res.Iterations))
				}
			}
			return nil
		})
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for i := range per {
		st.add(per[i])
	}
	c.record(st)
	return st, nil
}

// senseObject feeds one tracker round(rate·w) evenly spaced events per
// node over the window (t0, t0+w], the last landing exactly on the
// window boundary. An unchanged demand therefore produces an identical
// event pattern every epoch, and the estimator's warm-up correction
// cancels the window-to-window accumulation exactly — un-drifted
// estimates are epoch-constant, which is what makes skip decisions
// reliable.
//
//fap:zeroalloc
func senseObject(tr *estimate.Tracker, demand []float64, t0, w float64) error {
	for j, r := range demand {
		m := int(math.Round(r * w))
		for k := m - 1; k >= 0; k-- {
			if err := tr.Observe(j, t0+w-w*float64(k)/float64(m)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fillDemand writes object id's demand vector at the given drift
// generation: a Zipf shape rotated by id (so different objects favor
// different nodes) with a gen-keyed hash re-weighting of each node in
// [0.5, 1.5]×, normalized to total rate λ. An applied drift (gen bump)
// re-draws the weights — node rates move by up to 3× relative to each
// other, enough to flip placement decisions, while the shape's backbone
// stays put so the drifted problem remains in warm-start range.
//
//fap:zeroalloc
func (c *Catalog) fillDemand(id, gen int, out []float64) {
	nodes := c.cfg.Nodes
	h := mix64(c.cfg.Seed ^ mix64(uint64(id)+1) ^ mix64(uint64(gen)<<20))
	var sum float64
	for j := 0; j < nodes; j++ {
		w := c.zipf.Prob((j+id)%nodes) * (0.5 + unitFloat(mix64(h^uint64(j))))
		out[j] = w
		sum += w
	}
	for j := range out {
		out[j] *= c.cfg.Lambda / sum
	}
}

// drifts reports whether object id's demand is re-drawn at the given
// epoch (a seeded hash decision, independent per (id, epoch)).
//
//fap:zeroalloc
func (c *Catalog) drifts(id, epoch int) bool {
	const driftSalt = 0xD96EB1A810CAAF5B
	u := unitFloat(mix64(mix64(c.cfg.Seed^driftSalt^uint64(id)+1) ^ uint64(epoch)))
	return u < c.cfg.DriftFraction
}

// accessCosts derives the traffic-weighted access costs C_i = Σ_j
// (d_j/Σd)·pair[j][i] from a demand vector (topology.AccessCosts without
// the per-call allocation).
//
//fap:zeroalloc
func (c *Catalog) accessCosts(demand, out []float64) {
	var total float64
	for _, dj := range demand {
		total += dj
	}
	for i := range out {
		var ci float64
		for j, dj := range demand {
			ci += dj * c.pair[j][i]
		}
		out[i] = ci / total
	}
}

// mix64 is SplitMix64's finalizer: a deterministic, well-distributed
// 64-bit hash used for demand shapes and drift selection (no global
// rand, no per-run state).
//
//fap:zeroalloc
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unitFloat maps a hash to [0, 1).
//
//fap:zeroalloc
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }
