package catalog

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

// TestWarmResolveMatchesColdProperty is the correctness property behind
// the warm path: across a thousand randomized drift instances, a warm
// re-solve seeded from the stale optimum lands on the same allocation as
// a cold solve of the drifted problem from scratch, and every warm
// early-exit carries a KKT certificate.
func TestWarmResolveMatchesColdProperty(t *testing.T) {
	instances := 1000
	if testing.Short() {
		instances = 100
	}
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	warmScratch, coldScratch := core.NewScratch(), core.NewScratch()
	warmCount, certified := 0, 0

	for inst := 0; inst < instances; inst++ {
		n := 2 + rng.Intn(7)
		access := make([]float64, n)
		for i := range access {
			access[i] = 3 * rng.Float64()
		}
		mu := 1.2 + rng.Float64() // λ = 1, so every allocation is stable
		k := 0.1 + 1.9*rng.Float64()
		model, err := costmodel.NewSingleFile(access, []float64{mu}, 1, k)
		if err != nil {
			t.Fatalf("instance %d: NewSingleFile: %v", inst, err)
		}
		// The generous iteration cap covers the rare ill-conditioned
		// instance (two nearly-tied marginals keep the dynamic stepsize
		// tiny; the worst draw in this suite needs ~18k iterations).
		alloc, err := core.NewAllocator(model,
			core.WithDynamicAlpha(0.5),
			core.WithEpsilon(1e-6),
			core.WithKKTCheck(),
			core.WithMaxIterations(100000))
		if err != nil {
			t.Fatalf("instance %d: NewAllocator: %v", inst, err)
		}
		warm, err := core.NewWarmSolver(alloc, core.WarmConfig{
			MaxSteps: 32,
			Certify: func(x []float64, q float64) error {
				certified++
				return model.VerifyKKT(x, q, 1e-5)
			},
		})
		if err != nil {
			t.Fatalf("instance %d: NewWarmSolver: %v", inst, err)
		}

		uniform := make([]float64, n)
		for i := range uniform {
			uniform[i] = 1 / float64(n)
		}
		staleRes, err := alloc.Solve(ctx, uniform, coldScratch)
		if err != nil {
			t.Fatalf("instance %d: pre-drift solve: %v", inst, err)
		}
		stale := append([]float64(nil), staleRes.X...)

		// Drift: re-scale every access cost by a random factor in
		// [0.25, 1.75] — a large move of the communication geometry.
		drifted := make([]float64, n)
		for i := range drifted {
			drifted[i] = access[i] * (0.25 + 1.5*rng.Float64())
		}
		if err := model.SetAccessCosts(drifted); err != nil {
			t.Fatalf("instance %d: SetAccessCosts: %v", inst, err)
		}

		certBefore := certified
		warmRes, fellBack, err := warm.SolveWarm(ctx, stale, warmScratch)
		if err != nil {
			t.Fatalf("instance %d: warm solve: %v", inst, err)
		}
		if !warmRes.Converged {
			t.Fatalf("instance %d: warm solve did not converge: %+v", inst, warmRes)
		}
		if !fellBack {
			warmCount++
			if certified != certBefore+1 {
				t.Fatalf("instance %d: warm early-exit without exactly one KKT certificate (%d calls)",
					inst, certified-certBefore)
			}
		}
		warmX := append([]float64(nil), warmRes.X...)

		coldRes, err := alloc.Solve(ctx, uniform, coldScratch)
		if err != nil {
			t.Fatalf("instance %d: cold re-solve: %v", inst, err)
		}
		for i := range warmX {
			if d := math.Abs(warmX[i] - coldRes.X[i]); d > 1e-4 {
				t.Fatalf("instance %d: warm and cold disagree at node %d: %v vs %v (Δ=%v)",
					inst, i, warmX[i], coldRes.X[i], d)
			}
		}
	}

	// The warm path must be the common case, or the catalog's speedup
	// story is fiction.
	if warmCount < instances/2 {
		t.Errorf("only %d of %d instances converged on the warm path", warmCount, instances)
	}
	t.Logf("warm path: %d/%d instances, %d certificates", warmCount, instances, certified)
}
