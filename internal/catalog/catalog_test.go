package catalog

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"filealloc/internal/metrics"
)

// testConfig is a small catalog exercising multiple shards, including a
// ragged final one.
func testConfig() Config {
	return Config{
		Objects:       80,
		Nodes:         6,
		ShardSize:     16,
		DriftFraction: 0.3,
		Seed:          3,
	}
}

func TestCatalogValidation(t *testing.T) {
	bad := []Config{
		{},                                    // no objects
		{Objects: -1},                         // negative objects
		{Objects: 4, Nodes: 1},                // degenerate cluster
		{Objects: 4, ShardSize: -1},           // bad shard size
		{Objects: 4, Mu: 1, Lambda: 2},        // unstable full placement
		{Objects: 4, DriftFraction: 1.5},      // fraction outside [0, 1]
		{Objects: 4, DriftFraction: -0.1},     // fraction outside [0, 1]
		{Objects: 4, DriftThreshold: 1},       // threshold outside [0, 1)
		{Objects: 4, Skew: math.NaN()},        // NaN skew
		{Objects: 4, EpochWindow: math.NaN()}, // NaN window
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrCatalog) {
			t.Errorf("config %d (%+v): err = %v, want ErrCatalog", i, cfg, err)
		}
	}

	c, err := New(Config{Objects: 10, ShardSize: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.NumShards() != 3 {
		t.Errorf("10 objects in shards of 4: NumShards = %d, want 3", c.NumShards())
	}
	if c.Objects() != 10 || c.Nodes() != 8 {
		t.Errorf("accessors: %d objects × %d nodes, want 10 × 8 (default)", c.Objects(), c.Nodes())
	}
}

func TestCatalogUsageOrder(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if _, err := c.Drift(ctx); !errors.Is(err, ErrCatalog) {
		t.Errorf("Drift before Sense: err = %v, want ErrCatalog", err)
	}
	if _, err := c.ReSolve(ctx); !errors.Is(err, ErrCatalog) {
		t.Errorf("ReSolve before Sense: err = %v, want ErrCatalog", err)
	}
}

// checkFeasible asserts every object's allocation is a valid point of
// the feasible region: entries in [0, 1] summing to 1.
func checkFeasible(t *testing.T, s Snapshot) {
	t.Helper()
	for id := 0; id < s.Objects; id++ {
		row := s.X[id*s.Nodes : (id+1)*s.Nodes]
		sum := 0.0
		for j, xi := range row {
			if xi < 0 || xi > 1 {
				t.Fatalf("object %d node %d: share %v outside [0, 1]", id, j, xi)
			}
			sum += xi
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("object %d: shares sum to %v, want 1", id, sum)
		}
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := metrics.New()
	c.AttachMetrics(reg)
	ctx := context.Background()

	cold, err := c.SolveCold(ctx)
	if err != nil {
		t.Fatalf("SolveCold: %v", err)
	}
	if cold.Cold != 80 || cold.Warm != 0 || cold.Skipped != 0 {
		t.Errorf("cold fill stats = %+v, want 80 cold solves", cold)
	}
	if cold.Steps == 0 {
		t.Errorf("cold fill reported zero solver iterations")
	}
	checkFeasible(t, c.Snapshot())

	if err := c.Sense(ctx); err != nil {
		t.Fatalf("Sense: %v", err)
	}

	// No demand has moved yet: a re-solve pass must touch nothing.
	before := c.Snapshot()
	idle, err := c.ReSolve(ctx)
	if err != nil {
		t.Fatalf("ReSolve: %v", err)
	}
	if idle.Skipped != 80 || idle.Drifted != 0 || idle.Warm != 0 || idle.Fallback != 0 {
		t.Errorf("idle re-solve stats = %+v, want all 80 skipped", idle)
	}
	if !reflect.DeepEqual(before.X, c.Snapshot().X) {
		t.Errorf("idle re-solve modified allocations")
	}

	applied, err := c.Drift(ctx)
	if err != nil {
		t.Fatalf("Drift: %v", err)
	}
	if applied == 0 {
		t.Fatalf("drift fraction 0.3 over 80 objects applied no drift")
	}
	if c.Epoch() != 1 {
		t.Errorf("Epoch = %d, want 1", c.Epoch())
	}

	warm, err := c.ReSolve(ctx)
	if err != nil {
		t.Fatalf("ReSolve: %v", err)
	}
	if warm.Skipped+warm.Drifted != 80 {
		t.Errorf("re-solve covered %d objects, want 80 (%+v)", warm.Skipped+warm.Drifted, warm)
	}
	if warm.Warm+warm.Fallback != warm.Drifted {
		t.Errorf("warm %d + fallback %d ≠ drifted %d", warm.Warm, warm.Fallback, warm.Drifted)
	}
	// Only objects whose demand actually moved can be flagged (un-drifted
	// estimates are epoch-constant by construction), and the re-draws are
	// large, so nearly all moved objects should be flagged.
	if warm.Drifted > int64(applied) {
		t.Errorf("%d objects flagged, only %d drifted", warm.Drifted, applied)
	}
	if warm.Drifted < int64(applied)/2 {
		t.Errorf("only %d of %d drifted objects flagged", warm.Drifted, applied)
	}
	if warm.Warm == 0 {
		t.Errorf("no re-solve converged on the warm path: %+v", warm)
	}
	checkFeasible(t, c.Snapshot())

	// Cumulative stats and metrics agree.
	total := c.Stats()
	if total.Cold != cold.Cold || total.DriftApplied != int64(applied) {
		t.Errorf("cumulative stats = %+v", total)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, cp := range snap.Counters {
		key := cp.Name
		for _, l := range cp.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		counters[key] = cp.Value
	}
	for key, want := range map[string]int64{
		"fap_catalog_solves_total|kind=cold":     total.Cold,
		"fap_catalog_solves_total|kind=warm":     total.Warm,
		"fap_catalog_solves_total|kind=fallback": total.Fallback,
		"fap_catalog_objects_skipped_total":      total.Skipped,
		"fap_catalog_objects_drifted_total":      total.Drifted,
		"fap_catalog_drift_applied_total":        total.DriftApplied,
		"fap_catalog_solve_steps_total":          total.Steps,
		"fap_catalog_epochs_total":               1,
	} {
		if counters[key] != want {
			t.Errorf("counter %s = %d, want %d", key, counters[key], want)
		}
	}
}

// TestCatalogZeroDriftSkipsEverything is the regression pinning the skip
// path: with demand frozen, every re-solve pass must skip every object
// and leave allocations bitwise untouched, epoch after epoch.
func TestCatalogZeroDriftSkipsEverything(t *testing.T) {
	cfg := testConfig()
	cfg.DriftFraction = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if _, err := c.SolveCold(ctx); err != nil {
		t.Fatalf("SolveCold: %v", err)
	}
	if err := c.Sense(ctx); err != nil {
		t.Fatalf("Sense: %v", err)
	}
	baseline := c.Snapshot()
	for epoch := 1; epoch <= 3; epoch++ {
		applied, err := c.Drift(ctx)
		if err != nil {
			t.Fatalf("Drift %d: %v", epoch, err)
		}
		if applied != 0 {
			t.Fatalf("epoch %d: drift fraction 0 applied %d re-draws", epoch, applied)
		}
		st, err := c.ReSolve(ctx)
		if err != nil {
			t.Fatalf("ReSolve %d: %v", epoch, err)
		}
		if st.Skipped != int64(cfg.Objects) || st.Drifted != 0 || st.Warm != 0 || st.Fallback != 0 || st.Steps != 0 {
			t.Fatalf("epoch %d: re-solve stats = %+v, want %d skipped and nothing else", epoch, st, cfg.Objects)
		}
		if !reflect.DeepEqual(baseline.X, c.Snapshot().X) {
			t.Fatalf("epoch %d: zero-drift re-solve changed an allocation", epoch)
		}
	}
}
