package baseline

import (
	"fmt"
	"math"

	"filealloc/internal/costmodel"
)

// PriceIteration is one round of the tâtonnement: the posted price, the
// per-node demands at that price, and the resulting excess demand
// (Σ x_i(q) − 1). Until the process converges the demands do NOT form a
// feasible allocation — the drawback of price-directed mechanisms that
// section 2 contrasts with the resource-directed approach.
type PriceIteration struct {
	Price  float64
	Demand []float64
	Excess float64
}

// PriceDirectedResult is the outcome of the tâtonnement.
type PriceDirectedResult struct {
	// X is the final (feasible, after normalization at convergence)
	// allocation.
	X []float64
	// Price is the market-clearing price: the common marginal cost q.
	Price float64
	// Cost is C(X).
	Cost float64
	// Iterations counts price adjustments performed.
	Iterations int
	// Converged is false when the excess demand never fell below the
	// tolerance; X then holds the last (infeasible) demand vector
	// normalized to sum 1.
	Converged bool
	// Trace holds every iteration when tracing was requested.
	Trace []PriceIteration
}

// PriceDirectedConfig tunes the tâtonnement.
type PriceDirectedConfig struct {
	// Gamma is the price adjustment gain: q ← q + Gamma·(1 − Σx(q)).
	// Defaults to 1 when zero.
	Gamma float64
	// Tolerance is the excess-demand threshold for convergence
	// (default 1e-6).
	Tolerance float64
	// MaxIterations bounds the process (default 10000).
	MaxIterations int
	// KeepTrace records every iteration in the result.
	KeepTrace bool
}

// PriceDirected runs a price-directed (tâtonnement) allocation of the
// single file, the contrast class of section 2. A fictitious auctioneer
// posts a price q per unit of file hosted; each node independently demands
// the amount at which its marginal cost of serving accesses equals the
// price,
//
//	x_i(q): C_i + k·μ_i/(μ_i − λ·x_i)² = q,
//
// and the auctioneer raises the price when total demand falls short of the
// one copy available and lowers it when demand exceeds it. Intermediate
// demand vectors are infeasible (they do not sum to 1) — unlike every
// iterate of the resource-directed algorithm — which is the property the
// E10 ablation demonstrates. At the clearing price the allocation
// coincides with the KKT optimum, since both equalize marginal costs.
func PriceDirected(m *costmodel.SingleFile, cfg PriceDirectedConfig) (PriceDirectedResult, error) {
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.Gamma < 0 {
		return PriceDirectedResult{}, fmt.Errorf("baseline: negative price gain %v", cfg.Gamma)
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-6
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10000
	}

	n := m.Dim()
	// Start at the lowest price at which anyone hosts anything.
	price := math.Inf(1)
	for i := 0; i < n; i++ {
		if floor := m.AccessCost(i) + m.K()/m.ServiceRate(i); floor < price {
			price = floor
		}
	}
	res := PriceDirectedResult{}
	demand := make([]float64, n)
	for it := 1; it <= cfg.MaxIterations; it++ {
		var total float64
		for i := 0; i < n; i++ {
			demand[i] = demandAt(m, i, price)
			total += demand[i]
		}
		excess := total - 1
		if cfg.KeepTrace {
			res.Trace = append(res.Trace, PriceIteration{
				Price:  price,
				Demand: append([]float64(nil), demand...),
				Excess: excess,
			})
		}
		res.Iterations = it
		if math.Abs(excess) < cfg.Tolerance {
			res.Converged = true
			break
		}
		price -= cfg.Gamma * excess
	}

	// Normalize the final demands so callers always receive a feasible
	// allocation; when converged the normalization is a no-op up to the
	// tolerance.
	var total float64
	for _, d := range demand {
		total += d
	}
	x := append([]float64(nil), demand...)
	if total > 0 {
		for i := range x {
			x[i] /= total
		}
	} else {
		copy(x, Uniform(n))
	}
	cost, err := m.Cost(x)
	if err != nil {
		return PriceDirectedResult{}, fmt.Errorf("baseline: evaluating tâtonnement allocation: %w", err)
	}
	res.X = x
	res.Price = price
	res.Cost = cost
	return res, nil
}

// demandAt inverts node i's marginal hosting cost at the given price,
// clipped to [0, 1].
func demandAt(m *costmodel.SingleFile, i int, price float64) float64 {
	floor := m.AccessCost(i) + m.K()/m.ServiceRate(i)
	if price <= floor {
		return 0
	}
	if m.K() == 0 {
		// Zero delay weight: marginal cost is flat at C_i; demand is
		// all-or-nothing.
		return 1
	}
	mu := m.ServiceRate(i)
	x := (mu - math.Sqrt(m.K()*mu/(price-m.AccessCost(i)))) / m.Lambda()
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
