package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/costmodel"
)

func mustModel(t *testing.T, access []float64, mu []float64, lambda, k float64) *costmodel.SingleFile {
	t.Helper()
	m, err := costmodel.NewSingleFile(access, mu, lambda, k)
	if err != nil {
		t.Fatalf("NewSingleFile: %v", err)
	}
	return m
}

func TestBestIntegralPicksCheapestNode(t *testing.T) {
	// Node 1 has the lowest access cost; all queues behave identically.
	m := mustModel(t, []float64{3, 1, 2}, []float64{2}, 1, 1)
	res, err := BestIntegral(m)
	if err != nil {
		t.Fatalf("BestIntegral: %v", err)
	}
	if res.Node != 1 {
		t.Errorf("best node = %d, want 1", res.Node)
	}
	// Cost at node 1: C_1 + k/(μ−λ) = 1 + 1/(2−1) = 2.
	if math.Abs(res.Cost-2) > 1e-12 {
		t.Errorf("cost = %g, want 2", res.Cost)
	}
	if res.X[1] != 1 || res.X[0] != 0 || res.X[2] != 0 {
		t.Errorf("X = %v, want (0,1,0)", res.X)
	}
	for i, want := range []float64{4, 2, 3} {
		if math.Abs(res.PerNode[i]-want) > 1e-12 {
			t.Errorf("PerNode[%d] = %g, want %g", i, res.PerNode[i], want)
		}
	}
}

func TestBestIntegralSkipsSaturatedNodes(t *testing.T) {
	// Node 0 cannot host the whole file (μ_0 < λ); node 1 can.
	m := mustModel(t, []float64{0, 5}, []float64{0.5, 3}, 1, 1)
	res, err := BestIntegral(m)
	if err != nil {
		t.Fatalf("BestIntegral: %v", err)
	}
	if res.Node != 1 {
		t.Errorf("best node = %d, want 1", res.Node)
	}
	if !math.IsNaN(res.PerNode[0]) {
		t.Errorf("PerNode[0] = %g, want NaN (saturated)", res.PerNode[0])
	}
}

func TestBestIntegralNoFeasible(t *testing.T) {
	m := mustModel(t, []float64{0, 0}, []float64{0.5}, 1, 1)
	if _, err := BestIntegral(m); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("error = %v, want ErrNoFeasible", err)
	}
}

func TestBestIntegralVersusFragmentedOptimum(t *testing.T) {
	// The figure-4 claim: the fragmented optimum strictly beats the best
	// integral placement on the symmetric ring.
	m := mustModel(t, []float64{2, 2, 2, 2}, []float64{1.5}, 1, 1)
	integral, err := BestIntegral(m)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost >= integral.Cost {
		t.Errorf("fragmented optimum %g not below integral %g", sol.Cost, integral.Cost)
	}
	// Explicit values: integral 4, fragmented 2.8 → 30% reduction.
	if math.Abs(integral.Cost-4) > 1e-12 || math.Abs(sol.Cost-2.8) > 1e-9 {
		t.Errorf("costs = %g and %g, want 4 and 2.8", integral.Cost, sol.Cost)
	}
}

func TestUniform(t *testing.T) {
	x := Uniform(5)
	var sum float64
	for _, v := range x {
		if v != 0.2 {
			t.Errorf("entry = %g, want 0.2", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %g, want 1", sum)
	}
}

func TestProjectedGradientFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		access := make([]float64, n)
		for i := range access {
			access[i] = rng.Float64() * 4
		}
		lambda := 0.5 + rng.Float64()
		m := mustModel(t, access, []float64{lambda + 1}, lambda, 0.5)
		x, err := ProjectedGradient(m, Uniform(n), 0.05, 5000, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, err := m.SolveKKT(1e-12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-sol.Cost) > 1e-4*(1+sol.Cost) {
			t.Errorf("trial %d: projected gradient cost %g vs KKT %g", trial, got, sol.Cost)
		}
	}
}

func TestProjectedGradientValidation(t *testing.T) {
	m := mustModel(t, []float64{1, 2}, []float64{3}, 1, 1)
	if _, err := ProjectedGradient(m, Uniform(2), 0, 10, 1); err == nil {
		t.Error("zero stepsize: expected error")
	}
	if _, err := ProjectedGradient(m, Uniform(3), 0.1, 10, 1); err == nil {
		t.Error("wrong init length: expected error")
	}
}

func TestProjectSimplex(t *testing.T) {
	tests := []struct {
		name  string
		in    []float64
		total float64
		want  []float64
	}{
		{"already feasible", []float64{0.3, 0.7}, 1, []float64{0.3, 0.7}},
		{"uniform shift", []float64{1, 1}, 1, []float64{0.5, 0.5}},
		{"clips negative", []float64{1.5, -0.5}, 1, []float64{1, 0}},
		{"total 2", []float64{2, 2}, 2, []float64{1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := append([]float64(nil), tt.in...)
			projectSimplex(v, tt.total)
			var sum float64
			for i := range v {
				if math.Abs(v[i]-tt.want[i]) > 1e-9 {
					t.Errorf("v[%d] = %g, want %g", i, v[i], tt.want[i])
				}
				if v[i] < 0 {
					t.Errorf("v[%d] = %g negative", i, v[i])
				}
				sum += v[i]
			}
			if math.Abs(sum-tt.total) > 1e-9 {
				t.Errorf("sum = %g, want %g", sum, tt.total)
			}
		})
	}
}

func TestPriceDirectedClearsAtKKTOptimum(t *testing.T) {
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	res, err := PriceDirected(m, PriceDirectedConfig{Gamma: 0.5, Tolerance: 1e-9, MaxIterations: 100000})
	if err != nil {
		t.Fatalf("PriceDirected: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge after %d iterations", res.Iterations)
	}
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-sol.Cost) > 1e-6*(1+sol.Cost) {
		t.Errorf("tâtonnement cost %g vs KKT %g", res.Cost, sol.Cost)
	}
	if math.Abs(res.Price-sol.Q) > 1e-4*(1+math.Abs(sol.Q)) {
		t.Errorf("clearing price %g vs multiplier %g", res.Price, sol.Q)
	}
}

func TestPriceDirectedIntermediateInfeasibility(t *testing.T) {
	// The section-2 drawback: before convergence the demands do not sum
	// to 1. The trace must show at least one materially infeasible round.
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	res, err := PriceDirected(m, PriceDirectedConfig{Gamma: 0.5, Tolerance: 1e-9, MaxIterations: 100000, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 2 {
		t.Fatalf("trace too short: %d", len(res.Trace))
	}
	worst := 0.0
	for _, it := range res.Trace {
		if math.Abs(it.Excess) > worst {
			worst = math.Abs(it.Excess)
		}
	}
	if worst < 0.01 {
		t.Errorf("worst excess demand %g; expected materially infeasible iterates", worst)
	}
	// Final X is normalized feasible regardless.
	var sum float64
	for _, v := range res.X {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("final allocation sums to %g", sum)
	}
}

func TestPriceDirectedNonConvergence(t *testing.T) {
	// With an absurdly large gain the price oscillates; the result must
	// report non-convergence yet still return a feasible allocation.
	m := mustModel(t, []float64{2, 1, 3, 2}, []float64{1.5}, 1, 1)
	res, err := PriceDirected(m, PriceDirectedConfig{Gamma: 1e6, Tolerance: 1e-12, MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("expected non-convergence with huge gain")
	}
	var sum float64
	for _, v := range res.X {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("allocation sums to %g, want 1", sum)
	}
}

func TestPriceDirectedValidation(t *testing.T) {
	m := mustModel(t, []float64{1, 2}, []float64{3}, 1, 1)
	if _, err := PriceDirected(m, PriceDirectedConfig{Gamma: -1}); err == nil {
		t.Error("negative gain: expected error")
	}
}

func TestDemandAtMonotoneInPrice(t *testing.T) {
	m := mustModel(t, []float64{2}, []float64{1.5}, 1, 1)
	prev := -1.0
	for q := 0.5; q < 30; q += 0.25 {
		d := demandAt(m, 0, q)
		if d < prev-1e-12 {
			t.Fatalf("demand decreased in price at q=%g: %g -> %g", q, prev, d)
		}
		if d < 0 || d > 1 {
			t.Fatalf("demand %g outside [0,1]", d)
		}
		prev = d
	}
}
