// Package baseline implements the comparison allocators the paper measures
// its algorithm against or positions itself relative to: whole-file
// (integral) placement in the tradition of Chu's 0/1 formulation, the naive
// uniform split, the price-directed tâtonnement of section 2's contrast
// class, and a projected-gradient reference optimizer used to certify
// optima independently.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

// ErrNoFeasible is returned when no allocation in the searched class keeps
// every queue stable.
var ErrNoFeasible = errors.New("baseline: no feasible allocation in class")

// IntegralResult describes the best whole-file placement.
type IntegralResult struct {
	// Node is the node holding the entire file.
	Node int
	// Cost is the expected access cost of that placement.
	Cost float64
	// X is the corresponding allocation vector (1 at Node, 0 elsewhere).
	X []float64
	// PerNode lists the cost of placing the whole file at each node
	// (NaN where the placement saturates the node's queue).
	PerNode []float64
}

// BestIntegral exhaustively evaluates the N whole-file placements — the
// classical FAP restriction that "a file must reside wholly at one node" —
// and returns the cheapest. This is the figure-4 baseline that the
// fragmented optimum is compared against.
func BestIntegral(m *costmodel.SingleFile) (IntegralResult, error) {
	n := m.Dim()
	res := IntegralResult{
		Node:    -1,
		Cost:    math.Inf(1),
		PerNode: make([]float64, n),
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 1
		cost, err := m.Cost(x)
		switch {
		case errors.Is(err, costmodel.ErrUnstable):
			res.PerNode[i] = math.NaN()
		case err != nil:
			return IntegralResult{}, fmt.Errorf("baseline: evaluating placement at node %d: %w", i, err)
		default:
			res.PerNode[i] = cost
			if cost < res.Cost {
				res.Cost = cost
				res.Node = i
			}
		}
		x[i] = 0
	}
	if res.Node < 0 {
		return IntegralResult{}, fmt.Errorf("%w: every single-node placement saturates its queue", ErrNoFeasible)
	}
	res.X = make([]float64, n)
	res.X[res.Node] = 1
	return res, nil
}

// Uniform returns the even split x_i = 1/n, the delay-optimal allocation
// for symmetric systems and a natural initial allocation for the iterative
// algorithm.
func Uniform(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return x
}

// ProjectedGradient is an independent reference optimizer: plain gradient
// ascent followed by Euclidean projection onto the simplex
// {x ≥ 0, Σx = total}. It shares no code with the paper's algorithm (the
// projection is Michelot/Condat-style, not marginal-value reallocation), so
// agreement between the two certifies an optimum.
func ProjectedGradient(obj core.Objective, init []float64, stepsize float64, iterations int, total float64) ([]float64, error) {
	if stepsize <= 0 || iterations < 1 {
		return nil, fmt.Errorf("baseline: bad projected-gradient parameters (step=%v, iters=%d)", stepsize, iterations)
	}
	if len(init) != obj.Dim() {
		return nil, fmt.Errorf("baseline: init has %d entries for dimension %d", len(init), obj.Dim())
	}
	x := append([]float64(nil), init...)
	grad := make([]float64, len(x))
	work := make([]float64, len(x))
	for it := 0; it < iterations; it++ {
		if err := obj.Gradient(grad, x); err != nil {
			return nil, fmt.Errorf("baseline: projected gradient iteration %d: %w", it, err)
		}
		for i := range x {
			work[i] = x[i] + stepsize*grad[i]
		}
		projectSimplex(work, total)
		// Guard against stepping into queue saturation: halve the step
		// until the projected point evaluates.
		ok := false
		for shrink := 0; shrink < 60; shrink++ {
			if _, err := obj.Utility(work); err == nil {
				ok = true
				break
			}
			for i := range work {
				work[i] = (work[i] + x[i]) / 2
			}
			projectSimplex(work, total)
		}
		if !ok {
			return nil, fmt.Errorf("%w: projected point saturates a queue", ErrNoFeasible)
		}
		copy(x, work)
	}
	return x, nil
}

// projectSimplex replaces v with its Euclidean projection onto
// {x ≥ 0, Σx = total} using the sort-free Michelot iteration.
func projectSimplex(v []float64, total float64) {
	n := len(v)
	active := make([]bool, n)
	count := n
	for i := range active {
		active[i] = true
	}
	for {
		var sum float64
		for i, on := range active {
			if on {
				sum += v[i]
			}
		}
		shift := (sum - total) / float64(count)
		changed := false
		for i, on := range active {
			if on && v[i]-shift < 0 {
				active[i] = false
				count--
				changed = true
			}
		}
		if !changed {
			for i, on := range active {
				if on {
					v[i] -= shift
				} else {
					v[i] = 0
				}
			}
			return
		}
		if count == 0 {
			// Degenerate: all mass forced out; spread evenly.
			for i := range v {
				v[i] = total / float64(n)
			}
			return
		}
	}
}
