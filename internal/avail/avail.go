// Package avail quantifies the reliability argument for fragmentation and
// replication made in the paper's sections 4 and 7.1: "If the file is
// distributed over a number of nodes then failure of one or more nodes
// only means that the portions of the file stored at those nodes cannot
// be accessed. File accesses are, therefore, not completely disabled by
// individual node failures" (graceful degradation), and "carefully
// placing different copies of files ... will increase reliability against
// node failure".
//
// Given an allocation and independent per-node failure probabilities, the
// package computes the expected accessible fraction of the file —
// analytically for single-copy fragmentation and for the virtual-ring
// multi-copy layout (where a record survives unless every node holding
// one of its replicas is down) — plus Monte Carlo estimation for
// cross-checks and arbitrary layouts.
package avail

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrBadInput reports invalid availability inputs.
var ErrBadInput = errors.New("avail: invalid input")

// validateProbs checks failure probabilities.
func validateProbs(probs []float64) error {
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("%w: failure probability p[%d] = %v", ErrBadInput, i, p)
		}
	}
	return nil
}

// SingleCopy returns the expected accessible fraction of a single-copy
// fragmented file: record shares x_i survive with probability 1−p_i
// independently, so E[accessible] = Σ x_i·(1−p_i). Concentrating the file
// (integral allocation) makes this all-or-nothing; spreading it degrades
// gracefully.
func SingleCopy(x, failProbs []float64) (float64, error) {
	if len(x) != len(failProbs) {
		return 0, fmt.Errorf("%w: %d fragments vs %d failure probabilities", ErrBadInput, len(x), len(failProbs))
	}
	if err := validateProbs(failProbs); err != nil {
		return 0, err
	}
	var total, sum float64
	for i, xi := range x {
		if xi < 0 || math.IsNaN(xi) {
			return 0, fmt.Errorf("%w: x[%d] = %v", ErrBadInput, i, xi)
		}
		total += xi
		sum += xi * (1 - failProbs[i])
	}
	if total <= 0 {
		return 0, fmt.Errorf("%w: empty allocation", ErrBadInput)
	}
	return sum / total, nil
}

// segment is one node's stretch of file content in ring layout order.
type segment struct {
	node       int
	start, end float64 // positions in [0, m), content position = pos mod 1
}

// ringSegments lays the allocation out end-to-end around the ring
// starting at node 0, the section 7.2 contiguous layout.
func ringSegments(x []float64) []segment {
	segs := make([]segment, 0, len(x))
	pos := 0.0
	for i, xi := range x {
		if xi <= 0 {
			continue
		}
		segs = append(segs, segment{node: i, start: pos, end: pos + xi})
		pos += xi
	}
	return segs
}

// MultiCopyRing returns the expected accessible fraction of a file whose m
// copies are laid contiguously around a virtual ring (allocation x sums to
// m ≥ 1). A content position u ∈ [0,1) is replicated at every node whose
// segment covers u + k for some integer k < m; it is lost only when all
// of those nodes are down:
//
//	E[accessible] = ∫₀¹ (1 − Π_{i ∈ holders(u)} p_i) du
//
// evaluated exactly by splitting [0,1) at every segment boundary mod 1.
func MultiCopyRing(x, failProbs []float64) (float64, error) {
	if len(x) != len(failProbs) {
		return 0, fmt.Errorf("%w: %d fragments vs %d failure probabilities", ErrBadInput, len(x), len(failProbs))
	}
	if err := validateProbs(failProbs); err != nil {
		return 0, err
	}
	var total float64
	for i, xi := range x {
		if xi < 0 || math.IsNaN(xi) {
			return 0, fmt.Errorf("%w: x[%d] = %v", ErrBadInput, i, xi)
		}
		total += xi
	}
	if total < 1-1e-9 {
		return 0, fmt.Errorf("%w: allocation sums to %v < 1 copy", ErrBadInput, total)
	}

	segs := ringSegments(x)
	// Breakpoints of holder sets: every segment boundary folded into
	// [0, 1).
	cuts := []float64{0, 1}
	for _, s := range segs {
		cuts = append(cuts, math.Mod(s.start, 1), math.Mod(s.end, 1))
	}
	sort.Float64s(cuts)

	var accessible float64
	for c := 0; c+1 < len(cuts); c++ {
		lo, hi := cuts[c], cuts[c+1]
		width := hi - lo
		if width <= 1e-15 {
			continue
		}
		mid := lo + width/2
		// Probability every holder of this sliver is down.
		allDown := 1.0
		held := false
		for _, s := range segs {
			if coversMod1(s, mid) {
				held = true
				allDown *= failProbs[s.node]
			}
		}
		if held {
			accessible += width * (1 - allDown)
		}
	}
	return accessible, nil
}

// coversMod1 reports whether the segment covers content position u (for
// some unfolding u + k, k = 0, 1, 2, ...).
func coversMod1(s segment, u float64) bool {
	for base := math.Floor(s.start); base <= s.end; base++ {
		if s.start <= base+u && base+u < s.end {
			return true
		}
	}
	return false
}

// MonteCarlo estimates the expected accessible fraction for the
// virtual-ring layout by sampling node failures, for cross-checking the
// closed form and for layouts the analytic path does not cover.
func MonteCarlo(x, failProbs []float64, trials int, seed int64) (float64, error) {
	if len(x) != len(failProbs) {
		return 0, fmt.Errorf("%w: %d fragments vs %d failure probabilities", ErrBadInput, len(x), len(failProbs))
	}
	if err := validateProbs(failProbs); err != nil {
		return 0, err
	}
	if trials < 1 {
		return 0, fmt.Errorf("%w: %d trials", ErrBadInput, trials)
	}
	segs := ringSegments(x)
	rng := rand.New(rand.NewSource(seed))
	up := make([]bool, len(x))
	var sum float64
	for t := 0; t < trials; t++ {
		for i := range up {
			up[i] = rng.Float64() >= failProbs[i]
		}
		// Accessible measure: union over up nodes of their folded
		// segments, computed by the same cut construction.
		cuts := []float64{0, 1}
		for _, s := range segs {
			if up[s.node] {
				cuts = append(cuts, math.Mod(s.start, 1), math.Mod(s.end, 1))
			}
		}
		sort.Float64s(cuts)
		var acc float64
		for c := 0; c+1 < len(cuts); c++ {
			lo, hi := cuts[c], cuts[c+1]
			if hi-lo <= 1e-15 {
				continue
			}
			mid := lo + (hi-lo)/2
			for _, s := range segs {
				if up[s.node] && coversMod1(s, mid) {
					acc += hi - lo
					break
				}
			}
		}
		sum += acc
	}
	return sum / float64(trials), nil
}

// UniformFailure returns n identical failure probabilities.
func UniformFailure(n int, p float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p
	}
	return out
}
