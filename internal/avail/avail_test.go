package avail

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSingleCopyGracefulDegradation(t *testing.T) {
	p := UniformFailure(4, 0.1)
	// Fragmented: expected accessible = 1 − p regardless of split.
	frag, err := SingleCopy([]float64{0.25, 0.25, 0.25, 0.25}, p)
	if err != nil {
		t.Fatalf("SingleCopy: %v", err)
	}
	if math.Abs(frag-0.9) > 1e-12 {
		t.Errorf("fragmented availability = %g, want 0.9", frag)
	}
	// Integral: same expectation but all-or-nothing; the expectation
	// matches yet the variance differs (checked below via the full-file
	// survival probability).
	integral, err := SingleCopy([]float64{0, 0, 0, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(integral-0.9) > 1e-12 {
		t.Errorf("integral availability = %g, want 0.9", integral)
	}
}

func TestSingleCopyWeightsByFragment(t *testing.T) {
	// Unreliable node holds most of the file.
	got, err := SingleCopy([]float64{0.8, 0.2}, []float64{0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(0.8*0.5+0.2)) > 1e-12 {
		t.Errorf("availability = %g, want 0.6", got)
	}
}

func TestSingleCopyValidation(t *testing.T) {
	tests := []struct {
		name string
		x    []float64
		p    []float64
	}{
		{"length mismatch", []float64{1}, []float64{0.1, 0.1}},
		{"bad probability", []float64{1}, []float64{1.5}},
		{"negative fragment", []float64{-1, 2}, []float64{0.1, 0.1}},
		{"empty allocation", []float64{0, 0}, []float64{0.1, 0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := SingleCopy(tt.x, tt.p); !errors.Is(err, ErrBadInput) {
				t.Errorf("error = %v, want ErrBadInput", err)
			}
		})
	}
}

func TestMultiCopyRingTwoFullReplicas(t *testing.T) {
	// Nodes 0 and 1 each hold a whole copy: a record is lost only when
	// both fail: availability = 1 − p².
	p := 0.2
	got, err := MultiCopyRing([]float64{1, 1, 0}, UniformFailure(3, p))
	if err != nil {
		t.Fatalf("MultiCopyRing: %v", err)
	}
	want := 1 - p*p
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("availability = %g, want %g", got, want)
	}
}

func TestMultiCopyRingBeatsOneCopy(t *testing.T) {
	// Same fragmentation pattern, one copy vs two copies: replication
	// must strictly increase availability.
	p := UniformFailure(4, 0.15)
	one, err := MultiCopyRing([]float64{0.25, 0.25, 0.25, 0.25}, p)
	if err != nil {
		t.Fatal(err)
	}
	two, err := MultiCopyRing([]float64{0.5, 0.5, 0.5, 0.5}, p)
	if err != nil {
		t.Fatal(err)
	}
	if two <= one {
		t.Errorf("two copies availability %g not above one copy %g", two, one)
	}
	// One fragmented copy: availability = 1 − p = 0.85.
	if math.Abs(one-0.85) > 1e-9 {
		t.Errorf("single-copy ring availability = %g, want 0.85", one)
	}
	// Two copies, offset by half a copy: each record held by exactly 2
	// distinct nodes → 1 − p² = 0.9775.
	if math.Abs(two-(1-0.15*0.15)) > 1e-9 {
		t.Errorf("two-copy availability = %g, want %g", two, 1-0.15*0.15)
	}
}

func TestMultiCopyRingSelfOverlappingSegment(t *testing.T) {
	// One node holding 1.7 copies covers every record at least once by
	// itself; a second node holds the remaining 0.3. Records in the
	// doubly-covered 0.7 stretch of node 0 gain nothing (same node), so
	// availability = (1 − p0) for node-0-only records weighted
	// appropriately.
	p0, p1 := 0.2, 0.5
	got, err := MultiCopyRing([]float64{1.7, 0.3}, []float64{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: node 0 covers [0,1.7) → content [0,1) fully and [0,0.7)
	// again; node 1 covers [1.7,2) → content [0.7,1). So content
	// [0,0.7): node 0 only (twice — same machine). Content [0.7,1):
	// nodes 0 and 1.
	want := 0.7*(1-p0) + 0.3*(1-p0*p1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("availability = %g, want %g", got, want)
	}
}

func TestMultiCopyRingMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		x := make([]float64, n)
		var sum float64
		for i := range x {
			x[i] = rng.Float64()
			sum += x[i]
		}
		for i := range x {
			x[i] *= float64(m) / sum
		}
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64() * 0.5
		}
		exact, err := MultiCopyRing(x, probs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mc, err := MonteCarlo(x, probs, 60000, int64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(exact-mc) > 0.01 {
			t.Errorf("trial %d: exact %g vs Monte Carlo %g", trial, exact, mc)
		}
	}
}

func TestMultiCopyRingValidation(t *testing.T) {
	if _, err := MultiCopyRing([]float64{0.4, 0.4}, UniformFailure(2, 0.1)); !errors.Is(err, ErrBadInput) {
		t.Errorf("sub-copy total: error = %v, want ErrBadInput", err)
	}
	if _, err := MultiCopyRing([]float64{1, 0.5}, []float64{0.1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch: error = %v, want ErrBadInput", err)
	}
	if _, err := MonteCarlo([]float64{1, 0}, UniformFailure(2, 0.1), 0, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero trials: error = %v, want ErrBadInput", err)
	}
}

func TestUniformFailure(t *testing.T) {
	p := UniformFailure(3, 0.25)
	if len(p) != 3 || p[0] != 0.25 || p[2] != 0.25 {
		t.Errorf("UniformFailure = %v", p)
	}
}
