// Package agent implements the per-node runtime of the decentralized file
// allocation algorithm. Each agent knows only its local model — its
// traffic-weighted access cost C_i, service rate μ_i, the system-wide rate
// λ and scaling factor k — computes its own marginal utility, exchanges it
// with its peers each round (section 5.2 step a), and applies the identical
// deterministic re-allocation every peer computes (broadcast mode) or the
// deltas a designated central agent distributes (coordinator mode).
//
// Because every node plans steps with the same core.PlanStep over the same
// round data, the distributed trajectory is bit-identical to the
// centralized Allocator's — verified by the integration tests and the E9
// ablation.
package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"filealloc/internal/core"
	"filealloc/internal/protocol"
	"filealloc/internal/secondorder"
	"filealloc/internal/transport"
)

// Sentinel errors.
var (
	// ErrBadConfig reports invalid agent configuration.
	ErrBadConfig = errors.New("agent: invalid configuration")
	// ErrRoundTimeout reports a round that did not complete in time
	// (lost peer or dropped message).
	ErrRoundTimeout = errors.New("agent: round timed out")
	// ErrProtocol reports a peer violating the protocol.
	ErrProtocol = errors.New("agent: protocol violation")
	// ErrLapped reports a resume that came back after the cluster had
	// already quorum-completed rounds without this node: a peer's report
	// arrived for a round more than one ahead of ours. Continuing would
	// plan steps over a different group than the survivors and drift
	// from Σx = 1, so the agent fails loudly; re-entry goes through the
	// epoch rejoin path instead.
	ErrLapped = errors.New("agent: resumed behind the cluster")
	// ErrDesync reports that a peer planned the previous round's step
	// over a different group than we did — the quorum-round fingerprints
	// disagree. Both sides stop before the divergence can spread.
	ErrDesync = errors.New("agent: round group desynchronized")
	// ErrCheckpoint reports a failed checkpoint save; the agent stops
	// rather than keep running without durable progress.
	ErrCheckpoint = errors.New("agent: checkpoint save failed")
)

// CheckpointSink persists an agent's round state so a supervised restart
// can resume the run bit-identically. SaveRound is called at the top of
// every round, before any message of the round is sent; the recovery
// package's Store is the durable implementation. A nil sink disables
// checkpointing.
type CheckpointSink interface {
	// SaveRound records the state the round starts from: the node's own
	// fragment x, its view xs of the full allocation, the live
	// membership, and the bitmask fingerprint of the previous round's
	// planning group.
	SaveRound(round int, x float64, xs []float64, alive []bool, planned uint64) error
}

// LocalModel is the node-local knowledge needed to evaluate the marginal
// utility of the equation-2 objective at the node's own fragment:
//
//	∂U/∂x_i = −(C_i + k·μ_i/(μ_i − λ·x_i)²)
//
// C_i is computed once at setup time from the (static) topology and access
// rates; λ is the system-wide access rate agreed at setup.
type LocalModel struct {
	// AccessCost is C_i.
	AccessCost float64
	// ServiceRate is μ_i.
	ServiceRate float64
	// Lambda is the system-wide access generation rate λ.
	Lambda float64
	// K is the delay scaling factor.
	K float64
}

// Marginal returns ∂U/∂x_i at the local fragment size x.
func (m LocalModel) Marginal(x float64) (float64, error) {
	room := m.ServiceRate - m.Lambda*x
	if room <= 0 {
		return 0, fmt.Errorf("%w: local queue saturated (μ=%v, λ·x=%v)", core.ErrUnstable, m.ServiceRate, m.Lambda*x)
	}
	return -(m.AccessCost + m.K*m.ServiceRate/(room*room)), nil
}

// Curvature returns ∂²U/∂x_i² at the local fragment size x, the quantity
// exchanged for the dynamic Theorem-2 stepsize.
func (m LocalModel) Curvature(x float64) (float64, error) {
	room := m.ServiceRate - m.Lambda*x
	if room <= 0 {
		return 0, fmt.Errorf("%w: local queue saturated (μ=%v, λ·x=%v)", core.ErrUnstable, m.ServiceRate, m.Lambda*x)
	}
	return -2 * m.K * m.ServiceRate * m.Lambda / (room * room * room), nil
}

// Mode selects the aggregation scheme of section 5.1.
type Mode int

const (
	// Broadcast has every node send its marginal utility to every other
	// node; each node then computes the identical re-allocation locally.
	Broadcast Mode = iota + 1
	// Coordinator has every node report to a designated central agent,
	// which plans the step and distributes the deltas.
	Coordinator
)

func (m Mode) String() string {
	switch m {
	case Broadcast:
		return "broadcast"
	case Coordinator:
		return "coordinator"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config assembles one agent.
type Config struct {
	// Endpoint connects the agent to its peers.
	Endpoint transport.Endpoint
	// Model is the node-local cost knowledge.
	Model LocalModel
	// Init is the node's initial fragment x_i (the cluster-wide initial
	// allocation must be feasible).
	Init float64
	// Alpha is the stepsize (default 0.1).
	Alpha float64
	// Epsilon is the termination threshold (default 1e-3).
	Epsilon float64
	// MaxRounds bounds the protocol (default 10000).
	MaxRounds int
	// Mode selects broadcast or coordinator aggregation (default
	// Broadcast).
	Mode Mode
	// CoordinatorID names the central agent in Coordinator mode.
	CoordinatorID int
	// RoundTimeout bounds each round's message wait (default 10s).
	RoundTimeout time.Duration
	// SendRetries is the number of times a failed send is retried
	// before the agent gives up (default 0: fail fast). The protocol's
	// rounds are lockstep, so a retried duplicate can never arrive —
	// each (round, node) report is sent exactly once successfully.
	SendRetries int
	// DynamicAlphaSafety, when in (0, 1], makes every node evaluate the
	// Theorem-2 stepsize from the round's exchanged marginals and
	// curvatures (scaled by the safety factor) instead of the fixed
	// Alpha — the appendix's "dynamically calculate it at each
	// iteration" suggestion, computed identically on every node.
	// Broadcast mode only.
	DynamicAlphaSafety float64
	// SecondOrder switches the re-allocation rule to the section 8.2
	// curvature-scaled step (Δx_i = α(g_i − ν)/|h_i| with the weighted
	// average ν); curvatures are exchanged alongside marginals. Alpha
	// then defaults to 1, the Newton step. Broadcast mode only;
	// mutually exclusive with DynamicAlphaSafety.
	SecondOrder bool
	// Observer receives round-level events (default: none). A shared
	// Observer must be safe for concurrent use.
	Observer Observer

	// Quorum, when nonzero, lets a broadcast round complete short on its
	// RoundTimeout deadline as long as at least Quorum nodes (including
	// this one) reported; the round's step is then planned over the
	// reporters only. Must be in [2, n]. Broadcast mode only, n ≤ 64
	// (the Planned fingerprint is a 64-bit mask), and incompatible with
	// DynamicAlphaSafety and SecondOrder, whose stepsize math assumes
	// full rounds. Zero (the default) keeps the strict lockstep
	// protocol: a short round is ErrRoundTimeout.
	Quorum int
	// DepartAfter, when nonzero, declares a peer departed after it
	// missed that many consecutive quorum rounds; the survivors then
	// redistribute its fraction (core.Renormalize) and continue on the
	// reduced support. Requires Quorum — departure detection rides on
	// rounds that complete without the silent peer.
	DepartAfter int
	// Checkpoint, when non-nil, persists the round state at the top of
	// every round so a supervised restart can resume bit-identically.
	// Broadcast mode only.
	Checkpoint CheckpointSink
	// StartRound resumes the protocol at a later round (from a
	// checkpoint) instead of 0. The Init* fields below restore the rest
	// of the checkpointed state. Broadcast mode only.
	StartRound int
	// InitFullX restores the node's view of the full allocation on
	// resume; nil starts from zeros (round 0 fills it from reports).
	InitFullX []float64
	// InitAlive restores the live-membership view on resume; nil means
	// all nodes alive. When set it must include this node.
	InitAlive []bool
	// InitPlanned restores the previous round's planning-group
	// fingerprint on resume; zero means "no previous plan" and disables
	// the desync check for the first resumed round.
	InitPlanned uint64
}

func (c *Config) fill() error {
	if c.Endpoint == nil {
		return fmt.Errorf("%w: nil endpoint", ErrBadConfig)
	}
	if c.Alpha == 0 {
		if c.SecondOrder {
			c.Alpha = 1 // Newton step
		} else {
			c.Alpha = 0.1
		}
	}
	if c.Alpha < 0 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("%w: alpha = %v", ErrBadConfig, c.Alpha)
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("%w: epsilon = %v", ErrBadConfig, c.Epsilon)
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 10000
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("%w: max rounds = %d", ErrBadConfig, c.MaxRounds)
	}
	if c.Mode == 0 {
		c.Mode = Broadcast
	}
	if c.Mode != Broadcast && c.Mode != Coordinator {
		return fmt.Errorf("%w: mode = %v", ErrBadConfig, c.Mode)
	}
	if c.CoordinatorID < 0 || c.CoordinatorID >= c.Endpoint.Peers() {
		return fmt.Errorf("%w: coordinator id %d outside cluster of %d", ErrBadConfig, c.CoordinatorID, c.Endpoint.Peers())
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 10 * time.Second
	}
	if c.Observer == nil {
		c.Observer = NopObserver{}
	}
	if c.Init < 0 || math.IsNaN(c.Init) {
		return fmt.Errorf("%w: initial fragment %v", ErrBadConfig, c.Init)
	}
	if c.SendRetries < 0 {
		return fmt.Errorf("%w: send retries = %d", ErrBadConfig, c.SendRetries)
	}
	if c.DynamicAlphaSafety < 0 || c.DynamicAlphaSafety > 1 || math.IsNaN(c.DynamicAlphaSafety) {
		return fmt.Errorf("%w: dynamic-alpha safety = %v", ErrBadConfig, c.DynamicAlphaSafety)
	}
	if c.DynamicAlphaSafety > 0 && c.Mode != Broadcast {
		return fmt.Errorf("%w: dynamic alpha requires broadcast mode", ErrBadConfig)
	}
	if c.SecondOrder {
		if c.Mode != Broadcast {
			return fmt.Errorf("%w: second-order step requires broadcast mode", ErrBadConfig)
		}
		if c.DynamicAlphaSafety > 0 {
			return fmt.Errorf("%w: second-order step and dynamic alpha are mutually exclusive", ErrBadConfig)
		}
	}
	n := c.Endpoint.Peers()
	if c.Quorum != 0 {
		if c.Mode != Broadcast {
			return fmt.Errorf("%w: quorum rounds require broadcast mode", ErrBadConfig)
		}
		if c.Quorum < 2 || c.Quorum > n {
			return fmt.Errorf("%w: quorum %d outside [2, %d]", ErrBadConfig, c.Quorum, n)
		}
		if n > 64 {
			return fmt.Errorf("%w: quorum rounds need n ≤ 64 (planning-group fingerprint is a 64-bit mask), have %d", ErrBadConfig, n)
		}
		if c.DynamicAlphaSafety > 0 || c.SecondOrder {
			return fmt.Errorf("%w: quorum rounds are incompatible with dynamic alpha and second-order steps", ErrBadConfig)
		}
	}
	if c.DepartAfter < 0 {
		return fmt.Errorf("%w: depart-after = %d", ErrBadConfig, c.DepartAfter)
	}
	if c.DepartAfter > 0 && c.Quorum == 0 {
		return fmt.Errorf("%w: departure detection requires quorum rounds", ErrBadConfig)
	}
	if c.Checkpoint != nil && c.Mode != Broadcast {
		return fmt.Errorf("%w: checkpointing requires broadcast mode", ErrBadConfig)
	}
	if c.StartRound < 0 || c.StartRound >= c.MaxRounds {
		return fmt.Errorf("%w: start round %d outside [0, %d)", ErrBadConfig, c.StartRound, c.MaxRounds)
	}
	if c.StartRound > 0 && c.Mode != Broadcast {
		return fmt.Errorf("%w: checkpoint resume requires broadcast mode", ErrBadConfig)
	}
	if c.InitFullX != nil && len(c.InitFullX) != n {
		return fmt.Errorf("%w: initial full allocation has %d entries for cluster of %d", ErrBadConfig, len(c.InitFullX), n)
	}
	if c.InitAlive != nil {
		if len(c.InitAlive) != n {
			return fmt.Errorf("%w: initial alive set has %d entries for cluster of %d", ErrBadConfig, len(c.InitAlive), n)
		}
		if !c.InitAlive[c.Endpoint.ID()] {
			return fmt.Errorf("%w: initial alive set excludes this node", ErrBadConfig)
		}
	}
	return nil
}

// dynamicAlpha evaluates the Theorem-2 expression from a round's exchanged
// data; it matches core's dynamic stepsize bit for bit so the distributed
// trajectory stays identical to the centralized one. Returns 0 when
// degenerate.
func dynamicAlpha(gs, hs []float64, safety float64) float64 {
	var avg float64
	for _, g := range gs {
		avg += g
	}
	avg /= float64(len(gs))
	var num, den float64
	for i, g := range gs {
		dev := g - avg
		num += dev * dev
		den += hs[i] * dev * dev
	}
	den = math.Abs(den)
	if den < 1e-300 || num <= 0 {
		return 0
	}
	return safety * 2 * num / den
}

// sendReliably sends payload to one peer, retrying transient failures up
// to cfg.SendRetries times.
func sendReliably(ctx context.Context, cfg Config, round, to int, payload []byte) error {
	var err error
	for attempt := 0; attempt <= cfg.SendRetries; attempt++ {
		if err = cfg.Endpoint.Send(ctx, to, payload); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			break
		}
		if attempt < cfg.SendRetries {
			cfg.Observer.SendRetried(cfg.Endpoint.ID(), round, to, attempt+1, err)
		}
	}
	return err
}

// broadcastReliably sends payload to every peer with per-peer retries.
func broadcastReliably(ctx context.Context, cfg Config, round int, payload []byte) (sent int, err error) {
	ep := cfg.Endpoint
	for to := 0; to < ep.Peers(); to++ {
		if to == ep.ID() {
			continue
		}
		if err := sendReliably(ctx, cfg, round, to, payload); err != nil {
			return sent, err
		}
		sent++
	}
	return sent, nil
}

// Outcome is one agent's view of the finished protocol.
type Outcome struct {
	// X is the node's final fragment.
	X float64
	// FullX is the full final allocation as seen by this node. It is
	// populated in Broadcast mode and on the coordinator; other agents
	// in Coordinator mode only learn their own fragment.
	FullX []float64
	// Rounds is the number of re-allocation rounds performed.
	Rounds int
	// Converged reports whether the ε-criterion fired (vs MaxRounds).
	Converged bool
	// MessagesSent counts protocol messages this agent sent.
	MessagesSent int
	// Alive is the node's final live-membership view (Broadcast mode);
	// entries are false for peers declared departed during the run.
	Alive []bool
}

// Run executes the agent until convergence, MaxRounds, or context
// cancellation. It is the caller's responsibility to run one agent per
// node id of the endpoint's cluster.
func Run(ctx context.Context, cfg Config) (Outcome, error) {
	if err := cfg.fill(); err != nil {
		return Outcome{}, err
	}
	switch cfg.Mode {
	case Coordinator:
		if cfg.Endpoint.ID() == cfg.CoordinatorID {
			return runCoordinator(ctx, cfg)
		}
		return runWorker(ctx, cfg)
	default:
		return runBroadcast(ctx, cfg)
	}
}

// group01n returns [0, 1, ..., n-1].
func group01n(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// collectReports receives until the buffer holds `want` reports for
// round, or — when cfg.Quorum is set — until the RoundTimeout deadline
// fires with at least Quorum reporters (including this node); it then
// reports full=false and the caller plans over the partial group. Stale
// rebroadcasts, identical duplicates, and reports from departed nodes —
// normal fallout of retries, faulty links, and churn — are discarded and
// counted, never fatal; conflicting duplicates and impersonation remain
// protocol violations. A report for a round more than one ahead of ours
// is ErrLapped: the cluster quorum-completed rounds without us and our
// state is stale.
func collectReports(ctx context.Context, cfg Config, buf *protocol.RoundBuffer, round, want int, alive []bool) (full bool, err error) {
	id := cfg.Endpoint.ID()
	deadline, cancel := context.WithTimeout(ctx, cfg.RoundTimeout)
	defer cancel()
	for !buf.Complete(round, want) {
		msg, err := cfg.Endpoint.Recv(deadline)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				got := buf.Count(round)
				cfg.Observer.TimeoutFired(id, round)
				cfg.Observer.ReportsCollected(id, round, got, want)
				if cfg.Quorum > 0 && got+1 >= cfg.Quorum {
					cfg.Observer.RecoveryEvent(id, round, "quorum", fmt.Sprintf("round completed short with %d of %d reports", got, want))
					return false, nil
				}
				return false, fmt.Errorf("%w: %d of %d reports for round %d", ErrRoundTimeout, got, want, round)
			}
			return false, fmt.Errorf("agent: receiving round %d: %w", round, err)
		}
		env, err := protocol.Decode(msg.Payload)
		if err != nil {
			return false, fmt.Errorf("agent: round %d: %w", round, err)
		}
		if env.Kind != protocol.KindReport {
			return false, fmt.Errorf("%w: unexpected %q message during report collection", ErrProtocol, env.Kind)
		}
		rep := env.Report
		if rep.Node != msg.From {
			return false, fmt.Errorf("%w: node %d sent a report claiming to be node %d", ErrProtocol, msg.From, rep.Node)
		}
		if rep.Round > round+1 {
			return false, fmt.Errorf("%w: node %d is already at round %d while we are at round %d", ErrLapped, rep.Node, rep.Round, round)
		}
		if rep.Round < round {
			// Stale rebroadcast — the round it belongs to already
			// completed, so the data is redundant by construction.
			cfg.Observer.MessageDiscarded(id, round, "stale report")
			continue
		}
		if alive != nil && rep.Node >= 0 && rep.Node < len(alive) && !alive[rep.Node] {
			// A node we already declared departed (its fraction is
			// redistributed). Its late report cannot rejoin this epoch.
			cfg.Observer.MessageDiscarded(id, round, "report from departed node")
			continue
		}
		if err := buf.Add(*rep); err != nil {
			if errors.Is(err, protocol.ErrDuplicateReport) {
				cfg.Observer.MessageDiscarded(id, round, "duplicate report")
				continue
			}
			return false, fmt.Errorf("agent: round %d: %w", round, err)
		}
	}
	cfg.Observer.ReportsCollected(id, round, want, want)
	return true, nil
}

// maskOf fingerprints a planning group as a bitmask (bit i = node i). It
// returns 0 — "unchecked" — when any member falls outside the 64-bit
// range; fill() guarantees n ≤ 64 whenever the fingerprint matters.
func maskOf(group []int) uint64 {
	var m uint64
	for _, gi := range group {
		if gi < 0 || gi >= 64 {
			return 0
		}
		m |= 1 << uint(gi)
	}
	return m
}

// countTrue counts set entries of a boolean membership vector.
func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// aliveGroup returns the ascending index set of live nodes.
func aliveGroup(alive []bool) []int {
	g := make([]int, 0, len(alive))
	for i, a := range alive {
		if a {
			g = append(g, i)
		}
	}
	return g
}

// deltaOf returns the step's delta for node id, or 0 if id is outside the
// planning group.
func deltaOf(step core.Step, group []int, id int) float64 {
	for k, gi := range group {
		if gi == id {
			return step.Delta[k]
		}
	}
	return 0
}

// runBroadcast is the fully decentralized mode: everyone talks to everyone.
// With Quorum/DepartAfter set it also carries the churn protocol: rounds
// may complete short on their deadline, silent peers are declared departed
// after DepartAfter consecutive misses and their fraction redistributed
// over the survivors, and every partial-round step is re-certified against
// Theorem 2 (predicted ΔU ≥ 0) before being applied. Termination fires
// only on full rounds, so the run either converges with every live peer in
// agreement or fails with a typed error — it never exits on a partial view.
func runBroadcast(ctx context.Context, cfg Config) (Outcome, error) {
	ep := cfg.Endpoint
	n := ep.Peers()
	id := ep.ID()
	buf := protocol.NewRoundBuffer(n)

	x := cfg.Init
	out := Outcome{}
	xs := make([]float64, n)
	if cfg.InitFullX != nil {
		copy(xs, cfg.InitFullX)
		x = xs[id]
	}
	alive := make([]bool, n)
	if cfg.InitAlive != nil {
		copy(alive, cfg.InitAlive)
	} else {
		for i := range alive {
			alive[i] = true
		}
	}
	missing := make([]int, n)
	planned := cfg.InitPlanned
	churn := cfg.Quorum > 0
	gs := make([]float64, n)
	hs := make([]float64, n)
	group := make([]int, 0, n)
	alpha := cfg.Alpha
	for round := cfg.StartRound; round < cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("agent: canceled at round %d: %w", round, err)
		}
		if cfg.Checkpoint != nil {
			// Save before the round's first send: a crash anywhere in the
			// round resumes here, and the re-broadcast of the identical
			// report is discarded by peers as a benign duplicate.
			if err := cfg.Checkpoint.SaveRound(round, x, xs, alive, planned); err != nil {
				return out, fmt.Errorf("%w: round %d: %v", ErrCheckpoint, round, err)
			}
			cfg.Observer.CheckpointSaved(id, round)
		}
		cfg.Observer.RoundStarted(id, round)
		g, err := cfg.Model.Marginal(x)
		if err != nil {
			return out, fmt.Errorf("agent: round %d: %w", round, err)
		}
		var h float64
		if cfg.DynamicAlphaSafety > 0 || cfg.SecondOrder {
			if h, err = cfg.Model.Curvature(x); err != nil {
				return out, fmt.Errorf("agent: round %d: %w", round, err)
			}
		}
		payload, err := protocol.EncodeReport(protocol.Report{
			Round: round, Node: id, Marginal: g, Alloc: x, Curvature: h, Planned: planned,
		})
		if err != nil {
			return out, err
		}
		for to := 0; to < n; to++ {
			if to == id || !alive[to] {
				continue
			}
			if err := sendReliably(ctx, cfg, round, to, payload); err != nil {
				return out, fmt.Errorf("agent: broadcasting round %d: %w", round, err)
			}
			out.MessagesSent++
		}
		want := countTrue(alive) - 1
		full, err := collectReports(ctx, cfg, buf, round, want, alive)
		if err != nil {
			return out, err
		}
		reports := buf.Take(round)
		// The planning group is this node plus the round's reporters, in
		// ascending order — identical on every node that saw the same
		// reports. Each report's fingerprint of the sender's previous
		// planning group must match ours: a mismatch means an earlier
		// round silently split the cluster into different quorum subsets.
		group = group[:0]
		xs[id], gs[id], hs[id] = x, g, h
		for node := 0; node < n; node++ {
			if node == id {
				group = append(group, node)
				continue
			}
			rep, ok := reports[node]
			if !ok {
				continue
			}
			if churn && planned != 0 && rep.Planned != 0 && rep.Planned != planned {
				return out, fmt.Errorf("%w: node %d planned round %d over group %#x, we planned over %#x", ErrDesync, node, round-1, rep.Planned, planned)
			}
			xs[node], gs[node], hs[node] = rep.Alloc, rep.Marginal, rep.Curvature
			group = append(group, node)
		}
		var departed []int
		if churn {
			for node := 0; node < n; node++ {
				if node == id || !alive[node] {
					continue
				}
				if _, ok := reports[node]; ok {
					missing[node] = 0
					continue
				}
				missing[node]++
				if cfg.DepartAfter > 0 && missing[node] >= cfg.DepartAfter {
					departed = append(departed, node)
				}
			}
		}
		if cfg.DynamicAlphaSafety > 0 {
			if dyn := dynamicAlpha(gs, hs, cfg.DynamicAlphaSafety); dyn > 0 {
				alpha = dyn
			}
		}
		var step core.Step
		if cfg.SecondOrder {
			step, err = secondorder.PlanStep(xs, gs, hs, group, alpha)
		} else {
			step, err = core.PlanStep(xs, gs, group, alpha)
		}
		if err != nil {
			return out, fmt.Errorf("agent: planning round %d: %w", round, err)
		}
		// Theorem-2 guard: a step planned from a partial report set must
		// still predict ΔU ≥ 0, or it is rejected (a no-op round) —
		// identically on every node planning over the same group.
		reject := false
		// ΔU is the Theorem-2 certificate for the planned step; it doubles
		// as the per-round utility-gain metric reported via StepApplied.
		du, err := core.Ascent(gs, group, step)
		if err != nil {
			return out, fmt.Errorf("agent: certifying round %d: %w", round, err)
		}
		if churn && !full && du < 0 {
			reject = true
			cfg.Observer.RecoveryEvent(id, round, "reject", fmt.Sprintf("partial-round step predicts ΔU = %g < 0", du))
		}
		spread := step.Spread(gs, group)
		cfg.Observer.StepPlanned(id, round, spread, deltaOf(step, group, id))
		if full {
			if spread < cfg.Epsilon {
				out.X = x
				out.FullX = append([]float64(nil), xs...)
				out.Rounds = round
				out.Converged = true
				out.Alive = append([]bool(nil), alive...)
				cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
				return out, nil
			}
			if step.IsNoOp() {
				out.X = x
				out.FullX = append([]float64(nil), xs...)
				out.Rounds = round
				out.Alive = append([]bool(nil), alive...)
				cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
				return out, nil
			}
		}
		if !reject {
			if err := step.Apply(xs, group); err != nil {
				return out, fmt.Errorf("agent: applying round %d: %w", round, err)
			}
			x = xs[id]
			cfg.Observer.StepApplied(id, round, du, len(group))
		}
		planned = maskOf(group)
		if len(departed) > 0 {
			for _, d := range departed {
				alive[d] = false
				cfg.Observer.RecoveryEvent(id, round, "depart", fmt.Sprintf("node %d missed %d consecutive rounds; redistributing its fraction", d, missing[d]))
			}
			// Feasibility-preserving redistribution (Theorem 1): the
			// survivors rescale their own mutually-known fragments to sum
			// to exactly 1, identically on every survivor.
			if err := core.Renormalize(xs, aliveGroup(alive)); err != nil {
				return out, fmt.Errorf("agent: redistributing after round %d: %w", round, err)
			}
			x = xs[id]
		}
	}
	out.X = x
	out.FullX = append([]float64(nil), xs...)
	out.Rounds = cfg.MaxRounds
	out.Alive = append([]bool(nil), alive...)
	cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
	return out, nil
}

// runCoordinator is the central agent of Coordinator mode: it collects
// reports, plans the identical step the broadcast mode would, and
// distributes the full delta vector.
func runCoordinator(ctx context.Context, cfg Config) (Outcome, error) {
	ep := cfg.Endpoint
	n := ep.Peers()
	id := ep.ID()
	group := group01n(n)
	buf := protocol.NewRoundBuffer(n)

	x := cfg.Init
	out := Outcome{}
	xs := make([]float64, n)
	gs := make([]float64, n)
	for round := 0; round < cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("agent: canceled at round %d: %w", round, err)
		}
		cfg.Observer.RoundStarted(id, round)
		g, err := cfg.Model.Marginal(x)
		if err != nil {
			return out, fmt.Errorf("agent: round %d: %w", round, err)
		}
		if _, err := collectReports(ctx, cfg, buf, round, n-1, nil); err != nil {
			return out, err
		}
		reports := buf.Take(round)
		xs[id], gs[id] = x, g
		for node, rep := range reports {
			xs[node], gs[node] = rep.Alloc, rep.Marginal
		}
		step, err := core.PlanStep(xs, gs, group, cfg.Alpha)
		if err != nil {
			return out, fmt.Errorf("agent: planning round %d: %w", round, err)
		}
		spread := step.Spread(gs, group)
		cfg.Observer.StepPlanned(id, round, spread, step.Delta[id])
		done := spread < cfg.Epsilon || step.IsNoOp()
		payload, err := protocol.EncodeUpdate(protocol.Update{Round: round, Delta: step.Delta, Done: done})
		if err != nil {
			return out, err
		}
		sent, err := broadcastReliably(ctx, cfg, round, payload)
		out.MessagesSent += sent
		if err != nil {
			return out, fmt.Errorf("agent: distributing round %d: %w", round, err)
		}
		if done {
			out.X = x
			out.FullX = append([]float64(nil), xs...)
			out.Rounds = round
			out.Converged = spread < cfg.Epsilon
			cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
			return out, nil
		}
		du, err := core.Ascent(gs, group, step)
		if err != nil {
			return out, fmt.Errorf("agent: certifying round %d: %w", round, err)
		}
		cfg.Observer.StepApplied(id, round, du, len(group))
		x += step.Delta[id]
		if x < 0 && x > -1e-9 {
			x = 0
		}
	}
	out.X = x
	out.Rounds = cfg.MaxRounds
	cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
	return out, nil
}

// runWorker is a non-coordinator node in Coordinator mode.
func runWorker(ctx context.Context, cfg Config) (Outcome, error) {
	ep := cfg.Endpoint
	id := ep.ID()
	x := cfg.Init
	out := Outcome{}
	for round := 0; round < cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("agent: canceled at round %d: %w", round, err)
		}
		cfg.Observer.RoundStarted(id, round)
		g, err := cfg.Model.Marginal(x)
		if err != nil {
			return out, fmt.Errorf("agent: round %d: %w", round, err)
		}
		payload, err := protocol.EncodeReport(protocol.Report{Round: round, Node: id, Marginal: g, Alloc: x})
		if err != nil {
			return out, err
		}
		if err := sendReliably(ctx, cfg, round, cfg.CoordinatorID, payload); err != nil {
			return out, fmt.Errorf("agent: reporting round %d: %w", round, err)
		}
		out.MessagesSent++

		update, err := awaitUpdate(ctx, cfg, round)
		if err != nil {
			return out, err
		}
		if update.Done {
			out.X = x
			out.Rounds = round
			out.Converged = true
			cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
			return out, nil
		}
		if id >= len(update.Delta) {
			return out, fmt.Errorf("%w: update with %d deltas for node %d", ErrProtocol, len(update.Delta), id)
		}
		x += update.Delta[id]
		if x < 0 && x > -1e-9 {
			x = 0
		}
	}
	out.X = x
	out.Rounds = cfg.MaxRounds
	cfg.Observer.RunFinished(id, out.Rounds, out.Converged)
	return out, nil
}

// awaitUpdate waits for the coordinator's round update. Updates for past
// rounds (duplicated or re-delivered late) are discarded; an update for a
// *future* round means this worker's report was skipped and lockstep is
// broken — a protocol violation.
func awaitUpdate(ctx context.Context, cfg Config, round int) (*protocol.Update, error) {
	id := cfg.Endpoint.ID()
	deadline, cancel := context.WithTimeout(ctx, cfg.RoundTimeout)
	defer cancel()
	for {
		msg, err := cfg.Endpoint.Recv(deadline)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				cfg.Observer.TimeoutFired(id, round)
				return nil, fmt.Errorf("%w: waiting for round %d update", ErrRoundTimeout, round)
			}
			return nil, fmt.Errorf("agent: receiving round %d update: %w", round, err)
		}
		env, err := protocol.Decode(msg.Payload)
		if err != nil {
			return nil, fmt.Errorf("agent: round %d: %w", round, err)
		}
		if env.Kind != protocol.KindUpdate {
			return nil, fmt.Errorf("%w: unexpected %q message while awaiting update", ErrProtocol, env.Kind)
		}
		if env.Update.Round < round {
			cfg.Observer.MessageDiscarded(id, round, "stale update")
			continue
		}
		if env.Update.Round > round {
			return nil, fmt.Errorf("%w: update for round %d while in round %d", ErrProtocol, env.Update.Round, round)
		}
		return env.Update, nil
	}
}
