package agent

import (
	"fmt"
	"io"
	"sync"
)

// Observer receives round-level events from running agents. Every event
// carries the emitting node's id, so a single thread-safe Observer can be
// shared by a whole in-process cluster. Implementations must be safe for
// concurrent use; hot-path callers do not wait for slow observers, so
// implementations should return quickly.
type Observer interface {
	// RoundStarted fires when a node begins a protocol round.
	RoundStarted(node, round int)
	// ReportsCollected fires when a node finishes gathering a round's
	// peer reports; got < want means the round timed out short.
	ReportsCollected(node, round, got, want int)
	// StepPlanned fires after the node plans a re-allocation, with the
	// round's convergence spread (max−min marginal utility) and the
	// node's own planned delta.
	StepPlanned(node, round int, spread, delta float64)
	// SendRetried fires when a send to peer `to` failed and is about to
	// be retried.
	SendRetried(node, round, to, attempt int, err error)
	// TimeoutFired fires when a round wait exceeds RoundTimeout.
	TimeoutFired(node, round int)
	// MessageDiscarded fires when a node drops a benign out-of-protocol
	// message (stale rebroadcast, identical duplicate) instead of
	// aborting the round.
	MessageDiscarded(node, round int, reason string)
	// TransportError surfaces an asynchronous transport failure (for
	// example a TCP read-loop error) that has no round context.
	TransportError(node int, detail string)
	// RecoveryEvent fires on a crash-recovery lifecycle transition. kind
	// is one of "crash" (a run died on a crash fault), "restart" (the
	// supervisor is about to re-run it), "resume" (a run continued from a
	// checkpoint), "quorum" (a round completed short on its deadline),
	// "depart" (a node was declared departed and its fraction
	// redistributed), "reject" (a planned step failed the monotonicity
	// guard and was skipped), or "rejoin" (a departed node re-entered
	// with a zero fragment).
	RecoveryEvent(node, round int, kind, detail string)
	// StepApplied fires after a planned step passes the monotonicity guard
	// and is applied, with the predicted per-round utility gain ΔU
	// (Theorem 2 says it is non-negative under the α bound) and the size
	// of the round's active set.
	StepApplied(node, round int, deltaU float64, activeSet int)
	// CheckpointSaved fires after a round's state has been durably
	// checkpointed (before the round's broadcast begins).
	CheckpointSaved(node, round int)
	// RunFinished fires when the agent's run ends without error.
	RunFinished(node, rounds int, converged bool)
}

// NopObserver ignores every event; it is the default.
type NopObserver struct{}

var _ Observer = NopObserver{}

func (NopObserver) RoundStarted(node, round int)                {}
func (NopObserver) ReportsCollected(node, round, got, want int) {}
func (NopObserver) StepPlanned(node, round int, spread, delta float64) {
}
func (NopObserver) SendRetried(node, round, to, attempt int, err error) {}
func (NopObserver) TimeoutFired(node, round int)                        {}
func (NopObserver) MessageDiscarded(node, round int, reason string)     {}
func (NopObserver) TransportError(node int, detail string)              {}
func (NopObserver) RecoveryEvent(node, round int, kind, detail string)  {}
func (NopObserver) StepApplied(node, round int, deltaU float64, activeSet int) {
}
func (NopObserver) CheckpointSaved(node, round int)              {}
func (NopObserver) RunFinished(node, rounds int, converged bool) {}

// Counters is a snapshot of a CounterObserver's tallies.
type Counters struct {
	RoundsStarted   int64
	ReportsMissing  int64 // ReportsCollected events with got < want
	StepsPlanned    int64
	SendRetries     int64
	TimeoutsFired   int64
	Discarded       int64 // total MessageDiscarded events
	TransportErrors int64
	RunsFinished    int64
	RunsConverged   int64
	RecoveryEvents  int64 // total RecoveryEvent notifications
	StepsApplied    int64
	CheckpointSaves int64
	// DiscardsByReason splits Discarded by the reason string.
	DiscardsByReason map[string]int64
	// RecoveryByKind splits RecoveryEvents by the kind string.
	RecoveryByKind map[string]int64
	// MaxRound is the highest round any node started.
	MaxRound int
	// LastSpread is the convergence spread of the most recent planned
	// step.
	LastSpread float64
	// LastDeltaU is the predicted utility gain of the most recent applied
	// step.
	LastDeltaU float64
}

// CounterObserver tallies events for tests and summaries. The zero value
// is ready to use and safe for concurrent use.
type CounterObserver struct {
	mu sync.Mutex
	c  Counters
}

var _ Observer = (*CounterObserver)(nil)

// Reset zeroes every tally so the observer can be reused for another
// run — experiment sweeps hand one CounterObserver per worker and reset
// it between cells instead of allocating a fresh one per cell.
func (o *CounterObserver) Reset() {
	o.mu.Lock()
	o.c = Counters{}
	o.mu.Unlock()
}

// Counters returns a snapshot of the tallies.
func (o *CounterObserver) Counters() Counters {
	o.mu.Lock()
	defer o.mu.Unlock()
	snap := o.c
	snap.DiscardsByReason = make(map[string]int64, len(o.c.DiscardsByReason))
	for k, v := range o.c.DiscardsByReason {
		snap.DiscardsByReason[k] = v
	}
	snap.RecoveryByKind = make(map[string]int64, len(o.c.RecoveryByKind))
	for k, v := range o.c.RecoveryByKind {
		snap.RecoveryByKind[k] = v
	}
	return snap
}

func (o *CounterObserver) RoundStarted(node, round int) {
	o.mu.Lock()
	o.c.RoundsStarted++
	if round > o.c.MaxRound {
		o.c.MaxRound = round
	}
	o.mu.Unlock()
}

func (o *CounterObserver) ReportsCollected(node, round, got, want int) {
	o.mu.Lock()
	if got < want {
		o.c.ReportsMissing++
	}
	o.mu.Unlock()
}

func (o *CounterObserver) StepPlanned(node, round int, spread, delta float64) {
	o.mu.Lock()
	o.c.StepsPlanned++
	o.c.LastSpread = spread
	o.mu.Unlock()
}

func (o *CounterObserver) SendRetried(node, round, to, attempt int, err error) {
	o.mu.Lock()
	o.c.SendRetries++
	o.mu.Unlock()
}

func (o *CounterObserver) TimeoutFired(node, round int) {
	o.mu.Lock()
	o.c.TimeoutsFired++
	o.mu.Unlock()
}

func (o *CounterObserver) MessageDiscarded(node, round int, reason string) {
	o.mu.Lock()
	o.c.Discarded++
	if o.c.DiscardsByReason == nil {
		o.c.DiscardsByReason = make(map[string]int64)
	}
	o.c.DiscardsByReason[reason]++
	o.mu.Unlock()
}

func (o *CounterObserver) TransportError(node int, detail string) {
	o.mu.Lock()
	o.c.TransportErrors++
	o.mu.Unlock()
}

func (o *CounterObserver) RecoveryEvent(node, round int, kind, detail string) {
	o.mu.Lock()
	o.c.RecoveryEvents++
	if o.c.RecoveryByKind == nil {
		o.c.RecoveryByKind = make(map[string]int64)
	}
	o.c.RecoveryByKind[kind]++
	o.mu.Unlock()
}

func (o *CounterObserver) StepApplied(node, round int, deltaU float64, activeSet int) {
	o.mu.Lock()
	o.c.StepsApplied++
	o.c.LastDeltaU = deltaU
	o.mu.Unlock()
}

func (o *CounterObserver) CheckpointSaved(node, round int) {
	o.mu.Lock()
	o.c.CheckpointSaves++
	o.mu.Unlock()
}

func (o *CounterObserver) RunFinished(node, rounds int, converged bool) {
	o.mu.Lock()
	o.c.RunsFinished++
	if converged {
		o.c.RunsConverged++
	}
	o.mu.Unlock()
}

// LogObserver writes one plain-text line per event, for -v daemon output.
type LogObserver struct {
	mu sync.Mutex
	w  io.Writer
}

var _ Observer = (*LogObserver)(nil)

// NewLogObserver logs events to w.
func NewLogObserver(w io.Writer) *LogObserver { return &LogObserver{w: w} }

func (o *LogObserver) line(format string, args ...any) {
	o.mu.Lock()
	fmt.Fprintf(o.w, "agent: "+format+"\n", args...)
	o.mu.Unlock()
}

func (o *LogObserver) RoundStarted(node, round int) {
	o.line("node %d round %d: started", node, round)
}

func (o *LogObserver) ReportsCollected(node, round, got, want int) {
	o.line("node %d round %d: collected %d/%d reports", node, round, got, want)
}

func (o *LogObserver) StepPlanned(node, round int, spread, delta float64) {
	o.line("node %d round %d: step planned, spread %.6g, own delta %+.6g", node, round, spread, delta)
}

func (o *LogObserver) SendRetried(node, round, to, attempt int, err error) {
	o.line("node %d round %d: retrying send to %d (attempt %d): %v", node, round, to, attempt, err)
}

func (o *LogObserver) TimeoutFired(node, round int) {
	o.line("node %d round %d: TIMEOUT waiting for peers", node, round)
}

func (o *LogObserver) MessageDiscarded(node, round int, reason string) {
	o.line("node %d round %d: discarded message (%s)", node, round, reason)
}

func (o *LogObserver) TransportError(node int, detail string) {
	o.line("node %d: transport error: %s", node, detail)
}

func (o *LogObserver) RecoveryEvent(node, round int, kind, detail string) {
	o.line("node %d round %d: recovery %s: %s", node, round, kind, detail)
}

func (o *LogObserver) StepApplied(node, round int, deltaU float64, activeSet int) {
	o.line("node %d round %d: step applied, ΔU %+.6g, active set %d", node, round, deltaU, activeSet)
}

func (o *LogObserver) CheckpointSaved(node, round int) {
	o.line("node %d round %d: checkpoint saved", node, round)
}

func (o *LogObserver) RunFinished(node, rounds int, converged bool) {
	o.line("node %d: finished after %d rounds (converged=%t)", node, rounds, converged)
}

// MultiObserver fans events out to several observers.
type MultiObserver []Observer

var _ Observer = MultiObserver(nil)

func (m MultiObserver) RoundStarted(node, round int) {
	for _, o := range m {
		o.RoundStarted(node, round)
	}
}

func (m MultiObserver) ReportsCollected(node, round, got, want int) {
	for _, o := range m {
		o.ReportsCollected(node, round, got, want)
	}
}

func (m MultiObserver) StepPlanned(node, round int, spread, delta float64) {
	for _, o := range m {
		o.StepPlanned(node, round, spread, delta)
	}
}

func (m MultiObserver) SendRetried(node, round, to, attempt int, err error) {
	for _, o := range m {
		o.SendRetried(node, round, to, attempt, err)
	}
}

func (m MultiObserver) TimeoutFired(node, round int) {
	for _, o := range m {
		o.TimeoutFired(node, round)
	}
}

func (m MultiObserver) MessageDiscarded(node, round int, reason string) {
	for _, o := range m {
		o.MessageDiscarded(node, round, reason)
	}
}

func (m MultiObserver) TransportError(node int, detail string) {
	for _, o := range m {
		o.TransportError(node, detail)
	}
}

func (m MultiObserver) RecoveryEvent(node, round int, kind, detail string) {
	for _, o := range m {
		o.RecoveryEvent(node, round, kind, detail)
	}
}

func (m MultiObserver) StepApplied(node, round int, deltaU float64, activeSet int) {
	for _, o := range m {
		o.StepApplied(node, round, deltaU, activeSet)
	}
}

func (m MultiObserver) CheckpointSaved(node, round int) {
	for _, o := range m {
		o.CheckpointSaved(node, round)
	}
}

func (m MultiObserver) RunFinished(node, rounds int, converged bool) {
	for _, o := range m {
		o.RunFinished(node, rounds, converged)
	}
}
