package agent

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// twoFileModel builds a 4-node star system with a hot and a cold file.
func twoFileModel(t *testing.T) *costmodel.MultiFile {
	t.Helper()
	star, err := topology.Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := topology.AccessCosts(star, topology.UniformRates(4, 1), topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := topology.AccessCosts(star, topology.UniformRates(4, 0.4), topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	m, err := costmodel.NewMultiFile([][]float64{hot, cold}, []float64{2.5},
		[]float64{1, 0.4}, 1, costmodel.ShareWeights)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiFileLocalMarginalsMatchObjective(t *testing.T) {
	m := twoFileModel(t)
	models := MultiFileModelsFrom(m)
	x := []float64{0.4, 0.2, 0.2, 0.2 /* hot */, 0.1, 0.3, 0.3, 0.3 /* cold */}
	grad := make([]float64, m.Dim())
	if err := m.Gradient(grad, x); err != nil {
		t.Fatal(err)
	}
	for i, lm := range models {
		local, err := lm.Marginals([]float64{x[m.Index(0, i)], x[m.Index(1, i)]})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		for f := 0; f < 2; f++ {
			if math.Abs(local[f]-grad[m.Index(f, i)]) > 1e-15 {
				t.Errorf("node %d file %d: local %g vs objective %g", i, f, local[f], grad[m.Index(f, i)])
			}
		}
	}
	if _, err := models[0].Marginals([]float64{3, 3}); !errors.Is(err, core.ErrUnstable) {
		t.Errorf("saturated marginals error = %v, want ErrUnstable", err)
	}
	if _, err := models[0].Marginals([]float64{1}); !errors.Is(err, core.ErrDimension) {
		t.Errorf("short fragment vector error = %v, want ErrDimension", err)
	}
}

func TestMultiFileClusterMatchesCentralizedExactly(t *testing.T) {
	m := twoFileModel(t)
	n := m.Nodes()
	// Initial allocation: hot file piled on node 1, cold file uniform.
	initMatrix := [][]float64{
		{0, 1, 0, 0},
		{0.25, 0.25, 0.25, 0.25},
	}
	flat := make([]float64, m.Dim())
	for f := 0; f < 2; f++ {
		for i := 0; i < n; i++ {
			flat[m.Index(f, i)] = initMatrix[f][i]
		}
	}
	central, err := core.NewAllocator(m, core.WithAlpha(0.1), core.WithEpsilon(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	centralRes, err := central.Run(context.Background(), flat)
	if err != nil {
		t.Fatal(err)
	}
	if !centralRes.Converged {
		t.Fatalf("central solver did not converge: %+v", centralRes.Reason)
	}

	net, err := transport.NewMemoryNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	models := MultiFileModelsFrom(m)
	outcomes := make([]MultiFileOutcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			outcomes[i], errs[i] = RunMultiFile(context.Background(), MultiFileAgentConfig{
				Endpoint: ep,
				Model:    models[i],
				Init:     []float64{initMatrix[0][i], initMatrix[1][i]},
				Alpha:    0.1,
				Epsilon:  1e-4,
			})
		}(i, ep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	for i, out := range outcomes {
		if !out.Converged {
			t.Errorf("agent %d did not converge", i)
		}
		if out.Rounds != centralRes.Iterations {
			t.Errorf("agent %d: %d rounds vs central %d", i, out.Rounds, centralRes.Iterations)
		}
		for f := 0; f < 2; f++ {
			if out.X[f] != centralRes.X[m.Index(f, i)] {
				t.Errorf("agent %d file %d: %v vs central %v (must be bit-identical)",
					i, f, out.X[f], centralRes.X[m.Index(f, i)])
			}
		}
	}
	// Per-file conservation across the cluster.
	for f := 0; f < 2; f++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += outcomes[i].X[f]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("file %d total = %g, want 1", f, sum)
		}
	}
}

func TestRunMultiFileValidation(t *testing.T) {
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep, _ := net.Endpoint(0)
	good := MultiFileAgentConfig{
		Endpoint: ep,
		Model: MultiFileLocalModel{
			AccessCosts: []float64{1, 2},
			ServiceRate: 3,
			FileRates:   []float64{1, 0.5},
			Weights:     []float64{1, 1},
			K:           1,
		},
		Init: []float64{0.5, 0.5},
	}
	tests := []struct {
		name string
		fn   func(MultiFileAgentConfig) MultiFileAgentConfig
	}{
		{"nil endpoint", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.Endpoint = nil; return c }},
		{"shape mismatch", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.Model.FileRates = []float64{1}; return c }},
		{"bad init length", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.Init = []float64{1}; return c }},
		{"negative init", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.Init = []float64{-1, 2}; return c }},
		{"negative alpha", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.Alpha = -1; return c }},
		{"negative epsilon", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.Epsilon = -1; return c }},
		{"negative rounds", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.MaxRounds = -1; return c }},
		{"negative retries", func(c MultiFileAgentConfig) MultiFileAgentConfig { c.SendRetries = -1; return c }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunMultiFile(context.Background(), tt.fn(good)); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}
