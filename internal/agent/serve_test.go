package agent

import (
	"context"
	"math"
	"testing"
	"time"

	"filealloc/internal/costmodel"
	"filealloc/internal/loadgen"
	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// testReplanConfig builds a ReplanConfig over n identical nodes with unit
// access-cost spread: node i costs 1+i to access.
func testReplanConfig(n int, mu float64) ReplanConfig {
	mus := make([]float64, n)
	for i := range mus {
		mus[i] = mu
	}
	return ReplanConfig{
		N:  n,
		Mu: mus,
		BuildModel: func(rates []float64, lambda float64, support []int) (*costmodel.SingleFile, error) {
			acc := make([]float64, len(support))
			svc := make([]float64, len(support))
			for j, i := range support {
				acc[j] = 1 + float64(i)
				svc[j] = mus[i]
			}
			return costmodel.NewSingleFile(acc, svc, lambda, 1)
		},
	}
}

func TestReplanProducesCertifiedPlan(t *testing.T) {
	rc := testReplanConfig(3, 20)
	rates := []float64{2, 2, 2}
	prev := make([]float64, 3)
	alive := []bool{true, true, true}
	pr, err := rc.Replan(context.Background(), rates, prev, alive)
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if !pr.Certified {
		t.Fatal("plan not KKT-certified")
	}
	if pr.FellBack {
		t.Log("warm budget exhausted; cold fallback used (allowed)")
	}
	sum := 0.0
	for _, x := range pr.X {
		if x < 0 {
			t.Fatalf("negative allocation %v", pr.X)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("allocation sums to %v, want 1", sum)
	}
	if pr.Lambda != 6 {
		t.Fatalf("lambda = %v, want 6", pr.Lambda)
	}
}

func TestReplanRestrictsToAliveSupport(t *testing.T) {
	rc := testReplanConfig(3, 20)
	rates := []float64{2, 2, 2}
	prev := []float64{0.4, 0.3, 0.3}
	alive := []bool{true, false, true}
	pr, err := rc.Replan(context.Background(), rates, prev, alive)
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if !pr.Certified {
		t.Fatal("degraded plan not certified")
	}
	if pr.X[1] != 0 {
		t.Fatalf("dead node allocated %v", pr.X[1])
	}
	sum := pr.X[0] + pr.X[2]
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("surviving allocation sums to %v, want 1", sum)
	}
}

func TestReplanWarmStartReusesPreviousPlan(t *testing.T) {
	rc := testReplanConfig(3, 20)
	rates := []float64{2, 2, 2}
	alive := []bool{true, true, true}
	prevZero := make([]float64, 3)
	cold, err := rc.Replan(context.Background(), rates, prevZero, alive)
	if err != nil {
		t.Fatalf("cold replan: %v", err)
	}
	// Re-solving from the optimum must converge (much) faster than the
	// capacity-proportional cold start.
	warm, err := rc.Replan(context.Background(), rates, cold.X, alive)
	if err != nil {
		t.Fatalf("warm replan: %v", err)
	}
	if !warm.Certified {
		t.Fatal("warm plan not certified")
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}

// driveServer starts a Server on node 0 of a 2-node memory network and
// returns the driver endpoint (node 1).
func driveServer(t *testing.T, cfg ServerConfig) transport.Endpoint {
	t.Helper()
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	t.Cleanup(func() { _ = net.Close() })
	srvEP, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Endpoint = srvEP
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("server run: %v", err)
		}
	})
	drv, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	return drv
}

func roundTrip(t *testing.T, ep transport.Endpoint, payload []byte) protocol.Envelope {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ep.Send(ctx, 0, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	msg, err := ep.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	env, err := protocol.Decode(msg.Payload)
	if err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return env
}

func TestServerServesAccessAndAdoptsPlans(t *testing.T) {
	drv := driveServer(t, ServerConfig{
		Node:   0,
		N:      2,
		DistTo: []float64{0, 0.5},
		Mu:     10,
		K:      1,
		InitPlan: protocol.Plan{
			Epoch: 1,
			X:     []float64{0.5, 0.5},
			Alive: []bool{true, true},
		},
	})

	// Access from origin 1: transfer 0.5 plus the unloaded waiting term
	// K/Mu = 0.1 -> 600000 microseconds.
	access, err := protocol.EncodeAccess(protocol.Access{ID: 1, Origin: 1, T: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	env := roundTrip(t, drv, access)
	if env.Kind != protocol.KindAccessReply {
		t.Fatalf("reply kind = %q", env.Kind)
	}
	if env.AccessReply.LatencyMicros != 600000 {
		t.Fatalf("latency = %d us, want 600000", env.AccessReply.LatencyMicros)
	}
	if env.AccessReply.Epoch != 1 {
		t.Fatalf("reply epoch = %d, want 1", env.AccessReply.Epoch)
	}

	// A newer plan is adopted and acked at its epoch.
	plan, err := protocol.EncodePlan(protocol.Plan{ID: 2, Epoch: 3, X: []float64{1, 0}, Alive: []bool{true, false}, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	env = roundTrip(t, drv, plan)
	if env.Kind != protocol.KindPlanAck || env.PlanAck.Epoch != 3 {
		t.Fatalf("plan ack = %+v, want epoch 3", env.PlanAck)
	}

	// A stale plan is still acked (at the current epoch), never an error.
	stale, err := protocol.EncodePlan(protocol.Plan{ID: 3, Epoch: 2, X: []float64{0.5, 0.5}, Alive: []bool{true, true}})
	if err != nil {
		t.Fatal(err)
	}
	env = roundTrip(t, drv, stale)
	if env.Kind != protocol.KindPlanAck || env.PlanAck.Epoch != 3 {
		t.Fatalf("stale plan ack = %+v, want epoch 3", env.PlanAck)
	}

	// Requests routed under the old epoch are served normally; the reply
	// reports the server's (newer) epoch and degraded flag.
	staleAccess, err := protocol.EncodeAccess(protocol.Access{ID: 4, Origin: 0, T: 2, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	env = roundTrip(t, drv, staleAccess)
	if env.Kind != protocol.KindAccessReply || env.AccessReply.Err != "" {
		t.Fatalf("stale-epoch access = %+v, want served", env.AccessReply)
	}
	if !env.AccessReply.Degraded || env.AccessReply.Epoch != 3 {
		t.Fatalf("stale-epoch access reply = %+v, want degraded epoch 3", env.AccessReply)
	}

	// Pings return the sensed per-origin rates.
	ping, err := protocol.EncodePing(protocol.Ping{ID: 5, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	env = roundTrip(t, drv, ping)
	if env.Kind != protocol.KindPong || env.Pong.Epoch != 3 || len(env.Pong.Rates) != 2 {
		t.Fatalf("pong = %+v", env.Pong)
	}
}

// newTestServeCluster builds a small cluster for closed-loop tests.
func newTestServeCluster(t *testing.T, n int, seed int64) *ServeCluster {
	t.Helper()
	mu := make([]float64, n)
	rates := make([]float64, n)
	for i := range mu {
		mu[i] = 30
		rates[i] = 4
	}
	sc, err := NewServeCluster(context.Background(), ServeClusterConfig{
		N:              n,
		Mu:             mu,
		K:              1,
		InitRates:      rates,
		RequestTimeout: 500 * time.Millisecond,
		Retries:        1,
		DownAfter:      2,
		Seed:           seed,
	})
	if err != nil {
		t.Fatalf("serve cluster: %v", err)
	}
	t.Cleanup(func() {
		if err := sc.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return sc
}

func TestServeClusterServesAndReplansOnDrift(t *testing.T) {
	sc := newTestServeCluster(t, 3, 1)
	ctx := context.Background()

	epoch0 := sc.ctrl.Plan().Epoch
	id := uint64(0)
	replanned := false
	for tick := 1; tick <= 8 && !replanned; tick++ {
		// All demand from origin 0 — far from the uniform InitRates.
		for i := 0; i < 20; i++ {
			id++
			out := sc.Fire(ctx, loadgen.Request{ID: id, Origin: 0, U: float64(i%10) / 10.0, U2: 0.5, T: float64(tick)})
			if !out.OK {
				t.Fatalf("tick %d request %d failed: %s", tick, i, out.ErrClass)
			}
			if out.LatencyMicros <= 0 {
				t.Fatalf("non-positive latency %d", out.LatencyMicros)
			}
		}
		info, err := sc.Tick(ctx, float64(tick), 0)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if info.Rejected {
			t.Fatalf("tick %d rejected a plan", tick)
		}
		if info.Replanned {
			if !info.Certified {
				t.Fatalf("tick %d adopted an uncertified plan", tick)
			}
			replanned = true
		}
	}
	if !replanned {
		t.Fatal("skewed demand never triggered a re-plan")
	}
	if got := sc.ctrl.Plan().Epoch; got <= epoch0 {
		t.Fatalf("epoch %d did not advance past %d", got, epoch0)
	}
}

func TestServeClusterDegradedModeAfterCrash(t *testing.T) {
	sc := newTestServeCluster(t, 3, 2)
	ctx := context.Background()

	// Warm up: a couple of ticks of uniform demand.
	id := uint64(0)
	fireTick := func(tick int) (ok, failed int) {
		for i := 0; i < 12; i++ {
			id++
			out := sc.Fire(ctx, loadgen.Request{ID: id, Origin: i % 3, U: float64(i%12) / 12.0, U2: 0.7, T: float64(tick)})
			if out.OK {
				ok++
			} else {
				failed++
			}
		}
		return ok, failed
	}
	for tick := 1; tick <= 2; tick++ {
		if _, failed := fireTick(tick); failed > 0 {
			t.Fatalf("healthy tick %d had %d failures", tick, failed)
		}
		if _, err := sc.Tick(ctx, float64(tick), 0); err != nil {
			t.Fatal(err)
		}
	}

	if err := sc.Kill(1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// With the detector not yet triggered, requests routed at node 1 fail
	// fast and must be served by the degraded fallback — zero failures.
	sawFallback := false
	degradedPlan := false
	for tick := 3; tick <= 8; tick++ {
		okBefore := id
		_ = okBefore
		ok, failed := fireTick(tick)
		if failed > 0 {
			t.Fatalf("tick %d after crash: %d/%d requests failed", tick, failed, ok+failed)
		}
		info, err := sc.Tick(ctx, float64(tick), 0)
		if err != nil {
			t.Fatal(err)
		}
		if info.Replanned && !info.Certified {
			t.Fatalf("tick %d adopted an uncertified plan", tick)
		}
		if info.Degraded {
			degradedPlan = true
			plan := sc.ctrl.Plan()
			if plan.X[1] != 0 {
				t.Fatalf("degraded plan still allocates %v to the dead node", plan.X[1])
			}
		}
	}
	_ = sawFallback
	if !degradedPlan {
		t.Fatal("crash never produced a degraded re-plan")
	}
	if !sc.clnt.Down(1) {
		t.Fatal("failure detector never marked the crashed node down")
	}
}
