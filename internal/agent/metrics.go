package agent

import (
	"strconv"
	"strings"

	"filealloc/internal/metrics"
)

// MetricsObserver publishes agent events into a metrics.Registry, labelled
// by node. Everything it records is either an integer event count or a
// value produced by the deterministic numeric core, and every gauge series
// is written only from its own node's goroutine, so registry snapshots
// from runs that process the same events are byte-identical regardless of
// worker count — the contract pinned by the chaos-churn metrics test.
type MetricsObserver struct {
	reg *metrics.Registry
}

var _ Observer = (*MetricsObserver)(nil)

// NewMetricsObserver records agent events into reg.
func NewMetricsObserver(reg *metrics.Registry) *MetricsObserver {
	return &MetricsObserver{reg: reg}
}

func nodeLabel(node int) metrics.Label {
	return metrics.L("node", strconv.Itoa(node))
}

// metricReason maps free-text event reasons onto label-friendly tokens.
func metricReason(reason string) string {
	return strings.ReplaceAll(reason, " ", "_")
}

func (o *MetricsObserver) RoundStarted(node, round int) {
	o.reg.Counter("fap_agent_rounds_started_total",
		"protocol rounds begun", nodeLabel(node)).Inc()
	o.reg.Gauge("fap_agent_round",
		"most recent round index (round indices are the clock)", nodeLabel(node)).Set(float64(round))
}

func (o *MetricsObserver) ReportsCollected(node, round, got, want int) {
	outcome := "full"
	if got < want {
		outcome = "short"
	}
	o.reg.Counter("fap_agent_report_rounds_total",
		"report-collection rounds by outcome", nodeLabel(node), metrics.L("outcome", outcome)).Inc()
}

func (o *MetricsObserver) StepPlanned(node, round int, spread, delta float64) {
	o.reg.Counter("fap_agent_steps_planned_total",
		"re-allocation steps planned", nodeLabel(node)).Inc()
	o.reg.Gauge("fap_agent_spread",
		"marginal-utility spread of the last planned step", nodeLabel(node)).Set(spread)
}

func (o *MetricsObserver) SendRetried(node, round, to, attempt int, err error) {
	o.reg.Counter("fap_agent_send_retries_total",
		"send attempts retried after a transport failure", nodeLabel(node)).Inc()
}

func (o *MetricsObserver) TimeoutFired(node, round int) {
	o.reg.Counter("fap_agent_timeouts_total",
		"round waits that exceeded the round timeout", nodeLabel(node)).Inc()
}

func (o *MetricsObserver) MessageDiscarded(node, round int, reason string) {
	o.reg.Counter("fap_agent_discards_total",
		"benign out-of-protocol messages discarded",
		nodeLabel(node), metrics.L("reason", metricReason(reason))).Inc()
}

func (o *MetricsObserver) TransportError(node int, detail string) {
	o.reg.Counter("fap_agent_transport_errors_total",
		"asynchronous transport failures surfaced to the agent", nodeLabel(node)).Inc()
}

func (o *MetricsObserver) RecoveryEvent(node, round int, kind, detail string) {
	o.reg.Counter("fap_agent_recovery_events_total",
		"crash-recovery lifecycle transitions",
		nodeLabel(node), metrics.L("kind", kind)).Inc()
}

func (o *MetricsObserver) StepApplied(node, round int, deltaU float64, activeSet int) {
	o.reg.Counter("fap_agent_steps_applied_total",
		"planned steps that passed the monotonicity guard and were applied",
		nodeLabel(node)).Inc()
	o.reg.Gauge("fap_agent_delta_u",
		"predicted utility gain of the last applied step (Theorem 2)", nodeLabel(node)).Set(deltaU)
	o.reg.Gauge("fap_agent_active_set",
		"planning-group size of the last applied step", nodeLabel(node)).Set(float64(activeSet))
}

func (o *MetricsObserver) CheckpointSaved(node, round int) {
	o.reg.Counter("fap_agent_checkpoint_saves_total",
		"round states durably checkpointed", nodeLabel(node)).Inc()
}

func (o *MetricsObserver) RunFinished(node, rounds int, converged bool) {
	o.reg.Counter("fap_agent_runs_finished_total",
		"agent runs that ended without error", nodeLabel(node)).Inc()
	if converged {
		o.reg.Counter("fap_agent_runs_converged_total",
			"agent runs that terminated on the ε criterion", nodeLabel(node)).Inc()
	}
	o.reg.Gauge("fap_agent_final_rounds",
		"rounds used by the last finished run", nodeLabel(node)).Set(float64(rounds))
}
