package agent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"filealloc/internal/costmodel"
	"filealloc/internal/transport"
)

// ClusterResult aggregates the outcomes of a full in-process cluster run.
type ClusterResult struct {
	// X is the final allocation assembled from every agent's fragment.
	X []float64
	// Rounds is the number of re-allocation rounds (identical on every
	// agent by construction).
	Rounds int
	// Converged reports the ε-criterion fired.
	Converged bool
	// Messages is the total number of protocol messages sent by all
	// agents.
	Messages int
	// Faults aggregates the injected-fault counters across all
	// endpoints when ClusterConfig.Faults is set. It is populated even
	// when RunCluster returns an error, so chaos harnesses can account
	// for the faults that caused a timeout.
	Faults transport.FaultStats
}

// ClusterConfig describes an in-process cluster run over a memory network.
type ClusterConfig struct {
	// Models holds one LocalModel per node.
	Models []LocalModel
	// Init is the initial (feasible) allocation.
	Init []float64
	// Alpha, Epsilon, MaxRounds, Mode, CoordinatorID, SendRetries mirror
	// Config.
	Alpha         float64
	Epsilon       float64
	MaxRounds     int
	Mode          Mode
	CoordinatorID int
	SendRetries   int
	// DynamicAlphaSafety mirrors Config (broadcast mode only).
	DynamicAlphaSafety float64
	// SecondOrder mirrors Config (broadcast mode only).
	SecondOrder bool
	// DropRate injects seeded random message loss into the in-memory
	// network (failure testing); pair with SendRetries for recovery.
	DropRate float64
	DropSeed int64
	// RoundTimeout mirrors Config (default 10s).
	RoundTimeout time.Duration
	// Observer is shared by every agent of the cluster (default: none).
	Observer Observer
	// Faults, when non-nil, wraps every endpoint in a FaultEndpoint with
	// this configuration; per-endpoint stats are aggregated into
	// ClusterResult.Faults.
	Faults *transport.FaultConfig
}

// ModelsFromSingleFile derives the per-node local models from a SingleFile
// objective — the knowledge each node would be provisioned with at setup.
func ModelsFromSingleFile(m *costmodel.SingleFile) []LocalModel {
	models := make([]LocalModel, m.Dim())
	for i := range models {
		models[i] = LocalModel{
			AccessCost:  m.AccessCost(i),
			ServiceRate: m.ServiceRate(i),
			Lambda:      m.Lambda(),
			K:           m.K(),
		}
	}
	return models
}

// RunCluster executes one agent per node over an in-memory network and
// assembles the final allocation. Every agent runs on its own goroutine;
// RunCluster waits for all of them before returning.
func RunCluster(ctx context.Context, cfg ClusterConfig) (ClusterResult, error) {
	n := len(cfg.Models)
	if n < 2 {
		return ClusterResult{}, fmt.Errorf("%w: cluster needs at least 2 nodes, got %d", ErrBadConfig, n)
	}
	if len(cfg.Init) != n {
		return ClusterResult{}, fmt.Errorf("%w: %d initial fragments for %d nodes", ErrBadConfig, len(cfg.Init), n)
	}
	var netOpts []transport.MemoryOption
	if cfg.DropRate > 0 {
		netOpts = append(netOpts, transport.WithDropRate(cfg.DropRate, cfg.DropSeed))
	}
	net, err := transport.NewMemoryNetwork(n, netOpts...)
	if err != nil {
		return ClusterResult{}, fmt.Errorf("agent: building memory network: %w", err)
	}
	defer net.Close() //fap:ignore errdrop shutdown of an in-memory fixture

	outcomes := make([]Outcome, n)
	errs := make([]error, n)
	faultEps := make([]*transport.FaultEndpoint, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			return ClusterResult{}, err
		}
		var agentEp transport.Endpoint = ep
		if cfg.Faults != nil {
			fep, err := transport.NewFaultEndpoint(ep, *cfg.Faults)
			if err != nil {
				return ClusterResult{}, fmt.Errorf("agent: wrapping endpoint %d: %w", i, err)
			}
			faultEps[i] = fep
			agentEp = fep
		}
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			outcomes[i], errs[i] = Run(ctx, Config{
				Endpoint:           ep,
				Model:              cfg.Models[i],
				Init:               cfg.Init[i],
				Alpha:              cfg.Alpha,
				Epsilon:            cfg.Epsilon,
				MaxRounds:          cfg.MaxRounds,
				Mode:               cfg.Mode,
				CoordinatorID:      cfg.CoordinatorID,
				SendRetries:        cfg.SendRetries,
				DynamicAlphaSafety: cfg.DynamicAlphaSafety,
				SecondOrder:        cfg.SecondOrder,
				RoundTimeout:       cfg.RoundTimeout,
				Observer:           cfg.Observer,
			})
		}(i, agentEp)
	}
	wg.Wait()

	var res ClusterResult
	for _, fep := range faultEps {
		if fep != nil {
			res.Faults.Add(fep.Stats())
		}
	}
	if err := errors.Join(errs...); err != nil {
		return res, fmt.Errorf("agent: cluster run failed: %w", err)
	}

	res.X = make([]float64, n)
	res.Rounds = outcomes[0].Rounds
	res.Converged = outcomes[0].Converged
	for i, out := range outcomes {
		res.X[i] = out.X
		res.Messages += out.MessagesSent
		if out.Rounds != res.Rounds {
			return res, fmt.Errorf("%w: agents disagree on round count (%d vs %d)", ErrProtocol, out.Rounds, res.Rounds)
		}
	}
	return res, nil
}
