package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/estimate"
	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// This file is the serving plane: after the batch protocol (or a
// controller-side solve) produces an allocation, a Server keeps a node
// *serving* access requests under that plan while sensing demand, and a
// Replanner turns sensed demand into a fresh KKT-certified allocation.
// Plans are swapped in by epoch (monotonic adoption under a lock), so
// in-flight requests always complete under whichever plan admitted them —
// a stale epoch is served, never rejected.

// ErrServe reports serving-plane configuration errors.
var ErrServe = errors.New("agent: bad serve config")

// ServerConfig configures one serving node.
type ServerConfig struct {
	// Endpoint carries the node's serving-plane traffic. The server owns
	// its Recv side.
	Endpoint transport.Endpoint
	// Node is this node's ID, N the cluster size.
	Node int
	N    int
	// DistTo[o] is the transfer cost from origin o to this node (a row
	// of the topology's pair-cost matrix).
	DistTo []float64
	// Mu is this node's service rate, K the paper's delay-cost weight:
	// an access served here costs DistTo[origin] + K/(Mu - rho) where
	// rho is the node's measured arrival rate.
	Mu float64
	K  float64
	// HalfLife is the demand estimator's half-life in virtual seconds
	// (default 2).
	HalfLife float64
	// InitPlan is the allocation the node starts serving under.
	InitPlan protocol.Plan
	// Observer receives lifecycle events (default: none).
	Observer Observer
}

func (cfg *ServerConfig) fill() error {
	if cfg.Endpoint == nil {
		return fmt.Errorf("%w: nil endpoint", ErrServe)
	}
	if cfg.N < 1 || cfg.Node < 0 || cfg.Node >= cfg.N {
		return fmt.Errorf("%w: node %d of %d", ErrServe, cfg.Node, cfg.N)
	}
	if len(cfg.DistTo) != cfg.N {
		return fmt.Errorf("%w: DistTo has %d entries for %d nodes", ErrServe, len(cfg.DistTo), cfg.N)
	}
	if cfg.Mu <= 0 || cfg.K < 0 {
		return fmt.Errorf("%w: mu %v, k %v", ErrServe, cfg.Mu, cfg.K)
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = 2
	}
	if len(cfg.InitPlan.X) != cfg.N {
		return fmt.Errorf("%w: init plan has %d entries for %d nodes", ErrServe, len(cfg.InitPlan.X), cfg.N)
	}
	if cfg.Observer == nil {
		cfg.Observer = NopObserver{}
	}
	return nil
}

// Server serves access requests under the current plan, senses per-origin
// demand into an estimate.Tracker, and answers heartbeats with its sensed
// rates. One goroutine (Run) owns the endpoint; handlers are serial, so a
// plan swap can never interleave with a half-served request.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	tracker  *estimate.Tracker
	epoch    int
	planX    []float64
	degraded bool
	// Arrival measurement: requests within one virtual tick share a
	// timestamp, so the count is order-independent; the previous tick's
	// rate is the queueing input for the current tick (deterministic
	// whatever the in-tick interleaving).
	lastT     float64
	tickCount int
	prevRate  float64
}

// NewServer validates the config and prepares the serving state.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	tracker, err := estimate.NewTracker(cfg.N, cfg.HalfLife)
	if err != nil {
		return nil, fmt.Errorf("agent: server %d tracker: %w", cfg.Node, err)
	}
	return &Server{
		cfg:      cfg,
		tracker:  tracker,
		epoch:    cfg.InitPlan.Epoch,
		planX:    append([]float64(nil), cfg.InitPlan.X...),
		degraded: cfg.InitPlan.Degraded,
	}, nil
}

// Epoch returns the plan epoch the server currently serves under.
func (s *Server) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Run processes serving-plane messages until the context is cancelled or
// the endpoint closes (both are a clean shutdown).
func (s *Server) Run(ctx context.Context) error {
	for {
		msg, err := s.cfg.Endpoint.Recv(ctx)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("agent: server %d recv: %w", s.cfg.Node, err)
		}
		env, err := protocol.Decode(msg.Payload)
		if err != nil {
			s.cfg.Observer.MessageDiscarded(s.cfg.Node, s.Epoch(), "undecodable")
			continue
		}
		switch env.Kind {
		case protocol.KindAccess:
			s.handleAccess(ctx, msg.From, env.Access)
		case protocol.KindPing:
			s.handlePing(ctx, msg.From, env.Ping)
		case protocol.KindPlan:
			s.handlePlan(ctx, msg.From, env.Plan)
		default:
			s.cfg.Observer.MessageDiscarded(s.cfg.Node, s.Epoch(), "kind "+string(env.Kind))
		}
	}
}

// handleAccess serves one request: observe demand, charge the
// model-derived latency (transfer from origin plus the M/M/1 waiting term
// at this node's measured load), and reply. Requests routed under a stale
// epoch are served normally — the plan swap repairs routing, it never
// fails requests.
func (s *Server) handleAccess(ctx context.Context, from int, a *protocol.Access) {
	if a.Origin < 0 || a.Origin >= s.cfg.N {
		s.cfg.Observer.MessageDiscarded(s.cfg.Node, s.Epoch(), "access from unknown origin")
		return
	}
	s.mu.Lock()
	if a.T > s.lastT {
		s.prevRate = float64(s.tickCount) / (a.T - s.lastT)
		s.tickCount = 0
		s.lastT = a.T
	}
	s.tickCount++
	if err := s.tracker.Observe(a.Origin, a.T); err != nil {
		s.cfg.Observer.MessageDiscarded(s.cfg.Node, s.epoch, "stale access timestamp")
	}
	epoch, degraded, rho := s.epoch, s.degraded, s.prevRate
	s.mu.Unlock()

	// Saturation clamp: a measured arrival rate at or beyond capacity
	// would make the waiting term negative or infinite; the clamp keeps
	// the penalty finite (100·K/Mu) and deterministic.
	room := s.cfg.Mu - rho
	if room < s.cfg.Mu*0.01 {
		room = s.cfg.Mu * 0.01
	}
	lat := s.cfg.DistTo[a.Origin] + s.cfg.K/room
	reply := protocol.AccessReply{
		ID:            a.ID,
		Node:          s.cfg.Node,
		Origin:        a.Origin,
		Epoch:         epoch,
		LatencyMicros: int64(math.Round(lat * 1e6)),
		Degraded:      degraded,
	}
	payload, err := protocol.EncodeAccessReply(reply)
	if err != nil {
		s.cfg.Observer.TransportError(s.cfg.Node, "encode access reply: "+err.Error())
		return
	}
	if err := s.cfg.Endpoint.Send(ctx, from, payload); err != nil {
		s.cfg.Observer.TransportError(s.cfg.Node, "access reply: "+err.Error())
	}
}

// handlePing answers a heartbeat with the node's epoch and its sensed
// per-origin demand rates — the controller sums these vectors across
// nodes to reconstruct total demand whatever the routing.
func (s *Server) handlePing(ctx context.Context, from int, p *protocol.Ping) {
	s.mu.Lock()
	now := p.T
	if now < s.lastT {
		now = s.lastT
	}
	rates := s.tracker.Rates(now)
	epoch := s.epoch
	s.mu.Unlock()
	payload, err := protocol.EncodePong(protocol.Pong{ID: p.ID, Node: s.cfg.Node, Epoch: epoch, Rates: rates})
	if err != nil {
		s.cfg.Observer.TransportError(s.cfg.Node, "encode pong: "+err.Error())
		return
	}
	if err := s.cfg.Endpoint.Send(ctx, from, payload); err != nil {
		s.cfg.Observer.TransportError(s.cfg.Node, "pong: "+err.Error())
	}
}

// handlePlan adopts a plan if its epoch advances the server's, then acks
// with whatever epoch the server is on (adoption is monotonic; replays
// and stale plans are harmless and still acked, so the controller can
// tell a laggard from a dead node).
func (s *Server) handlePlan(ctx context.Context, from int, p *protocol.Plan) {
	if len(p.X) != s.cfg.N {
		s.cfg.Observer.MessageDiscarded(s.cfg.Node, s.Epoch(), "plan with wrong dimension")
		return
	}
	s.mu.Lock()
	adopted := false
	if p.Epoch > s.epoch {
		s.epoch = p.Epoch
		s.planX = append(s.planX[:0], p.X...)
		s.degraded = p.Degraded
		adopted = true
	}
	cur := s.epoch
	s.mu.Unlock()
	if adopted {
		s.cfg.Observer.RecoveryEvent(s.cfg.Node, cur, "plan-adopted", fmt.Sprintf("degraded=%v", p.Degraded))
	}
	payload, err := protocol.EncodePlanAck(protocol.PlanAck{ID: p.ID, Epoch: cur, Node: s.cfg.Node})
	if err != nil {
		s.cfg.Observer.TransportError(s.cfg.Node, "encode plan ack: "+err.Error())
		return
	}
	if err := s.cfg.Endpoint.Send(ctx, from, payload); err != nil {
		s.cfg.Observer.TransportError(s.cfg.Node, "plan ack: "+err.Error())
	}
}

// ReplanConfig turns sensed demand into a fresh allocation: warm solve
// seeded from the previous plan (core.WarmSolver), restricted to the
// alive support in degraded mode, certified by costmodel.VerifyKKT.
type ReplanConfig struct {
	// N is the cluster size.
	N int
	// BuildModel constructs the single-file cost model for the given
	// per-origin demand rates over the alive support (support indices
	// select which nodes may host). Injected so this package does not
	// depend on the topology layer.
	BuildModel func(rates []float64, lambda float64, support []int) (*costmodel.SingleFile, error)
	// Mu holds per-node service rates, used to repair an infeasible
	// warm start (e.g. after renormalizing away a dead node that held
	// most of the file).
	Mu []float64
	// Epsilon is the solver's convergence threshold (default 1e-9).
	Epsilon float64
	// DynamicAlphaSafety is the Theorem-2 stepsize safety factor
	// (default 0.9).
	DynamicAlphaSafety float64
	// WarmSteps is the incremental budget before cold fallback
	// (default 32).
	WarmSteps int
	// KKTTol is the certificate tolerance (default 1e-2): plans whose
	// KKT residual exceeds it are not certified.
	KKTTol float64
}

func (rc *ReplanConfig) fill() error {
	if rc.N < 1 {
		return fmt.Errorf("%w: replan over %d nodes", ErrServe, rc.N)
	}
	if rc.BuildModel == nil {
		return fmt.Errorf("%w: nil BuildModel", ErrServe)
	}
	if len(rc.Mu) != rc.N {
		return fmt.Errorf("%w: Mu has %d entries for %d nodes", ErrServe, len(rc.Mu), rc.N)
	}
	if rc.Epsilon <= 0 {
		rc.Epsilon = 1e-9
	}
	if rc.DynamicAlphaSafety <= 0 {
		rc.DynamicAlphaSafety = 0.9
	}
	if rc.WarmSteps <= 0 {
		rc.WarmSteps = 32
	}
	if rc.KKTTol <= 0 {
		rc.KKTTol = 1e-2
	}
	return nil
}

// PlanResult is a solved (and possibly certified) allocation.
type PlanResult struct {
	// X is the full-dimension allocation; dead nodes hold zero.
	X []float64
	// Q is the common marginal cost level at X, Lambda the demand total
	// the plan was solved for.
	Q      float64
	Lambda float64
	// Certified reports costmodel.VerifyKKT accepted (X, Q).
	Certified bool
	// FellBack reports the warm solve exhausted its budget and the
	// result came from the cold fallback.
	FellBack bool
	// Iterations is the solver's iteration count.
	Iterations int
}

// Replan solves for a new allocation given sensed per-origin rates, the
// previous plan (the warm start), and the alive support. Demand from dead
// origins persists — their users still access the file — so rates keeps
// full dimension while hosting is restricted to survivors (the reduced
// model of the membership-churn experiments). The warm start is the
// previous plan renormalized over survivors via core.Renormalize; if that
// overloads a survivor past its service rate, the start falls back to
// capacity-proportional.
func (rc ReplanConfig) Replan(ctx context.Context, rates, prev []float64, alive []bool) (PlanResult, error) {
	if err := rc.fill(); err != nil {
		return PlanResult{}, err
	}
	if len(rates) != rc.N || len(prev) != rc.N || len(alive) != rc.N {
		return PlanResult{}, fmt.Errorf("%w: replan dimensions rates=%d prev=%d alive=%d n=%d", ErrServe, len(rates), len(prev), len(alive), rc.N)
	}
	var support []int
	for i := 0; i < rc.N; i++ {
		if alive[i] {
			support = append(support, i)
		}
	}
	if len(support) == 0 {
		return PlanResult{}, fmt.Errorf("%w: no alive nodes to plan over", ErrServe)
	}
	sort.Ints(support)
	lambda := 0.0
	for _, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return PlanResult{}, fmt.Errorf("%w: bad rate %v", ErrServe, r)
		}
		lambda += r
	}
	if lambda <= 0 {
		return PlanResult{}, fmt.Errorf("%w: zero total demand", ErrServe)
	}
	model, err := rc.BuildModel(rates, lambda, support)
	if err != nil {
		return PlanResult{}, fmt.Errorf("agent: replan model: %w", err)
	}
	if model.Dim() != len(support) {
		return PlanResult{}, fmt.Errorf("%w: model dim %d for support %d", ErrServe, model.Dim(), len(support))
	}

	init := rc.warmStart(prev, support, lambda)
	alloc, err := core.NewAllocator(model,
		core.WithDynamicAlpha(rc.DynamicAlphaSafety),
		core.WithEpsilon(rc.Epsilon),
		core.WithKKTCheck())
	if err != nil {
		return PlanResult{}, fmt.Errorf("agent: replan allocator: %w", err)
	}
	warm, err := core.NewWarmSolver(alloc, core.WarmConfig{
		MaxSteps: rc.WarmSteps,
		Certify: func(x []float64, q float64) error {
			return model.VerifyKKT(x, q, rc.KKTTol)
		},
	})
	if err != nil {
		return PlanResult{}, fmt.Errorf("agent: replan warm solver: %w", err)
	}
	res, fellBack, err := warm.SolveWarm(ctx, init, core.NewScratch())
	if err != nil {
		return PlanResult{}, fmt.Errorf("agent: replan solve: %w", err)
	}

	// Independent certificate whichever path produced the result: derive
	// the common marginal cost level q from the gradient over the active
	// set and verify the KKT conditions against it.
	grad := make([]float64, len(res.X))
	if err := model.Gradient(grad, res.X); err != nil {
		return PlanResult{}, fmt.Errorf("agent: replan gradient: %w", err)
	}
	q, active := 0.0, 0
	for i, xi := range res.X {
		if xi > 1e-9 {
			q += -grad[i]
			active++
		}
	}
	if active > 0 {
		q /= float64(active)
	}
	certified := model.VerifyKKT(res.X, q, rc.KKTTol) == nil

	full := make([]float64, rc.N)
	for j, i := range support {
		full[i] = res.X[j]
	}
	return PlanResult{
		X:          full,
		Q:          q,
		Lambda:     lambda,
		Certified:  certified,
		FellBack:   fellBack,
		Iterations: res.Iterations,
	}, nil
}

// warmStart builds the reduced-dimension starting point: the previous
// plan renormalized over the support (canonical-order Renormalize), or a
// capacity-proportional split when renormalization is impossible or would
// saturate a survivor.
func (rc ReplanConfig) warmStart(prev []float64, support []int, lambda float64) []float64 {
	full := append([]float64(nil), prev...)
	for i := range full {
		inSupport := false
		for _, s := range support {
			if s == i {
				inSupport = true
				break
			}
		}
		if !inSupport {
			full[i] = 0
		}
	}
	init := make([]float64, len(support))
	if err := core.Renormalize(full, support); err == nil {
		ok := true
		for j, i := range support {
			init[j] = full[i]
			if lambda*full[i] >= 0.95*rc.Mu[i] {
				ok = false
			}
		}
		if ok {
			return init
		}
	}
	// Capacity-proportional fallback: always interior for a model whose
	// total capacity exceeds demand.
	var muSum float64
	for _, i := range support {
		muSum += rc.Mu[i]
	}
	for j, i := range support {
		init[j] = rc.Mu[i] / muSum
	}
	return init
}
