package agent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"filealloc/internal/costmodel"
	"filealloc/internal/loadgen"
	"filealloc/internal/metrics"
	"filealloc/internal/protocol"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// ID-space partition for serving-plane correlation IDs: load-generator
// request IDs occupy the low bits; a failed primary's rerouted attempt
// and a hedge arm flip a dedicated bit each (both may complete, so they
// need distinct pending-map slots); controller traffic sets the top bit.
const (
	fallbackIDBit = uint64(1) << 62
	hedgeIDBit    = uint64(1) << 61
)

// ServeClusterConfig describes an in-process serving cluster: N Server
// nodes over a memory network, one Controller, and one hardened Client
// shared by the load generator and the controller.
type ServeClusterConfig struct {
	// N is the node count, Graph the topology (defaults to a ring with
	// unit link cost when nil).
	N     int
	Graph *topology.Graph
	// Mu holds per-node service rates, K the delay-cost weight.
	Mu []float64
	K  float64
	// InitRates is the assumed initial per-origin demand.
	InitRates []float64
	// HalfLife is the demand estimator half-life in virtual seconds
	// (default 2); DriftThreshold the re-plan trigger (default 0.25).
	HalfLife       float64
	DriftThreshold float64
	// Epsilon, KKTTol, WarmSteps tune the re-solver (see ReplanConfig).
	Epsilon   float64
	KKTTol    float64
	WarmSteps int
	// RequestTimeout, Retries, MaxInFlight, DownAfter, Seed tune the
	// client (see transport.ClientConfig).
	RequestTimeout time.Duration
	Retries        int
	MaxInFlight    int
	DownAfter      int
	Seed           int64
	// HedgeDelay, when positive, hedges access requests to a second
	// replica after the delay. HedgeFromP99, additionally, re-derives
	// the delay each tick from the previous tick's observed p99.
	HedgeDelay   time.Duration
	HedgeFromP99 bool
	// Faults, when non-nil, wraps every server endpoint in a
	// FaultEndpoint with this configuration (chaos testing).
	Faults *transport.FaultConfig
	// Registry receives the fap_client_* families (optional).
	Registry *metrics.Registry
	// Observer receives lifecycle events from servers and controller.
	Observer Observer
}

// ServeCluster implements loadgen.Target over an in-process cluster. The
// routing view (plan, alive set, epoch) is snapshotted by Fire and only
// updated at tick boundaries (Tick, Kill), so every request in a tick
// routes against the same state regardless of worker interleaving — the
// root of the byte-deterministic phase report.
type ServeCluster struct {
	cfg  ServeClusterConfig
	net  *transport.MemoryNetwork
	clnt *transport.Client
	ctrl *Controller

	mu       sync.Mutex
	killed   []bool
	cancels  []context.CancelFunc
	view     protocol.Plan
	hedging  bool
	runErrs  []error
	closed   bool
	serverWG sync.WaitGroup
}

var _ loadgen.Target = (*ServeCluster)(nil)

// NewServeCluster builds the cluster: topology costs, initial certified
// plan, N running servers, and the shared client. The context bounds the
// server goroutines' lifetime (Close also stops them).
func NewServeCluster(ctx context.Context, cfg ServeClusterConfig) (*ServeCluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: serving cluster needs at least 2 nodes, got %d", ErrServe, cfg.N)
	}
	if cfg.Graph == nil {
		g, err := topology.Ring(cfg.N, 1)
		if err != nil {
			return nil, fmt.Errorf("agent: serve cluster ring: %w", err)
		}
		cfg.Graph = g
	}
	if len(cfg.Mu) != cfg.N || len(cfg.InitRates) != cfg.N {
		return nil, fmt.Errorf("%w: Mu has %d and InitRates %d entries for %d nodes", ErrServe, len(cfg.Mu), len(cfg.InitRates), cfg.N)
	}
	if cfg.Observer == nil {
		cfg.Observer = NopObserver{}
	}
	pair, err := topology.PairCosts(cfg.Graph, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("agent: serve cluster pair costs: %w", err)
	}

	net, err := transport.NewMemoryNetwork(cfg.N + 1)
	if err != nil {
		return nil, err
	}
	sc := &ServeCluster{
		cfg:     cfg,
		net:     net,
		killed:  make([]bool, cfg.N),
		cancels: make([]context.CancelFunc, cfg.N),
		hedging: cfg.HedgeDelay > 0,
	}

	clientEP, err := net.Endpoint(cfg.N)
	if err != nil {
		return nil, err
	}
	clnt, err := transport.NewClient(transport.ClientConfig{
		Endpoint:       &gateEndpoint{inner: clientEP, dead: sc.isKilled},
		ReplyID:        protocol.ReplyIDOf,
		RequestTimeout: cfg.RequestTimeout,
		Retries:        cfg.Retries,
		MaxInFlight:    cfg.MaxInFlight,
		DownAfter:      cfg.DownAfter,
		Seed:           cfg.Seed,
		HedgeDelay:     cfg.HedgeDelay,
		Registry:       cfg.Registry,
	})
	if err != nil {
		return nil, err
	}
	sc.clnt = clnt

	graph := cfg.Graph
	buildModel := func(rates []float64, lambda float64, support []int) (*costmodel.SingleFile, error) {
		access, err := topology.AccessCosts(graph, rates, topology.RoundTrip)
		if err != nil {
			return nil, err
		}
		acc := make([]float64, len(support))
		svc := make([]float64, len(support))
		for j, i := range support {
			acc[j] = access[i]
			svc[j] = cfg.Mu[i]
		}
		return costmodel.NewSingleFile(acc, svc, lambda, cfg.K)
	}
	ctrl, err := NewController(ctx, ControllerConfig{
		Client: clnt,
		N:      cfg.N,
		Replan: ReplanConfig{
			N:          cfg.N,
			BuildModel: buildModel,
			Mu:         cfg.Mu,
			Epsilon:    cfg.Epsilon,
			WarmSteps:  cfg.WarmSteps,
			KKTTol:     cfg.KKTTol,
		},
		InitRates:      cfg.InitRates,
		DriftThreshold: cfg.DriftThreshold,
		Observer:       cfg.Observer,
	})
	if err != nil {
		closeErr := clnt.Close()
		_ = closeErr
		return nil, err
	}
	sc.ctrl = ctrl
	sc.view = ctrl.Plan()

	initPlan := ctrl.Plan()
	for i := 0; i < cfg.N; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			return nil, err
		}
		if cfg.Faults != nil {
			fep, ferr := transport.NewFaultEndpoint(ep, *cfg.Faults)
			if ferr != nil {
				return nil, ferr
			}
			ep = fep
		}
		distTo := make([]float64, cfg.N)
		for o := 0; o < cfg.N; o++ {
			distTo[o] = pair[o][i]
		}
		srv, err := NewServer(ServerConfig{
			Endpoint: ep,
			Node:     i,
			N:        cfg.N,
			DistTo:   distTo,
			Mu:       cfg.Mu[i],
			K:        cfg.K,
			HalfLife: cfg.HalfLife,
			InitPlan: initPlan,
			Observer: cfg.Observer,
		})
		if err != nil {
			return nil, err
		}
		srvCtx, cancel := context.WithCancel(ctx)
		sc.cancels[i] = cancel
		sc.serverWG.Add(1)
		go func(s *Server) {
			defer sc.serverWG.Done()
			if runErr := s.Run(srvCtx); runErr != nil {
				sc.mu.Lock()
				sc.runErrs = append(sc.runErrs, runErr)
				sc.mu.Unlock()
			}
		}(srv)
	}
	return sc, nil
}

// Nodes returns the cluster size.
func (sc *ServeCluster) Nodes() int { return sc.cfg.N }

func (sc *ServeCluster) isKilled(node int) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return node >= 0 && node < len(sc.killed) && sc.killed[node]
}

// snapshotView copies the routing view (updated only between batches).
func (sc *ServeCluster) snapshotView() (x []float64, alive []bool, epoch int, degraded bool, hedging bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.view.X, sc.view.Alive, sc.view.Epoch, sc.view.Degraded, sc.hedging
}

// Fire executes one access request: route by the plan's weights over the
// detector's alive view, send with deadline/retries (hedged when
// enabled), and on primary failure reroute once to a surviving replica —
// degraded mode serves the request instead of erroring.
func (sc *ServeCluster) Fire(ctx context.Context, req loadgen.Request) loadgen.Outcome {
	x, alive, epoch, degraded, hedging := sc.snapshotView()
	primary, err := transport.Route(x, alive, -1, req.U)
	if err != nil {
		return loadgen.Outcome{ErrClass: "no_candidates"}
	}
	payload, err := protocol.EncodeAccess(protocol.Access{ID: req.ID, Origin: req.Origin, T: req.T, Epoch: epoch})
	if err != nil {
		return loadgen.Outcome{ErrClass: "encode"}
	}

	var reply []byte
	servedErr := error(nil)
	if hedging {
		fb, ferr := transport.Route(x, alive, primary, req.U2)
		if ferr == nil && fb != primary {
			hid := req.ID | hedgeIDBit
			hpayload, herr := protocol.EncodeAccess(protocol.Access{ID: hid, Origin: req.Origin, T: req.T, Epoch: epoch})
			if herr == nil {
				reply, _, servedErr = sc.clnt.DoHedged(ctx, primary, fb, req.ID, payload, hid, hpayload)
			} else {
				reply, servedErr = sc.clnt.Do(ctx, primary, req.ID, payload)
			}
		} else {
			reply, servedErr = sc.clnt.Do(ctx, primary, req.ID, payload)
		}
	} else {
		reply, servedErr = sc.clnt.Do(ctx, primary, req.ID, payload)
	}

	usedFallback := false
	if servedErr != nil && ctx.Err() == nil {
		// Degraded fallback: treat the primary as dead for this request
		// and reroute to a surviving replica under renormalized weights.
		alive2 := append([]bool(nil), alive...)
		alive2[primary] = false
		fb, ferr := transport.Route(x, alive2, -1, req.U)
		if ferr == nil {
			fid := req.ID | fallbackIDBit
			fpayload, perr := protocol.EncodeAccess(protocol.Access{ID: fid, Origin: req.Origin, T: req.T, Epoch: epoch})
			if perr == nil {
				if r2, err2 := sc.clnt.Do(ctx, fb, fid, fpayload); err2 == nil {
					reply, servedErr = r2, nil
					usedFallback = true
				}
			}
		}
	}
	if servedErr != nil {
		return loadgen.Outcome{ErrClass: classifyErr(servedErr)}
	}
	env, err := protocol.Decode(reply)
	if err != nil || env.Kind != protocol.KindAccessReply {
		return loadgen.Outcome{ErrClass: "bad_reply"}
	}
	ar := env.AccessReply
	if ar.Err != "" {
		return loadgen.Outcome{ErrClass: "served_error"}
	}
	return loadgen.Outcome{
		OK:            true,
		Node:          ar.Node,
		Epoch:         ar.Epoch,
		LatencyMicros: ar.LatencyMicros,
		Degraded:      degraded || usedFallback || ar.Degraded,
		Fallback:      usedFallback,
	}
}

// Tick runs the controller round and refreshes the routing view; with
// HedgeFromP99 set it also re-derives the hedge delay from the previous
// tick's p99 (real time at this edge: the hedge timer is a wall-clock
// race by nature).
func (sc *ServeCluster) Tick(ctx context.Context, t float64, p99Micros int64) (loadgen.TickInfo, error) {
	if sc.cfg.HedgeFromP99 && p99Micros > 0 {
		sc.clnt.SetHedgeDelay(2 * time.Duration(p99Micros) * time.Microsecond)
	}
	info, err := sc.ctrl.Tick(ctx, t)
	sc.mu.Lock()
	sc.view = sc.ctrl.Plan()
	sc.mu.Unlock()
	return info, err
}

// Kill crashes a node: its server stops, its endpoint closes, and every
// subsequent send to it fails fast (connection-refused semantics). The
// failure detector is not informed — heartbeats and request failures must
// discover the death.
func (sc *ServeCluster) Kill(node int) error {
	if node < 0 || node >= sc.cfg.N {
		return fmt.Errorf("%w: kill node %d of %d", ErrServe, node, sc.cfg.N)
	}
	sc.mu.Lock()
	already := sc.killed[node]
	sc.killed[node] = true
	cancel := sc.cancels[node]
	sc.mu.Unlock()
	if already {
		return nil
	}
	cancel()
	ep, err := sc.net.Endpoint(node)
	if err != nil {
		return err
	}
	return ep.Close()
}

// Close tears the cluster down and reports any server run error.
func (sc *ServeCluster) Close() error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil
	}
	sc.closed = true
	cancels := append([]context.CancelFunc(nil), sc.cancels...)
	sc.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	err := sc.net.Close()
	sc.serverWG.Wait()
	if cerr := sc.clnt.Close(); err == nil {
		err = cerr
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err == nil && len(sc.runErrs) > 0 {
		err = sc.runErrs[0]
	}
	return err
}

// classifyErr maps client errors to stable outcome classes.
func classifyErr(err error) string {
	switch {
	case errors.Is(err, transport.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, transport.ErrNoReply):
		return "deadline"
	case errors.Is(err, transport.ErrCrashed):
		return "crashed"
	case errors.Is(err, transport.ErrClosed):
		return "closed"
	case errors.Is(err, transport.ErrNoCandidates):
		return "no_candidates"
	default:
		return "transport"
	}
}

// gateEndpoint fails sends to killed nodes immediately
// (connection-refused semantics) so the client path observes a crash as a
// fast deterministic error instead of a buffered send that times out.
type gateEndpoint struct {
	inner transport.Endpoint
	dead  func(node int) bool
}

func (g *gateEndpoint) ID() int    { return g.inner.ID() }
func (g *gateEndpoint) Peers() int { return g.inner.Peers() }

func (g *gateEndpoint) Send(ctx context.Context, to int, payload []byte) error {
	if g.dead(to) {
		return fmt.Errorf("agent: node %d is down: %w", to, transport.ErrCrashed)
	}
	return g.inner.Send(ctx, to, payload)
}

func (g *gateEndpoint) Recv(ctx context.Context) (transport.Message, error) {
	return g.inner.Recv(ctx)
}

func (g *gateEndpoint) Close() error { return g.inner.Close() }
