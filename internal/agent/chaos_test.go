package agent

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// The chaos suite's contract, for every fault class and both modes: the
// runtime either converges to the fault-free allocation or fails loudly
// with ErrRoundTimeout — it never hangs and never silently diverges —
// and the observer/fault counters account for the injected faults.

// chaosModes names the two aggregation schemes under test.
var chaosModes = []Mode{Broadcast, Coordinator}

func runChaosCluster(t *testing.T, mode Mode, faults *transport.FaultConfig, obs Observer, retries int, timeout time.Duration) (ClusterResult, error) {
	t.Helper()
	m := fig3Model(t)
	return RunCluster(context.Background(), ClusterConfig{
		Models:        ModelsFromSingleFile(m),
		Init:          []float64{0.8, 0.1, 0.1, 0},
		Alpha:         0.3,
		Epsilon:       1e-3,
		MaxRounds:     500,
		Mode:          mode,
		CoordinatorID: 0,
		SendRetries:   retries,
		RoundTimeout:  timeout,
		Observer:      obs,
		Faults:        faults,
	})
}

// faultFree returns the mode's allocation over a clean network.
func faultFree(t *testing.T, mode Mode) ClusterResult {
	t.Helper()
	res, err := runChaosCluster(t, mode, nil, nil, 0, 0)
	if err != nil {
		t.Fatalf("fault-free %v run: %v", mode, err)
	}
	if !res.Converged {
		t.Fatalf("fault-free %v run did not converge", mode)
	}
	return res
}

// assertSameAllocation requires bit-identical results: the faults below
// only delay, repeat, or reorder data — they never alter it — so the
// deterministic trajectory must be unchanged.
func assertSameAllocation(t *testing.T, mode Mode, got, want ClusterResult) {
	t.Helper()
	if !got.Converged {
		t.Fatalf("%v: run under faults did not converge", mode)
	}
	if got.Rounds != want.Rounds {
		t.Errorf("%v: rounds = %d, fault-free %d", mode, got.Rounds, want.Rounds)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Errorf("%v: X[%d] = %v, fault-free %v", mode, i, got.X[i], want.X[i])
		}
	}
}

func TestChaosDropConvergesWithRetries(t *testing.T) {
	for _, mode := range chaosModes {
		want := faultFree(t, mode)
		obs := &CounterObserver{}
		faults := &transport.FaultConfig{
			Seed: 1986,
			Rules: []transport.FaultRule{{
				Kind: transport.FaultDrop, Direction: transport.DirSend, Probability: 0.2,
			}},
		}
		res, err := runChaosCluster(t, mode, faults, obs, 25, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		assertSameAllocation(t, mode, res, want)
		if res.Faults.SendDropped == 0 {
			t.Errorf("%v: no drops injected at p=0.2", mode)
		}
		// Every injected drop was observed as exactly one send retry —
		// the counters account for each fault.
		if got := obs.Counters().SendRetries; got != res.Faults.SendDropped {
			t.Errorf("%v: observer saw %d retries for %d injected drops", mode, got, res.Faults.SendDropped)
		}
	}
}

func TestChaosDelayConverges(t *testing.T) {
	for _, mode := range chaosModes {
		want := faultFree(t, mode)
		faults := &transport.FaultConfig{
			Seed: 1986,
			Rules: []transport.FaultRule{{
				Kind: transport.FaultDelay, Direction: transport.DirSend,
				Probability: 0.3, Delay: 2 * time.Millisecond,
			}},
		}
		res, err := runChaosCluster(t, mode, faults, nil, 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		assertSameAllocation(t, mode, res, want)
		if res.Faults.SendDelayed == 0 {
			t.Errorf("%v: no delays injected at p=0.3", mode)
		}
	}
}

func TestChaosDuplicateConverges(t *testing.T) {
	for _, mode := range chaosModes {
		want := faultFree(t, mode)
		obs := &CounterObserver{}
		faults := &transport.FaultConfig{
			Seed: 1986,
			Rules: []transport.FaultRule{{
				Kind: transport.FaultDuplicate, Direction: transport.DirSend, Probability: 0.3,
			}},
		}
		res, err := runChaosCluster(t, mode, faults, obs, 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		assertSameAllocation(t, mode, res, want)
		if res.Faults.SendDuplicated == 0 {
			t.Errorf("%v: no duplicates injected at p=0.3", mode)
		}
		// Each extra copy is discarded at most once (copies still queued
		// at convergence go unread); none may corrupt the round data.
		if got := obs.Counters().Discarded; got > res.Faults.SendDuplicated {
			t.Errorf("%v: %d discards for %d injected duplicates", mode, got, res.Faults.SendDuplicated)
		}
	}
}

func TestChaosReorderConverges(t *testing.T) {
	for _, mode := range chaosModes {
		want := faultFree(t, mode)
		faults := &transport.FaultConfig{
			Seed: 1986,
			Rules: []transport.FaultRule{{
				Kind: transport.FaultReorder, Direction: transport.DirRecv,
				Probability: 0.5, Delay: 3 * time.Millisecond,
			}},
		}
		res, err := runChaosCluster(t, mode, faults, nil, 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		assertSameAllocation(t, mode, res, want)
		// With p=0.5 across hundreds of messages some adjacent pairs
		// must have swapped; the round buffers absorb them all.
		if res.Faults.RecvReordered == 0 {
			t.Errorf("%v: no reorders recorded at p=0.5", mode)
		}
	}
}

func TestChaosPartitionFailsLoudly(t *testing.T) {
	// Node 3 is black-holed from round 2 onward: its sends report
	// success but vanish. No retry budget can cross a partition, so the
	// run must end in ErrRoundTimeout — promptly, never a hang, never a
	// silently wrong allocation.
	for _, mode := range chaosModes {
		obs := &CounterObserver{}
		faults := &transport.FaultConfig{
			Seed:    1986,
			RoundOf: protocol.RoundOf,
			Rules: []transport.FaultRule{{
				Kind: transport.FaultPartition, Direction: transport.DirSend,
				Nodes: []int{3}, FromRound: 2,
			}},
		}
		start := time.Now()
		res, err := runChaosCluster(t, mode, faults, obs, 0, 400*time.Millisecond)
		elapsed := time.Since(start)
		if !errors.Is(err, ErrRoundTimeout) {
			t.Fatalf("%v: error = %v, want ErrRoundTimeout", mode, err)
		}
		if elapsed > 10*time.Second {
			t.Errorf("%v: partition took %v to surface", mode, elapsed)
		}
		if res.Faults.SendPartitioned == 0 {
			t.Errorf("%v: partition rule never fired", mode)
		}
		c := obs.Counters()
		if c.TimeoutsFired == 0 {
			t.Errorf("%v: no observer timeout for a partitioned round", mode)
		}
		if c.ReportsMissing == 0 && mode == Broadcast {
			t.Errorf("%v: no short report collection observed", mode)
		}
	}
}

func TestChaosFullPartitionFailsLoudly(t *testing.T) {
	// Every node loses every link from round 1: the whole cluster must
	// time out, not deadlock.
	for _, mode := range chaosModes {
		faults := &transport.FaultConfig{
			Seed:    1986,
			RoundOf: protocol.RoundOf,
			Rules: []transport.FaultRule{{
				Kind: transport.FaultPartition, Direction: transport.DirSend, FromRound: 1,
			}},
		}
		_, err := runChaosCluster(t, mode, faults, nil, 0, 400*time.Millisecond)
		if !errors.Is(err, ErrRoundTimeout) {
			t.Fatalf("%v: error = %v, want ErrRoundTimeout", mode, err)
		}
	}
}

// TestChaosOverTCP composes the fault wrapper over real TCP endpoints:
// lossy links plus retries still reproduce the fault-free allocation.
func TestChaosOverTCP(t *testing.T) {
	m := fig3Model(t)
	models := ModelsFromSingleFile(m)
	init := []float64{0.8, 0.1, 0.1, 0}
	want := faultFree(t, Broadcast)

	n := len(models)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	eps := make([]*transport.TCPEndpoint, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, addrs)
		if err != nil {
			t.Fatalf("ListenTCP(%d): %v", i, err)
		}
		defer ep.Close()
		eps[i] = ep
	}
	for i, ep := range eps {
		for j, other := range eps {
			if i != j {
				if err := ep.SetPeerAddr(j, other.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	faults := transport.FaultConfig{
		Seed: 7,
		Rules: []transport.FaultRule{{
			Kind: transport.FaultDrop, Direction: transport.DirSend, Probability: 0.15,
		}},
	}
	outcomes := make([]Outcome, n)
	errs := make([]error, n)
	var dropped int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		fep, err := transport.NewFaultEndpoint(eps[i], faults)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, fep *transport.FaultEndpoint) {
			defer wg.Done()
			outcomes[i], errs[i] = Run(context.Background(), Config{
				Endpoint:    fep,
				Model:       models[i],
				Init:        init[i],
				Alpha:       0.3,
				Epsilon:     1e-3,
				Mode:        Broadcast,
				SendRetries: 25,
			})
			mu.Lock()
			dropped += fep.Stats().SendDropped
			mu.Unlock()
		}(i, fep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	if dropped == 0 {
		t.Error("no drops injected over TCP at p=0.15")
	}
	for i, out := range outcomes {
		if !out.Converged {
			t.Fatalf("node %d did not converge", i)
		}
		if out.X != want.X[i] {
			t.Errorf("node %d: X = %v, fault-free %v", i, out.X, want.X[i])
		}
	}
}
