package agent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// MultiFileLocalModel is the node-local knowledge for the section 5.4
// multi-file objective: everything node i needs to compute its marginal
// utilities ∂U/∂x_i^f for every file f from its own fragment vector.
// The files couple only through the node's own queue load
// L_i = Σ_f λ^f·x_i^f, which is local information — the multi-file
// problem stays exactly as decentralized as the single-file one.
type MultiFileLocalModel struct {
	// AccessCosts holds C_i^f per file.
	AccessCosts []float64
	// ServiceRate is μ_i.
	ServiceRate float64
	// FileRates holds λ^f per file (global constants agreed at setup).
	FileRates []float64
	// Weights holds w_f per file.
	Weights []float64
	// K is the delay scaling factor.
	K float64
}

// Marginals returns ∂U/∂x_i^f for every file, evaluated at the node's
// fragment vector x (one entry per file).
func (m MultiFileLocalModel) Marginals(x []float64) ([]float64, error) {
	files := len(m.AccessCosts)
	if len(x) != files {
		return nil, fmt.Errorf("%w: %d fragments for %d files", core.ErrDimension, len(x), files)
	}
	var load, weighted float64
	for f := 0; f < files; f++ {
		load += m.FileRates[f] * x[f]
		weighted += m.Weights[f] * x[f]
	}
	room := m.ServiceRate - load
	if room <= 0 {
		return nil, fmt.Errorf("%w: local queue saturated (μ=%v, load=%v)", core.ErrUnstable, m.ServiceRate, load)
	}
	out := make([]float64, files)
	for f := 0; f < files; f++ {
		out[f] = -(m.Weights[f]*m.AccessCosts[f] +
			m.K*(m.Weights[f]*room+weighted*m.FileRates[f])/(room*room))
	}
	return out, nil
}

// MultiFileModelsFrom derives per-node local models from a MultiFile
// objective.
func MultiFileModelsFrom(m *costmodel.MultiFile) []MultiFileLocalModel {
	// The MultiFile objective does not expose its internals directly;
	// rebuild the local views from its accessors.
	nodes := m.Nodes()
	files := m.Files()
	models := make([]MultiFileLocalModel, nodes)
	for i := 0; i < nodes; i++ {
		lm := MultiFileLocalModel{
			AccessCosts: make([]float64, files),
			ServiceRate: m.ServiceRate(i),
			FileRates:   m.FileRates(),
			Weights:     m.FileWeights(),
			K:           m.K(),
		}
		for f := 0; f < files; f++ {
			lm.AccessCosts[f] = m.AccessCost(f, i)
		}
		models[i] = lm
	}
	return models
}

// MultiFileAgentConfig assembles one multi-file agent.
type MultiFileAgentConfig struct {
	// Endpoint connects the agent to its peers.
	Endpoint transport.Endpoint
	// Model is the node-local multi-file cost knowledge.
	Model MultiFileLocalModel
	// Init is the node's initial fragment per file.
	Init []float64
	// Alpha, Epsilon, MaxRounds, RoundTimeout, SendRetries as in Config.
	Alpha        float64
	Epsilon      float64
	MaxRounds    int
	RoundTimeout time.Duration
	SendRetries  int
	// Observer receives round-level events (default: none).
	Observer Observer
}

// MultiFileOutcome is one agent's view of the finished protocol.
type MultiFileOutcome struct {
	// X is the node's final fragment per file.
	X []float64
	// Rounds performed.
	Rounds int
	// Converged reports the ε-criterion fired for every file.
	Converged bool
	// MessagesSent counts protocol messages sent.
	MessagesSent int
}

// RunMultiFile executes one multi-file agent in broadcast mode: each round
// every node announces its per-file marginals and fragments, then every
// node plans the identical per-file re-allocation (one constraint group
// per file, exactly as the centralized grouped solver does).
func RunMultiFile(ctx context.Context, cfg MultiFileAgentConfig) (MultiFileOutcome, error) {
	if cfg.Endpoint == nil {
		return MultiFileOutcome{}, fmt.Errorf("%w: nil endpoint", ErrBadConfig)
	}
	files := len(cfg.Model.AccessCosts)
	if files == 0 || len(cfg.Model.FileRates) != files || len(cfg.Model.Weights) != files {
		return MultiFileOutcome{}, fmt.Errorf("%w: inconsistent local model shapes", ErrBadConfig)
	}
	if len(cfg.Init) != files {
		return MultiFileOutcome{}, fmt.Errorf("%w: %d initial fragments for %d files", ErrBadConfig, len(cfg.Init), files)
	}
	for f, v := range cfg.Init {
		if v < 0 || math.IsNaN(v) {
			return MultiFileOutcome{}, fmt.Errorf("%w: init[%d] = %v", ErrBadConfig, f, v)
		}
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Alpha < 0 || math.IsNaN(cfg.Alpha) {
		return MultiFileOutcome{}, fmt.Errorf("%w: alpha = %v", ErrBadConfig, cfg.Alpha)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-3
	}
	if cfg.Epsilon < 0 {
		return MultiFileOutcome{}, fmt.Errorf("%w: epsilon = %v", ErrBadConfig, cfg.Epsilon)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 10000
	}
	if cfg.MaxRounds < 1 {
		return MultiFileOutcome{}, fmt.Errorf("%w: max rounds = %d", ErrBadConfig, cfg.MaxRounds)
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.SendRetries < 0 {
		return MultiFileOutcome{}, fmt.Errorf("%w: send retries = %d", ErrBadConfig, cfg.SendRetries)
	}
	if cfg.Observer == nil {
		cfg.Observer = NopObserver{}
	}

	ep := cfg.Endpoint
	n := ep.Peers()
	id := ep.ID()
	buf := protocol.NewVectorRoundBuffer(n)
	x := append([]float64(nil), cfg.Init...)
	out := MultiFileOutcome{}

	// Flattened file-major state, matching costmodel.MultiFile's layout:
	// variable f·n + i.
	xs := make([]float64, files*n)
	gs := make([]float64, files*n)
	groups := make([][]int, files)
	for f := range groups {
		g := make([]int, n)
		for i := range g {
			g[i] = f*n + i
		}
		groups[f] = g
	}

	for round := 0; round < cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("agent: canceled at round %d: %w", round, err)
		}
		cfg.Observer.RoundStarted(id, round)
		g, err := cfg.Model.Marginals(x)
		if err != nil {
			return out, fmt.Errorf("agent: round %d: %w", round, err)
		}
		payload, err := protocol.EncodeVectorReport(protocol.VectorReport{
			Round: round, Node: id, Marginals: g, Allocs: x,
		})
		if err != nil {
			return out, err
		}
		sent, err := broadcastVectorReliably(ctx, ep, cfg.SendRetries, payload)
		out.MessagesSent += sent
		if err != nil {
			return out, fmt.Errorf("agent: broadcasting round %d: %w", round, err)
		}
		if err := collectVectorReports(ctx, ep, cfg.RoundTimeout, cfg.Observer, buf, round, n-1, files); err != nil {
			return out, err
		}
		reports := buf.Take(round)
		for f := 0; f < files; f++ {
			xs[f*n+id], gs[f*n+id] = x[f], g[f]
		}
		for node, rep := range reports {
			for f := 0; f < files; f++ {
				xs[f*n+node], gs[f*n+node] = rep.Allocs[f], rep.Marginals[f]
			}
		}
		converged := true
		steps := make([]core.Step, files)
		movable := false
		for f := 0; f < files; f++ {
			st, err := core.PlanStep(xs, gs, groups[f], cfg.Alpha)
			if err != nil {
				return out, fmt.Errorf("agent: planning round %d file %d: %w", round, f, err)
			}
			steps[f] = st
			if st.Spread(gs, groups[f]) >= cfg.Epsilon {
				converged = false
			}
			if !st.IsNoOp() {
				movable = true
			}
		}
		if converged || !movable {
			out.X = x
			out.Rounds = round
			out.Converged = converged
			return out, nil
		}
		for f := 0; f < files; f++ {
			x[f] += steps[f].Delta[id]
			if x[f] < 0 && x[f] > -1e-9 {
				x[f] = 0
			}
		}
	}
	out.X = x
	out.Rounds = cfg.MaxRounds
	return out, nil
}

// collectVectorReports mirrors collectReports for vector rounds,
// including its tolerance of stale rebroadcasts and identical duplicates.
func collectVectorReports(ctx context.Context, ep transport.Endpoint, timeout time.Duration, obs Observer, buf *protocol.VectorRoundBuffer, round, want, files int) error {
	id := ep.ID()
	deadline, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for !buf.Complete(round, want) {
		msg, err := ep.Recv(deadline)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				obs.TimeoutFired(id, round)
				return fmt.Errorf("%w: waiting for round %d vector reports", ErrRoundTimeout, round)
			}
			return fmt.Errorf("agent: receiving round %d: %w", round, err)
		}
		env, err := protocol.Decode(msg.Payload)
		if err != nil {
			return fmt.Errorf("agent: round %d: %w", round, err)
		}
		if env.Kind != protocol.KindVectorReport {
			return fmt.Errorf("%w: unexpected %q message during vector collection", ErrProtocol, env.Kind)
		}
		rep := env.Vector
		if rep.Node != msg.From {
			return fmt.Errorf("%w: node %d sent a report claiming to be node %d", ErrProtocol, msg.From, rep.Node)
		}
		if len(rep.Marginals) != files || len(rep.Allocs) != files {
			return fmt.Errorf("%w: node %d reported %d/%d entries for %d files", ErrProtocol, rep.Node, len(rep.Marginals), len(rep.Allocs), files)
		}
		if rep.Round < round {
			obs.MessageDiscarded(id, round, "stale vector report")
			continue
		}
		if err := buf.Add(*rep); err != nil {
			if errors.Is(err, protocol.ErrDuplicateReport) {
				obs.MessageDiscarded(id, round, "duplicate vector report")
				continue
			}
			return fmt.Errorf("agent: round %d: %w", round, err)
		}
	}
	obs.ReportsCollected(id, round, want, want)
	return nil
}

// broadcastVectorReliably mirrors broadcastReliably without a full Config.
func broadcastVectorReliably(ctx context.Context, ep transport.Endpoint, retries int, payload []byte) (sent int, err error) {
	for to := 0; to < ep.Peers(); to++ {
		if to == ep.ID() {
			continue
		}
		var lastErr error
		for attempt := 0; attempt <= retries; attempt++ {
			if lastErr = ep.Send(ctx, to, payload); lastErr == nil {
				break
			}
			if ctx.Err() != nil {
				break
			}
		}
		if lastErr != nil {
			return sent, lastErr
		}
		sent++
	}
	return sent, nil
}
