package agent

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/secondorder"
	"filealloc/internal/topology"
	"filealloc/internal/transport"
)

// fig3Model builds the paper's experimental system: 4-node unit ring,
// μ = 1.5, λ = 1, k = 1.
func fig3Model(t *testing.T) *costmodel.SingleFile {
	t.Helper()
	ring, err := topology.Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := topology.AccessCosts(ring, topology.UniformRates(4, 1), topology.RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLocalModelMarginalMatchesObjective(t *testing.T) {
	m := fig3Model(t)
	models := ModelsFromSingleFile(m)
	x := []float64{0.8, 0.1, 0.1, 0}
	grad := make([]float64, 4)
	if err := m.Gradient(grad, x); err != nil {
		t.Fatal(err)
	}
	for i, lm := range models {
		got, err := lm.Marginal(x[i])
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if math.Abs(got-grad[i]) > 1e-15 {
			t.Errorf("node %d marginal = %g, objective gradient %g", i, got, grad[i])
		}
	}
	if _, err := models[0].Marginal(2); !errors.Is(err, core.ErrUnstable) {
		t.Errorf("saturated marginal error = %v, want ErrUnstable", err)
	}
}

// runCentral runs the in-process Allocator for trajectory comparison.
func runCentral(t *testing.T, m *costmodel.SingleFile, init []float64, alpha, eps float64) core.Result {
	t.Helper()
	alloc, err := core.NewAllocator(m, core.WithAlpha(alpha), core.WithEpsilon(eps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), init)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBroadcastClusterMatchesCentralizedExactly(t *testing.T) {
	// E9's core claim: the decentralized protocol computes bit-identical
	// allocations to the in-process solver.
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	for _, alpha := range []float64{0.3, 0.08} {
		central := runCentral(t, m, init, alpha, 1e-3)
		res, err := RunCluster(context.Background(), ClusterConfig{
			Models:  ModelsFromSingleFile(m),
			Init:    init,
			Alpha:   alpha,
			Epsilon: 1e-3,
			Mode:    Broadcast,
		})
		if err != nil {
			t.Fatalf("alpha %g: RunCluster: %v", alpha, err)
		}
		if !res.Converged {
			t.Fatalf("alpha %g: cluster did not converge (%d rounds)", alpha, res.Rounds)
		}
		if res.Rounds != central.Iterations {
			t.Errorf("alpha %g: rounds %d vs central iterations %d", alpha, res.Rounds, central.Iterations)
		}
		for i := range res.X {
			if res.X[i] != central.X[i] {
				t.Errorf("alpha %g: x[%d] = %v vs central %v (must be bit-identical)", alpha, i, res.X[i], central.X[i])
			}
		}
	}
}

func TestCoordinatorClusterMatchesCentralized(t *testing.T) {
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	central := runCentral(t, m, init, 0.3, 1e-3)
	res, err := RunCluster(context.Background(), ClusterConfig{
		Models:        ModelsFromSingleFile(m),
		Init:          init,
		Alpha:         0.3,
		Epsilon:       1e-3,
		Mode:          Coordinator,
		CoordinatorID: 2,
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if !res.Converged {
		t.Fatalf("cluster did not converge (%d rounds)", res.Rounds)
	}
	if res.Rounds != central.Iterations {
		t.Errorf("rounds %d vs central iterations %d", res.Rounds, central.Iterations)
	}
	for i := range res.X {
		if res.X[i] != central.X[i] {
			t.Errorf("x[%d] = %v vs central %v", i, res.X[i], central.X[i])
		}
	}
}

func TestMessageCountsBroadcastVsCoordinator(t *testing.T) {
	// Broadcast: n(n−1) messages per round. Coordinator: 2(n−1) per
	// round. Same trajectory, different communication bill — the paper's
	// section 5.1 comparison of the two schemes.
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	bro, err := RunCluster(context.Background(), ClusterConfig{
		Models: ModelsFromSingleFile(m), Init: init, Alpha: 0.3, Epsilon: 1e-3, Mode: Broadcast,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := RunCluster(context.Background(), ClusterConfig{
		Models: ModelsFromSingleFile(m), Init: init, Alpha: 0.3, Epsilon: 1e-3, Mode: Coordinator,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 4
	// Rounds counted: convergence is detected one round after the last
	// re-allocation, and that detection round also exchanges messages.
	wantBro := (bro.Rounds + 1) * n * (n - 1)
	if bro.Messages != wantBro {
		t.Errorf("broadcast messages = %d, want %d", bro.Messages, wantBro)
	}
	wantCoord := (coord.Rounds + 1) * 2 * (n - 1)
	if coord.Messages != wantCoord {
		t.Errorf("coordinator messages = %d, want %d", coord.Messages, wantCoord)
	}
	if coord.Messages >= bro.Messages {
		t.Errorf("coordinator (%d) should use fewer messages than broadcast (%d)", coord.Messages, bro.Messages)
	}
}

func TestClusterOverTCP(t *testing.T) {
	// The same protocol over real TCP sockets on loopback.
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	n := 4

	// Bind all endpoints on ephemeral ports, then exchange the address
	// book.
	eps := make([]*transport.TCPEndpoint, n)
	placeholder := make([]string, n)
	for i := range placeholder {
		placeholder[i] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		ep, err := transport.ListenTCP(i, placeholder)
		if err != nil {
			t.Fatalf("ListenTCP(%d): %v", i, err)
		}
		defer ep.Close()
		eps[i] = ep
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := eps[i].SetPeerAddr(j, eps[j].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}

	models := ModelsFromSingleFile(m)
	outcomes := make([]Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i], errs[i] = Run(ctx, Config{
				Endpoint: eps[i],
				Model:    models[i],
				Init:     init[i],
				Alpha:    0.3,
				Epsilon:  1e-3,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	central := runCentral(t, m, init, 0.3, 1e-3)
	for i, out := range outcomes {
		if !out.Converged {
			t.Errorf("node %d did not converge", i)
		}
		if out.X != central.X[i] {
			t.Errorf("node %d: x = %v vs central %v", i, out.X, central.X[i])
		}
	}
}

func TestClusterSurvivesCancellation(t *testing.T) {
	m := fig3Model(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCluster(ctx, ClusterConfig{
		Models: ModelsFromSingleFile(m),
		Init:   []float64{0.8, 0.1, 0.1, 0},
		Alpha:  0.0001, // would need many rounds
	})
	if err == nil {
		t.Error("expected error from canceled cluster")
	}
}

func TestDynamicAlphaClusterMatchesCentralized(t *testing.T) {
	// With curvature exchanged each round, the whole cluster evaluates
	// the identical Theorem-2 stepsize — and must track the centralized
	// dynamic-α solver bit for bit.
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	central, err := core.NewAllocator(m,
		core.WithAlpha(0.1),
		core.WithEpsilon(1e-6),
		core.WithDynamicAlpha(0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	centralRes, err := central.Run(context.Background(), init)
	if err != nil {
		t.Fatal(err)
	}
	if !centralRes.Converged {
		t.Fatalf("central dynamic-α did not converge: %v", centralRes.Reason)
	}
	res, err := RunCluster(context.Background(), ClusterConfig{
		Models:             ModelsFromSingleFile(m),
		Init:               init,
		Alpha:              0.1,
		Epsilon:            1e-6,
		DynamicAlphaSafety: 0.5,
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if !res.Converged {
		t.Fatalf("cluster did not converge (%d rounds)", res.Rounds)
	}
	if res.Rounds != centralRes.Iterations {
		t.Errorf("rounds %d vs central iterations %d", res.Rounds, centralRes.Iterations)
	}
	for i := range res.X {
		if res.X[i] != centralRes.X[i] {
			t.Errorf("x[%d] = %v vs central %v (must be bit-identical)", i, res.X[i], centralRes.X[i])
		}
	}
}

func TestLocalModelCurvatureMatchesObjective(t *testing.T) {
	m := fig3Model(t)
	models := ModelsFromSingleFile(m)
	x := []float64{0.8, 0.1, 0.1, 0}
	hess := make([]float64, 4)
	if err := m.SecondDerivative(hess, x); err != nil {
		t.Fatal(err)
	}
	for i, lm := range models {
		got, err := lm.Curvature(x[i])
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if got != hess[i] {
			t.Errorf("node %d curvature = %v, objective %v", i, got, hess[i])
		}
	}
	if _, err := models[0].Curvature(2); !errors.Is(err, core.ErrUnstable) {
		t.Errorf("saturated curvature error = %v, want ErrUnstable", err)
	}
}

func TestDynamicAlphaRequiresBroadcast(t *testing.T) {
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep, _ := net.Endpoint(0)
	_, err = Run(context.Background(), Config{
		Endpoint:           ep,
		Model:              LocalModel{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1},
		Init:               0.5,
		Mode:               Coordinator,
		DynamicAlphaSafety: 0.5,
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

func TestSecondOrderClusterMatchesCentralized(t *testing.T) {
	// The decentralized curvature-scaled step must track the in-process
	// second-order solver bit for bit.
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	central, err := secondorder.NewAllocator(m, secondorder.WithEpsilon(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	centralRes, err := central.Run(context.Background(), init)
	if err != nil {
		t.Fatal(err)
	}
	if !centralRes.Converged {
		t.Fatalf("central second-order did not converge: %v", centralRes.Reason)
	}
	res, err := RunCluster(context.Background(), ClusterConfig{
		Models:      ModelsFromSingleFile(m),
		Init:        init,
		Epsilon:     1e-6,
		SecondOrder: true,
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if !res.Converged {
		t.Fatalf("cluster did not converge (%d rounds)", res.Rounds)
	}
	if res.Rounds != centralRes.Iterations {
		t.Errorf("rounds %d vs central iterations %d", res.Rounds, centralRes.Iterations)
	}
	for i := range res.X {
		if res.X[i] != centralRes.X[i] {
			t.Errorf("x[%d] = %v vs central %v (must be bit-identical)", i, res.X[i], centralRes.X[i])
		}
	}
	// Second order on this problem needs markedly fewer rounds than
	// figure 3's first-order α=0.3 run.
	if res.Rounds >= 9 {
		t.Errorf("second-order rounds = %d, expected < 9", res.Rounds)
	}
}

func TestSecondOrderConfigValidation(t *testing.T) {
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep, _ := net.Endpoint(0)
	base := Config{
		Endpoint: ep,
		Model:    LocalModel{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1},
		Init:     0.5,
	}
	coord := base
	coord.SecondOrder = true
	coord.Mode = Coordinator
	coord.CoordinatorID = 1
	if _, err := Run(context.Background(), coord); !errors.Is(err, ErrBadConfig) {
		t.Errorf("second order + coordinator: error = %v", err)
	}
	both := base
	both.SecondOrder = true
	both.DynamicAlphaSafety = 0.5
	if _, err := Run(context.Background(), both); !errors.Is(err, ErrBadConfig) {
		t.Errorf("second order + dynamic alpha: error = %v", err)
	}
}

func TestClusterSurvivesLossyNetworkWithRetries(t *testing.T) {
	// 20% message loss; with retries the protocol completes and still
	// matches the centralized trajectory exactly.
	m := fig3Model(t)
	init := []float64{0.8, 0.1, 0.1, 0}
	central := runCentral(t, m, init, 0.3, 1e-3)
	res, err := RunCluster(context.Background(), ClusterConfig{
		Models:      ModelsFromSingleFile(m),
		Init:        init,
		Alpha:       0.3,
		Epsilon:     1e-3,
		SendRetries: 20,
		DropRate:    0.2,
		DropSeed:    99,
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if !res.Converged {
		t.Fatalf("lossy cluster did not converge (%d rounds)", res.Rounds)
	}
	for i := range res.X {
		if res.X[i] != central.X[i] {
			t.Errorf("x[%d] = %v vs central %v", i, res.X[i], central.X[i])
		}
	}
}

func TestClusterFailsFastOnLossWithoutRetries(t *testing.T) {
	// Without retries a 50%-loss network kills a send quickly; the
	// cluster errors instead of hanging.
	m := fig3Model(t)
	_, err := RunCluster(context.Background(), ClusterConfig{
		Models:   ModelsFromSingleFile(m),
		Init:     []float64{0.8, 0.1, 0.1, 0},
		Alpha:    0.3,
		Epsilon:  1e-3,
		DropRate: 0.5,
		DropSeed: 7,
	})
	if !errors.Is(err, transport.ErrDropped) {
		t.Errorf("error = %v, want wrapped ErrDropped", err)
	}
}

func TestAgentTimeoutOnSilentPeer(t *testing.T) {
	// One agent alone in a 2-node network: its round can never complete.
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Config{
		Endpoint:     ep,
		Model:        LocalModel{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1},
		Init:         0.5,
		RoundTimeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, ErrRoundTimeout) {
		t.Errorf("error = %v, want ErrRoundTimeout", err)
	}
}

func TestConfigValidation(t *testing.T) {
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ep, _ := net.Endpoint(0)
	good := Config{Endpoint: ep, Model: LocalModel{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1}, Init: 0.5}
	tests := []struct {
		name string
		fn   func(Config) Config
	}{
		{"nil endpoint", func(c Config) Config { c.Endpoint = nil; return c }},
		{"negative alpha", func(c Config) Config { c.Alpha = -1; return c }},
		{"negative epsilon", func(c Config) Config { c.Epsilon = -1; return c }},
		{"negative rounds", func(c Config) Config { c.MaxRounds = -1; return c }},
		{"bad mode", func(c Config) Config { c.Mode = Mode(9); return c }},
		{"bad coordinator", func(c Config) Config { c.Mode = Coordinator; c.CoordinatorID = 9; return c }},
		{"negative init", func(c Config) Config { c.Init = -0.5; return c }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(context.Background(), tt.fn(good)); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(context.Background(), ClusterConfig{
		Models: []LocalModel{{AccessCost: 1, ServiceRate: 2, Lambda: 1}},
		Init:   []float64{1},
	}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("single node: error = %v, want ErrBadConfig", err)
	}
	if _, err := RunCluster(context.Background(), ClusterConfig{
		Models: make([]LocalModel, 3),
		Init:   []float64{1},
	}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("length mismatch: error = %v, want ErrBadConfig", err)
	}
}

func TestModeString(t *testing.T) {
	if Broadcast.String() != "broadcast" || Coordinator.String() != "coordinator" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode formatting wrong")
	}
}
