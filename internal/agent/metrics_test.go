package agent

import (
	"context"
	"testing"

	"filealloc/internal/costmodel"
	"filealloc/internal/metrics"
	"filealloc/internal/topology"
)

func metricsTestModel(t *testing.T, n int) []LocalModel {
	t.Helper()
	g, err := topology.Ring(n, 1)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	access, err := topology.AccessCosts(g, topology.UniformRates(n, 1), topology.RoundTrip)
	if err != nil {
		t.Fatalf("access costs: %v", err)
	}
	model, err := costmodel.NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return ModelsFromSingleFile(model)
}

// TestMetricsObserverRecordsRun checks the adapter end to end: a converged
// cluster run must leave consistent per-node counters and final gauges in
// the registry.
func TestMetricsObserverRecordsRun(t *testing.T) {
	const n = 4
	reg := metrics.New()
	res, err := RunCluster(context.Background(), ClusterConfig{
		Models:   metricsTestModel(t, n),
		Init:     []float64{0.7, 0.1, 0.1, 0.1},
		Alpha:    0.3,
		Epsilon:  1e-3,
		Observer: NewMetricsObserver(reg),
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if !res.Converged {
		t.Fatalf("cluster did not converge")
	}
	snap := reg.Snapshot()
	counters := make(map[string]int64)
	for _, c := range snap.Counters {
		counters[c.Name] += c.Value
	}
	if got := counters["fap_agent_runs_finished_total"]; got != n {
		t.Errorf("runs finished = %d, want %d", got, n)
	}
	if got := counters["fap_agent_runs_converged_total"]; got != n {
		t.Errorf("runs converged = %d, want %d", got, n)
	}
	wantRounds := int64(n) * int64(res.Rounds+1)
	if got := counters["fap_agent_rounds_started_total"]; got != wantRounds {
		t.Errorf("rounds started = %d, want %d (n=%d, rounds=%d)", got, wantRounds, n, res.Rounds)
	}
	// Every round before the terminal one applies a step on every node.
	wantApplied := int64(n) * int64(res.Rounds)
	if got := counters["fap_agent_steps_applied_total"]; got != wantApplied {
		t.Errorf("steps applied = %d, want %d", got, wantApplied)
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "fap_agent_final_rounds":
			if int(g.Value) != res.Rounds {
				t.Errorf("final rounds gauge %v = %v, want %d", g.Labels, g.Value, res.Rounds)
			}
		case "fap_agent_active_set":
			if int(g.Value) != n {
				t.Errorf("active set gauge %v = %v, want %d", g.Labels, g.Value, n)
			}
		case "fap_agent_delta_u":
			if g.Value < 0 {
				t.Errorf("delta_u gauge %v = %v, want ≥ 0 (Theorem 2)", g.Labels, g.Value)
			}
		}
	}
}

// TestMetricsObserverReasonLabels pins the reason-token mapping used for
// discard labels.
func TestMetricsObserverReasonLabels(t *testing.T) {
	reg := metrics.New()
	o := NewMetricsObserver(reg)
	o.MessageDiscarded(2, 5, "stale report")
	snap := reg.Snapshot()
	if len(snap.Counters) != 1 {
		t.Fatalf("got %d counters, want 1", len(snap.Counters))
	}
	c := snap.Counters[0]
	want := []metrics.Label{metrics.L("node", "2"), metrics.L("reason", "stale_report")}
	if len(c.Labels) != len(want) || c.Labels[0] != want[0] || c.Labels[1] != want[1] {
		t.Errorf("labels = %v, want %v", c.Labels, want)
	}
}
