package agent

import (
	"context"
	"errors"
	"testing"
	"time"

	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// byzantineScenario runs one honest agent (node 0 of a 2-node cluster)
// against a scripted peer that sends the given payloads, and returns the
// agent's error.
func byzantineScenario(t *testing.T, mode Mode, coordinatorID int, payloads ...[]byte) error {
	t.Helper()
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	honest, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := peer.Send(context.Background(), 0, p); err != nil {
			t.Fatal(err)
		}
	}
	_, err = Run(context.Background(), Config{
		Endpoint:      honest,
		Model:         LocalModel{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1},
		Init:          0.5,
		Mode:          mode,
		CoordinatorID: coordinatorID,
		RoundTimeout:  2 * time.Second,
	})
	return err
}

func mustEncodeReport(t *testing.T, r protocol.Report) []byte {
	t.Helper()
	b, err := protocol.EncodeReport(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAgentRejectsSpoofedSender(t *testing.T) {
	// Node 1 sends a report claiming to be node 0.
	err := byzantineScenario(t, Broadcast, 0,
		mustEncodeReport(t, protocol.Report{Round: 0, Node: 0, Marginal: -1, Alloc: 0.5}))
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestAgentRejectsStaleReport(t *testing.T) {
	err := byzantineScenario(t, Broadcast, 0,
		mustEncodeReport(t, protocol.Report{Round: -1, Node: 1, Marginal: -1, Alloc: 0.5}))
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestAgentRejectsGarbagePayload(t *testing.T) {
	err := byzantineScenario(t, Broadcast, 0, []byte("{{{{"))
	if !errors.Is(err, protocol.ErrBadMessage) {
		t.Errorf("error = %v, want ErrBadMessage", err)
	}
}

func TestAgentRejectsWrongKindDuringCollection(t *testing.T) {
	// An Update arriving while collecting Reports in broadcast mode.
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: 0, Delta: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := byzantineScenario(t, Broadcast, 0, upd); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestWorkerRejectsWrongRoundUpdate(t *testing.T) {
	// Worker (node 0, coordinator is node 1) receives an update for the
	// wrong round.
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: 7, Delta: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := byzantineScenario(t, Coordinator, 1, upd); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestWorkerRejectsReportWhileAwaitingUpdate(t *testing.T) {
	rep := mustEncodeReport(t, protocol.Report{Round: 0, Node: 1, Marginal: -1, Alloc: 0.5})
	if err := byzantineScenario(t, Coordinator, 1, rep); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestWorkerRejectsShortDeltaVector(t *testing.T) {
	// Update whose delta vector is too short for this node id... node 0
	// needs Delta[0], so send an empty delta.
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: 0, Delta: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := byzantineScenario(t, Coordinator, 1, upd); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestAgentRejectsDuplicateReports(t *testing.T) {
	rep := protocol.Report{Round: 0, Node: 1, Marginal: -1, Alloc: 0.5}
	err := byzantineScenario(t, Broadcast, 0,
		mustEncodeReport(t, rep), mustEncodeReport(t, rep))
	// The first report completes round 0 and the agent moves on; the
	// duplicate then surfaces either as a duplicate (if read in round 0)
	// or as a stale report in round 1. Both are protocol violations.
	if !errors.Is(err, ErrProtocol) && !errors.Is(err, protocol.ErrBadMessage) {
		t.Errorf("error = %v, want a protocol violation", err)
	}
}
