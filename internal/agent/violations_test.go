package agent

import (
	"context"
	"errors"
	"testing"
	"time"

	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// byzantineScenario runs one honest agent (node 0 of a 2-node cluster)
// against a scripted peer that sends the given payloads, and returns the
// agent's error. obs may be nil.
func byzantineScenario(t *testing.T, mode Mode, coordinatorID int, obs Observer, payloads ...[]byte) error {
	t.Helper()
	net, err := transport.NewMemoryNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	honest, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := peer.Send(context.Background(), 0, p); err != nil {
			t.Fatal(err)
		}
	}
	_, err = Run(context.Background(), Config{
		Endpoint:      honest,
		Model:         LocalModel{AccessCost: 1, ServiceRate: 2, Lambda: 1, K: 1},
		Init:          0.5,
		Mode:          mode,
		CoordinatorID: coordinatorID,
		RoundTimeout:  500 * time.Millisecond,
		Observer:      obs,
	})
	return err
}

func mustEncodeReport(t *testing.T, r protocol.Report) []byte {
	t.Helper()
	b, err := protocol.EncodeReport(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAgentRejectsSpoofedSender(t *testing.T) {
	// Node 1 sends a report claiming to be node 0.
	err := byzantineScenario(t, Broadcast, 0, nil,
		mustEncodeReport(t, protocol.Report{Round: 0, Node: 0, Marginal: -1, Alloc: 0.5}))
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestAgentDiscardsStaleReport(t *testing.T) {
	// A stale (past-round) report is benign fallout of retries and
	// duplicating links: it is discarded and counted, and the starved
	// round then fails loudly with a timeout rather than a violation.
	obs := &CounterObserver{}
	err := byzantineScenario(t, Broadcast, 0, obs,
		mustEncodeReport(t, protocol.Report{Round: -1, Node: 1, Marginal: -1, Alloc: 0.5}))
	if !errors.Is(err, ErrRoundTimeout) {
		t.Errorf("error = %v, want ErrRoundTimeout", err)
	}
	c := obs.Counters()
	if c.DiscardsByReason["stale report"] != 1 {
		t.Errorf("discards = %+v, want one stale report", c.DiscardsByReason)
	}
	if c.TimeoutsFired != 1 {
		t.Errorf("TimeoutsFired = %d, want 1", c.TimeoutsFired)
	}
}

func TestAgentRejectsGarbagePayload(t *testing.T) {
	err := byzantineScenario(t, Broadcast, 0, nil, []byte("{{{{"))
	if !errors.Is(err, protocol.ErrBadMessage) {
		t.Errorf("error = %v, want ErrBadMessage", err)
	}
}

func TestAgentRejectsWrongKindDuringCollection(t *testing.T) {
	// An Update arriving while collecting Reports in broadcast mode.
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: 0, Delta: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := byzantineScenario(t, Broadcast, 0, nil, upd); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestWorkerRejectsWrongRoundUpdate(t *testing.T) {
	// Worker (node 0, coordinator is node 1) receives an update for the
	// wrong round.
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: 7, Delta: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := byzantineScenario(t, Coordinator, 1, nil, upd); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestWorkerRejectsReportWhileAwaitingUpdate(t *testing.T) {
	rep := mustEncodeReport(t, protocol.Report{Round: 0, Node: 1, Marginal: -1, Alloc: 0.5})
	if err := byzantineScenario(t, Coordinator, 1, nil, rep); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestWorkerRejectsShortDeltaVector(t *testing.T) {
	// Update whose delta vector is too short for this node id... node 0
	// needs Delta[0], so send an empty delta.
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: 0, Delta: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := byzantineScenario(t, Coordinator, 1, nil, upd); !errors.Is(err, ErrProtocol) {
		t.Errorf("error = %v, want ErrProtocol", err)
	}
}

func TestAgentDiscardsIdenticalDuplicateReport(t *testing.T) {
	// Two identical copies of a round-1 report arrive while the agent is
	// still collecting round 0: the first is buffered ahead, the second
	// is discarded as a duplicate. Round 0 stays short one report, so
	// the run ends in a loud timeout — never an abort, never a hang.
	obs := &CounterObserver{}
	rep := protocol.Report{Round: 1, Node: 1, Marginal: -1, Alloc: 0.5}
	err := byzantineScenario(t, Broadcast, 0, obs,
		mustEncodeReport(t, rep), mustEncodeReport(t, rep))
	if !errors.Is(err, ErrRoundTimeout) {
		t.Errorf("error = %v, want ErrRoundTimeout", err)
	}
	if c := obs.Counters(); c.DiscardsByReason["duplicate report"] != 1 {
		t.Errorf("discards = %+v, want one duplicate report", c.DiscardsByReason)
	}
}

func TestAgentRejectsConflictingDuplicateReport(t *testing.T) {
	// Same (round, node) with different content is a real violation: a
	// faulty or byzantine peer, not a transport artifact.
	err := byzantineScenario(t, Broadcast, 0, nil,
		mustEncodeReport(t, protocol.Report{Round: 1, Node: 1, Marginal: -1, Alloc: 0.5}),
		mustEncodeReport(t, protocol.Report{Round: 1, Node: 1, Marginal: -2, Alloc: 0.5}))
	if !errors.Is(err, protocol.ErrBadMessage) {
		t.Errorf("error = %v, want ErrBadMessage", err)
	}
}

func TestWorkerDiscardsStaleUpdate(t *testing.T) {
	// A re-delivered update for an earlier round is skipped; the worker
	// then times out waiting for its real round-0 update.
	obs := &CounterObserver{}
	upd, err := protocol.EncodeUpdate(protocol.Update{Round: -1, Delta: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	err = byzantineScenario(t, Coordinator, 1, obs, upd)
	if !errors.Is(err, ErrRoundTimeout) {
		t.Errorf("error = %v, want ErrRoundTimeout", err)
	}
	if c := obs.Counters(); c.DiscardsByReason["stale update"] != 1 {
		t.Errorf("discards = %+v, want one stale update", c.DiscardsByReason)
	}
}
