package agent

import (
	"context"
	"fmt"
	"sync"

	"filealloc/internal/estimate"
	"filealloc/internal/loadgen"
	"filealloc/internal/protocol"
	"filealloc/internal/transport"
)

// controllerIDBit tags controller-originated request IDs (heartbeats,
// plan distribution) so they can never collide with load-generator
// request IDs, which stay in the low half of the ID space.
const controllerIDBit = uint64(1) << 63

// ControllerConfig configures the serving-plane control loop.
type ControllerConfig struct {
	// Client is the hardened client the controller heartbeats and
	// distributes plans through; its failure detector is the
	// controller's liveness source.
	Client *transport.Client
	// N is the cluster size.
	N int
	// Replan solves for new allocations.
	Replan ReplanConfig
	// InitRates is the assumed per-origin demand the initial plan is
	// solved against (the drift baseline until the first re-plan).
	InitRates []float64
	// DriftThreshold is the relative drift (estimate.DriftExceeds) on
	// any origin's rate that triggers a re-solve (default 0.25).
	DriftThreshold float64
	// MinLambda gates re-plans: below this total sensed demand the
	// estimators are still warming up and a solve would chase noise
	// (default 1e-3).
	MinLambda float64
	// Observer receives lifecycle events (default: none).
	Observer Observer
}

// Controller drives the closed loop from the client side: each Tick it
// heartbeats every node (feeding the failure detector), sums the nodes'
// sensed per-origin rates, re-sends the current plan to laggards, checks
// demand drift against the rates the current plan was solved for, and on
// drift or membership change runs a warm re-solve whose result is only
// adopted and distributed if its KKT certificate verifies.
type Controller struct {
	cfg ControllerConfig

	mu           sync.Mutex
	epoch        int
	plan         []float64
	planQ        float64
	planLambda   float64
	degraded     bool
	alive        []bool
	plannedRates []float64
	nextID       uint64
}

// NewController solves the initial plan from cfg.InitRates (all nodes
// alive, capacity-proportional warm start) and fails if that plan cannot
// be KKT-certified — a cluster must not start serving under an
// uncertified allocation.
func NewController(ctx context.Context, cfg ControllerConfig) (*Controller, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("%w: nil client", ErrServe)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: controller over %d nodes", ErrServe, cfg.N)
	}
	if len(cfg.InitRates) != cfg.N {
		return nil, fmt.Errorf("%w: InitRates has %d entries for %d nodes", ErrServe, len(cfg.InitRates), cfg.N)
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.25
	}
	if cfg.MinLambda <= 0 {
		cfg.MinLambda = 1e-3
	}
	if cfg.Observer == nil {
		cfg.Observer = NopObserver{}
	}
	c := &Controller{cfg: cfg}
	alive := make([]bool, cfg.N)
	for i := range alive {
		alive[i] = true
	}
	prev := make([]float64, cfg.N) // zero: warmStart falls back to capacity-proportional
	pr, err := cfg.Replan.Replan(ctx, cfg.InitRates, prev, alive)
	if err != nil {
		return nil, fmt.Errorf("agent: initial plan: %w", err)
	}
	if !pr.Certified {
		return nil, fmt.Errorf("%w: initial plan failed KKT certification", ErrServe)
	}
	c.epoch = 1
	c.plan = pr.X
	c.planQ = pr.Q
	c.planLambda = pr.Lambda
	c.alive = alive
	c.plannedRates = append([]float64(nil), cfg.InitRates...)
	return c, nil
}

// Plan snapshots the current plan as a protocol message (ID unset).
func (c *Controller) Plan() protocol.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return protocol.Plan{
		Epoch:    c.epoch,
		X:        append([]float64(nil), c.plan...),
		Alive:    append([]bool(nil), c.alive...),
		Degraded: c.degraded,
		Lambda:   c.planLambda,
		Q:        c.planQ,
	}
}

func (c *Controller) id() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return controllerIDBit | c.nextID
}

// Tick runs one control round at virtual time t. See Controller docs for
// the sequence. It never fails the loop on individual node errors — dead
// nodes are the failure detector's business — and only returns an error
// for context cancellation.
func (c *Controller) Tick(ctx context.Context, t float64) (loadgen.TickInfo, error) {
	info := loadgen.TickInfo{T: t}

	// 1. Heartbeat every node in ID order (determinism: the aggregate
	// below must not depend on scheduling). Failures feed the client's
	// detector; successes return each node's sensed rate vector.
	est := make([]float64, c.cfg.N)
	gotRates := false
	var laggards []int
	curEpoch := c.epochNow()
	for s := 0; s < c.cfg.N; s++ {
		if ctx.Err() != nil {
			return info, ctx.Err()
		}
		id := c.id()
		payload, err := protocol.EncodePing(protocol.Ping{ID: id, T: t})
		if err != nil {
			return info, fmt.Errorf("agent: encode ping: %w", err)
		}
		reply, err := c.cfg.Client.Probe(ctx, s, id, payload)
		if err != nil {
			c.cfg.Observer.TransportError(s, "heartbeat: "+err.Error())
			continue
		}
		env, err := protocol.Decode(reply)
		if err != nil || env.Kind != protocol.KindPong || len(env.Pong.Rates) != c.cfg.N {
			c.cfg.Observer.MessageDiscarded(s, curEpoch, "bad pong")
			continue
		}
		for i, r := range env.Pong.Rates {
			est[i] += r
		}
		gotRates = true
		if env.Pong.Epoch < curEpoch {
			laggards = append(laggards, s)
		}
	}
	info.Rates = est

	// 2. Liveness snapshot and membership-change detection.
	alive := c.cfg.Client.AliveView(c.cfg.N)
	c.mu.Lock()
	membershipChanged := false
	for i := range alive {
		if alive[i] != c.alive[i] {
			membershipChanged = true
		}
	}
	plannedRates := append([]float64(nil), c.plannedRates...)
	prevPlan := append([]float64(nil), c.plan...)
	c.mu.Unlock()
	info.Alive = alive

	// 3. Re-send the current plan to laggards so a node that missed a
	// distribution (dropped message, slow restart) converges anyway.
	for _, s := range laggards {
		if alive[s] {
			c.sendPlan(ctx, s)
		}
	}

	// 4. Drift check against the rates the current plan was solved for.
	replan := membershipChanged
	if !replan {
		for i := range est {
			if estimate.DriftExceeds(plannedRates[i], est[i], c.cfg.DriftThreshold) {
				replan = true
				break
			}
		}
	}

	// 5. Warm re-solve; adopt and distribute only a certified plan.
	lambda := 0.0
	for _, r := range est {
		lambda += r
	}
	if replan && gotRates && lambda > c.cfg.MinLambda {
		pr, err := c.cfg.Replan.Replan(ctx, est, prevPlan, alive)
		switch {
		case err != nil:
			info.Rejected = true
			c.cfg.Observer.RecoveryEvent(-1, curEpoch, "replan-error", err.Error())
		case !pr.Certified:
			info.Rejected = true
			c.cfg.Observer.RecoveryEvent(-1, curEpoch, "replan-uncertified", "KKT certificate failed; keeping previous plan")
		default:
			degraded := false
			for _, a := range alive {
				if !a {
					degraded = true
				}
			}
			c.mu.Lock()
			c.epoch++
			c.plan = pr.X
			c.planQ = pr.Q
			c.planLambda = pr.Lambda
			c.degraded = degraded
			c.plannedRates = append(c.plannedRates[:0], est...)
			newEpoch := c.epoch
			c.mu.Unlock()
			info.Replanned = true
			info.Certified = true
			info.FellBack = pr.FellBack
			info.SolveIterations = pr.Iterations
			c.cfg.Observer.RecoveryEvent(-1, newEpoch, "replan-accepted",
				fmt.Sprintf("lambda=%.4g degraded=%v iters=%d fellback=%v", pr.Lambda, degraded, pr.Iterations, pr.FellBack))
			for s := 0; s < c.cfg.N; s++ {
				if alive[s] {
					c.sendPlan(ctx, s)
				}
			}
		}
	}

	// 6. Record the liveness view for the next membership comparison.
	c.mu.Lock()
	c.alive = append(c.alive[:0], alive...)
	info.Epoch = c.epoch
	info.Degraded = c.degraded
	c.mu.Unlock()
	return info, ctx.Err()
}

// epochNow reads the current epoch.
func (c *Controller) epochNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// sendPlan distributes the current plan to one node and waits for its
// ack; failures feed the detector via the client and are otherwise
// tolerated (the laggard path re-sends next tick).
func (c *Controller) sendPlan(ctx context.Context, to int) {
	plan := c.Plan()
	plan.ID = c.id()
	payload, err := protocol.EncodePlan(plan)
	if err != nil {
		c.cfg.Observer.TransportError(to, "encode plan: "+err.Error())
		return
	}
	reply, err := c.cfg.Client.Do(ctx, to, plan.ID, payload)
	if err != nil {
		c.cfg.Observer.TransportError(to, "plan distribution: "+err.Error())
		return
	}
	env, err := protocol.Decode(reply)
	if err != nil || env.Kind != protocol.KindPlanAck {
		c.cfg.Observer.MessageDiscarded(to, plan.Epoch, "bad plan ack")
		return
	}
	if env.PlanAck.Epoch < plan.Epoch {
		c.cfg.Observer.RecoveryEvent(to, plan.Epoch, "plan-lagging", fmt.Sprintf("node acked epoch %d", env.PlanAck.Epoch))
	}
}
