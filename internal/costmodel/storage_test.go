package costmodel

import (
	"errors"
	"math"
	"testing"
)

func TestStorageCostsShiftTheOptimum(t *testing.T) {
	// Symmetric communication costs; node 0 has expensive storage. The
	// optimum must hold less there than the storage-free optimum does.
	access := []float64{2, 2, 2, 2}
	free, err := NewSingleFile(access, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	priced, err := NewSingleFileWithStorage(access, []float64{1.5, 0, 0, 0}, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	solFree, err := free.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	solPriced, err := priced.SolveKKT(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if solPriced.X[0] >= solFree.X[0] {
		t.Errorf("expensive-storage node holds %g, storage-free %g", solPriced.X[0], solFree.X[0])
	}
	// Remaining symmetric nodes split the displaced mass evenly.
	if math.Abs(solPriced.X[1]-solPriced.X[2]) > 1e-9 {
		t.Errorf("symmetric nodes unequal: %v", solPriced.X)
	}
}

func TestStorageCostsFoldIntoLinearTerm(t *testing.T) {
	access := []float64{1, 2}
	storage := []float64{0.5, 0.25}
	m, err := NewSingleFileWithStorage(access, storage, []float64{3}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewSingleFile([]float64{1.5, 2.25}, []float64{3}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.4, 0.6}
	a, err := m.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := direct.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("folded cost %g vs direct %g", a, b)
	}
}

func TestStorageCostsValidation(t *testing.T) {
	if _, err := NewSingleFileWithStorage([]float64{1, 2}, []float64{1}, []float64{3}, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("length mismatch: error = %v", err)
	}
	if _, err := NewSingleFileWithStorage([]float64{1}, []float64{-1}, []float64{3}, 1, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative storage: error = %v", err)
	}
}
