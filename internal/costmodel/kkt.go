package costmodel

import (
	"fmt"
	"math"
)

// KKTSolution is the water-filling optimum of the single-file problem.
type KKTSolution struct {
	// X is the optimal allocation.
	X []float64
	// Q is the common marginal cost level q = ∂C/∂x_i on the support
	// (the Lagrange multiplier of section 5.3).
	Q float64
	// Cost is C(X).
	Cost float64
}

// SolveKKT computes the exact optimum of the single-file objective by
// bisection on the Lagrange multiplier q. At the optimum (section 5.3),
// every node with x_i > 0 has marginal cost C_i + k·μ_i/(μ_i − λ·x_i)² = q
// and every node with x_i = 0 has marginal cost ≥ q. Inverting the marginal
// cost gives the demand
//
//	x_i(q) = (μ_i − sqrt(k·μ_i/(q − C_i)))/λ     for q > C_i + k/μ_i
//
// which is continuous and strictly increasing in q, so the feasibility
// equation Σ_i x_i(q) = 1 has a unique root found by bisection. This solver
// is independent of the iterative algorithm and is used in tests and
// experiments to certify the optima the algorithm converges to.
//
// With k = 0 the delay term vanishes and the optimum concentrates the file
// on the cheapest node(s); that case is handled directly.
func (m *SingleFile) SolveKKT(tol float64) (KKTSolution, error) {
	if tol <= 0 {
		return KKTSolution{}, fmt.Errorf("%w: tolerance = %v", ErrBadParam, tol)
	}
	n := len(m.access)
	if m.k == 0 {
		return m.solveLinear()
	}

	demand := func(q float64) []float64 {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			floor := m.access[i] + m.k/m.service[i] // marginal cost at x_i = 0
			if q <= floor {
				continue
			}
			xi := (m.service[i] - math.Sqrt(m.k*m.service[i]/(q-m.access[i]))) / m.lambda
			if xi < 0 {
				xi = 0
			}
			if xi > 1 {
				xi = 1
			}
			x[i] = xi
		}
		return x
	}
	sum := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v
		}
		return s
	}

	// Bracket the multiplier: at q = min marginal cost at zero, demand is
	// 0; grow q until demand reaches 1.
	lo := math.Inf(1)
	for i := 0; i < n; i++ {
		lo = math.Min(lo, m.access[i]+m.k/m.service[i])
	}
	hi := lo + m.k
	for iter := 0; sum(demand(hi)) < 1; iter++ {
		if iter > 200 {
			return KKTSolution{}, fmt.Errorf("%w: cannot bracket KKT multiplier (total capacity too small?)", ErrUnstable)
		}
		hi = lo + (hi-lo)*2
	}
	for iter := 0; iter < 200 && hi-lo > tol*math.Max(1, math.Abs(hi)); iter++ {
		mid := lo + (hi-lo)/2
		if sum(demand(mid)) < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := lo + (hi-lo)/2
	x := demand(q)
	// Repair the residual rounding so the allocation is exactly feasible:
	// scale the support (it is strictly positive, so small scaling keeps
	// it valid).
	if s := sum(x); s > 0 {
		for i := range x {
			x[i] /= s
		}
	}
	cost, err := m.Cost(x)
	if err != nil {
		return KKTSolution{}, fmt.Errorf("costmodel: evaluating KKT solution: %w", err)
	}
	return KKTSolution{X: x, Q: q, Cost: cost}, nil
}

// solveLinear handles k = 0: cost is Σ C_i·x_i, minimized by the cheapest
// node.
func (m *SingleFile) solveLinear() (KKTSolution, error) {
	best := 0
	for i, c := range m.access {
		if c < m.access[best] {
			best = i
		}
	}
	x := make([]float64, len(m.access))
	x[best] = 1
	cost, err := m.Cost(x)
	if err != nil {
		return KKTSolution{}, fmt.Errorf("costmodel: evaluating linear solution: %w", err)
	}
	return KKTSolution{X: x, Q: m.access[best], Cost: cost}, nil
}
