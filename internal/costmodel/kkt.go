package costmodel

import (
	"fmt"
	"math"
)

// KKTSolution is the water-filling optimum of the single-file problem.
type KKTSolution struct {
	// X is the optimal allocation.
	X []float64
	// Q is the common marginal cost level q = ∂C/∂x_i on the support
	// (the Lagrange multiplier of section 5.3).
	Q float64
	// Cost is C(X).
	Cost float64
}

// SolveKKT computes the exact optimum of the single-file objective by
// bisection on the Lagrange multiplier q. At the optimum (section 5.3),
// every node with x_i > 0 has marginal cost C_i + k·μ_i/(μ_i − λ·x_i)² = q
// and every node with x_i = 0 has marginal cost ≥ q. Inverting the marginal
// cost gives the demand
//
//	x_i(q) = (μ_i − sqrt(k·μ_i/(q − C_i)))/λ     for q > C_i + k/μ_i
//
// which is continuous and strictly increasing in q, so the feasibility
// equation Σ_i x_i(q) = 1 has a unique root found by bisection. This solver
// is independent of the iterative algorithm and is used in tests and
// experiments to certify the optima the algorithm converges to.
//
// With k = 0 the delay term vanishes and the optimum concentrates the file
// on the cheapest node(s); that case is handled directly.
func (m *SingleFile) SolveKKT(tol float64) (KKTSolution, error) {
	if tol <= 0 {
		return KKTSolution{}, fmt.Errorf("%w: tolerance = %v", ErrBadParam, tol)
	}
	n := len(m.access)
	if m.k == 0 {
		return m.solveLinear()
	}

	demand := func(q float64) []float64 {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			floor := m.access[i] + m.k/m.service[i] // marginal cost at x_i = 0
			if q <= floor {
				continue
			}
			xi := (m.service[i] - math.Sqrt(m.k*m.service[i]/(q-m.access[i]))) / m.lambda
			if xi < 0 {
				xi = 0
			}
			if xi > 1 {
				xi = 1
			}
			x[i] = xi
		}
		return x
	}
	sum := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v
		}
		return s
	}

	// Bracket the multiplier: at q = min marginal cost at zero, demand is
	// 0; grow q until demand reaches 1.
	lo := math.Inf(1)
	for i := 0; i < n; i++ {
		lo = math.Min(lo, m.access[i]+m.k/m.service[i])
	}
	hi := lo + m.k
	for iter := 0; sum(demand(hi)) < 1; iter++ {
		if iter > 200 {
			return KKTSolution{}, fmt.Errorf("%w: cannot bracket KKT multiplier (total capacity too small?)", ErrUnstable)
		}
		hi = lo + (hi-lo)*2
	}
	for iter := 0; iter < 200 && hi-lo > tol*math.Max(1, math.Abs(hi)); iter++ {
		mid := lo + (hi-lo)/2
		if sum(demand(mid)) < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := lo + (hi-lo)/2
	x := demand(q)
	// Repair the residual rounding so the allocation is exactly feasible:
	// scale the support (it is strictly positive, so small scaling keeps
	// it valid).
	if s := sum(x); s > 0 {
		for i := range x {
			x[i] /= s
		}
	}
	cost, err := m.Cost(x)
	if err != nil {
		return KKTSolution{}, fmt.Errorf("costmodel: evaluating KKT solution: %w", err)
	}
	return KKTSolution{X: x, Q: q, Cost: cost}, nil
}

// VerifyKKT checks that (x, q) satisfies the section-5.3 optimality
// conditions of the single-file problem to within a relative tolerance:
//
//   - feasibility: x_i ≥ 0 and Σ_i x_i = 1
//   - interior:    every node with x_i > 0 has marginal cost
//     C_i + k·μ_i/(μ_i − λ·x_i)² equal to q
//   - boundary:    every node with x_i = 0 has marginal cost ≥ q
//
// All comparisons use the scale tol·max(1, |q|), so a node priced exactly
// at the support boundary (marginal at zero equal to q up to float
// rounding) is not a false positive. The boundary condition is one-sided:
// a zero node whose marginal exceeds q by any amount is optimal, while one
// below q − tol·max(1, |q|) means mass should have been placed there and
// the allocation is rejected.
func (m *SingleFile) VerifyKKT(x []float64, q, tol float64) error {
	if tol <= 0 {
		return fmt.Errorf("%w: tolerance = %v", ErrBadParam, tol)
	}
	if len(x) != len(m.access) {
		return fmt.Errorf("%w: allocation has %d entries for %d nodes", ErrBadParam, len(x), len(m.access))
	}
	scale := tol * math.Max(1, math.Abs(q))
	var total float64
	for i, xi := range x {
		if xi < 0 {
			return fmt.Errorf("%w: x_%d = %v is negative", ErrBadParam, i, xi)
		}
		total += xi
	}
	if math.Abs(total-1) > tol {
		return fmt.Errorf("%w: allocation sums to %v, not 1", ErrBadParam, total)
	}
	for i, xi := range x {
		room := m.service[i] - m.lambda*xi
		if room <= 0 {
			return fmt.Errorf("%w: node %d has μ=%v, λ·x=%v", ErrUnstable, i, m.service[i], m.lambda*xi)
		}
		marginal := m.access[i] + m.k*m.service[i]/(room*room)
		if xi > 0 {
			if math.Abs(marginal-q) > scale {
				return fmt.Errorf("costmodel: node %d in support has marginal cost %v, want q = %v (Δ = %v)", i, marginal, q, marginal-q)
			}
		} else if marginal < q-scale {
			return fmt.Errorf("costmodel: node %d at x = 0 has marginal cost %v below q = %v; the optimum stores mass there", i, marginal, q)
		}
	}
	return nil
}

// solveLinear handles k = 0: cost is Σ C_i·x_i, minimized by the cheapest
// node.
func (m *SingleFile) solveLinear() (KKTSolution, error) {
	best := 0
	for i, c := range m.access {
		if c < m.access[best] {
			best = i
		}
	}
	x := make([]float64, len(m.access))
	x[best] = 1
	cost, err := m.Cost(x)
	if err != nil {
		return KKTSolution{}, fmt.Errorf("costmodel: evaluating linear solution: %w", err)
	}
	return KKTSolution{X: x, Q: m.access[best], Cost: cost}, nil
}
