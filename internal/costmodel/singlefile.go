// Package costmodel implements the paper's utility functions: the
// single-file M/M/1 model of equation 2, the heterogeneous-service and
// query/update generalizations of section 5.4, the multi-file coupled-queue
// utility, and an M/G/1 (Pollaczek–Khinchine) variant. It also provides the
// Theorem-2 stepsize bound and an independent KKT reference solver used to
// verify the iterative algorithm's optima.
package costmodel

import (
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
)

// Sentinel errors for model construction and evaluation.
var (
	// ErrBadParam reports invalid model parameters.
	ErrBadParam = errors.New("costmodel: invalid parameter")
	// ErrUnstable reports an allocation at which a queue is saturated
	// (μ_i ≤ λ·x_i), where the steady-state delay is undefined.
	ErrUnstable = errors.New("costmodel: queue unstable at allocation")
)

// SingleFile is the paper's equation-2 objective for one copy of one file:
//
//	U(x) = −Σ_i (C_i + k/(μ_i − λ·x_i))·x_i
//
// x_i is the fraction of the file stored at node i; because record accesses
// are uniform, x_i is also the probability an access is served by node i,
// so node i's queue sees Poisson arrivals at rate λ·x_i with exponential
// service at rate μ_i (M/M/1 delay 1/(μ_i − λ·x_i)).
//
// The paper presents the homogeneous case μ_i = μ; per-node service rates
// are the section 5.4 relaxation.
type SingleFile struct {
	access  []float64 // C_i, traffic-weighted communication cost of accessing node i
	service []float64 // μ_i
	lambda  float64   // λ, network-wide access generation rate
	k       float64   // delay-vs-communication scaling factor
}

var (
	_ core.Objective = (*SingleFile)(nil)
	_ core.Curvature = (*SingleFile)(nil)
)

// NewSingleFile builds the equation-2 objective. accessCosts holds C_i per
// node (see topology.AccessCosts); serviceRates holds μ_i per node (pass a
// single-element slice to use one rate for all nodes); lambda is the total
// access rate λ; k scales delay against communication cost.
//
// For the delay term to be defined over every feasible allocation
// (0 ≤ x_i ≤ 1), each μ_i must exceed λ·1 in the worst case; construction
// only requires μ_i > 0 and evaluation reports ErrUnstable if an allocation
// saturates a queue.
func NewSingleFile(accessCosts, serviceRates []float64, lambda, k float64) (*SingleFile, error) {
	n := len(accessCosts)
	if n == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadParam)
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("%w: lambda = %v", ErrBadParam, lambda)
	}
	if k < 0 || math.IsNaN(k) {
		return nil, fmt.Errorf("%w: k = %v", ErrBadParam, k)
	}
	for i, c := range accessCosts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: access cost C_%d = %v", ErrBadParam, i, c)
		}
	}
	var mu []float64
	switch len(serviceRates) {
	case 1:
		mu = make([]float64, n)
		for i := range mu {
			mu[i] = serviceRates[0]
		}
	case n:
		mu = append([]float64(nil), serviceRates...)
	default:
		return nil, fmt.Errorf("%w: %d service rates for %d nodes", ErrBadParam, len(serviceRates), n)
	}
	for i, m := range mu {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("%w: service rate μ_%d = %v", ErrBadParam, i, m)
		}
	}
	return &SingleFile{
		access:  append([]float64(nil), accessCosts...),
		service: mu,
		lambda:  lambda,
		k:       k,
	}, nil
}

// SetAccessCosts replaces the per-node access costs C_i in place, with
// the same validation as NewSingleFile. It exists for catalog-style
// demand drift: when an object's demand vector moves, only its
// traffic-weighted access costs change, so a re-solve can update the
// existing model allocation-free instead of rebuilding it.
func (m *SingleFile) SetAccessCosts(accessCosts []float64) error {
	if len(accessCosts) != len(m.access) {
		return fmt.Errorf("%w: %d access costs for %d nodes", ErrBadParam, len(accessCosts), len(m.access))
	}
	for i, c := range accessCosts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: access cost C_%d = %v", ErrBadParam, i, c)
		}
	}
	copy(m.access, accessCosts)
	return nil
}

// Dim returns the number of nodes.
func (m *SingleFile) Dim() int { return len(m.access) }

// Lambda returns the network-wide access rate λ.
func (m *SingleFile) Lambda() float64 { return m.lambda }

// K returns the delay scaling factor k.
func (m *SingleFile) K() float64 { return m.k }

// AccessCost returns C_i.
func (m *SingleFile) AccessCost(i int) float64 { return m.access[i] }

// ServiceRate returns μ_i.
func (m *SingleFile) ServiceRate(i int) float64 { return m.service[i] }

// Cost returns the expected access cost C(x) of equation 1.
func (m *SingleFile) Cost(x []float64) (float64, error) {
	if len(x) != len(m.access) {
		return 0, fmt.Errorf("%w: allocation has %d entries for %d nodes", ErrBadParam, len(x), len(m.access))
	}
	var total float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		room := m.service[i] - m.lambda*xi
		if room <= 0 {
			return 0, fmt.Errorf("%w: node %d has μ=%v, λ·x=%v", ErrUnstable, i, m.service[i], m.lambda*xi)
		}
		total += (m.access[i] + m.k/room) * xi
	}
	return total, nil
}

// Utility returns −Cost(x) (equation 2).
func (m *SingleFile) Utility(x []float64) (float64, error) {
	c, err := m.Cost(x)
	if err != nil {
		return 0, err
	}
	return -c, nil
}

// Gradient fills grad with the marginal utilities
//
//	∂U/∂x_i = −(C_i + k·μ_i/(μ_i − λ·x_i)²).
func (m *SingleFile) Gradient(grad, x []float64) error {
	if len(grad) != len(m.access) || len(x) != len(m.access) {
		return fmt.Errorf("%w: gradient/allocation size mismatch", ErrBadParam)
	}
	for i, xi := range x {
		room := m.service[i] - m.lambda*xi
		if room <= 0 {
			return fmt.Errorf("%w: node %d has μ=%v, λ·x=%v", ErrUnstable, i, m.service[i], m.lambda*xi)
		}
		grad[i] = -(m.access[i] + m.k*m.service[i]/(room*room))
	}
	return nil
}

// SecondDerivative fills hess with
//
//	∂²U/∂x_i² = −2·k·μ_i·λ/(μ_i − λ·x_i)³.
//
// The utility has no cross partials, so this diagonal is the full Hessian
// (the fact Theorem 2's Taylor expansion relies on).
func (m *SingleFile) SecondDerivative(hess, x []float64) error {
	if len(hess) != len(m.access) || len(x) != len(m.access) {
		return fmt.Errorf("%w: hessian/allocation size mismatch", ErrBadParam)
	}
	for i, xi := range x {
		room := m.service[i] - m.lambda*xi
		if room <= 0 {
			return fmt.Errorf("%w: node %d has μ=%v, λ·x=%v", ErrUnstable, i, m.service[i], m.lambda*xi)
		}
		hess[i] = -2 * m.k * m.service[i] * m.lambda / (room * room * room)
	}
	return nil
}

// Components splits the expected cost at x into its communication and delay
// parts (both non-negative; Cost = Comm + k·Delay where Delay is the
// expected queueing+service time of a random access).
func (m *SingleFile) Components(x []float64) (comm, delay float64, err error) {
	if len(x) != len(m.access) {
		return 0, 0, fmt.Errorf("%w: allocation has %d entries for %d nodes", ErrBadParam, len(x), len(m.access))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		room := m.service[i] - m.lambda*xi
		if room <= 0 {
			return 0, 0, fmt.Errorf("%w: node %d has μ=%v, λ·x=%v", ErrUnstable, i, m.service[i], m.lambda*xi)
		}
		comm += m.access[i] * xi
		delay += xi / room
	}
	return comm, delay, nil
}

// AlphaBound evaluates the Theorem-2 guarantee for the homogeneous-service
// model:
//
//	α < ε²(μ−λ)⁴ / (2·n·k·λ·((C_max−C_min)·μ·(μ−λ) + λ·k·(2μ−λ))²)
//
// Any stepsize below the returned value yields strictly monotonic utility
// improvement until convergence. The bound is deliberately conservative
// (the paper notes much larger stepsizes usually converge faster); it
// requires μ > λ and a homogeneous μ.
func (m *SingleFile) AlphaBound(epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("%w: epsilon = %v", ErrBadParam, epsilon)
	}
	mu := m.service[0]
	for i, s := range m.service {
		if s != mu {
			return 0, fmt.Errorf("%w: Theorem-2 bound requires homogeneous service rates (μ_0=%v, μ_%d=%v)", ErrBadParam, mu, i, s)
		}
	}
	if mu <= m.lambda {
		return 0, fmt.Errorf("%w: bound requires μ > λ (μ=%v, λ=%v)", ErrBadParam, mu, m.lambda)
	}
	cmin, cmax := math.Inf(1), math.Inf(-1)
	for _, c := range m.access {
		cmin = math.Min(cmin, c)
		cmax = math.Max(cmax, c)
	}
	n := float64(len(m.access))
	room := mu - m.lambda
	den := (cmax-cmin)*mu*room + m.lambda*m.k*(2*mu-m.lambda)
	if den == 0 {
		// k = 0 and uniform communication costs: the objective is
		// constant in any direction the algorithm can move, so any α
		// is "safe"; report +Inf.
		return math.Inf(1), nil
	}
	return epsilon * epsilon * room * room * room * room /
		(2 * n * m.k * m.lambda * den * den), nil
}
