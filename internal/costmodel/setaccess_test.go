package costmodel

import (
	"errors"
	"math"
	"testing"
)

// TestSetAccessCosts pins the in-place update: the model evaluates as if
// rebuilt with the new costs, rejects invalid input without modifying
// state, and performs no allocations.
func TestSetAccessCosts(t *testing.T) {
	m, err := NewSingleFile([]float64{1, 2, 3}, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatalf("NewSingleFile: %v", err)
	}
	next := []float64{3, 1, 2}
	if err := m.SetAccessCosts(next); err != nil {
		t.Fatalf("SetAccessCosts: %v", err)
	}
	rebuilt, err := NewSingleFile(next, []float64{1.5}, 1, 1)
	if err != nil {
		t.Fatalf("NewSingleFile: %v", err)
	}
	x := []float64{0.5, 0.3, 0.2}
	got, err := m.Cost(x)
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	want, err := rebuilt.Cost(x)
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	if got != want {
		t.Errorf("updated model cost %v, rebuilt model cost %v", got, want)
	}
	// The update copies; mutating the caller's slice must not leak in.
	next[0] = 100
	if m.AccessCost(0) != 3 {
		t.Errorf("SetAccessCosts aliased the caller's slice")
	}

	for _, bad := range [][]float64{
		{1, 2},
		{1, 2, 3, 4},
		{1, -2, 3},
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
	} {
		if err := m.SetAccessCosts(bad); !errors.Is(err, ErrBadParam) {
			t.Errorf("SetAccessCosts(%v): err = %v, want ErrBadParam", bad, err)
		}
	}
	if m.AccessCost(1) != 1 {
		t.Errorf("rejected update modified the model: C_1 = %v", m.AccessCost(1))
	}

	if allocs := testing.AllocsPerRun(100, func() {
		if err := m.SetAccessCosts(next); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SetAccessCosts allocated %.1f objects per call, want 0", allocs)
	}
}
