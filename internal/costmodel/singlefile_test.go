package costmodel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
)

// numericGradient estimates ∂f/∂x_i with central differences.
func numericGradient(t *testing.T, f func([]float64) (float64, error), x []float64, h float64) []float64 {
	t.Helper()
	grad := make([]float64, len(x))
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		fp, err := f(xp)
		if err != nil {
			t.Fatalf("numeric gradient at +h: %v", err)
		}
		fm, err := f(xm)
		if err != nil {
			t.Fatalf("numeric gradient at -h: %v", err)
		}
		grad[i] = (fp - fm) / (2 * h)
	}
	return grad
}

func mustSingleFile(t *testing.T, access []float64, mu []float64, lambda, k float64) *SingleFile {
	t.Helper()
	m, err := NewSingleFile(access, mu, lambda, k)
	if err != nil {
		t.Fatalf("NewSingleFile: %v", err)
	}
	return m
}

func TestSingleFileCostPaperValues(t *testing.T) {
	// The paper's figure 2-3 configuration: 4 nodes with identical access
	// costs C_i = 2 (unit ring, round trip), μ = 1.5, λ = 1, k = 1.
	m := mustSingleFile(t, []float64{2, 2, 2, 2}, []float64{1.5}, 1, 1)

	tests := []struct {
		name string
		x    []float64
		want float64
	}{
		// Uniform optimum: 2 + 1/(1.5 − 0.25) = 2.8.
		{"uniform optimum", []float64{0.25, 0.25, 0.25, 0.25}, 2.8},
		// Whole file at one node: 2 + 1/(1.5 − 1) = 4 (figure 4's
		// integral start).
		{"integral", []float64{0, 0, 0, 1}, 4},
		{"paper start", []float64{0.8, 0.1, 0.1, 0}, 0.8*(2+1/0.7) + 0.2*(2+1/1.4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := m.Cost(tt.x)
			if err != nil {
				t.Fatalf("Cost: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Cost = %v, want %v", got, tt.want)
			}
			u, err := m.Utility(tt.x)
			if err != nil {
				t.Fatalf("Utility: %v", err)
			}
			if u != -got {
				t.Errorf("Utility = %v, want %v", u, -got)
			}
		})
	}
}

func TestSingleFileGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		access := make([]float64, n)
		mu := make([]float64, n)
		for i := range access {
			access[i] = rng.Float64() * 10
			mu[i] = 2 + rng.Float64()*3
		}
		lambda := 0.5 + rng.Float64()
		m := mustSingleFile(t, access, mu, lambda, 0.5+rng.Float64()*2)
		x := randomSimplex(rng, n, 1)
		grad := make([]float64, n)
		if err := m.Gradient(grad, x); err != nil {
			t.Fatalf("trial %d: Gradient: %v", trial, err)
		}
		num := numericGradient(t, m.Utility, x, 1e-6)
		for i := range grad {
			if math.Abs(grad[i]-num[i]) > 1e-4*(1+math.Abs(num[i])) {
				t.Errorf("trial %d: grad[%d] = %g, numeric %g", trial, i, grad[i], num[i])
			}
		}
		hess := make([]float64, n)
		if err := m.SecondDerivative(hess, x); err != nil {
			t.Fatalf("trial %d: SecondDerivative: %v", trial, err)
		}
		gfun := func(i int) func([]float64) (float64, error) {
			return func(y []float64) (float64, error) {
				g := make([]float64, n)
				if err := m.Gradient(g, y); err != nil {
					return 0, err
				}
				return g[i], nil
			}
		}
		for i := range hess {
			num := numericGradient(t, gfun(i), x, 1e-6)
			if math.Abs(hess[i]-num[i]) > 1e-3*(1+math.Abs(num[i])) {
				t.Errorf("trial %d: hess[%d] = %g, numeric %g", trial, i, hess[i], num[i])
			}
		}
	}
}

// randomSimplex returns a random non-negative vector of length n summing to
// total, with occasional exact zeros.
func randomSimplex(rng *rand.Rand, n int, total float64) []float64 {
	x := make([]float64, n)
	var s float64
	for i := range x {
		if rng.Intn(5) == 0 {
			continue
		}
		x[i] = rng.Float64()
		s += x[i]
	}
	if s == 0 {
		x[0] = 1
		s = 1
	}
	for i := range x {
		x[i] *= total / s
	}
	return x
}

func TestSingleFileUnstableAllocation(t *testing.T) {
	// μ = 1.2, λ = 2: placing more than 60% of the file at one node
	// saturates its queue.
	m := mustSingleFile(t, []float64{1, 1}, []float64{1.2}, 2, 1)
	if _, err := m.Cost([]float64{0.7, 0.3}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Cost error = %v, want ErrUnstable", err)
	}
	grad := make([]float64, 2)
	if err := m.Gradient(grad, []float64{0.7, 0.3}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Gradient error = %v, want ErrUnstable", err)
	}
	hess := make([]float64, 2)
	if err := m.SecondDerivative(hess, []float64{0.7, 0.3}); !errors.Is(err, ErrUnstable) {
		t.Errorf("SecondDerivative error = %v, want ErrUnstable", err)
	}
	// Stable allocations still evaluate.
	if _, err := m.Cost([]float64{0.5, 0.5}); err != nil {
		t.Errorf("stable allocation errored: %v", err)
	}
}

func TestSingleFileValidation(t *testing.T) {
	tests := []struct {
		name   string
		access []float64
		mu     []float64
		lambda float64
		k      float64
	}{
		{"no nodes", nil, []float64{1}, 1, 1},
		{"bad lambda", []float64{1}, []float64{2}, 0, 1},
		{"negative k", []float64{1}, []float64{2}, 1, -1},
		{"negative access cost", []float64{-1}, []float64{2}, 1, 1},
		{"wrong mu count", []float64{1, 1, 1}, []float64{2, 2}, 1, 1},
		{"zero mu", []float64{1}, []float64{0}, 1, 1},
		{"nan access", []float64{math.NaN()}, []float64{2}, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSingleFile(tt.access, tt.mu, tt.lambda, tt.k); !errors.Is(err, ErrBadParam) {
				t.Errorf("error = %v, want ErrBadParam", err)
			}
		})
	}
}

func TestSingleFileAccessors(t *testing.T) {
	m := mustSingleFile(t, []float64{1, 2}, []float64{3, 4}, 0.5, 2)
	if m.Dim() != 2 || m.Lambda() != 0.5 || m.K() != 2 {
		t.Errorf("accessors: dim=%d λ=%v k=%v", m.Dim(), m.Lambda(), m.K())
	}
	if m.AccessCost(1) != 2 || m.ServiceRate(0) != 3 {
		t.Errorf("per-node accessors wrong: C_1=%v μ_0=%v", m.AccessCost(1), m.ServiceRate(0))
	}
}

func TestSingleFileComponents(t *testing.T) {
	m := mustSingleFile(t, []float64{2, 2, 2, 2}, []float64{1.5}, 1, 1)
	x := []float64{0.25, 0.25, 0.25, 0.25}
	comm, delay, err := m.Components(x)
	if err != nil {
		t.Fatalf("Components: %v", err)
	}
	if math.Abs(comm-2) > 1e-12 {
		t.Errorf("comm = %v, want 2", comm)
	}
	if math.Abs(delay-0.8) > 1e-12 {
		t.Errorf("delay = %v, want 0.8", delay)
	}
	cost, err := m.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comm+m.K()*delay-cost) > 1e-12 {
		t.Errorf("components do not add up: %v + %v ≠ %v", comm, delay, cost)
	}
}

func TestAlphaBoundGuaranteesMonotonicity(t *testing.T) {
	// Theorem 2: with α below the bound, every iteration strictly
	// increases utility until convergence. Tested over random instances
	// with homogeneous μ.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		access := make([]float64, n)
		for i := range access {
			access[i] = rng.Float64() * 5
		}
		lambda := 0.5 + rng.Float64()
		mu := lambda + 0.5 + rng.Float64()
		m := mustSingleFile(t, access, []float64{mu}, lambda, 0.5+rng.Float64())
		eps := 1e-3
		bound, err := m.AlphaBound(eps)
		if err != nil {
			t.Fatalf("trial %d: AlphaBound: %v", trial, err)
		}
		if bound <= 0 {
			t.Fatalf("trial %d: bound = %v", trial, bound)
		}
		x := randomSimplex(rng, n, 1)
		grad := make([]float64, n)
		prev, err := m.Utility(x)
		if err != nil {
			t.Fatal(err)
		}
		group := make([]int, n)
		for i := range group {
			group[i] = i
		}
		// The bound is conservative, so convergence at α=bound can take
		// astronomically long; verify strict monotonicity on a prefix.
		for it := 0; it < 200; it++ {
			if err := m.Gradient(grad, x); err != nil {
				t.Fatal(err)
			}
			st, err := core.PlanStep(x, grad, group, bound)
			if err != nil {
				t.Fatal(err)
			}
			if st.Spread(grad, group) < eps {
				break
			}
			if st.IsNoOp() {
				break
			}
			if err := st.Apply(x, group); err != nil {
				t.Fatal(err)
			}
			u, err := m.Utility(x)
			if err != nil {
				t.Fatal(err)
			}
			if u <= prev {
				t.Fatalf("trial %d: utility not strictly increasing at iteration %d: %g -> %g", trial, it, prev, u)
			}
			prev = u
		}
	}
}

func TestAlphaBoundValidation(t *testing.T) {
	m := mustSingleFile(t, []float64{1, 2}, []float64{2, 3}, 1, 1)
	if _, err := m.AlphaBound(1e-3); !errors.Is(err, ErrBadParam) {
		t.Errorf("heterogeneous μ: error = %v, want ErrBadParam", err)
	}
	m2 := mustSingleFile(t, []float64{1, 2}, []float64{0.5}, 1, 1)
	if _, err := m2.AlphaBound(1e-3); !errors.Is(err, ErrBadParam) {
		t.Errorf("μ ≤ λ: error = %v, want ErrBadParam", err)
	}
	m3 := mustSingleFile(t, []float64{1, 2}, []float64{2}, 1, 1)
	if _, err := m3.AlphaBound(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero epsilon: error = %v, want ErrBadParam", err)
	}
}

func TestSolveKKTMatchesIterativeAlgorithm(t *testing.T) {
	// The iterative algorithm and the independent water-filling solver
	// must agree on random instances.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		access := make([]float64, n)
		for i := range access {
			access[i] = rng.Float64() * 6
		}
		lambda := 0.5 + rng.Float64()
		mu := lambda + 0.3 + rng.Float64()*2
		m := mustSingleFile(t, access, []float64{mu}, lambda, 0.3+rng.Float64())

		sol, err := m.SolveKKT(1e-12)
		if err != nil {
			t.Fatalf("trial %d: SolveKKT: %v", trial, err)
		}
		alloc, err := core.NewAllocator(m, core.WithAlpha(0.02), core.WithEpsilon(1e-8),
			core.WithKKTCheck(), core.WithMaxIterations(500000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := alloc.Run(context.Background(), topologyUniform(n))
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: %v after %d iterations", trial, res.Reason, res.Iterations)
		}
		iterCost := -res.Utility
		if math.Abs(iterCost-sol.Cost) > 1e-5*(1+sol.Cost) {
			t.Errorf("trial %d: iterative cost %.9f vs KKT cost %.9f", trial, iterCost, sol.Cost)
		}
		for i := range sol.X {
			if math.Abs(sol.X[i]-res.X[i]) > 1e-3 {
				t.Errorf("trial %d: x[%d]: iterative %.6f vs KKT %.6f", trial, i, res.X[i], sol.X[i])
			}
		}
	}
}

func topologyUniform(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return x
}

func TestSolveKKTSymmetric(t *testing.T) {
	m := mustSingleFile(t, []float64{2, 2, 2, 2}, []float64{1.5}, 1, 1)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatalf("SolveKKT: %v", err)
	}
	for i, xi := range sol.X {
		if math.Abs(xi-0.25) > 1e-6 {
			t.Errorf("x[%d] = %g, want 0.25", i, xi)
		}
	}
	if math.Abs(sol.Cost-2.8) > 1e-9 {
		t.Errorf("cost = %g, want 2.8", sol.Cost)
	}
}

func TestSolveKKTLinear(t *testing.T) {
	// k = 0: pure communication cost, optimum concentrates on the
	// cheapest node.
	m := mustSingleFile(t, []float64{3, 1, 2}, []float64{2}, 1, 0)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatalf("SolveKKT: %v", err)
	}
	if sol.X[1] != 1 || sol.X[0] != 0 || sol.X[2] != 0 {
		t.Errorf("X = %v, want (0,1,0)", sol.X)
	}
	if sol.Cost != 1 {
		t.Errorf("cost = %v, want 1", sol.Cost)
	}
}

func TestSolveKKTBoundarySupport(t *testing.T) {
	// One node is so expensive it must receive nothing.
	m := mustSingleFile(t, []float64{0, 0, 100}, []float64{3}, 1, 1)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatalf("SolveKKT: %v", err)
	}
	if sol.X[2] != 0 {
		t.Errorf("expensive node received %g, want 0", sol.X[2])
	}
	if math.Abs(sol.X[0]-0.5) > 1e-6 || math.Abs(sol.X[1]-0.5) > 1e-6 {
		t.Errorf("X = %v, want (0.5, 0.5, 0)", sol.X)
	}
}

func TestSolveKKTValidation(t *testing.T) {
	m := mustSingleFile(t, []float64{1}, []float64{2}, 1, 1)
	if _, err := m.SolveKKT(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero tolerance: error = %v, want ErrBadParam", err)
	}
}
