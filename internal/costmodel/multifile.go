package costmodel

import (
	"fmt"
	"math"

	"filealloc/internal/core"
)

// MultiFile is the section 5.4 extension to M distinct files (one copy
// each). The variable x_i^f is the fraction of file f stored at node i;
// each file conserves its own total (Σ_i x_i^f = 1) while all files stored
// at node i share its single access queue, whose load is
//
//	L_i = Σ_f λ^f·x_i^f.
//
// The expected cost is
//
//	C(x) = Σ_i Σ_f w_f·(C_i^f + k/(μ_i − L_i))·x_i^f
//
// where w_f weights file f's accesses. The paper's formula uses w_f = 1
// (NewMultiFile with PaperWeights); weighting by access share w_f = λ^f/Σλ
// makes C the expected cost of a random access (ShareWeights). The delay
// term couples the files through the shared queues, the "real-world
// resource contention phenomenon ... typically not considered in most FAP
// formulations".
//
// Variables are flattened file-major: index(f, i) = f·N + i, so each file's
// constraint group is contiguous.
type MultiFile struct {
	access  [][]float64 // access[f][i] = C_i^f
	service []float64   // μ_i
	rates   []float64   // λ^f
	weights []float64   // w_f
	k       float64
	n       int
	groups  [][]int
}

var (
	_ core.Objective = (*MultiFile)(nil)
	_ core.Curvature = (*MultiFile)(nil)
	_ core.Grouped   = (*MultiFile)(nil)
)

// WeightScheme selects the per-file weights w_f.
type WeightScheme int

const (
	// PaperWeights sets w_f = 1, reproducing section 5.4's formula
	// verbatim.
	PaperWeights WeightScheme = iota + 1
	// ShareWeights sets w_f = λ^f/Σ_g λ^g so the cost is the expected
	// cost of one randomly chosen access.
	ShareWeights
)

// NewMultiFile builds the multi-file objective. accessCosts[f][i] is C_i^f
// for file f at node i (use the same slice per file when access patterns
// coincide); serviceRates holds μ_i (single element = homogeneous);
// fileRates holds λ^f per file.
func NewMultiFile(accessCosts [][]float64, serviceRates, fileRates []float64, k float64, scheme WeightScheme) (*MultiFile, error) {
	files := len(accessCosts)
	if files == 0 {
		return nil, fmt.Errorf("%w: no files", ErrBadParam)
	}
	if len(fileRates) != files {
		return nil, fmt.Errorf("%w: %d file rates for %d files", ErrBadParam, len(fileRates), files)
	}
	n := len(accessCosts[0])
	if n == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadParam)
	}
	if k < 0 || math.IsNaN(k) {
		return nil, fmt.Errorf("%w: k = %v", ErrBadParam, k)
	}
	access := make([][]float64, files)
	for f, row := range accessCosts {
		if len(row) != n {
			return nil, fmt.Errorf("%w: file %d has %d access costs, want %d", ErrBadParam, f, len(row), n)
		}
		for i, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("%w: access cost C_%d^%d = %v", ErrBadParam, i, f, c)
			}
		}
		access[f] = append([]float64(nil), row...)
	}
	var mu []float64
	switch len(serviceRates) {
	case 1:
		mu = make([]float64, n)
		for i := range mu {
			mu[i] = serviceRates[0]
		}
	case n:
		mu = append([]float64(nil), serviceRates...)
	default:
		return nil, fmt.Errorf("%w: %d service rates for %d nodes", ErrBadParam, len(serviceRates), n)
	}
	for i, m := range mu {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("%w: service rate μ_%d = %v", ErrBadParam, i, m)
		}
	}
	var totalRate float64
	for f, r := range fileRates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: file rate λ^%d = %v", ErrBadParam, f, r)
		}
		totalRate += r
	}
	weights := make([]float64, files)
	for f := range weights {
		switch scheme {
		case ShareWeights:
			weights[f] = fileRates[f] / totalRate
		default:
			weights[f] = 1
		}
	}
	groups := make([][]int, files)
	for f := 0; f < files; f++ {
		g := make([]int, n)
		for i := 0; i < n; i++ {
			g[i] = f*n + i
		}
		groups[f] = g
	}
	return &MultiFile{
		access:  access,
		service: mu,
		rates:   append([]float64(nil), fileRates...),
		weights: weights,
		k:       k,
		n:       n,
		groups:  groups,
	}, nil
}

// Dim returns files × nodes.
func (m *MultiFile) Dim() int { return len(m.access) * m.n }

// Nodes returns the node count N.
func (m *MultiFile) Nodes() int { return m.n }

// Files returns the file count M.
func (m *MultiFile) Files() int { return len(m.access) }

// Groups returns one constraint group per file (section 5.4's
// Σ_i x_i^f = 1 for each f).
func (m *MultiFile) Groups() [][]int { return m.groups }

// Index flattens (file, node) to the variable index.
func (m *MultiFile) Index(file, node int) int { return file*m.n + node }

// load returns L_i = Σ_f λ^f·x_i^f and W_i = Σ_f w_f·x_i^f for node i.
func (m *MultiFile) load(x []float64, i int) (load, weighted float64) {
	for f := range m.access {
		xi := x[f*m.n+i]
		load += m.rates[f] * xi
		weighted += m.weights[f] * xi
	}
	return load, weighted
}

// Cost returns C(x).
func (m *MultiFile) Cost(x []float64) (float64, error) {
	if len(x) != m.Dim() {
		return 0, fmt.Errorf("%w: allocation has %d entries, want %d", ErrBadParam, len(x), m.Dim())
	}
	var total float64
	for i := 0; i < m.n; i++ {
		load, _ := m.load(x, i)
		room := m.service[i] - load
		var commPart, weighted float64
		for f := range m.access {
			xi := x[f*m.n+i]
			commPart += m.weights[f] * m.access[f][i] * xi
			weighted += m.weights[f] * xi
		}
		if weighted == 0 {
			continue
		}
		if room <= 0 {
			return 0, fmt.Errorf("%w: node %d has μ=%v, load=%v", ErrUnstable, i, m.service[i], load)
		}
		total += commPart + m.k*weighted/room
	}
	return total, nil
}

// Utility returns −Cost(x).
func (m *MultiFile) Utility(x []float64) (float64, error) {
	c, err := m.Cost(x)
	if err != nil {
		return 0, err
	}
	return -c, nil
}

// Gradient fills the marginal utilities
//
//	∂U/∂x_i^f = −(w_f·C_i^f + k·(w_f·(μ_i−L_i) + W_i·λ^f)/(μ_i−L_i)²).
func (m *MultiFile) Gradient(grad, x []float64) error {
	if len(grad) != m.Dim() || len(x) != m.Dim() {
		return fmt.Errorf("%w: gradient/allocation size mismatch", ErrBadParam)
	}
	for i := 0; i < m.n; i++ {
		load, weighted := m.load(x, i)
		room := m.service[i] - load
		if room <= 0 {
			return fmt.Errorf("%w: node %d has μ=%v, load=%v", ErrUnstable, i, m.service[i], load)
		}
		for f := range m.access {
			grad[f*m.n+i] = -(m.weights[f]*m.access[f][i] +
				m.k*(m.weights[f]*room+weighted*m.rates[f])/(room*room))
		}
	}
	return nil
}

// SecondDerivative fills the Hessian diagonal
//
//	∂²U/∂(x_i^f)² = −2·k·λ^f·(w_f·(μ_i−L_i) + W_i·λ^f)/(μ_i−L_i)³.
//
// Unlike the single-file model, the multi-file utility has nonzero cross
// partials between files sharing a node, so the diagonal is not the full
// Hessian; it is still the quantity the second-order algorithm scales by.
func (m *MultiFile) SecondDerivative(hess, x []float64) error {
	if len(hess) != m.Dim() || len(x) != m.Dim() {
		return fmt.Errorf("%w: hessian/allocation size mismatch", ErrBadParam)
	}
	for i := 0; i < m.n; i++ {
		load, weighted := m.load(x, i)
		room := m.service[i] - load
		if room <= 0 {
			return fmt.Errorf("%w: node %d has μ=%v, load=%v", ErrUnstable, i, m.service[i], load)
		}
		for f := range m.access {
			hess[f*m.n+i] = -2 * m.k * m.rates[f] *
				(m.weights[f]*room + weighted*m.rates[f]) / (room * room * room)
		}
	}
	return nil
}

// ServiceRate returns μ_i.
func (m *MultiFile) ServiceRate(i int) float64 { return m.service[i] }

// AccessCost returns C_i^f for file f at node i.
func (m *MultiFile) AccessCost(file, node int) float64 { return m.access[file][node] }

// FileRates returns a copy of the per-file access rates λ^f.
func (m *MultiFile) FileRates() []float64 { return append([]float64(nil), m.rates...) }

// FileWeights returns a copy of the per-file weights w_f.
func (m *MultiFile) FileWeights() []float64 { return append([]float64(nil), m.weights...) }

// K returns the delay scaling factor.
func (m *MultiFile) K() float64 { return m.k }
