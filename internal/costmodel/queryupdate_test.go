package costmodel

import (
	"errors"
	"math"
	"testing"
)

func uniformMatrix(n int, v float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = v
			}
		}
	}
	return m
}

func TestQueryUpdateCombineReducesToPlainAccess(t *testing.T) {
	// With identical rates, costs, and unit weights for both classes,
	// the combined C_i equals the plain single-class computation.
	spec := QueryUpdateSpec{
		QueryRates:  []float64{0.5, 0.5},
		UpdateRates: []float64{0.5, 0.5},
		QueryCosts:  uniformMatrix(2, 3),
		UpdateCosts: uniformMatrix(2, 3),
	}
	access, lambda, err := spec.Combine()
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if lambda != 2 {
		t.Errorf("lambda = %g, want 2", lambda)
	}
	// C_i = Σ_j (λ_j/λ)c_ji = (1/2)·3 for the remote node only = 1.5.
	for i, c := range access {
		if math.Abs(c-1.5) > 1e-12 {
			t.Errorf("C_%d = %g, want 1.5", i, c)
		}
	}
}

func TestQueryUpdateWeightsExpensiveUpdates(t *testing.T) {
	// Updates cost 3x queries. Node 1 generates only updates, so the
	// access cost of storing the file away from node 1 should be
	// dominated by update traffic.
	spec := QueryUpdateSpec{
		QueryRates:   []float64{1, 0},
		UpdateRates:  []float64{0, 1},
		QueryCosts:   uniformMatrix(2, 1),
		UpdateCosts:  uniformMatrix(2, 3),
		QueryWeight:  1,
		UpdateWeight: 2,
	}
	access, lambda, err := spec.Combine()
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if lambda != 2 {
		t.Errorf("lambda = %g, want 2", lambda)
	}
	// C_0 sees node 1's updates: (2·1·3)/2 = 3.
	// C_1 sees node 0's queries: (1·1·1)/2 = 0.5.
	if math.Abs(access[0]-3) > 1e-12 || math.Abs(access[1]-0.5) > 1e-12 {
		t.Errorf("access = %v, want [3, 0.5]", access)
	}
}

func TestNewQueryUpdateSingleFile(t *testing.T) {
	spec := QueryUpdateSpec{
		QueryRates:  []float64{0.4, 0.4},
		UpdateRates: []float64{0.1, 0.1},
		QueryCosts:  uniformMatrix(2, 1),
		UpdateCosts: uniformMatrix(2, 4),
	}
	m, err := NewQueryUpdateSingleFile(spec, []float64{3}, 1)
	if err != nil {
		t.Fatalf("NewQueryUpdateSingleFile: %v", err)
	}
	if m.Dim() != 2 || m.Lambda() != 1 {
		t.Errorf("dim=%d lambda=%v", m.Dim(), m.Lambda())
	}
	if _, err := m.Cost([]float64{0.5, 0.5}); err != nil {
		t.Errorf("Cost: %v", err)
	}
}

func TestQueryUpdateValidation(t *testing.T) {
	good := uniformMatrix(2, 1)
	tests := []struct {
		name string
		spec QueryUpdateSpec
	}{
		{"empty", QueryUpdateSpec{}},
		{"length mismatch", QueryUpdateSpec{QueryRates: []float64{1}, UpdateRates: []float64{1, 1}, QueryCosts: good, UpdateCosts: good}},
		{"missing matrices", QueryUpdateSpec{QueryRates: []float64{1, 1}, UpdateRates: []float64{1, 1}}},
		{"ragged matrix", QueryUpdateSpec{QueryRates: []float64{1, 1}, UpdateRates: []float64{1, 1}, QueryCosts: [][]float64{{0}, {0, 0}}, UpdateCosts: good}},
		{"negative rate", QueryUpdateSpec{QueryRates: []float64{-1, 1}, UpdateRates: []float64{1, 1}, QueryCosts: good, UpdateCosts: good}},
		{"zero total", QueryUpdateSpec{QueryRates: []float64{0, 0}, UpdateRates: []float64{0, 0}, QueryCosts: good, UpdateCosts: good}},
		{"negative weight", QueryUpdateSpec{QueryRates: []float64{1, 1}, UpdateRates: []float64{1, 1}, QueryCosts: good, UpdateCosts: good, QueryWeight: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := tt.spec.Combine(); !errors.Is(err, ErrBadParam) {
				t.Errorf("error = %v, want ErrBadParam", err)
			}
		})
	}
}
