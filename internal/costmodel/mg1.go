package costmodel

import (
	"fmt"
	"math"

	"filealloc/internal/core"
)

// ServiceDist describes a service-time distribution by its first two
// moments, which is all the M/G/1 delay formula needs.
type ServiceDist struct {
	// Mean is E[S], the mean service time.
	Mean float64
	// SecondMoment is E[S²].
	SecondMoment float64
}

// Exponential returns the service distribution of an exponential server
// with rate mu: E[S] = 1/μ, E[S²] = 2/μ². With this distribution the M/G/1
// model reduces exactly to the paper's M/M/1 model.
func Exponential(mu float64) ServiceDist {
	return ServiceDist{Mean: 1 / mu, SecondMoment: 2 / (mu * mu)}
}

// Deterministic returns a constant service time d (E[S²] = d²), the M/D/1
// case with half the M/M/1 queueing delay.
func Deterministic(d float64) ServiceDist {
	return ServiceDist{Mean: d, SecondMoment: d * d}
}

// UniformService returns a service time uniform on [a, b].
func UniformService(a, b float64) ServiceDist {
	return ServiceDist{
		Mean:         (a + b) / 2,
		SecondMoment: (a*a + a*b + b*b) / 3,
	}
}

// Hyperexponential returns a two-phase hyperexponential service: with
// probability p the rate is mu1, otherwise mu2. Its coefficient of
// variation exceeds 1, stressing the delay model beyond M/M/1.
func Hyperexponential(p, mu1, mu2 float64) ServiceDist {
	return ServiceDist{
		Mean:         p/mu1 + (1-p)/mu2,
		SecondMoment: 2*p/(mu1*mu1) + 2*(1-p)/(mu2*mu2),
	}
}

// SCV returns the squared coefficient of variation Var[S]/E[S]².
func (d ServiceDist) SCV() float64 {
	v := d.SecondMoment - d.Mean*d.Mean
	return v / (d.Mean * d.Mean)
}

// valid reports whether the moments are usable (positive mean and a second
// moment of at least Mean², per Jensen).
func (d ServiceDist) valid() bool {
	return d.Mean > 0 && !math.IsNaN(d.Mean) && !math.IsInf(d.Mean, 0) &&
		d.SecondMoment >= d.Mean*d.Mean && !math.IsInf(d.SecondMoment, 0)
}

// MG1SingleFile is the section 5.4 variant that replaces the M/M/1 delay
// with the M/G/1 expected sojourn time from the Pollaczek–Khinchine
// formula:
//
//	T_i(x_i) = E[S_i] + λ·x_i·E[S_i²] / (2·(1 − λ·x_i·E[S_i]))
//
//	C(x) = Σ_i (C_i + k·T_i(x_i))·x_i
//
// As the paper notes, swapping the queueing model preserves the
// feasibility and monotonicity machinery; only the Theorem-2 α bound is
// specific to M/M/1.
type MG1SingleFile struct {
	access  []float64
	service []ServiceDist
	lambda  float64
	k       float64
}

var (
	_ core.Objective = (*MG1SingleFile)(nil)
	_ core.Curvature = (*MG1SingleFile)(nil)
)

// NewMG1SingleFile builds the M/G/1 objective. Pass one ServiceDist to use
// the same distribution at every node or one per node.
func NewMG1SingleFile(accessCosts []float64, service []ServiceDist, lambda, k float64) (*MG1SingleFile, error) {
	n := len(accessCosts)
	if n == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadParam)
	}
	if lambda <= 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("%w: lambda = %v", ErrBadParam, lambda)
	}
	if k < 0 || math.IsNaN(k) {
		return nil, fmt.Errorf("%w: k = %v", ErrBadParam, k)
	}
	for i, c := range accessCosts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: access cost C_%d = %v", ErrBadParam, i, c)
		}
	}
	var dists []ServiceDist
	switch len(service) {
	case 1:
		dists = make([]ServiceDist, n)
		for i := range dists {
			dists[i] = service[0]
		}
	case n:
		dists = append([]ServiceDist(nil), service...)
	default:
		return nil, fmt.Errorf("%w: %d service distributions for %d nodes", ErrBadParam, len(service), n)
	}
	for i, d := range dists {
		if !d.valid() {
			return nil, fmt.Errorf("%w: service distribution at node %d: mean=%v E[S²]=%v", ErrBadParam, i, d.Mean, d.SecondMoment)
		}
	}
	return &MG1SingleFile{
		access:  append([]float64(nil), accessCosts...),
		service: dists,
		lambda:  lambda,
		k:       k,
	}, nil
}

// Dim returns the number of nodes.
func (m *MG1SingleFile) Dim() int { return len(m.access) }

// Delay returns T_i evaluated at allocation fraction xi.
func (m *MG1SingleFile) Delay(i int, xi float64) (float64, error) {
	d := m.service[i]
	rho := m.lambda * xi * d.Mean
	if rho >= 1 {
		return 0, fmt.Errorf("%w: node %d has utilization %v", ErrUnstable, i, rho)
	}
	return d.Mean + m.lambda*xi*d.SecondMoment/(2*(1-rho)), nil
}

// Cost returns C(x).
func (m *MG1SingleFile) Cost(x []float64) (float64, error) {
	if len(x) != len(m.access) {
		return 0, fmt.Errorf("%w: allocation has %d entries for %d nodes", ErrBadParam, len(x), len(m.access))
	}
	var total float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		t, err := m.Delay(i, xi)
		if err != nil {
			return 0, err
		}
		total += (m.access[i] + m.k*t) * xi
	}
	return total, nil
}

// Utility returns −Cost(x).
func (m *MG1SingleFile) Utility(x []float64) (float64, error) {
	c, err := m.Cost(x)
	if err != nil {
		return 0, err
	}
	return -c, nil
}

// Gradient fills the marginal utilities. Writing b = E[S], s₂ = E[S²],
// a = λ·b:
//
//	∂C/∂x_i = C_i + k·(b + λ·s₂·x_i·(2 − a·x_i) / (2·(1 − a·x_i)²))
func (m *MG1SingleFile) Gradient(grad, x []float64) error {
	if len(grad) != len(m.access) || len(x) != len(m.access) {
		return fmt.Errorf("%w: gradient/allocation size mismatch", ErrBadParam)
	}
	for i, xi := range x {
		d := m.service[i]
		a := m.lambda * d.Mean
		rem := 1 - a*xi
		if rem <= 0 {
			return fmt.Errorf("%w: node %d has utilization %v", ErrUnstable, i, a*xi)
		}
		grad[i] = -(m.access[i] + m.k*(d.Mean+m.lambda*d.SecondMoment*xi*(2-a*xi)/(2*rem*rem)))
	}
	return nil
}

// SecondDerivative fills the Hessian diagonal
//
//	∂²C/∂x_i² = k·λ·s₂ / (1 − a·x_i)³
//
// (negated for the utility). For exponential service this reduces to the
// M/M/1 expression 2·k·λ·μ/(μ − λ·x)³.
func (m *MG1SingleFile) SecondDerivative(hess, x []float64) error {
	if len(hess) != len(m.access) || len(x) != len(m.access) {
		return fmt.Errorf("%w: hessian/allocation size mismatch", ErrBadParam)
	}
	for i, xi := range x {
		d := m.service[i]
		rem := 1 - m.lambda*d.Mean*xi
		if rem <= 0 {
			return fmt.Errorf("%w: node %d has utilization %v", ErrUnstable, i, m.lambda*d.Mean*xi)
		}
		hess[i] = -m.k * m.lambda * d.SecondMoment / (rem * rem * rem)
	}
	return nil
}
