package costmodel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
)

func TestMG1ReducesToMM1WithExponentialService(t *testing.T) {
	// With exponential service the Pollaczek–Khinchine sojourn time is
	// exactly the M/M/1 delay, so the two models must agree everywhere.
	access := []float64{2, 1, 3, 2}
	mm1 := mustSingleFile(t, access, []float64{1.5}, 1, 1)
	mg1, err := NewMG1SingleFile(access, []ServiceDist{Exponential(1.5)}, 1, 1)
	if err != nil {
		t.Fatalf("NewMG1SingleFile: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x := randomSimplex(rng, 4, 1)
		c1, err := mm1.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := mg1.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c1-c2) > 1e-10 {
			t.Fatalf("trial %d: M/M/1 %g vs M/G/1 %g", trial, c1, c2)
		}
		g1 := make([]float64, 4)
		g2 := make([]float64, 4)
		if err := mm1.Gradient(g1, x); err != nil {
			t.Fatal(err)
		}
		if err := mg1.Gradient(g2, x); err != nil {
			t.Fatal(err)
		}
		for i := range g1 {
			if math.Abs(g1[i]-g2[i]) > 1e-9 {
				t.Fatalf("trial %d: grad[%d] %g vs %g", trial, i, g1[i], g2[i])
			}
		}
		h1 := make([]float64, 4)
		h2 := make([]float64, 4)
		if err := mm1.SecondDerivative(h1, x); err != nil {
			t.Fatal(err)
		}
		if err := mg1.SecondDerivative(h2, x); err != nil {
			t.Fatal(err)
		}
		for i := range h1 {
			if math.Abs(h1[i]-h2[i]) > 1e-9 {
				t.Fatalf("trial %d: hess[%d] %g vs %g", trial, i, h1[i], h2[i])
			}
		}
	}
}

func TestMG1GradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dists := []ServiceDist{
		Exponential(2),
		Deterministic(0.4),
		UniformService(0.1, 0.5),
		Hyperexponential(0.3, 1, 5),
	}
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		access := make([]float64, n)
		service := make([]ServiceDist, n)
		for i := range access {
			access[i] = rng.Float64() * 4
			service[i] = dists[rng.Intn(len(dists))]
		}
		m, err := NewMG1SingleFile(access, service, 0.5+rng.Float64(), 0.5+rng.Float64())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := randomSimplex(rng, n, 1)
		grad := make([]float64, n)
		if err := m.Gradient(grad, x); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		num := numericGradient(t, m.Utility, x, 1e-6)
		for i := range grad {
			if math.Abs(grad[i]-num[i]) > 1e-4*(1+math.Abs(num[i])) {
				t.Errorf("trial %d: grad[%d] = %g, numeric %g", trial, i, grad[i], num[i])
			}
		}
		hess := make([]float64, n)
		if err := m.SecondDerivative(hess, x); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for v := 0; v < n; v++ {
			gfun := func(y []float64) (float64, error) {
				g := make([]float64, n)
				if err := m.Gradient(g, y); err != nil {
					return 0, err
				}
				return g[v], nil
			}
			num := numericGradient(t, gfun, x, 1e-6)
			if math.Abs(hess[v]-num[v]) > 1e-3*(1+math.Abs(num[v])) {
				t.Errorf("trial %d: hess[%d] = %g, numeric %g", trial, v, hess[v], num[v])
			}
		}
	}
}

func TestMG1DeterministicServiceHalvesQueueing(t *testing.T) {
	// M/D/1 waiting time is half the M/M/1 waiting time at equal mean
	// service, so a deterministic server should yield lower delay cost.
	access := []float64{0, 0}
	mm1, err := NewMG1SingleFile(access, []ServiceDist{Exponential(2)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	md1, err := NewMG1SingleFile(access, []ServiceDist{Deterministic(0.5)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	cm, err := mm1.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := md1.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	if cd >= cm {
		t.Errorf("M/D/1 cost %g should be below M/M/1 cost %g", cd, cm)
	}
	// Explicit values: ρ = 0.25 per node. M/M/1: T = 1/(2−0.5) = 2/3.
	// M/D/1: T = 0.5 + 0.5·0.25/(2·(1−0.25)) · ... = 0.5 + λx·E[S²]/(2(1−ρ))
	// = 0.5 + 0.5·0.25/(2·0.75) = 0.5833….
	if math.Abs(cm-2.0/3) > 1e-12 {
		t.Errorf("M/M/1 cost = %g, want 2/3", cm)
	}
	want := 0.5 + 0.5*0.25/(2*0.75)
	if math.Abs(cd-want) > 1e-12 {
		t.Errorf("M/D/1 cost = %g, want %g", cd, want)
	}
}

func TestMG1SolverConverges(t *testing.T) {
	// The allocation algorithm works unchanged on the M/G/1 objective
	// (section 5.4's claim).
	access := []float64{1, 2, 1.5}
	m, err := NewMG1SingleFile(access, []ServiceDist{Hyperexponential(0.4, 1.5, 6)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := core.NewAllocator(m, core.WithAlpha(0.05), core.WithEpsilon(1e-8), core.WithKKTCheck())
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// Verify the KKT conditions directly.
	grad := make([]float64, 3)
	if err := m.Gradient(grad, res.X); err != nil {
		t.Fatal(err)
	}
	var q float64 = math.Inf(-1)
	for i, xi := range res.X {
		if xi > 1e-9 && grad[i] > q {
			q = grad[i]
		}
	}
	for i, xi := range res.X {
		if xi > 1e-9 && math.Abs(grad[i]-q) > 1e-6 {
			t.Errorf("support gradient %d = %g, want %g", i, grad[i], q)
		}
	}
}

func TestMG1Unstable(t *testing.T) {
	m, err := NewMG1SingleFile([]float64{0, 0}, []ServiceDist{Exponential(1.2)}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cost([]float64{0.7, 0.3}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Cost error = %v, want ErrUnstable", err)
	}
	if _, err := m.Delay(0, 0.7); !errors.Is(err, ErrUnstable) {
		t.Errorf("Delay error = %v, want ErrUnstable", err)
	}
}

func TestMG1Validation(t *testing.T) {
	tests := []struct {
		name    string
		access  []float64
		service []ServiceDist
		lambda  float64
		k       float64
	}{
		{"no nodes", nil, []ServiceDist{Exponential(1)}, 1, 1},
		{"bad lambda", []float64{1}, []ServiceDist{Exponential(1)}, -1, 1},
		{"bad k", []float64{1}, []ServiceDist{Exponential(1)}, 1, -1},
		{"wrong service count", []float64{1, 1, 1}, []ServiceDist{Exponential(1), Exponential(2)}, 1, 1},
		{"zero mean", []float64{1}, []ServiceDist{{Mean: 0, SecondMoment: 1}}, 1, 1},
		{"jensen violation", []float64{1}, []ServiceDist{{Mean: 1, SecondMoment: 0.5}}, 1, 1},
		{"negative access", []float64{-1}, []ServiceDist{Exponential(1)}, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMG1SingleFile(tt.access, tt.service, tt.lambda, tt.k); !errors.Is(err, ErrBadParam) {
				t.Errorf("error = %v, want ErrBadParam", err)
			}
		})
	}
}

func TestServiceDistMoments(t *testing.T) {
	tests := []struct {
		name     string
		d        ServiceDist
		wantMean float64
		wantSCV  float64
	}{
		{"exponential", Exponential(2), 0.5, 1},
		{"deterministic", Deterministic(0.3), 0.3, 0},
		{"uniform", UniformService(0, 1), 0.5, 1.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if math.Abs(tt.d.Mean-tt.wantMean) > 1e-12 {
				t.Errorf("mean = %g, want %g", tt.d.Mean, tt.wantMean)
			}
			if math.Abs(tt.d.SCV()-tt.wantSCV) > 1e-12 {
				t.Errorf("SCV = %g, want %g", tt.d.SCV(), tt.wantSCV)
			}
		})
	}
	h := Hyperexponential(0.5, 1, 4)
	if h.SCV() <= 1 {
		t.Errorf("hyperexponential SCV = %g, want > 1", h.SCV())
	}
}
