package costmodel

import (
	"errors"
	"testing"
)

// TestVerifyKKTCertifiesSolver runs the verifier over solver output on an
// instance whose optimum has a node exactly at the support boundary:
// x_2 = 0 with marginal cost strictly above q. The certificate must accept
// the solution, and in particular must not report the zero node.
func TestVerifyKKTCertifiesSolver(t *testing.T) {
	m := mustSingleFile(t, []float64{0, 0, 100}, []float64{3}, 1, 1)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatalf("SolveKKT: %v", err)
	}
	if sol.X[2] != 0 {
		t.Fatalf("x_2 = %g; the instance no longer exercises the support boundary", sol.X[2])
	}
	if err := m.VerifyKKT(sol.X, sol.Q, 1e-6); err != nil {
		t.Errorf("VerifyKKT rejected the solver's own optimum: %v", err)
	}
}

// TestVerifyKKTBoundaryNoFloatNoise places a node's marginal cost at zero
// exactly on the multiplier q. Floating-point evaluation of
// C_i + k·μ_i/μ_i² can then land a few ulps below q, and a naive strict
// comparison (marginal ≥ q) would reject an optimal allocation. The
// relative tolerance must absorb that noise.
func TestVerifyKKTBoundaryNoFloatNoise(t *testing.T) {
	// Two identical cheap nodes share the file; q is their common interior
	// marginal. The third node's access cost is chosen so its marginal at
	// x = 0, C_2 + k/μ, equals q exactly in real arithmetic.
	lambda, k, mu := 1.0, 1.0, 3.0
	base := mustSingleFile(t, []float64{0, 0, 0}, []float64{mu}, lambda, k)
	x := []float64{0.5, 0.5, 0}
	room := mu - lambda*0.5
	q := 0 + k*mu/(room*room) // interior marginal of the support nodes
	c2 := q - k/mu            // marginal at zero becomes exactly q
	m := mustSingleFile(t, []float64{0, 0, c2}, []float64{mu}, lambda, k)
	if err := m.VerifyKKT(x, q, 1e-9); err != nil {
		t.Errorf("boundary node priced exactly at q was rejected: %v", err)
	}
	// Sanity: the same allocation on the base model (c2 = 0, marginal at
	// zero well below q) must be rejected — the tolerance absorbs ulps,
	// not real violations.
	if err := base.VerifyKKT(x, q, 1e-9); err == nil {
		t.Error("zero node with marginal far below q was accepted")
	}
}

// TestVerifyKKTRejectsSuboptimal checks both failure directions: mass on a
// node whose marginal exceeds q (interior violation) and an excluded node
// whose marginal is below q (boundary violation).
func TestVerifyKKTRejectsSuboptimal(t *testing.T) {
	m := mustSingleFile(t, []float64{0, 0, 100}, []float64{3}, 1, 1)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatalf("SolveKKT: %v", err)
	}

	// Move mass onto the priced-out node: it enters the support with a
	// marginal far above q.
	bad := []float64{sol.X[0] - 0.05, sol.X[1], 0.05}
	if err := m.VerifyKKT(bad, sol.Q, 1e-6); err == nil {
		t.Error("allocation with mass on a node whose marginal exceeds q was accepted")
	}

	// Exclude a node that belongs in the support: concentrate everything
	// on node 0 and report its marginal as q. Node 1 sits at zero with
	// marginal C_1 + k/μ < q, so the optimum stores mass there.
	conc := []float64{1, 0, 0}
	room := 3.0 - 1.0
	qConc := 0 + 1.0*3.0/(room*room)
	if err := m.VerifyKKT(conc, qConc, 1e-6); err == nil {
		t.Error("allocation excluding a node with marginal below q was accepted")
	}
}

// TestVerifyKKTValidation covers the feasibility and parameter checks.
func TestVerifyKKTValidation(t *testing.T) {
	m := mustSingleFile(t, []float64{1, 1}, []float64{3}, 1, 1)
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		t.Fatalf("SolveKKT: %v", err)
	}
	if err := m.VerifyKKT(sol.X, sol.Q, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero tolerance: error = %v, want ErrBadParam", err)
	}
	if err := m.VerifyKKT([]float64{0.5}, sol.Q, 1e-6); !errors.Is(err, ErrBadParam) {
		t.Errorf("wrong length: error = %v, want ErrBadParam", err)
	}
	if err := m.VerifyKKT([]float64{0.7, 0.7}, sol.Q, 1e-6); !errors.Is(err, ErrBadParam) {
		t.Errorf("infeasible sum: error = %v, want ErrBadParam", err)
	}
	if err := m.VerifyKKT([]float64{1.5, -0.5}, sol.Q, 1e-6); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative entry: error = %v, want ErrBadParam", err)
	}
	slow := mustSingleFile(t, []float64{1, 1}, []float64{0.8}, 1, 1)
	if err := slow.VerifyKKT([]float64{1, 0}, 1, 1e-6); !errors.Is(err, ErrUnstable) {
		t.Errorf("saturated queue: error = %v, want ErrUnstable", err)
	}
}
