package costmodel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
)

func mustMultiFile(t *testing.T, access [][]float64, mu, rates []float64, k float64, scheme WeightScheme) *MultiFile {
	t.Helper()
	m, err := NewMultiFile(access, mu, rates, k, scheme)
	if err != nil {
		t.Fatalf("NewMultiFile: %v", err)
	}
	return m
}

func TestMultiFileReducesToSingleFile(t *testing.T) {
	// One file with PaperWeights must equal the SingleFile model exactly.
	access := []float64{1, 3, 2}
	single := mustSingleFile(t, access, []float64{2.5}, 1.2, 0.7)
	multi := mustMultiFile(t, [][]float64{access}, []float64{2.5}, []float64{1.2}, 0.7, PaperWeights)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		x := randomSimplex(rng, 3, 1)
		cs, err := single.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := multi.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cs-cm) > 1e-12 {
			t.Fatalf("trial %d: single %g vs multi %g", trial, cs, cm)
		}
		gs := make([]float64, 3)
		gm := make([]float64, 3)
		if err := single.Gradient(gs, x); err != nil {
			t.Fatal(err)
		}
		if err := multi.Gradient(gm, x); err != nil {
			t.Fatal(err)
		}
		for i := range gs {
			if math.Abs(gs[i]-gm[i]) > 1e-12 {
				t.Fatalf("trial %d: grad[%d]: single %g vs multi %g", trial, i, gs[i], gm[i])
			}
		}
	}
}

func TestMultiFileGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		files := 1 + rng.Intn(3)
		n := 2 + rng.Intn(5)
		access := make([][]float64, files)
		rates := make([]float64, files)
		var totalRate float64
		for f := range access {
			access[f] = make([]float64, n)
			for i := range access[f] {
				access[f][i] = rng.Float64() * 5
			}
			rates[f] = 0.2 + rng.Float64()*0.5
			totalRate += rates[f]
		}
		mu := totalRate + 0.5 + rng.Float64()*2
		scheme := PaperWeights
		if trial%2 == 0 {
			scheme = ShareWeights
		}
		m := mustMultiFile(t, access, []float64{mu}, rates, 0.4+rng.Float64(), scheme)
		x := make([]float64, m.Dim())
		for f := 0; f < files; f++ {
			part := randomSimplex(rng, n, 1)
			for i, v := range part {
				x[m.Index(f, i)] = v
			}
		}
		grad := make([]float64, m.Dim())
		if err := m.Gradient(grad, x); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		num := numericGradient(t, m.Utility, x, 1e-6)
		for i := range grad {
			if math.Abs(grad[i]-num[i]) > 1e-4*(1+math.Abs(num[i])) {
				t.Errorf("trial %d: grad[%d] = %g, numeric %g", trial, i, grad[i], num[i])
			}
		}
		hess := make([]float64, m.Dim())
		if err := m.SecondDerivative(hess, x); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for v := 0; v < m.Dim(); v++ {
			gfun := func(y []float64) (float64, error) {
				g := make([]float64, m.Dim())
				if err := m.Gradient(g, y); err != nil {
					return 0, err
				}
				return g[v], nil
			}
			num := numericGradient(t, gfun, x, 1e-6)
			if math.Abs(hess[v]-num[v]) > 1e-3*(1+math.Abs(num[v])) {
				t.Errorf("trial %d: hess[%d] = %g, numeric %g", trial, v, hess[v], num[v])
			}
		}
	}
}

func TestMultiFileGroupsAreContiguousPerFile(t *testing.T) {
	m := mustMultiFile(t,
		[][]float64{{1, 2}, {3, 4}, {5, 6}},
		[]float64{10}, []float64{1, 1, 1}, 1, PaperWeights)
	groups := m.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	for f, g := range groups {
		if len(g) != 2 {
			t.Fatalf("group %d has %d vars, want 2", f, len(g))
		}
		for i, idx := range g {
			if idx != m.Index(f, i) {
				t.Errorf("group %d[%d] = %d, want %d", f, i, idx, m.Index(f, i))
			}
		}
	}
	if m.Nodes() != 2 || m.Files() != 3 || m.Dim() != 6 {
		t.Errorf("shape accessors wrong: nodes=%d files=%d dim=%d", m.Nodes(), m.Files(), m.Dim())
	}
}

func TestMultiFileContentionCouplesFiles(t *testing.T) {
	// Two files, all communication costs zero: only queueing matters.
	// Stacking both files on node 0 must cost strictly more than
	// spreading them on separate nodes — the contention effect the paper
	// highlights in section 5.4.
	zero := []float64{0, 0}
	m := mustMultiFile(t, [][]float64{zero, zero}, []float64{3}, []float64{1, 1}, 1, PaperWeights)
	stacked := []float64{1, 0 /* file 0 */, 1, 0 /* file 1 */}
	spread := []float64{1, 0, 0, 1}
	cs, err := m.Cost(stacked)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Cost(spread)
	if err != nil {
		t.Fatal(err)
	}
	if cs <= cp {
		t.Errorf("stacked cost %g should exceed spread cost %g", cs, cp)
	}
	// Stacked: both files feed node 0's queue: 2·(1/(3−2)) = 2.
	if math.Abs(cs-2) > 1e-12 {
		t.Errorf("stacked cost = %g, want 2", cs)
	}
	// Spread: each node serves one file: 2·(1/(3−1)) = 1.
	if math.Abs(cp-1) > 1e-12 {
		t.Errorf("spread cost = %g, want 1", cp)
	}
}

func TestMultiFileSolveBalancesLoad(t *testing.T) {
	// Symmetric two-file, two-node system with no communication cost:
	// cost depends only on node loads, so the optimum is the continuum
	// of allocations with equal loads L_0 = L_1 = 1 and cost
	// 2·(1/(3−1)) = 1. The solver must reach some point of it while
	// conserving each file's total separately.
	zero := []float64{0, 0}
	m := mustMultiFile(t, [][]float64{zero, zero}, []float64{3}, []float64{1, 1}, 1, PaperWeights)
	alloc, err := core.NewAllocator(m, core.WithAlpha(0.1), core.WithEpsilon(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(context.Background(), []float64{1, 0, 0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	cost, err := m.Cost(res.X)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-1) > 1e-6 {
		t.Errorf("cost = %g, want 1 (balanced loads)", cost)
	}
	load0 := res.X[0] + res.X[2]
	load1 := res.X[1] + res.X[3]
	if math.Abs(load0-load1) > 1e-4 {
		t.Errorf("loads not balanced: %g vs %g", load0, load1)
	}
	if math.Abs(res.X[0]+res.X[1]-1) > 1e-9 || math.Abs(res.X[2]+res.X[3]-1) > 1e-9 {
		t.Errorf("per-file totals not conserved: %v", res.X)
	}
}

func TestMultiFileUnstable(t *testing.T) {
	zero := []float64{0, 0}
	m := mustMultiFile(t, [][]float64{zero, zero}, []float64{1.5}, []float64{1, 1}, 1, PaperWeights)
	// Both files at node 0: load 2 > μ.
	if _, err := m.Cost([]float64{1, 0, 1, 0}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Cost error = %v, want ErrUnstable", err)
	}
	grad := make([]float64, 4)
	if err := m.Gradient(grad, []float64{1, 0, 1, 0}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Gradient error = %v, want ErrUnstable", err)
	}
}

func TestMultiFileValidation(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}}
	tests := []struct {
		name   string
		access [][]float64
		mu     []float64
		rates  []float64
		k      float64
	}{
		{"no files", nil, []float64{1}, nil, 1},
		{"rate count mismatch", good, []float64{1}, []float64{1}, 1},
		{"ragged access", [][]float64{{1, 2}, {3}}, []float64{1}, []float64{1, 1}, 1},
		{"negative k", good, []float64{1}, []float64{1, 1}, -1},
		{"bad mu count", good, []float64{1, 1, 1}, []float64{1, 1}, 1},
		{"zero rate", good, []float64{1}, []float64{1, 0}, 1},
		{"negative access", [][]float64{{1, -2}, {3, 4}}, []float64{1}, []float64{1, 1}, 1},
		{"zero mu", good, []float64{0}, []float64{1, 1}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMultiFile(tt.access, tt.mu, tt.rates, tt.k, PaperWeights); !errors.Is(err, ErrBadParam) {
				t.Errorf("error = %v, want ErrBadParam", err)
			}
		})
	}
}

func TestMultiFileShareWeights(t *testing.T) {
	// With ShareWeights the cost is a weighted average over files: for
	// two identical files with rates 3 and 1, weights are 0.75/0.25.
	access := []float64{2, 2}
	m := mustMultiFile(t, [][]float64{access, access}, []float64{10}, []float64{3, 1}, 0, ShareWeights)
	c, err := m.Cost([]float64{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Pure communication: 0.75·2 + 0.25·2 = 2.
	if math.Abs(c-2) > 1e-12 {
		t.Errorf("cost = %g, want 2", c)
	}
}
