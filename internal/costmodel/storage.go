package costmodel

import "fmt"

// NewSingleFileWithStorage builds the equation-2 objective extended with
// per-node storage costs (section 8.2: "the cost of storage and copy
// maintenance will affect the optimal number of copies" — the same
// economics apply to fragments of a single copy when node storage prices
// differ). Holding fraction x_i at node i costs storageCosts[i]·x_i per
// access interval, which folds into the linear term exactly like a
// communication cost:
//
//	C(x) = Σ_i (C_i + s_i + k/(μ_i − λ·x_i))·x_i
//
// so all algorithm properties (feasibility, monotonicity, the Theorem-2
// bound with C'_i = C_i + s_i) carry over unchanged. Expensive storage
// pushes fragments toward cheap nodes even when they are farther away.
func NewSingleFileWithStorage(accessCosts, storageCosts, serviceRates []float64, lambda, k float64) (*SingleFile, error) {
	if len(storageCosts) != len(accessCosts) {
		return nil, fmt.Errorf("%w: %d storage costs for %d nodes", ErrBadParam, len(storageCosts), len(accessCosts))
	}
	combined := make([]float64, len(accessCosts))
	for i := range combined {
		if storageCosts[i] < 0 {
			return nil, fmt.Errorf("%w: storage cost s_%d = %v", ErrBadParam, i, storageCosts[i])
		}
		combined[i] = accessCosts[i] + storageCosts[i]
	}
	return NewSingleFile(combined, serviceRates, lambda, k)
}
