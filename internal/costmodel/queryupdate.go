package costmodel

import (
	"fmt"
	"math"
)

// QueryUpdateSpec describes a workload that distinguishes queries from
// updates (section 5.4: "Different costs for queries and updates can be
// easily taken into account by splitting the cost function into two
// separate costs ... and weighting these costs appropriately").
type QueryUpdateSpec struct {
	// QueryRates and UpdateRates hold per-node generation rates for the
	// two access classes.
	QueryRates  []float64
	UpdateRates []float64
	// QueryCosts and UpdateCosts hold the pairwise communication cost
	// matrices c_ij for each class (updates typically cost more: larger
	// payloads, write-ahead traffic).
	QueryCosts  [][]float64
	UpdateCosts [][]float64
	// QueryWeight and UpdateWeight scale the two classes' contribution
	// to the combined cost; both default to 1 when zero.
	QueryWeight  float64
	UpdateWeight float64
}

// Combine folds the two access classes into the effective per-node access
// costs C_i and total rate λ expected by NewSingleFile:
//
//	C_i = Σ_j (w_q·λ_j^q·c_ji^q + w_u·λ_j^u·c_ji^u) / λ,   λ = Σ_j (λ_j^q + λ_j^u)
//
// Both classes load the same queue, so λ is their sum.
func (s QueryUpdateSpec) Combine() (accessCosts []float64, lambda float64, err error) {
	n := len(s.QueryRates)
	if n == 0 || len(s.UpdateRates) != n {
		return nil, 0, fmt.Errorf("%w: query/update rate vectors must be equal-length and non-empty (%d, %d)",
			ErrBadParam, len(s.QueryRates), len(s.UpdateRates))
	}
	if len(s.QueryCosts) != n || len(s.UpdateCosts) != n {
		return nil, 0, fmt.Errorf("%w: cost matrices must be %d x %d", ErrBadParam, n, n)
	}
	wq, wu := s.QueryWeight, s.UpdateWeight
	if wq == 0 {
		wq = 1
	}
	if wu == 0 {
		wu = 1
	}
	if wq < 0 || wu < 0 {
		return nil, 0, fmt.Errorf("%w: negative class weight (query=%v, update=%v)", ErrBadParam, wq, wu)
	}
	for j := 0; j < n; j++ {
		if len(s.QueryCosts[j]) != n || len(s.UpdateCosts[j]) != n {
			return nil, 0, fmt.Errorf("%w: cost matrix row %d has wrong length", ErrBadParam, j)
		}
		if s.QueryRates[j] < 0 || s.UpdateRates[j] < 0 ||
			math.IsNaN(s.QueryRates[j]) || math.IsNaN(s.UpdateRates[j]) {
			return nil, 0, fmt.Errorf("%w: negative rate at node %d", ErrBadParam, j)
		}
		lambda += s.QueryRates[j] + s.UpdateRates[j]
	}
	if lambda <= 0 {
		return nil, 0, fmt.Errorf("%w: total access rate must be positive", ErrBadParam)
	}
	accessCosts = make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += wq*s.QueryRates[j]*s.QueryCosts[j][i] + wu*s.UpdateRates[j]*s.UpdateCosts[j][i]
		}
		accessCosts[i] = sum / lambda
	}
	return accessCosts, lambda, nil
}

// NewQueryUpdateSingleFile builds a SingleFile objective from a
// query/update workload.
func NewQueryUpdateSingleFile(spec QueryUpdateSpec, serviceRates []float64, k float64) (*SingleFile, error) {
	access, lambda, err := spec.Combine()
	if err != nil {
		return nil, err
	}
	return NewSingleFile(access, serviceRates, lambda, k)
}
