package trace

import (
	"errors"
	"math"
	"strings"
	"testing"

	"filealloc/internal/core"
)

func TestRecorderHook(t *testing.T) {
	r := NewRecorder(true)
	r.Hook(core.Iteration{Index: 0, X: []float64{1, 0}, Utility: -4, Alpha: 0.3})
	r.Hook(core.Iteration{Index: 1, X: []float64{0.6, 0.4}, Utility: -3, Spread: 0.5, Alpha: 0.3})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	pts := r.Points()
	if pts[0].Cost != 4 || pts[1].Cost != 3 {
		t.Errorf("costs = %v, %v, want 4, 3", pts[0].Cost, pts[1].Cost)
	}
	if pts[1].X[1] != 0.4 {
		t.Errorf("X not recorded: %v", pts[1].X)
	}
	costs := r.Costs()
	if len(costs) != 2 || costs[0] != 4 {
		t.Errorf("Costs = %v", costs)
	}
}

func TestRecorderCopiesX(t *testing.T) {
	r := NewRecorder(true)
	x := []float64{1, 0}
	r.Hook(core.Iteration{Index: 0, X: x, Utility: -1})
	x[0] = 99
	if r.Points()[0].X[0] != 1 {
		t.Error("recorder aliased the live allocation slice")
	}
}

func TestRecorderWithoutX(t *testing.T) {
	r := NewRecorder(false)
	r.Hook(core.Iteration{Index: 0, X: []float64{1}, Utility: -1})
	if r.Points()[0].X != nil {
		t.Error("X kept despite keepX=false")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(true)
	r.Hook(core.Iteration{Index: 0, X: []float64{0.5, 0.5}, Utility: -2, Alpha: 0.1})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "iteration,cost,spread,alpha,x0,x1\n") {
		t.Errorf("header wrong: %q", got)
	}
	if !strings.Contains(got, "0,2,0,0.1,0.5,0.5") {
		t.Errorf("row wrong: %q", got)
	}
	empty := NewRecorder(false)
	if err := empty.WriteCSV(&b); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty CSV error = %v, want ErrEmpty", err)
	}
}

func TestAsciiPlot(t *testing.T) {
	series := [][]float64{
		{4, 3, 2.9, 2.85, 2.8},
		{4, 3.5, 3.1, 2.95, 2.9, 2.85, 2.82, 2.8},
	}
	out, err := AsciiPlot(series, []string{"alpha=0.67", "alpha=0.3"}, 40, 10)
	if err != nil {
		t.Fatalf("AsciiPlot: %v", err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("plot missing series marks:\n%s", out)
	}
	if !strings.Contains(out, "alpha=0.67") {
		t.Errorf("plot missing legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Errorf("plot has %d lines, want ≥ 12", len(lines))
	}
}

func TestAsciiPlotErrors(t *testing.T) {
	if _, err := AsciiPlot(nil, nil, 40, 10); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: error = %v, want ErrEmpty", err)
	}
	if _, err := AsciiPlot([][]float64{{1}}, nil, 2, 1); err == nil {
		t.Error("tiny plot area accepted")
	}
	if _, err := AsciiPlot([][]float64{{math.NaN()}}, nil, 40, 10); err == nil {
		t.Error("NaN accepted")
	}
	// Flat series must not divide by zero.
	if _, err := AsciiPlot([][]float64{{2, 2, 2}}, nil, 40, 10); err != nil {
		t.Errorf("flat series: %v", err)
	}
}

func TestSparkline(t *testing.T) {
	out, err := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if err != nil {
		t.Fatalf("Sparkline: %v", err)
	}
	if out != "▁▂▃▄▅▆▇█" {
		t.Errorf("sparkline = %q", out)
	}
	if _, err := Sparkline(nil, 8); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: error = %v, want ErrEmpty", err)
	}
	if _, err := Sparkline([]float64{1}, 0); err == nil {
		t.Error("zero width accepted")
	}
	flat, err := Sparkline([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}
