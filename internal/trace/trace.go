// Package trace records and renders the iteration history of an
// allocation run: the cost/utility per iteration, the allocation path, and
// lightweight ASCII rendering used by the experiment binaries to reproduce
// the paper's convergence-profile figures in a terminal.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"filealloc/internal/core"
)

// ErrEmpty is returned when rendering an empty trace.
var ErrEmpty = errors.New("trace: empty")

// Point is one recorded iteration.
type Point struct {
	// Iteration is the step index (0 = initial allocation).
	Iteration int
	// Cost is the expected access cost (−Utility).
	Cost float64
	// Spread is the marginal-utility spread over the active set.
	Spread float64
	// Alpha is the stepsize used.
	Alpha float64
	// X is a copy of the allocation.
	X []float64
}

// Recorder accumulates iteration points; its Hook method plugs into
// core.WithTrace. The zero value is ready to use.
type Recorder struct {
	points []Point
	keepX  bool
}

// NewRecorder returns a Recorder; keepX controls whether allocation
// vectors are copied (costly for large N).
func NewRecorder(keepX bool) *Recorder {
	return &Recorder{keepX: keepX}
}

// Hook records one iteration; pass it to core.WithTrace.
func (r *Recorder) Hook(it core.Iteration) {
	p := Point{
		Iteration: it.Index,
		Cost:      -it.Utility,
		Spread:    it.Spread,
		Alpha:     it.Alpha,
	}
	if r.keepX {
		p.X = append([]float64(nil), it.X...)
	}
	r.points = append(r.points, p)
}

// Points returns the recorded history. The slice is owned by the Recorder;
// callers must not mutate it.
func (r *Recorder) Points() []Point { return r.points }

// Len returns the number of recorded points.
func (r *Recorder) Len() int { return len(r.points) }

// Costs returns the cost series.
func (r *Recorder) Costs() []float64 {
	out := make([]float64, len(r.points))
	for i, p := range r.points {
		out[i] = p.Cost
	}
	return out
}

// WriteCSV emits "iteration,cost,spread,alpha[,x0,x1,...]" rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if len(r.points) == 0 {
		return ErrEmpty
	}
	header := "iteration,cost,spread,alpha"
	if r.keepX && len(r.points[0].X) > 0 {
		for i := range r.points[0].X {
			header += fmt.Sprintf(",x%d", i)
		}
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, p := range r.points {
		row := fmt.Sprintf("%d,%g,%g,%g", p.Iteration, p.Cost, p.Spread, p.Alpha)
		for _, x := range p.X {
			row += fmt.Sprintf(",%g", x)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	return nil
}

// AsciiPlot renders series as a width×height ASCII line chart, one rune
// per series. Series may have different lengths; the x-axis spans the
// longest.
func AsciiPlot(series [][]float64, labels []string, width, height int) (string, error) {
	if len(series) == 0 {
		return "", ErrEmpty
	}
	if width < 8 || height < 2 {
		return "", fmt.Errorf("trace: plot area %dx%d too small", width, height)
	}
	marks := []rune("*o+x@#%&")
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return "", fmt.Errorf("trace: non-finite value %v in series", v)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if maxLen == 0 {
		return "", ErrEmpty
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, v := range s {
			col := 0
			if maxLen > 1 {
				col = i * (width - 1) / (maxLen - 1)
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4f ┤\n", hi)
	for _, row := range grid {
		fmt.Fprintf(&b, "%11s│%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4f ┤%s\n", lo, strings.Repeat("─", width))
	for si, label := range labels {
		if si >= len(series) {
			break
		}
		fmt.Fprintf(&b, "%11s%c = %s\n", "", marks[si%len(marks)], label)
	}
	return b.String(), nil
}

// Sparkline renders one series as a single line of block characters.
func Sparkline(s []float64, width int) (string, error) {
	if len(s) == 0 {
		return "", ErrEmpty
	}
	if width < 1 {
		return "", fmt.Errorf("trace: width %d too small", width)
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "", fmt.Errorf("trace: non-finite value %v in series", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	out := make([]rune, 0, width)
	for c := 0; c < width && c < len(s); c++ {
		idx := c * (len(s) - 1) / max(1, width-1)
		if width > len(s) {
			idx = c
		}
		v := s[idx]
		level := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		out = append(out, blocks[level])
	}
	return string(out), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
