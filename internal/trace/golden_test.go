package trace_test

// Golden-file tests pinning the ASCII renderings byte for byte. The series
// come from a real allocator run on a fixed instance, so the goldens double
// as a regression net over the whole render path: any drift in the solver
// trajectory, the Recorder, or the plot geometry shows up as a golden diff.
// Regenerate with `go test ./internal/trace -run Golden -update` after
// verifying the new output by eye.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace runs the paper's kind of single-file instance to convergence
// and returns the recorded history.
func goldenTrace(t *testing.T) *trace.Recorder {
	t.Helper()
	m, err := costmodel.NewSingleFile(
		[]float64{4, 2, 1, 0.5},
		[]float64{5, 5, 5, 5},
		2.0, 1.0,
	)
	if err != nil {
		t.Fatalf("building model: %v", err)
	}
	rec := trace.NewRecorder(true)
	alloc, err := core.NewAllocator(m,
		core.WithAlpha(0.15),
		core.WithEpsilon(1e-6),
		core.WithMaxIterations(200),
		core.WithTrace(rec.Hook),
	)
	if err != nil {
		t.Fatalf("building allocator: %v", err)
	}
	if _, err := alloc.Run(context.Background(), []float64{0.25, 0.25, 0.25, 0.25}); err != nil {
		t.Fatalf("running allocator: %v", err)
	}
	return rec
}

func TestAsciiPlotGolden(t *testing.T) {
	rec := goldenTrace(t)
	spreads := make([]float64, rec.Len())
	for i, p := range rec.Points() {
		spreads[i] = p.Spread
	}
	out, err := trace.AsciiPlot(
		[][]float64{rec.Costs(), spreads},
		[]string{"cost", "spread"},
		64, 16,
	)
	if err != nil {
		t.Fatalf("AsciiPlot: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "convergence.golden.txt"), []byte(out))
}

func TestSparklineGolden(t *testing.T) {
	rec := goldenTrace(t)
	out, err := trace.Sparkline(rec.Costs(), 48)
	if err != nil {
		t.Fatalf("Sparkline: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "sparkline.golden.txt"), []byte(out))
}

func TestWriteCSVGolden(t *testing.T) {
	rec := goldenTrace(t)
	var b bytes.Buffer
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "convergence.golden.csv"), b.Bytes())
}

// checkGolden compares got against the golden file byte-for-byte,
// rewriting the file under -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("creating golden dir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("writing golden file: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run `go test -update` after verifying):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
