package protocol

import (
	"encoding/json"
	"fmt"
)

// Aggregation-plane messages. The gossip package replaces the O(N²)
// broadcast round with tree or gossip aggregation: the round's step only
// needs the *average* marginal utility over the active set, a
// sum-and-count that combines associatively. These kinds carry the
// partial aggregates. Sum fields travel as double-double pairs (sum +
// compensation) so the combined mean stays within 1 ulp of the exact
// mean whatever the combine order; optional extrema travel with explicit
// presence fields (BoundCount, OutNode, HasInt, ...) instead of ±Inf
// sentinels so the JSON fallback encoding stays valid.
const (
	// KindAggUp carries a subtree's partial aggregate toward the root of
	// the spanning tree.
	KindAggUp Kind = "agg-up"
	// KindAggDown carries the root's combined result (and the active-set
	// decision derived from it) back down the tree.
	KindAggDown Kind = "agg-down"
	// KindGossipShare carries one push-sum share: (value, weight) halves
	// exchanged by the gossip aggregation mode.
	KindGossipShare Kind = "gossip-share"
	// KindGossipExtrema carries the flooded min/max state of the gossip
	// aggregation mode (idempotent, exact after diameter ticks).
	KindGossipExtrema Kind = "gossip-extrema"
)

// Aggregate is one subtree's contribution to a tree-aggregation pass:
// compensated sums of marginal utility, curvature and allocation, the
// active count, and the extrema the root needs for the active-set
// fixed point (paper section 5.2 steps (i)–(v)) and the feasible-step
// ratio test. Combine lives in the gossip package; this struct is only
// the wire shape.
type Aggregate struct {
	// SumG/SumGC is the double-double sum of marginal utilities over the
	// subtree's active nodes (principal + compensation).
	SumG  float64 `json:"sum_g"`
	SumGC float64 `json:"sum_gc,omitempty"`
	// SumH/SumHC is the double-double sum of curvatures over active nodes.
	SumH  float64 `json:"sum_h"`
	SumHC float64 `json:"sum_hc,omitempty"`
	// SumX/SumXC is the double-double sum of allocations over *all* alive
	// subtree nodes (feasibility bookkeeping, not just the active set).
	SumX  float64 `json:"sum_x"`
	SumXC float64 `json:"sum_xc,omitempty"`
	// Count is the number of active nodes aggregated.
	Count int `json:"count"`
	// MinG/MaxG are the marginal-utility extrema over active nodes
	// (valid iff Count > 0); the root derives the termination spread.
	MinG float64 `json:"min_g,omitempty"`
	MaxG float64 `json:"max_g,omitempty"`
	// BoundCount counts active nodes sitting on the non-negativity
	// boundary; BoundMinG is their minimum marginal utility (valid iff
	// BoundCount > 0). The root drops boundary nodes when BoundMinG ≤ avg.
	BoundCount int     `json:"bound_count,omitempty"`
	BoundMinG  float64 `json:"bound_min_g,omitempty"`
	// OutNode/OutG identify the excluded node with the highest marginal
	// utility (lowest id on ties, matching core.PlanStep's scan order);
	// OutNode is -1 when no node is excluded.
	OutNode int     `json:"out_node"`
	OutG    float64 `json:"out_g,omitempty"`
	// Changed counts nodes whose active flag flipped after the previous
	// pass's result; zero means the active set reached its fixed point.
	Changed int `json:"changed,omitempty"`
	// RatioCount/MinRatio carry the feasible-direction ratio test
	// min x_i / (α·(avg_prev − g_i)) over active nodes with g_i < avg_prev
	// (valid iff RatioCount > 0).
	RatioCount int     `json:"ratio_count,omitempty"`
	MinRatio   float64 `json:"min_ratio,omitempty"`
}

// AggUp is one node's (or subtree's) aggregate flowing up the tree.
type AggUp struct {
	Round int       `json:"round"`
	Pass  int       `json:"pass"`
	Epoch int       `json:"epoch"`
	Node  int       `json:"node"`
	Agg   Aggregate `json:"agg"`
}

// AggDown is the root's combined result for one pass, forwarded down the
// tree so every node applies the identical active-set decision.
type AggDown struct {
	Round int `json:"round"`
	Pass  int `json:"pass"`
	Epoch int `json:"epoch"`
	// Avg is the mean marginal utility over the active set, computed once
	// at the root so every node sees identical bits.
	Avg float64 `json:"avg"`
	// Count is the active-set size behind Avg.
	Count int `json:"count"`
	// Drop, when true, directs active boundary nodes with g ≤ Avg to
	// leave the active set this pass (no re-admission happens then).
	Drop bool `json:"drop,omitempty"`
	// Readmit names the single excluded node re-admitted this pass
	// (-1: none).
	Readmit int `json:"readmit"`
	// Final marks the pass that ends the round: the active set reached
	// its fixed point and the fields below are meaningful.
	Final bool `json:"final,omitempty"`
	// Truncation is the feasible-step scaling factor t ≤ 1.
	Truncation float64 `json:"truncation,omitempty"`
	// Spread is max−min marginal utility over the final active set.
	Spread float64 `json:"spread,omitempty"`
	// Converged reports spread < ε: nodes exit without applying a step.
	Converged bool `json:"converged,omitempty"`
	// NoOp reports a degenerate active set (≤ 1 member): the step moves
	// nothing and nodes exit unconverged, like core.Step.IsNoOp.
	NoOp bool `json:"no_op,omitempty"`
	// Renorm, when nonzero, is the factor every node multiplies its
	// fragment by after applying the step, repairing accumulated Σx drift.
	Renorm float64 `json:"renorm,omitempty"`
}

// GossipShare is one push-sum exchange: the sender keeps half of its
// (value, weight) state and ships the other half to one deterministic
// neighbor per tick. SG over WA estimates the active-set mean marginal;
// SX over WN estimates the mean allocation (feasibility repair). Sums
// are double-double so total mass is conserved to the last bit.
type GossipShare struct {
	Round int     `json:"round"`
	Tick  int     `json:"tick"`
	Epoch int     `json:"epoch"`
	Node  int     `json:"node"`
	SG    float64 `json:"sg"`
	SGC   float64 `json:"sgc,omitempty"`
	WA    float64 `json:"wa"`
	SX    float64 `json:"sx"`
	SXC   float64 `json:"sxc,omitempty"`
	WN    float64 `json:"wn"`
}

// GossipExtrema is the flooded min/max state of a gossip round: combining
// is idempotent, so after diameter ticks every node holds the exact
// extrema and the termination decision is identical everywhere.
type GossipExtrema struct {
	Round int `json:"round"`
	Tick  int `json:"tick"`
	Epoch int `json:"epoch"`
	Node  int `json:"node"`
	// HasInt guards IntMinG/IntMaxG, the marginal-utility extrema over
	// interior (active) nodes seen so far.
	HasInt  bool    `json:"has_int,omitempty"`
	IntMinG float64 `json:"int_min_g,omitempty"`
	IntMaxG float64 `json:"int_max_g,omitempty"`
	// BoundOK is the AND over boundary nodes of their local KKT check
	// (marginal utility not above the estimated average beyond slack).
	BoundOK bool `json:"bound_ok"`
	// HasOut guards OutG/OutNode, the best excluded node for re-admission.
	HasOut  bool    `json:"has_out,omitempty"`
	OutG    float64 `json:"out_g,omitempty"`
	OutNode int     `json:"out_node"`
}

// EncodeAggUp serializes an AggUp with the given codec.
func EncodeAggUp(c Codec, m AggUp) ([]byte, error) {
	return marshal(c, Envelope{Kind: KindAggUp, AggUp: &m})
}

// EncodeAggDown serializes an AggDown with the given codec.
func EncodeAggDown(c Codec, m AggDown) ([]byte, error) {
	return marshal(c, Envelope{Kind: KindAggDown, AggDown: &m})
}

// EncodeGossipShare serializes a GossipShare with the given codec.
func EncodeGossipShare(c Codec, m GossipShare) ([]byte, error) {
	return marshal(c, Envelope{Kind: KindGossipShare, GossipShare: &m})
}

// EncodeGossipExtrema serializes a GossipExtrema with the given codec.
func EncodeGossipExtrema(c Codec, m GossipExtrema) ([]byte, error) {
	return marshal(c, Envelope{Kind: KindGossipExtrema, GossipExtrema: &m})
}

// marshal dispatches on the codec.
func marshal(c Codec, env Envelope) ([]byte, error) {
	switch c {
	case CodecBinary:
		return EncodeBinary(env)
	case CodecJSON:
		return encodeJSONEnvelope(env)
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrBadMessage, int(c))
	}
}

// encodeJSONEnvelope serializes an Envelope in the JSON wire form.
func encodeJSONEnvelope(e Envelope) ([]byte, error) {
	b, err := json.Marshal(envelope{
		Kind:          e.Kind,
		Report:        e.Report,
		Update:        e.Update,
		Vector:        e.Vector,
		Access:        e.Access,
		AccessReply:   e.AccessReply,
		Plan:          e.Plan,
		PlanAck:       e.PlanAck,
		Ping:          e.Ping,
		Pong:          e.Pong,
		AggUp:         e.AggUp,
		AggDown:       e.AggDown,
		GossipShare:   e.GossipShare,
		GossipExtrema: e.GossipExtrema,
	})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding %s: %w", e.Kind, err)
	}
	return b, nil
}
