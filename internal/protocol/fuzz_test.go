package protocol

import (
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder: it must never
// panic, and whatever it accepts must carry a consistent envelope.
func FuzzDecode(f *testing.F) {
	seed, err := EncodeReport(Report{Round: 1, Node: 2, Marginal: -3.5, Alloc: 0.25})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	upd, err := EncodeUpdate(Update{Round: 9, Delta: []float64{0.1, -0.1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(upd)
	vec, err := EncodeVectorReport(VectorReport{Round: 3, Node: 0, Marginals: []float64{1}, Allocs: []float64{1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(vec)
	f.Add([]byte(`{"kind":"report"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"kind":"update","update":{"round":-1}}`))

	f.Fuzz(func(t *testing.T, payload []byte) {
		env, err := Decode(payload)
		if err != nil {
			return
		}
		switch env.Kind {
		case KindReport:
			if env.Report == nil {
				t.Fatal("report kind without report body")
			}
		case KindUpdate:
			if env.Update == nil {
				t.Fatal("update kind without update body")
			}
		case KindVectorReport:
			if env.Vector == nil {
				t.Fatal("vector kind without vector body")
			}
		default:
			t.Fatalf("accepted unknown kind %q", env.Kind)
		}
	})
}
