package protocol

import (
	"bytes"
	"errors"
	"testing"
)

// bodyCount returns the number of populated payload pointers; a decoded
// envelope must carry exactly one, matching its kind.
func bodyCount(env Envelope) int {
	n := 0
	for _, p := range []bool{
		env.Report != nil, env.Update != nil, env.Vector != nil,
		env.Access != nil, env.AccessReply != nil, env.Plan != nil,
		env.PlanAck != nil, env.Ping != nil, env.Pong != nil,
		env.AggUp != nil, env.AggDown != nil,
		env.GossipShare != nil, env.GossipExtrema != nil,
	} {
		if p {
			n++
		}
	}
	return n
}

// checkEnvelope asserts the decoded envelope is internally consistent:
// a known kind with exactly the matching body populated.
func checkEnvelope(t *testing.T, env Envelope) {
	t.Helper()
	if _, ok := kindToCode[env.Kind]; !ok {
		t.Fatalf("accepted unknown kind %q", env.Kind)
	}
	if n := bodyCount(env); n != 1 {
		t.Fatalf("decoded %s envelope carries %d bodies, want 1", env.Kind, n)
	}
	if _, err := EncodeBinary(env); err != nil {
		t.Fatalf("decoded %s envelope does not re-encode: %v", env.Kind, err)
	}
}

// FuzzDecode feeds arbitrary bytes to the wire decoder: it must never
// panic, and whatever it accepts — JSON envelope or binary frame — must
// carry a consistent envelope.
func FuzzDecode(f *testing.F) {
	seed, err := EncodeReport(Report{Round: 1, Node: 2, Marginal: -3.5, Alloc: 0.25})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	upd, err := EncodeUpdate(Update{Round: 9, Delta: []float64{0.1, -0.1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(upd)
	vec, err := EncodeVectorReport(VectorReport{Round: 3, Node: 0, Marginals: []float64{1}, Allocs: []float64{1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(vec)
	bin, err := EncodeBinary(Envelope{Kind: KindReport, Report: &Report{Round: 1, Node: 2, Marginal: -3.5}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin)
	f.Add([]byte(`{"kind":"report"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"kind":"update","update":{"round":-1}}`))
	f.Add([]byte{binMagic, BinaryVersion, codeAggDown, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		env, err := Decode(payload)
		if err != nil {
			return
		}
		checkEnvelope(t, env)
	})
}

// FuzzBinaryCodec is the binary round-trip target: arbitrary bytes must
// never panic the decoder, every accepted frame must survive
// decode→encode→decode with byte-identical canonical encoding (which
// covers NaN/Inf payloads byte-for-byte, where reflect.DeepEqual cannot),
// and every truncation of a valid frame must be rejected as
// ErrBadMessage.
func FuzzBinaryCodec(f *testing.F) {
	for _, env := range binarySeedEnvelopes() {
		frame, err := EncodeBinary(env)
		if err != nil {
			f.Fatalf("seeding %s: %v", env.Kind, err)
		}
		f.Add(frame)
	}
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, BinaryVersion})
	f.Add([]byte{binMagic, BinaryVersion + 1, codeReport, 0})
	f.Add([]byte{binMagic, BinaryVersion, 255, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		env, err := Decode(payload)
		if err != nil {
			if IsBinary(payload) && !errors.Is(err, ErrBadMessage) {
				t.Fatalf("binary decode failed with a non-ErrBadMessage error: %v", err)
			}
			return
		}
		checkEnvelope(t, env)
		if !IsBinary(payload) {
			return
		}
		// Canonical round trip: re-encoding the decoded envelope must
		// reproduce itself exactly.
		enc1, err := EncodeBinary(env)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		env2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("decoding re-encoded frame: %v", err)
		}
		enc2, err := EncodeBinary(env2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("binary round trip is not a fixed point:\n  %x\n  %x", enc1, enc2)
		}
		// Every strict prefix of a valid frame is truncated, and must be
		// ErrBadMessage — never a panic, never a silent partial decode.
		for cut := 0; cut < len(enc1); cut++ {
			if _, err := Decode(enc1[:cut]); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("truncated frame (%d of %d bytes) decoded with err=%v, want ErrBadMessage", cut, len(enc1), err)
			}
		}
	})
}
