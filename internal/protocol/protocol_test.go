package protocol

import (
	"errors"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	in := Report{Round: 7, Node: 3, Marginal: -2.718281828459045, Alloc: 0.1}
	payload, err := EncodeReport(in)
	if err != nil {
		t.Fatalf("EncodeReport: %v", err)
	}
	env, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if env.Kind != KindReport || env.Update != nil {
		t.Fatalf("kind = %v, update = %v", env.Kind, env.Update)
	}
	if *env.Report != in {
		t.Errorf("round trip = %+v, want %+v", *env.Report, in)
	}
}

func TestReportFloatExactness(t *testing.T) {
	// The protocol's determinism depends on float64 values surviving the
	// wire bit-exactly; Go's JSON encoder guarantees shortest
	// round-tripping representations.
	values := []float64{
		-2.9387528349794507,
		1.0 / 3,
		0.1 + 0.2,
		5e-324, // smallest denormal
	}
	for _, v := range values {
		payload, err := EncodeReport(Report{Marginal: v, Alloc: v})
		if err != nil {
			t.Fatal(err)
		}
		env, err := Decode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if env.Report.Marginal != v || env.Report.Alloc != v {
			t.Errorf("value %v did not survive the wire: %v / %v", v, env.Report.Marginal, env.Report.Alloc)
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := Update{Round: 2, Delta: []float64{0.1, -0.05, -0.05}, Done: true}
	payload, err := EncodeUpdate(in)
	if err != nil {
		t.Fatalf("EncodeUpdate: %v", err)
	}
	env, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if env.Kind != KindUpdate || env.Report != nil {
		t.Fatalf("kind = %v, report = %v", env.Kind, env.Report)
	}
	if env.Update.Round != 2 || !env.Update.Done || len(env.Update.Delta) != 3 {
		t.Errorf("round trip = %+v", *env.Update)
	}
}

func TestVectorReportRoundTrip(t *testing.T) {
	in := VectorReport{
		Round:     4,
		Node:      2,
		Marginals: []float64{-1.5, -2.25, -0.125},
		Allocs:    []float64{0.5, 0.25, 0.25},
	}
	payload, err := EncodeVectorReport(in)
	if err != nil {
		t.Fatalf("EncodeVectorReport: %v", err)
	}
	env, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if env.Kind != KindVectorReport || env.Vector == nil {
		t.Fatalf("kind = %v", env.Kind)
	}
	got := env.Vector
	if got.Round != in.Round || got.Node != in.Node {
		t.Errorf("round trip = %+v", got)
	}
	for f := range in.Marginals {
		if got.Marginals[f] != in.Marginals[f] || got.Allocs[f] != in.Allocs[f] {
			t.Errorf("entry %d did not survive: %+v", f, got)
		}
	}
}

func TestVectorRoundBuffer(t *testing.T) {
	buf := NewVectorRoundBuffer(3)
	if err := buf.Add(VectorReport{Round: 0, Node: 1, Marginals: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := buf.Add(VectorReport{Round: 0, Node: 1}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("conflicting duplicate: error = %v", err)
	}
	if err := buf.Add(VectorReport{Round: 0, Node: 1, Marginals: []float64{1}}); !errors.Is(err, ErrDuplicateReport) {
		t.Errorf("identical duplicate: error = %v, want ErrDuplicateReport", err)
	}
	if err := buf.Add(VectorReport{Round: 0, Node: 9}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("stranger: error = %v", err)
	}
	if buf.Complete(0, 2) {
		t.Error("complete with one report")
	}
	if err := buf.Add(VectorReport{Round: 0, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if !buf.Complete(0, 2) {
		t.Error("not complete with both")
	}
	got := buf.Take(0)
	if len(got) != 2 || got[1].Marginals[0] != 1 {
		t.Errorf("Take = %+v", got)
	}
	if buf.Complete(0, 1) {
		t.Error("round not cleared after Take")
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name    string
		payload []byte
	}{
		{"garbage", []byte("{{{{")},
		{"unknown kind", []byte(`{"kind":"gossip"}`)},
		{"report without body", []byte(`{"kind":"report"}`)},
		{"update without body", []byte(`{"kind":"update"}`)},
		{"vector without body", []byte(`{"kind":"vector-report"}`)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.payload); !errors.Is(err, ErrBadMessage) {
				t.Errorf("error = %v, want ErrBadMessage", err)
			}
		})
	}
}

func TestRoundBufferCollects(t *testing.T) {
	buf := NewRoundBuffer(3)
	if buf.Complete(0, 2) {
		t.Error("empty buffer reported complete")
	}
	if err := buf.Add(Report{Round: 0, Node: 1}); err != nil {
		t.Fatal(err)
	}
	// A peer running one round ahead must not satisfy round 0.
	if err := buf.Add(Report{Round: 1, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if buf.Complete(0, 2) {
		t.Error("round 0 complete with a round-1 report")
	}
	if err := buf.Add(Report{Round: 0, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if !buf.Complete(0, 2) {
		t.Error("round 0 not complete with both reports")
	}
	got := buf.Take(0)
	if len(got) != 2 || got[1].Round != 0 || got[2].Round != 0 {
		t.Errorf("Take = %+v", got)
	}
	// Round 1's early report is still buffered.
	if !buf.Complete(1, 1) {
		t.Error("round 1 early report lost")
	}
}

func TestRoundBufferRejectsDuplicatesAndStrangers(t *testing.T) {
	buf := NewRoundBuffer(2)
	if err := buf.Add(Report{Round: 0, Node: 1}); err != nil {
		t.Fatal(err)
	}
	// Identical re-delivery is benign (at-least-once transports); the
	// buffer flags it with the discardable sentinel.
	if err := buf.Add(Report{Round: 0, Node: 1}); !errors.Is(err, ErrDuplicateReport) {
		t.Errorf("identical duplicate: error = %v, want ErrDuplicateReport", err)
	}
	if got := buf.Count(0); got != 1 {
		t.Errorf("Count after duplicate = %d, want 1", got)
	}
	// A conflicting duplicate is a protocol violation.
	if err := buf.Add(Report{Round: 0, Node: 1, Marginal: -3}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("conflicting duplicate: error = %v, want ErrBadMessage", err)
	}
	if err := buf.Add(Report{Round: 0, Node: 5}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("stranger: error = %v, want ErrBadMessage", err)
	}
}

func TestRoundOf(t *testing.T) {
	rep, err := EncodeReport(Report{Round: 3, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if round, ok := RoundOf(rep); !ok || round != 3 {
		t.Errorf("report RoundOf = %d, %v", round, ok)
	}
	upd, err := EncodeUpdate(Update{Round: 9})
	if err != nil {
		t.Fatal(err)
	}
	if round, ok := RoundOf(upd); !ok || round != 9 {
		t.Errorf("update RoundOf = %d, %v", round, ok)
	}
	vec, err := EncodeVectorReport(VectorReport{Round: 5, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	if round, ok := RoundOf(vec); !ok || round != 5 {
		t.Errorf("vector RoundOf = %d, %v", round, ok)
	}
	if _, ok := RoundOf([]byte("not a protocol message")); ok {
		t.Error("garbage payload reported a round")
	}
}
