package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary wire codec. A binary payload is one length-prefixed frame:
//
//	[0] magic 0xFB     — never the first byte of a JSON payload, so
//	                     Decode auto-detects the codec per message and a
//	                     JSON-only peer interoperates unchanged
//	[1] version        — currently BinaryVersion; unknown versions are
//	                     ErrBadMessage, not a guess
//	[2] kind code      — one byte per Kind
//	[3..] body length  — uvarint
//	[..]  body         — fields in declaration order: signed ints as
//	                     zigzag varints, counts/ids-with-known-sign as
//	                     uvarints, float64 as its IEEE-754 bit pattern in
//	                     8 little-endian bytes (NaN and ±Inf round-trip,
//	                     unlike JSON), bools as one byte, slices and
//	                     strings as a uvarint count plus elements
//
// The declared body length must match the frame exactly: truncated or
// over-long frames are ErrBadMessage. The codec has no per-field tags —
// both sides must agree on the version byte, which is the point of it.
const (
	binMagic byte = 0xFB
	// BinaryVersion is the codec version this build writes and accepts.
	BinaryVersion byte = 1
)

// Codec selects a wire encoding for protocol messages. Decode accepts
// either codec regardless of what the local side writes, so mixed
// clusters interoperate; the codec choice only controls encoding.
type Codec int

const (
	// CodecJSON is the original self-describing JSON envelope.
	CodecJSON Codec = iota
	// CodecBinary is the length-prefixed binary frame above.
	CodecBinary
)

func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// kind codes, one byte per Kind. Codes are part of the wire format:
// never renumber, only append.
const (
	codeReport        byte = 1
	codeUpdate        byte = 2
	codeVectorReport  byte = 3
	codeAccess        byte = 4
	codeAccessReply   byte = 5
	codePlan          byte = 6
	codePlanAck       byte = 7
	codePing          byte = 8
	codePong          byte = 9
	codeAggUp         byte = 10
	codeAggDown       byte = 11
	codeGossipShare   byte = 12
	codeGossipExtrema byte = 13
)

var kindToCode = map[Kind]byte{
	KindReport:        codeReport,
	KindUpdate:        codeUpdate,
	KindVectorReport:  codeVectorReport,
	KindAccess:        codeAccess,
	KindAccessReply:   codeAccessReply,
	KindPlan:          codePlan,
	KindPlanAck:       codePlanAck,
	KindPing:          codePing,
	KindPong:          codePong,
	KindAggUp:         codeAggUp,
	KindAggDown:       codeAggDown,
	KindGossipShare:   codeGossipShare,
	KindGossipExtrema: codeGossipExtrema,
}

// IsBinary reports whether a payload carries the binary frame magic.
// Transport layers use it to account codec mix without decoding.
func IsBinary(payload []byte) bool {
	return len(payload) > 0 && payload[0] == binMagic
}

// EncodeBinary serializes an Envelope as one binary frame. Exactly one
// payload field matching Kind must be non-nil, as with decoded envelopes.
func EncodeBinary(e Envelope) ([]byte, error) {
	code, ok := kindToCode[e.Kind]
	if !ok {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadMessage, e.Kind)
	}
	var w binWriter
	switch e.Kind {
	case KindReport:
		if e.Report == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Report
		w.varint(int64(m.Round))
		w.varint(int64(m.Node))
		w.float(m.Marginal)
		w.float(m.Alloc)
		w.float(m.Curvature)
		w.uvarint(m.Planned)
	case KindUpdate:
		if e.Update == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Update
		w.varint(int64(m.Round))
		w.boolean(m.Done)
		w.floats(m.Delta)
	case KindVectorReport:
		if e.Vector == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Vector
		w.varint(int64(m.Round))
		w.varint(int64(m.Node))
		w.floats(m.Marginals)
		w.floats(m.Allocs)
	case KindAccess:
		if e.Access == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Access
		w.uvarint(m.ID)
		w.varint(int64(m.Origin))
		w.float(m.T)
		w.varint(int64(m.Epoch))
	case KindAccessReply:
		if e.AccessReply == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.AccessReply
		w.uvarint(m.ID)
		w.varint(int64(m.Node))
		w.varint(int64(m.Origin))
		w.varint(int64(m.Epoch))
		w.varint(m.LatencyMicros)
		w.boolean(m.Degraded)
		w.str(m.Err)
	case KindPlan:
		if e.Plan == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Plan
		w.uvarint(m.ID)
		w.varint(int64(m.Epoch))
		w.floats(m.X)
		w.bools(m.Alive)
		w.boolean(m.Degraded)
		w.float(m.Lambda)
		w.float(m.Q)
	case KindPlanAck:
		if e.PlanAck == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.PlanAck
		w.uvarint(m.ID)
		w.varint(int64(m.Epoch))
		w.varint(int64(m.Node))
	case KindPing:
		if e.Ping == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Ping
		w.uvarint(m.ID)
		w.float(m.T)
	case KindPong:
		if e.Pong == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.Pong
		w.uvarint(m.ID)
		w.varint(int64(m.Node))
		w.varint(int64(m.Epoch))
		w.floats(m.Rates)
	case KindAggUp:
		if e.AggUp == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.AggUp
		w.varint(int64(m.Round))
		w.varint(int64(m.Pass))
		w.varint(int64(m.Epoch))
		w.varint(int64(m.Node))
		w.aggregate(m.Agg)
	case KindAggDown:
		if e.AggDown == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.AggDown
		w.varint(int64(m.Round))
		w.varint(int64(m.Pass))
		w.varint(int64(m.Epoch))
		w.float(m.Avg)
		w.varint(int64(m.Count))
		w.boolean(m.Drop)
		w.varint(int64(m.Readmit))
		w.boolean(m.Final)
		w.float(m.Truncation)
		w.float(m.Spread)
		w.boolean(m.Converged)
		w.boolean(m.NoOp)
		w.float(m.Renorm)
	case KindGossipShare:
		if e.GossipShare == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.GossipShare
		w.varint(int64(m.Round))
		w.varint(int64(m.Tick))
		w.varint(int64(m.Epoch))
		w.varint(int64(m.Node))
		w.float(m.SG)
		w.float(m.SGC)
		w.float(m.WA)
		w.float(m.SX)
		w.float(m.SXC)
		w.float(m.WN)
	case KindGossipExtrema:
		if e.GossipExtrema == nil {
			return nil, fmt.Errorf("%w: %s envelope without body", ErrBadMessage, e.Kind)
		}
		m := e.GossipExtrema
		w.varint(int64(m.Round))
		w.varint(int64(m.Tick))
		w.varint(int64(m.Epoch))
		w.varint(int64(m.Node))
		w.boolean(m.HasInt)
		w.float(m.IntMinG)
		w.float(m.IntMaxG)
		w.boolean(m.BoundOK)
		w.boolean(m.HasOut)
		w.float(m.OutG)
		w.varint(int64(m.OutNode))
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadMessage, e.Kind)
	}
	frame := make([]byte, 0, len(w.buf)+3+binary.MaxVarintLen64)
	frame = append(frame, binMagic, BinaryVersion, code)
	frame = binary.AppendUvarint(frame, uint64(len(w.buf)))
	frame = append(frame, w.buf...)
	return frame, nil
}

// decodeBinary parses one binary frame. The caller has already checked
// the magic byte.
func decodeBinary(payload []byte) (Envelope, error) {
	if len(payload) < 3 {
		return Envelope{}, fmt.Errorf("%w: binary frame truncated at %d bytes", ErrBadMessage, len(payload))
	}
	if payload[1] != BinaryVersion {
		return Envelope{}, fmt.Errorf("%w: binary frame version %d, want %d", ErrBadMessage, payload[1], BinaryVersion)
	}
	code := payload[2]
	size, n := binary.Uvarint(payload[3:])
	if n <= 0 {
		return Envelope{}, fmt.Errorf("%w: binary frame has no length prefix", ErrBadMessage)
	}
	body := payload[3+n:]
	if uint64(len(body)) != size {
		return Envelope{}, fmt.Errorf("%w: binary frame declares %d body bytes, carries %d", ErrBadMessage, size, len(body))
	}
	r := &binReader{buf: body}
	env, err := decodeBinaryBody(code, r)
	if err != nil {
		return Envelope{}, err
	}
	if r.off != len(r.buf) {
		return Envelope{}, fmt.Errorf("%w: binary frame has %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return env, nil
}

func decodeBinaryBody(code byte, r *binReader) (Envelope, error) {
	switch code {
	case codeReport:
		var m Report
		m.Round = r.intField()
		m.Node = r.intField()
		m.Marginal = r.float()
		m.Alloc = r.float()
		m.Curvature = r.float()
		m.Planned = r.uvarint()
		return Envelope{Kind: KindReport, Report: &m}, r.err
	case codeUpdate:
		var m Update
		m.Round = r.intField()
		m.Done = r.boolean()
		m.Delta = r.floats()
		return Envelope{Kind: KindUpdate, Update: &m}, r.err
	case codeVectorReport:
		var m VectorReport
		m.Round = r.intField()
		m.Node = r.intField()
		m.Marginals = r.floats()
		m.Allocs = r.floats()
		return Envelope{Kind: KindVectorReport, Vector: &m}, r.err
	case codeAccess:
		var m Access
		m.ID = r.uvarint()
		m.Origin = r.intField()
		m.T = r.float()
		m.Epoch = r.intField()
		return Envelope{Kind: KindAccess, Access: &m}, r.err
	case codeAccessReply:
		var m AccessReply
		m.ID = r.uvarint()
		m.Node = r.intField()
		m.Origin = r.intField()
		m.Epoch = r.intField()
		m.LatencyMicros = r.varint()
		m.Degraded = r.boolean()
		m.Err = r.str()
		return Envelope{Kind: KindAccessReply, AccessReply: &m}, r.err
	case codePlan:
		var m Plan
		m.ID = r.uvarint()
		m.Epoch = r.intField()
		m.X = r.floats()
		m.Alive = r.bools()
		m.Degraded = r.boolean()
		m.Lambda = r.float()
		m.Q = r.float()
		return Envelope{Kind: KindPlan, Plan: &m}, r.err
	case codePlanAck:
		var m PlanAck
		m.ID = r.uvarint()
		m.Epoch = r.intField()
		m.Node = r.intField()
		return Envelope{Kind: KindPlanAck, PlanAck: &m}, r.err
	case codePing:
		var m Ping
		m.ID = r.uvarint()
		m.T = r.float()
		return Envelope{Kind: KindPing, Ping: &m}, r.err
	case codePong:
		var m Pong
		m.ID = r.uvarint()
		m.Node = r.intField()
		m.Epoch = r.intField()
		m.Rates = r.floats()
		return Envelope{Kind: KindPong, Pong: &m}, r.err
	case codeAggUp:
		var m AggUp
		m.Round = r.intField()
		m.Pass = r.intField()
		m.Epoch = r.intField()
		m.Node = r.intField()
		m.Agg = r.aggregate()
		return Envelope{Kind: KindAggUp, AggUp: &m}, r.err
	case codeAggDown:
		var m AggDown
		m.Round = r.intField()
		m.Pass = r.intField()
		m.Epoch = r.intField()
		m.Avg = r.float()
		m.Count = r.intField()
		m.Drop = r.boolean()
		m.Readmit = r.intField()
		m.Final = r.boolean()
		m.Truncation = r.float()
		m.Spread = r.float()
		m.Converged = r.boolean()
		m.NoOp = r.boolean()
		m.Renorm = r.float()
		return Envelope{Kind: KindAggDown, AggDown: &m}, r.err
	case codeGossipShare:
		var m GossipShare
		m.Round = r.intField()
		m.Tick = r.intField()
		m.Epoch = r.intField()
		m.Node = r.intField()
		m.SG = r.float()
		m.SGC = r.float()
		m.WA = r.float()
		m.SX = r.float()
		m.SXC = r.float()
		m.WN = r.float()
		return Envelope{Kind: KindGossipShare, GossipShare: &m}, r.err
	case codeGossipExtrema:
		var m GossipExtrema
		m.Round = r.intField()
		m.Tick = r.intField()
		m.Epoch = r.intField()
		m.Node = r.intField()
		m.HasInt = r.boolean()
		m.IntMinG = r.float()
		m.IntMaxG = r.float()
		m.BoundOK = r.boolean()
		m.HasOut = r.boolean()
		m.OutG = r.float()
		m.OutNode = r.intField()
		return Envelope{Kind: KindGossipExtrema, GossipExtrema: &m}, r.err
	default:
		return Envelope{}, fmt.Errorf("%w: unknown binary kind code %d", ErrBadMessage, code)
	}
}

// binWriter accumulates a frame body.
type binWriter struct {
	buf []byte
}

func (w *binWriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *binWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *binWriter) float(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *binWriter) boolean(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *binWriter) floats(vs []float64) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.float(v)
	}
}

func (w *binWriter) bools(vs []bool) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.boolean(v)
	}
}

func (w *binWriter) aggregate(a Aggregate) {
	w.float(a.SumG)
	w.float(a.SumGC)
	w.float(a.SumH)
	w.float(a.SumHC)
	w.float(a.SumX)
	w.float(a.SumXC)
	w.varint(int64(a.Count))
	w.float(a.MinG)
	w.float(a.MaxG)
	w.varint(int64(a.BoundCount))
	w.float(a.BoundMinG)
	w.varint(int64(a.OutNode))
	w.float(a.OutG)
	w.varint(int64(a.Changed))
	w.varint(int64(a.RatioCount))
	w.float(a.MinRatio)
}

// binReader consumes a frame body, latching the first error: every read
// after a failure returns a zero value, so decode call sites stay linear
// and the final r.err check is the single truncation test.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at byte %d", ErrBadMessage, what, r.off)
	}
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// intField reads a varint and narrows it to int, rejecting values that
// do not fit (a hostile frame must not silently wrap indices).
func (r *binReader) intField() int {
	v := r.varint()
	if r.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		r.err = fmt.Errorf("%w: integer field %d out of range", ErrBadMessage, v)
		return 0
	}
	return int(v)
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) boolean() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.err = fmt.Errorf("%w: bool byte %d", ErrBadMessage, b)
		return false
	}
	return b == 1
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *binReader) floats() []float64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each element takes 8 bytes; a count beyond the remaining body is a
	// lie, rejected before any allocation sized by attacker input.
	if n > uint64(len(r.buf)-r.off)/8 {
		r.fail("float64 slice")
		return nil
	}
	if n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.float()
	}
	return vs
}

func (r *binReader) bools() []bool {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("bool slice")
		return nil
	}
	if n == 0 {
		return nil
	}
	vs := make([]bool, n)
	for i := range vs {
		vs[i] = r.boolean()
	}
	return vs
}

func (r *binReader) aggregate() Aggregate {
	var a Aggregate
	a.SumG = r.float()
	a.SumGC = r.float()
	a.SumH = r.float()
	a.SumHC = r.float()
	a.SumX = r.float()
	a.SumXC = r.float()
	a.Count = r.intField()
	a.MinG = r.float()
	a.MaxG = r.float()
	a.BoundCount = r.intField()
	a.BoundMinG = r.float()
	a.OutNode = r.intField()
	a.OutG = r.float()
	a.Changed = r.intField()
	a.RatioCount = r.intField()
	a.MinRatio = r.float()
	return a
}
