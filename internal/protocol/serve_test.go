package protocol

import (
	"math"
	"reflect"
	"testing"
)

func TestServeMessageRoundTrips(t *testing.T) {
	access := Access{ID: 42, Origin: 3, T: 7, Epoch: 2}
	reply := AccessReply{ID: 42, Node: 1, Origin: 3, Epoch: 2, LatencyMicros: 1500, Degraded: true}
	plan := Plan{ID: 9, Epoch: 4, X: []float64{0.5, 0.5, 0}, Alive: []bool{true, true, false}, Degraded: true, Lambda: 12, Q: 3.25}
	ack := PlanAck{ID: 9, Epoch: 4, Node: 2}
	ping := Ping{ID: 77, T: 8}
	pong := Pong{ID: 77, Node: 2, Epoch: 4, Rates: []float64{1, 2, 3}}

	cases := []struct {
		name   string
		encode func() ([]byte, error)
		kind   Kind
		check  func(t *testing.T, env Envelope)
	}{
		{"access", func() ([]byte, error) { return EncodeAccess(access) }, KindAccess,
			func(t *testing.T, env Envelope) {
				if !reflect.DeepEqual(*env.Access, access) {
					t.Fatalf("access round trip: got %+v", *env.Access)
				}
			}},
		{"access-reply", func() ([]byte, error) { return EncodeAccessReply(reply) }, KindAccessReply,
			func(t *testing.T, env Envelope) {
				if !reflect.DeepEqual(*env.AccessReply, reply) {
					t.Fatalf("access reply round trip: got %+v", *env.AccessReply)
				}
			}},
		{"plan", func() ([]byte, error) { return EncodePlan(plan) }, KindPlan,
			func(t *testing.T, env Envelope) {
				if !reflect.DeepEqual(*env.Plan, plan) {
					t.Fatalf("plan round trip: got %+v", *env.Plan)
				}
			}},
		{"plan-ack", func() ([]byte, error) { return EncodePlanAck(ack) }, KindPlanAck,
			func(t *testing.T, env Envelope) {
				if !reflect.DeepEqual(*env.PlanAck, ack) {
					t.Fatalf("plan ack round trip: got %+v", *env.PlanAck)
				}
			}},
		{"ping", func() ([]byte, error) { return EncodePing(ping) }, KindPing,
			func(t *testing.T, env Envelope) {
				if !reflect.DeepEqual(*env.Ping, ping) {
					t.Fatalf("ping round trip: got %+v", *env.Ping)
				}
			}},
		{"pong", func() ([]byte, error) { return EncodePong(pong) }, KindPong,
			func(t *testing.T, env Envelope) {
				if !reflect.DeepEqual(*env.Pong, pong) {
					t.Fatalf("pong round trip: got %+v", *env.Pong)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := tc.encode()
			if err != nil {
				t.Fatalf("encoding: %v", err)
			}
			env, err := Decode(b)
			if err != nil {
				t.Fatalf("decoding: %v", err)
			}
			if env.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q", env.Kind, tc.kind)
			}
			tc.check(t, env)
		})
	}
}

func TestReplyIDOf(t *testing.T) {
	replyB, err := EncodeAccessReply(AccessReply{ID: 11})
	if err != nil {
		t.Fatal(err)
	}
	ackB, err := EncodePlanAck(PlanAck{ID: 22})
	if err != nil {
		t.Fatal(err)
	}
	pongB, err := EncodePong(Pong{ID: 33})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		payload []byte
		id      uint64
	}{{replyB, 11}, {ackB, 22}, {pongB, 33}} {
		id, ok := ReplyIDOf(tc.payload)
		if !ok || id != tc.id {
			t.Fatalf("ReplyIDOf = (%d, %v), want (%d, true)", id, ok, tc.id)
		}
	}

	// Request kinds and garbage carry no reply ID.
	accessB, err := EncodeAccess(Access{ID: 44})
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{accessB, []byte("not json"), nil} {
		if id, ok := ReplyIDOf(payload); ok {
			t.Fatalf("ReplyIDOf(%q) = (%d, true), want false", payload, id)
		}
	}
}

// TestEncodeRejectsNonFiniteFloats pins the encoders' error path: JSON
// has no representation for NaN, and a non-finite number in a protocol
// message is always an upstream bug worth failing loudly on.
func TestEncodeRejectsNonFiniteFloats(t *testing.T) {
	nan := math.NaN()
	for name, encode := range map[string]func() error{
		"access":        func() error { _, err := EncodeAccess(Access{T: nan}); return err },
		"plan":          func() error { _, err := EncodePlan(Plan{X: []float64{nan}}); return err },
		"ping":          func() error { _, err := EncodePing(Ping{T: nan}); return err },
		"pong":          func() error { _, err := EncodePong(Pong{Rates: []float64{nan}}); return err },
		"report":        func() error { _, err := EncodeReport(Report{Marginal: nan}); return err },
		"update":        func() error { _, err := EncodeUpdate(Update{Delta: []float64{nan}}); return err },
		"vector-report": func() error { _, err := EncodeVectorReport(VectorReport{Marginals: []float64{nan}}); return err },
	} {
		if err := encode(); err == nil {
			t.Errorf("%s: NaN encoded without error", name)
		}
	}
}
