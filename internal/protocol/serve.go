package protocol

import (
	"encoding/json"
	"fmt"
)

// Serving-plane messages. The batch protocol (report/update) computes an
// allocation once; these kinds keep a converged cluster *serving*: access
// requests routed by the current plan, heartbeats feeding a failure
// detector, and plan distribution for live re-solves. Every request kind
// carries a caller-assigned ID echoed verbatim by its reply kind, so a
// client can correlate replies without the transport layer knowing the
// protocol (see ReplyIDOf).
const (
	// KindAccess is a client access request: "serve one unit of file
	// access on behalf of origin node Origin".
	KindAccess Kind = "access"
	// KindAccessReply answers an access with the serving node's
	// model-derived latency.
	KindAccessReply Kind = "access-reply"
	// KindPlan distributes a (re-)solved allocation to a serving node.
	KindPlan Kind = "plan"
	// KindPlanAck acknowledges adoption of a plan epoch.
	KindPlanAck Kind = "plan-ack"
	// KindPing is a heartbeat probe.
	KindPing Kind = "ping"
	// KindPong answers a ping with the node's current epoch and its
	// locally sensed per-origin demand rates.
	KindPong Kind = "pong"
)

// Access asks the receiving node to serve one file access. T is the
// virtual timestamp of the request (the load generator's tick clock, not
// wall time) — the serving node feeds it to its demand estimator. Epoch
// is the plan epoch the sender routed under; receivers serve regardless
// of any mismatch (stale routing is repaired by the next plan, never
// punished with an error).
type Access struct {
	ID     uint64  `json:"id"`
	Origin int     `json:"origin"`
	T      float64 `json:"t"`
	Epoch  int     `json:"epoch"`
}

// AccessReply reports the serving outcome. LatencyMicros is the
// model-derived access latency in integer microseconds: transfer cost
// d(origin, node) plus the M/M/1 waiting term at the serving node, both
// pure functions of protocol state so reports stay byte-deterministic.
type AccessReply struct {
	ID            uint64 `json:"id"`
	Node          int    `json:"node"`
	Origin        int    `json:"origin"`
	Epoch         int    `json:"epoch"`
	LatencyMicros int64  `json:"latency_micros"`
	Degraded      bool   `json:"degraded,omitempty"`
	Err           string `json:"err,omitempty"`
}

// Plan carries a full allocation to adopt. X always has cluster
// dimension; dead nodes hold zero. Alive marks the support the plan was
// solved over, Degraded whether that support is a strict subset of the
// cluster. Lambda and Q record the demand total and the KKT multiplier
// the solve certified against, so adopters can verify or log them.
type Plan struct {
	ID       uint64    `json:"id"`
	Epoch    int       `json:"epoch"`
	X        []float64 `json:"x"`
	Alive    []bool    `json:"alive"`
	Degraded bool      `json:"degraded,omitempty"`
	Lambda   float64   `json:"lambda"`
	Q        float64   `json:"q"`
}

// PlanAck confirms a node switched to Epoch (or was already at or past
// it — adoption is monotonic, replays are harmless).
type PlanAck struct {
	ID    uint64 `json:"id"`
	Epoch int    `json:"epoch"`
	Node  int    `json:"node"`
}

// Ping is a heartbeat probe carrying the prober's virtual timestamp.
type Ping struct {
	ID uint64  `json:"id"`
	T  float64 `json:"t"`
}

// Pong answers a ping. Rates is the node's locally sensed per-origin
// demand estimate at T (cluster dimension); the controller sums the
// vectors across nodes to reconstruct total per-origin demand whatever
// the current routing.
type Pong struct {
	ID    uint64    `json:"id"`
	Node  int       `json:"node"`
	Epoch int       `json:"epoch"`
	Rates []float64 `json:"rates"`
}

// EncodeAccess serializes an Access.
func EncodeAccess(a Access) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindAccess, Access: &a})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding access: %w", err)
	}
	return b, nil
}

// EncodeAccessReply serializes an AccessReply.
func EncodeAccessReply(a AccessReply) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindAccessReply, AccessReply: &a})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding access reply: %w", err)
	}
	return b, nil
}

// EncodePlan serializes a Plan.
func EncodePlan(p Plan) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindPlan, Plan: &p})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding plan: %w", err)
	}
	return b, nil
}

// EncodePlanAck serializes a PlanAck.
func EncodePlanAck(a PlanAck) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindPlanAck, PlanAck: &a})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding plan ack: %w", err)
	}
	return b, nil
}

// EncodePing serializes a Ping.
func EncodePing(p Ping) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindPing, Ping: &p})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding ping: %w", err)
	}
	return b, nil
}

// EncodePong serializes a Pong.
func EncodePong(p Pong) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindPong, Pong: &p})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding pong: %w", err)
	}
	return b, nil
}

// ReplyIDOf extracts the correlation ID from an encoded *reply* payload
// (access-reply, plan-ack, pong). It reports false for request kinds,
// batch-protocol kinds, and undecodable payloads. The transport client
// takes it as an injected hook — like RoundOf, it keeps the transport
// package protocol-agnostic.
func ReplyIDOf(payload []byte) (uint64, bool) {
	env, err := Decode(payload)
	if err != nil {
		return 0, false
	}
	switch env.Kind {
	case KindAccessReply:
		return env.AccessReply.ID, true
	case KindPlanAck:
		return env.PlanAck.ID, true
	case KindPong:
		return env.Pong.ID, true
	default:
		return 0, false
	}
}
