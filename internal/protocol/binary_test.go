package protocol

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

// binarySeedEnvelopes covers every message kind with representative
// values: negative ints, zero-length and multi-element slices, strings,
// and (for float fields) NaN and ±Inf, which the JSON codec cannot carry
// but the binary codec must.
func binarySeedEnvelopes() []Envelope {
	return []Envelope{
		{Kind: KindReport, Report: &Report{Round: 7, Node: 3, Marginal: -12.25, Alloc: 0.125, Curvature: -0.5, Planned: 0xDEADBEEF}},
		{Kind: KindReport, Report: &Report{Round: 0, Node: 0, Marginal: math.NaN(), Alloc: math.Inf(1), Curvature: math.Inf(-1)}},
		{Kind: KindUpdate, Update: &Update{Round: 9, Delta: []float64{0.1, -0.1, 0}, Done: true}},
		{Kind: KindUpdate, Update: &Update{Round: -1, Delta: nil}},
		{Kind: KindVectorReport, Vector: &VectorReport{Round: 3, Node: 1, Marginals: []float64{-1, -2}, Allocs: []float64{0.5, 0.5}}},
		{Kind: KindAccess, Access: &Access{ID: 42, Origin: 5, T: 17.5, Epoch: 2}},
		{Kind: KindAccessReply, AccessReply: &AccessReply{ID: 42, Node: 1, Origin: 5, Epoch: 2, LatencyMicros: -3, Degraded: true, Err: "saturated μ≤λx"}},
		{Kind: KindPlan, Plan: &Plan{ID: 1, Epoch: 3, X: []float64{0.25, 0.75}, Alive: []bool{true, false}, Degraded: true, Lambda: 1, Q: -4.5}},
		{Kind: KindPlanAck, PlanAck: &PlanAck{ID: 1, Epoch: 3, Node: 0}},
		{Kind: KindPing, Ping: &Ping{ID: 9, T: 0.25}},
		{Kind: KindPong, Pong: &Pong{ID: 9, Node: 2, Epoch: 1, Rates: []float64{0.5, 0.25, 0.25}}},
		{Kind: KindAggUp, AggUp: &AggUp{Round: 5, Pass: 1, Epoch: 2, Node: 7, Agg: Aggregate{
			SumG: -10.5, SumGC: 1e-17, SumH: -2, SumHC: -3e-18, SumX: 1, SumXC: 2e-16,
			Count: 4, MinG: -4, MaxG: -1, BoundCount: 1, BoundMinG: -4,
			OutNode: 3, OutG: -2.5, Changed: 1, RatioCount: 2, MinRatio: 0.75,
		}}},
		{Kind: KindAggUp, AggUp: &AggUp{Node: 0, Agg: Aggregate{OutNode: -1}}},
		{Kind: KindAggDown, AggDown: &AggDown{Round: 5, Pass: 2, Epoch: 2, Avg: -2.625, Count: 4, Drop: true, Readmit: -1, Final: true, Truncation: 0.5, Spread: 3, Converged: true, NoOp: false, Renorm: 1.0000000000000002}},
		{Kind: KindGossipShare, GossipShare: &GossipShare{Round: 1, Tick: 3, Epoch: 0, Node: 6, SG: -5.25, SGC: -1e-18, WA: 0.5, SX: 0.125, SXC: 0, WN: 0.25}},
		{Kind: KindGossipExtrema, GossipExtrema: &GossipExtrema{Round: 1, Tick: 3, Epoch: 0, Node: 6, HasInt: true, IntMinG: -7, IntMaxG: -1, BoundOK: true, HasOut: true, OutG: -3, OutNode: 2}},
		{Kind: KindGossipExtrema, GossipExtrema: &GossipExtrema{BoundOK: false, OutNode: -1}},
	}
}

// envelopesBitEqual compares decoded envelopes through their canonical
// binary encoding, so NaN payloads compare equal bit-for-bit.
func envelopesBitEqual(t *testing.T, a, b Envelope) bool {
	t.Helper()
	ea, err := EncodeBinary(a)
	if err != nil {
		t.Fatalf("encoding %s: %v", a.Kind, err)
	}
	eb, err := EncodeBinary(b)
	if err != nil {
		t.Fatalf("encoding %s: %v", b.Kind, err)
	}
	return bytes.Equal(ea, eb)
}

// TestBinaryRoundTrip pins decode(encode(m)) == m for every kind,
// including NaN/Inf float payloads.
func TestBinaryRoundTrip(t *testing.T) {
	for _, env := range binarySeedEnvelopes() {
		frame, err := EncodeBinary(env)
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Kind, err)
		}
		if !IsBinary(frame) {
			t.Fatalf("%s: encoded frame does not start with the binary magic", env.Kind)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", env.Kind, err)
		}
		if got.Kind != env.Kind {
			t.Fatalf("round trip changed kind: %s -> %s", env.Kind, got.Kind)
		}
		if !envelopesBitEqual(t, env, got) {
			t.Errorf("%s: round trip changed payload:\n  in:  %+v\n  out: %+v", env.Kind, env, got)
		}
	}
}

// TestBinaryTruncationIsErrBadMessage pins the framing contract: every
// strict prefix of every valid frame is rejected as ErrBadMessage, and
// so is a frame with trailing bytes.
func TestBinaryTruncationIsErrBadMessage(t *testing.T) {
	for _, env := range binarySeedEnvelopes() {
		frame, err := EncodeBinary(env)
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Kind, err)
		}
		for cut := 1; cut < len(frame); cut++ {
			if _, err := Decode(frame[:cut]); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("%s: truncated frame (%d of %d bytes) gave err=%v, want ErrBadMessage", env.Kind, cut, len(frame), err)
			}
		}
		padded := append(append([]byte(nil), frame...), 0)
		if _, err := Decode(padded); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("%s: frame with a trailing byte gave err=%v, want ErrBadMessage", env.Kind, err)
		}
	}
}

// TestBinaryRejectsBadFrames covers the explicit rejection paths:
// unknown version, unknown kind code, lying length prefix, out-of-range
// integer fields, and malformed bool bytes.
func TestBinaryRejectsBadFrames(t *testing.T) {
	cases := map[string][]byte{
		"wrong version":     {binMagic, BinaryVersion + 1, codeReport, 0},
		"unknown kind code": {binMagic, BinaryVersion, 200, 0},
		"length over-claim": {binMagic, BinaryVersion, codePing, 10, 1},
		"length under-claim": append(
			[]byte{binMagic, BinaryVersion, codePing, 1},
			make([]byte, 9)...), // ping needs uvarint+8 bytes, claims 1
		"huge slice count": {binMagic, BinaryVersion, codeUpdate, 4, 2, 0, 0xFF, 0x7F},
		"bad bool byte":    {binMagic, BinaryVersion, codeUpdate, 3, 2, 7, 0},
	}
	for name, frame := range cases {
		if _, err := Decode(frame); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err=%v, want ErrBadMessage", name, err)
		}
	}
	// An integer field carrying a value outside int32 must be rejected,
	// not silently wrapped into a plausible node id.
	var w binWriter
	w.varint(int64(math.MaxInt32) + 1)
	w.varint(0)
	w.float(0)
	w.float(0)
	w.float(0)
	w.uvarint(0)
	frame := []byte{binMagic, BinaryVersion, codeReport, byte(len(w.buf))}
	frame = append(frame, w.buf...)
	if _, err := Decode(frame); !errors.Is(err, ErrBadMessage) {
		t.Errorf("out-of-range int field: err=%v, want ErrBadMessage", err)
	}
}

// TestJSONBinaryCrossEquivalence pins codec interchangeability: for every
// kind (with JSON-representable values), the JSON encoding and the binary
// encoding of the same message decode to identical envelopes — so a
// binary-speaking node and a JSON-speaking node see the same protocol.
func TestJSONBinaryCrossEquivalence(t *testing.T) {
	for _, env := range binarySeedEnvelopes() {
		if !jsonRepresentable(env) {
			continue
		}
		jsonBytes, err := marshal(CodecJSON, env)
		if err != nil {
			t.Fatalf("%s: JSON encode: %v", env.Kind, err)
		}
		binBytes, err := marshal(CodecBinary, env)
		if err != nil {
			t.Fatalf("%s: binary encode: %v", env.Kind, err)
		}
		if IsBinary(jsonBytes) {
			t.Fatalf("%s: JSON payload detected as binary", env.Kind)
		}
		fromJSON, err := Decode(jsonBytes)
		if err != nil {
			t.Fatalf("%s: decoding JSON form: %v", env.Kind, err)
		}
		fromBin, err := Decode(binBytes)
		if err != nil {
			t.Fatalf("%s: decoding binary form: %v", env.Kind, err)
		}
		if !reflect.DeepEqual(fromJSON, fromBin) {
			t.Errorf("%s: codecs disagree:\n  json:   %+v\n  binary: %+v", env.Kind, fromJSON, fromBin)
		}
	}
}

// jsonRepresentable reports whether the envelope survives encoding/json
// (which rejects NaN and ±Inf).
func jsonRepresentable(env Envelope) bool {
	_, err := encodeJSONEnvelope(env)
	return err == nil
}

// TestGossipKindEncoders pins the per-kind gossip encoders and RoundOf
// coverage of the new kinds in both codecs.
func TestGossipKindEncoders(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		up, err := EncodeAggUp(codec, AggUp{Round: 11, Pass: 1, Node: 2, Agg: Aggregate{Count: 3, OutNode: -1}})
		if err != nil {
			t.Fatalf("%v: EncodeAggUp: %v", codec, err)
		}
		down, err := EncodeAggDown(codec, AggDown{Round: 11, Pass: 1, Avg: -2, Count: 3, Readmit: -1})
		if err != nil {
			t.Fatalf("%v: EncodeAggDown: %v", codec, err)
		}
		share, err := EncodeGossipShare(codec, GossipShare{Round: 11, Tick: 2, Node: 1, SG: -1, WA: 1, SX: 0.5, WN: 1})
		if err != nil {
			t.Fatalf("%v: EncodeGossipShare: %v", codec, err)
		}
		ext, err := EncodeGossipExtrema(codec, GossipExtrema{Round: 11, Tick: 2, Node: 1, OutNode: -1})
		if err != nil {
			t.Fatalf("%v: EncodeGossipExtrema: %v", codec, err)
		}
		for name, payload := range map[string][]byte{"agg-up": up, "agg-down": down, "share": share, "extrema": ext} {
			round, ok := RoundOf(payload)
			if !ok || round != 11 {
				t.Errorf("%v %s: RoundOf = (%d, %v), want (11, true)", codec, name, round, ok)
			}
		}
	}
	if _, err := marshal(Codec(99), Envelope{Kind: KindPing, Ping: &Ping{}}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("unknown codec: err=%v, want ErrBadMessage", err)
	}
}
