// Package protocol defines the wire messages and round bookkeeping of the
// decentralized allocation algorithm. Each iteration is one synchronous
// round: every node announces its marginal utility and current fragment
// (section 5.2 step a), and either every node plans the identical
// re-allocation locally (broadcast mode) or a designated central agent
// plans it and distributes the deltas (coordinator mode) — the paper's two
// aggregation schemes.
package protocol

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrBadMessage reports an undecodable or out-of-protocol message.
var ErrBadMessage = errors.New("protocol: bad message")

// ErrDuplicateReport reports an identical re-delivery of an
// already-buffered report. Under an at-least-once transport (retries,
// duplicating links) this is benign — the round data is unchanged — so
// callers should discard the message rather than abort the round. A
// duplicate with *different* content is still ErrBadMessage: two
// conflicting reports for one (round, node) indicate a faulty or
// byzantine peer.
var ErrDuplicateReport = errors.New("protocol: duplicate report")

// Kind discriminates wire messages.
type Kind string

const (
	// KindReport carries one node's marginal utility and allocation for
	// a round.
	KindReport Kind = "report"
	// KindUpdate carries the coordinator's planned deltas for a round.
	KindUpdate Kind = "update"
	// KindVectorReport carries one node's per-file marginal utilities
	// and fragments for a round (the multi-file protocol).
	KindVectorReport Kind = "vector-report"
)

// Report is section 5.2 step (a): node i announces ∂U/∂x_i and x_i.
// Curvature optionally carries ∂²U/∂x_i², which lets every node evaluate
// the Theorem-2 stepsize bound for the round (the appendix's dynamic-α
// suggestion) from the same data; it is zero when the dynamic stepsize is
// disabled.
type Report struct {
	Round     int     `json:"round"`
	Node      int     `json:"node"`
	Marginal  float64 `json:"marginal"`
	Alloc     float64 `json:"alloc"`
	Curvature float64 `json:"curvature,omitempty"`
	// Planned is a bitmask fingerprint (bit i = node i) of the group the
	// sender planned its previous round's step over. When quorum rounds
	// are enabled, receivers compare it against their own previous group
	// so two nodes that silently planned over different quorum subsets —
	// the one way the lockstep protocol could drift from Σx = 1 — fail
	// loudly instead. Zero means "no previous plan" (round 0, or a
	// resume without history) and is never checked.
	Planned uint64 `json:"planned,omitempty"`
}

// Update is the coordinator's reply in central-agent mode: the full delta
// vector for the round and whether the termination criterion fired.
type Update struct {
	Round int       `json:"round"`
	Delta []float64 `json:"delta"`
	Done  bool      `json:"done"`
}

// VectorReport is the multi-file analogue of Report: node i announces
// ∂U/∂x_i^f and x_i^f for every file f it may host.
type VectorReport struct {
	Round     int       `json:"round"`
	Node      int       `json:"node"`
	Marginals []float64 `json:"marginals"`
	Allocs    []float64 `json:"allocs"`
}

// envelope wraps a message with its kind for wire framing.
type envelope struct {
	Kind          Kind            `json:"kind"`
	Report        *Report         `json:"report,omitempty"`
	Update        *Update         `json:"update,omitempty"`
	Vector        *VectorReport   `json:"vector,omitempty"`
	Access        *Access         `json:"access,omitempty"`
	AccessReply   *AccessReply    `json:"access_reply,omitempty"`
	Plan          *Plan           `json:"plan,omitempty"`
	PlanAck       *PlanAck        `json:"plan_ack,omitempty"`
	Ping          *Ping           `json:"ping,omitempty"`
	Pong          *Pong           `json:"pong,omitempty"`
	AggUp         *AggUp          `json:"agg_up,omitempty"`
	AggDown       *AggDown        `json:"agg_down,omitempty"`
	GossipShare   *GossipShare    `json:"gossip_share,omitempty"`
	GossipExtrema *GossipExtrema  `json:"gossip_extrema,omitempty"`
	Extra         json.RawMessage `json:"extra,omitempty"`
}

// Envelope is a decoded wire message: exactly one of the payload fields
// matching Kind is non-nil.
type Envelope struct {
	Kind          Kind
	Report        *Report
	Update        *Update
	Vector        *VectorReport
	Access        *Access
	AccessReply   *AccessReply
	Plan          *Plan
	PlanAck       *PlanAck
	Ping          *Ping
	Pong          *Pong
	AggUp         *AggUp
	AggDown       *AggDown
	GossipShare   *GossipShare
	GossipExtrema *GossipExtrema
}

// EncodeReport serializes a Report.
func EncodeReport(r Report) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindReport, Report: &r})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding report: %w", err)
	}
	return b, nil
}

// EncodeUpdate serializes an Update.
func EncodeUpdate(u Update) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindUpdate, Update: &u})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding update: %w", err)
	}
	return b, nil
}

// EncodeVectorReport serializes a VectorReport.
func EncodeVectorReport(v VectorReport) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindVectorReport, Vector: &v})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding vector report: %w", err)
	}
	return b, nil
}

// Decode parses a wire payload, auto-detecting the codec: a frame
// starting with the binary magic byte is decoded binary, anything else
// falls back to the JSON envelope. That per-message detection is the
// negotiation story — a peer that only speaks JSON is understood without
// configuration, whatever the local side writes.
func Decode(payload []byte) (Envelope, error) {
	if IsBinary(payload) {
		return decodeBinary(payload)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return Envelope{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	switch env.Kind {
	case KindReport:
		if env.Report == nil {
			return Envelope{}, fmt.Errorf("%w: report envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindReport, Report: env.Report}, nil
	case KindUpdate:
		if env.Update == nil {
			return Envelope{}, fmt.Errorf("%w: update envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindUpdate, Update: env.Update}, nil
	case KindVectorReport:
		if env.Vector == nil {
			return Envelope{}, fmt.Errorf("%w: vector-report envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindVectorReport, Vector: env.Vector}, nil
	case KindAccess:
		if env.Access == nil {
			return Envelope{}, fmt.Errorf("%w: access envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindAccess, Access: env.Access}, nil
	case KindAccessReply:
		if env.AccessReply == nil {
			return Envelope{}, fmt.Errorf("%w: access-reply envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindAccessReply, AccessReply: env.AccessReply}, nil
	case KindPlan:
		if env.Plan == nil {
			return Envelope{}, fmt.Errorf("%w: plan envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindPlan, Plan: env.Plan}, nil
	case KindPlanAck:
		if env.PlanAck == nil {
			return Envelope{}, fmt.Errorf("%w: plan-ack envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindPlanAck, PlanAck: env.PlanAck}, nil
	case KindPing:
		if env.Ping == nil {
			return Envelope{}, fmt.Errorf("%w: ping envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindPing, Ping: env.Ping}, nil
	case KindPong:
		if env.Pong == nil {
			return Envelope{}, fmt.Errorf("%w: pong envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindPong, Pong: env.Pong}, nil
	case KindAggUp:
		if env.AggUp == nil {
			return Envelope{}, fmt.Errorf("%w: agg-up envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindAggUp, AggUp: env.AggUp}, nil
	case KindAggDown:
		if env.AggDown == nil {
			return Envelope{}, fmt.Errorf("%w: agg-down envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindAggDown, AggDown: env.AggDown}, nil
	case KindGossipShare:
		if env.GossipShare == nil {
			return Envelope{}, fmt.Errorf("%w: gossip-share envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindGossipShare, GossipShare: env.GossipShare}, nil
	case KindGossipExtrema:
		if env.GossipExtrema == nil {
			return Envelope{}, fmt.Errorf("%w: gossip-extrema envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindGossipExtrema, GossipExtrema: env.GossipExtrema}, nil
	default:
		return Envelope{}, fmt.Errorf("%w: unknown kind %q", ErrBadMessage, env.Kind)
	}
}

// RoundOf extracts the round number carried by an encoded protocol
// message, whatever its kind. It reports false for payloads that do not
// decode as protocol messages. Transport-level tooling (fault injection,
// tracing) uses it to scope behavior to round windows without the
// transport package importing the protocol.
func RoundOf(payload []byte) (int, bool) {
	env, err := Decode(payload)
	if err != nil {
		return 0, false
	}
	switch env.Kind {
	case KindReport:
		return env.Report.Round, true
	case KindUpdate:
		return env.Update.Round, true
	case KindVectorReport:
		return env.Vector.Round, true
	case KindAggUp:
		return env.AggUp.Round, true
	case KindAggDown:
		return env.AggDown.Round, true
	case KindGossipShare:
		return env.GossipShare.Round, true
	case KindGossipExtrema:
		return env.GossipExtrema.Round, true
	default:
		return 0, false
	}
}

// RoundBuffer collects per-round reports, tolerating peers that run one
// round ahead (a fast node may broadcast round r+1 before a slow peer has
// read round r).
type RoundBuffer struct {
	peers   int
	pending map[int]map[int]Report // round -> node -> report
}

// NewRoundBuffer sizes the buffer for a cluster of peers nodes.
func NewRoundBuffer(peers int) *RoundBuffer {
	return &RoundBuffer{
		peers:   peers,
		pending: make(map[int]map[int]Report),
	}
}

// Add stores a report. An identical re-delivery for the same
// (round, node) returns ErrDuplicateReport (benign, discardable); a
// conflicting duplicate is rejected as ErrBadMessage — the protocol sends
// one report per peer per round, so two different ones indicate a faulty
// or byzantine peer.
func (b *RoundBuffer) Add(r Report) error {
	if r.Node < 0 || r.Node >= b.peers {
		return fmt.Errorf("%w: report from unknown node %d", ErrBadMessage, r.Node)
	}
	byNode, ok := b.pending[r.Round]
	if !ok {
		byNode = make(map[int]Report, b.peers)
		b.pending[r.Round] = byNode
	}
	if prev, dup := byNode[r.Node]; dup {
		if prev == r {
			return fmt.Errorf("%w: node %d round %d", ErrDuplicateReport, r.Node, r.Round)
		}
		return fmt.Errorf("%w: conflicting duplicate report from node %d for round %d", ErrBadMessage, r.Node, r.Round)
	}
	byNode[r.Node] = r
	return nil
}

// Complete reports whether `want` distinct reports have arrived for the
// round.
func (b *RoundBuffer) Complete(round, want int) bool {
	return len(b.pending[round]) >= want
}

// Count returns the number of distinct reports buffered for the round.
func (b *RoundBuffer) Count(round int) int {
	return len(b.pending[round])
}

// Take removes and returns the round's reports keyed by node id.
func (b *RoundBuffer) Take(round int) map[int]Report {
	byNode := b.pending[round]
	delete(b.pending, round)
	return byNode
}

// VectorRoundBuffer is RoundBuffer's multi-file counterpart.
type VectorRoundBuffer struct {
	peers   int
	pending map[int]map[int]VectorReport
}

// NewVectorRoundBuffer sizes the buffer for a cluster of peers nodes.
func NewVectorRoundBuffer(peers int) *VectorRoundBuffer {
	return &VectorRoundBuffer{
		peers:   peers,
		pending: make(map[int]map[int]VectorReport),
	}
}

// Add stores a vector report. As with RoundBuffer.Add, an identical
// re-delivery returns ErrDuplicateReport and a conflicting duplicate or
// unknown node is ErrBadMessage.
func (b *VectorRoundBuffer) Add(r VectorReport) error {
	if r.Node < 0 || r.Node >= b.peers {
		return fmt.Errorf("%w: vector report from unknown node %d", ErrBadMessage, r.Node)
	}
	byNode, ok := b.pending[r.Round]
	if !ok {
		byNode = make(map[int]VectorReport, b.peers)
		b.pending[r.Round] = byNode
	}
	if prev, dup := byNode[r.Node]; dup {
		if prev.Round == r.Round && prev.Node == r.Node && eqFloats(prev.Marginals, r.Marginals) && eqFloats(prev.Allocs, r.Allocs) {
			return fmt.Errorf("%w: node %d round %d", ErrDuplicateReport, r.Node, r.Round)
		}
		return fmt.Errorf("%w: conflicting duplicate vector report from node %d for round %d", ErrBadMessage, r.Node, r.Round)
	}
	byNode[r.Node] = r
	return nil
}

// eqFloats compares two float slices element-wise (bit equality).
func eqFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Complete reports whether `want` distinct reports arrived for the round.
func (b *VectorRoundBuffer) Complete(round, want int) bool {
	return len(b.pending[round]) >= want
}

// Take removes and returns the round's reports keyed by node id.
func (b *VectorRoundBuffer) Take(round int) map[int]VectorReport {
	byNode := b.pending[round]
	delete(b.pending, round)
	return byNode
}
