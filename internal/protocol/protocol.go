// Package protocol defines the wire messages and round bookkeeping of the
// decentralized allocation algorithm. Each iteration is one synchronous
// round: every node announces its marginal utility and current fragment
// (section 5.2 step a), and either every node plans the identical
// re-allocation locally (broadcast mode) or a designated central agent
// plans it and distributes the deltas (coordinator mode) — the paper's two
// aggregation schemes.
package protocol

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrBadMessage reports an undecodable or out-of-protocol message.
var ErrBadMessage = errors.New("protocol: bad message")

// Kind discriminates wire messages.
type Kind string

const (
	// KindReport carries one node's marginal utility and allocation for
	// a round.
	KindReport Kind = "report"
	// KindUpdate carries the coordinator's planned deltas for a round.
	KindUpdate Kind = "update"
	// KindVectorReport carries one node's per-file marginal utilities
	// and fragments for a round (the multi-file protocol).
	KindVectorReport Kind = "vector-report"
)

// Report is section 5.2 step (a): node i announces ∂U/∂x_i and x_i.
// Curvature optionally carries ∂²U/∂x_i², which lets every node evaluate
// the Theorem-2 stepsize bound for the round (the appendix's dynamic-α
// suggestion) from the same data; it is zero when the dynamic stepsize is
// disabled.
type Report struct {
	Round     int     `json:"round"`
	Node      int     `json:"node"`
	Marginal  float64 `json:"marginal"`
	Alloc     float64 `json:"alloc"`
	Curvature float64 `json:"curvature,omitempty"`
}

// Update is the coordinator's reply in central-agent mode: the full delta
// vector for the round and whether the termination criterion fired.
type Update struct {
	Round int       `json:"round"`
	Delta []float64 `json:"delta"`
	Done  bool      `json:"done"`
}

// VectorReport is the multi-file analogue of Report: node i announces
// ∂U/∂x_i^f and x_i^f for every file f it may host.
type VectorReport struct {
	Round     int       `json:"round"`
	Node      int       `json:"node"`
	Marginals []float64 `json:"marginals"`
	Allocs    []float64 `json:"allocs"`
}

// envelope wraps a message with its kind for wire framing.
type envelope struct {
	Kind   Kind            `json:"kind"`
	Report *Report         `json:"report,omitempty"`
	Update *Update         `json:"update,omitempty"`
	Vector *VectorReport   `json:"vector,omitempty"`
	Extra  json.RawMessage `json:"extra,omitempty"`
}

// Envelope is a decoded wire message: exactly one of the payload fields
// matching Kind is non-nil.
type Envelope struct {
	Kind   Kind
	Report *Report
	Update *Update
	Vector *VectorReport
}

// EncodeReport serializes a Report.
func EncodeReport(r Report) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindReport, Report: &r})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding report: %w", err)
	}
	return b, nil
}

// EncodeUpdate serializes an Update.
func EncodeUpdate(u Update) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindUpdate, Update: &u})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding update: %w", err)
	}
	return b, nil
}

// EncodeVectorReport serializes a VectorReport.
func EncodeVectorReport(v VectorReport) ([]byte, error) {
	b, err := json.Marshal(envelope{Kind: KindVectorReport, Vector: &v})
	if err != nil {
		return nil, fmt.Errorf("protocol: encoding vector report: %w", err)
	}
	return b, nil
}

// Decode parses a wire payload.
func Decode(payload []byte) (Envelope, error) {
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return Envelope{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	switch env.Kind {
	case KindReport:
		if env.Report == nil {
			return Envelope{}, fmt.Errorf("%w: report envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindReport, Report: env.Report}, nil
	case KindUpdate:
		if env.Update == nil {
			return Envelope{}, fmt.Errorf("%w: update envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindUpdate, Update: env.Update}, nil
	case KindVectorReport:
		if env.Vector == nil {
			return Envelope{}, fmt.Errorf("%w: vector-report envelope without body", ErrBadMessage)
		}
		return Envelope{Kind: KindVectorReport, Vector: env.Vector}, nil
	default:
		return Envelope{}, fmt.Errorf("%w: unknown kind %q", ErrBadMessage, env.Kind)
	}
}

// RoundBuffer collects per-round reports, tolerating peers that run one
// round ahead (a fast node may broadcast round r+1 before a slow peer has
// read round r).
type RoundBuffer struct {
	peers   int
	pending map[int]map[int]Report // round -> node -> report
}

// NewRoundBuffer sizes the buffer for a cluster of peers nodes.
func NewRoundBuffer(peers int) *RoundBuffer {
	return &RoundBuffer{
		peers:   peers,
		pending: make(map[int]map[int]Report),
	}
}

// Add stores a report. Duplicate reports for the same (round, node) are
// rejected — the protocol sends exactly one per peer per round, so a
// duplicate indicates a faulty or byzantine peer.
func (b *RoundBuffer) Add(r Report) error {
	if r.Node < 0 || r.Node >= b.peers {
		return fmt.Errorf("%w: report from unknown node %d", ErrBadMessage, r.Node)
	}
	byNode, ok := b.pending[r.Round]
	if !ok {
		byNode = make(map[int]Report, b.peers)
		b.pending[r.Round] = byNode
	}
	if _, dup := byNode[r.Node]; dup {
		return fmt.Errorf("%w: duplicate report from node %d for round %d", ErrBadMessage, r.Node, r.Round)
	}
	byNode[r.Node] = r
	return nil
}

// Complete reports whether `want` distinct reports have arrived for the
// round.
func (b *RoundBuffer) Complete(round, want int) bool {
	return len(b.pending[round]) >= want
}

// Take removes and returns the round's reports keyed by node id.
func (b *RoundBuffer) Take(round int) map[int]Report {
	byNode := b.pending[round]
	delete(b.pending, round)
	return byNode
}

// VectorRoundBuffer is RoundBuffer's multi-file counterpart.
type VectorRoundBuffer struct {
	peers   int
	pending map[int]map[int]VectorReport
}

// NewVectorRoundBuffer sizes the buffer for a cluster of peers nodes.
func NewVectorRoundBuffer(peers int) *VectorRoundBuffer {
	return &VectorRoundBuffer{
		peers:   peers,
		pending: make(map[int]map[int]VectorReport),
	}
}

// Add stores a vector report, rejecting duplicates and unknown nodes.
func (b *VectorRoundBuffer) Add(r VectorReport) error {
	if r.Node < 0 || r.Node >= b.peers {
		return fmt.Errorf("%w: vector report from unknown node %d", ErrBadMessage, r.Node)
	}
	byNode, ok := b.pending[r.Round]
	if !ok {
		byNode = make(map[int]VectorReport, b.peers)
		b.pending[r.Round] = byNode
	}
	if _, dup := byNode[r.Node]; dup {
		return fmt.Errorf("%w: duplicate vector report from node %d for round %d", ErrBadMessage, r.Node, r.Round)
	}
	byNode[r.Node] = r
	return nil
}

// Complete reports whether `want` distinct reports arrived for the round.
func (b *VectorRoundBuffer) Complete(round, want int) bool {
	return len(b.pending[round]) >= want
}

// Take removes and returns the round's reports keyed by node id.
func (b *VectorRoundBuffer) Take(round int) map[int]VectorReport {
	byNode := b.pending[round]
	delete(b.pending, round)
	return byNode
}
