package topology

import (
	"errors"
	"math"
	"testing"
)

func TestPairCostsConventions(t *testing.T) {
	g, err := Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := PairCosts(g, RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	ow, err := PairCosts(g, OneWay)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if rt[i][i] != 0 || ow[i][i] != 0 {
			t.Errorf("self cost nonzero at %d", i)
		}
		for j := 0; j < 4; j++ {
			if rt[i][j] != 2*ow[i][j] {
				t.Errorf("round trip (%d,%d) = %g, want 2x one-way %g", i, j, rt[i][j], ow[i][j])
			}
		}
	}
	if ow[0][2] != 2 || ow[0][1] != 1 {
		t.Errorf("one-way distances wrong: %v", ow[0])
	}
}

func TestAccessCostsSymmetricRing(t *testing.T) {
	// Figure 2's configuration: uniform rates on a symmetric ring give
	// identical C_i: with unit links and round trips, each node sees
	// (0+2+4+2)/4 = 2.
	g, err := Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := AccessCosts(g, UniformRates(4, 1), RoundTrip)
	if err != nil {
		t.Fatalf("AccessCosts: %v", err)
	}
	for i, c := range access {
		if math.Abs(c-2) > 1e-12 {
			t.Errorf("C_%d = %g, want 2", i, c)
		}
	}
}

func TestAccessCostsWeightsByRate(t *testing.T) {
	// All accesses come from node 0 on a line 0-1-2: C_i is then just
	// the distance from node 0 (round trip).
	g, err := Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := AccessCosts(g, []float64{1, 0, 0}, RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4}
	for i := range want {
		if math.Abs(access[i]-want[i]) > 1e-12 {
			t.Errorf("C_%d = %g, want %g", i, access[i], want[i])
		}
	}
}

func TestAccessCostsStarFavorsHub(t *testing.T) {
	g, err := Star(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	access, err := AccessCosts(g, UniformRates(5, 1), RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if access[0] >= access[i] {
			t.Errorf("hub cost %g not below leaf %d cost %g", access[0], i, access[i])
		}
	}
}

func TestAccessCostsValidation(t *testing.T) {
	g, err := Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name  string
		rates []float64
	}{
		{"wrong length", []float64{1, 1}},
		{"negative rate", []float64{1, -1, 1, 1}},
		{"zero total", []float64{0, 0, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := AccessCosts(g, tt.rates, RoundTrip); !errors.Is(err, ErrBadRates) {
				t.Errorf("error = %v, want ErrBadRates", err)
			}
		})
	}
}

func TestUniformRates(t *testing.T) {
	rates := UniformRates(8, 2)
	var sum float64
	for _, r := range rates {
		if r != 0.25 {
			t.Errorf("rate = %g, want 0.25", r)
		}
		sum += r
	}
	if math.Abs(sum-2) > 1e-12 {
		t.Errorf("total = %g, want 2", sum)
	}
}

func TestCostConventionString(t *testing.T) {
	if RoundTrip.String() != "round-trip" || OneWay.String() != "one-way" {
		t.Error("convention names wrong")
	}
	if CostConvention(9).String() != "CostConvention(9)" {
		t.Error("unknown convention formatting wrong")
	}
}
