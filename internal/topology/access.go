package topology

import (
	"errors"
	"fmt"
)

// ErrBadRates is returned when access rates are invalid (negative, zero
// total, or the wrong length).
var ErrBadRates = errors.New("topology: invalid access rates")

// CostConvention selects how the per-access node-to-node cost c_ij is
// derived from shortest-path routing.
type CostConvention int

const (
	// RoundTrip takes c_ij = sp(i->j) + sp(j->i): the request travels to
	// the storing node and the response travels back, the paper's stated
	// definition of c_ij in section 4.
	RoundTrip CostConvention = iota + 1
	// OneWay takes c_ij = sp(i->j) only. The paper's section 7 worked
	// example uses one-way ring distances; this convention also suits
	// unidirectional rings where responses continue forward.
	OneWay
)

func (c CostConvention) String() string {
	switch c {
	case RoundTrip:
		return "round-trip"
	case OneWay:
		return "one-way"
	default:
		return fmt.Sprintf("CostConvention(%d)", int(c))
	}
}

// PairCosts computes the full c_ij matrix under the given convention.
// c_ii is always zero (local accesses incur no communication cost).
func PairCosts(g *Graph, conv CostConvention) ([][]float64, error) {
	sp, err := g.AllPairs()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	c := make([][]float64, n)
	for i := 0; i < n; i++ {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch conv {
			case OneWay:
				c[i][j] = sp[i][j]
			default:
				c[i][j] = sp[i][j] + sp[j][i]
			}
		}
	}
	return c, nil
}

// AccessCosts computes the traffic-weighted system communication cost of
// accessing each node:
//
//	C_i = Σ_j (λ_j/λ) · c_ji
//
// where λ_j is node j's file access generation rate and λ = Σ λ_j
// (section 4). rates must have one non-negative entry per node with a
// positive sum.
func AccessCosts(g *Graph, rates []float64, conv CostConvention) ([]float64, error) {
	n := g.NumNodes()
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d nodes", ErrBadRates, len(rates), n)
	}
	var total float64
	for j, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("%w: rate[%d] = %v", ErrBadRates, j, r)
		}
		total += r
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: total rate must be positive", ErrBadRates)
	}
	c, err := PairCosts(g, conv)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += rates[j] / total * c[j][i]
		}
		out[i] = sum
	}
	return out, nil
}

// UniformRates returns n equal rates summing to total, the workload used
// throughout the paper's experiments (λ = 1 split evenly).
func UniformRates(n int, total float64) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = total / float64(n)
	}
	return rates
}
