package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Ring returns a bidirectional ring of n nodes where every link has the
// given cost. This is the paper's Figure 2 configuration for n = 4.
func Ring(n int, linkCost float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 nodes, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		if err := g.AddBidirectional(i, (i+1)%n, linkCost); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// UnidirectionalRing returns a ring of n nodes where node i links only to
// node (i+1) mod n, with per-link costs given in order (costs[i] is the cost
// of the link i -> i+1). This matches the virtual-ring protocol of section 7.
func UnidirectionalRing(costs []float64) (*Graph, error) {
	n := len(costs)
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 nodes, got %d", n)
	}
	g := New(n)
	for i, c := range costs {
		if err := g.AddLink(i, (i+1)%n, c); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FullMesh returns a fully connected graph of n nodes with uniform link cost,
// the Figure 6 configuration.
func FullMesh(n int, linkCost float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: mesh needs at least 2 nodes, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddBidirectional(i, j, linkCost); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Star returns a star with the hub at node 0 and n-1 leaves, each attached
// with the given link cost.
func Star(n int, linkCost float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs at least 2 nodes, got %d", n)
	}
	g := New(n)
	for i := 1; i < n; i++ {
		if err := g.AddBidirectional(0, i, linkCost); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Line returns a path graph 0-1-2-...-n-1 with uniform link cost.
func Line(n int, linkCost float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: line needs at least 2 nodes, got %d", n)
	}
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddBidirectional(i, i+1, linkCost); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns a rows x cols 2-D mesh with uniform link cost.
func Grid(rows, cols int, linkCost float64) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: grid %dx%d too small", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddBidirectional(id(r, c), id(r, c+1), linkCost); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddBidirectional(id(r, c), id(r+1, c), linkCost); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomConnected returns a random connected graph: a random spanning tree
// plus extraEdges additional random bidirectional links, with link costs
// drawn uniformly from [minCost, maxCost). The construction is deterministic
// for a given seed.
func RandomConnected(n, extraEdges int, minCost, maxCost float64, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: random graph needs at least 2 nodes, got %d", n)
	}
	if maxCost < minCost || minCost < 0 {
		return nil, fmt.Errorf("topology: invalid cost range [%v, %v)", minCost, maxCost)
	}
	rng := rand.New(rand.NewSource(seed))
	cost := func() float64 {
		if maxCost == minCost {
			return minCost
		}
		return minCost + rng.Float64()*(maxCost-minCost)
	}
	g := New(n)
	// Random spanning tree: attach each new node to a uniformly chosen
	// existing node.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		parent := perm[rng.Intn(i)]
		if err := g.AddBidirectional(perm[i], parent, cost()); err != nil {
			return nil, err
		}
	}
	for e := 0; e < extraEdges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if err := g.AddBidirectional(i, j, cost()); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RingDistances returns, for a unidirectional ring defined by per-link costs
// (costs[i] = cost of link i -> i+1 mod n), the forward distance matrix
// d[i][j]: the cost of travelling from i forward around the ring to j.
// d[i][i] = 0.
func RingDistances(costs []float64) [][]float64 {
	n := len(costs)
	d := make([][]float64, n)
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n)
		acc := 0.0
		for step := 1; step < n; step++ {
			acc += costs[(i+step-1)%n]
			d[i][(i+step)%n] = acc
		}
	}
	return d
}

// MaxSpread returns the difference between the largest and smallest finite
// entries of a cost matrix, used by the Theorem-2 stepsize bound.
func MaxSpread(values []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}
