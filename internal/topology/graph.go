// Package topology models the communication substrate of the distributed
// system: a weighted directed graph of nodes, shortest-path routing between
// them, and the traffic-weighted access costs C_i that feed the file
// allocation cost model (Kurose & Simha, section 4).
//
// The paper assumes a logically fully connected network: every node can reach
// every other node, possibly via store-and-forward over intermediate nodes.
// Accordingly, the per-access communication cost c_ij between two nodes is
// the cost of the cheapest route between them, computed here with Dijkstra's
// algorithm over the physical link graph.
package topology

import (
	"errors"
	"fmt"
	"math"
)

// ErrDisconnected is returned when a pair of nodes has no connecting path,
// violating the paper's logical-full-connectivity assumption.
var ErrDisconnected = errors.New("topology: graph is not strongly connected")

// ErrBadEdge is returned when an edge references a node outside the graph or
// carries a negative cost.
var ErrBadEdge = errors.New("topology: invalid edge")

// Graph is a weighted directed graph over nodes 0..N-1. Links model
// point-to-point communication channels; the weight of a link is the cost of
// sending one file access (request or response) across it.
//
// The zero value is an empty graph; use New to create a graph with a fixed
// node count.
type Graph struct {
	n   int
	adj [][]edge // adjacency list per node
}

type edge struct {
	to   int
	cost float64
}

// New returns a graph with n nodes and no links.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]edge, n)}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return g.n }

// AddLink adds a directed link from node i to node j with the given cost.
// Costs must be non-negative (they are communication costs, not arbitrary
// weights), and both endpoints must exist.
func (g *Graph) AddLink(i, j int, cost float64) error {
	switch {
	case i < 0 || i >= g.n || j < 0 || j >= g.n:
		return fmt.Errorf("%w: link %d->%d outside graph of %d nodes", ErrBadEdge, i, j, g.n)
	case cost < 0 || math.IsNaN(cost) || math.IsInf(cost, 0):
		return fmt.Errorf("%w: link %d->%d has invalid cost %v", ErrBadEdge, i, j, cost)
	}
	g.adj[i] = append(g.adj[i], edge{to: j, cost: cost})
	return nil
}

// AddBidirectional adds links in both directions with the same cost.
func (g *Graph) AddBidirectional(i, j int, cost float64) error {
	if err := g.AddLink(i, j, cost); err != nil {
		return err
	}
	return g.AddLink(j, i, cost)
}

// Degree returns the out-degree of node i.
func (g *Graph) Degree(i int) int {
	if i < 0 || i >= g.n {
		return 0
	}
	return len(g.adj[i])
}

// Neighbors returns the distinct nodes directly reachable from node i, in
// insertion order.
func (g *Graph) Neighbors(i int) []int {
	if i < 0 || i >= g.n {
		return nil
	}
	seen := make(map[int]bool, len(g.adj[i]))
	out := make([]int, 0, len(g.adj[i]))
	for _, e := range g.adj[i] {
		if !seen[e.to] {
			seen[e.to] = true
			out = append(out, e.to)
		}
	}
	return out
}

// ShortestFrom computes single-source shortest-path costs from node src to
// every node using Dijkstra's algorithm. Unreachable nodes get +Inf.
func (g *Graph) ShortestFrom(src int) ([]float64, error) {
	if src < 0 || src >= g.n {
		return nil, fmt.Errorf("topology: source node %d outside graph of %d nodes", src, g.n)
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0

	h := &distHeap{items: []distItem{{node: src, dist: 0}}}
	done := make([]bool, g.n)
	for h.Len() > 0 {
		it := h.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.cost; nd < dist[e.to] {
				dist[e.to] = nd
				h.push(distItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, nil
}

// AllPairs computes the all-pairs shortest path matrix sp[i][j] (cost of the
// cheapest route from i to j). It returns ErrDisconnected if any pair is
// unreachable.
func (g *Graph) AllPairs() ([][]float64, error) {
	sp := make([][]float64, g.n)
	for i := 0; i < g.n; i++ {
		row, err := g.ShortestFrom(i)
		if err != nil {
			return nil, err
		}
		for j, d := range row {
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("%w: no path %d->%d", ErrDisconnected, i, j)
			}
		}
		sp[i] = row
	}
	return sp, nil
}

// distHeap is a minimal binary min-heap on (node, dist) pairs. A hand-rolled
// heap avoids interface boxing on this hot path.
type distHeap struct {
	items []distItem
}

type distItem struct {
	node int
	dist float64
}

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
