package topology

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestPathReconstruction(t *testing.T) {
	g := New(4)
	if err := g.AddBidirectional(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(0, 3, 10); err != nil {
		t.Fatal(err)
	}
	path, err := g.Path(0, 3)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	self, err := g.Path(2, 2)
	if err != nil || len(self) != 1 || self[0] != 2 {
		t.Errorf("self path = %v, %v", self, err)
	}
}

func TestPathDisconnected(t *testing.T) {
	g := New(3)
	if err := g.AddBidirectional(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Path(0, 2); !errors.Is(err, ErrDisconnected) {
		t.Errorf("error = %v, want ErrDisconnected", err)
	}
	if _, _, err := g.ShortestPaths(9); err == nil {
		t.Error("bad source accepted")
	}
}

func TestLinkLoadsLineTopology(t *testing.T) {
	// Line 0-1-2, all accesses from node 0, file wholly at node 2:
	// every access crosses both links (and back, round trip).
	g, err := Line(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := LinkLoads(g, []float64{1, 0, 0}, []float64{0, 0, 1}, RoundTrip)
	if err != nil {
		t.Fatalf("LinkLoads: %v", err)
	}
	byLink := map[[2]int]float64{}
	for _, l := range loads {
		byLink[[2]int{l.From, l.To}] = l.Load
	}
	for _, link := range [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 0}} {
		if math.Abs(byLink[link]-1) > 1e-12 {
			t.Errorf("link %v load = %g, want 1", link, byLink[link])
		}
	}
	// One-way: only the forward direction carries traffic.
	oneway, err := LinkLoads(g, []float64{1, 0, 0}, []float64{0, 0, 1}, OneWay)
	if err != nil {
		t.Fatal(err)
	}
	if len(oneway) != 2 {
		t.Errorf("one-way loads = %v", oneway)
	}
}

func TestLinkLoadsReproduceAccessCostBudget(t *testing.T) {
	// Σ_links load·cost must equal λ·Σ_i C_i·x_i exactly: the link
	// breakdown and the node-level communication budget are two views of
	// the same traffic.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		g, err := RandomConnected(n, n, 0.5, 3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		rates := make([]float64, n)
		x := make([]float64, n)
		var xs float64
		for i := range rates {
			rates[i] = rng.Float64()
			x[i] = rng.Float64()
			xs += x[i]
		}
		for i := range x {
			x[i] /= xs
		}
		access, err := AccessCosts(g, rates, RoundTrip)
		if err != nil {
			t.Fatal(err)
		}
		var lambda, budget float64
		for _, r := range rates {
			lambda += r
		}
		for i := range x {
			budget += access[i] * x[i]
		}
		budget *= lambda

		loads, err := LinkLoads(g, rates, x, RoundTrip)
		if err != nil {
			t.Fatal(err)
		}
		// Recover per-link costs from the shortest-path structure by
		// querying single-hop distances.
		var spent float64
		sp, err := g.AllPairs()
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range loads {
			// A physical link's cost equals the shortest path between
			// its endpoints only when the link itself is a shortest
			// path; Path() routes over cheapest links, so every loaded
			// hop satisfies that.
			spent += l.Load * sp[l.From][l.To]
		}
		if math.Abs(spent-budget) > 1e-6*(1+budget) {
			t.Errorf("trial %d: link budget %g vs access-cost budget %g", trial, spent, budget)
		}
	}
}

func TestLinkLoadsFindHotLink(t *testing.T) {
	// Star: everything flows through the hub; hub links dominate.
	g, err := Star(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := LinkLoads(g, UniformRates(5, 1), []float64{0, 0.25, 0.25, 0.25, 0.25}, RoundTrip)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range loads {
		if l.From != 0 && l.To != 0 {
			t.Errorf("traffic on non-hub link %v", l)
		}
		if l.Load <= 0 {
			t.Errorf("empty load entry %v", l)
		}
	}
}

func TestLinkLoadsValidation(t *testing.T) {
	g, err := Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LinkLoads(g, []float64{1}, []float64{1, 0, 0, 0}, RoundTrip); !errors.Is(err, ErrBadRates) {
		t.Errorf("short rates: error = %v", err)
	}
}
