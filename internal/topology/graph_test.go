package topology

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShortestFromLine(t *testing.T) {
	g, err := Line(4, 2)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	dist, err := g.ShortestFrom(0)
	if err != nil {
		t.Fatalf("ShortestFrom: %v", err)
	}
	want := []float64{0, 2, 4, 6}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %g, want %g", i, dist[i], want[i])
		}
	}
}

func TestShortestPathPrefersCheapRoute(t *testing.T) {
	// Direct expensive link vs two cheap hops.
	g := New(3)
	if err := g.AddLink(0, 2, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	dist, err := g.ShortestFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != 2 {
		t.Errorf("dist[2] = %g, want 2 (via node 1)", dist[2])
	}
}

func TestAllPairsRing(t *testing.T) {
	g, err := Ring(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := g.AllPairs()
	if err != nil {
		t.Fatalf("AllPairs: %v", err)
	}
	// On a 4-ring with unit costs distances are 0,1,2,1 around each row.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d := float64(min(abs(i-j), 4-abs(i-j)))
			if sp[i][j] != d {
				t.Errorf("sp[%d][%d] = %g, want %g", i, j, sp[i][j], d)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestAllPairsDisconnected(t *testing.T) {
	g := New(3)
	if err := g.AddBidirectional(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllPairs(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("error = %v, want ErrDisconnected", err)
	}
}

func TestUnidirectionalRingIsOneWay(t *testing.T) {
	g, err := UnidirectionalRing([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := g.AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	// Forward 0->1 costs 1; backward 1->0 must travel the long way:
	// 2+3+4 = 9.
	if sp[0][1] != 1 || sp[1][0] != 9 {
		t.Errorf("sp[0][1]=%g sp[1][0]=%g, want 1 and 9", sp[0][1], sp[1][0])
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := New(2)
	tests := []struct {
		name string
		i, j int
		cost float64
	}{
		{"negative cost", 0, 1, -1},
		{"node out of range", 0, 5, 1},
		{"negative node", -1, 0, 1},
		{"nan cost", 0, 1, math.NaN()},
		{"inf cost", 0, 1, math.Inf(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddLink(tt.i, tt.j, tt.cost); !errors.Is(err, ErrBadEdge) {
				t.Errorf("error = %v, want ErrBadEdge", err)
			}
		})
	}
	if _, err := g.ShortestFrom(9); err == nil {
		t.Error("ShortestFrom out-of-range source: expected error")
	}
}

func TestGeneratorsShape(t *testing.T) {
	tests := []struct {
		name      string
		build     func() (*Graph, error)
		nodes     int
		degreeOf0 int
	}{
		{"ring", func() (*Graph, error) { return Ring(5, 1) }, 5, 2},
		{"mesh", func() (*Graph, error) { return FullMesh(5, 1) }, 5, 4},
		{"star hub", func() (*Graph, error) { return Star(5, 1) }, 5, 4},
		{"line end", func() (*Graph, error) { return Line(5, 1) }, 5, 1},
		{"grid corner", func() (*Graph, error) { return Grid(2, 3, 1) }, 6, 2},
		{"unidirectional ring", func() (*Graph, error) { return UnidirectionalRing([]float64{1, 1, 1}) }, 3, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if g.NumNodes() != tt.nodes {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), tt.nodes)
			}
			if g.Degree(0) != tt.degreeOf0 {
				t.Errorf("degree(0) = %d, want %d", g.Degree(0), tt.degreeOf0)
			}
			if _, err := g.AllPairs(); err != nil {
				t.Errorf("generated graph not strongly connected: %v", err)
			}
		})
	}
}

func TestGeneratorValidation(t *testing.T) {
	builders := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"tiny ring", func() (*Graph, error) { return Ring(2, 1) }},
		{"tiny mesh", func() (*Graph, error) { return FullMesh(1, 1) }},
		{"tiny star", func() (*Graph, error) { return Star(1, 1) }},
		{"tiny line", func() (*Graph, error) { return Line(1, 1) }},
		{"tiny grid", func() (*Graph, error) { return Grid(1, 1, 1) }},
		{"tiny unidirectional", func() (*Graph, error) { return UnidirectionalRing([]float64{1}) }},
		{"random too small", func() (*Graph, error) { return RandomConnected(1, 0, 1, 2, 1) }},
		{"random bad range", func() (*Graph, error) { return RandomConnected(4, 0, 3, 2, 1) }},
	}
	for _, tt := range builders {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestRandomConnectedIsDeterministicAndConnected(t *testing.T) {
	a, err := RandomConnected(12, 8, 1, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomConnected(12, 8, 1, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	spA, err := a.AllPairs()
	if err != nil {
		t.Fatalf("random graph disconnected: %v", err)
	}
	spB, err := b.AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range spA {
		for j := range spA[i] {
			if spA[i][j] != spB[i][j] {
				t.Fatalf("same seed produced different graphs at (%d,%d)", i, j)
			}
		}
	}
}

func TestRingDistances(t *testing.T) {
	// The paper's section 7 example distances: with link costs
	// ℓ(7→1)=4, ℓ(1→2)=2, ℓ(2→3)=3, ℓ(3→4)=2 the forward distances to
	// node 4 are 11 (from 7), 7 (from 1), 5 (from 2), 2 (from 3).
	// Using 0-based indices 0..6 for nodes 1..7: costs[i] = cost of
	// link i -> i+1.
	costs := []float64{2, 3, 2, 1, 1, 1, 4} // links 1→2,2→3,3→4,4→5,5→6,6→7,7→1
	d := RingDistances(costs)
	node4 := 3 // 0-based
	if d[6][node4] != 11 {
		t.Errorf("d(7→4) = %g, want 11", d[6][node4])
	}
	if d[0][node4] != 7 {
		t.Errorf("d(1→4) = %g, want 7", d[0][node4])
	}
	if d[1][node4] != 5 {
		t.Errorf("d(2→4) = %g, want 5", d[1][node4])
	}
	if d[2][node4] != 2 {
		t.Errorf("d(3→4) = %g, want 2", d[2][node4])
	}
	if d[node4][node4] != 0 {
		t.Errorf("d(4→4) = %g, want 0", d[node4][node4])
	}
}

// TestShortestPathProperties checks the triangle inequality and symmetry
// properties on random bidirectional graphs.
func TestShortestPathProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw)%10
		g, err := RandomConnected(n, n, 0.5, 4, seed)
		if err != nil {
			return false
		}
		sp, err := g.AllPairs()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if sp[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				// Bidirectional equal-cost links: symmetric.
				if math.Abs(sp[i][j]-sp[j][i]) > 1e-12 {
					return false
				}
				for k := 0; k < n; k++ {
					if sp[i][j] > sp[i][k]+sp[k][j]+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMaxSpread(t *testing.T) {
	if got := MaxSpread([]float64{3, 1, 4, 1, 5}); got != 4 {
		t.Errorf("MaxSpread = %g, want 4", got)
	}
	if got := MaxSpread(nil); got != 0 {
		t.Errorf("MaxSpread(nil) = %g, want 0", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
