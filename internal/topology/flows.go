package topology

import (
	"fmt"
	"math"
	"sort"
)

// ShortestPaths computes single-source shortest paths with parent
// tracking: dist[i] is the cost from src to i and parent[i] the
// predecessor of i on one cheapest path (-1 for src and unreachable
// nodes). Ties resolve to the lower-numbered parent for determinism.
func (g *Graph) ShortestPaths(src int) (dist []float64, parent []int, err error) {
	if src < 0 || src >= g.n {
		return nil, nil, fmt.Errorf("topology: source node %d outside graph of %d nodes", src, g.n)
	}
	dist = make([]float64, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0

	h := &distHeap{items: []distItem{{node: src, dist: 0}}}
	done := make([]bool, g.n)
	for h.Len() > 0 {
		it := h.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.cost
			switch {
			case nd < dist[e.to]:
				dist[e.to] = nd
				parent[e.to] = it.node
				h.push(distItem{node: e.to, dist: nd})
			case nd == dist[e.to] && parent[e.to] > it.node:
				parent[e.to] = it.node
			}
		}
	}
	return dist, parent, nil
}

// Path returns the node sequence of one cheapest route from i to j
// (inclusive of both endpoints).
func (g *Graph) Path(i, j int) ([]int, error) {
	_, parent, err := g.ShortestPaths(i)
	if err != nil {
		return nil, err
	}
	if i == j {
		return []int{i}, nil
	}
	if parent[j] < 0 {
		return nil, fmt.Errorf("%w: no path %d->%d", ErrDisconnected, i, j)
	}
	var rev []int
	for at := j; at != -1; at = parent[at] {
		rev = append(rev, at)
		if at == i {
			break
		}
	}
	if rev[len(rev)-1] != i {
		return nil, fmt.Errorf("%w: broken parent chain %d->%d", ErrDisconnected, i, j)
	}
	path := make([]int, len(rev))
	for k := range rev {
		path[k] = rev[len(rev)-1-k]
	}
	return path, nil
}

// LinkLoad identifies a directed physical link and the access traffic
// crossing it.
type LinkLoad struct {
	From, To int
	// Load is the traffic rate over the link (accesses per time unit).
	Load float64
}

// LinkLoads computes the per-link traffic induced by an allocation under
// shortest-path routing: node j sends accesses toward node i at rate
// λ_j·x_i; each request crosses every link of the cheapest j→i route, and
// under the RoundTrip convention the response crosses the cheapest i→j
// route. Local accesses (i == j) cross nothing. The result is sorted by
// (From, To).
//
// This is the capacity-planning companion of AccessCosts: summing
// Load·linkCost over all links reproduces λ·Σ_i C_i·x_i exactly (verified
// by tests), while the per-link breakdown exposes WHERE that budget is
// spent — the hot links a deployment must provision.
func LinkLoads(g *Graph, rates, x []float64, conv CostConvention) ([]LinkLoad, error) {
	n := g.NumNodes()
	if len(rates) != n || len(x) != n {
		return nil, fmt.Errorf("%w: %d rates / %d fractions for %d nodes", ErrBadRates, len(rates), len(x), n)
	}
	loads := make(map[[2]int]float64)
	addPath := func(from, to int, rate float64) error {
		path, err := g.Path(from, to)
		if err != nil {
			return err
		}
		for k := 0; k+1 < len(path); k++ {
			loads[[2]int{path[k], path[k+1]}] += rate
		}
		return nil
	}
	for j := 0; j < n; j++ {
		if rates[j] <= 0 {
			continue
		}
		for i := 0; i < n; i++ {
			if i == j || x[i] <= 0 {
				continue
			}
			rate := rates[j] * x[i]
			if err := addPath(j, i, rate); err != nil {
				return nil, err
			}
			if conv == RoundTrip {
				if err := addPath(i, j, rate); err != nil {
					return nil, err
				}
			}
		}
	}
	out := make([]LinkLoad, 0, len(loads))
	for key, load := range loads {
		out = append(out, LinkLoad{From: key[0], To: key[1], Load: load})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out, nil
}
