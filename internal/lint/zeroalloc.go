package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// zeroAllocDirective marks a function whose body — and, since the
// call-graph upgrade, whose reachable callees — must stay free of
// allocation constructs. The local half is source-level: the annotated
// body itself may not contain make, new, append to a slice the caller
// does not own, escaping composite literals, or capturing closures. The
// transitive half walks the module call graph: any statically resolvable
// callee (any package, any depth) containing such a construct is a
// diagnostic at the first call edge leaving the annotated function,
// unless the callee is itself annotated //fap:zeroalloc (its own body is
// checked directly) or carries //fap:allocok (a justified cold-path
// allocation site, e.g. a grow helper). Calls through interfaces,
// function values, and into packages outside the module are opaque — see
// BuildGraph — so the AllocsPerRun tests remain the runtime ground truth
// for dynamically dispatched paths; this analyzer catches everything the
// static call structure pins down, including cross-package helpers an
// exercised-path test never reaches.
const zeroAllocDirective = "//fap:zeroalloc"

// ZeroAlloc enforces the //fap:zeroalloc annotation contract.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "functions annotated //fap:zeroalloc must not contain or reach allocation constructs",
	Run:  runZeroAlloc,
}

func runZeroAlloc(p *Pass) {
	facts := newAllocFacts(p.Graph)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, zeroAllocDirective) {
				continue
			}
			checkZeroAlloc(p, fd)
			checkZeroAllocTransitive(p, fd, facts)
		}
	}
}

// hasDirective reports whether doc contains a comment line that is
// exactly directive or starts with directive followed by a space.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func checkZeroAlloc(p *Pass, fd *ast.FuncDecl) {
	callerOwned := collectParams(p.Info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := p.Info.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make":
				p.Reportf(n.Pos(), "make in a //fap:zeroalloc function; hoist the buffer to the caller or a grow helper outside the hot path")
			case "new":
				p.Reportf(n.Pos(), "new in a //fap:zeroalloc function; hoist the value to the caller")
			case "append":
				if len(n.Args) > 0 && !rootedInParam(p.Info, n.Args[0], callerOwned) {
					p.Reportf(n.Pos(), "append to a slice the caller does not own may grow and allocate; append into a caller-owned buffer")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "address of a composite literal escapes to the heap in a //fap:zeroalloc function")
				}
			}
		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(n.Pos(), "slice or map literal allocates in a //fap:zeroalloc function")
			}
		case *ast.FuncLit:
			if name := capturedLocal(p.Info, fd, n); name != "" {
				p.Reportf(n.Pos(), "closure captures %q and allocates in a //fap:zeroalloc function", name)
			}
		}
		return true
	})
}

// checkZeroAllocTransitive walks the call graph from the annotated
// function and reports, at the first outgoing call edge, every reachable
// callee body containing an allocating construct. Each offending callee
// is reported once per annotated root.
func checkZeroAllocTransitive(p *Pass, fd *ast.FuncDecl, facts *allocFacts) {
	root, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok || p.Graph == nil {
		return
	}
	p.Graph.Walk(root, func(fn *types.Func, path []GraphCall) bool {
		node := p.Graph.NodeOf(fn)
		if node == nil {
			return true // external or interface callee: opaque by contract
		}
		if hasDirective(node.Decl.Doc, zeroAllocDirective) {
			// The callee carries its own contract; its body (and subtree)
			// is checked at its own declaration, not re-blamed here.
			return false
		}
		if hasDirective(node.Decl.Doc, allocOKPrefix) {
			return false // justified allocation site; don't descend
		}
		if desc, ok := facts.allocates(node); ok {
			p.Reportf(path[0].Pos, "call to %s in a //fap:zeroalloc function reaches an allocating construct: %s (path: %s)",
				shortFuncName(path[0].Callee), desc, renderPath(root, path))
			return false // one finding per offending callee; don't pile on its subtree
		}
		return true
	})
}

// allocFacts lazily computes and memoizes, per declared function, the
// first allocating construct its own body contains (ignoring what its
// callees do — the graph walk composes the verdicts).
type allocFacts struct {
	graph *Graph
	memo  map[*types.Func]allocFact
}

type allocFact struct {
	desc string
	has  bool
}

func newAllocFacts(g *Graph) *allocFacts {
	return &allocFacts{graph: g, memo: make(map[*types.Func]allocFact)}
}

// allocates returns a description of the first allocating construct in
// node's body, judged by the same rules as the local zeroalloc check
// with node's own parameters as the caller-owned set.
func (af *allocFacts) allocates(node *GraphNode) (string, bool) {
	if fact, ok := af.memo[node.Fn]; ok {
		return fact.desc, fact.has
	}
	info := node.Pkg.Info
	owned := collectParams(info, node.Decl)
	var fact allocFact
	record := func(what string, pos token.Pos) {
		if fact.has {
			return
		}
		position := node.Pkg.Fset.Position(pos)
		fact = allocFact{desc: what + " at " + position.Filename + ":" + strconv.Itoa(position.Line), has: true}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if fact.has {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := info.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make":
				record("make", n.Pos())
			case "new":
				record("new", n.Pos())
			case "append":
				if len(n.Args) > 0 && !rootedInParam(info, n.Args[0], owned) {
					record("growing append", n.Pos())
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					record("escaping composite literal", n.Pos())
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				record("slice or map literal", n.Pos())
			}
		case *ast.FuncLit:
			if name := capturedLocal(info, node.Decl, n); name != "" {
				record("closure capturing "+name, n.Pos())
			}
		}
		return true
	})
	af.memo[node.Fn] = fact
	return fact.desc, fact.has
}

// collectParams returns the objects of fd's receiver and parameters — the
// values the caller owns, and therefore the only legitimate append targets
// in a zero-alloc body.
func collectParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

// rootedInParam reports whether e's leftmost base is a parameter or the
// receiver (e.g. buf, step.Delta, r.scratch[i]).
func rootedInParam(info *types.Info, e ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return owned[info.Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// capturedLocal returns the name of a variable declared in the enclosing
// function but referenced inside lit, which forces the closure (and the
// variable) to be heap-allocated. It returns "" when lit captures nothing.
func capturedLocal(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= outer.Pos() && pos <= outer.End() && (pos < lit.Pos() || pos > lit.End()) {
			captured = id.Name
			return false
		}
		return true
	})
	return captured
}
