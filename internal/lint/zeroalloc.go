package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// zeroAllocDirective marks a function whose body must stay free of
// allocation constructs. The contract is per-function and source-level:
// the annotated body itself may not contain make, new, append to a slice
// the caller does not own, escaping composite literals, or capturing
// closures. Callees are not checked transitively (a cold-path grow helper
// may allocate); the AllocsPerRun tests remain the runtime ground truth for
// the composed hot path — this analyzer keeps them honest at the source
// level by catching new allocation sites the moment they are written.
const zeroAllocDirective = "//fap:zeroalloc"

// ZeroAlloc enforces the //fap:zeroalloc annotation contract.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "functions annotated //fap:zeroalloc must not contain allocation constructs",
	Run:  runZeroAlloc,
}

func runZeroAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasZeroAllocDirective(fd.Doc) {
				continue
			}
			checkZeroAlloc(p, fd)
		}
	}
}

func hasZeroAllocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == zeroAllocDirective || strings.HasPrefix(c.Text, zeroAllocDirective+" ") {
			return true
		}
	}
	return false
}

func checkZeroAlloc(p *Pass, fd *ast.FuncDecl) {
	callerOwned := collectParams(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := p.Info.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make":
				p.Reportf(n.Pos(), "make in a //fap:zeroalloc function; hoist the buffer to the caller or a grow helper outside the hot path")
			case "new":
				p.Reportf(n.Pos(), "new in a //fap:zeroalloc function; hoist the value to the caller")
			case "append":
				if len(n.Args) > 0 && !rootedInParam(p, n.Args[0], callerOwned) {
					p.Reportf(n.Pos(), "append to a slice the caller does not own may grow and allocate; append into a caller-owned buffer")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "address of a composite literal escapes to the heap in a //fap:zeroalloc function")
				}
			}
		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(n.Pos(), "slice or map literal allocates in a //fap:zeroalloc function")
			}
		case *ast.FuncLit:
			if name := capturedLocal(p, fd, n); name != "" {
				p.Reportf(n.Pos(), "closure captures %q and allocates in a //fap:zeroalloc function", name)
			}
		}
		return true
	})
}

// collectParams returns the objects of fd's receiver and parameters — the
// values the caller owns, and therefore the only legitimate append targets
// in a zero-alloc body.
func collectParams(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

// rootedInParam reports whether e's leftmost base is a parameter or the
// receiver (e.g. buf, step.Delta, r.scratch[i]).
func rootedInParam(p *Pass, e ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return owned[p.Info.Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// capturedLocal returns the name of a variable declared in the enclosing
// function but referenced inside lit, which forces the closure (and the
// variable) to be heap-allocated. It returns "" when lit captures nothing.
func capturedLocal(p *Pass, outer *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= outer.Pos() && pos <= outer.End() && (pos < lit.Pos() || pos > lit.End()) {
			captured = id.Name
			return false
		}
		return true
	})
	return captured
}
