package lint

import (
	"go/ast"
	"go/types"
)

// dropNames are the transport- and recovery-layer calls whose results must
// never be discarded: Send/Recv/Close report delivery failures the
// protocol must react to, a Stats snapshot fetched and dropped is dead
// code hiding a forgotten assertion, and a checkpoint save, load, seal, or
// validation whose verdict vanishes silently turns crash recovery into a
// corrupt-state replay.
var dropNames = map[string]bool{
	"Send":      true,
	"Recv":      true,
	"Close":     true,
	"Stats":     true,
	"SaveRound": true,
	"Latest":    true,
	"Seal":      true,
	"Validate":  true,
	"WriteFile": true,
	"ReadFile":  true,
}

// ErrDrop forbids discarding the results of Send, Recv, Close, and Stats
// calls in the transport and agent packages — and of the checkpoint
// persistence calls (SaveRound, Latest, Seal, Validate, WriteFile,
// ReadFile) in the recovery package — whether by a bare expression
// statement, a defer/go statement, or a blank assignment of the error
// result. Dropped transport errors were the root cause of two of PR 1's
// four TCP bugs; this keeps them from coming back.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "results of Send/Recv/Close/Stats and checkpoint Save/Load/Validate calls may not be discarded",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	if !hasSegment(p.Path, blockingSegments) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := dropCallName(p, call); name != "" {
						p.Reportf(call.Pos(), "result of %s discarded; handle or record the error", name)
					}
				}
			case *ast.DeferStmt:
				if name := dropCallName(p, n.Call); name != "" {
					p.Reportf(n.Call.Pos(), "result of deferred %s discarded; wrap it and handle the error", name)
				}
			case *ast.GoStmt:
				if name := dropCallName(p, n.Call); name != "" {
					p.Reportf(n.Call.Pos(), "result of %s discarded by go statement; collect the error in the goroutine", name)
				}
			case *ast.AssignStmt:
				checkBlankDrop(p, n)
			}
			return true
		})
	}
}

// dropCallName returns a printable callee name when call is a guarded call
// whose results exist to be checked, and "" otherwise.
func dropCallName(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p.Info, call)
	if fn == nil || !dropNames[fn.Name()] {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return ""
	}
	return fn.Name()
}

// checkBlankDrop flags blank assignments of a guarded call's results:
// either the whole result list thrown away, or the error result
// specifically blanked (`msg, _ := ep.Recv(ctx)`).
func checkBlankDrop(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || !dropNames[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	results := sig.Results()
	allBlank := true
	errBlanked := false
	for i, lhs := range as.Lhs {
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		blank := isIdent && id.Name == "_"
		if !blank {
			allBlank = false
		}
		if blank && i < results.Len() && isErrorType(results.At(i).Type()) {
			errBlanked = true
		}
	}
	if allBlank {
		p.Reportf(call.Pos(), "all results of %s assigned to blank; handle or record them", fn.Name())
	} else if errBlanked {
		p.Reportf(call.Pos(), "error result of %s assigned to blank; handle or record it", fn.Name())
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
