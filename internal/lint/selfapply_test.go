package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestSelfApplication runs the full analyzer suite — with the stale-
// suppression audit on — over the real module, the same invocation
// scripts/check.sh gates on, and requires zero diagnostics, so the gate
// cannot silently drift away from the tree: any new violation (or a
// //fap:ignore directive that stopped suppressing anything) fails this
// test before it fails CI.
func TestSelfApplication(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading the module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module pattern is not resolving", len(pkgs))
	}
	for _, d := range lint.RunWithOptions(pkgs, lint.All(), lint.Options{ReportUnusedIgnores: true}) {
		t.Errorf("fapvet is not clean on the module: %s", d)
	}
}
