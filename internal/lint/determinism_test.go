package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestDeterminism proves the analyzer catches every seeded violation in the
// numeric-named fixture and stays silent both on the fixture's clean
// functions (seeded RNG, sorted-key accumulation, integer counting) and on
// an entire non-numeric package using the same constructs. The core case
// is the transitive layer: solver entry points reaching clockutil's
// nondeterminism through call chains a per-function pass cannot see, while
// the same reach from a non-entry-point method stays silent.
func TestDeterminism(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "costmodel", analyzer: lint.Determinism, wants: 6},
		{pkg: "clockutil", analyzer: lint.Determinism, wants: 0},
		{pkg: "recovery", analyzer: lint.Determinism, wants: 2},
		{pkg: "core", analyzer: lint.Determinism, wants: 2, deps: []string{"clockutil"}},
		{pkg: "gossip", analyzer: lint.Determinism, wants: 3},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
