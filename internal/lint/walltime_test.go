package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestWallTime proves the analyzer flags a time import inside a
// metrics-segment package, flags a metrics function laundering the clock
// through a helper package the import ban cannot see, and ignores the
// same constructs everywhere else (clockutil imports time freely and must
// stay silent).
func TestWallTime(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "metrics", analyzer: lint.WallTime, wants: 2, deps: []string{"clockutil"}},
		{pkg: "loadgen", analyzer: lint.WallTime, wants: 2, deps: []string{"clockutil"}},
		{pkg: "clockutil", analyzer: lint.WallTime, wants: 0},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
