package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleakSegments names the packages that spawn long-lived goroutines: the
// agent runtime, the transport layer, the sweep driver, the recovery
// machinery, the catalog's sharded solvers, and the load generator's
// firing engine. cmd/ binaries are exempt — their goroutines die with the
// process.
var goleakSegments = map[string]bool{
	"agent":     true,
	"transport": true,
	"sweep":     true,
	"recovery":  true,
	"catalog":   true,
	"loadgen":   true,
	"gossip":    true,
}

// GoLeak requires every go statement in a concurrent package to be tied to
// a shutdown mechanism the rest of the module can drive: the spawned body
// (or, via the call graph, anything it statically reaches) must signal a
// sync.WaitGroup with Done, watch a context's Done channel, or receive
// from a channel the package close()s somewhere — the tracked-Close idiom
// the transport endpoints use. A goroutine with none of the three has no
// path from shutdown code to its exit, which is exactly how PR-4-era
// acceptLoop leaks accumulated until the churn experiments started
// counting goroutines.
//
// Spawns through function values (go fn() where fn is a variable or field)
// are unresolvable without a pointer analysis and are reported as such:
// make the spawn direct, or record a //fap:ignore with the shutdown story.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement in agent/transport/sweep/recovery/catalog must be tied to a WaitGroup, a context, or a close()d channel",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	if !hasSegment(p.Path, goleakSegments) {
		return
	}
	c := &goleakChecker{
		graph:  p.Graph,
		closed: make(map[*types.Info]map[types.Object]bool),
		memo:   make(map[*types.Func]bool),
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if !c.litTracked(p, fun) {
					p.Reportf(g.Pos(), "goroutine is not tied to a WaitGroup, context, or close()d channel; shutdown has no way to reach its exit")
				}
			default:
				fn := calleeFunc(p.Info, g.Call)
				if fn == nil {
					p.Reportf(g.Pos(), "go through a function value cannot be checked for a shutdown path; spawn a declared function or record the shutdown story in a //fap:ignore")
					return true
				}
				if !c.fnTracked(fn) {
					p.Reportf(g.Pos(), "goroutine %s is not tied to a WaitGroup, context, or close()d channel; shutdown has no way to reach its exit", shortFuncName(fn))
				}
			}
			return true
		})
	}
}

// goleakChecker memoizes, per function, whether its body or anything it
// statically reaches contains a tracking construct, and caches each
// package's set of close()d channel objects (keyed by the package's
// *types.Info, the pointer a Pass and the graph's nodes share).
type goleakChecker struct {
	graph  *Graph
	closed map[*types.Info]map[types.Object]bool
	memo   map[*types.Func]bool
}

// litTracked reports whether a spawned function literal is tracked: a
// tracking construct in its own body, or a statically resolved call to a
// tracked declared function.
func (c *goleakChecker) litTracked(p *Pass, lit *ast.FuncLit) bool {
	return c.bodyTracked(p.Info, p.Files, lit.Body)
}

// fnTracked reports whether fn's declared body (or its static call
// subtree) contains a tracking construct. Functions outside the loaded
// packages are opaque and count as untracked.
func (c *goleakChecker) fnTracked(fn *types.Func) bool {
	if v, ok := c.memo[fn]; ok {
		return v
	}
	c.memo[fn] = false // recursion terminates untracked
	node := c.graph.NodeOf(fn)
	if node == nil {
		return false
	}
	tracked := c.bodyTracked(node.Pkg.Info, node.Pkg.Files, node.Decl.Body)
	c.memo[fn] = tracked
	return tracked
}

// bodyTracked scans one body for the three tracking constructs, and
// recurses into statically resolved callees.
func (c *goleakChecker) bodyTracked(info *types.Info, files []*ast.File, body ast.Node) bool {
	closed := c.closedSet(info, files)
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "sync" && fn.Name() == "Done":
				tracked = true // wg.Done: the spawner's Wait observes the exit
			case fn.Pkg().Path() == "context" && fn.Name() == "Done":
				tracked = true // <-ctx.Done(): cancellation reaches the body
			case c.fnTracked(fn):
				tracked = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && closed[chanObject(info, n.X)] {
				tracked = true // receive on a channel the package close()s
			}
		case *ast.RangeStmt:
			if n.X == nil {
				return true
			}
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && closed[chanObject(info, n.X)] {
					tracked = true // range over a close()d channel terminates
				}
			}
		}
		return true
	})
	return tracked
}

// closedSet returns the objects (locals, package vars, struct fields) that
// appear as close() arguments anywhere in the package's files.
func (c *goleakChecker) closedSet(info *types.Info, files []*ast.File) map[types.Object]bool {
	if set, ok := c.closed[info]; ok {
		return set
	}
	set := make(map[types.Object]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
				return true
			}
			if obj := chanObject(info, call.Args[0]); obj != nil {
				set[obj] = true
			}
			return true
		})
	}
	c.closed[info] = set
	return set
}

// chanObject resolves a channel expression to its object identity: the
// variable for plain identifiers, the field object for selectors (shared
// across every instance of the struct, which is the tracking granularity
// we want — close(e.done) in Close tracks <-e.done in any goroutine).
func chanObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}
