package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// numericSegments names the packages whose results must be bit-reproducible:
// the solver core, the cost models, and every experiment driver that feeds a
// figure. A package is "numeric" when any segment of its import path matches.
var numericSegments = map[string]bool{
	"core":        true,
	"costmodel":   true,
	"secondorder": true,
	"sweep":       true,
	"experiments": true,
	"multicopy":   true,
	"replication": true,
	"recovery":    true, // checkpoints must replay bit-identically
	"catalog":     true, // solved catalogs must be byte-identical across worker counts
}

// randConstructors are the math/rand functions that build explicit seeded
// sources rather than drawing from the process-wide one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Determinism forbids the three nondeterminism sources that have bitten
// numeric reproductions of the paper: wall-clock reads, the global
// math/rand source, and floating-point accumulation driven by map iteration
// order (the exact bug class behind PR 2's Fig6 α-grid fix — float results
// must not depend on traversal order).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand, and map-ordered float accumulation in numeric packages",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if !hasSegment(p.Path, numericSegments) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(p, n)
			case *ast.RangeStmt:
				if _, ok := p.Info.TypeOf(n.X).Underlying().(*types.Map); ok {
					checkMapRangeAccum(p, n)
				}
			}
			return true
		})
	}
}

func checkDeterministicCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			p.Reportf(call.Pos(), "time.Now in a numeric package makes results run-dependent; take timestamps outside the numeric path")
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicit *rand.Rand are fine
		}
		if randConstructors[fn.Name()] {
			return
		}
		p.Reportf(call.Pos(), "%s.%s draws from the shared process-wide source; use an explicit seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRangeAccum flags floating-point accumulations anywhere under a
// range-over-map body: the iteration order varies run to run, and float
// addition does not commute under reordering, so the accumulated value is
// nondeterministic.
func checkMapRangeAccum(p *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(p.Info.TypeOf(as.Lhs[0])) {
				p.Reportf(as.Pos(), "floating-point accumulation inside range over a map depends on iteration order; iterate over sorted keys")
			}
		case token.ASSIGN:
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id]
				if obj == nil || !isFloat(obj.Type()) {
					continue
				}
				if _, isBin := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); isBin && exprUsesObject(p.Info, as.Rhs[i], obj) {
					p.Reportf(as.Pos(), "floating-point accumulation inside range over a map depends on iteration order; iterate over sorted keys")
				}
			}
		}
		return true
	})
}

// exprUsesObject reports whether obj is referenced anywhere in e.
func exprUsesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
