package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// numericSegments names the packages whose results must be bit-reproducible:
// the solver core, the cost models, and every experiment driver that feeds a
// figure. A package is "numeric" when any segment of its import path matches.
var numericSegments = map[string]bool{
	"core":        true,
	"costmodel":   true,
	"secondorder": true,
	"sweep":       true,
	"experiments": true,
	"multicopy":   true,
	"replication": true,
	"recovery":    true, // checkpoints must replay bit-identically
	"catalog":     true, // solved catalogs must be byte-identical across worker counts
	"gossip":      true, // tree folds and exchange schedules must replay bit-identically
}

// randConstructors are the math/rand functions that build explicit seeded
// sources rather than drawing from the process-wide one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// solverRoots names the deterministic solver entry points (Theorem 2's
// iteration and everything batched on top of it) whose *entire reachable
// call trees* must stay free of nondeterminism, regardless of which
// package a helper lives in. A function is a root when its package path
// has the segment, its receiver's type name matches, and its name is
// listed.
var solverRoots = []struct {
	segment string
	recv    string
	names   map[string]bool
}{
	{"core", "Allocator", map[string]bool{"Run": true, "RunWithScratch": true, "Solve": true}},
	{"core", "WarmSolver", map[string]bool{"Solve": true, "SolveWarm": true}},
	{"catalog", "Catalog", map[string]bool{"SolveCold": true, "ReSolve": true, "Sense": true, "Drift": true}},
}

// Determinism forbids the three nondeterminism sources that have bitten
// numeric reproductions of the paper: wall-clock reads, the global
// math/rand source, and floating-point accumulation driven by map iteration
// order (the exact bug class behind PR 2's Fig6 α-grid fix — float results
// must not depend on traversal order). Two layers:
//
//   - Locally, every function in a numeric package (numericSegments) is
//     checked for the three constructs, as before.
//   - Transitively, the solver entry points (solverRoots) are
//     taint-walked over the module call graph: a helper in a
//     *non-numeric* package that reads the clock, draws from the global
//     source, or accumulates floats over a map range poisons every
//     solver that can reach it, and is reported at the solver's first
//     call edge toward it. Helpers in numeric packages are already
//     flagged at their own site by the local layer and are not re-blamed.
//     Interface and function-value calls are opaque (see BuildGraph).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand, and map-ordered float accumulation in numeric packages and everywhere solver entry points can reach",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if hasSegment(p.Path, numericSegments) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDeterministicCall(p, n)
				case *ast.RangeStmt:
					if _, ok := p.Info.TypeOf(n.X).Underlying().(*types.Map); ok {
						checkMapRangeAccum(p, n)
					}
				}
				return true
			})
		}
	}
	runDeterminismTaint(p)
}

// runDeterminismTaint walks the call graph from every solver root
// declared in the current package.
func runDeterminismTaint(p *Pass) {
	if p.Graph == nil {
		return
	}
	facts := newTaintFacts()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isSolverRoot(p, fd) {
				continue
			}
			root, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.Graph.Walk(root, func(fn *types.Func, path []GraphCall) bool {
				node := p.Graph.NodeOf(fn)
				if node == nil {
					return true // external callee: identity checks happen in taintOf at the caller
				}
				if hasSegment(node.Pkg.Path, numericSegments) {
					return true // locally checked at its own site; keep descending
				}
				if desc, tainted := facts.taintOf(node); tainted {
					p.Reportf(path[0].Pos, "solver entry point %s reaches nondeterminism: %s (path: %s)",
						shortFuncName(root), desc, renderPath(root, path))
					return false
				}
				return true
			})
		}
	}
}

// isSolverRoot reports whether fd matches a solverRoots entry for the
// current package.
func isSolverRoot(p *Pass, fd *ast.FuncDecl) bool {
	for _, spec := range solverRoots {
		if !hasSegment(p.Path, map[string]bool{spec.segment: true}) {
			continue
		}
		if !spec.names[fd.Name.Name] {
			continue
		}
		if recvTypeName(p.Info, fd) == spec.recv {
			return true
		}
	}
	return false
}

// recvTypeName returns the bare type name of fd's receiver ("" for plain
// functions).
func recvTypeName(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func checkDeterministicCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			p.Reportf(call.Pos(), "time.Now in a numeric package makes results run-dependent; take timestamps outside the numeric path")
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicit *rand.Rand are fine
		}
		if randConstructors[fn.Name()] {
			return
		}
		p.Reportf(call.Pos(), "%s.%s draws from the shared process-wide source; use an explicit seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRangeAccum flags floating-point accumulations anywhere under a
// range-over-map body: the iteration order varies run to run, and float
// addition does not commute under reordering, so the accumulated value is
// nondeterministic.
func checkMapRangeAccum(p *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(p.Info.TypeOf(as.Lhs[0])) {
				p.Reportf(as.Pos(), "floating-point accumulation inside range over a map depends on iteration order; iterate over sorted keys")
			}
		case token.ASSIGN:
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id]
				if obj == nil || !isFloat(obj.Type()) {
					continue
				}
				if _, isBin := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); isBin && exprUsesObject(p.Info, as.Rhs[i], obj) {
					p.Reportf(as.Pos(), "floating-point accumulation inside range over a map depends on iteration order; iterate over sorted keys")
				}
			}
		}
		return true
	})
}

// taintFacts lazily computes, per declared function, the first
// nondeterminism source its own body contains — the same three constructs
// the local layer flags, but judged for any package so the solver-root
// walk can blame helpers outside the numeric set.
type taintFacts struct {
	memo map[*types.Func]allocFact // reuse the (desc, has) pair
}

func newTaintFacts() *taintFacts { return &taintFacts{memo: make(map[*types.Func]allocFact)} }

func (tf *taintFacts) taintOf(node *GraphNode) (string, bool) {
	if fact, ok := tf.memo[node.Fn]; ok {
		return fact.desc, fact.has
	}
	info := node.Pkg.Info
	var fact allocFact
	record := func(what string, pos token.Pos) {
		if fact.has {
			return
		}
		position := node.Pkg.Fset.Position(pos)
		fact = allocFact{desc: fmt.Sprintf("%s at %s:%d", what, position.Filename, position.Line), has: true}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if fact.has {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					record("time.Now", n.Pos())
				}
			case "math/rand", "math/rand/v2":
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil || randConstructors[fn.Name()] {
					return true
				}
				record(fn.Pkg().Name()+"."+fn.Name()+" (shared process-wide source)", n.Pos())
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); !ok {
				return true
			}
			if pos, found := findMapRangeAccum(info, n); found {
				record("float accumulation over map range", pos)
			}
		}
		return true
	})
	tf.memo[node.Fn] = fact
	return fact.desc, fact.has
}

// findMapRangeAccum is checkMapRangeAccum's fact form: it returns the
// position of the first order-sensitive float accumulation under a
// range-over-map body instead of reporting it.
func findMapRangeAccum(info *types.Info, rng *ast.RangeStmt) (token.Pos, bool) {
	var at token.Pos
	found := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(info.TypeOf(as.Lhs[0])) {
				at, found = as.Pos(), true
			}
		case token.ASSIGN:
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				if obj == nil || !isFloat(obj.Type()) {
					continue
				}
				if _, isBin := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); isBin && exprUsesObject(info, as.Rhs[i], obj) {
					at, found = as.Pos(), true
				}
			}
		}
		return true
	})
	return at, found
}

// exprUsesObject reports whether obj is referenced anywhere in e.
func exprUsesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
