package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestCtxFirst proves the parameter-order rule across declarations,
// interface methods, and function types, and the struct-storage rule with
// its sweep-package exemption (where parameter order is still enforced).
func TestCtxFirst(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "ctxfix", analyzer: lint.CtxFirst, wants: 4},
		{pkg: "sweep", analyzer: lint.CtxFirst, wants: 1},
		{pkg: "loadgen", analyzer: lint.CtxFirst, wants: 1},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
