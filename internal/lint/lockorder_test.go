package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestLockOrder proves the analyzer reports each inversion cycle exactly
// once: the direct two-lock inversion, and the inversion assembled through
// a helper call that only the call graph connects — while consistent
// orders (including ones using deferred unlocks) stay silent.
func TestLockOrder(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "agent/lockordfix", analyzer: lint.LockOrder, wants: 2},
		{pkg: "clockutil", analyzer: lint.LockOrder, wants: 0},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
