package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// lockorderSegments names the packages with enough mutexes for ordering to
// matter: the agent runtime, the transport layer (four mutexes in the
// fault injector alone), and the recovery machinery.
var lockorderSegments = map[string]bool{
	"agent":     true,
	"transport": true,
	"recovery":  true,
}

// LockOrder builds a per-package lock-acquisition graph and reports
// inversion cycles: if one code path locks A then B while another locks B
// then A, two goroutines can each hold one lock and wait forever on the
// other. Lock identity is the declared object — a struct field counts as
// one lock across every instance, which over-approximates (two distinct
// instances cannot deadlock on the same field) but matches how the
// module's singletons are used.
//
// Acquisition edges come from a lexical replay of each function, in source
// order, the same simulation lockguard uses: Lock/RLock acquires,
// Unlock/RUnlock releases, deferred unlocks release only at return. A call
// to a declared function while holding A additionally adds edges from A to
// every lock the callee's static call subtree acquires, so an inversion
// split across helpers is still seen. Calls through interfaces and
// function values are opaque; cycles threaded through them are missed.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order inversion cycles in the per-package lock-acquisition graph of agent/transport/recovery",
	Run:  runLockOrder,
}

// lockEdge is one observed ordering: to was acquired while from was held.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos // the acquisition of to
}

func runLockOrder(p *Pass) {
	if !hasSegment(p.Path, lockorderSegments) {
		return
	}
	c := &lockOrderChecker{graph: p.Graph, memo: make(map[*types.Func]map[types.Object]bool)}
	var edges []lockEdge
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				edges = append(edges, c.replayEdges(p.Info, fd)...)
			}
		}
	}
	reportLockCycles(p, edges)
}

// lockOrderChecker memoizes the set of lock objects each declared
// function's static call subtree acquires.
type lockOrderChecker struct {
	graph *Graph
	memo  map[*types.Func]map[types.Object]bool
}

// lockObject resolves a mutex expression (the receiver of Lock/Unlock) to
// its declared object: field, package var, or local.
func lockObject(info *types.Info, e ast.Expr) types.Object {
	return chanObject(info, e) // same resolution rules as channels
}

// acquires returns the lock objects fn's body and static call subtree
// acquire. Opaque and external callees contribute nothing.
func (c *lockOrderChecker) acquires(fn *types.Func) map[types.Object]bool {
	if set, ok := c.memo[fn]; ok {
		return set
	}
	c.memo[fn] = nil // recursion contributes nothing new on the cycle
	node := c.graph.NodeOf(fn)
	if node == nil {
		return nil
	}
	set := make(map[types.Object]bool)
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "sync" {
			if callee.Name() == "Lock" || callee.Name() == "RLock" {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if obj := lockObject(info, sel.X); obj != nil {
						set[obj] = true
					}
				}
			}
			return true
		}
		for obj := range c.acquires(callee) {
			set[obj] = true
		}
		return true
	})
	c.memo[fn] = set
	return set
}

// replayEdges replays fd's body in source order and returns the ordering
// edges it exhibits: every lock (or transitive lock, through a call) taken
// while another lock is held.
func (c *lockOrderChecker) replayEdges(info *types.Info, fd *ast.FuncDecl) []lockEdge {
	var deferRanges [][2]int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferRanges = append(deferRanges, [2]int{int(d.Pos()), int(d.End())})
		}
		return true
	})
	inDefer := func(pos int) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	type event struct {
		pos  int
		kind int // evLock, evUnlock, or 3 for a call acquiring locks transitively
		obj  types.Object
		via  map[types.Object]bool // kind 3: locks the callee subtree acquires
	}
	const evCall = 3
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		pos := int(call.Pos())
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := lockObject(info, sel.X)
			if obj == nil {
				return true
			}
			switch fn.Name() {
			case "Lock", "RLock":
				events = append(events, event{pos, evLock, obj, nil})
			case "Unlock", "RUnlock":
				if !inDefer(pos) {
					events = append(events, event{pos, evUnlock, obj, nil})
				}
			}
			return true
		}
		if via := c.acquires(fn); len(via) > 0 {
			events = append(events, event{pos, evCall, nil, via})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var edges []lockEdge
	var held []types.Object
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			for _, h := range held {
				if h != ev.obj {
					edges = append(edges, lockEdge{h, ev.obj, token.Pos(ev.pos)})
				}
			}
			held = append(held, ev.obj)
		case evUnlock:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.obj {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evCall:
			for _, h := range held {
				for obj := range ev.via {
					if h != obj {
						edges = append(edges, lockEdge{h, obj, token.Pos(ev.pos)})
					}
				}
			}
		}
	}
	return edges
}

// reportLockCycles builds the acquisition graph from the collected edges
// and reports each inversion cycle once, at the earliest edge position on
// the cycle. Traversal order is pinned by declaration position so the
// diagnostics are deterministic.
func reportLockCycles(p *Pass, edges []lockEdge) {
	succ := make(map[types.Object]map[types.Object]token.Pos)
	for _, e := range edges {
		if succ[e.from] == nil {
			succ[e.from] = make(map[types.Object]token.Pos)
		}
		if old, ok := succ[e.from][e.to]; !ok || e.pos < old {
			succ[e.from][e.to] = e.pos
		}
	}
	objs := make([]types.Object, 0, len(succ))
	for o := range succ {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	sortedSucc := func(o types.Object) []types.Object {
		out := make([]types.Object, 0, len(succ[o]))
		for s := range succ[o] {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
		return out
	}

	reported := make(map[string]bool)
	var stack []types.Object
	onStack := make(map[types.Object]int)
	var visit func(o types.Object)
	visit = func(o types.Object) {
		onStack[o] = len(stack)
		stack = append(stack, o)
		for _, next := range sortedSucc(o) {
			if at, ok := onStack[next]; ok {
				reportCycle(p, stack[at:], succ, reported)
				continue
			}
			visit(next)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, o)
	}
	for _, o := range objs {
		if _, ok := onStack[o]; !ok {
			visit(o)
		}
	}
}

// reportCycle emits one diagnostic for a cycle (a slice of lock objects in
// acquisition order), deduplicated by its canonical membership key.
func reportCycle(p *Pass, cycle []types.Object, succ map[types.Object]map[types.Object]token.Pos, reported map[string]bool) {
	names := make([]string, len(cycle))
	for i, o := range cycle {
		names[i] = o.Name()
	}
	key := append([]string(nil), names...)
	sort.Strings(key)
	canon := strings.Join(key, "\x00")
	if reported[canon] {
		return
	}
	reported[canon] = true

	at := token.NoPos
	var detail []string
	for i, from := range cycle {
		to := cycle[(i+1)%len(cycle)]
		pos := succ[from][to]
		if at == token.NoPos || pos < at {
			at = pos
		}
		position := p.Fset.Position(pos)
		detail = append(detail, names[(i+1)%len(names)]+" while holding "+names[i]+" at "+position.Filename+":"+strconv.Itoa(position.Line))
	}
	p.Reportf(at, "lock-order inversion cycle %s -> %s: %s; acquire these locks in one fixed order everywhere",
		strings.Join(names, " -> "), names[0], strings.Join(detail, "; "))
}
