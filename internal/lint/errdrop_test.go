package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestErrDrop proves discarded Send/Recv/Close/Stats results — and, in the
// recovery fixture, discarded checkpoint SaveRound/Latest/Seal/Validate/
// WriteFile/ReadFile results — are flagged in every discard position
// (expression statement, defer, go, blank assignment) while handled results
// and justified //fap:ignore suppressions pass.
func TestErrDrop(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "transport", analyzer: lint.ErrDrop, wants: 5},
		{pkg: "recovery", analyzer: lint.ErrDrop, wants: 5},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
