package lint_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"filealloc/internal/lint"
)

// loadGraphFixture builds the call graph over the graph fixture package
// and returns it with a lookup for the package's top-level functions.
func loadGraphFixture(t *testing.T) (*lint.Graph, func(name string) *types.Func) {
	t.Helper()
	pkgs, err := lint.Load(filepath.Join("testdata", "src"), "./graph")
	if err != nil {
		t.Fatalf("loading graph fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	scope := pkgs[0].Types.Scope()
	lookup := func(name string) *types.Func {
		t.Helper()
		fn, ok := scope.Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("fixture function %s not found", name)
		}
		return fn
	}
	return lint.BuildGraph(pkgs), lookup
}

// TestBuildGraphResolution pins the builder's resolution rules: plain
// calls and concrete-receiver method calls produce body-backed edges,
// interface dispatch produces a body-less edge, and function-value calls
// are counted opaque.
func TestBuildGraphResolution(t *testing.T) {
	g, lookup := loadGraphFixture(t)

	node := g.NodeOf(lookup("CallsHelper"))
	if node == nil || len(node.Calls) != 1 || node.Opaque != 0 {
		t.Fatalf("CallsHelper: node=%+v, want one resolved call and no opaque calls", node)
	}
	if callee := node.Calls[0].Callee; callee.Name() != "Helper" || g.NodeOf(callee) == nil {
		t.Errorf("CallsHelper edge lands on %v, want the Helper declaration", callee)
	}

	node = g.NodeOf(lookup("CallsMethod"))
	if node == nil || len(node.Calls) != 1 {
		t.Fatalf("CallsMethod: node=%+v, want one resolved call", node)
	}
	if callee := node.Calls[0].Callee; callee.Name() != "Do" || g.NodeOf(callee) == nil {
		t.Errorf("CallsMethod edge = %v (node %v), want the devirtualized Impl.Do body", callee, g.NodeOf(callee))
	}

	node = g.NodeOf(lookup("CallsInterface"))
	if node == nil || len(node.Calls) != 1 {
		t.Fatalf("CallsInterface: node=%+v, want one edge to the interface method", node)
	}
	if callee := node.Calls[0].Callee; g.NodeOf(callee) != nil {
		t.Errorf("interface dispatch resolved to a body (%v); it must stay body-less", callee)
	}

	node = g.NodeOf(lookup("CallsFuncValue"))
	if node == nil || len(node.Calls) != 0 || node.Opaque != 1 {
		t.Fatalf("CallsFuncValue: node=%+v, want zero resolved calls and one opaque call", node)
	}

	node = g.NodeOf(lookup("InLit"))
	if node == nil || len(node.Calls) != 1 || node.Calls[0].Callee.Name() != "Helper" {
		t.Fatalf("InLit: node=%+v, want the literal's Helper call attributed to InLit", node)
	}
}

// TestWalkRecursionAndPaths checks that Walk terminates on mutual
// recursion, visits each function once with the BFS path from the root,
// and prunes subtrees when the visitor returns false.
func TestWalkRecursionAndPaths(t *testing.T) {
	g, lookup := loadGraphFixture(t)

	visited := map[string]int{}
	g.Walk(lookup("Recurse"), func(fn *types.Func, path []lint.GraphCall) bool {
		visited[fn.Name()]++
		if len(path) == 0 || path[len(path)-1].Callee != fn {
			t.Errorf("path to %s does not end at it: %v", fn.Name(), path)
		}
		return true
	})
	if len(visited) != 1 || visited["Mutual"] != 1 {
		t.Fatalf("walk from Recurse visited %v, want exactly Mutual once (the root is never re-visited)", visited)
	}

	// Pruning: refuse to descend past Mutual; with the only edge cut, the
	// walk still terminates and visits nothing else.
	visited = map[string]int{}
	g.Walk(lookup("Mutual"), func(fn *types.Func, path []lint.GraphCall) bool {
		visited[fn.Name()]++
		return false
	})
	if len(visited) != 1 || visited["Recurse"] != 1 {
		t.Fatalf("pruned walk from Mutual visited %v, want exactly Recurse once", visited)
	}
}

// TestDumpGraphDeterministic requires two independent builds over the same
// packages to dump byte-identical graphs: the -graph flag and every
// walk-order tie-break depend on it.
func TestDumpGraphDeterministic(t *testing.T) {
	g1, _ := loadGraphFixture(t)
	g2, _ := loadGraphFixture(t)
	d1, d2 := lint.DumpGraph(g1), lint.DumpGraph(g2)
	if d1 == "" {
		t.Fatal("graph dump is empty")
	}
	if d1 != d2 {
		t.Fatalf("graph dump differs across builds:\n--- first\n%s\n--- second\n%s", d1, d2)
	}
}
