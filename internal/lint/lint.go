// Package lint implements fapvet, the repository's domain-specific static
// analysis suite. Eight analyzers enforce contracts the runtime tests can
// only spot-check: determinism of the numeric packages (with taint
// propagated over the module call graph from the solver entry points),
// the //fap:zeroalloc annotation on allocation-free hot paths (local
// constructs and transitively reachable allocating callees alike),
// context plumbing conventions, lock hygiene around the blocking
// transport calls, non-discarded transport errors, a wall-clock import
// ban in the metrics packages, goroutine-leak tracking in the concurrent
// packages, and lock-order inversion cycles. The suite is built on the
// standard library's go/ast, go/parser, and go/types only; packages are
// loaded through the go toolchain's export data (see Load), so it works
// offline like the rest of the module. Interprocedural checks share one
// whole-module call graph per Run (see BuildGraph for its resolution
// rules and soundness caveats).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: analyzer: message".
type Diagnostic struct {
	// Pos locates the offending construct.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding ("fapvet" for
	// findings about malformed fapvet directives themselves).
	Analyzer string
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used by -only/-skip and //fap:ignore.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, ZeroAlloc, CtxFirst, LockGuard, ErrDrop, WallTime, GoLeak, LockOrder}
}

// Pass carries one package through one analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset, Files, Pkg, and Info expose the loaded package.
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package's import path.
	Path string
	// Graph is the whole-module call graph shared by every pass of one
	// Run. Interprocedural analyzers reach other packages through it;
	// per-package analyzers ignore it.
	Graph *Graph

	ignores ignoreIndex
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a valid //fap:ignore directive
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Options tunes a Run beyond analyzer selection.
type Options struct {
	// ReportUnusedIgnores additionally reports, under the pseudo-analyzer
	// "fapvet", every well-formed //fap:ignore directive that suppressed
	// no diagnostic of the analyzers that ran — a stale suppression is a
	// waived contract nobody is violating, and deleting it re-arms the
	// gate. Only directives naming an analyzer in the selected set are
	// audited: a directive for a skipped analyzer is not provably stale.
	ReportUnusedIgnores bool
}

// Run applies the analyzers to every package and returns the combined
// findings sorted by position. Malformed //fap:ignore directives (missing
// analyzer name or justification, unknown analyzer) are reported under the
// pseudo-analyzer "fapvet" and cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithOptions(pkgs, analyzers, Options{})
}

// RunWithOptions is Run with explicit Options. The whole-module call
// graph backing the interprocedural analyzers is built once here and
// shared by every pass.
func RunWithOptions(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	graph := BuildGraph(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := buildIgnoreIndex(pkg, known)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Graph:    graph,
				ignores:  ignores,
				diags:    &diags,
			}
			a.Run(pass)
		}
		if opts.ReportUnusedIgnores {
			diags = append(diags, ignores.unused(ran)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignorePrefix introduces a suppression directive:
//
//	//fap:ignore <analyzer> <justification...>
//
// placed either at the end of the offending line or on its own line
// immediately above. The justification is mandatory: a suppression without a
// recorded reason is itself a diagnostic.
const ignorePrefix = "//fap:ignore"

// allocOKPrefix marks a function as an acknowledged allocation site:
//
//	//fap:allocok <justification...>
//
// placed in the function's doc comment. The transitive zeroalloc pass
// treats calls to such a function as non-allocating — the escape hatch
// for the documented cold-path grow helpers (growFloats and friends)
// whose make only fires when a buffer must grow. Like //fap:ignore, the
// justification is mandatory.
const allocOKPrefix = "//fap:allocok"

type ignoreKey struct {
	file string
	line int
}

// ignoreEntry is one //fap:ignore directive for one analyzer, tracking
// whether it suppressed anything during the run.
type ignoreEntry struct {
	pos  token.Position
	name string
	used bool
}

// ignoreIndex maps a directive's file and line to the analyzers it covers.
type ignoreIndex map[ignoreKey]map[string]*ignoreEntry

// suppressed reports whether a directive for analyzer covers a diagnostic
// at pos — same line, or the line directly above — and marks the covering
// directive as used.
func (idx ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if set, ok := idx[ignoreKey{pos.Filename, line}]; ok {
			if e := set[analyzer]; e != nil {
				e.used = true
				return true
			}
		}
	}
	return false
}

// unused returns a diagnostic for every directive that suppressed nothing,
// restricted to the analyzers that actually ran, sorted by position.
func (idx ignoreIndex) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, set := range idx {
		for _, e := range set {
			if e.used || !ran[e.name] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      e.pos,
				Analyzer: "fapvet",
				Message:  fmt.Sprintf("fap:ignore %s suppresses nothing; delete the stale directive to re-arm the gate", e.name),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}

// buildIgnoreIndex collects the package's //fap:ignore directives and
// reports malformed ones — and malformed //fap:allocok directives, whose
// justification is equally mandatory (the well-formed ones are consumed
// by the zeroalloc analyzer via hasDirective).
func buildIgnoreIndex(pkg *Package, known map[string]bool) (ignoreIndex, []Diagnostic) {
	idx := make(ignoreIndex)
	var bad []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Pos: pos, Analyzer: "fapvet", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, allocOKPrefix) {
					if len(strings.Fields(strings.TrimPrefix(c.Text, allocOKPrefix))) == 0 {
						report(pkg.Fset.Position(c.Pos()), "fap:allocok needs a justification naming why this allocation site is acceptable")
					}
					continue
				}
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) == 0 {
					report(pos, "fap:ignore needs an analyzer name and a justification")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(pos, "fap:ignore names unknown analyzer %q", name)
					continue
				}
				if len(fields) < 2 {
					report(pos, "fap:ignore %s needs a justification explaining why the diagnostic is safe to waive", name)
					continue
				}
				key := ignoreKey{pos.Filename, pos.Line}
				if idx[key] == nil {
					idx[key] = make(map[string]*ignoreEntry)
				}
				if idx[key][name] == nil {
					idx[key][name] = &ignoreEntry{pos: pos, name: name}
				}
			}
		}
	}
	return idx, bad
}

// hasSegment reports whether any "/"-separated segment of an import path is
// in segs. Matching by segment rather than full path lets the analyzers
// apply to both the real module packages (filealloc/internal/costmodel) and
// the test fixtures (fix/costmodel).
func hasSegment(path string, segs map[string]bool) bool {
	for _, s := range strings.Split(path, "/") {
		if segs[s] {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function values, type conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isFloat reports whether t is a floating-point or complex type, the types
// whose accumulation is order-sensitive.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
