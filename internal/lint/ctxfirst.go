package lint

import (
	"go/ast"
	"go/types"
)

// ctxStructExemptSegments names the packages allowed to carry a
// context.Context inside a struct: internal/sweep's documented plumbing
// threads cancellation through worker state by design.
var ctxStructExemptSegments = map[string]bool{"sweep": true}

// CtxFirst enforces the repository's context conventions: context.Context
// is always the first parameter of any signature (declarations, literals,
// interface methods, and function-typed fields alike), and it is never
// stored in a struct outside internal/sweep. A stored context outlives the
// call it belongs to and silently detaches cancellation from the caller.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter and never live in a struct outside internal/sweep",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	structExempt := hasSegment(p.Path, ctxStructExemptSegments)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParamOrder(p, n)
			case *ast.StructType:
				if structExempt {
					return true
				}
				for _, field := range n.Fields.List {
					if isContextType(p.Info.TypeOf(field.Type)) {
						p.Reportf(field.Pos(), "context.Context stored in a struct detaches cancellation from the caller; pass it as the first parameter instead")
					}
				}
			}
			return true
		})
	}
}

func checkCtxParamOrder(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		if isContextType(p.Info.TypeOf(field.Type)) && index > 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		if n := len(field.Names); n > 0 {
			index += n
		} else {
			index++
		}
	}
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
