package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// walltimeSegments names the packages whose exported numbers must be pure
// functions of protocol state: the metrics registry and anything that
// feeds it, and the load generator, whose phase reports are contractually
// byte-identical for a given (spec, seed). Tick and round indices are the
// clock there — a snapshot or report that embeds a wall-clock reading can
// never be byte-identical across runs.
var walltimeSegments = map[string]bool{
	"metrics": true,
	"loadgen": true,
}

// WallTime forbids wall-clock access anywhere in a metrics package. Two
// layers:
//
//   - Locally, importing the time package at all is a diagnostic (the
//     determinism analyzer already bans time.Now in numeric packages;
//     metrics packages get the stricter import-level ban because every
//     value they hold is exported verbatim into snapshots, so even
//     durations or timers smuggle scheduling noise into the output).
//   - Transitively, a metrics function whose reachable module callees
//     call into the time package — laundering the clock through an
//     intermediary in another package, which the import ban cannot see —
//     is reported at the first call edge leaving the metrics function,
//     via the shared call graph. Interface and function-value calls are
//     opaque (see BuildGraph).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid importing or transitively reaching the time package in metrics/loadgen packages; tick and round indices are the clock",
	Run:  runWallTime,
}

func runWallTime(p *Pass) {
	if !hasSegment(p.Path, walltimeSegments) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "time" {
				continue
			}
			p.Reportf(imp.Pos(), "walltime-scoped packages must not import %q: snapshots and reports export every stored value, and wall-clock readings make them run-dependent", path)
		}
	}
	runWallTimeTransitive(p)
}

// runWallTimeTransitive walks the call graph from every function declared
// in the metrics package and reports paths that end in the time package.
// The time functions themselves appear in the graph as external edge
// targets, so any statically resolved route to one — at any depth, through
// any number of intermediary packages — is visible. A direct call from the
// metrics package (path length 1) is skipped: the import ban already flags
// it at the import line.
func runWallTimeTransitive(p *Pass) {
	if p.Graph == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.Graph.Walk(root, func(fn *types.Func, path []GraphCall) bool {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && len(path) > 1 {
					p.Reportf(path[0].Pos, "call to %s reaches the time package via %s (path: %s); exported numbers must be pure functions of protocol state",
						shortFuncName(path[0].Callee), shortFuncName(fn), renderPath(root, path))
				}
				return true
			})
		}
	}
}
