package lint

import "strconv"

// walltimeSegments names the packages whose exported numbers must be pure
// functions of protocol state: the metrics registry and anything that
// feeds it. Round indices are the clock there — a snapshot that embeds a
// wall-clock reading can never be byte-identical across runs.
var walltimeSegments = map[string]bool{
	"metrics": true,
}

// WallTime forbids importing the time package anywhere in a metrics
// package. The determinism analyzer already bans time.Now in numeric
// packages; metrics packages get the stricter import-level ban because
// every value they hold is exported verbatim into snapshots, so even
// durations or timers smuggle scheduling noise into the output.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid importing time in metrics packages; round indices are the clock",
	Run:  runWallTime,
}

func runWallTime(p *Pass) {
	if !hasSegment(p.Path, walltimeSegments) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "time" {
				continue
			}
			p.Reportf(imp.Pos(), "metrics packages must not import %q: snapshots export every stored value, and wall-clock readings make them run-dependent", path)
		}
	}
}
