package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Graph is the whole-module static call graph the interprocedural
// analyzers share. One Graph is built per Run over every loaded package;
// nodes are the module's own function and method declarations (the only
// ones whose bodies we can see), and edges are the statically resolvable
// calls between them.
//
// Resolution rules, and their soundness caveats:
//
//   - Direct calls (pkg.F, F) and method calls on a concrete static
//     receiver type resolve exactly: go/types hands back the declared
//     *types.Func, which is devirtualization for free whenever the
//     receiver's static type is not an interface.
//   - Calls through interface values (core.Solver, Objective, ...)
//     resolve to the interface method's *types.Func: the edge exists
//     and can be matched by identity, but the target has no body, so
//     traversal stops there — facts do not flow into the concrete
//     implementations without a pointer analysis.
//   - Calls through function values (fields, parameters, closures
//     passed around) have no identifiable target at all and are
//     recorded only as an opaque-call count. Together with the
//     interface rule this makes the consuming analyzers deliberately
//     unsound across dynamic dispatch and reflection, trading missed
//     findings for zero false positives on the module's seams.
//   - Function literals have no identity of their own: calls inside a
//     FuncLit are attributed to the enclosing declared function, which
//     matches how the zero-alloc and determinism contracts read
//     ("everything this function's body sets in motion").
//   - Callees declared outside the loaded packages (the standard
//     library, export-data-only dependencies) appear as edge targets
//     with no Node of their own; analyzers can match them by identity
//     (time.Now) but cannot look inside them.
type Graph struct {
	nodes map[*types.Func]*GraphNode
	// byName maps funcKey(fn) to the declaring node. Each target package
	// is type-checked separately, so a cross-package callee resolves to an
	// object materialized from export data — a different *types.Func than
	// the one minted when the declaring package was checked from source.
	// Edges are canonicalized through this index at build time so both
	// identities lead to the same node.
	byName map[string]*GraphNode
}

// funcKey names a function unambiguously across independently
// type-checked views of the same package.
func funcKey(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	if fn.Pkg() == nil {
		return fn.FullName()
	}
	return fn.Pkg().Path() + "|" + fn.FullName()
}

// GraphNode is one declared function or method with its outgoing calls.
type GraphNode struct {
	// Fn is the declared function's type-checker object.
	Fn *types.Func
	// Decl is the declaration carrying the body.
	Decl *ast.FuncDecl
	// Pkg is the loaded package declaring the function.
	Pkg *Package
	// Calls lists the resolved outgoing calls in source order.
	Calls []GraphCall
	// Opaque counts the calls whose callee could not be resolved to any
	// object: function values and method values. (Interface dispatch
	// resolves to the body-less interface method and lands in Calls.) A
	// nonzero count marks every transitive fact about this node as
	// lower-bound only.
	Opaque int
}

// GraphCall is one resolved call edge.
type GraphCall struct {
	// Pos is the call expression's position in the caller.
	Pos token.Pos
	// Callee is the resolved target. It always has an object; it has a
	// body (a Graph node) only when declared in a loaded package.
	Callee *types.Func
}

// BuildGraph indexes every function declaration of the loaded packages
// and resolves the call edges between them.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{nodes: make(map[*types.Func]*GraphNode), byName: make(map[string]*GraphNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &GraphNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = node
				g.byName[funcKey(fn)] = node
			}
		}
	}
	for _, node := range g.nodes {
		g.collectCalls(node)
	}
	return g
}

// collectCalls walks one declaration's body recording every call. Calls
// inside function literals are attributed to the enclosing declaration.
// Callees declared in a loaded package are canonicalized to the
// source-checked object, so one function has one identity module-wide.
func (g *Graph) collectCalls(node *GraphNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTypeConversion(info, call) || isBuiltinCall(info, call) {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			if canon := g.byName[funcKey(fn)]; canon != nil {
				fn = canon.Fn
			}
			node.Calls = append(node.Calls, GraphCall{Pos: call.Pos(), Callee: fn})
		} else {
			node.Opaque++
		}
		return true
	})
	sort.SliceStable(node.Calls, func(i, j int) bool { return node.Calls[i].Pos < node.Calls[j].Pos })
}

// isTypeConversion reports whether call is a conversion like T(x).
func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether call invokes a language builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// NodeOf returns the graph node declaring fn, or nil when fn has no body
// in the loaded packages (external callee, interface method). Both the
// source-checked object and its export-data twin resolve to the node.
func (g *Graph) NodeOf(fn *types.Func) *GraphNode {
	if g == nil || fn == nil {
		return nil
	}
	if n := g.nodes[fn]; n != nil {
		return n
	}
	return g.byName[funcKey(fn)]
}

// Nodes returns every node sorted by (package path, name, position) so
// iteration order — and everything derived from it, like the -graph dump
// and reachability tie-breaks — is independent of map order.
func (g *Graph) Nodes() []*GraphNode {
	out := make([]*GraphNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		if a.Fn.FullName() != b.Fn.FullName() {
			return a.Fn.FullName() < b.Fn.FullName()
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	return out
}

// reachStep is one hop of a breadth-first walk: the function arrived at
// and the call edge that got there.
type reachStep struct {
	fn   *types.Func
	from *types.Func // caller (nil for the root)
	pos  token.Pos   // position of the call in the caller
}

// Walk runs a breadth-first traversal of the resolved call edges from
// root (which must be a node). visit is invoked once per distinct
// reachable callee in deterministic (source/BFS) order, with the full
// call path from the root; returning false prunes the walk below that
// callee — its own callees are not traversed through it, though they may
// still be reached along other paths. The root itself is not visited,
// and each function is visited at most once (the first BFS path wins).
func (g *Graph) Walk(root *types.Func, visit func(fn *types.Func, path []GraphCall) bool) {
	rootNode := g.NodeOf(root)
	if rootNode == nil {
		return
	}
	seen := map[*types.Func]bool{root: true}
	parent := map[*types.Func]reachStep{}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.NodeOf(cur)
		if node == nil {
			continue
		}
		for _, call := range node.Calls {
			if seen[call.Callee] {
				continue
			}
			seen[call.Callee] = true
			parent[call.Callee] = reachStep{fn: call.Callee, from: cur, pos: call.Pos}
			if visit(call.Callee, g.pathTo(root, call.Callee, parent)) {
				queue = append(queue, call.Callee)
			}
		}
	}
}

// pathTo reconstructs the BFS call path from root to fn as a sequence of
// call edges (first edge leaves the root).
func (g *Graph) pathTo(root, fn *types.Func, parent map[*types.Func]reachStep) []GraphCall {
	var rev []GraphCall
	for cur := fn; cur != root; {
		step, ok := parent[cur]
		if !ok {
			break
		}
		rev = append(rev, GraphCall{Pos: step.pos, Callee: cur})
		cur = step.from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// renderPath formats a call path as "a → b → c" using short names.
func renderPath(root *types.Func, path []GraphCall) string {
	parts := make([]string, 0, len(path)+1)
	parts = append(parts, shortFuncName(root))
	for _, c := range path {
		parts = append(parts, shortFuncName(c.Callee))
	}
	return strings.Join(parts, " -> ")
}

// shortFuncName renders fn as name or Type.name, package-qualified when
// the function is not from the module's current package view (kept short
// on purpose — diagnostics carry positions for the long form).
func shortFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := types.Unalias(t).(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// DumpGraph writes the resolved call graph in a stable text form, one
// line per edge ("caller -> callee [opaque N]" headers per node), for
// fapvet's -graph debug flag.
func DumpGraph(g *Graph) string {
	var b strings.Builder
	for _, node := range g.Nodes() {
		pos := node.Pkg.Fset.Position(node.Decl.Pos())
		fmt.Fprintf(&b, "%s (%s:%d)", node.Fn.FullName(), pos.Filename, pos.Line)
		if node.Opaque > 0 {
			fmt.Fprintf(&b, " [opaque calls: %d]", node.Opaque)
		}
		b.WriteString("\n")
		for _, call := range node.Calls {
			kind := "external"
			if g.NodeOf(call.Callee) != nil {
				kind = "module"
			}
			fmt.Fprintf(&b, "  -> %s (%s)\n", call.Callee.FullName(), kind)
		}
	}
	return b.String()
}
