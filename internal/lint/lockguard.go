package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// blockingSegments names the packages whose Send/Recv calls block on the
// network: the transport layer and the agent runtime built on it.
var blockingSegments = map[string]bool{"transport": true, "agent": true, "recovery": true}

// LockGuard enforces two lock-hygiene contracts. Everywhere: sync.Mutex,
// sync.RWMutex, and sync.WaitGroup are never passed, returned, or copied by
// value (a copied lock guards nothing). In the transport and agent
// packages: no mutex is held across a blocking Send or Recv call — a peer
// that never answers would turn the lock into a cluster-wide deadlock, the
// failure mode PR 1's per-connection write mutex was introduced to avoid.
//
// The held-across check is a lexical simulation: Lock/Unlock calls and
// Send/Recv calls are replayed in source order, with deferred unlocks
// treated as releasing only at return. Branch-heavy locking (unlock on one
// arm only) can evade it; keep lock scopes straight-line.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "no sync primitives copied by value; no mutex held across blocking Send/Recv in transport/agent",
	Run:  runLockGuard,
}

func runLockGuard(p *Pass) {
	checkBlocking := hasSegment(p.Path, blockingSegments)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkLockSignature(p, n)
			case *ast.CallExpr:
				checkLockArgs(p, n)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkLockCopy(p, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkLockCopy(p, v)
				}
			case *ast.FuncDecl:
				if checkBlocking && n.Body != nil {
					checkHeldAcrossBlocking(p, n)
				}
			}
			return true
		})
	}
}

// lockTypeName returns "sync.Mutex", "sync.RWMutex", or "sync.WaitGroup"
// when t is one of those types by value, and "" otherwise.
func lockTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup":
		return "sync." + obj.Name()
	}
	return ""
}

func checkLockSignature(p *Pass, ft *ast.FuncType) {
	for _, field := range fieldList(ft.Params) {
		if name := lockTypeName(p.Info.TypeOf(field.Type)); name != "" {
			p.Reportf(field.Pos(), "%s passed by value; a copied lock guards nothing — pass a pointer", name)
		}
	}
	for _, field := range fieldList(ft.Results) {
		if name := lockTypeName(p.Info.TypeOf(field.Type)); name != "" {
			p.Reportf(field.Pos(), "%s returned by value; a copied lock guards nothing — return a pointer", name)
		}
	}
}

func fieldList(fl *ast.FieldList) []*ast.Field {
	if fl == nil {
		return nil
	}
	return fl.List
}

func checkLockArgs(p *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if name := lockTypeName(p.Info.TypeOf(arg)); name != "" {
			p.Reportf(arg.Pos(), "%s passed by value; a copied lock guards nothing — pass a pointer", name)
		}
	}
}

// checkLockCopy flags assignments whose right-hand side copies an existing
// lock value. Composite literals are creation, not copying, so a zero-value
// initialization stays legal.
func checkLockCopy(p *Pass, rhs ast.Expr) {
	if _, isLit := ast.Unparen(rhs).(*ast.CompositeLit); isLit {
		return
	}
	if name := lockTypeName(p.Info.TypeOf(rhs)); name != "" {
		p.Reportf(rhs.Pos(), "%s copied by value; a copied lock guards nothing — share a pointer", name)
	}
}

// lockEvent is one replayed step of the held-across simulation.
type lockEvent struct {
	pos      int // file offset order via token.Pos
	kind     int // 0 lock, 1 unlock, 2 blocking call
	key      string
	name     string
	deferred bool
}

const (
	evLock = iota
	evUnlock
	evBlocking
)

func checkHeldAcrossBlocking(p *Pass, fd *ast.FuncDecl) {
	// Record the source ranges of defer statements: unlocks inside them
	// release only at function return.
	var deferRanges [][2]int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferRanges = append(deferRanges, [2]int{int(d.Pos()), int(d.End())})
		}
		return true
	})
	inDefer := func(pos int) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		pos := int(call.Pos())
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			switch fn.Name() {
			case "Lock", "RLock":
				events = append(events, lockEvent{pos, evLock, types.ExprString(sel.X), fn.Name(), inDefer(pos)})
			case "Unlock", "RUnlock":
				events = append(events, lockEvent{pos, evUnlock, types.ExprString(sel.X), fn.Name(), inDefer(pos)})
			}
			return true
		}
		switch fn.Name() {
		case "Send", "Recv":
			events = append(events, lockEvent{pos, evBlocking, types.ExprString(sel.X), fn.Name(), inDefer(pos)})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	locked := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if !ev.deferred {
				locked[ev.key] = true
			}
		case evUnlock:
			if !ev.deferred {
				delete(locked, ev.key)
			}
		case evBlocking:
			if len(locked) == 0 {
				continue
			}
			held := make([]string, 0, len(locked))
			for k := range locked {
				held = append(held, k)
			}
			sort.Strings(held)
			p.Reportf(token.Pos(ev.pos), "%s.%s called while holding %s; a peer that never answers deadlocks the lock", ev.key, ev.name, held[0])
		}
	}
}
