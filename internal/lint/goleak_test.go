package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestGoLeak proves the analyzer ties goroutines to their shutdown
// mechanisms through the call graph: WaitGroup signals, context
// cancellation, and close()d channels all pass — directly in the spawned
// literal or any number of resolved calls away — while fire-and-forget
// spawns and unresolvable function-value spawns are flagged. The clean
// clockutil package shows the segment scoping: no diagnostics outside the
// concurrent packages.
func TestGoLeak(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "agent/goleakfix", analyzer: lint.GoLeak, wants: 3},
		{pkg: "loadgen", analyzer: lint.GoLeak, wants: 1},
		{pkg: "gossip", analyzer: lint.GoLeak, wants: 1},
		{pkg: "clockutil", analyzer: lint.GoLeak, wants: 0},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
