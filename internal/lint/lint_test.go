package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"filealloc/internal/lint"
)

// fixtureCase is one table entry: run one analyzer over one fixture package
// and compare its diagnostics against the fixture's `// want analyzer:
// substring` comments. wants is the number of want comments the fixture is
// expected to carry for this analyzer — a self-check that keeps a broken
// expectation parser from passing vacuously.
type fixtureCase struct {
	pkg      string
	analyzer *lint.Analyzer
	wants    int
	// deps lists additional fixture packages to load alongside pkg. The
	// loader only parses the packages named by its patterns (dependencies
	// come back as export data without ASTs), so cross-package cases must
	// name every package whose bodies the interprocedural analyzers need.
	// Want comments still live in pkg only: transitive diagnostics are
	// reported at the call edge inside the root package, and the deps must
	// stay diagnostic-free for the analyzer under test.
	deps []string
}

// runFixture loads packages of the fixture module under testdata/src and
// runs the given analyzers over them.
func runFixture(t *testing.T, pkg string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	return runFixtureDeps(t, pkg, nil, analyzers...)
}

func runFixtureDeps(t *testing.T, pkg string, deps []string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	patterns := []string{"./" + pkg}
	for _, d := range deps {
		patterns = append(patterns, "./"+d)
	}
	pkgs, err := lint.Load(filepath.Join("testdata", "src"), patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	return lint.Run(pkgs, analyzers)
}

type want struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

var wantRe = regexp.MustCompile(`// want (\w+): (.+)$`)

// parseWants scans a fixture directory for expectation comments mentioning
// the given analyzer.
func parseWants(t *testing.T, dir, analyzer string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("opening fixture file: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil || m[1] != analyzer {
				continue
			}
			wants = append(wants, &want{
				file:     e.Name(),
				line:     line,
				analyzer: m[1],
				substr:   strings.TrimSpace(m[2]),
			})
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture file: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("closing fixture file: %v", err)
		}
	}
	return wants
}

// checkFixture runs one fixtureCase end to end.
func checkFixture(t *testing.T, tc fixtureCase) {
	t.Helper()
	diags := runFixtureDeps(t, tc.pkg, tc.deps, tc.analyzer)
	wants := parseWants(t, filepath.Join("testdata", "src", tc.pkg), tc.analyzer.Name)
	if len(wants) != tc.wants {
		t.Fatalf("fixture self-check: %s has %d want comments for %s, expected %d",
			tc.pkg, len(wants), tc.analyzer.Name, tc.wants)
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
				continue
			}
			w.matched = true
			found = true
			break
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: %s: ...%s...", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestLoadRejectsUnknownPattern(t *testing.T) {
	if _, err := lint.Load(filepath.Join("testdata", "src"), "./nonexistent"); err == nil {
		t.Fatal("Load on a nonexistent package succeeded, want error")
	}
}

// TestIgnoreDirectives pins the suppression contract: a valid directive
// (same line or the line above) silences the diagnostic, a directive
// without a justification or naming an unknown analyzer is itself reported
// and suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	diags := runFixture(t, "badignore", lint.CtxFirst)

	count := map[string]int{}
	for _, d := range diags {
		count[d.Analyzer]++
	}
	if count["ctxfirst"] != 2 {
		t.Errorf("got %d ctxfirst diagnostics, want 2 (holder and holder2 unsuppressed, holder3 suppressed):\n%s",
			count["ctxfirst"], render(diags))
	}
	if count["fapvet"] != 2 {
		t.Errorf("got %d fapvet directive diagnostics, want 2:\n%s", count["fapvet"], render(diags))
	}
	var sawJustification, sawUnknown bool
	for _, d := range diags {
		if d.Analyzer != "fapvet" {
			continue
		}
		if strings.Contains(d.Message, "justification") {
			sawJustification = true
		}
		if strings.Contains(d.Message, "unknown analyzer") {
			sawUnknown = true
		}
	}
	if !sawJustification {
		t.Error("no diagnostic about a missing justification")
	}
	if !sawUnknown {
		t.Error("no diagnostic about an unknown analyzer name")
	}
}

// TestUnusedIgnores pins the -unused-ignores contract: a directive that
// suppressed a diagnostic is silent, a well-formed directive that
// suppressed nothing is reported under "fapvet" — but only when the audit
// is on, and only for analyzers that actually ran.
func TestUnusedIgnores(t *testing.T) {
	pkgs, err := lint.Load(filepath.Join("testdata", "src"), "./staleignore")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	diags := lint.RunWithOptions(pkgs, lint.All(), lint.Options{ReportUnusedIgnores: true})
	if len(diags) != 1 {
		t.Fatalf("audit run produced %d diagnostics, want exactly the stale directive:\n%s", len(diags), render(diags))
	}
	d := diags[0]
	if d.Analyzer != "fapvet" || !strings.Contains(d.Message, "suppresses nothing") || !strings.Contains(d.Message, "determinism") {
		t.Fatalf("stale-directive diagnostic = %s, want a fapvet report naming determinism", d)
	}

	if off := lint.Run(pkgs, lint.All()); len(off) != 0 {
		t.Fatalf("without the audit the package must be clean, got:\n%s", render(off))
	}

	// With determinism skipped, its directive is not provably stale and the
	// audit must stay silent.
	partial := lint.RunWithOptions(pkgs, []*lint.Analyzer{lint.CtxFirst}, lint.Options{ReportUnusedIgnores: true})
	if len(partial) != 0 {
		t.Fatalf("audit over a partial suite reported a directive for an analyzer that never ran:\n%s", render(partial))
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
