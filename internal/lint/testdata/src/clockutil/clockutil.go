// Package clockutil is the determinism analyzer's clean case: it contains
// the same constructs as the costmodel fixture, but its import path has no
// numeric-package segment, so none of them are diagnostics here.
package clockutil

import (
	"math/rand"
	"time"
)

// Stamp may read the wall clock outside the numeric packages.
func Stamp() time.Time {
	return time.Now()
}

// Jitter may use the global source outside the numeric packages.
func Jitter() float64 {
	return rand.Float64()
}

// SumMap may accumulate in map order outside the numeric packages.
func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
