// Package graph exercises the call-graph builder itself: plain calls,
// devirtualized method calls, interface dispatch, function values,
// recursion, and calls made from inside function literals.
package graph

// Doer is the interface seam: dispatch through it cannot be resolved to a
// body.
type Doer interface{ Do() int }

// Impl is the concrete type behind Doer.
type Impl struct{ n int }

// Do is Impl's method.
func (i Impl) Do() int { return i.n }

// Helper is a plain function callee.
func Helper() int { return 1 }

// CallsHelper has one static edge.
func CallsHelper() int { return Helper() }

// CallsMethod devirtualizes: the receiver's static type is concrete, so
// the edge lands on Impl.Do's body.
func CallsMethod(i Impl) int { return i.Do() }

// CallsInterface dispatches through the interface: the edge resolves only
// to the body-less interface method, which no walk can enter.
func CallsInterface(d Doer) int { return d.Do() }

// CallsFuncValue calls through a function value: no callee object at all,
// counted as opaque.
func CallsFuncValue(f func() int) int { return f() }

// Recurse calls itself and Mutual; the builder and Walk must terminate on
// the cycle.
func Recurse(n int) int {
	if n <= 0 {
		return 0
	}
	return Recurse(n-1) + Mutual(n)
}

// Mutual closes a two-function cycle with Recurse.
func Mutual(n int) int { return Recurse(n - 2) }

// InLit calls Helper from inside a function literal: the edge is
// attributed to InLit, the enclosing declaration.
func InLit() func() int {
	return func() int { return Helper() }
}
