// Package zalloc exercises the zeroalloc analyzer: functions annotated
// //fap:zeroalloc may not contain allocation constructs — nor reach any,
// through any statically resolvable call chain; everything else may
// allocate freely.
package zalloc

import "fix/zhelper"

type point struct{ x, y int }

// Sum is annotated and clean: it only writes through caller-owned buffers.
//
//fap:zeroalloc
func Sum(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// GoodAppend is annotated and clean: it appends into a caller-owned buffer.
//
//fap:zeroalloc
func GoodAppend(buf []float64, v float64) []float64 {
	return append(buf[:0], v)
}

// GoodStructValue is annotated and clean: a plain value composite literal
// stays on the stack.
//
//fap:zeroalloc
func GoodStructValue() point {
	return point{1, 2}
}

// GoodClosure is annotated and clean: a closure capturing nothing is
// statically allocated.
//
//fap:zeroalloc
func GoodClosure() func() int {
	return func() int { return 42 }
}

// BadMake allocates with make.
//
//fap:zeroalloc
func BadMake(n int) []float64 {
	return make([]float64, n) // want zeroalloc: make
}

// BadNew allocates with new.
//
//fap:zeroalloc
func BadNew() *int {
	return new(int) // want zeroalloc: new
}

// BadAppend grows a locally-declared slice.
//
//fap:zeroalloc
func BadAppend(v float64) []float64 {
	var buf []float64
	buf = append(buf, v) // want zeroalloc: append
	return buf
}

// BadSliceLit allocates a slice literal.
//
//fap:zeroalloc
func BadSliceLit() []int {
	return []int{1, 2, 3} // want zeroalloc: slice or map literal
}

// BadEscape takes the address of a composite literal.
//
//fap:zeroalloc
func BadEscape() *point {
	return &point{1, 2} // want zeroalloc: escapes to the heap
}

// BadClosure captures a local, forcing a heap-allocated closure.
//
//fap:zeroalloc
func BadClosure(n int) func() int {
	return func() int { return n } // want zeroalloc: closure captures
}

// Unannotated may allocate: the contract is opt-in per function.
func Unannotated(n int) []float64 {
	return make([]float64, n)
}

// helperAlloc is unannotated and allocates; legal on its own, a violation
// only when a //fap:zeroalloc function reaches it.
func helperAlloc() []int {
	return []int{1}
}

// chain merely forwards, putting one clean hop between the contract and
// the allocation.
func chain() []int { return helperAlloc() }

// BadTransitiveLocal reaches an allocation two same-package hops away —
// invisible to a per-function check.
//
//fap:zeroalloc
func BadTransitiveLocal() []int {
	return chain() // want zeroalloc: reaches an allocating construct
}

// BadTransitiveCross reaches an allocation in another package.
//
//fap:zeroalloc
func BadTransitiveCross(n int) []float64 {
	return zhelper.Alloc(n) // want zeroalloc: reaches an allocating construct
}

// GoodTransitive only reaches clean, annotated, or //fap:allocok callees.
//
//fap:zeroalloc
func GoodTransitive(buf []float64) []float64 {
	zhelper.Pure(buf)
	buf = zhelper.Grow(buf, cap(buf))
	Sum(buf, buf)
	return buf
}
