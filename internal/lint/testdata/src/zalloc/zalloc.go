// Package zalloc exercises the zeroalloc analyzer: functions annotated
// //fap:zeroalloc may not contain allocation constructs; everything else
// may allocate freely.
package zalloc

type point struct{ x, y int }

// Sum is annotated and clean: it only writes through caller-owned buffers.
//
//fap:zeroalloc
func Sum(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// GoodAppend is annotated and clean: it appends into a caller-owned buffer.
//
//fap:zeroalloc
func GoodAppend(buf []float64, v float64) []float64 {
	return append(buf[:0], v)
}

// GoodStructValue is annotated and clean: a plain value composite literal
// stays on the stack.
//
//fap:zeroalloc
func GoodStructValue() point {
	return point{1, 2}
}

// GoodClosure is annotated and clean: a closure capturing nothing is
// statically allocated.
//
//fap:zeroalloc
func GoodClosure() func() int {
	return func() int { return 42 }
}

// BadMake allocates with make.
//
//fap:zeroalloc
func BadMake(n int) []float64 {
	return make([]float64, n) // want zeroalloc: make
}

// BadNew allocates with new.
//
//fap:zeroalloc
func BadNew() *int {
	return new(int) // want zeroalloc: new
}

// BadAppend grows a locally-declared slice.
//
//fap:zeroalloc
func BadAppend(v float64) []float64 {
	var buf []float64
	buf = append(buf, v) // want zeroalloc: append
	return buf
}

// BadSliceLit allocates a slice literal.
//
//fap:zeroalloc
func BadSliceLit() []int {
	return []int{1, 2, 3} // want zeroalloc: slice or map literal
}

// BadEscape takes the address of a composite literal.
//
//fap:zeroalloc
func BadEscape() *point {
	return &point{1, 2} // want zeroalloc: escapes to the heap
}

// BadClosure captures a local, forcing a heap-allocated closure.
//
//fap:zeroalloc
func BadClosure(n int) func() int {
	return func() int { return n } // want zeroalloc: closure captures
}

// Unannotated may allocate: the contract is opt-in per function.
func Unannotated(n int) []float64 {
	return make([]float64, n)
}
