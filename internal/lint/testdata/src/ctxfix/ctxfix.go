// Package ctxfix exercises the ctxfirst analyzer.
package ctxfix

import "context"

// Good has the context first.
func Good(ctx context.Context, n int) {}

// BadSecond has the context after another parameter.
func BadSecond(n int, ctx context.Context) {} // want ctxfirst: first parameter

// holder stores a context in a struct outside internal/sweep.
type holder struct {
	ctx context.Context // want ctxfirst: stored in a struct
	n   int
}

// Ctx uses the stored field so the fixture compiles without vet noise.
func (h holder) Ctx() context.Context { return h.ctx }

// N returns the other field.
func (h holder) N() int { return h.n }

// dialer checks interface method signatures.
type dialer interface {
	Dial(addr string, ctx context.Context) error // want ctxfirst: first parameter
	Ping(ctx context.Context) error
}

// callback checks function-typed declarations.
type callback func(n int, ctx context.Context) // want ctxfirst: first parameter

// goodCallback is the clean function-typed case.
type goodCallback func(ctx context.Context, n int)
