// Package badignore holds malformed suppression directives. The
// expectations are asserted directly in the tests (want comments cannot sit
// on a directive line without becoming part of the directive text).
package badignore

import "context"

// holder carries a directive with no justification: the directive is
// rejected and the ctxfirst diagnostic still fires.
type holder struct {
	//fap:ignore ctxfirst
	ctx context.Context
}

// holder2 carries a directive naming an unknown analyzer.
type holder2 struct {
	//fap:ignore nosuchanalyzer because reasons
	ctx context.Context
}

// holder3 carries a valid suppression: no diagnostic fires for it.
type holder3 struct {
	ctx context.Context //fap:ignore ctxfirst fixture exercising a valid same-line suppression
}

// Ctx uses the stored contexts so the fixture compiles cleanly.
func (h holder) Ctx() context.Context { return h.ctx }

// Ctx2 likewise.
func (h holder2) Ctx2() context.Context { return h.ctx }

// Ctx3 likewise.
func (h holder3) Ctx3() context.Context { return h.ctx }
