// Package costmodel is a determinism fixture: its import path ends in a
// numeric-package segment, so the determinism analyzer applies to it.
package costmodel

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock inside a numeric package.
func Stamp() time.Time {
	return time.Now() // want determinism: time.Now
}

// GlobalRand draws from the process-wide source.
func GlobalRand() float64 {
	return rand.Float64() // want determinism: shared process-wide source
}

// GlobalShuffle mutates through the process-wide source.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want determinism: shared process-wide source
}

// SeededRand is the clean pattern: an explicit seeded source, whose
// constructor and methods are both allowed.
func SeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// SumMap accumulates floats in map iteration order.
func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want determinism: iteration order
	}
	return s
}

// SumMapIndirect hides the accumulation behind a plain assignment.
func SumMapIndirect(m map[string]float64) float64 {
	s := 0.0
	for k := range m {
		s = s + m[k] // want determinism: iteration order
	}
	return s
}

// ScaleMapNested accumulates in a block nested under the map range.
func ScaleMapNested(m map[int][]float64) float64 {
	p := 1.0
	for _, vs := range m {
		for _, v := range vs {
			p *= v // want determinism: iteration order
		}
	}
	return p
}

// SumSorted is the clean pattern: collect keys, sort, then accumulate in a
// deterministic order.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// CountMap is clean: integer accumulation commutes exactly, so iteration
// order cannot change the result.
func CountMap(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
