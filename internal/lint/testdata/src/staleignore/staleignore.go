// Package staleignore carries one used and one stale suppression for the
// -unused-ignores audit: the ctxfirst directive below suppresses a real
// diagnostic, the determinism directive suppresses nothing and must be
// reported when the audit is on — and only then.
package staleignore

import "context"

// Holder stores a context in a struct: a real ctxfirst diagnostic, waived
// with a justification, so its directive counts as used.
type Holder struct {
	ctx context.Context //fap:ignore ctxfirst fixture: this directive must suppress something
}

// Ctx returns the held context.
func (h *Holder) Ctx() context.Context { return h.ctx }

// Clean needs no waiver; the directive above it suppresses nothing and is
// the stale case.
//
//fap:ignore determinism fixture: nothing here is nondeterministic
func Clean() int { return 4 }
