// Package recovery exercises the errdrop and determinism analyzers over
// checkpoint-persistence code: its import path has a "recovery" segment, so
// discarded SaveRound/Latest/Seal/Validate/WriteFile/ReadFile results and
// nondeterministic clocks or global randomness are both flagged.
package recovery

import (
	"math/rand"
	"time"
)

// Checkpoint is a stand-in for the real crash-recovery checkpoint.
type Checkpoint struct{ Round int }

// Validate pretends to verify checksum and shape.
func (c *Checkpoint) Validate() error { return nil }

// Seal pretends to stamp the checksum.
func (c *Checkpoint) Seal() error { return nil }

// Store is a stand-in for the on-disk checkpoint store.
type Store struct{}

// SaveRound pretends to persist one round atomically.
func (s *Store) SaveRound(round int) error { return nil }

// Latest pretends to load the newest valid checkpoint.
func (s *Store) Latest() (Checkpoint, bool, error) { return Checkpoint{}, false, nil }

// WriteFile pretends to write a checkpoint atomically.
func WriteFile(path string, c Checkpoint) error { return nil }

// ReadFile pretends to read and validate a checkpoint.
func ReadFile(path string) (Checkpoint, error) { return Checkpoint{}, nil }

// DropSave discards a SaveRound error: the node would keep running with no
// durable state and resume from garbage after a crash.
func DropSave(s *Store) {
	s.SaveRound(7) // want errdrop: result of SaveRound discarded
}

// BlankLatest blanks the Latest error, conflating "no checkpoint" with
// "corrupt checkpoint".
func BlankLatest(s *Store) Checkpoint {
	ck, ok, _ := s.Latest() // want errdrop: error result of Latest
	_ = ok
	return ck
}

// DeferValidate discards a Validate verdict through defer.
func DeferValidate(c *Checkpoint) {
	defer c.Validate() // want errdrop: deferred Validate
}

// SealGo discards a Seal error through a go statement.
func SealGo(c *Checkpoint) {
	go c.Seal() // want errdrop: go statement
}

// DropRead throws a loaded checkpoint and its error away.
func DropRead(path string) {
	_, _ = ReadFile(path) // want errdrop: all results of ReadFile
}

// Handled is the clean case: every persistence result is consumed.
func Handled(s *Store, c *Checkpoint, path string) error {
	if err := c.Seal(); err != nil {
		return err
	}
	if err := WriteFile(path, *c); err != nil {
		return err
	}
	if err := s.SaveRound(1); err != nil {
		return err
	}
	ck, ok, err := s.Latest()
	if err != nil || !ok {
		return err
	}
	return ck.Validate()
}

// IgnoredBestEffort demonstrates a justified suppression.
func IgnoredBestEffort(s *Store) {
	s.SaveRound(0) //fap:ignore errdrop fixture demonstrating a justified best-effort save
}

// StampNow reads the wall clock, making checkpoint replay run-dependent.
func StampNow() int64 {
	return time.Now().UnixNano() // want determinism: time.Now
}

// GlobalJitter draws backoff jitter from the process-wide source.
func GlobalJitter() int64 {
	return rand.Int63n(100) // want determinism: process-wide source
}

// SeededJitter is clean: an explicit seeded source replays identically.
func SeededJitter(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63n(100)
}
