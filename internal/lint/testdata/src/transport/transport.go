// Package transport exercises the lockguard and errdrop analyzers: its
// import path has a "transport" segment, so both the held-across-blocking
// check and the discarded-result check apply.
package transport

import (
	"context"
	"sync"
)

// Endpoint is a stand-in for the real transport endpoint.
type Endpoint struct {
	mu sync.Mutex
}

// Send pretends to deliver a payload.
func (e *Endpoint) Send(ctx context.Context, to int, p []byte) error { return nil }

// Recv pretends to receive a payload.
func (e *Endpoint) Recv(ctx context.Context) ([]byte, error) { return nil, nil }

// Close pretends to release the endpoint.
func (e *Endpoint) Close() error { return nil }

// Stats pretends to snapshot counters.
func (e *Endpoint) Stats() int { return 0 }

// use consumes a mutex by value, a violation at both declaration and call.
func use(mu sync.Mutex) {} // want lockguard: passed by value

// ByValueArg dereferences a mutex into a call argument.
func ByValueArg(mu *sync.Mutex) {
	use(*mu) // want lockguard: passed by value
}

// WaitByValue copies a WaitGroup through a parameter.
func WaitByValue(wg sync.WaitGroup) { wg.Wait() } // want lockguard: passed by value

// CopyAssign copies an existing mutex into a local.
func CopyAssign(e *Endpoint) {
	mu := e.mu // want lockguard: copied by value
	mu.Lock()
}

// FreshMutex is clean: initializing a zero-valued mutex is creation, not
// copying.
func FreshMutex() *sync.Mutex {
	mu := sync.Mutex{}
	return &mu
}

// HeldAcrossSend sends while holding the lock.
func (e *Endpoint) HeldAcrossSend(ctx context.Context) error {
	e.mu.Lock()
	err := e.Send(ctx, 1, nil) // want lockguard: while holding
	e.mu.Unlock()
	return err
}

// DeferredHold holds the lock through a deferred unlock across a Recv.
func (e *Endpoint) DeferredHold(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.Recv(ctx) // want lockguard: while holding
	return err
}

// ReleasedBeforeSend is clean: the lock is released before blocking.
func (e *Endpoint) ReleasedBeforeSend(ctx context.Context) error {
	e.mu.Lock()
	e.mu.Unlock()
	return e.Send(ctx, 1, nil)
}

// DropSend discards a Send error.
func DropSend(ctx context.Context, e *Endpoint) {
	e.Send(ctx, 1, nil) // want errdrop: result of Send discarded
}

// DropCloseDefer discards a Close error through defer.
func DropCloseDefer(e *Endpoint) {
	defer e.Close() // want errdrop: deferred Close
}

// DropSendGo discards a Send error through a go statement.
func DropSendGo(ctx context.Context, e *Endpoint) {
	go e.Send(ctx, 1, nil) // want errdrop: go statement
}

// BlankRecv blanks the Recv error.
func BlankRecv(ctx context.Context, e *Endpoint) []byte {
	m, _ := e.Recv(ctx) // want errdrop: error result of Recv
	return m
}

// BlankStats throws a Stats snapshot away.
func BlankStats(e *Endpoint) {
	_ = e.Stats() // want errdrop: all results of Stats
}

// Handled is the clean case: every result is consumed.
func Handled(ctx context.Context, e *Endpoint) error {
	if err := e.Send(ctx, 1, nil); err != nil {
		return err
	}
	if _, err := e.Recv(ctx); err != nil {
		return err
	}
	return e.Close()
}

// IgnoredSameLine demonstrates a valid same-line suppression.
func IgnoredSameLine(e *Endpoint) {
	e.Close() //fap:ignore errdrop fixture demonstrating a justified best-effort close
}

// IgnoredLineAbove demonstrates a valid line-above suppression.
func IgnoredLineAbove(e *Endpoint) {
	//fap:ignore errdrop fixture demonstrating the directive-above form
	e.Close()
}
