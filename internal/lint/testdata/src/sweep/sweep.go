// Package sweep is the ctxfirst analyzer's struct-storage exemption case:
// a package whose import path has a "sweep" segment may carry a context in
// worker state, mirroring internal/sweep's documented plumbing. Parameter
// order is still enforced here.
package sweep

import "context"

// workerState legally stores a context inside the sweep package.
type workerState struct {
	ctx context.Context
	id  int
}

// Ctx uses the stored context.
func (w workerState) Ctx() context.Context { return w.ctx }

// ID returns the worker id.
func (w workerState) ID() int { return w.id }

// BadOrder is still a violation inside sweep: the exemption covers struct
// storage only, not parameter order.
func BadOrder(id int, ctx context.Context) {} // want ctxfirst: first parameter
