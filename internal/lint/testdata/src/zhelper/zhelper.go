// Package zhelper provides the cross-package callees for zalloc's
// transitive cases. Nothing here is annotated //fap:zeroalloc, so nothing
// here is a diagnostic on its own — the violations appear only at the
// annotated call sites in zalloc that reach these bodies.
package zhelper

// Alloc allocates: calling it from a //fap:zeroalloc function is the
// cross-package violation an exercised-path AllocsPerRun test can miss.
func Alloc(n int) []float64 {
	return make([]float64, n)
}

// Pure writes through the caller's buffer only.
func Pure(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Grow is a justified cold-path allocation site: the transitive pass
// prunes at the directive instead of blaming callers.
//
//fap:allocok grows only when capacity is exceeded; steady state reuses the backing array
func Grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
