// Package metrics is the walltime analyzer's hot case: its import path
// carries the metrics segment, so importing time is a diagnostic no
// matter how the package uses it.
package metrics

import (
	"sort"
	"time" // want walltime: must not import "time"

	"fix/clockutil"
)

// LastScrape smuggles a wall-clock reading into exported state — the
// exact bug class the import ban exists to stop.
var LastScrape time.Time

// Touch records the scrape instant.
func Touch() {
	LastScrape = time.Now()
}

// Scrape launders the clock through a helper package: this file's import
// ban cannot see it, the call graph can.
func Scrape() {
	LastScrape = clockutil.Stamp() // want walltime: reaches the time package
}

// Keys is fine: the ban is on time, not on the rest of the stdlib.
func Keys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
