// Package gossip exercises the determinism and goleak analyzers over the
// aggregation engine's idioms: its import path carries the gossip
// segment, so solves must be bit-reproducible (no wall clock, no global
// randomness, no map-ordered float folds) and every spawned node
// goroutine must be tied to a shutdown mechanism.
package gossip

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Engine is a stand-in for the per-node aggregation engine.
type Engine struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// GoodSeededSchedule derives the exchange schedule from an explicit seed,
// the reproducible way to randomize peer picks.
func GoodSeededSchedule(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	picks := make([]int, n)
	for i := range picks {
		picks[i] = rng.Intn(n)
	}
	return picks
}

// BadSchedulePick draws the exchange target from the process-wide source.
func BadSchedulePick(n int) int {
	return rand.Intn(n) // want determinism: shared process-wide source
}

// BadRoundStamp reads the wall clock into a round record.
func BadRoundStamp() int64 {
	return time.Now().UnixNano() // want determinism: time.Now
}

// BadAggregateFold accumulates partial sums in map-iteration order, so
// the rounded total depends on Go's randomized map walk.
func BadAggregateFold(partials map[int]float64) float64 {
	var sum float64
	for _, v := range partials {
		sum += v // want determinism: iteration order
	}
	return sum
}

// GoodCountFold is clean: integer accumulation commutes exactly, so map
// order cannot change the result.
func GoodCountFold(counts map[int]int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// GoodSpawn ties each node goroutine to the engine's WaitGroup.
func (e *Engine) GoodSpawn(nodes int) {
	for i := 0; i < nodes; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			runNode()
		}()
	}
	e.wg.Wait()
}

// GoodSupervised ties the watchdog to context cancellation.
func GoodSupervised(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// GoodClosable ties the pump to the channel Close closes.
func (e *Engine) GoodClosable() {
	go func() {
		<-e.done
	}()
}

// Close releases the pump goroutine.
func (e *Engine) Close() {
	close(e.done)
}

// BadFireAndForget spawns a node with no shutdown tie at all.
func BadFireAndForget() {
	go runNode() // want goleak: not tied to a WaitGroup
}

func runNode() {}
