// Package core mirrors the real solver package's shape for the
// determinism taint fixture: its import path carries the core segment and
// its methods are named like the solver entry points, so the taint walk
// starts here — while the nondeterminism lives one package away in
// clockutil, which is non-numeric and locally exempt. A per-function pass
// sees nothing wrong in either package.
package core

import "fix/clockutil"

// Allocator mirrors the real solver type.
type Allocator struct{ stamp float64 }

// Run is a solver root: reaching clockutil's wall-clock read through any
// statically resolvable chain is a diagnostic at the first call edge.
func (a *Allocator) Run() {
	a.stamp = float64(clockutil.Stamp().Unix()) // want determinism: reaches nondeterminism
}

// Helper reaches the same clock read but is not an entry point, so the
// taint stays scoped to the paper's solver surface and this is silent.
func (a *Allocator) Helper() {
	a.stamp = float64(clockutil.Stamp().Unix())
}

// WarmSolver mirrors the warm-start solver type.
type WarmSolver struct{ jitter float64 }

// SolveWarm is a root reaching the global rand source two hops away: the
// first hop is a same-package helper the walk descends through without
// re-blaming (the local layer owns numeric-package bodies).
func (w *WarmSolver) SolveWarm() {
	w.jitter = indirect() // want determinism: reaches nondeterminism
}

// Solve is a root whose reachable callees are all deterministic.
func (w *WarmSolver) Solve(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// indirect forwards to the tainted helper package.
func indirect() float64 {
	return clockutil.Jitter()
}
