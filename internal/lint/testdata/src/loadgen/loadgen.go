// Package loadgen exercises the load-generator segment scoping: phase
// reports are contractually byte-identical for a given (spec, seed), so
// the walltime import ban, its transitive clock-laundering check, and the
// goleak shutdown rule all apply here; the ctxfirst parameter-order rule
// holds as everywhere.
package loadgen

import (
	"context"
	"sync"
	"time" // want walltime: must not import "time"

	"fix/clockutil"
)

// ReportStamp smuggles a wall-clock reading into the report — the exact
// determinism break the segment ban exists to stop.
var ReportStamp time.Time

// Stamp launders the clock through a helper package: the import ban in
// that package's file cannot see it, the call graph can.
func Stamp() {
	ReportStamp = clockutil.Stamp() // want walltime: reaches the time package
}

// BadFire spawns a firing worker nothing can stop: no WaitGroup, no
// context, no close()d channel.
func BadFire() {
	go func() { // want goleak: not tied to a WaitGroup
		for {
			fire()
		}
	}()
}

// GoodWorker ties its worker to a WaitGroup the way the engine's sweep
// workers are tied.
func GoodWorker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fire()
	}()
	wg.Wait()
}

// BadOrder buries the context behind the batch index.
func BadOrder(i int, ctx context.Context) {} // want ctxfirst: first parameter

func fire() {}
