// Package lockordfix exercises the lockorder analyzer: its import path
// carries the agent segment, so inconsistent lock-acquisition orders
// across functions — including orders assembled through helper calls —
// are inversion cycles.
package lockordfix

import "sync"

// Server holds the locks under test; each field is one lock identity.
type Server struct {
	mu1, mu2 sync.Mutex
	mu3, mu4 sync.Mutex
	mu5, mu6 sync.Mutex
}

// LockAB acquires mu1 then mu2.
func (s *Server) LockAB() {
	s.mu1.Lock()
	s.mu2.Lock() // want lockorder: lock-order inversion cycle
	s.mu2.Unlock()
	s.mu1.Unlock()
}

// LockBA acquires the same pair in the opposite order: two goroutines
// running LockAB and LockBA can each hold one lock and wait forever.
func (s *Server) LockBA() {
	s.mu2.Lock()
	s.mu1.Lock()
	s.mu1.Unlock()
	s.mu2.Unlock()
}

// ThreeThenFour reaches mu4 through a helper while holding mu3: the
// inversion against FourThenThree is split across functions, which only
// the call graph sees.
func (s *Server) ThreeThenFour() {
	s.mu3.Lock()
	s.lockFour() // want lockorder: lock-order inversion cycle
	s.mu3.Unlock()
}

// FourThenThree acquires the same pair directly, in the opposite order.
func (s *Server) FourThenThree() {
	s.mu4.Lock()
	s.mu3.Lock()
	s.mu3.Unlock()
	s.mu4.Unlock()
}

// lockFour acquires mu4 on behalf of its callers.
func (s *Server) lockFour() {
	s.mu4.Lock()
	s.mu4.Unlock()
}

// ConsistentOne and ConsistentTwo acquire mu5 then mu6 in the same order
// everywhere: a consistent order is never a cycle.
func (s *Server) ConsistentOne() {
	s.mu5.Lock()
	s.mu6.Lock()
	s.mu6.Unlock()
	s.mu5.Unlock()
}

// ConsistentTwo repeats the order with a deferred release: the deferred
// unlock holds mu5 to return, and the nested mu6 acquisition is still the
// same mu5 -> mu6 edge.
func (s *Server) ConsistentTwo() {
	s.mu5.Lock()
	defer s.mu5.Unlock()
	s.mu6.Lock()
	s.mu6.Unlock()
}
