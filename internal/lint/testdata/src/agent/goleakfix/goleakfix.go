// Package goleakfix exercises the goleak analyzer: its import path
// carries the agent segment, so every go statement must be tied to a
// WaitGroup, a context, or a close()d channel — directly in the spawned
// body or through any statically resolved call chain.
package goleakfix

import (
	"context"
	"sync"
)

// Runner spawns the goroutines under test.
type Runner struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// GoodWaitGroup ties the goroutine to a WaitGroup.
func (r *Runner) GoodWaitGroup() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		work()
	}()
	r.wg.Wait()
}

// GoodContext ties the goroutine to ctx cancellation.
func GoodContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// GoodClosedChannel ties the goroutine to the channel Close closes.
func (r *Runner) GoodClosedChannel() {
	go func() {
		<-r.done
	}()
}

// Close closes the channel the goroutine above receives on.
func (r *Runner) Close() {
	close(r.done)
}

// GoodNamed spawns a declared method whose body signals the WaitGroup —
// visible only through the call graph.
func (r *Runner) GoodNamed() {
	r.wg.Add(1)
	go r.loop()
}

func (r *Runner) loop() {
	defer r.wg.Done()
	work()
}

// GoodNestedCall reaches the WaitGroup signal two hops away.
func (r *Runner) GoodNestedCall() {
	r.wg.Add(1)
	go func() {
		r.finish()
	}()
}

func (r *Runner) finish() {
	r.wg.Done()
}

// GoodLocalChannel ties the goroutine to a locally close()d channel.
func GoodLocalChannel() {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		<-stop
	}()
}

// BadFireAndForget has no shutdown tie at all: nothing can make this
// goroutine exit.
func BadFireAndForget() {
	go func() { // want goleak: not tied to a WaitGroup
		for {
			work()
		}
	}()
}

// BadNamed spawns a declared function with no shutdown tie anywhere in
// its call subtree.
func BadNamed() {
	go spin() // want goleak: not tied to a WaitGroup
}

func spin() {
	for {
		work()
	}
}

// BadFunctionValue spawns through a variable: statically unverifiable,
// reported as such.
func BadFunctionValue(fn func()) {
	go fn() // want goleak: function value
}

func work() {}
