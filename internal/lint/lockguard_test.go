package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestLockGuard proves both halves of the analyzer on the transport
// fixture: sync primitives passed or copied by value (with zero-value
// initialization staying legal), and mutexes held across blocking
// Send/Recv calls, including through a deferred unlock, with the
// release-before-blocking pattern staying clean.
func TestLockGuard(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "transport", analyzer: lint.LockGuard, wants: 6},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
