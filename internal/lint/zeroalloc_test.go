package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestZeroAlloc proves the annotation contract: every allocation construct
// inside a //fap:zeroalloc function is flagged (make, new, unhoisted
// append, slice literal, escaping composite literal, capturing closure),
// while annotated-but-clean functions and unannotated allocating functions
// pass.
func TestZeroAlloc(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "zalloc", analyzer: lint.ZeroAlloc, wants: 6},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
