package lint_test

import (
	"testing"

	"filealloc/internal/lint"
)

// TestZeroAlloc proves the annotation contract: every allocation construct
// inside a //fap:zeroalloc function is flagged (make, new, unhoisted
// append, slice literal, escaping composite literal, capturing closure),
// and so is every reachable callee containing one — same-package chains
// and cross-package calls alike — while annotated-but-clean functions,
// unannotated allocating functions, and //fap:allocok-justified callees
// pass.
func TestZeroAlloc(t *testing.T) {
	for _, tc := range []fixtureCase{
		{pkg: "zalloc", analyzer: lint.ZeroAlloc, wants: 8, deps: []string{"zhelper"}},
	} {
		t.Run(tc.pkg, func(t *testing.T) { checkFixture(t, tc) })
	}
}
