package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis. Only non-test files are loaded: fapvet gates production code;
// tests are free to use clocks, maps, and ad-hoc allocation.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *listPkgError
}

type listPkgError struct {
	Err string
}

// Load resolves patterns (as the go tool understands them, e.g. "./...")
// relative to dir, parses every matched package, and type-checks it against
// export data produced by the go toolchain. It needs only the standard
// library and the `go` binary: dependencies are imported from the build
// cache's export files via go/importer, so no golang.org/x/tools packages
// are involved and no network is touched.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %v: %v\n%s", args, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: patterns %v matched no packages", patterns)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// typeCheck parses and type-checks one go-list package entry.
func typeCheck(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
