package sweep

import (
	"context"

	"filealloc/internal/metrics"
)

// metricsKey carries a metrics registry through a context, mirroring the
// WithWorkers plumbing: experiment drivers opt in at the edge and every
// sweep below them meters itself.
type metricsKey struct{}

// WithMetrics returns a context that makes downstream sweeps record into
// reg. A nil registry disables metering.
func WithMetrics(ctx context.Context, reg *metrics.Registry) context.Context {
	return context.WithValue(ctx, metricsKey{}, reg)
}

// registryFrom extracts the registry installed by WithMetrics, if any.
func registryFrom(ctx context.Context) *metrics.Registry {
	reg, _ := ctx.Value(metricsKey{}).(*metrics.Registry)
	return reg
}

// queueDepthBounds buckets the number of items still unclaimed at each
// claim; the paper's sweeps run tens of items (Fig 5: 70 stepsizes).
var queueDepthBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// sweepMeter holds the per-run instruments. Everything recorded is an
// integer derived from item indices, never from scheduling. Claiming is
// chunked — a worker grabs a run of contiguous indices per atomic op and
// executes them in ascending order — but the queue-depth observation is
// still made per item from its index: item i observes depth n−i exactly
// once, whichever worker's chunk it landed in and whatever the chunk
// size. The multiset of observations is therefore fixed by n alone, and
// counters/histograms aggregate order-insensitively, so completed sweeps
// snapshot byte-identically across worker counts and chunk sizes. Worker
// utilization is derivable (items/run ÷ workers bounds the per-worker
// share) without storing a single wall-clock- or scheduling-dependent
// value — those are forbidden in the registry by the determinism
// contract.
type sweepMeter struct {
	runs       *metrics.Counter
	items      *metrics.Counter
	errors     *metrics.Counter
	queueDepth *metrics.Histogram
}

// meterFrom builds the instrument set for a run, or nil when the context
// carries no registry.
func meterFrom(ctx context.Context) *sweepMeter {
	reg := registryFrom(ctx)
	if reg == nil {
		return nil
	}
	return &sweepMeter{
		runs: reg.Counter("fap_sweep_runs_total",
			"sweep invocations"),
		items: reg.Counter("fap_sweep_items_total",
			"sweep items completed"),
		errors: reg.Counter("fap_sweep_item_errors_total",
			"sweep items that returned an error"),
		queueDepth: reg.Histogram("fap_sweep_queue_depth",
			"items still unclaimed when each item was claimed", queueDepthBounds),
	}
}

// claimed records one item claim; depth is the number of items not yet
// claimed, including this one.
func (m *sweepMeter) claimed(depth int64) {
	if m == nil {
		return
	}
	m.items.Inc()
	m.queueDepth.Observe(depth)
}

// failed records one item error.
func (m *sweepMeter) failed() {
	if m == nil {
		return
	}
	m.errors.Inc()
}

// started records one Run invocation.
func (m *sweepMeter) started() {
	if m == nil {
		return
	}
	m.runs.Inc()
}
