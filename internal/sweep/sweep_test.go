package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderPreserved runs a sweep whose items finish in scrambled wall-
// clock order and checks the collected results match the serial loop
// slot for slot.
func TestOrderPreserved(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 8, n} {
		got := make([]int, n)
		err := Run(context.Background(), n, workers, func(ctx context.Context, i int) error {
			// Later items finish earlier; order must not care.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestSerialEquivalence checks workers=1 visits every index in order on
// the calling goroutine, exactly like the loop it replaces.
func TestSerialEquivalence(t *testing.T) {
	var order []int
	caller := goroutineID(t)
	err := Run(context.Background(), 10, 1, func(ctx context.Context, i int) error {
		if id := goroutineID(t); id != caller {
			return fmt.Errorf("item %d ran on goroutine %d, want caller %d", i, id, caller)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("visit order %v not ascending", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("visited %d items, want 10", len(order))
	}
}

// goroutineID identifies the current goroutine via a stack probe; good
// enough for asserting "same goroutine" in tests.
func goroutineID(t *testing.T) uint64 {
	t.Helper()
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	var id uint64
	if _, err := fmt.Sscanf(string(buf), "goroutine %d ", &id); err != nil {
		t.Fatalf("parsing goroutine id from %q: %v", buf, err)
	}
	return id
}

// TestFirstErrorWins: when exactly one item fails, every worker count
// surfaces that item's error, as the serial loop would.
func TestFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 2, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			err := Run(context.Background(), 50, workers, func(ctx context.Context, i int) error {
				if i == 17 {
					return fmt.Errorf("item %d: %w", i, sentinel)
				}
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d: err = %v, want %v", workers, err, sentinel)
			}
			if got := err.Error(); got != "item 17: boom" {
				t.Fatalf("workers=%d: err = %q, want the lowest-index error", workers, got)
			}
		}
	}
}

// TestLowestIndexErrorWins: when several running items fail, the lowest
// index is reported.
func TestLowestIndexErrorWins(t *testing.T) {
	const n = 8
	var release sync.WaitGroup
	release.Add(n)
	err := Run(context.Background(), n, n, func(ctx context.Context, i int) error {
		// Rendezvous: every item is running before any errors, so all
		// of them fail and the minimum index must win.
		release.Done()
		release.Wait()
		return fmt.Errorf("item %d failed", i)
	})
	if err == nil || err.Error() != "item 0 failed" {
		t.Fatalf("err = %v, want item 0 failed", err)
	}
}

// TestErrorCancelsPool: an early error must cancel in-flight items via
// their context and stop new items from starting.
func TestErrorCancelsPool(t *testing.T) {
	const (
		n       = 1000
		workers = 4
	)
	sentinel := errors.New("fail fast")
	var started atomic.Int64
	err := Run(context.Background(), n, workers, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return sentinel
		}
		// Other in-flight items park until the pool cancels them.
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("item %d never saw cancellation", i)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if s := started.Load(); s > workers {
		t.Fatalf("%d items started after the error, want at most %d (the in-flight ones)", s, workers)
	}
}

// TestContextCancellation: canceling the parent context stops the sweep
// and reports ctx.Err().
func TestContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		err := Run(ctx, 1000, workers, func(ctx context.Context, i int) error {
			if started.Add(1) == 1 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if s := started.Load(); s > int64(workers) {
			t.Fatalf("workers=%d: %d items ran after cancellation", workers, s)
		}
	}
}

// TestNoGoroutineLeak: Run must not leave worker goroutines behind, on
// success, on error, and on cancellation.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Run(ctx, 100, 8, func(ctx context.Context, i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep: %v", err)
	}
	if err := Run(context.Background(), 100, 8, func(ctx context.Context, i int) error {
		if i%7 == 3 {
			return errors.New("sporadic failure")
		}
		return nil
	}); err == nil {
		t.Fatal("erroring sweep returned nil")
	}
	if err := Run(context.Background(), 100, 8, func(ctx context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
	// Give exited workers a moment to be reaped, then compare counts.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEdgeCases covers degenerate inputs.
func TestEdgeCases(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(ctx context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := Run(context.Background(), -1, 4, func(ctx context.Context, i int) error { return nil }); err == nil {
		t.Fatal("n=-1 accepted")
	}
	if err := Run(context.Background(), 4, 4, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	// workers < 1 defaults to GOMAXPROCS and still completes every item.
	var count atomic.Int64
	if err := Run(context.Background(), 33, 0, func(ctx context.Context, i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("workers=0: %v", err)
	}
	if count.Load() != 33 {
		t.Fatalf("workers=0 ran %d items, want 33", count.Load())
	}
	// More workers than items must not panic or stall.
	if err := Run(context.Background(), 2, 64, func(ctx context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("workers>n: %v", err)
	}
}

// TestWorkersContext covers the context plumbing used by the experiment
// harnesses and cmd/fapsim's -workers flag.
func TestWorkersContext(t *testing.T) {
	ctx := context.Background()
	if got, want := WorkersFrom(ctx), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, want)
	}
	if got := WorkersFrom(WithWorkers(ctx, 3)); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	if got := WorkersFrom(WithWorkers(ctx, 1)); got != 1 {
		t.Fatalf("workers = %d, want 1", got)
	}
	// Non-positive restores the default.
	if got, want := WorkersFrom(WithWorkers(ctx, 0)), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("workers = %d, want default %d", got, want)
	}
}
