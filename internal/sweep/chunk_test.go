package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"filealloc/internal/metrics"
)

// TestChunkSizeContext covers the WithChunkSize plumbing, including the
// normalization of non-positive sizes and nested overrides.
func TestChunkSizeContext(t *testing.T) {
	ctx := context.Background()
	if got := ChunkSizeFrom(ctx); got != 0 {
		t.Fatalf("default chunk size = %d, want 0 (automatic)", got)
	}
	if got := ChunkSizeFrom(WithChunkSize(ctx, 7)); got != 7 {
		t.Fatalf("chunk size = %d, want 7", got)
	}
	// Non-positive restores the automatic choice, shadowing outer sizes.
	for _, size := range []int{0, -3} {
		if got := ChunkSizeFrom(WithChunkSize(WithChunkSize(ctx, 7), size)); got != 0 {
			t.Fatalf("WithChunkSize(%d) over 7: chunk size = %d, want 0 (automatic)", size, got)
		}
	}
	if got := ChunkSizeFrom(WithChunkSize(WithChunkSize(ctx, 0), 5)); got != 5 {
		t.Fatalf("nested positive override: chunk size = %d, want 5", got)
	}
}

// TestWorkersNormalizedAtStore pins the WithWorkers contract the docs
// promise: every workers < 1 is stored as the same canonical default
// marker, so 0, negative, and nested overrides all read back as the
// GOMAXPROCS default.
func TestWorkersNormalizedAtStore(t *testing.T) {
	ctx := context.Background()
	def := runtime.GOMAXPROCS(0)
	for _, workers := range []int{0, -1, -100} {
		if got := WorkersFrom(WithWorkers(ctx, workers)); got != def {
			t.Errorf("WithWorkers(%d): workers = %d, want default %d", workers, got, def)
		}
		// The raw value must not be observable: the stored marker is 0.
		if v, ok := WithWorkers(ctx, workers).Value(workersKey{}).(int); !ok || v != 0 {
			t.Errorf("WithWorkers(%d) stored %v, want canonical 0", workers, v)
		}
		// A non-positive inner override shadows an outer positive one.
		if got := WorkersFrom(WithWorkers(WithWorkers(ctx, 3), workers)); got != def {
			t.Errorf("WithWorkers(%d) over 3: workers = %d, want default %d", workers, got, def)
		}
	}
	if got := WorkersFrom(WithWorkers(WithWorkers(ctx, 0), 5)); got != 5 {
		t.Errorf("nested positive override: workers = %d, want 5", got)
	}
}

// TestDefaultChunkSize pins the automatic stride: ⌈n/(4·workers)⌉, at
// least 1.
func TestDefaultChunkSize(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{1, 1, 1},
		{3, 8, 1},
		{70, 8, 3},   // figure 5's grid
		{510, 8, 16}, // figure 6's grid
		{100, 1, 25},
		{4096, 16, 64},
	}
	for _, tc := range cases {
		if got := defaultChunkSize(tc.n, tc.workers); got != tc.want {
			t.Errorf("defaultChunkSize(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}

// TestChunkedCompleteness runs sweeps across chunk-size edge cases —
// automatic, 1 (item-at-a-time, the pre-chunking behavior), exactly n,
// and far beyond n — and checks every item ran exactly once and wrote
// its own slot.
func TestChunkedCompleteness(t *testing.T) {
	const n = 97 // prime: never divides evenly into chunks
	for _, chunk := range []int{0, 1, 2, 7, n, 10 * n} {
		for _, workers := range []int{2, 3, 8, n} {
			ctx := WithChunkSize(context.Background(), chunk)
			got := make([]int32, n)
			err := Run(ctx, n, workers, func(ctx context.Context, i int) error {
				atomic.AddInt32(&got[i], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
			}
			for i, v := range got {
				if v != 1 {
					t.Fatalf("chunk=%d workers=%d: item %d ran %d times, want 1", chunk, workers, i, v)
				}
			}
		}
	}
}

// TestChunkedFirstErrorWins: the lowest-index error wins under every
// chunk size, exactly as the serial loop would report it.
func TestChunkedFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	for _, chunk := range []int{1, 4, 50, 1000} {
		ctx := WithChunkSize(context.Background(), chunk)
		for trial := 0; trial < 10; trial++ {
			err := Run(ctx, 50, 4, func(ctx context.Context, i int) error {
				if i == 17 {
					return fmt.Errorf("item %d: %w", i, sentinel)
				}
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("chunk=%d: err = %v, want %v", chunk, err, sentinel)
			}
			if got := err.Error(); got != "item 17: boom" {
				t.Fatalf("chunk=%d: err = %q, want the lowest-index error", chunk, got)
			}
		}
	}
}

// TestScratchPerWorker pins the scratch lifecycle: one scratch per
// worker that claims work, never more than workers total, every item
// served by some worker's scratch, and exactly one scratch on the serial
// path.
func TestScratchPerWorker(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 3, 8} {
		var created atomic.Int64
		var mu sync.Mutex
		seen := make(map[*int]int) // scratch identity → items served
		err := RunWithScratch(context.Background(), n, workers,
			func() *int {
				created.Add(1)
				return new(int)
			},
			func(ctx context.Context, i int, scratch *int) error {
				*scratch++ // scratch is worker-private: no lock needed for it
				mu.Lock()
				seen[scratch]++
				mu.Unlock()
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if c := created.Load(); c < 1 || c > int64(workers) {
			t.Errorf("workers=%d: %d scratches created, want between 1 and %d", workers, c, workers)
		}
		if workers == 1 && created.Load() != 1 {
			t.Errorf("serial path created %d scratches, want exactly 1", created.Load())
		}
		total := 0
		for scratch, items := range seen {
			if *scratch != items {
				t.Errorf("workers=%d: scratch served %d items but accumulated %d", workers, items, *scratch)
			}
			total += items
		}
		if total != n {
			t.Errorf("workers=%d: %d items served, want %d", workers, total, n)
		}
	}
}

// TestScratchNotCreatedForIdleWorkers: with a chunk spanning the whole
// sweep, only the worker that claims it builds a scratch.
func TestScratchNotCreatedForIdleWorkers(t *testing.T) {
	var created atomic.Int64
	ctx := WithChunkSize(context.Background(), 1000)
	err := RunWithScratch(ctx, 40, 8,
		func() struct{} { created.Add(1); return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c != 1 {
		t.Errorf("%d scratches created for a single-chunk sweep, want 1", c)
	}
}

// TestRunWithScratchValidation covers the degenerate inputs RunWithScratch
// must reject or no-op, mirroring Run's contract.
func TestRunWithScratchValidation(t *testing.T) {
	noop := func(ctx context.Context, i int, _ struct{}) error { return nil }
	mk := func() struct{} { return struct{}{} }
	if err := RunWithScratch(context.Background(), -1, 4, mk, noop); err == nil {
		t.Error("n=-1 accepted")
	}
	if err := RunWithScratch[struct{}](context.Background(), 4, 4, mk, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if err := RunWithScratch(context.Background(), 4, 4, nil, noop); err == nil {
		t.Error("nil scratch constructor accepted")
	}
	if err := RunWithScratch(context.Background(), 0, 4, mk, noop); err != nil {
		t.Errorf("n=0: %v", err)
	}
}

// TestSweepMetricsChunkInvariant requires byte-identical registry
// snapshots across worker counts and chunk sizes: the queue-depth
// multiset depends only on n.
func TestSweepMetricsChunkInvariant(t *testing.T) {
	runOnce := func(workers, chunk int) metrics.Snapshot {
		reg := metrics.New()
		ctx := WithMetrics(context.Background(), reg)
		if chunk != 0 {
			ctx = WithChunkSize(ctx, chunk)
		}
		if err := Run(ctx, 40, workers, func(ctx context.Context, i int) error {
			return nil
		}); err != nil {
			t.Fatalf("Run(workers=%d, chunk=%d): %v", workers, chunk, err)
		}
		return reg.Snapshot()
	}
	want := runOnce(1, 0)
	for _, workers := range []int{2, 8} {
		for _, chunk := range []int{0, 1, 3, 40, 100} {
			got := runOnce(workers, chunk)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("snapshot for workers=%d chunk=%d differs from serial:\nserial: %+v\ngot:    %+v",
					workers, chunk, want, got)
			}
		}
	}
}
