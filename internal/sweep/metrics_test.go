package sweep

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"filealloc/internal/metrics"
)

// TestSweepMetricsDeterministic runs the same sweep serially and with
// eight workers and requires byte-identical registry snapshots — the
// queue-depth observations must depend only on item indices.
func TestSweepMetricsDeterministic(t *testing.T) {
	runOnce := func(workers int) metrics.Snapshot {
		reg := metrics.New()
		ctx := WithMetrics(context.Background(), reg)
		if err := Run(ctx, 40, workers, func(ctx context.Context, i int) error {
			return nil
		}); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return reg.Snapshot()
	}
	one := runOnce(1)
	eight := runOnce(8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("snapshots differ between workers=1 and workers=8:\n1: %+v\n8: %+v", one, eight)
	}
	b1, err := metrics.EncodeJSON(one)
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	b8, err := metrics.EncodeJSON(eight)
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if string(b1) != string(b8) {
		t.Fatalf("encoded snapshots differ:\n%s\nvs\n%s", b1, b8)
	}
	var items, runs int64
	for _, c := range one.Counters {
		switch c.Name {
		case "fap_sweep_items_total":
			items = c.Value
		case "fap_sweep_runs_total":
			runs = c.Value
		}
	}
	if items != 40 || runs != 1 {
		t.Errorf("items=%d runs=%d, want 40 and 1", items, runs)
	}
	if len(one.Histograms) != 1 || one.Histograms[0].Sum != 40*41/2 {
		t.Errorf("queue depth histogram = %+v, want sum %d (Σ depths n..1)", one.Histograms, 40*41/2)
	}
}

func TestSweepMetricsCountsErrors(t *testing.T) {
	reg := metrics.New()
	ctx := WithMetrics(context.Background(), reg)
	boom := errors.New("boom")
	err := Run(ctx, 5, 1, func(ctx context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case "fap_sweep_item_errors_total":
			if c.Value != 1 {
				t.Errorf("item errors = %d, want 1", c.Value)
			}
		case "fap_sweep_items_total":
			if c.Value != 3 { // items 0,1,2 claimed before the failure stopped the serial loop
				t.Errorf("items = %d, want 3", c.Value)
			}
		}
	}
}

// TestSweepWithoutRegistryIsUnmetered pins the opt-in contract: no
// registry in the context means no metering and no panic.
func TestSweepWithoutRegistryIsUnmetered(t *testing.T) {
	if err := Run(context.Background(), 3, 2, func(ctx context.Context, i int) error {
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
