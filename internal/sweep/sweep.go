// Package sweep runs embarrassingly parallel experiment sweeps — the
// paper's evaluation is dominated by them (figure 5 sweeps 70 stepsizes,
// figure 6 grid-searches ~30 stepsizes per network size) — on a bounded
// worker pool while keeping the results indistinguishable from a serial
// loop.
//
// The contract mirrors `for i := 0; i < n; i++ { fn(ctx, i) }`:
//
//   - Order preservation is structural: fn receives its item index and
//     writes into the caller's own slot, so result order never depends on
//     scheduling. Each item must own its state (its own allocator, its own
//     seeded RNG); items may share read-only inputs.
//   - The first error wins: Run cancels the context passed to the
//     remaining items and returns the error of the lowest-indexed item
//     that failed. When a single item is at fault — the common case of a
//     deterministic fn — that is exactly the error the serial loop would
//     have surfaced.
//   - workers == 1 executes the items in index order on the calling
//     goroutine — byte-identical to the serial loop it replaces.
//   - Run never returns before every started item has finished, so it
//     leaks no goroutines even when canceled mid-sweep.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(ctx, i) for every i in [0, n) on at most workers
// concurrent goroutines and returns the lowest-index error among the
// items that ran, if any. workers < 1 selects runtime.GOMAXPROCS(0). A
// canceled ctx stops the sweep promptly; items not yet started are
// skipped and ctx.Err() is returned unless a lower-indexed item already
// failed with its own error.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n < 0 {
		return fmt.Errorf("sweep: negative item count %d", n)
	}
	if fn == nil {
		return fmt.Errorf("sweep: nil work function")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	// Metering is deterministic for sweeps that complete: items are
	// claimed in ascending index order in both paths, so item i records
	// queue depth n−i exactly once however the workers are scheduled. A
	// canceled or failing sweep stops claiming at a scheduling-dependent
	// point, just as it stops computing; only completed sweeps fall under
	// the snapshot byte-identity contract.
	m := meterFrom(ctx)
	m.started()
	if workers == 1 {
		// The serial reference path: identical to the loop it replaces.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			m.claimed(int64(n - i))
			if err := fn(ctx, i); err != nil {
				m.failed()
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next item index to claim
		mu       sync.Mutex
		firstIdx = n // lowest item index that errored
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					return
				}
				m.claimed(int64(n - i))
				if err := fn(cctx, i); err != nil {
					m.failed()
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Items may have been skipped because the parent context died with
	// no item erroring first; the serial loop would have reported that.
	return ctx.Err()
}

// workersKey carries the sweep parallelism through a context.
type workersKey struct{}

// WithWorkers returns a context that tells WorkersFrom to use the given
// parallelism for sweeps downstream. workers == 1 forces the serial
// reference path; workers < 1 restores the default.
func WithWorkers(ctx context.Context, workers int) context.Context {
	return context.WithValue(ctx, workersKey{}, workers)
}

// WorkersFrom returns the sweep parallelism carried by ctx, or
// runtime.GOMAXPROCS(0) when none was set.
func WorkersFrom(ctx context.Context) int {
	if w, ok := ctx.Value(workersKey{}).(int); ok && w >= 1 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}
