// Package sweep runs embarrassingly parallel experiment sweeps — the
// paper's evaluation is dominated by them (figure 5 sweeps 70 stepsizes,
// figure 6 grid-searches ~30 stepsizes per network size) — on a bounded
// worker pool while keeping the results indistinguishable from a serial
// loop.
//
// The contract mirrors `for i := 0; i < n; i++ { fn(ctx, i) }`:
//
//   - Order preservation is structural: fn receives its item index and
//     writes into the caller's own slot, so result order never depends on
//     scheduling. Each item must own its state (its own allocator, its own
//     seeded RNG); items may share read-only inputs.
//   - The first error wins: Run cancels the context passed to the
//     remaining items and returns the error of the lowest-indexed item
//     that failed. When a single item is at fault — the common case of a
//     deterministic fn — that is exactly the error the serial loop would
//     have surfaced.
//   - workers == 1 executes the items in index order on the calling
//     goroutine — byte-identical to the serial loop it replaces.
//   - Run never returns before every started item has finished, so it
//     leaks no goroutines even when canceled mid-sweep.
//
// Scheduling is chunked: workers claim runs of contiguous indices with a
// single atomic operation instead of one index per atomic op, so the
// claiming overhead on the paper's short tasks (a figure-6 grid cell is
// tens of microseconds) is amortized over a whole chunk. The chunk size
// is derived from n/workers (see WithChunkSize) and is invisible in the
// results: items still execute in ascending order within each chunk and
// write into their own slots.
//
// RunWithScratch extends the core.PlanStepInto zero-allocation
// discipline across a whole sweep: each worker builds one scratch value
// and reuses it for every item it claims, so per-item setup (allocator
// buffers, rings, step scratch) is paid once per worker instead of once
// per item.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(ctx, i) for every i in [0, n) on at most workers
// concurrent goroutines and returns the lowest-index error among the
// items that ran, if any. workers < 1 selects runtime.GOMAXPROCS(0). A
// canceled ctx stops the sweep promptly; items not yet started are
// skipped and ctx.Err() is returned unless a lower-indexed item already
// failed with its own error.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if fn == nil {
		return fmt.Errorf("sweep: nil work function")
	}
	return RunWithScratch(ctx, n, workers,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, i int, _ struct{}) error { return fn(ctx, i) })
}

// RunWithScratch is Run with a per-worker scratch value: newScratch runs
// at most once per worker that claims work (exactly once when workers is
// 1), and every item a worker executes receives that worker's scratch.
// Use it to hoist reusable buffers — a core.Scratch, a ring, a step
// planner — out of the per-item path so the sweep's steady state
// allocates nothing.
//
// fn must leave no item-observable state in the scratch: results must be
// identical whether a scratch served one item or fifty, or the
// workers=1-equals-serial contract breaks. Buffers whose contents are
// fully overwritten (or explicitly reset) per item are fine; accumulators
// are not.
func RunWithScratch[S any](ctx context.Context, n, workers int, newScratch func() S, fn func(ctx context.Context, i int, scratch S) error) error {
	if n < 0 {
		return fmt.Errorf("sweep: negative item count %d", n)
	}
	if fn == nil {
		return fmt.Errorf("sweep: nil work function")
	}
	if newScratch == nil {
		return fmt.Errorf("sweep: nil scratch constructor")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	// Metering is deterministic for sweeps that complete: item i records
	// queue depth n−i exactly once in every path — the depth is derived
	// from the item's index, never from scheduling — so the multiset of
	// observations, and with it the registry snapshot, is identical for
	// any worker count and any chunk size. Within a chunk items are
	// claimed in ascending index order; across workers the interleaving
	// varies, but counters and histograms are order-insensitive
	// aggregates. A canceled or failing sweep stops claiming at a
	// scheduling-dependent point, just as it stops computing; only
	// completed sweeps fall under the snapshot byte-identity contract.
	m := meterFrom(ctx)
	m.started()
	if workers == 1 {
		// The serial reference path: identical to the loop it replaces,
		// with one scratch serving every item in index order.
		scratch := newScratch()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			m.claimed(int64(n - i))
			if err := fn(ctx, i, scratch); err != nil {
				m.failed()
				return err
			}
		}
		return nil
	}

	chunk := ChunkSizeFrom(ctx)
	if chunk < 1 {
		chunk = defaultChunkSize(n, workers)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next item index to claim (chunk base)
		mu       sync.Mutex
		firstIdx = n // lowest item index that errored
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The scratch is built lazily on the first claimed chunk:
			// when chunks outnumber workers every worker pays exactly one
			// newScratch, and a worker that never claims work (large
			// chunk sizes leave fewer chunks than workers) pays none.
			var scratch S
			made := false
			for {
				base := int(next.Add(int64(chunk))) - chunk
				if base >= n {
					return
				}
				end := base + chunk
				if end > n {
					end = n
				}
				if !made {
					scratch = newScratch()
					made = true
				}
				for i := base; i < end; i++ {
					if err := cctx.Err(); err != nil {
						return
					}
					m.claimed(int64(n - i))
					if err := fn(cctx, i, scratch); err != nil {
						m.failed()
						fail(i, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Items may have been skipped because the parent context died with
	// no item erroring first; the serial loop would have reported that.
	return ctx.Err()
}

// chunksPerWorker balances batching against load: claiming ~4 chunks per
// worker keeps the atomic-op count low while leaving enough chunks for
// workers that drew cheap items to steal more work — figure-6 grid cells
// vary severalfold in cost across (size, α).
const chunksPerWorker = 4

// defaultChunkSize derives the claiming stride from n/workers:
// ⌈n/(4·workers)⌉, at least 1. One atomic op then claims a whole run of
// items, and every worker still gets ~4 opportunities to rebalance.
func defaultChunkSize(n, workers int) int {
	c := (n + chunksPerWorker*workers - 1) / (chunksPerWorker * workers)
	if c < 1 {
		c = 1
	}
	return c
}

// workersKey carries the sweep parallelism through a context.
type workersKey struct{}

// WithWorkers returns a context that tells WorkersFrom to use the given
// parallelism for sweeps downstream. workers == 1 forces the serial
// reference path; workers < 1 restores the default (GOMAXPROCS at read
// time), shadowing any parallelism set further up the context chain. The
// value is normalized at store time: every workers < 1 is stored as the
// same canonical default marker, so WorkersFrom never observes a raw
// negative count.
func WithWorkers(ctx context.Context, workers int) context.Context {
	if workers < 1 {
		workers = 0 // canonical "use the default" marker
	}
	return context.WithValue(ctx, workersKey{}, workers)
}

// WorkersFrom returns the sweep parallelism carried by ctx, or
// runtime.GOMAXPROCS(0) when none was set (or the default was restored
// with WithWorkers(ctx, 0)).
func WorkersFrom(ctx context.Context) int {
	if w, ok := ctx.Value(workersKey{}).(int); ok && w >= 1 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// chunkKey carries the sweep chunk size through a context.
type chunkKey struct{}

// WithChunkSize returns a context that makes downstream parallel sweeps
// claim runs of size contiguous items per atomic operation. size < 1
// restores the automatic choice (⌈n/(4·workers)⌉), shadowing any size
// set further up the chain; size == 1 reproduces item-at-a-time
// claiming; size ≥ n makes the first worker claim the whole sweep.
// Results are identical for every chunk size — only claiming overhead
// and load balance change. The serial path (workers == 1) ignores the
// chunk size entirely.
func WithChunkSize(ctx context.Context, size int) context.Context {
	if size < 1 {
		size = 0 // canonical "automatic" marker
	}
	return context.WithValue(ctx, chunkKey{}, size)
}

// ChunkSizeFrom returns the chunk size carried by ctx, or 0 when none
// was set (meaning the automatic n/workers-derived choice).
func ChunkSizeFrom(ctx context.Context) int {
	if c, ok := ctx.Value(chunkKey{}).(int); ok && c >= 1 {
		return c
	}
	return 0
}
