// Package replication answers the question the paper's section 8.2 calls
// "the most salient issue" left open by the multiple-copy extension: "how
// many copies are optimal for the system? i.e. what is the best value of
// m? Since there are copies of files we may wish to include consistency
// and concurrency control costs and distinguish between reads and writes.
// Furthermore, the cost of storage and copy maintenance will affect the
// optimal number of copies."
//
// The model combines three terms, each rising or falling in m:
//
//   - Access cost: the optimized virtual-ring cost of serving reads from
//     m circulating copies (internal/multicopy) — decreasing in m, since
//     more copies mean shorter forward walks and less queue contention.
//   - Storage cost: StoragePerCopy per full copy held — linear in m.
//   - Consistency cost: every update must be applied to all m copies, so
//     each update pays PropagationCost for each of the other m−1 replicas
//     — linear in m, scaled by the update share of the workload.
//
// The sum is swept over m = 1..MaxCopies; the minimum is the optimal
// replication degree.
package replication

import (
	"context"
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
	"filealloc/internal/multicopy"
	"filealloc/internal/sweep"
)

// ErrBadConfig reports invalid sweep parameters.
var ErrBadConfig = errors.New("replication: invalid configuration")

// Config describes the system and the copy-cost economics.
type Config struct {
	// LinkCosts defines the virtual ring (length = node count).
	LinkCosts []float64
	// Rates holds per-node access rates, or one element meaning that
	// total split uniformly.
	Rates []float64
	// ServiceRates holds μ_i, or one homogeneous element.
	ServiceRates []float64
	// K is the delay scaling factor.
	K float64
	// UpdateShare is the fraction of accesses that are updates (writes),
	// in [0, 1].
	UpdateShare float64
	// StoragePerCopy is the cost (in the same units as communication
	// cost, per access) of keeping one additional full copy.
	StoragePerCopy float64
	// PropagationCost is the communication cost of applying one update
	// to one additional replica.
	PropagationCost float64
	// MaxCopies bounds the sweep (default: node count).
	MaxCopies int
	// Solve tunes the per-m allocation solves.
	Solve multicopy.SolveConfig
}

// Row is the cost breakdown at one replication degree.
type Row struct {
	// M is the number of copies.
	M int
	// AccessCost is the optimized expected read cost per access.
	AccessCost float64
	// StorageCost is StoragePerCopy·M.
	StorageCost float64
	// ConsistencyCost is UpdateShare·PropagationCost·(M−1) per access.
	ConsistencyCost float64
	// TotalCost is the sum.
	TotalCost float64
	// X is the optimized allocation at this M.
	X []float64
}

// Result is the sweep outcome.
type Result struct {
	// Rows holds one entry per replication degree, ascending.
	Rows []Row
	// Best is the index into Rows of the cheapest degree.
	Best int
}

// OptimalCopies sweeps the replication degree and returns the full cost
// breakdown plus the optimum.
func OptimalCopies(ctx context.Context, cfg Config) (Result, error) {
	n := len(cfg.LinkCosts)
	if n < 3 {
		return Result{}, fmt.Errorf("%w: ring needs at least 3 nodes, got %d", ErrBadConfig, n)
	}
	if cfg.UpdateShare < 0 || cfg.UpdateShare > 1 || math.IsNaN(cfg.UpdateShare) {
		return Result{}, fmt.Errorf("%w: update share = %v", ErrBadConfig, cfg.UpdateShare)
	}
	if cfg.StoragePerCopy < 0 || cfg.PropagationCost < 0 {
		return Result{}, fmt.Errorf("%w: negative storage (%v) or propagation (%v) cost",
			ErrBadConfig, cfg.StoragePerCopy, cfg.PropagationCost)
	}
	maxCopies := cfg.MaxCopies
	if maxCopies == 0 {
		maxCopies = n
	}
	if maxCopies < 1 {
		return Result{}, fmt.Errorf("%w: max copies = %d", ErrBadConfig, maxCopies)
	}

	// Each degree's solve is independent — one Ring per item, since a
	// Ring's scratch is single-goroutine — so the sweep runs concurrently
	// and the Best reduction happens serially afterwards in m order. The
	// solver's working buffers are per-worker scratch shared across the
	// degrees a worker claims.
	rows := make([]Row, maxCopies)
	err := sweep.RunWithScratch(ctx, maxCopies, sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		m := i + 1
		ring, err := multicopy.New(multicopy.Config{
			LinkCosts:    cfg.LinkCosts,
			Rates:        cfg.Rates,
			ServiceRates: cfg.ServiceRates,
			K:            cfg.K,
			Copies:       float64(m),
		})
		if err != nil {
			return fmt.Errorf("replication: building ring for m=%d: %w", m, err)
		}
		sc := cfg.Solve
		sc.Scratch = scratch
		solved, err := ring.Solve(ctx, ring.SpreadEvenly(), sc)
		if err != nil {
			return fmt.Errorf("replication: solving m=%d: %w", m, err)
		}
		row := Row{
			M:               m,
			AccessCost:      solved.Cost,
			StorageCost:     cfg.StoragePerCopy * float64(m),
			ConsistencyCost: cfg.UpdateShare * cfg.PropagationCost * float64(m-1),
			X:               solved.X,
		}
		row.TotalCost = row.AccessCost + row.StorageCost + row.ConsistencyCost
		rows[i] = row
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Rows: rows, Best: -1}
	bestCost := math.Inf(1)
	for i, row := range rows {
		if row.TotalCost < bestCost {
			bestCost = row.TotalCost
			res.Best = i
		}
	}
	return res, nil
}
