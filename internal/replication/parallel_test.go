package replication

import (
	"context"
	"reflect"
	"testing"

	"filealloc/internal/sweep"
)

// TestOptimalCopiesDeterministicAcrossWorkers asserts the degree sweep is
// byte-identical whether it runs serially or 8-wide: same rows, same
// order, same Best index.
func TestOptimalCopiesDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	serial, err := OptimalCopies(sweep.WithWorkers(ctx, 1), baseConfig())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := OptimalCopies(sweep.WithWorkers(ctx, 8), baseConfig())
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 disagree:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}
