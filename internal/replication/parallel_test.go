package replication

import (
	"context"
	"reflect"
	"testing"

	"filealloc/internal/sweep"
)

// TestOptimalCopiesDeterministicAcrossWorkers asserts the degree sweep is
// byte-identical whether it runs serially or 8-wide: same rows, same
// order, same Best index.
func TestOptimalCopiesDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	serial, err := OptimalCopies(sweep.WithWorkers(ctx, 1), baseConfig())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := OptimalCopies(sweep.WithWorkers(ctx, 8), baseConfig())
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 disagree:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
	// The per-worker solve scratch and the chunked claiming must be
	// equally invisible: a 1-degree chunk and one spanning the whole
	// sweep reproduce the serial result too.
	for _, chunk := range []int{1, 100} {
		chunked, err := OptimalCopies(sweep.WithChunkSize(sweep.WithWorkers(ctx, 8), chunk), baseConfig())
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !reflect.DeepEqual(serial, chunked) {
			t.Errorf("chunk=%d disagrees with serial:\n serial:  %+v\n chunked: %+v", chunk, serial, chunked)
		}
	}
}
