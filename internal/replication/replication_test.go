package replication

import (
	"context"
	"errors"
	"testing"

	"filealloc/internal/multicopy"
)

func baseConfig() Config {
	return Config{
		LinkCosts:    []float64{2, 2, 2, 2, 2, 2},
		Rates:        []float64{1},
		ServiceRates: []float64{1.5},
		K:            1,
		UpdateShare:  0.2,
		// Each extra copy costs storage and update propagation; chosen
		// so the optimum is interior (neither 1 nor n copies).
		StoragePerCopy:  0.25,
		PropagationCost: 1.5,
		MaxCopies:       6,
		Solve: multicopy.SolveConfig{
			Alpha:         0.1,
			CostDelta:     1e-6,
			MaxIterations: 1500,
		},
	}
}

func TestOptimalCopiesInteriorOptimum(t *testing.T) {
	res, err := OptimalCopies(context.Background(), baseConfig())
	if err != nil {
		t.Fatalf("OptimalCopies: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	best := res.Rows[res.Best]
	if best.M <= 1 || best.M >= 6 {
		t.Errorf("optimal m = %d; expected an interior optimum with these costs", best.M)
	}
	for _, row := range res.Rows {
		if row.TotalCost < best.TotalCost {
			t.Errorf("m=%d cheaper (%g) than reported best m=%d (%g)",
				row.M, row.TotalCost, best.M, best.TotalCost)
		}
	}
}

func TestOptimalCopiesAccessCostDecreasesInM(t *testing.T) {
	cfg := baseConfig()
	cfg.StoragePerCopy = 0
	cfg.PropagationCost = 0
	res, err := OptimalCopies(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With free copies the read cost must (weakly) fall with m and the
	// best m is the maximum.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].AccessCost > res.Rows[i-1].AccessCost+5e-3 {
			t.Errorf("access cost rose from m=%d (%g) to m=%d (%g)",
				res.Rows[i-1].M, res.Rows[i-1].AccessCost, res.Rows[i].M, res.Rows[i].AccessCost)
		}
	}
	if res.Rows[res.Best].M < 4 {
		t.Errorf("free copies: best m = %d, expected near the maximum", res.Rows[res.Best].M)
	}
}

func TestOptimalCopiesExpensiveCopiesPickOne(t *testing.T) {
	cfg := baseConfig()
	cfg.StoragePerCopy = 10
	res, err := OptimalCopies(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[res.Best].M != 1 {
		t.Errorf("prohibitive storage: best m = %d, want 1", res.Rows[res.Best].M)
	}
}

func TestOptimalCopiesCostBreakdownAdds(t *testing.T) {
	res, err := OptimalCopies(context.Background(), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		sum := row.AccessCost + row.StorageCost + row.ConsistencyCost
		if diff := row.TotalCost - sum; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("m=%d: total %g ≠ components %g", row.M, row.TotalCost, sum)
		}
		want := 0.2 * 1.5 * float64(row.M-1)
		if diff := row.ConsistencyCost - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("m=%d: consistency cost %g, want %g", row.M, row.ConsistencyCost, want)
		}
	}
}

func TestOptimalCopiesValidation(t *testing.T) {
	tests := []struct {
		name string
		fn   func(Config) Config
	}{
		{"tiny ring", func(c Config) Config { c.LinkCosts = []float64{1, 1}; return c }},
		{"bad update share", func(c Config) Config { c.UpdateShare = 1.5; return c }},
		{"negative storage", func(c Config) Config { c.StoragePerCopy = -1; return c }},
		{"negative propagation", func(c Config) Config { c.PropagationCost = -1; return c }},
		{"negative max copies", func(c Config) Config { c.MaxCopies = -1; return c }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := OptimalCopies(context.Background(), tt.fn(baseConfig())); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}
