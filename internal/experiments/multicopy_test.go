package experiments

import (
	"context"
	"testing"
)

func TestFig8CommDominatedOscillatesMore(t *testing.T) {
	profiles, err := Fig8(context.Background())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if len(profiles) != 2 {
		t.Fatalf("got %d profiles, want 2", len(profiles))
	}
	commDominated, delayDominated := profiles[0], profiles[1]
	// "A dominant communication cost is likely to result in greater
	// oscillation than in the case where the delay term is larger."
	if commDominated.Oscillation <= delayDominated.Oscillation {
		t.Errorf("comm-dominated oscillation %g not above delay-dominated %g",
			commDominated.Oscillation, delayDominated.Oscillation)
	}
	// Both runs must still have improved on the start.
	for _, p := range profiles {
		if len(p.Costs) < 2 {
			t.Fatalf("%s: profile too short", p.Label)
		}
		if p.BestCost >= p.Costs[0] {
			t.Errorf("%s: best cost %g did not improve on start %g", p.Label, p.BestCost, p.Costs[0])
		}
	}
}

func TestFig9SmallerAlphaSmallerOscillation(t *testing.T) {
	profiles, err := Fig9(context.Background())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(profiles) != 3 {
		t.Fatalf("got %d profiles, want 3", len(profiles))
	}
	a10, a05, adaptive := profiles[0], profiles[1], profiles[2]
	// "Decreasing this parameter causes the oscillations to be smaller."
	if a05.Oscillation >= a10.Oscillation {
		t.Errorf("α=0.05 oscillation %g not below α=0.10 oscillation %g",
			a05.Oscillation, a10.Oscillation)
	}
	// The adaptive decay damps the tail oscillation below the fixed
	// α=0.10 run and actually terminates via the cost-delta rule.
	if adaptive.Oscillation >= a10.Oscillation {
		t.Errorf("adaptive oscillation %g not below fixed %g", adaptive.Oscillation, a10.Oscillation)
	}
	if adaptive.BestCost > a10.BestCost+1e-6 {
		t.Errorf("adaptive best cost %g worse than fixed run's %g", adaptive.BestCost, a10.BestCost)
	}
}

func TestValidateAnalyticWithinFivePercent(t *testing.T) {
	rows, err := Validate(150000, 1)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(rows) < 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.ErrorPct > 5 {
			t.Errorf("%s: simulated %g vs analytic %g (%.2f%% error)",
				row.Label, row.Simulated, row.Analytic, row.ErrorPct)
		}
	}
}

func TestAblationSecondOrderScaleResilience(t *testing.T) {
	rows, err := AblationSecondOrder(context.Background(), []float64{1, 10, 100})
	if err != nil {
		t.Fatalf("AblationSecondOrder: %v", err)
	}
	base := rows[0]
	if base.FirstOrderIterations < 0 {
		t.Fatal("first-order failed at scale 1 where its α was tuned")
	}
	for _, row := range rows[1:] {
		// Second-order iteration count stays put under scaling.
		if diff := row.SecondOrderIterations - base.SecondOrderIterations; diff < -2 || diff > 2 {
			t.Errorf("scale %g: second-order iterations %d vs %d at scale 1",
				row.Scale, row.SecondOrderIterations, base.SecondOrderIterations)
		}
	}
	// First-order at the fixed α must degrade at the largest scale:
	// either diverge or need far more iterations.
	last := rows[len(rows)-1]
	if last.FirstOrderIterations >= 0 && last.FirstOrderIterations <= 3*base.FirstOrderIterations {
		t.Errorf("first-order unaffected by 100x scaling (%d vs %d iterations) — expected degradation",
			last.FirstOrderIterations, base.FirstOrderIterations)
	}
}

func TestAblationDecentralizedMatchesCentral(t *testing.T) {
	rows, err := AblationDecentralized(context.Background(), nil)
	if err != nil {
		t.Fatalf("AblationDecentralized: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if !row.Converged {
			t.Errorf("%s did not converge", row.Mode)
		}
		if row.MaxAllocationDiff != 0 {
			t.Errorf("%s: allocation differs from central by %g (want bit-identical)",
				row.Mode, row.MaxAllocationDiff)
		}
		if row.Rounds != row.CentralIterations {
			t.Errorf("%s: %d rounds vs %d central iterations", row.Mode, row.Rounds, row.CentralIterations)
		}
	}
	if rows[1].Messages >= rows[0].Messages {
		t.Errorf("coordinator messages %d not below broadcast %d", rows[1].Messages, rows[0].Messages)
	}
}

func TestAblationPriceDirectedContrast(t *testing.T) {
	report, err := AblationPriceDirected(context.Background())
	if err != nil {
		t.Fatalf("AblationPriceDirected: %v", err)
	}
	// The resource-directed algorithm never leaves the feasible set.
	if report.ResourceWorstInfeasibility > 1e-9 {
		t.Errorf("resource-directed infeasibility %g, want 0", report.ResourceWorstInfeasibility)
	}
	if !report.ResourceMonotone {
		t.Error("resource-directed cost was not monotone")
	}
	// The tâtonnement's iterates are materially infeasible on the way.
	if report.PriceWorstInfeasibility < 0.01 {
		t.Errorf("price-directed worst infeasibility %g; expected material excess demand",
			report.PriceWorstInfeasibility)
	}
	// Both land on (approximately) the same optimal cost.
	if diff := report.PriceCost - report.ResourceCost; diff < -1e-3 || diff > 1e-3 {
		t.Errorf("mechanisms disagree on the optimum: price %g vs resource %g",
			report.PriceCost, report.ResourceCost)
	}
}
