package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/costmodel"
	"filealloc/internal/metrics"
	"filealloc/internal/recovery"
	"filealloc/internal/transport"
)

// ChurnRow reports one crash/churn scenario of the chaos-churn experiment:
// the figure-3 system run through the supervised agent runtime with crash
// faults, quorum rounds, and membership churn.
type ChurnRow struct {
	// Scenario names the injected failure pattern.
	Scenario string
	// Converged reports the surviving nodes hit the ε-criterion.
	Converged bool
	// Rounds is the survivors' agreed round count.
	Rounds int
	// Survivors is how many nodes finished without error.
	Survivors int
	// Restarts is the total number of supervised restarts across
	// survivors.
	Restarts int
	// Crashes is the number of injected crash faults that tripped.
	Crashes int64
	// Departs and Rejoins count the membership-churn recovery events.
	Departs int64
	Rejoins int64
	// MaxKKTGap is max_i |x_i − x_i*| against the exact KKT optimum of
	// the reduced (survivors-only) system.
	MaxKKTGap float64
	// SumError is |Σ_{i∈survivors} x_i − 1|, the Theorem-1 residual.
	SumError float64
}

// churnScenario is one failure pattern of the chaos-churn matrix.
type churnScenario struct {
	name   string
	faults transport.FaultConfig
	// maxRestarts overrides the supervisor budget when non-zero
	// (negative forbids restarts, modelling permanent death).
	maxRestarts int
	// timeout overrides RoundTimeout (0 keeps the default).
	timeout time.Duration
	// deadNode is the node expected to fail (-1: everyone survives),
	// and deadErr the typed error it must fail with.
	deadNode int
	deadErr  error
}

func churnScenarios() []churnScenario {
	return []churnScenario{
		{
			name: "crash-resume",
			faults: transport.FaultConfig{Rules: []transport.FaultRule{{
				Kind: transport.FaultCrash, Direction: transport.DirSend,
				Nodes: []int{2}, FromRound: 5, ToRound: 5,
			}}},
			deadNode: -1,
		},
		{
			name: "double-crash",
			faults: transport.FaultConfig{Rules: []transport.FaultRule{
				{Kind: transport.FaultCrash, Direction: transport.DirSend, Nodes: []int{1}, FromRound: 4, ToRound: 4},
				{Kind: transport.FaultCrash, Direction: transport.DirSend, Nodes: []int{2}, FromRound: 7, ToRound: 7},
			}},
			deadNode: -1,
		},
		{
			name: "crash-depart",
			faults: transport.FaultConfig{Rules: []transport.FaultRule{{
				Kind: transport.FaultCrash, Direction: transport.DirSend,
				Nodes: []int{3}, FromRound: 4,
			}}},
			maxRestarts: -1,
			timeout:     200 * time.Millisecond,
			deadNode:    3,
			deadErr:     recovery.ErrRestartBudget,
		},
		{
			name: "partition-depart",
			faults: transport.FaultConfig{Rules: []transport.FaultRule{{
				Kind: transport.FaultPartition, Direction: transport.DirBoth,
				Nodes: []int{1}, FromRound: 6,
			}}},
			timeout:  200 * time.Millisecond,
			deadNode: 1,
			deadErr:  agent.ErrRoundTimeout,
		},
	}
}

// churnBase assembles the matrix's shared cluster configuration over the
// figure-3 system.
func churnBase(m *costmodel.SingleFile, counters *agent.CounterObserver, obs agent.Observer, reg *metrics.Registry) recovery.ChurnClusterConfig {
	var shared agent.Observer = counters
	if obs != nil {
		shared = agent.MultiObserver{counters, obs}
	}
	if reg != nil {
		shared = agent.MultiObserver{shared, agent.NewMetricsObserver(reg)}
	}
	return recovery.ChurnClusterConfig{
		Models:      agent.ModelsFromSingleFile(m),
		Init:        PaperStart(4),
		Alpha:       0.3,
		Epsilon:     Epsilon,
		MaxRounds:   500,
		Quorum:      3,
		DepartAfter: 2,
		Supervisor: recovery.SupervisorConfig{
			MaxRestarts: 3,
			BackoffBase: time.Millisecond,
			BackoffCap:  4 * time.Millisecond,
			Seed:        1986,
		},
		Observer: shared,
		Metrics:  reg,
	}
}

// reducedKKTGap certifies a surviving allocation against the exact KKT
// optimum of the reduced (survivors-only) system and returns the largest
// per-fragment gap plus the Σx−1 residual.
func reducedKKTGap(m *costmodel.SingleFile, x []float64, alive []bool) (gap, sumErr float64, err error) {
	var access, service, xRed []float64
	for i := range alive {
		if alive[i] {
			access = append(access, m.AccessCost(i))
			service = append(service, m.ServiceRate(i))
			xRed = append(xRed, x[i])
		} else if x[i] != 0 {
			return 0, 0, fmt.Errorf("departed node %d still holds x = %v", i, x[i])
		}
	}
	reduced, err := costmodel.NewSingleFile(access, service, m.Lambda(), m.K())
	if err != nil {
		return 0, 0, fmt.Errorf("building reduced model: %w", err)
	}
	sol, err := reduced.SolveKKT(1e-10)
	if err != nil {
		return 0, 0, fmt.Errorf("solving reduced KKT: %w", err)
	}
	if err := reduced.VerifyKKT(xRed, sol.Q, 0.02); err != nil {
		return 0, 0, fmt.Errorf("KKT certification: %w", err)
	}
	var sum float64
	for i := range xRed {
		if d := math.Abs(xRed[i] - sol.X[i]); d > gap {
			gap = d
		}
		sum += xRed[i]
	}
	return gap, math.Abs(sum - 1), nil
}

// churnRow distills one scenario's result into a row and enforces the
// chaos-churn contract: the survivors converged and their allocation is
// KKT-certified on the surviving support with Σx pinned to 1.
func churnRow(name string, m *costmodel.SingleFile, res recovery.ChurnResult, c agent.Counters) (ChurnRow, error) {
	row := ChurnRow{
		Scenario:  name,
		Converged: res.Converged,
		Rounds:    res.Rounds,
		Survivors: len(res.Survivors),
		Crashes:   res.Faults.Crashes,
		Departs:   c.RecoveryByKind["depart"],
		Rejoins:   c.RecoveryByKind["rejoin"],
	}
	for _, s := range res.Survivors {
		row.Restarts += res.Outcomes[s].Restarts
	}
	if !res.Converged {
		return row, fmt.Errorf("%w: %s: survivors did not converge", ErrExperiment, name)
	}
	gap, sumErr, err := reducedKKTGap(m, res.X, res.Alive)
	if err != nil {
		return row, fmt.Errorf("%w: %s: %w", ErrExperiment, name, err)
	}
	row.MaxKKTGap, row.SumError = gap, sumErr
	if sumErr > 1e-12 {
		return row, fmt.Errorf("%w: %s: Σx drifted by %g", ErrExperiment, name, sumErr)
	}
	return row, nil
}

// ChaosChurn runs the figure-3 system through the crash-recovery matrix:
// supervised restart with checkpoint resume, permanent death with
// feasibility-preserving departure, partition-induced departure, and an
// epoch-2 rejoin. Every scenario must either converge to the KKT-certified
// optimum of its surviving support or fail its dead node with the expected
// typed error; anything else is reported as an error. obs additionally
// receives every agent event (may be nil). reg, when non-nil, collects the
// full metrics surface of the run — agent observer metrics, metered
// transport counters and byte histograms, and published fault counters —
// and because every numeric path is round-indexed rather than wall-clock
// driven, the resulting snapshot is identical from run to run.
func ChaosChurn(ctx context.Context, obs agent.Observer, reg *metrics.Registry) ([]ChurnRow, error) {
	m, err := RingSystem(4, 1)
	if err != nil {
		return nil, err
	}
	var rows []ChurnRow
	for _, sc := range churnScenarios() {
		counters := &agent.CounterObserver{}
		cfg := churnBase(m, counters, obs, reg)
		cfg.Faults = sc.faults
		if sc.maxRestarts != 0 {
			cfg.Supervisor.MaxRestarts = sc.maxRestarts
		}
		if sc.timeout > 0 {
			cfg.RoundTimeout = sc.timeout
		}
		res, err := recovery.RunChurnCluster(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %w", ErrExperiment, sc.name, err)
		}
		for i, e := range res.Errs {
			switch {
			case i == sc.deadNode:
				if !errors.Is(e, sc.deadErr) {
					return nil, fmt.Errorf("%w: %s: node %d error = %v, want %v", ErrExperiment, sc.name, i, e, sc.deadErr)
				}
			case e != nil:
				return nil, fmt.Errorf("%w: %s: node %d unexpectedly failed: %w", ErrExperiment, sc.name, i, e)
			}
		}
		row, err := churnRow(sc.name, m, res, counters.Counters())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// depart-rejoin: replay the crash-departure epoch, then re-admit the
	// dead node with a zero fragment and let it climb back in.
	counters := &agent.CounterObserver{}
	cfg := churnBase(m, counters, obs, reg)
	cfg.Supervisor.MaxRestarts = -1
	cfg.RoundTimeout = 200 * time.Millisecond
	cfg.Faults = transport.FaultConfig{Rules: []transport.FaultRule{{
		Kind: transport.FaultCrash, Direction: transport.DirSend,
		Nodes: []int{3}, FromRound: 4,
	}}}
	epoch1, err := recovery.RunChurnCluster(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: depart-rejoin epoch 1: %w", ErrExperiment, err)
	}
	if !epoch1.Converged || epoch1.Alive[3] {
		return nil, fmt.Errorf("%w: depart-rejoin epoch 1: converged=%t alive[3]=%t", ErrExperiment, epoch1.Converged, epoch1.Alive[3])
	}
	init2, alive2, err := recovery.RejoinInit(epoch1.X, epoch1.Alive, 3)
	if err != nil {
		return nil, fmt.Errorf("%w: depart-rejoin: %w", ErrExperiment, err)
	}
	cfg2 := churnBase(m, counters, obs, reg)
	cfg2.Init = init2
	cfg2.InitAlive = alive2
	epoch2, err := recovery.RunChurnCluster(ctx, cfg2)
	if err != nil {
		return nil, fmt.Errorf("%w: depart-rejoin epoch 2: %w", ErrExperiment, err)
	}
	for i, e := range epoch2.Errs {
		if e != nil {
			return nil, fmt.Errorf("%w: depart-rejoin epoch 2: node %d failed: %w", ErrExperiment, i, e)
		}
	}
	if epoch2.X[3] <= 0 {
		return nil, fmt.Errorf("%w: depart-rejoin: rejoiner never climbed back in (x[3] = %v)", ErrExperiment, epoch2.X[3])
	}
	row, err := churnRow("depart-rejoin", m, epoch2, counters.Counters())
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}
