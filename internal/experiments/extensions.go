package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"filealloc/internal/avail"
	"filealloc/internal/baseline"
	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/estimate"
	"filealloc/internal/multicopy"
	"filealloc/internal/neighbor"
	"filealloc/internal/replication"
	"filealloc/internal/topology"
)

// OptimalCopies runs experiment E11: the section 8.2 "best value of m"
// sweep on a 6-node ring with storage and update-propagation costs.
func OptimalCopies(ctx context.Context) (replication.Result, error) {
	res, err := replication.OptimalCopies(ctx, replication.Config{
		LinkCosts:       []float64{2, 2, 2, 2, 2, 2},
		Rates:           []float64{Lambda},
		ServiceRates:    []float64{Mu},
		K:               K,
		UpdateShare:     0.2,
		StoragePerCopy:  0.25,
		PropagationCost: 1.5,
		MaxCopies:       6,
		Solve: multicopy.SolveConfig{
			Alpha:         0.1,
			CostDelta:     1e-6,
			MaxIterations: 1500,
		},
	})
	if err != nil {
		return replication.Result{}, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	return res, nil
}

// NeighborRow compares the full-exchange protocol against the
// neighbours-only variant on one topology (experiment E13, the section 8.2
// communication-restriction study).
type NeighborRow struct {
	// Topology names the graph.
	Topology string
	// Nodes is the node count.
	Nodes int
	// FullIterations and FullMessages for the broadcast algorithm
	// (n(n−1) messages per iteration).
	FullIterations int
	FullMessages   int
	// NeighborIterations and NeighborMessages for the pairwise
	// algorithm (2|E| messages per iteration).
	NeighborIterations int
	NeighborMessages   int
	// CostGapPct is 100·(neighborCost − fullCost)/fullCost at the
	// respective stopping points.
	CostGapPct float64
}

// NeighborOnly runs E13 on a ring and a line of 8 nodes with an
// asymmetric workload.
func NeighborOnly(ctx context.Context) ([]NeighborRow, error) {
	const n = 8
	const eps = 1e-4
	configs := []struct {
		name  string
		build func() (*topology.Graph, error)
	}{
		{"ring", func() (*topology.Graph, error) { return topology.Ring(n, 1) }},
		{"line", func() (*topology.Graph, error) { return topology.Line(n, 1) }},
	}
	start := make([]float64, n)
	start[0] = 1
	rows := make([]NeighborRow, 0, len(configs))
	for _, cfg := range configs {
		g, err := cfg.build()
		if err != nil {
			return nil, fmt.Errorf("%w: building %s: %w", ErrExperiment, cfg.name, err)
		}
		rates := topology.UniformRates(n, Lambda)
		access, err := topology.AccessCosts(g, rates, topology.RoundTrip)
		if err != nil {
			return nil, fmt.Errorf("%w: %s access costs: %w", ErrExperiment, cfg.name, err)
		}
		m, err := costmodel.NewSingleFile(access, []float64{Mu}, Lambda, K)
		if err != nil {
			return nil, fmt.Errorf("%w: %s model: %w", ErrExperiment, cfg.name, err)
		}
		full, err := core.NewAllocator(m, core.WithAlpha(0.3), core.WithEpsilon(eps))
		if err != nil {
			return nil, fmt.Errorf("%w: %s full solver: %w", ErrExperiment, cfg.name, err)
		}
		fullRes, err := full.Run(ctx, start)
		if err != nil {
			return nil, fmt.Errorf("%w: %s full run: %w", ErrExperiment, cfg.name, err)
		}
		nbRes, err := neighbor.SolveFrom(ctx, neighbor.Config{
			Objective: m,
			Edges:     neighbor.EdgesOf(g),
			Beta:      0.05,
			Epsilon:   eps,
		}, start)
		if err != nil {
			return nil, fmt.Errorf("%w: %s neighbor run: %w", ErrExperiment, cfg.name, err)
		}
		fullCost := -fullRes.Utility
		nbCost, err := m.Cost(nbRes.X)
		if err != nil {
			return nil, fmt.Errorf("%w: %s evaluating neighbor result: %w", ErrExperiment, cfg.name, err)
		}
		rows = append(rows, NeighborRow{
			Topology:           cfg.name,
			Nodes:              n,
			FullIterations:     fullRes.Iterations,
			FullMessages:       (fullRes.Iterations + 1) * n * (n - 1),
			NeighborIterations: nbRes.Iterations,
			NeighborMessages:   nbRes.Messages,
			CostGapPct:         100 * (nbCost - fullCost) / fullCost,
		})
	}
	return rows, nil
}

// AvailabilityRow quantifies section 4's graceful-degradation argument for
// one placement strategy (experiment E14).
type AvailabilityRow struct {
	// Strategy names the placement.
	Strategy string
	// Copies used.
	Copies int
	// ExpectedAccessible is the expected fraction of the file that
	// survives independent node failures.
	ExpectedAccessible float64
	// AllOrNothing is the probability the ENTIRE file is accessible.
	AllOrNothing float64
}

// Availability runs E14: expected accessible file fraction under
// independent node failures (p = 0.1) for integral placement, fragmented
// single copy, and ring-replicated copies.
func Availability(failProb float64) ([]AvailabilityRow, error) {
	if failProb <= 0 || failProb >= 1 {
		failProb = 0.1
	}
	const n = 4
	probs := avail.UniformFailure(n, failProb)
	rows := make([]AvailabilityRow, 0, 4)

	integral := []float64{1, 0, 0, 0}
	intAvail, err := avail.SingleCopy(integral, probs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	rows = append(rows, AvailabilityRow{
		Strategy:           "integral (whole file at node 0)",
		Copies:             1,
		ExpectedAccessible: intAvail,
		AllOrNothing:       1 - failProb,
	})

	fragmented := []float64{0.25, 0.25, 0.25, 0.25}
	fragAvail, err := avail.SingleCopy(fragmented, probs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	allUp := math.Pow(1-failProb, n)
	rows = append(rows, AvailabilityRow{
		Strategy:           "fragmented single copy (0.25 each)",
		Copies:             1,
		ExpectedAccessible: fragAvail,
		AllOrNothing:       allUp,
	})

	for _, m := range []int{2, 3} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(m) / n
		}
		a, err := avail.MultiCopyRing(x, probs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		rows = append(rows, AvailabilityRow{
			Strategy:           fmt.Sprintf("ring-replicated, m=%d, spread evenly", m),
			Copies:             m,
			ExpectedAccessible: a,
			// With m evenly spread copies on 4 nodes every record has
			// holders on m distinct nodes; the whole file survives iff
			// no record loses all its holders. Conservative closed
			// forms get intricate; report the per-record survival as
			// the tight upper bound and leave exact joint survival to
			// the avail package's Monte Carlo in tests.
			AllOrNothing: math.NaN(),
		})
	}
	return rows, nil
}

// AdaptiveRow reports the estimation-driven adaptation quality for one
// estimator half-life (experiment E12).
type AdaptiveRow struct {
	// HalfLife of the rate estimator, in model time units.
	HalfLife float64
	// SteadyGapPct is the mean cost gap (vs the clairvoyant optimum)
	// over the last fifth of the pre-drift phase.
	SteadyGapPct float64
	// PostDriftGapPct is the mean gap over the window right after the
	// workload shifts.
	PostDriftGapPct float64
	// RecoveredGapPct is the mean gap at the end of the run, after the
	// estimator has had time to re-converge.
	RecoveredGapPct float64
}

// Adaptive runs E12: nodes estimate their access rates online (the
// capability section 8 says adaptation "crucially depends on") and the
// system re-plans periodically from the estimates. The workload shifts
// abruptly mid-run; short half-lives track the shift quickly but are noisy
// in steady state, long half-lives are smooth but stale — quantified as
// cost gaps against the clairvoyant optimum.
func Adaptive(ctx context.Context, halfLives []float64, seed int64) ([]AdaptiveRow, error) {
	if len(halfLives) == 0 {
		halfLives = []float64{5, 40, 400}
	}
	const (
		n          = 4
		horizon    = 600.0
		driftAt    = 300.0
		replanStep = 10.0
	)
	ring, err := topology.Ring(n, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	// Phase 1: traffic concentrated on node 0; phase 2: on node 2.
	phase1 := []float64{0.7, 0.1, 0.1, 0.1}
	phase2 := []float64{0.1, 0.1, 0.7, 0.1}
	trueRates := func(t float64) []float64 {
		if t <= driftAt {
			return phase1
		}
		return phase2
	}
	modelFor := func(rates []float64) (*costmodel.SingleFile, error) {
		access, err := topology.AccessCosts(ring, rates, topology.RoundTrip)
		if err != nil {
			return nil, err
		}
		var lambda float64
		for _, r := range rates {
			lambda += r
		}
		return costmodel.NewSingleFile(access, []float64{Mu}, lambda, K)
	}

	rows := make([]AdaptiveRow, 0, len(halfLives))
	for _, hl := range halfLives {
		row, err := runAdaptive(ctx, hl, seed, n, horizon, driftAt, replanStep, trueRates, modelFor)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runAdaptive(
	ctx context.Context,
	halfLife float64,
	seed int64,
	n int,
	horizon, driftAt, replanStep float64,
	trueRates func(float64) []float64,
	modelFor func([]float64) (*costmodel.SingleFile, error),
) (AdaptiveRow, error) {
	tracker, err := estimate.NewTracker(n, halfLife)
	if err != nil {
		return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	rng := rand.New(rand.NewSource(seed))
	// Next event time per node.
	next := make([]float64, n)
	rates := trueRates(0)
	for i := range next {
		next[i] = rng.ExpFloat64() / rates[i]
	}
	x := baseline.Uniform(n)

	type sample struct {
		t   float64
		gap float64
	}
	var samples []sample
	for t := replanStep; t <= horizon; t += replanStep {
		if err := ctx.Err(); err != nil {
			return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		// Advance the event streams to time t.
		rates = trueRates(t - replanStep)
		for i := 0; i < n; i++ {
			for next[i] <= t {
				if err := tracker.Observe(i, next[i]); err != nil {
					return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
				}
				r := trueRates(next[i])[i]
				next[i] += rng.ExpFloat64() / r
			}
		}
		// Re-plan from the current estimates.
		est := tracker.Rates(t)
		usable := true
		for _, r := range est {
			if r <= 1e-6 {
				usable = false
			}
		}
		if usable {
			estModel, err := modelFor(est)
			if err != nil {
				return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
			}
			alloc, err := core.NewAllocator(estModel, core.WithAlpha(0.3), core.WithEpsilon(1e-6), core.WithMaxIterations(500))
			if err != nil {
				return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
			}
			res, err := alloc.Run(ctx, x)
			if err == nil {
				x = res.X
			}
			// An estimation transient can make the estimated model
			// unstable at the current allocation; keep the previous
			// allocation in that case and re-plan at the next step.
		}
		// Score against the clairvoyant optimum for the TRUE rates.
		truth, err := modelFor(trueRates(t))
		if err != nil {
			return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		actual, err := truth.Cost(x)
		if err != nil {
			// The stale allocation saturates a queue under the true
			// rates; score it as a 100% gap.
			samples = append(samples, sample{t: t, gap: 100})
			continue
		}
		sol, err := truth.SolveKKT(1e-10)
		if err != nil {
			return AdaptiveRow{}, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		samples = append(samples, sample{t: t, gap: 100 * (actual - sol.Cost) / sol.Cost})
	}

	window := func(lo, hi float64) float64 {
		var sum float64
		var count int
		for _, s := range samples {
			if s.t > lo && s.t <= hi {
				sum += s.gap
				count++
			}
		}
		if count == 0 {
			return math.NaN()
		}
		return sum / float64(count)
	}
	return AdaptiveRow{
		HalfLife:        halfLife,
		SteadyGapPct:    window(driftAt-60, driftAt),
		PostDriftGapPct: window(driftAt, driftAt+60),
		RecoveredGapPct: window(horizon-60, horizon),
	}, nil
}
