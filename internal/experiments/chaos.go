package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"filealloc/internal/agent"
	"filealloc/internal/core"
	"filealloc/internal/protocol"
	"filealloc/internal/sweep"
	"filealloc/internal/transport"
)

// ChaosRow reports one fault scenario of the chaos experiment: the
// figure-3 system run through the agent runtime with a fault-injection
// transport, in one aggregation mode.
type ChaosRow struct {
	// Scenario names the injected fault class.
	Scenario string
	// Mode is "broadcast" or "coordinator".
	Mode string
	// Converged reports the ε-criterion fired despite the faults.
	Converged bool
	// TimedOut reports the run failed loudly with ErrRoundTimeout (the
	// expected outcome for partitions).
	TimedOut bool
	// Rounds of the protocol (0 when the run timed out).
	Rounds int
	// Messages sent in total.
	Messages int
	// FaultsInjected is the total number of fault events across all
	// endpoints.
	FaultsInjected int64
	// SendRetries and Discarded count the recovery work the runtime did,
	// as seen by the observer.
	SendRetries int64
	Discarded   int64
	// Timeouts counts observer timeout events.
	Timeouts int64
	// MaxAllocationDiff is max_i |x_i^{faulty} − x_i^{central}|. The
	// injected faults only delay, repeat, or reorder data — they never
	// alter it — so a converged run must report exactly 0.
	MaxAllocationDiff float64
}

// chaosScenario is one fault class to push the runtime through.
type chaosScenario struct {
	name string
	// faults is nil for the clean baseline.
	faults *transport.FaultConfig
	// retries is the per-send retry budget.
	retries int
	// timeout overrides RoundTimeout (0 keeps the default).
	timeout time.Duration
	// wantTimeout marks scenarios that must end in ErrRoundTimeout.
	wantTimeout bool
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{name: "clean"},
		{
			name: "drop",
			faults: &transport.FaultConfig{
				Seed: 1986,
				Rules: []transport.FaultRule{{
					Kind: transport.FaultDrop, Direction: transport.DirSend, Probability: 0.2,
				}},
			},
			retries: 25,
		},
		{
			name: "delay",
			faults: &transport.FaultConfig{
				Seed: 1986,
				Rules: []transport.FaultRule{{
					Kind: transport.FaultDelay, Direction: transport.DirSend,
					Probability: 0.3, Delay: 2 * time.Millisecond,
				}},
			},
		},
		{
			name: "duplicate",
			faults: &transport.FaultConfig{
				Seed: 1986,
				Rules: []transport.FaultRule{{
					Kind: transport.FaultDuplicate, Direction: transport.DirSend, Probability: 0.3,
				}},
			},
		},
		{
			name: "reorder",
			faults: &transport.FaultConfig{
				Seed: 1986,
				Rules: []transport.FaultRule{{
					Kind: transport.FaultReorder, Direction: transport.DirRecv,
					Probability: 0.5, Delay: 3 * time.Millisecond,
				}},
			},
		},
		{
			name: "partition",
			faults: &transport.FaultConfig{
				Seed:    1986,
				RoundOf: protocol.RoundOf,
				Rules: []transport.FaultRule{{
					Kind: transport.FaultPartition, Direction: transport.DirSend,
					Nodes: []int{3}, FromRound: 2,
				}},
			},
			timeout:     400 * time.Millisecond,
			wantTimeout: true,
		},
	}
}

// Chaos runs the figure-3 system under every fault class in both
// aggregation modes and verifies the runtime's chaos contract: it either
// converges to the fault-free allocation (bit-identical — the faults never
// alter data) or fails loudly with a round timeout. Any other outcome —
// a hang, a silent divergence, an unexpected error — is reported as an
// error. obs additionally receives every agent event (may be nil); because
// the (mode, scenario) matrix runs concurrently (see WorkersFrom), obs
// must be safe for concurrent use when parallelism is enabled.
func Chaos(ctx context.Context, obs agent.Observer) ([]ChaosRow, error) {
	m, err := RingSystem(4, 1)
	if err != nil {
		return nil, err
	}
	start := PaperStart(4)
	central, err := core.NewAllocator(m, core.WithAlpha(0.3), core.WithEpsilon(Epsilon))
	if err != nil {
		return nil, fmt.Errorf("%w: central solver: %w", ErrExperiment, err)
	}
	centralRes, err := central.Run(ctx, start)
	if err != nil {
		return nil, fmt.Errorf("%w: central run: %w", ErrExperiment, err)
	}

	scenarios := chaosScenarios()
	modes := []agent.Mode{agent.Broadcast, agent.Coordinator}
	// The (mode, scenario) matrix is flattened into one sweep; each cell
	// owns its cluster and fault injector and writes its row into the slot
	// the serial double loop would have filled. The counter observer is
	// per-worker scratch, reset between the cells a worker claims.
	rows := make([]ChaosRow, len(modes)*len(scenarios))
	err = sweep.RunWithScratch(ctx, len(rows), sweep.WorkersFrom(ctx),
		func() *agent.CounterObserver { return &agent.CounterObserver{} },
		func(ctx context.Context, idx int, counters *agent.CounterObserver) error {
			mode := modes[idx/len(scenarios)]
			sc := scenarios[idx%len(scenarios)]
			counters.Reset()
			var shared agent.Observer = counters
			if obs != nil {
				shared = agent.MultiObserver{counters, obs}
			}
			res, err := agent.RunCluster(ctx, agent.ClusterConfig{
				Models:        agent.ModelsFromSingleFile(m),
				Init:          start,
				Alpha:         0.3,
				Epsilon:       Epsilon,
				MaxRounds:     500,
				Mode:          mode,
				CoordinatorID: 0,
				SendRetries:   sc.retries,
				RoundTimeout:  sc.timeout,
				Observer:      shared,
				Faults:        sc.faults,
			})
			c := counters.Counters()
			row := ChaosRow{
				Scenario:       sc.name,
				Mode:           mode.String(),
				Rounds:         res.Rounds,
				Messages:       res.Messages,
				FaultsInjected: res.Faults.Total(),
				SendRetries:    c.SendRetries,
				Discarded:      c.Discarded,
				Timeouts:       c.TimeoutsFired,
			}
			switch {
			case sc.wantTimeout:
				if !errors.Is(err, agent.ErrRoundTimeout) {
					return fmt.Errorf("%w: %s/%v: error = %v, want round timeout", ErrExperiment, sc.name, mode, err)
				}
				row.TimedOut = true
			case err != nil:
				return fmt.Errorf("%w: %s/%v cluster: %w", ErrExperiment, sc.name, mode, err)
			default:
				if !res.Converged {
					return fmt.Errorf("%w: %s/%v did not converge", ErrExperiment, sc.name, mode)
				}
				row.Converged = true
				for i := range res.X {
					if d := math.Abs(res.X[i] - centralRes.X[i]); d > row.MaxAllocationDiff {
						row.MaxAllocationDiff = d
					}
				}
				if row.MaxAllocationDiff != 0 {
					return fmt.Errorf("%w: %s/%v silently diverged by %g", ErrExperiment, sc.name, mode, row.MaxAllocationDiff)
				}
			}
			rows[idx] = row
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
