// Package experiments regenerates every figure of the paper's evaluation
// (section 6 and 7.3) plus the validation and ablation studies indexed in
// DESIGN.md. Each experiment returns structured series; cmd/fapsim renders
// them and EXPERIMENTS.md records paper-vs-measured values.
//
// The shared configuration is the paper's: service rate μ = 1.5, scaling
// constant k = 1, network-wide access rate λ = 1 split uniformly, and
// stopping criterion ε = 0.001.
package experiments

import (
	"errors"
	"fmt"

	"filealloc/internal/costmodel"
	"filealloc/internal/topology"
)

// Paper-wide experimental constants (section 6).
const (
	// Mu is the service rate μ = 1.5.
	Mu = 1.5
	// K is the delay/communication scaling constant k = 1.
	K = 1.0
	// Lambda is the network-wide access rate λ = 1.
	Lambda = 1.0
	// Epsilon is the stopping criterion ε = 0.001.
	Epsilon = 1e-3
)

// ErrExperiment wraps failures inside experiment harnesses.
var ErrExperiment = errors.New("experiments: run failed")

// PaperStart returns the paper's starting allocation (0.8, 0.1, 0.1, 0,
// ..., 0) padded to n nodes.
func PaperStart(n int) []float64 {
	x := make([]float64, n)
	x[0] = 0.8
	if n > 1 {
		x[1] = 0.1
	}
	if n > 2 {
		x[2] = 0.1
	}
	return x
}

// RingSystem builds the figure 2/3 evaluation system: an n-node
// bidirectional ring with the given link cost, uniform rates summing to
// Lambda, and the paper's μ and k.
func RingSystem(n int, linkCost float64) (*costmodel.SingleFile, error) {
	ring, err := topology.Ring(n, linkCost)
	if err != nil {
		return nil, fmt.Errorf("%w: building ring: %w", ErrExperiment, err)
	}
	rates := topology.UniformRates(n, Lambda)
	access, err := topology.AccessCosts(ring, rates, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("%w: computing access costs: %w", ErrExperiment, err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{Mu}, Lambda, K)
	if err != nil {
		return nil, fmt.Errorf("%w: building cost model: %w", ErrExperiment, err)
	}
	return m, nil
}

// MeshSystem builds the figure 6 system: an n-node fully connected network
// with unit link costs.
func MeshSystem(n int) (*costmodel.SingleFile, error) {
	mesh, err := topology.FullMesh(n, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: building mesh: %w", ErrExperiment, err)
	}
	rates := topology.UniformRates(n, Lambda)
	access, err := topology.AccessCosts(mesh, rates, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("%w: computing access costs: %w", ErrExperiment, err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{Mu}, Lambda, K)
	if err != nil {
		return nil, fmt.Errorf("%w: building cost model: %w", ErrExperiment, err)
	}
	return m, nil
}
