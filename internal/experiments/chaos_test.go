package experiments

import (
	"context"
	"testing"
)

func TestChaosContract(t *testing.T) {
	rows, err := Chaos(context.Background(), nil)
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(rows) != 12 { // 6 scenarios × 2 modes
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Scenario == "partition" {
			if !r.TimedOut {
				t.Errorf("%s/%s: partition did not time out", r.Scenario, r.Mode)
			}
			if r.Timeouts == 0 {
				t.Errorf("%s/%s: no observer timeouts for a partition", r.Scenario, r.Mode)
			}
			continue
		}
		if !r.Converged {
			t.Errorf("%s/%s: did not converge", r.Scenario, r.Mode)
		}
		if r.MaxAllocationDiff != 0 {
			t.Errorf("%s/%s: diverged by %g from the central allocation", r.Scenario, r.Mode, r.MaxAllocationDiff)
		}
		if r.Scenario != "clean" && r.FaultsInjected == 0 {
			t.Errorf("%s/%s: no faults injected", r.Scenario, r.Mode)
		}
	}
}
