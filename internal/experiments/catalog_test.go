package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"filealloc/internal/metrics"
	"filealloc/internal/sweep"
)

func TestCatalogExperimentShape(t *testing.T) {
	cfg := CatalogConfig{Objects: 64, Nodes: 4, Epochs: 2, DriftFraction: 0.25, Seed: 5}
	rows, cat, err := Catalog(context.Background(), cfg, nil, nil)
	if err != nil {
		t.Fatalf("Catalog: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want cold + 2 epochs", len(rows))
	}
	if rows[0].Phase != "cold" || rows[0].Cold != 64 || rows[0].Steps == 0 {
		t.Errorf("cold row = %+v", rows[0])
	}
	if rows[0].ElapsedNS != 0 {
		t.Errorf("nil clock produced elapsed %d ns", rows[0].ElapsedNS)
	}
	for i, r := range rows[1:] {
		if r.Phase != fmt.Sprintf("epoch-%d", i+1) {
			t.Errorf("row %d phase = %q", i+1, r.Phase)
		}
		if r.Drifted+r.Skipped != 64 {
			t.Errorf("%s: drifted %d + skipped %d ≠ 64", r.Phase, r.Drifted, r.Skipped)
		}
		if r.Warm+r.Fallback != r.Drifted {
			t.Errorf("%s: warm %d + fallback %d ≠ drifted %d", r.Phase, r.Warm, r.Fallback, r.Drifted)
		}
	}
	if cat == nil || cat.Epoch() != 2 {
		t.Errorf("returned catalog epoch = %v, want 2", cat.Epoch())
	}

	if _, _, err := Catalog(context.Background(), CatalogConfig{Epochs: -1}, nil, nil); !errors.Is(err, ErrExperiment) {
		t.Errorf("negative epochs: err = %v, want ErrExperiment", err)
	}
}

// TestCatalogExperimentDeterminism pins the end-to-end experiment —
// rows, catalog snapshot, and metrics — across worker counts and chunk
// sizes, the same contract the underlying package tests shard by shard.
func TestCatalogExperimentDeterminism(t *testing.T) {
	type outcome struct {
		rows    []CatalogRow
		snap    []byte
		metrics []byte
	}
	scenario := func(workers, chunk int) outcome {
		cfg := CatalogConfig{Objects: 512, Nodes: 5, Epochs: 2, DriftFraction: 0.2, Seed: 13}
		reg := metrics.New()
		ctx := sweep.WithWorkers(context.Background(), workers)
		if chunk > 0 {
			ctx = sweep.WithChunkSize(ctx, chunk)
		}
		ctx = sweep.WithMetrics(ctx, reg)
		rows, cat, err := Catalog(ctx, cfg, reg, nil)
		if err != nil {
			t.Fatalf("Catalog(workers=%d, chunk=%d): %v", workers, chunk, err)
		}
		snap, err := cat.Snapshot().Encode()
		if err != nil {
			t.Fatalf("Snapshot.Encode: %v", err)
		}
		msnap, err := metrics.EncodeJSON(reg.Snapshot())
		if err != nil {
			t.Fatalf("metrics.EncodeJSON: %v", err)
		}
		return outcome{rows: rows, snap: snap, metrics: msnap}
	}

	ref := scenario(1, 0)
	for _, workers := range []int{1, 8} {
		for _, chunk := range []int{0, 1} {
			if workers == 1 && chunk == 0 {
				continue
			}
			got := scenario(workers, chunk)
			name := fmt.Sprintf("workers=%d/chunk=%d", workers, chunk)
			if !reflect.DeepEqual(ref.rows, got.rows) {
				t.Errorf("%s: rows differ from serial reference", name)
			}
			if !bytes.Equal(ref.snap, got.snap) {
				t.Errorf("%s: catalog snapshot differs from serial reference", name)
			}
			if !bytes.Equal(ref.metrics, got.metrics) {
				t.Errorf("%s: metrics snapshot differs from serial reference", name)
			}
		}
	}
}
