package experiments

import (
	"context"
	"math"
	"testing"
)

func TestOptimalCopiesExperiment(t *testing.T) {
	res, err := OptimalCopies(context.Background())
	if err != nil {
		t.Fatalf("OptimalCopies: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	best := res.Rows[res.Best]
	if best.M <= 1 || best.M >= 6 {
		t.Errorf("best m = %d; the chosen economics should give an interior optimum", best.M)
	}
	// Read cost falls with m; total is U-shaped around the best.
	if res.Rows[0].AccessCost <= res.Rows[len(res.Rows)-1].AccessCost {
		t.Errorf("access cost did not fall with m: %g at m=1 vs %g at m=6",
			res.Rows[0].AccessCost, res.Rows[len(res.Rows)-1].AccessCost)
	}
}

func TestNeighborOnlyExperiment(t *testing.T) {
	rows, err := NeighborOnly(context.Background())
	if err != nil {
		t.Fatalf("NeighborOnly: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		// The neighbours-only algorithm reaches (essentially) the same
		// optimum...
		if math.Abs(row.CostGapPct) > 0.5 {
			t.Errorf("%s: cost gap %.3f%%", row.Topology, row.CostGapPct)
		}
		// ...with more iterations (diffusion) ...
		if row.NeighborIterations <= row.FullIterations {
			t.Errorf("%s: neighbor iterations %d not above full %d",
				row.Topology, row.NeighborIterations, row.FullIterations)
		}
		// ...but far fewer messages per iteration; the line's total
		// message bill should still be competitive or better per unit
		// of progress. At minimum, messages/iteration must be lower.
		nbPerIter := float64(row.NeighborMessages) / float64(row.NeighborIterations)
		fullPerIter := float64(row.FullMessages) / float64(row.FullIterations+1)
		if nbPerIter >= fullPerIter {
			t.Errorf("%s: neighbor %.1f msgs/iter not below full %.1f",
				row.Topology, nbPerIter, fullPerIter)
		}
	}
}

func TestAvailabilityExperiment(t *testing.T) {
	rows, err := Availability(0.1)
	if err != nil {
		t.Fatalf("Availability: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	integral, fragmented, twoCopies, threeCopies := rows[0], rows[1], rows[2], rows[3]
	// Same expected fraction for integral and fragmented single copies...
	if math.Abs(integral.ExpectedAccessible-fragmented.ExpectedAccessible) > 1e-9 {
		t.Errorf("single-copy expectations differ: %g vs %g",
			integral.ExpectedAccessible, fragmented.ExpectedAccessible)
	}
	// ...but the integral placement is all-or-nothing: its whole-file
	// survival (0.9) beats the fragmented one (0.9⁴) while the
	// fragmented placement degrades gracefully instead of catastrophically.
	if integral.AllOrNothing <= fragmented.AllOrNothing {
		t.Errorf("whole-file survival: integral %g should exceed fragmented %g",
			integral.AllOrNothing, fragmented.AllOrNothing)
	}
	// Replication strictly improves expected accessibility.
	if twoCopies.ExpectedAccessible <= fragmented.ExpectedAccessible {
		t.Errorf("m=2 availability %g not above single copy %g",
			twoCopies.ExpectedAccessible, fragmented.ExpectedAccessible)
	}
	if threeCopies.ExpectedAccessible <= twoCopies.ExpectedAccessible {
		t.Errorf("m=3 availability %g not above m=2 %g",
			threeCopies.ExpectedAccessible, twoCopies.ExpectedAccessible)
	}
	// m=2 spread evenly on 4 nodes: every record on 2 distinct nodes →
	// 1 − p².
	if math.Abs(twoCopies.ExpectedAccessible-(1-0.01)) > 1e-9 {
		t.Errorf("m=2 availability = %g, want 0.99", twoCopies.ExpectedAccessible)
	}
}

func TestQuantizeExperiment(t *testing.T) {
	rows, err := Quantize(nil)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, row := range rows {
		if row.CostPenaltyPct < -1e-9 {
			t.Errorf("records=%d: negative penalty %g%%", row.Records, row.CostPenaltyPct)
		}
		if row.MaxDeviation > 1.0/float64(row.Records)+1e-12 {
			t.Errorf("records=%d: deviation %g exceeds one record", row.Records, row.MaxDeviation)
		}
		if i > 0 && row.CostPenaltyPct > rows[i-1].CostPenaltyPct+1e-9 {
			t.Errorf("penalty grew from %d to %d records (%g%% -> %g%%)",
				rows[i-1].Records, row.Records, rows[i-1].CostPenaltyPct, row.CostPenaltyPct)
		}
	}
	last := rows[len(rows)-1]
	if last.CostPenaltyPct > 1e-4 {
		t.Errorf("penalty at %d records = %g%%, want ≈ 0", last.Records, last.CostPenaltyPct)
	}
}

func TestRecordPopularityExperiment(t *testing.T) {
	rows, err := RecordPopularity(context.Background(), nil, 10000)
	if err != nil {
		t.Fatalf("RecordPopularity: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	uniform := rows[0]
	if uniform.Skew != 0 {
		t.Fatalf("first row skew = %g", uniform.Skew)
	}
	// Uniform popularity: records ∝ access share.
	wantRecords := int(uniform.HotNodeShare * 10000)
	if diff := uniform.HotNodeRecords - wantRecords; diff < -2 || diff > 2 {
		t.Errorf("uniform hot node stores %d records, want ≈ %d", uniform.HotNodeRecords, wantRecords)
	}
	// Increasing skew: the hot node (which hosts the popular head)
	// stores monotonically fewer records for the same access share.
	for i := 1; i < len(rows); i++ {
		if rows[i].HotNodeRecords >= rows[i-1].HotNodeRecords {
			t.Errorf("skew %g: hot node records %d did not shrink from %d",
				rows[i].Skew, rows[i].HotNodeRecords, rows[i-1].HotNodeRecords)
		}
	}
	// Cost penalty of record granularity stays small throughout. At
	// skew 1.5 the single head record carries ≈ 38% of all accesses by
	// itself, so the boundary can be off by a whole hot record; even
	// then the penalty stays well under 1%.
	for _, r := range rows {
		if r.CostPenaltyPct > 0.5 || r.CostPenaltyPct < -1e-9 {
			t.Errorf("skew %g: cost penalty %g%%", r.Skew, r.CostPenaltyPct)
		}
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	rows, err := Adaptive(context.Background(), []float64{5, 400}, 1)
	if err != nil {
		t.Fatalf("Adaptive: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	short, long := rows[0], rows[1]
	// The adaptation trade-off: the short half-life recovers from the
	// drift much better than the stale long-half-life estimator...
	if short.PostDriftGapPct >= long.PostDriftGapPct {
		t.Errorf("post-drift gaps: short %g%% should be below long %g%%",
			short.PostDriftGapPct, long.PostDriftGapPct)
	}
	// ...while the long half-life is near-perfect in steady state where
	// the short one pays an estimation-noise premium.
	if long.SteadyGapPct > 1 || long.SteadyGapPct < -1e-9 {
		t.Errorf("long half-life steady gap %g%%, want < 1%%", long.SteadyGapPct)
	}
	if short.SteadyGapPct <= long.SteadyGapPct {
		t.Errorf("steady gaps: short %g%% should exceed long %g%% (noise premium)",
			short.SteadyGapPct, long.SteadyGapPct)
	}
	if short.SteadyGapPct > 20 {
		t.Errorf("short half-life steady gap %g%% unreasonably large", short.SteadyGapPct)
	}
	// Given time, even the short estimator is near-optimal again.
	if short.RecoveredGapPct > 10 {
		t.Errorf("short half-life recovered gap %g%%", short.RecoveredGapPct)
	}
}
