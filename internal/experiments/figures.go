package experiments

import (
	"context"
	"fmt"
	"math"

	"filealloc/internal/baseline"
	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/sweep"
	"filealloc/internal/trace"
)

// Profile is one convergence curve: the cost after each iteration for one
// parameterization.
type Profile struct {
	// Label names the curve (e.g. "α=0.30").
	Label string
	// Alpha is the stepsize used.
	Alpha float64
	// Costs holds the cost per iteration, Costs[0] being the initial
	// allocation's cost.
	Costs []float64
	// Iterations is the number of re-allocation steps until the
	// ε-criterion fired.
	Iterations int
	// Converged reports whether it fired at all.
	Converged bool
	// FinalX is the final allocation.
	FinalX []float64
}

// Fig3 reproduces figure 3: convergence profiles of the 4-node ring for
// α ∈ {0.67, 0.3, 0.19, 0.08} from the starting allocation
// (0.8, 0.1, 0.1, 0). The paper reports 4/10/20/51 iterations and the
// optimal allocation (0.25, 0.25, 0.25, 0.25) at cost 2.8 (with C_i = 2).
func Fig3(ctx context.Context) ([]Profile, error) {
	return ConvergenceProfiles(ctx, []float64{0.67, 0.3, 0.19, 0.08}, PaperStart(4))
}

// ConvergenceProfiles runs the figure-3 system once per stepsize from the
// given start. The stepsizes run concurrently (see WorkersFrom); each
// item owns its allocator and trace recorder, each worker reuses one
// solve scratch across the items it claims, and the profiles come back
// in stepsize order regardless of parallelism.
func ConvergenceProfiles(ctx context.Context, alphas []float64, start []float64) ([]Profile, error) {
	m, err := RingSystem(len(start), 1)
	if err != nil {
		return nil, err
	}
	profiles := make([]Profile, len(alphas))
	err = sweep.RunWithScratch(ctx, len(alphas), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		alpha := alphas[i]
		rec := trace.NewRecorder(false)
		alloc, err := core.NewAllocator(m,
			core.WithAlpha(alpha),
			core.WithEpsilon(Epsilon),
			core.WithTrace(rec.Hook),
		)
		if err != nil {
			return fmt.Errorf("%w: configuring α=%v: %w", ErrExperiment, alpha, err)
		}
		res, err := alloc.RunWithScratch(ctx, start, scratch)
		if err != nil {
			return fmt.Errorf("%w: running α=%v: %w", ErrExperiment, alpha, err)
		}
		profiles[i] = Profile{
			Label:      fmt.Sprintf("α=%.2f", alpha),
			Alpha:      alpha,
			Costs:      rec.Costs(),
			Iterations: res.Iterations,
			Converged:  res.Converged,
			// res.X aliases the worker's scratch; the profile outlives
			// the item, so copy.
			FinalX: append([]float64(nil), res.X...),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return profiles, nil
}

// Fig4Row compares the best integral placement against the fragmented
// optimum for one link-cost setting.
type Fig4Row struct {
	// LinkCost is the uniform ring link cost v.
	LinkCost float64
	// IntegralCost is the cost of the best whole-file placement — the
	// paper's starting point (0, 0, 0, 1).
	IntegralCost float64
	// FragmentedCost is the cost after the algorithm converges.
	FragmentedCost float64
	// ReductionPct is 100·(Integral − Fragmented)/Integral; the paper
	// reports ≈ 25%.
	ReductionPct float64
	// Profile is the convergence curve from the integral start.
	Profile []float64
	// Iterations to convergence.
	Iterations int
}

// Fig4 reproduces figure 4: starting with the entire file at one node and
// fragmenting it. The paper's ring has "equal link costs" of unstated
// magnitude; the reduction depends on that magnitude
// (1.2/(2v+2) under the round-trip convention), so the experiment sweeps
// v and reports each point; v ≈ 1.4 matches the paper's 25%.
func Fig4(ctx context.Context, linkCosts []float64) ([]Fig4Row, error) {
	if len(linkCosts) == 0 {
		linkCosts = []float64{1, 1.4, 2, 3}
	}
	rows := make([]Fig4Row, len(linkCosts))
	err := sweep.RunWithScratch(ctx, len(linkCosts), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		v := linkCosts[i]
		m, err := RingSystem(4, v)
		if err != nil {
			return err
		}
		integral, err := baseline.BestIntegral(m)
		if err != nil {
			return fmt.Errorf("%w: integral baseline at v=%v: %w", ErrExperiment, v, err)
		}
		rec := trace.NewRecorder(false)
		alloc, err := core.NewAllocator(m,
			core.WithAlpha(0.3),
			core.WithEpsilon(Epsilon),
			core.WithTrace(rec.Hook),
		)
		if err != nil {
			return fmt.Errorf("%w: configuring v=%v: %w", ErrExperiment, v, err)
		}
		// The paper starts from (0, 0, 0, 1): the whole file at one
		// node, which is integrally optimal by symmetry.
		start := make([]float64, 4)
		start[3] = 1
		res, err := alloc.RunWithScratch(ctx, start, scratch)
		if err != nil {
			return fmt.Errorf("%w: running v=%v: %w", ErrExperiment, v, err)
		}
		frag := -res.Utility
		rows[i] = Fig4Row{
			LinkCost:       v,
			IntegralCost:   integral.Cost,
			FragmentedCost: frag,
			ReductionPct:   100 * (integral.Cost - frag) / integral.Cost,
			Profile:        rec.Costs(),
			Iterations:     res.Iterations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig5Row is one point of the iterations-vs-α curve.
type Fig5Row struct {
	Alpha      float64
	Iterations int
	Converged  bool
}

// Fig5 reproduces figure 5: the number of iterations required for
// convergence across stepsizes on the figure-3 system. Small α converges
// slowly; a wide basin of α values is near-optimal; α beyond the
// stability threshold (≈ 2/s ≈ 1.3 here) fails to converge.
func Fig5(ctx context.Context, alphas []float64) ([]Fig5Row, error) {
	if len(alphas) == 0 {
		for i := 1; i <= 70; i++ {
			// Exact division keeps the grid values identical to the
			// decimal literals callers look up (0.66, 1.4, ...).
			alphas = append(alphas, float64(2*i)/100)
		}
	}
	m, err := RingSystem(4, 1)
	if err != nil {
		return nil, err
	}
	start := PaperStart(4)
	rows := make([]Fig5Row, len(alphas))
	err = sweep.RunWithScratch(ctx, len(alphas), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		alpha := alphas[i]
		alloc, err := core.NewAllocator(m,
			core.WithAlpha(alpha),
			core.WithEpsilon(Epsilon),
			core.WithMaxIterations(2000),
		)
		if err != nil {
			return fmt.Errorf("%w: configuring α=%v: %w", ErrExperiment, alpha, err)
		}
		res, err := alloc.RunWithScratch(ctx, start, scratch)
		if err != nil {
			return fmt.Errorf("%w: running α=%v: %w", ErrExperiment, alpha, err)
		}
		rows[i] = Fig5Row{Alpha: alpha, Iterations: res.Iterations, Converged: res.Converged}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6Row is one network size of the scaling experiment.
type Fig6Row struct {
	// N is the node count.
	N int
	// BestAlpha is the stepsize that converged fastest.
	BestAlpha float64
	// Iterations at BestAlpha.
	Iterations int
	// FinalSpread is max_i |x_i − 1/N| at convergence.
	FinalSpread float64
}

// Fig6AlphaGrid returns the figure-6 stepsize grid 0.05, 0.10, …, 1.50.
// The grid is derived from an integer index (exact-division style, as
// Fig5's default grid is) rather than by repeatedly adding 0.05: the
// accumulated float error of `for a := 0.05; a <= 1.5; a += 0.05` can
// land the final value just above 1.5 and silently drop the last grid
// point.
func Fig6AlphaGrid() []float64 {
	grid := make([]float64, 30)
	for i := range grid {
		grid[i] = float64(i+1) / 20
	}
	return grid
}

// Fig6 reproduces figure 6: iterations to convergence (at the best α found
// by grid search) for fully connected networks of N = 4..20 nodes, start
// (0.8, 0.1, 0.1, 0, ..., 0). The paper's salient observation: the count
// barely grows with N.
//
// The (size, α) grid — ~30 solves per network size — is flattened into
// one sweep so every solve runs concurrently (see WorkersFrom); the
// best-α reduction happens serially afterwards in grid order, so the
// result is identical to the serial double loop.
func Fig6(ctx context.Context, sizes []int) ([]Fig6Row, error) {
	if len(sizes) == 0 {
		for n := 4; n <= 20; n++ {
			sizes = append(sizes, n)
		}
	}
	alphas := Fig6AlphaGrid()

	// The models are shared read-only by all of a size's grid points.
	models := make([]*costmodel.SingleFile, len(sizes))
	for si, n := range sizes {
		m, err := MeshSystem(n)
		if err != nil {
			return nil, err
		}
		models[si] = m
	}

	type cell struct {
		iterations int
		converged  bool
		spread     float64
	}
	cells := make([]cell, len(sizes)*len(alphas))
	err := sweep.RunWithScratch(ctx, len(cells), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		si, ai := i/len(alphas), i%len(alphas)
		n, a := sizes[si], alphas[ai]
		alloc, err := core.NewAllocator(models[si],
			core.WithAlpha(a),
			core.WithEpsilon(Epsilon),
			core.WithMaxIterations(2000),
		)
		if err != nil {
			return fmt.Errorf("%w: configuring n=%d α=%v: %w", ErrExperiment, n, a, err)
		}
		res, err := alloc.RunWithScratch(ctx, PaperStart(n), scratch)
		if err != nil {
			return fmt.Errorf("%w: running n=%d α=%v: %w", ErrExperiment, n, a, err)
		}
		var spread float64
		for _, xi := range res.X {
			if d := math.Abs(xi - 1/float64(n)); d > spread {
				spread = d
			}
		}
		cells[i] = cell{iterations: res.Iterations, converged: res.Converged, spread: spread}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Fig6Row, 0, len(sizes))
	for si, n := range sizes {
		best := Fig6Row{N: n, Iterations: math.MaxInt}
		for ai, a := range alphas {
			c := cells[si*len(alphas)+ai]
			if c.converged && c.iterations < best.Iterations {
				best.BestAlpha = a
				best.Iterations = c.iterations
				best.FinalSpread = c.spread
			}
		}
		if best.Iterations == math.MaxInt {
			return nil, fmt.Errorf("%w: no α converged for n=%d", ErrExperiment, n)
		}
		rows = append(rows, best)
	}
	return rows, nil
}
