package experiments

import (
	"context"
	"math"
	"testing"
)

func TestFig3ReproducesPaperIterationCounts(t *testing.T) {
	// Paper (figure 3): 4 iterations for α=0.67, 10 for α=0.3, 20 for
	// α=0.19, 51 for α=0.08. Our counting converges one check earlier
	// for two of them (4/9/19/51); assert within ±1 of the paper.
	profiles, err := Fig3(context.Background())
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	want := map[float64]int{0.67: 4, 0.3: 10, 0.19: 20, 0.08: 51}
	for _, p := range profiles {
		if !p.Converged {
			t.Errorf("%s did not converge", p.Label)
			continue
		}
		paper := want[p.Alpha]
		if diff := p.Iterations - paper; diff < -1 || diff > 1 {
			t.Errorf("%s: %d iterations, paper reports %d", p.Label, p.Iterations, paper)
		}
		// Optimum (0.25, 0.25, 0.25, 0.25) at cost 2.8.
		for i, xi := range p.FinalX {
			if math.Abs(xi-0.25) > 1e-2 {
				t.Errorf("%s: x[%d] = %g, want ≈ 0.25", p.Label, i, xi)
			}
		}
		final := p.Costs[len(p.Costs)-1]
		if math.Abs(final-2.8) > 1e-3 {
			t.Errorf("%s: final cost %g, want ≈ 2.8", p.Label, final)
		}
	}
}

func TestFig3MonotoneAndRapidPhase(t *testing.T) {
	profiles, err := Fig3(context.Background())
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	for _, p := range profiles {
		for i := 1; i < len(p.Costs); i++ {
			if p.Costs[i] > p.Costs[i-1]+1e-12 {
				t.Errorf("%s: cost increased at iteration %d (%g -> %g)",
					p.Label, i, p.Costs[i-1], p.Costs[i])
			}
		}
		// Rapid convergence phase: the first third of iterations
		// captures most of the total improvement.
		if len(p.Costs) >= 6 {
			total := p.Costs[0] - p.Costs[len(p.Costs)-1]
			third := p.Costs[0] - p.Costs[len(p.Costs)/3]
			if third < 0.5*total {
				t.Errorf("%s: first third achieved only %g of %g improvement", p.Label, third, total)
			}
		}
	}
}

func TestFig4FragmentationWins(t *testing.T) {
	rows, err := Fig4(context.Background(), nil)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		if row.FragmentedCost >= row.IntegralCost {
			t.Errorf("v=%g: fragmented %g not below integral %g",
				row.LinkCost, row.FragmentedCost, row.IntegralCost)
		}
		// Closed form: integral v + 2 ... wait: integral cost is
		// C_best + k/(μ−λ) with C_i = 2v on the round-trip unit ring
		// weighted 1/4·(0+2v+4v+2v) = 2v; so integral = 2v + 2 and
		// fragmented optimum = 2v + 0.8.
		wantIntegral := 2*row.LinkCost + 2
		wantFrag := 2*row.LinkCost + 0.8
		if math.Abs(row.IntegralCost-wantIntegral) > 1e-6 {
			t.Errorf("v=%g: integral = %g, want %g", row.LinkCost, row.IntegralCost, wantIntegral)
		}
		if math.Abs(row.FragmentedCost-wantFrag) > 1e-3 {
			t.Errorf("v=%g: fragmented = %g, want %g", row.LinkCost, row.FragmentedCost, wantFrag)
		}
	}
	// The paper's 25% point: v = 1.4 gives 1.2/(2·1.4+2) = 25%.
	for _, row := range rows {
		if row.LinkCost == 1.4 {
			if math.Abs(row.ReductionPct-25) > 0.5 {
				t.Errorf("v=1.4: reduction %g%%, paper reports ≈ 25%%", row.ReductionPct)
			}
		}
	}
}

func TestFig5AlphaSweepShape(t *testing.T) {
	rows, err := Fig5(context.Background(), nil)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	// Shape: small α slow, wide near-optimal basin, divergence beyond
	// the stability threshold.
	byAlpha := map[float64]Fig5Row{}
	for _, r := range rows {
		byAlpha[r.Alpha] = r
	}
	small, ok := byAlpha[0.02]
	if !ok {
		t.Fatal("missing α=0.02 row")
	}
	if !small.Converged || small.Iterations < 100 {
		t.Errorf("α=0.02: %d iterations (converged=%v), expected slow convergence", small.Iterations, small.Converged)
	}
	good, ok := byAlpha[0.66]
	if !ok {
		t.Fatal("missing α=0.66 row")
	}
	if !good.Converged || good.Iterations > 8 {
		t.Errorf("α=0.66: %d iterations, expected near-optimal speed", good.Iterations)
	}
	// Beyond 2/s ≈ 1.30 the iteration must not converge.
	diverged, ok := byAlpha[1.4]
	if !ok {
		t.Fatal("missing α=1.4 row")
	}
	if diverged.Converged {
		t.Errorf("α=1.4 converged; expected divergence beyond the stability window")
	}
	// A wide basin: at least 20 of the sampled α values converge within
	// 2x the best.
	best := math.MaxInt
	for _, r := range rows {
		if r.Converged && r.Iterations < best {
			best = r.Iterations
		}
	}
	nearOptimal := 0
	for _, r := range rows {
		if r.Converged && r.Iterations <= 2*best+2 {
			nearOptimal++
		}
	}
	if nearOptimal < 20 {
		t.Errorf("only %d α values near-optimal; paper reports a relatively large range", nearOptimal)
	}
}

func TestFig6IterationsFlatInN(t *testing.T) {
	rows, err := Fig6(context.Background(), []int{4, 8, 12, 16, 20})
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	// The paper's salient feature: increasing the problem size does not
	// significantly increase the iteration count.
	lo, hi := math.MaxInt, 0
	for _, r := range rows {
		if r.Iterations < lo {
			lo = r.Iterations
		}
		if r.Iterations > hi {
			hi = r.Iterations
		}
		if r.FinalSpread > 1e-2 {
			t.Errorf("n=%d: final allocation off uniform by %g", r.N, r.FinalSpread)
		}
	}
	if hi > 3*lo+3 {
		t.Errorf("iterations vary too much with N: min %d max %d", lo, hi)
	}
	if hi > 15 {
		t.Errorf("best-α iterations reach %d; paper shows consistently small counts", hi)
	}
}
