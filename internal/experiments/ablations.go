package experiments

import (
	"context"
	"fmt"
	"math"

	"filealloc/internal/agent"
	"filealloc/internal/baseline"
	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/secondorder"
	"filealloc/internal/sweep"
)

// SecondOrderRow compares the first- and second-derivative algorithms at
// one cost scale (experiment E8, section 8.2's pilot study).
type SecondOrderRow struct {
	// Scale multiplies all communication costs and k.
	Scale float64
	// FirstOrderIterations at the fixed stepsize (−1 when it failed to
	// converge within the budget).
	FirstOrderIterations int
	// SecondOrderIterations at α = 1.
	SecondOrderIterations int
}

// AblationSecondOrder demonstrates the scale-resilience claim: as the cost
// scale grows, the first-order algorithm at a fixed α slows down and
// eventually diverges (its stability window shrinks like 1/scale), while
// the curvature-normalized second-order algorithm is unaffected.
func AblationSecondOrder(ctx context.Context, scales []float64) ([]SecondOrderRow, error) {
	if len(scales) == 0 {
		scales = []float64{1, 2, 5, 10, 100}
	}
	const alpha = 0.3 // tuned for scale 1 (figure 3's good choice)
	rows := make([]SecondOrderRow, len(scales))
	err := sweep.RunWithScratch(ctx, len(scales), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		scale := scales[i]
		start := []float64{0.7, 0.1, 0.1, 0.1}
		access := []float64{2 * scale, 1 * scale, 3 * scale, 2 * scale}
		m, err := costmodel.NewSingleFile(access, []float64{Mu}, Lambda, K*scale)
		if err != nil {
			return fmt.Errorf("%w: building scale-%v model: %w", ErrExperiment, scale, err)
		}
		row := SecondOrderRow{Scale: scale, FirstOrderIterations: -1}

		// ε must track the utility scale for a fair comparison.
		eps := Epsilon * scale
		first, err := core.NewAllocator(m, core.WithAlpha(alpha), core.WithEpsilon(eps), core.WithMaxIterations(5000))
		if err != nil {
			return fmt.Errorf("%w: first-order at scale %v: %w", ErrExperiment, scale, err)
		}
		if res, err := first.RunWithScratch(ctx, start, scratch); err == nil && res.Converged {
			row.FirstOrderIterations = res.Iterations
		}

		second, err := secondorder.NewAllocator(m, secondorder.WithEpsilon(eps), secondorder.WithMaxIterations(5000))
		if err != nil {
			return fmt.Errorf("%w: second-order at scale %v: %w", ErrExperiment, scale, err)
		}
		res, err := second.Run(ctx, start)
		if err != nil {
			return fmt.Errorf("%w: second-order run at scale %v: %w", ErrExperiment, scale, err)
		}
		if !res.Converged {
			return fmt.Errorf("%w: second-order failed to converge at scale %v", ErrExperiment, scale)
		}
		row.SecondOrderIterations = res.Iterations
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// DecentralizedRow compares the decentralized protocol against the
// in-process solver (experiment E9).
type DecentralizedRow struct {
	// Mode is "broadcast" or "coordinator".
	Mode string
	// Rounds of the protocol.
	Rounds int
	// CentralIterations of the in-process solver.
	CentralIterations int
	// Messages sent in total.
	Messages int
	// MaxAllocationDiff is max_i |x_i^{distributed} − x_i^{central}|
	// (0 when bit-identical).
	MaxAllocationDiff float64
	// Converged reports the protocol's ε-criterion fired.
	Converged bool
}

// AblationDecentralized runs the figure-3 system through the agent runtime
// in both aggregation modes and reports trajectory equality and message
// bills. obs receives every agent event (may be nil); the two modes run
// concurrently (see WorkersFrom), so a non-nil obs must be safe for
// concurrent use when parallelism is enabled.
func AblationDecentralized(ctx context.Context, obs agent.Observer) ([]DecentralizedRow, error) {
	m, err := RingSystem(4, 1)
	if err != nil {
		return nil, err
	}
	start := PaperStart(4)
	central, err := core.NewAllocator(m, core.WithAlpha(0.3), core.WithEpsilon(Epsilon))
	if err != nil {
		return nil, fmt.Errorf("%w: central solver: %w", ErrExperiment, err)
	}
	centralRes, err := central.Run(ctx, start)
	if err != nil {
		return nil, fmt.Errorf("%w: central run: %w", ErrExperiment, err)
	}

	modes := []agent.Mode{agent.Broadcast, agent.Coordinator}
	rows := make([]DecentralizedRow, len(modes))
	err = sweep.Run(ctx, len(modes), sweep.WorkersFrom(ctx), func(ctx context.Context, i int) error {
		mode := modes[i]
		res, err := agent.RunCluster(ctx, agent.ClusterConfig{
			Models:   agent.ModelsFromSingleFile(m),
			Init:     start,
			Alpha:    0.3,
			Epsilon:  Epsilon,
			Mode:     mode,
			Observer: obs,
		})
		if err != nil {
			return fmt.Errorf("%w: %v cluster: %w", ErrExperiment, mode, err)
		}
		var maxDiff float64
		for j := range res.X {
			if d := math.Abs(res.X[j] - centralRes.X[j]); d > maxDiff {
				maxDiff = d
			}
		}
		rows[i] = DecentralizedRow{
			Mode:              mode.String(),
			Rounds:            res.Rounds,
			CentralIterations: centralRes.Iterations,
			Messages:          res.Messages,
			MaxAllocationDiff: maxDiff,
			Converged:         res.Converged,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PriceDirectedReport contrasts the two microeconomic mechanisms of
// section 2 (experiment E10).
type PriceDirectedReport struct {
	// PriceIterations until the market cleared.
	PriceIterations int
	// PriceWorstInfeasibility is the largest |Σ demand − 1| over the
	// tâtonnement's iterates: the price-directed drawback.
	PriceWorstInfeasibility float64
	// PriceCost is the cleared allocation's cost.
	PriceCost float64
	// ResourceIterations of the resource-directed algorithm.
	ResourceIterations int
	// ResourceWorstInfeasibility over its iterates (provably 0).
	ResourceWorstInfeasibility float64
	// ResourceCost at convergence.
	ResourceCost float64
	// ResourceMonotone reports whether every iterate improved on its
	// predecessor (Theorem 2's property; the tâtonnement offers no such
	// guarantee).
	ResourceMonotone bool
}

// AblationPriceDirected runs both mechanisms on an asymmetric 4-node
// system and measures feasibility along the way.
func AblationPriceDirected(ctx context.Context) (PriceDirectedReport, error) {
	access := []float64{2, 1, 3, 2}
	m, err := costmodel.NewSingleFile(access, []float64{Mu}, Lambda, K)
	if err != nil {
		return PriceDirectedReport{}, fmt.Errorf("%w: building model: %w", ErrExperiment, err)
	}
	report := PriceDirectedReport{}

	price, err := baseline.PriceDirected(m, baseline.PriceDirectedConfig{
		Gamma: 0.5, Tolerance: 1e-9, MaxIterations: 100000, KeepTrace: true,
	})
	if err != nil {
		return PriceDirectedReport{}, fmt.Errorf("%w: tâtonnement: %w", ErrExperiment, err)
	}
	report.PriceIterations = price.Iterations
	report.PriceCost = price.Cost
	for _, it := range price.Trace {
		if d := math.Abs(it.Excess); d > report.PriceWorstInfeasibility {
			report.PriceWorstInfeasibility = d
		}
	}

	var worst float64
	monotone := true
	prevCost := math.Inf(1)
	alloc, err := core.NewAllocator(m,
		core.WithAlpha(0.3),
		core.WithEpsilon(Epsilon),
		core.WithTrace(func(it core.Iteration) {
			var sum float64
			for _, v := range it.X {
				sum += v
			}
			if d := math.Abs(sum - 1); d > worst {
				worst = d
			}
			cost := -it.Utility
			if cost > prevCost+1e-12 {
				monotone = false
			}
			prevCost = cost
		}),
	)
	if err != nil {
		return PriceDirectedReport{}, fmt.Errorf("%w: resource-directed solver: %w", ErrExperiment, err)
	}
	res, err := alloc.Run(ctx, baseline.Uniform(4))
	if err != nil {
		return PriceDirectedReport{}, fmt.Errorf("%w: resource-directed run: %w", ErrExperiment, err)
	}
	report.ResourceIterations = res.Iterations
	report.ResourceWorstInfeasibility = worst
	report.ResourceCost = -res.Utility
	report.ResourceMonotone = monotone
	return report, nil
}
