package experiments

import (
	"context"
	"fmt"

	"filealloc/internal/catalog"
	"filealloc/internal/metrics"
)

// CatalogConfig sizes the catalog experiment: a cold fill of Objects
// objects followed by Epochs drift/re-solve cycles.
type CatalogConfig struct {
	// Objects is the catalog size (default 4096).
	Objects int
	// Nodes is the cluster size (default 8).
	Nodes int
	// Epochs is the number of drift/re-solve cycles (default 3).
	Epochs int
	// DriftFraction is the per-epoch fraction of objects whose demand
	// is re-drawn (0 disables drift — the skip path's showcase).
	DriftFraction float64
	// Seed derives demand and drift (default 1).
	Seed uint64
}

// CatalogRow reports one solve pass: the cold fill ("cold") or one
// epoch's re-solve ("epoch-N"). ElapsedNS times the solve pass alone —
// sensing and drift synthesis are simulation bookkeeping, excluded so
// cold and warm throughput compare like for like. It is 0 when no clock
// was injected (deterministic runs).
type CatalogRow struct {
	Phase        string
	Objects      int
	DriftApplied int
	Drifted      int64
	Skipped      int64
	Warm         int64
	Fallback     int64
	Cold         int64
	Steps        int64
	ElapsedNS    int64
}

// Catalog runs the million-object-service experiment: sharded cold fill,
// one sensing window to establish planning baselines, then Epochs cycles
// of demand drift and warm-start re-solving. reg (optional) receives the
// catalog's counters; clock (optional, e.g. time.Now wrapped by the
// caller — this package must stay wall-clock-free) times each solve
// pass. It returns one row per pass plus the solved catalog for
// snapshotting.
func Catalog(ctx context.Context, cfg CatalogConfig, reg *metrics.Registry, clock func() int64) ([]CatalogRow, *catalog.Catalog, error) {
	if cfg.Objects == 0 {
		cfg.Objects = 4096
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 3
	}
	if cfg.Epochs < 0 {
		return nil, nil, fmt.Errorf("%w: %d epochs", ErrExperiment, cfg.Epochs)
	}
	c, err := catalog.New(catalog.Config{
		Objects:       cfg.Objects,
		Nodes:         cfg.Nodes,
		DriftFraction: cfg.DriftFraction,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrExperiment, err)
	}
	c.AttachMetrics(reg)
	elapsed := func(start int64) int64 {
		if clock == nil {
			return 0
		}
		return clock() - start
	}
	now := func() int64 {
		if clock == nil {
			return 0
		}
		return clock()
	}

	rows := make([]CatalogRow, 0, cfg.Epochs+1)
	start := now()
	st, err := c.SolveCold(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: cold fill: %w", ErrExperiment, err)
	}
	rows = append(rows, CatalogRow{
		Phase:     "cold",
		Objects:   c.Objects(),
		Cold:      st.Cold,
		Steps:     st.Steps,
		ElapsedNS: elapsed(start),
	})
	if err := c.Sense(ctx); err != nil {
		return nil, nil, fmt.Errorf("%w: sensing: %w", ErrExperiment, err)
	}
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		applied, err := c.Drift(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: drift epoch %d: %w", ErrExperiment, epoch, err)
		}
		start = now()
		st, err := c.ReSolve(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: re-solve epoch %d: %w", ErrExperiment, epoch, err)
		}
		rows = append(rows, CatalogRow{
			Phase:        fmt.Sprintf("epoch-%d", epoch),
			Objects:      c.Objects(),
			DriftApplied: applied,
			Drifted:      st.Drifted,
			Skipped:      st.Skipped,
			Warm:         st.Warm,
			Fallback:     st.Fallback,
			Cold:         st.Cold,
			Steps:        st.Steps,
			ElapsedNS:    elapsed(start),
		})
	}
	return rows, c, nil
}
