package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"filealloc/internal/metrics"
	"filealloc/internal/sweep"
)

// chaosChurnSnapshot runs the full chaos-churn matrix with a fresh
// registry under the given sweep concurrency and chunk size (0 =
// automatic) and returns the snapshot.
func chaosChurnSnapshot(t *testing.T, workers, chunk int) metrics.Snapshot {
	t.Helper()
	reg := metrics.New()
	ctx := sweep.WithWorkers(context.Background(), workers)
	ctx = sweep.WithMetrics(ctx, reg)
	if chunk != 0 {
		ctx = sweep.WithChunkSize(ctx, chunk)
	}
	if _, err := ChaosChurn(ctx, nil, reg); err != nil {
		t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
	}
	return reg.Snapshot()
}

// TestChaosChurnMetricsDeterministic is the acceptance criterion for the
// metrics layer's determinism contract: a chaos-churn run — four
// concurrent supervised agents per scenario, crash faults, wall-clock
// round timeouts — must produce a registry snapshot that is byte-identical
// between workers=1 and workers=8 and across repeated runs — and, since
// the sweep engine claims chunks of contiguous indices, across chunk
// sizes from the degenerate 1 to one spanning the whole matrix. Counters
// commute, histograms are integer-valued, gauges are round-ordered, and
// recv-side fault counts are drained to delivery totals, so no
// scheduling or timing artifact may leak into any value.
func TestChaosChurnMetricsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-churn matrix is slow")
	}
	base := chaosChurnSnapshot(t, 1, 0)
	if len(base.Counters) == 0 || len(base.Histograms) == 0 {
		t.Fatalf("snapshot is missing metric families: %d counters, %d histograms", len(base.Counters), len(base.Histograms))
	}
	for name, snap := range map[string]metrics.Snapshot{
		"workers=8":            chaosChurnSnapshot(t, 8, 0),
		"workers=8 chunk=1":    chaosChurnSnapshot(t, 8, 1),
		"workers=8 chunk=4096": chaosChurnSnapshot(t, 8, 4096),
		"workers=1 rerun":      chaosChurnSnapshot(t, 1, 0),
	} {
		if !reflect.DeepEqual(base, snap) {
			t.Errorf("%s: snapshot differs from workers=1 baseline:\nbase: %+v\ngot:  %+v", name, base, snap)
			continue
		}
		b1, err := metrics.EncodeJSON(base)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := metrics.EncodeJSON(snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: JSON encodings differ", name)
		}
		var t1, t2 bytes.Buffer
		if err := metrics.EncodeText(&t1, base); err != nil {
			t.Fatal(err)
		}
		if err := metrics.EncodeText(&t2, snap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
			t.Errorf("%s: Prometheus text encodings differ", name)
		}
	}
}
