package experiments

import (
	"context"
	"fmt"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
	"filealloc/internal/records"
	"filealloc/internal/topology"
)

// RecordsRow reports the record-granularity quality of the optimal
// allocation under one popularity skew (experiment E16, the section 4
// relaxation of uniform record access).
type RecordsRow struct {
	// Skew is the Zipf exponent s (0 = the paper's uniform case).
	Skew float64
	// HotNodeRecords is the record count stored by the node with the
	// largest access share.
	HotNodeRecords int
	// HotNodeShare is that node's optimal access share.
	HotNodeShare float64
	// ShareError is the worst |realized − target| access share after
	// partitioning at record granularity.
	ShareError float64
	// CostPenaltyPct is the cost of record granularity relative to the
	// fractional optimum.
	CostPenaltyPct float64
}

// RecordPopularity runs E16: the optimal ACCESS shares do not depend on
// record popularity (equation 1 is written in access shares), but the
// records realizing them do — under Zipf skew the hot node stores far
// fewer records than its access share suggests, and the achievable cost
// stays within a hair of the fractional optimum as long as no single
// record dominates.
func RecordPopularity(ctx context.Context, skews []float64, recordCount int) ([]RecordsRow, error) {
	if len(skews) == 0 {
		skews = []float64{0, 0.5, 1, 1.5}
	}
	if recordCount <= 0 {
		recordCount = 10000
	}
	// An asymmetric ring (node 0 generates 55% of the traffic) so the
	// optimal shares differ across nodes.
	ring, err := topology.Ring(4, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	rates := []float64{0.55, 0.15, 0.15, 0.15}
	access, err := topology.AccessCosts(ring, rates, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	m, err := costmodel.NewSingleFile(access, []float64{Mu}, Lambda, K)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	alloc, err := core.NewAllocator(m, core.WithAlpha(0.1), core.WithEpsilon(1e-9), core.WithKKTCheck())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	res, err := alloc.Run(ctx, PaperStart(4))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	if !res.Converged {
		return nil, fmt.Errorf("%w: allocation did not converge", ErrExperiment)
	}
	optCost, err := m.Cost(res.X)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	hot := 0
	for i, xi := range res.X {
		if xi > res.X[hot] {
			hot = i
		}
	}

	rows := make([]RecordsRow, 0, len(skews))
	for _, s := range skews {
		pop, err := records.Zipf(recordCount, s)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		counts, err := pop.Partition(res.X)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		realized, err := pop.AccessShare(counts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		realCost, err := m.Cost(realized)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		worst, err := pop.ShareError(res.X, counts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		rows = append(rows, RecordsRow{
			Skew:           s,
			HotNodeRecords: counts[hot],
			HotNodeShare:   res.X[hot],
			ShareError:     worst,
			CostPenaltyPct: 100 * (realCost - optCost) / optCost,
		})
	}
	return rows, nil
}
