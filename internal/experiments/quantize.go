package experiments

import (
	"fmt"

	"filealloc/internal/costmodel"
	"filealloc/internal/quantize"
)

// QuantizeRow reports the cost of rounding the optimal fractions to record
// boundaries at one file granularity (experiment E15, section 8.1).
type QuantizeRow struct {
	// Records per copy.
	Records int
	// MaxDeviation is the worst per-node |x_i − rounded_i|.
	MaxDeviation float64
	// CostPenaltyPct is 100·(C(rounded) − C(x*))/C(x*).
	CostPenaltyPct float64
}

// Quantize runs E15: round the figure-3 optimum (computed on an asymmetric
// system so the fractions are irrational-ish) to various record counts and
// measure the cost penalty. Section 8.1: "the larger the number of
// records the closer the rounded-off fractions will be to the prescribed
// fractions and thus the closer the final allocation will be to
// optimality."
func Quantize(recordCounts []int) ([]QuantizeRow, error) {
	if len(recordCounts) == 0 {
		recordCounts = []int{10, 50, 100, 1000, 10000}
	}
	// An asymmetric system so the optimum is not a round fraction.
	m, err := costmodel.NewSingleFile([]float64{2, 1, 3, 2.5}, []float64{Mu}, Lambda, K)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	sol, err := m.SolveKKT(1e-12)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
	}
	rows := make([]QuantizeRow, 0, len(recordCounts))
	for _, records := range recordCounts {
		counts, err := quantize.Records(sol.X, records)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		penalty, err := quantize.CostPenalty(m.Cost, sol.X, counts, records)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExperiment, err)
		}
		rows = append(rows, QuantizeRow{
			Records:        records,
			MaxDeviation:   quantize.MaxDeviation(sol.X, counts, records),
			CostPenaltyPct: 100 * penalty / sol.Cost,
		})
	}
	return rows, nil
}
