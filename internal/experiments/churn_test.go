package experiments

import (
	"context"
	"testing"
)

// TestChaosChurnContract runs the full crash-recovery matrix and checks
// each scenario's row against the failure pattern it injects. The heavy
// per-scenario verification (typed dead-node errors, KKT certification on
// the surviving support, Σx = 1) happens inside ChaosChurn itself — an
// error return means the contract broke.
func TestChaosChurnContract(t *testing.T) {
	rows, err := ChaosChurn(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		survivors int
		restarts  bool // at least one supervised restart expected
		departs   bool // departure events expected
		rejoins   int64
	}{
		"crash-resume":     {survivors: 4, restarts: true},
		"double-crash":     {survivors: 4, restarts: true},
		"crash-depart":     {survivors: 3, departs: true},
		"partition-depart": {survivors: 3, departs: true},
		"depart-rejoin":    {survivors: 4, rejoins: 1},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Scenario]
		if !ok {
			t.Errorf("unexpected scenario %q", r.Scenario)
			continue
		}
		if !r.Converged {
			t.Errorf("%s: not converged", r.Scenario)
		}
		if r.Survivors != w.survivors {
			t.Errorf("%s: survivors = %d, want %d", r.Scenario, r.Survivors, w.survivors)
		}
		if w.restarts && r.Restarts == 0 {
			t.Errorf("%s: no supervised restarts recorded", r.Scenario)
		}
		if w.departs && r.Departs == 0 {
			t.Errorf("%s: no departure events recorded", r.Scenario)
		}
		if r.Rejoins != w.rejoins {
			t.Errorf("%s: rejoins = %d, want %d", r.Scenario, r.Rejoins, w.rejoins)
		}
		if r.MaxKKTGap > 0.02 {
			t.Errorf("%s: KKT gap %v exceeds tolerance", r.Scenario, r.MaxKKTGap)
		}
		if r.SumError > 1e-12 {
			t.Errorf("%s: Σx off by %v", r.Scenario, r.SumError)
		}
	}
}
