package experiments

import (
	"context"
	"fmt"
	"math"

	"filealloc/internal/core"
	"filealloc/internal/multicopy"
	"filealloc/internal/sweep"
)

// multiCopyRing builds the section 7.3 evaluation ring: 4 nodes, m = 2
// copies, μ = 1.5, k = 1, λ = 1 split uniformly.
func multiCopyRing(linkCosts []float64) (*multicopy.Ring, error) {
	r, err := multicopy.New(multicopy.Config{
		LinkCosts:    linkCosts,
		Rates:        []float64{Lambda},
		ServiceRates: []float64{Mu},
		K:            K,
		Copies:       2,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: building virtual ring: %w", ErrExperiment, err)
	}
	return r, nil
}

// multiCopyStart is the skewed starting allocation used for the section 7
// profiles (two copies, most of the mass at node 0).
func multiCopyStart() []float64 { return []float64{1.4, 0.2, 0.2, 0.2} }

// MultiCopyProfile is one section-7.3 convergence curve.
type MultiCopyProfile struct {
	// Label names the ring or stepsize variant.
	Label string
	// Alpha is the (initial) stepsize.
	Alpha float64
	// Costs per iteration.
	Costs []float64
	// BestCost is the lowest cost observed.
	BestCost float64
	// Oscillation is the mean |cost_t − cost_{t−1}| over the second half
	// of the run — the amplitude measure for figures 8 and 9.
	Oscillation float64
	// Iterations performed.
	Iterations int
}

// oscillation measures the mean absolute successive cost difference over
// the tail half of a profile.
func oscillation(costs []float64) float64 {
	if len(costs) < 3 {
		return 0
	}
	start := len(costs) / 2
	var sum float64
	var count int
	for i := start + 1; i < len(costs); i++ {
		sum += math.Abs(costs[i] - costs[i-1])
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// runMultiCopy executes one profile with a fixed stepsize (no decay), the
// raw behaviour figures 8 and 9 display. scratch may be nil; the sweeps
// pass their worker's buffers through it.
func runMultiCopy(ctx context.Context, r *multicopy.Ring, scratch *core.Scratch, alpha float64, iterations int, label string) (MultiCopyProfile, error) {
	var costs []float64
	best := math.Inf(1)
	alloc, err := core.NewAllocator(r,
		core.WithAlpha(alpha),
		core.WithEpsilon(Epsilon),
		core.WithMaxIterations(iterations),
		core.WithTrace(func(it core.Iteration) {
			c := -it.Utility
			costs = append(costs, c)
			if c < best {
				best = c
			}
		}),
	)
	if err != nil {
		return MultiCopyProfile{}, fmt.Errorf("%w: configuring %s: %w", ErrExperiment, label, err)
	}
	res, err := alloc.RunWithScratch(ctx, multiCopyStart(), scratch)
	if err != nil {
		return MultiCopyProfile{}, fmt.Errorf("%w: running %s: %w", ErrExperiment, label, err)
	}
	return MultiCopyProfile{
		Label:       label,
		Alpha:       alpha,
		Costs:       costs,
		BestCost:    best,
		Oscillation: oscillation(costs),
		Iterations:  res.Iterations,
	}, nil
}

// Fig8 reproduces figure 8: convergence profiles of the 4-node virtual
// ring with m = 2 copies at α = 0.1, for link costs (4,1,1,1)
// (communication-dominated, oscillates more) versus (1,1,1,1)
// (delay-dominated, small oscillations).
func Fig8(ctx context.Context) ([]MultiCopyProfile, error) {
	const iterations = 60
	configs := []struct {
		label string
		costs []float64
	}{
		{"links (4,1,1,1)", []float64{4, 1, 1, 1}},
		{"links (1,1,1,1)", []float64{1, 1, 1, 1}},
	}
	// A Ring's scratch buffers are single-goroutine, so each item builds
	// its own (see multicopy.Ring's concurrency contract).
	profiles := make([]MultiCopyProfile, len(configs))
	err := sweep.RunWithScratch(ctx, len(configs), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		cfg := configs[i]
		r, err := multiCopyRing(cfg.costs)
		if err != nil {
			return err
		}
		p, err := runMultiCopy(ctx, r, scratch, 0.1, iterations, cfg.label)
		if err != nil {
			return err
		}
		profiles[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return profiles, nil
}

// Fig9 reproduces figure 9: the oscillating (4,1,1,1) ring at α = 0.1
// versus α = 0.05 — halving the stepsize halves the oscillation amplitude —
// plus the section 7.3 adaptive-decay run that actually terminates.
func Fig9(ctx context.Context) ([]MultiCopyProfile, error) {
	const iterations = 60
	fixedAlphas := []float64{0.1, 0.05}
	// Three independent runs — two fixed stepsizes plus the adaptive-decay
	// variant — swept concurrently, each with its own Ring.
	profiles := make([]MultiCopyProfile, len(fixedAlphas)+1)
	err := sweep.RunWithScratch(ctx, len(profiles), sweep.WorkersFrom(ctx), core.NewScratch, func(ctx context.Context, i int, scratch *core.Scratch) error {
		r, err := multiCopyRing([]float64{4, 1, 1, 1})
		if err != nil {
			return err
		}
		if i < len(fixedAlphas) {
			alpha := fixedAlphas[i]
			p, err := runMultiCopy(ctx, r, scratch, alpha, iterations, fmt.Sprintf("α=%.2f fixed", alpha))
			if err != nil {
				return err
			}
			profiles[i] = p
			return nil
		}

		// The modified termination rule: decay α on oscillation, stop on
		// small cost delta, return the best observed point.
		var costs []float64
		res, err := r.Solve(ctx, multiCopyStart(), multicopy.SolveConfig{
			Alpha:         0.1,
			CostDelta:     1e-6,
			MaxIterations: 2000,
			OnIteration: func(it core.Iteration) {
				costs = append(costs, -it.Utility)
			},
			Scratch: scratch,
		})
		if err != nil {
			return fmt.Errorf("%w: adaptive solve: %w", ErrExperiment, err)
		}
		profiles[i] = MultiCopyProfile{
			Label:       "α=0.10 adaptive decay",
			Alpha:       0.1,
			Costs:       costs,
			BestCost:    res.Cost,
			Oscillation: oscillation(costs),
			Iterations:  res.Iterations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return profiles, nil
}
