package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"filealloc/internal/sweep"
)

// assertDeepEqualRows fails the test unless the serial (workers = 1) and
// parallel (workers = 8) results of one experiment are deeply equal —
// same rows, same order, same values. This is the sweep engine's central
// promise: parallelism is an implementation detail that must never leak
// into results.
func assertDeepEqualRows(t *testing.T, name string, serial, parallel any) {
	t.Helper()
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: workers=1 and workers=8 disagree:\n serial:   %+v\n parallel: %+v", name, serial, parallel)
	}
}

// serialParallel returns a workers=1 and a workers=8 context.
func serialParallel() (context.Context, context.Context) {
	ctx := context.Background()
	return sweep.WithWorkers(ctx, 1), sweep.WithWorkers(ctx, 8)
}

func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := Fig3(s)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Fig3(p)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "Fig3", serial, parallel)
}

func TestFig4DeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := Fig4(s, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Fig4(p, nil)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "Fig4", serial, parallel)
}

func TestFig5DeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := Fig5(s, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Fig5(p, nil)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "Fig5", serial, parallel)
}

func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid search in -short mode")
	}
	s, p := serialParallel()
	sizes := []int{4, 6, 8}
	serial, err := Fig6(s, sizes)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Fig6(p, sizes)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "Fig6", serial, parallel)
}

// TestFig5DeterministicAcrossChunkSizes pins the chunked claiming at the
// experiment level: a degenerate 1-item chunk (the pre-chunking
// behavior) and a chunk spanning the whole 70-point grid must both
// reproduce the serial rows exactly.
func TestFig5DeterministicAcrossChunkSizes(t *testing.T) {
	s, _ := serialParallel()
	want, err := Fig5(s, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, chunk := range []int{1, 7, 1000} {
		ctx := sweep.WithChunkSize(sweep.WithWorkers(context.Background(), 8), chunk)
		got, err := Fig5(ctx, nil)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		assertDeepEqualRows(t, fmt.Sprintf("Fig5 chunk=%d", chunk), want, got)
	}
}

// TestFig6DeterministicAcrossChunkSizes does the same over the flattened
// (size, α) grid, where a chunk can straddle network sizes.
func TestFig6DeterministicAcrossChunkSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search in -short mode")
	}
	s, _ := serialParallel()
	sizes := []int{4, 6, 8}
	want, err := Fig6(s, sizes)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, chunk := range []int{1, 13, 10000} {
		ctx := sweep.WithChunkSize(sweep.WithWorkers(context.Background(), 8), chunk)
		got, err := Fig6(ctx, sizes)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		assertDeepEqualRows(t, fmt.Sprintf("Fig6 chunk=%d", chunk), want, got)
	}
}

// TestFig6AlphaGrid pins the stepsize grid against the float-accumulation
// regression: adding 0.05 thirty times overshoots 1.5 by one ulp and used
// to drop the last grid point.
func TestFig6AlphaGrid(t *testing.T) {
	grid := Fig6AlphaGrid()
	if len(grid) != 30 {
		t.Fatalf("grid has %d points, want 30", len(grid))
	}
	if grid[0] != 0.05 {
		t.Errorf("grid[0] = %v, want 0.05", grid[0])
	}
	if grid[len(grid)-1] != 1.5 {
		t.Errorf("grid[%d] = %v, want 1.5", len(grid)-1, grid[len(grid)-1])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Errorf("grid not strictly increasing at %d: %v then %v", i, grid[i-1], grid[i])
		}
	}
}

func TestAblationSecondOrderDeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	scales := []float64{1, 2, 5}
	serial, err := AblationSecondOrder(s, scales)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := AblationSecondOrder(p, scales)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "AblationSecondOrder", serial, parallel)
}

func TestAblationDecentralizedDeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := AblationDecentralized(s, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := AblationDecentralized(p, nil)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "AblationDecentralized", serial, parallel)
}

func TestFig8DeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := Fig8(s)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Fig8(p)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "Fig8", serial, parallel)
}

func TestFig9DeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := Fig9(s)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Fig9(p)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	assertDeepEqualRows(t, "Fig9", serial, parallel)
}

// TestChaosDeterministicAcrossWorkers covers the hardest case: the fault
// scenarios run whole agent clusters with seeded fault injectors, and
// every counter in every row — rounds, messages, retries, discards,
// timeouts — must come out identical whether the (mode, scenario) matrix
// runs serially or 8-wide. The injected faults are seeded per endpoint
// over deterministic send sequences, so even the partition/timeout
// scenario's bookkeeping is reproducible.
//
// The one exception is the reorder scenario's FaultsInjected: a held
// message only counts as reordered if its successor arrives inside the
// hold window, so that counter depends on wall-clock arrival spacing and
// varies with machine load even between two serial runs. It is zeroed on
// both sides before comparing; every other field of every row — including
// the reorder rows' Rounds, Messages, and allocation — must match exactly.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	s, p := serialParallel()
	serial, err := Chaos(s, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Chaos(p, nil)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d serial, %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Scenario == "reorder" {
			a.FaultsInjected, b.FaultsInjected = 0, 0
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("row %d (%s/%s): workers=1 and workers=8 disagree:\n serial:   %+v\n parallel: %+v",
				i, serial[i].Scenario, serial[i].Mode, serial[i], parallel[i])
		}
	}
}
