package experiments

import (
	"fmt"
	"math"

	"filealloc/internal/sim"
	"filealloc/internal/topology"
)

// ValidationRow compares the analytic equation-1 cost against the
// discrete-event simulator for one allocation.
type ValidationRow struct {
	// Label names the allocation.
	Label string
	// X is the allocation.
	X []float64
	// Analytic is the closed-form cost C(x).
	Analytic float64
	// Simulated is the measured cost over the simulated accesses.
	Simulated float64
	// ErrorPct is 100·|Simulated − Analytic|/Analytic.
	ErrorPct float64
}

// Validate runs experiment E7: it simulates the figure-3 system at several
// allocations and reports the relative error of the analytic model. The
// paper relies on the M/M/1 formula for its delay term; this experiment is
// the evidence the formula describes the simulated system.
func Validate(accesses int, seed int64) ([]ValidationRow, error) {
	if accesses <= 0 {
		accesses = 200000
	}
	const n = 4
	ring, err := topology.Ring(n, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: building ring: %w", ErrExperiment, err)
	}
	rates := topology.UniformRates(n, Lambda)
	pair, err := topology.PairCosts(ring, topology.RoundTrip)
	if err != nil {
		return nil, fmt.Errorf("%w: pair costs: %w", ErrExperiment, err)
	}
	model, err := RingSystem(n, 1)
	if err != nil {
		return nil, err
	}
	service := make([]sim.Sampler, n)
	for i := range service {
		service[i] = sim.ExpSampler{Rate: Mu}
	}
	cases := []struct {
		label string
		x     []float64
	}{
		{"uniform optimum", []float64{0.25, 0.25, 0.25, 0.25}},
		{"paper start", []float64{0.8, 0.1, 0.1, 0.0}},
		{"integral", []float64{0, 0, 0, 1}},
		{"skewed", []float64{0.5, 0.3, 0.15, 0.05}},
	}
	rows := make([]ValidationRow, 0, len(cases))
	for i, c := range cases {
		analytic, err := model.Cost(c.x)
		if err != nil {
			return nil, fmt.Errorf("%w: analytic cost of %q: %w", ErrExperiment, c.label, err)
		}
		w := sim.SingleFileWorkload(c.x, rates, pair, service, K)
		w.Accesses = accesses
		w.Seed = seed + int64(i)
		res, err := sim.Run(w)
		if err != nil {
			return nil, fmt.Errorf("%w: simulating %q: %w", ErrExperiment, c.label, err)
		}
		rows = append(rows, ValidationRow{
			Label:     c.label,
			X:         c.x,
			Analytic:  analytic,
			Simulated: res.TotalCost,
			ErrorPct:  100 * math.Abs(res.TotalCost-analytic) / analytic,
		})
	}
	return rows, nil
}
