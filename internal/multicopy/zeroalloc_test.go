package multicopy

import (
	"math"
	"testing"
)

func benchRing(t *testing.T, n int) *Ring {
	t.Helper()
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + float64(i%3)
	}
	r, err := New(Config{
		LinkCosts:    costs,
		Rates:        []float64{1},
		ServiceRates: []float64{2},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingEvalAllocFree pins the scratch-buffer contract: Cost, Utility,
// and Gradient reuse the Ring's internal scratch and perform zero heap
// allocations per evaluation.
func TestRingEvalAllocFree(t *testing.T) {
	r := benchRing(t, 16)
	x := make([]float64, 16)
	for i := range x {
		x[i] = 2.0 / 16
	}
	grad := make([]float64, 16)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := r.Gradient(grad, x); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Gradient allocated %.1f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.Cost(x); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Cost allocated %.1f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.Utility(x); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Utility allocated %.1f objects per call, want 0", allocs)
	}
}

// TestRingScratchReuseMatchesFresh guards against stale-scratch bugs:
// evaluating one Ring at a sequence of very different allocations must
// give the same numbers as a fresh Ring at each point.
func TestRingScratchReuseMatchesFresh(t *testing.T) {
	const n = 8
	points := [][]float64{
		{2, 0, 0, 0, 0, 0, 0, 0},                         // everything at node 0: short demand walks
		{0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25}, // spread: full walks
		{0, 1, 0, 0.5, 0, 0.5, 0, 0},                     // sparse mix
		{0.125, 0.375, 0, 0.625, 0.125, 0.25, 0.5, 0},
	}
	reused := benchRing(t, n)
	gotGrad := make([]float64, n)
	wantGrad := make([]float64, n)
	for pi, x := range points {
		fresh := benchRing(t, n)
		wantCost, err := fresh.Cost(x)
		if err != nil {
			t.Fatalf("point %d: fresh Cost: %v", pi, err)
		}
		gotCost, err := reused.Cost(x)
		if err != nil {
			t.Fatalf("point %d: reused Cost: %v", pi, err)
		}
		if gotCost != wantCost {
			t.Errorf("point %d: reused Cost = %v, fresh = %v", pi, gotCost, wantCost)
		}
		if err := fresh.Gradient(wantGrad, x); err != nil {
			t.Fatalf("point %d: fresh Gradient: %v", pi, err)
		}
		if err := reused.Gradient(gotGrad, x); err != nil {
			t.Fatalf("point %d: reused Gradient: %v", pi, err)
		}
		for i := range gotGrad {
			if gotGrad[i] != wantGrad[i] || math.IsNaN(gotGrad[i]) {
				t.Errorf("point %d: reused grad[%d] = %v, fresh = %v", pi, i, gotGrad[i], wantGrad[i])
			}
		}
	}
}
