package multicopy

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
)

// paperRing reproduces the section 7.2 worked example: a 7-node
// unidirectional ring (paper nodes 1..7 → indices 0..6) with link costs
// ℓ(1→2)=2, ℓ(2→3)=3, ℓ(3→4)=2, ℓ(7→1)=4 (remaining links unit), unit
// per-node access rates, and the allocation placing 0.8 of the file at
// node 4 (index 3). The allocation is reverse-engineered from the paper's
// demand figures: node 7 wants 0.1 from node 4, node 1 wants 0.3, node 2
// wants 0.7, node 3 wants 0.8.
func paperRing(t *testing.T) (*Ring, []float64) {
	t.Helper()
	r, err := New(Config{
		LinkCosts:    []float64{2, 3, 2, 1, 1, 1, 4},
		Rates:        []float64{1, 1, 1, 1, 1, 1, 1},
		ServiceRates: []float64{10},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	x := []float64{0.4, 0.1, 0.2, 0.8, 0.1, 0.2, 0.2} // sums to 2 copies
	return r, x
}

func TestPaperExampleCommCost(t *testing.T) {
	// The paper computes the communication cost of the accesses directed
	// at node 4 as 11·0.1 + 7·0.3 + 5·0.7 + 2·0.8 + 0·0.8 = 8.3.
	r, x := paperRing(t)
	got, err := r.NodeCommCost(x, 3)
	if err != nil {
		t.Fatalf("NodeCommCost: %v", err)
	}
	if math.Abs(got-8.3) > 1e-9 {
		t.Errorf("node 4 communication cost = %g, want 8.3", got)
	}
}

func TestPaperExampleArrivalRate(t *testing.T) {
	// "... with the arrival rate λ = 0.1 + 0.3 + 0.7 + 0.8 + 0.8 = 2.7."
	r, x := paperRing(t)
	arrivals, err := r.ArrivalRates(x)
	if err != nil {
		t.Fatalf("ArrivalRates: %v", err)
	}
	if math.Abs(arrivals[3]-2.7) > 1e-9 {
		t.Errorf("node 4 arrival rate = %g, want 2.7", arrivals[3])
	}
}

func TestPaperExampleDemands(t *testing.T) {
	r, x := paperRing(t)
	a, err := r.Demands(x)
	if err != nil {
		t.Fatalf("Demands: %v", err)
	}
	// Per-reader demand on node 4 (index 3), from the paper.
	wantOn4 := map[int]float64{
		6: 0.1, // node 7
		0: 0.3, // node 1
		1: 0.7, // node 2
		2: 0.8, // node 3
		3: 0.8, // node 4 itself
		4: 0,   // node 5 finds the other copy first
		5: 0,   // node 6 likewise
	}
	for j, want := range wantOn4 {
		if math.Abs(a[j][3]-want) > 1e-9 {
			t.Errorf("a[%d][3] = %g, want %g", j, a[j][3], want)
		}
	}
	// Every reader obtains exactly one full copy.
	for j := range a {
		var total float64
		for i := range a[j] {
			total += a[j][i]
			if a[j][i] < -1e-12 {
				t.Errorf("negative demand a[%d][%d] = %g", j, i, a[j][i])
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("reader %d obtains %g of the file, want 1", j, total)
		}
	}
}

func TestDemandsSelfSufficientNode(t *testing.T) {
	// A node holding a whole copy (or more) reads everything locally.
	r, err := New(Config{
		LinkCosts:    []float64{1, 1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{10},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Demands([]float64{1.7, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 1 {
		t.Errorf("a[0][0] = %g, want 1 (self-sufficient)", a[0][0])
	}
	for i := 1; i < 4; i++ {
		if a[0][i] != 0 {
			t.Errorf("a[0][%d] = %g, want 0", i, a[0][i])
		}
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	// The analytic piecewise gradient must match central finite
	// differences away from kinks. Random interior points on random
	// rings.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		costs := make([]float64, n)
		rates := make([]float64, n)
		for i := range costs {
			costs[i] = 0.5 + rng.Float64()*3
			rates[i] = 0.1 + rng.Float64()*0.4
		}
		m := 1 + float64(rng.Intn(2))
		r, err := New(Config{
			LinkCosts:    costs,
			Rates:        rates,
			ServiceRates: []float64{6 + rng.Float64()*4},
			K:            0.5 + rng.Float64(),
			Copies:       m,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := make([]float64, n)
		var sum float64
		for i := range x {
			x[i] = 0.05 + rng.Float64()
			sum += x[i]
		}
		for i := range x {
			x[i] *= m / sum
		}
		// Skip points too close to a kink (any reader prefix within
		// 1e-4 of a copy boundary) where one-sided derivatives differ.
		if nearKink(x, 1e-4) {
			continue
		}
		grad := make([]float64, n)
		if err := r.Gradient(grad, x); err != nil {
			t.Fatalf("trial %d: Gradient: %v", trial, err)
		}
		h := 1e-7
		for v := 0; v < n; v++ {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[v] += h
			xm[v] -= h
			up, err := r.Utility(xp)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			um, err := r.Utility(xm)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			num := (up - um) / (2 * h)
			if math.Abs(grad[v]-num) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("trial %d: grad[%d] = %g, numeric %g (x=%v)", trial, v, grad[v], num, x)
			}
		}
	}
}

// nearKink reports whether any reader's prefix sum falls within tol of the
// copy boundary 1, where the cost function is non-differentiable.
func nearKink(x []float64, tol float64) bool {
	n := len(x)
	for j := 0; j < n; j++ {
		acc := 0.0
		for t := 0; t < n; t++ {
			acc += x[(j+t)%n]
			if math.Abs(acc-1) < tol {
				return true
			}
			if acc > 1 {
				break
			}
		}
	}
	return false
}

func TestGradientJumpsAtKink(t *testing.T) {
	// The paper: "the marginal utilities will therefore change in jumps,
	// the jumps being whole link costs". Verify a one-sided derivative
	// discontinuity across a copy boundary.
	r, err := New(Config{
		LinkCosts:    []float64{4, 1, 1, 1},
		Rates:        []float64{0.25, 0.25, 0.25, 0.25},
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reader 0's prefix hits exactly 1 after nodes {0,1}: kink.
	atKink := []float64{0.5, 0.5, 0.5, 0.5}
	gLeft := make([]float64, 4)
	gRight := make([]float64, 4)
	eps := 1e-6
	left := []float64{0.5 - eps, 0.5, 0.5, 0.5 + eps}
	right := []float64{0.5 + eps, 0.5, 0.5, 0.5 - eps}
	if err := r.Gradient(gLeft, left); err != nil {
		t.Fatal(err)
	}
	if err := r.Gradient(gRight, right); err != nil {
		t.Fatal(err)
	}
	var maxJump float64
	for i := range gLeft {
		if j := math.Abs(gLeft[i] - gRight[i]); j > maxJump {
			maxJump = j
		}
	}
	if maxJump < 0.1 {
		t.Errorf("max gradient jump across kink = %g; expected a link-cost-sized discontinuity", maxJump)
	}
	// The cost itself remains continuous across the kink.
	cAt, err := r.Cost(atKink)
	if err != nil {
		t.Fatal(err)
	}
	cLeft, err := r.Cost(left)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cAt-cLeft) > 0.01 {
		t.Errorf("cost jumped across kink: %g vs %g", cAt, cLeft)
	}
}

func TestCostUnstable(t *testing.T) {
	r, err := New(Config{
		LinkCosts:    []float64{1, 1, 1},
		Rates:        []float64{2, 2, 2}, // total 6 ≫ μ when concentrated
		ServiceRates: []float64{3},
		K:            1,
		Copies:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Cost([]float64{1, 0, 0}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Cost error = %v, want ErrUnstable", err)
	}
	grad := make([]float64, 3)
	if err := r.Gradient(grad, []float64{1, 0, 0}); !errors.Is(err, ErrUnstable) {
		t.Errorf("Gradient error = %v, want ErrUnstable", err)
	}
}

func TestNewValidation(t *testing.T) {
	good := Config{
		LinkCosts:    []float64{1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{2},
		K:            1,
		Copies:       1,
	}
	mutate := []struct {
		name string
		fn   func(Config) Config
	}{
		{"too few nodes", func(c Config) Config { c.LinkCosts = []float64{1, 1}; return c }},
		{"negative link", func(c Config) Config { c.LinkCosts = []float64{1, -1, 1}; return c }},
		{"copies below 1", func(c Config) Config { c.Copies = 0.5; return c }},
		{"negative k", func(c Config) Config { c.K = -1; return c }},
		{"bad rate count", func(c Config) Config { c.Rates = []float64{1, 1}; return c }},
		{"negative rate", func(c Config) Config { c.Rates = []float64{1, -1, 1}; return c }},
		{"zero rates", func(c Config) Config { c.Rates = []float64{0, 0, 0}; return c }},
		{"bad service count", func(c Config) Config { c.ServiceRates = []float64{1, 1}; return c }},
		{"zero service", func(c Config) Config { c.ServiceRates = []float64{0}; return c }},
	}
	for _, tt := range mutate {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.fn(good)); !errors.Is(err, ErrBadParam) {
				t.Errorf("error = %v, want ErrBadParam", err)
			}
		})
	}
	if _, err := New(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestAllocationValidation(t *testing.T) {
	r, err := New(Config{
		LinkCosts:    []float64{1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{2},
		K:            1,
		Copies:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Demands([]float64{0.5, 0.5}); !errors.Is(err, ErrBadParam) {
		t.Errorf("short allocation: error = %v, want ErrBadParam", err)
	}
	if _, err := r.Demands([]float64{-0.1, 0.6, 0.5}); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative allocation: error = %v, want ErrBadParam", err)
	}
	if _, err := r.Demands([]float64{0.2, 0.2, 0.2}); !errors.Is(err, ErrBadParam) {
		t.Errorf("sub-copy allocation: error = %v, want ErrBadParam", err)
	}
}

func TestSolveImprovesCostAndTracksBest(t *testing.T) {
	// Unit-cost ring (delay-dominated): section 7.3 reports convergence
	// with small oscillations. The solver must improve materially on a
	// skewed start and return the best observed allocation.
	r, err := New(Config{
		LinkCosts:    []float64{1, 1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	init := []float64{1.7, 0.1, 0.1, 0.1}
	startCost, err := r.Cost(init)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve(context.Background(), init, SolveConfig{Alpha: 0.1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Cost >= startCost {
		t.Errorf("solve cost %g did not improve on start %g", res.Cost, startCost)
	}
	// Best-observed cost must be no worse than the final iterate's.
	finalCost, err := r.Cost(res.FinalX)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > finalCost+1e-12 {
		t.Errorf("best cost %g worse than final %g", res.Cost, finalCost)
	}
	// Feasibility: copies conserved.
	var sum float64
	for _, v := range res.X {
		sum += v
	}
	if math.Abs(sum-2) > 1e-6 {
		t.Errorf("allocation sums to %g, want 2", sum)
	}
	// By symmetry the optimum spreads evenly; the solver should get
	// close to cost at the uniform point.
	uniformCost, err := r.Cost(r.SpreadEvenly())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > uniformCost*1.05 {
		t.Errorf("solve cost %g far above symmetric optimum %g", res.Cost, uniformCost)
	}
}

func TestSolveOscillatoryCommDominatedRing(t *testing.T) {
	// Link costs (4,1,1,1): communication dominates and the profile
	// oscillates (figure 8). The solver must still terminate and return
	// a cost no worse than the starting point.
	r, err := New(Config{
		LinkCosts:    []float64{4, 1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	init := []float64{1.4, 0.2, 0.2, 0.2}
	startCost, err := r.Cost(init)
	if err != nil {
		t.Fatal(err)
	}
	var costs []float64
	res, err := r.Solve(context.Background(), init, SolveConfig{
		Alpha:       0.1,
		OnIteration: func(it core.Iteration) { costs = append(costs, -it.Utility) },
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Cost > startCost {
		t.Errorf("best cost %g worse than start %g", res.Cost, startCost)
	}
	if len(costs) == 0 {
		t.Fatal("no iterations observed")
	}
}

func TestSpreadEvenly(t *testing.T) {
	r, err := New(Config{
		LinkCosts:    []float64{1, 1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{2},
		K:            1,
		Copies:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := r.SpreadEvenly()
	for _, v := range x {
		if v != 0.75 {
			t.Errorf("entry = %g, want 0.75", v)
		}
	}
}
