package multicopy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"filealloc/internal/core"
)

// BiRing is a step toward the "less restrictive topology" the paper's
// section 8.2 leaves open ("the virtual ring structure may be construed
// as too severe a restriction to impose on an arbitrary network. It would
// be worthwhile to define a less restrictive topology and yet preserve
// the tractability of the current model").
//
// The copies keep the section 7.2 contiguous layout, but links carry
// traffic in both directions and every reader fetches each piece of
// content from its NEAREST holder — distance being the cheaper of the
// clockwise and counter-clockwise routes. The unidirectional model's
// forward walk is exactly nearest-holder under one-way distances, so this
// is the natural relaxation; tractability survives because the contiguous
// layout keeps the holder set of any content position computable in
// O(n).
//
// The objective remains piecewise smooth with jumps at layout boundaries;
// gradients are computed by central finite differences (the analytic
// piecewise form buys little here because nearest-holder assignments
// reshuffle between kinks).
type BiRing struct {
	linkCosts []float64   // linkCosts[i]: cost of the (bidirectional) link between i and i+1
	dist      [][]float64 // min(cw, ccw) distance matrix
	rates     []float64
	service   []float64
	lambda    float64
	k         float64
	copies    float64
}

var _ core.Objective = (*BiRing)(nil)

// NewBidirectional validates the configuration and builds the model. The
// Config is interpreted as for New, except links work in both directions
// at the same cost.
func NewBidirectional(cfg Config) (*BiRing, error) {
	base, err := New(cfg) // reuse validation
	if err != nil {
		return nil, err
	}
	n := base.Dim()
	r := &BiRing{
		linkCosts: base.linkCosts,
		rates:     base.rates,
		service:   base.service,
		lambda:    base.lambda,
		k:         base.k,
		copies:    base.copies,
	}
	var total float64
	for _, c := range r.linkCosts {
		total += c
	}
	r.dist = make([][]float64, n)
	for j := 0; j < n; j++ {
		r.dist[j] = make([]float64, n)
		forward := 0.0
		for step := 1; step < n; step++ {
			forward += r.linkCosts[(j+step-1)%n]
			i := (j + step) % n
			r.dist[j][i] = math.Min(forward, total-forward)
		}
	}
	return r, nil
}

// Dim returns the node count.
func (r *BiRing) Dim() int { return len(r.linkCosts) }

// Copies returns m.
func (r *BiRing) Copies() float64 { return r.copies }

// Demands returns a[j][i]: the share of the file reader j fetches from
// node i under nearest-holder assignment. Content is cut at every layout
// boundary (mod 1); each sliver goes to the holder with the smallest
// bidirectional distance from j (ties to the lower node index).
func (r *BiRing) Demands(x []float64) ([][]float64, error) {
	n := r.Dim()
	if err := (&Ring{linkCosts: r.linkCosts, rates: r.rates, service: r.service,
		lambda: r.lambda, k: r.k, copies: r.copies}).checkAllocation(x); err != nil {
		return nil, err
	}
	// Layout segments in ring order starting at node 0, folded into
	// content space [0, 1).
	type seg struct {
		node       int
		start, end float64
	}
	var segs []seg
	pos := 0.0
	for i, xi := range x {
		if xi > 0 {
			segs = append(segs, seg{node: i, start: pos, end: pos + xi})
		}
		pos += xi
	}
	cuts := []float64{0, 1}
	for _, s := range segs {
		cuts = append(cuts, math.Mod(s.start, 1), math.Mod(s.end, 1))
	}
	sort.Float64s(cuts)

	covers := func(s seg, u float64) bool {
		for base := math.Floor(s.start); base <= s.end; base++ {
			if s.start <= base+u && base+u < s.end {
				return true
			}
		}
		return false
	}
	a := make([][]float64, n)
	for j := 0; j < n; j++ {
		a[j] = make([]float64, n)
		for c := 0; c+1 < len(cuts); c++ {
			lo, hi := cuts[c], cuts[c+1]
			width := hi - lo
			if width <= 1e-15 {
				continue
			}
			mid := lo + width/2
			best := -1
			for _, s := range segs {
				if !covers(s, mid) {
					continue
				}
				if best < 0 || r.dist[j][s.node] < r.dist[j][best] {
					best = s.node
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("%w: content %v has no holder", ErrBadParam, mid)
			}
			a[j][best] += width
		}
	}
	return a, nil
}

// Cost returns the expected cost of one access, as for Ring.
func (r *BiRing) Cost(x []float64) (float64, error) {
	a, err := r.Demands(x)
	if err != nil {
		return 0, err
	}
	n := r.Dim()
	arrivals := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			arrivals[i] += r.rates[j] * a[j][i]
		}
	}
	var total float64
	for i, lam := range arrivals {
		if lam == 0 {
			continue
		}
		room := r.service[i] - lam
		if room <= 0 {
			return 0, fmt.Errorf("%w: node %d has μ=%v, Λ=%v", ErrUnstable, i, r.service[i], lam)
		}
		for j := 0; j < n; j++ {
			if a[j][i] > 0 {
				total += r.rates[j] * a[j][i] * (r.dist[j][i] + r.k/room)
			}
		}
	}
	return total / r.lambda, nil
}

// Utility returns −Cost(x).
func (r *BiRing) Utility(x []float64) (float64, error) {
	c, err := r.Cost(x)
	if err != nil {
		return 0, err
	}
	return -c, nil
}

// Gradient estimates the marginal utilities by central finite differences
// (h = 1e-7), projected to keep the perturbed points inside the feasible
// cone. At layout kinks this returns the average of the one-sided
// derivatives, which is what the oscillation-tolerant solver expects.
func (r *BiRing) Gradient(grad, x []float64) error {
	n := r.Dim()
	if len(grad) != n || len(x) != n {
		return fmt.Errorf("%w: gradient/allocation size mismatch", ErrBadParam)
	}
	const h = 1e-7
	for v := 0; v < n; v++ {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[v] += h
		hm := h
		if xm[v] < h {
			hm = xm[v] // one-sided at the boundary
		}
		xm[v] -= hm
		up, err := r.Utility(xp)
		if err != nil {
			return err
		}
		um, err := r.Utility(xm)
		if err != nil {
			return err
		}
		grad[v] = (up - um) / (h + hm)
	}
	return nil
}

// Solve runs the oscillation-tolerant solver on the bidirectional model.
func (r *BiRing) Solve(ctx context.Context, init []float64, cfg SolveConfig) (SolveResult, error) {
	return solveObjective(ctx, r, init, cfg)
}
