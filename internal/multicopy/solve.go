package multicopy

import (
	"context"
	"fmt"
	"math"

	"filealloc/internal/core"
)

// SolveConfig tunes the oscillation-tolerant solver of section 7.3.
type SolveConfig struct {
	// Alpha is the initial stepsize (default 0.1, the paper's figure-9
	// setting).
	Alpha float64
	// Epsilon is the marginal-utility spread threshold; with a
	// discontinuous objective it may never be met, in which case the
	// decay/cost-delta machinery terminates the run (default 1e-3).
	Epsilon float64
	// DecayPatience is the number of cost increases tolerated before the
	// stepsize is decayed (default 3: "the value of the stepsize
	// parameter α is decreased by a fixed amount after a certain
	// predetermined number of iterations").
	DecayPatience int
	// DecayFactor multiplies α at each decay (default 0.7).
	DecayFactor float64
	// MinAlpha floors the decay (default 1e-4).
	MinAlpha float64
	// CostDelta stops the run when the cost change between successive
	// iterations falls below it (default 1e-9).
	CostDelta float64
	// MaxIterations bounds the run (default 5000).
	MaxIterations int
	// OnIteration, when set, observes every iteration.
	OnIteration func(core.Iteration)
	// Scratch, when non-nil, supplies the solver's working buffers so
	// repeated solves (replication-degree sweeps, figure-9 grids) reuse
	// one set of allocations. The result's X/FinalX are always private
	// copies, so retaining them is safe regardless.
	Scratch *core.Scratch
}

func (c *SolveConfig) fill() {
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.DecayPatience == 0 {
		c.DecayPatience = 3
	}
	if c.DecayFactor == 0 {
		c.DecayFactor = 0.7
	}
	if c.MinAlpha == 0 {
		c.MinAlpha = 1e-4
	}
	if c.CostDelta == 0 {
		c.CostDelta = 1e-9
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 5000
	}
}

// SolveResult reports the oscillation-tolerant solve outcome.
type SolveResult struct {
	// X is the best (lowest-cost) allocation observed during the run —
	// the paper's fallback halting rule of "observing the oscillations
	// over a period of time and halting when the cost is at the lowest
	// observed point".
	X []float64
	// Cost is C(X).
	Cost float64
	// FinalX is the allocation at the last iteration (may be worse than
	// X when the run ended mid-oscillation).
	FinalX []float64
	// Iterations counts re-allocation steps performed.
	Iterations int
	// Reason is the solver's stop reason.
	Reason core.StopReason
}

// Solve runs the decentralized algorithm on the ring with section 7.3's
// oscillation handling: stepsize decay on repeated cost increases, a
// cost-delta termination rule, and lowest-observed-cost tracking.
func (r *Ring) Solve(ctx context.Context, init []float64, cfg SolveConfig) (SolveResult, error) {
	return solveObjective(ctx, r, init, cfg)
}

// solveObjective is the oscillation-tolerant driver shared by the ring
// variants.
func solveObjective(ctx context.Context, obj core.Objective, init []float64, cfg SolveConfig) (SolveResult, error) {
	cfg.fill()
	bestCost := math.Inf(1)
	var bestX []float64
	var finalX []float64
	observe := func(it core.Iteration) {
		cost := -it.Utility
		if cost < bestCost {
			bestCost = cost
			bestX = append(bestX[:0], it.X...)
		}
		finalX = append(finalX[:0], it.X...)
		if cfg.OnIteration != nil {
			cfg.OnIteration(it)
		}
	}
	alloc, err := core.NewAllocator(obj,
		core.WithAlpha(cfg.Alpha),
		core.WithEpsilon(cfg.Epsilon),
		core.WithMaxIterations(cfg.MaxIterations),
		core.WithTrace(observe),
		core.WithAdaptiveAlpha(core.AdaptAlphaConfig{
			Patience:  cfg.DecayPatience,
			Factor:    cfg.DecayFactor,
			MinAlpha:  cfg.MinAlpha,
			CostDelta: cfg.CostDelta,
		}),
	)
	if err != nil {
		return SolveResult{}, fmt.Errorf("multicopy: configuring solver: %w", err)
	}
	res, err := alloc.RunWithScratch(ctx, init, cfg.Scratch)
	if err != nil {
		return SolveResult{}, fmt.Errorf("multicopy: solving ring allocation: %w", err)
	}
	if bestX == nil {
		// No trace fired (converged without iterating); fall back to
		// the solver's result.
		bestX = append([]float64(nil), res.X...)
		u, err := obj.Utility(bestX)
		if err != nil {
			return SolveResult{}, err
		}
		bestCost = -u
		finalX = append([]float64(nil), res.X...)
	}
	return SolveResult{
		X:          bestX,
		Cost:       bestCost,
		FinalX:     finalX,
		Iterations: res.Iterations,
		Reason:     res.Reason,
	}, nil
}

// SpreadEvenly returns the allocation that spreads m copies uniformly,
// x_i = m/n.
func (r *Ring) SpreadEvenly() []float64 {
	n := r.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = r.copies / float64(n)
	}
	return x
}
