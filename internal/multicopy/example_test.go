package multicopy_test

import (
	"context"
	"fmt"
	"log"

	"filealloc/internal/multicopy"
)

// ExampleRing_Solve places two copies of a file on a 4-node virtual ring
// using the section 7.3 oscillation-tolerant solver. Counter to the
// single-copy intuition, the best observed point is NOT the uniform
// spread: alternating fragment sizes shorten the average forward walk
// slightly (1.304 vs 1.307 at uniform) — the kind of structure the
// discontinuous multi-copy objective hides.
func ExampleRing_Solve() {
	ring, err := multicopy.New(multicopy.Config{
		LinkCosts:    []float64{1, 1, 1, 1},
		Rates:        []float64{1}, // λ = 1 split uniformly
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ring.Solve(context.Background(),
		[]float64{1.7, 0.1, 0.1, 0.1}, // both copies piled near node 0
		multicopy.SolveConfig{Alpha: 0.1, CostDelta: 1e-7},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best allocation: %.2f (cost %.3f)\n", res.X, res.Cost)
	// Output:
	// best allocation: [0.57 0.43 0.57 0.43] (cost 1.304)
}

// ExampleRing_Demands shows who reads what: each node takes its own
// fragment first and walks forward until it has seen one full copy.
func ExampleRing_Demands() {
	ring, err := multicopy.New(multicopy.Config{
		LinkCosts:    []float64{1, 1, 1, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{10},
		K:            1,
		Copies:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := ring.Demands([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0 reads: %.2f\n", a[0])
	// Output:
	// node 0 reads: [0.50 0.50 0.00 0.00]
}
