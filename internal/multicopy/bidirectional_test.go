package multicopy

import (
	"context"
	"math"
	"testing"
)

func biConfig() Config {
	return Config{
		LinkCosts:    []float64{1, 2, 1, 3, 1},
		Rates:        []float64{1},
		ServiceRates: []float64{1.5},
		K:            1,
		Copies:       2,
	}
}

func TestBidirectionalDemandsSumToOneCopy(t *testing.T) {
	r, err := NewBidirectional(biConfig())
	if err != nil {
		t.Fatalf("NewBidirectional: %v", err)
	}
	x := []float64{0.6, 0.4, 0.3, 0.5, 0.2}
	a, err := r.Demands(x)
	if err != nil {
		t.Fatalf("Demands: %v", err)
	}
	for j := range a {
		var total float64
		for i := range a[j] {
			if a[j][i] < -1e-12 {
				t.Errorf("negative demand a[%d][%d] = %g", j, i, a[j][i])
			}
			total += a[j][i]
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("reader %d obtains %g of the file", j, total)
		}
	}
}

func TestBidirectionalNeverCostsMoreThanUnidirectional(t *testing.T) {
	// Same layout, strictly more routing freedom: the bidirectional
	// nearest-holder cost is ≤ the forward-walk cost at every
	// allocation. (Communication strictly; delay can shift load, so we
	// compare the full cost at identical allocations where the claim
	// holds because each reader's per-sliver distance weakly improves
	// and arrivals merely permute toward closer holders.)
	// Compare the communication parts via k=0 variants of the models
	// (the delay term can shift either way as load migrates to closer
	// holders, but pure routing cost is pointwise no worse).
	cfg := biConfig()
	cfg.K = 0
	uni0, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bi0, err := NewBidirectional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{
		{0.4, 0.4, 0.4, 0.4, 0.4},
		{1, 0.25, 0.25, 0.25, 0.25},
		{0.6, 0.4, 0.3, 0.5, 0.2},
	} {
		cu0, err := uni0.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		cb0, err := bi0.Cost(x)
		if err != nil {
			t.Fatal(err)
		}
		if cb0 > cu0+1e-9 {
			t.Errorf("x=%v: bidirectional comm cost %g exceeds unidirectional %g", x, cb0, cu0)
		}
	}
}

func TestBidirectionalSelfSufficiency(t *testing.T) {
	r, err := NewBidirectional(biConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Demands([]float64{1.2, 0.2, 0.2, 0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[0][0]-1) > 1e-9 {
		t.Errorf("node 0 holds a full copy but reads %g locally", a[0][0])
	}
}

func TestBidirectionalGradientPointsDownhill(t *testing.T) {
	// The FD gradient must be a descent direction for the cost: moving
	// along the projected gradient from a skewed start reduces cost.
	r, err := NewBidirectional(biConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.4, 0.15, 0.15, 0.15, 0.15}
	grad := make([]float64, 5)
	if err := r.Gradient(grad, x); err != nil {
		t.Fatalf("Gradient: %v", err)
	}
	var avg float64
	for _, g := range grad {
		avg += g
	}
	avg /= 5
	step := make([]float64, 5)
	for i := range step {
		step[i] = 0.01 * (grad[i] - avg)
	}
	before, err := r.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	after := make([]float64, 5)
	for i := range after {
		after[i] = x[i] + step[i]
		if after[i] < 0 {
			after[i] = 0
		}
	}
	cAfter, err := r.Cost(after)
	if err != nil {
		t.Fatal(err)
	}
	if cAfter >= before {
		t.Errorf("gradient step did not reduce cost: %g -> %g", before, cAfter)
	}
}

func TestBidirectionalSolveImproves(t *testing.T) {
	r, err := NewBidirectional(biConfig())
	if err != nil {
		t.Fatal(err)
	}
	init := []float64{2, 0, 0, 0, 0}
	start, err := r.Cost(init)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve(context.Background(), init, SolveConfig{Alpha: 0.1, CostDelta: 1e-6})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Cost >= start {
		t.Errorf("solve cost %g did not improve on %g", res.Cost, start)
	}
	var sum float64
	for _, v := range res.X {
		sum += v
	}
	if math.Abs(sum-2) > 1e-6 {
		t.Errorf("copies not conserved: %g", sum)
	}
	// And the bidirectional optimum beats the unidirectional optimum on
	// this asymmetric ring (shorter routes available).
	uni, err := New(biConfig())
	if err != nil {
		t.Fatal(err)
	}
	uniRes, err := uni.Solve(context.Background(), init, SolveConfig{Alpha: 0.1, CostDelta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > uniRes.Cost+1e-6 {
		t.Errorf("bidirectional best %g worse than unidirectional %g", res.Cost, uniRes.Cost)
	}
}
