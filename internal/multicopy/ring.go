// Package multicopy implements the paper's section 7 extension: allocating
// m copies of a file laid out contiguously around a virtual ring. Copies
// are placed end-to-end in ring order, so from any node's viewpoint the
// file is contiguous: a reader takes its own fragment first and walks
// forward around the ring collecting fragments until it has seen the whole
// file.
//
// The resulting cost function is piecewise smooth: as the allocation
// changes, whole link costs enter or leave a reader's path, so the marginal
// utilities "change in jumps, the jumps being whole link costs". The
// gradient implemented here is the piecewise-analytic one (exact between
// kinks, one-sided at them); the iterative algorithm consequently
// oscillates near the optimum, which section 7.3 handles by decaying the
// stepsize — see Solve.
package multicopy

import (
	"errors"
	"fmt"
	"math"

	"filealloc/internal/core"
)

// Sentinel errors.
var (
	// ErrBadParam reports invalid ring parameters.
	ErrBadParam = errors.New("multicopy: invalid parameter")
	// ErrUnstable reports an allocation that saturates a node's queue.
	ErrUnstable = errors.New("multicopy: queue unstable at allocation")
)

// Ring is the virtual-ring cost model. Node i forwards file accesses to
// node (i+1) mod n over a link of cost linkCosts[i]; m copies of the file
// circulate the ring end-to-end.
//
// Cost, Utility, and Gradient reuse internal scratch buffers so the
// solver's inner loop runs allocation-free; consequently a single Ring
// must not be evaluated from multiple goroutines at once. Concurrent
// sweeps construct one Ring per worker item (they are cheap: O(n²) for
// the distance table).
type Ring struct {
	linkCosts []float64
	dist      [][]float64 // dist[j][i]: forward distance j -> i
	rates     []float64   // λ_j
	service   []float64   // μ_i
	lambda    float64     // Σ λ_j
	k         float64
	copies    float64 // m

	// Evaluation scratch, sized at construction and reused by Cost and
	// Gradient (see the concurrency note above).
	scrDemands  [][]float64
	scrArrivals []float64
	scrPerNode  []float64 // delay (Cost) or marginal node cost (Gradient)
	scrDiffs    []float64
}

var (
	_ core.Objective = (*Ring)(nil)
)

// Config assembles a Ring.
type Config struct {
	// LinkCosts[i] is the cost of the directed link i -> (i+1) mod n;
	// its length fixes the node count (≥ 3).
	LinkCosts []float64
	// Rates holds λ_j per node; pass a single element for uniform rates
	// whose SUM equals that value (matching the paper's λ = 1 split
	// over the ring).
	Rates []float64
	// ServiceRates holds μ_i per node, or a single homogeneous value.
	ServiceRates []float64
	// K scales delay against communication cost.
	K float64
	// Copies is m ≥ 1, the number of circulating copies.
	Copies float64
}

// New validates the configuration and builds the model.
func New(cfg Config) (*Ring, error) {
	n := len(cfg.LinkCosts)
	if n < 3 {
		return nil, fmt.Errorf("%w: ring needs at least 3 nodes, got %d", ErrBadParam, n)
	}
	for i, c := range cfg.LinkCosts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: link cost %d = %v", ErrBadParam, i, c)
		}
	}
	if cfg.Copies < 1 || math.IsNaN(cfg.Copies) || math.IsInf(cfg.Copies, 0) {
		return nil, fmt.Errorf("%w: copies m = %v, need m ≥ 1", ErrBadParam, cfg.Copies)
	}
	if cfg.K < 0 || math.IsNaN(cfg.K) {
		return nil, fmt.Errorf("%w: k = %v", ErrBadParam, cfg.K)
	}
	var rates []float64
	switch len(cfg.Rates) {
	case 1:
		rates = make([]float64, n)
		for i := range rates {
			rates[i] = cfg.Rates[0] / float64(n)
		}
	case n:
		rates = append([]float64(nil), cfg.Rates...)
	default:
		return nil, fmt.Errorf("%w: %d rates for %d nodes", ErrBadParam, len(cfg.Rates), n)
	}
	var lambda float64
	for j, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: rate λ_%d = %v", ErrBadParam, j, r)
		}
		lambda += r
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("%w: total access rate must be positive", ErrBadParam)
	}
	var service []float64
	switch len(cfg.ServiceRates) {
	case 1:
		service = make([]float64, n)
		for i := range service {
			service[i] = cfg.ServiceRates[0]
		}
	case n:
		service = append([]float64(nil), cfg.ServiceRates...)
	default:
		return nil, fmt.Errorf("%w: %d service rates for %d nodes", ErrBadParam, len(cfg.ServiceRates), n)
	}
	for i, mu := range service {
		if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
			return nil, fmt.Errorf("%w: service rate μ_%d = %v", ErrBadParam, i, mu)
		}
	}
	r := &Ring{
		linkCosts: append([]float64(nil), cfg.LinkCosts...),
		rates:     rates,
		service:   service,
		lambda:    lambda,
		k:         cfg.K,
		copies:    cfg.Copies,
	}
	r.dist = make([][]float64, n)
	for j := 0; j < n; j++ {
		r.dist[j] = make([]float64, n)
		acc := 0.0
		for step := 1; step < n; step++ {
			acc += r.linkCosts[(j+step-1)%n]
			r.dist[j][(j+step)%n] = acc
		}
	}
	r.scrDemands = make([][]float64, n)
	for j := range r.scrDemands {
		r.scrDemands[j] = make([]float64, n)
	}
	r.scrArrivals = make([]float64, n)
	r.scrPerNode = make([]float64, n)
	r.scrDiffs = make([]float64, n)
	return r, nil
}

// Dim returns the node count.
func (r *Ring) Dim() int { return len(r.linkCosts) }

// Copies returns m.
func (r *Ring) Copies() float64 { return r.copies }

// Lambda returns the total access rate.
func (r *Ring) Lambda() float64 { return r.lambda }

// Demands returns the matrix a[j][i]: the fraction of the file reader j
// obtains from node i. Reader j takes its own fragment first, then walks
// forward around the ring until it has accumulated one full copy; the
// fragment of node (j+t) serves the file sub-interval
// [min(1, P_{t−1}), min(1, P_t)) where P_t is the prefix sum of fragments
// in walk order.
func (r *Ring) Demands(x []float64) ([][]float64, error) {
	n := r.Dim()
	a := make([][]float64, n)
	for j := range a {
		a[j] = make([]float64, n)
	}
	if err := r.demandsInto(a, x); err != nil {
		return nil, err
	}
	return a, nil
}

// demandsInto fills the caller-owned demand matrix a (n rows of n
// entries) with the Demands result.
//
//fap:zeroalloc
func (r *Ring) demandsInto(a [][]float64, x []float64) error {
	n := r.Dim()
	if err := r.checkAllocation(x); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		row := a[j]
		for i := range row {
			row[i] = 0
		}
		prev := 0.0
		acc := 0.0
		for t := 0; t < n; t++ {
			i := (j + t) % n
			acc += x[i]
			cur := math.Min(1, acc)
			row[i] = cur - prev
			prev = cur
			if cur >= 1 {
				break
			}
		}
	}
	return nil
}

//fap:zeroalloc
func (r *Ring) checkAllocation(x []float64) error {
	n := r.Dim()
	if len(x) != n {
		return fmt.Errorf("%w: allocation has %d entries for %d nodes", ErrBadParam, len(x), n)
	}
	var sum float64
	for i, v := range x {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: x[%d] = %v", ErrBadParam, i, v)
		}
		sum += v
	}
	if sum < 1-1e-9 {
		return fmt.Errorf("%w: allocation sums to %v < 1 full copy", ErrBadParam, sum)
	}
	return nil
}

// ArrivalRates returns Λ_i = Σ_j λ_j·a_{j,i}, the access traffic directed
// at each node (a node's own accesses to its local fragment included, as in
// the paper's worked example).
func (r *Ring) ArrivalRates(x []float64) ([]float64, error) {
	a, err := r.Demands(x)
	if err != nil {
		return nil, err
	}
	n := r.Dim()
	arrivals := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			arrivals[i] += r.rates[j] * a[j][i]
		}
	}
	return arrivals, nil
}

// NodeCommCost returns the raw (rate-weighted, unnormalized) communication
// cost of the accesses directed at node i, Σ_j λ_j·a_{j,i}·d(j→i): the
// quantity the paper's section 7.2 example evaluates to 8.3 for node 4.
func (r *Ring) NodeCommCost(x []float64, i int) (float64, error) {
	a, err := r.Demands(x)
	if err != nil {
		return 0, err
	}
	var sum float64
	for j := range a {
		sum += r.rates[j] * a[j][i] * r.dist[j][i]
	}
	return sum, nil
}

// Cost returns the expected cost of one access:
//
//	C(x) = (1/λ)·Σ_j λ_j·Σ_i a_{j,i}·(d(j→i) + k·T_i),   T_i = 1/(μ_i − Λ_i).
//
//fap:zeroalloc
func (r *Ring) Cost(x []float64) (float64, error) {
	a := r.scrDemands
	if err := r.demandsInto(a, x); err != nil {
		return 0, err
	}
	n := r.Dim()
	arrivals := r.scrArrivals
	for i := range arrivals {
		arrivals[i] = 0
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			arrivals[i] += r.rates[j] * a[j][i]
		}
	}
	delay := r.scrPerNode
	for i, lam := range arrivals {
		delay[i] = 0
		if lam == 0 {
			continue
		}
		room := r.service[i] - lam
		if room <= 0 {
			return 0, fmt.Errorf("%w: node %d has μ=%v, Λ=%v", ErrUnstable, i, r.service[i], lam)
		}
		delay[i] = 1 / room
	}
	var total float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if a[j][i] == 0 {
				continue
			}
			total += r.rates[j] * a[j][i] * (r.dist[j][i] + r.k*delay[i])
		}
	}
	return total / r.lambda, nil
}

// Utility returns −Cost(x).
//
//fap:zeroalloc
func (r *Ring) Utility(x []float64) (float64, error) {
	c, err := r.Cost(x)
	if err != nil {
		return 0, err
	}
	return -c, nil
}

// Gradient fills the piecewise-analytic marginal utilities. Between kinks
// (prefix sums crossing a whole copy) the cost is smooth and the gradient
// exact; at a kink the one-sided derivative with the strict P < 1
// convention is used, matching the paper's observation that the
// derivatives jump by whole link costs there.
//
// Derivation: with demands a_{j,t} = clip(P_{j,t}) − clip(P_{j,t−1}) and
// the delay cost written as k·Σ_i Λ_i/(μ_i − Λ_i), the chain rule through
// both the communication term and Λ gives
//
//	λ·∂C/∂x_v = Σ_j λ_j · Σ_{t ≤ n−2 : P_{j,t} < 1} (c_{j,t} − c_{j,t+1}) · 1[v ∈ prefix_{j,t}]
//
// with the marginal node cost c_{j,t} = d(j→j+t) + k·μ/(μ − Λ_{j+t})².
// (∂(Λ·T)/∂Λ = μ/(μ−Λ)² folds the reader's own delay and the congestion
// externality into one term.) For each reader the prefix membership
// telescopes into a suffix sum, evaluated below in O(n) per reader.
//
//fap:zeroalloc
func (r *Ring) Gradient(grad, x []float64) error {
	n := r.Dim()
	if len(grad) != n {
		return fmt.Errorf("%w: gradient has %d entries for %d nodes", ErrBadParam, len(grad), n)
	}
	a := r.scrDemands
	if err := r.demandsInto(a, x); err != nil {
		return err
	}
	arrivals := r.scrArrivals
	for i := range arrivals {
		arrivals[i] = 0
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			arrivals[i] += r.rates[j] * a[j][i]
		}
	}
	// margNode[i] = k·∂(Λ_i·T_i)/∂Λ_i = k·μ_i/(μ_i − Λ_i)².
	margNode := r.scrPerNode
	for i, lam := range arrivals {
		room := r.service[i] - lam
		if room <= 0 {
			return fmt.Errorf("%w: node %d has μ=%v, Λ=%v", ErrUnstable, i, r.service[i], lam)
		}
		margNode[i] = r.k * r.service[i] / (room * room)
	}

	for i := range grad {
		grad[i] = 0
	}
	diffs := r.scrDiffs
	for j := 0; j < n; j++ {
		if r.rates[j] == 0 {
			continue
		}
		// Collect (c_t − c_{t+1}) for every live boundary t (P_t < 1).
		stop := 0
		acc := 0.0
		for t := 0; t < n-1; t++ {
			iCur := (j + t) % n
			iNext := (j + t + 1) % n
			acc += x[iCur]
			if acc >= 1 {
				break
			}
			diffs[t] = (r.dist[j][iCur] + margNode[iCur]) - (r.dist[j][iNext] + margNode[iNext])
			stop = t + 1
		}
		// Variable at walk position u receives Σ_{t ≥ u} diffs[t]: a
		// suffix sum.
		w := r.rates[j] / r.lambda
		suffix := 0.0
		for u := stop - 1; u >= 0; u-- {
			suffix += diffs[u]
			grad[(j+u)%n] -= w * suffix // utility gradient = −∂C/∂x
		}
	}
	return nil
}
