package core_test

// Regression tests for domain-overshoot recovery: a dynamically sized
// step can land the iterate outside the cost model's domain entirely
// (λ·xᵢ ≥ μᵢ drives a queue unstable, so Utility errors rather than
// returning a low number). Both loops must treat that exactly like a
// utility decrease — backtrack from the saved iterate — instead of
// aborting the solve. Before the fix the warm path surfaced
// "core: warm step N: costmodel: queue unstable at allocation" and a
// live re-plan under a demand shift could never adopt a plan.

import (
	"context"
	"math"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

// overshootInstance is a 5-node system whose demand exceeds any single
// node's capacity, with access costs that pull most mass onto node 0:
// the utility-maximizing trajectory presses against node 0's stability
// boundary, and the Theorem-2 stepsize (evaluated at the pre-step
// point, where curvature is still mild) overshoots straight past it.
func overshootInstance(t *testing.T) *costmodel.SingleFile {
	t.Helper()
	acc := []float64{0.1, 0.5, 2, 2, 2}
	svc := []float64{39.6, 39.6, 39.6, 39.6, 39.6}
	m, err := costmodel.NewSingleFile(acc, svc, 40, 1)
	if err != nil {
		t.Fatalf("NewSingleFile: %v", err)
	}
	return m
}

func overshootAllocator(t *testing.T, m *costmodel.SingleFile) *core.Allocator {
	t.Helper()
	a, err := core.NewAllocator(m,
		core.WithDynamicAlpha(0.9),
		core.WithEpsilon(1e-9),
		core.WithKKTCheck())
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	return a
}

// requireStable asserts the returned allocation is inside the model's
// domain: a solve that recovered from an overshoot must hand back a
// feasible, queue-stable plan, never the overshot iterate.
func requireStable(t *testing.T, x []float64, lambda, mu float64) {
	t.Helper()
	sum := 0.0
	for i, xi := range x {
		if xi < 0 {
			t.Errorf("x[%d] = %v is negative", i, xi)
		}
		if lambda*xi >= mu {
			t.Errorf("x[%d] = %v puts λ·x = %v at or past μ = %v", i, xi, lambda*xi, mu)
		}
		sum += xi
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σx = %v, want 1", sum)
	}
}

// TestWarmSolveRecoversFromDomainOvershoot is the live re-plan scenario:
// warm-start from the stale (uniform-demand) optimum after the access
// costs shifted to favor node 0. The incremental trajectory overshoots
// node 0 into queue instability mid-budget; the solve must backtrack or
// escalate to the cold fallback and still land on a stable optimum.
func TestWarmSolveRecoversFromDomainOvershoot(t *testing.T) {
	m := overshootInstance(t)
	warm, err := core.NewWarmSolver(overshootAllocator(t, m), core.WarmConfig{MaxSteps: 32})
	if err != nil {
		t.Fatalf("NewWarmSolver: %v", err)
	}
	stale := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	res, _, err := warm.SolveWarm(context.Background(), stale, core.NewScratch())
	if err != nil {
		t.Fatalf("SolveWarm: %v", err)
	}
	if !res.Converged {
		t.Fatalf("warm solve did not converge: %+v", res)
	}
	requireStable(t, res.X, 40, 39.6)
	if res.X[0] < res.X[1] || res.X[1] < res.X[2] {
		t.Errorf("allocation %v does not favor the cheap nodes", res.X)
	}
}

// TestColdSolveRecoversFromDomainOvershoot pins the same guard in the
// cold loop, which the warm path escalates to.
func TestColdSolveRecoversFromDomainOvershoot(t *testing.T) {
	m := overshootInstance(t)
	res, err := overshootAllocator(t, m).Run(context.Background(), []float64{0.2, 0.2, 0.2, 0.2, 0.2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("cold solve did not converge: %+v", res)
	}
	requireStable(t, res.X, 40, 39.6)
}
