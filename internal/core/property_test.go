package core_test

// Property tests for the two theorems the whole mechanism rests on,
// checked after EVERY iteration of 1000 seeded random systems rather than
// only at convergence: Theorem 1 (the step construction conserves Σx = 1
// and non-negativity, so every iterate is a feasible allocation) and
// Theorem 2 (under the derived stepsize bound, evaluated dynamically each
// iteration, the utility never decreases). The package is core_test
// because the instances are real M/M/1 cost models from costmodel, which
// itself imports core.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"filealloc/internal/core"
	"filealloc/internal/costmodel"
)

// propertyInstance is one randomly drawn single-file system plus a
// feasible starting allocation.
type propertyInstance struct {
	model *costmodel.SingleFile
	x0    []float64
}

// randomInstance draws (N, λ, μ, C, x₀) with λ bounded away from the
// slowest node's service rate, so every point of the simplex is a stable
// M/M/1 configuration and the utility stays finite along any trajectory.
func randomInstance(t *testing.T, r *rand.Rand) propertyInstance {
	t.Helper()
	n := 2 + r.Intn(7)
	access := make([]float64, n)
	service := make([]float64, n)
	minMu := math.Inf(1)
	for i := range access {
		access[i] = 0.1 + 9.9*r.Float64()
		service[i] = 1.2 + 3.8*r.Float64()
		if service[i] < minMu {
			minMu = service[i]
		}
	}
	lambda := (0.1 + 0.7*r.Float64()) * minMu
	k := 0.5 + 1.5*r.Float64()
	m, err := costmodel.NewSingleFile(access, service, lambda, k)
	if err != nil {
		t.Fatalf("drawing instance: %v", err)
	}
	x0 := make([]float64, n)
	group := make([]int, n)
	for i := range x0 {
		group[i] = i
		x0[i] = 0.05 + r.Float64()
		// Start some instances on the boundary: zero fragments exercise
		// the active-set re-admission path of PlanStep.
		if r.Float64() < 0.15 {
			x0[i] = 0
		}
	}
	if err := core.Renormalize(x0, group); err != nil {
		t.Fatalf("normalizing start: %v", err)
	}
	return propertyInstance{model: m, x0: x0}
}

// TestTheoremInvariantsRandomized runs 1000 seeded random systems under
// the dynamically computed Theorem-2 stepsize and asserts, after every
// single iteration: Σx = 1 to within 1e-12 and x ≥ 0 (Theorem 1), and
// U(x_t) ≥ U(x_{t-1}) up to 1-ulp-scale rounding (Theorem 2).
func TestTheoremInvariantsRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(1986))
	for trial := 0; trial < 1000; trial++ {
		inst := randomInstance(t, r)
		var (
			prevU    float64
			prevSet  bool
			worstSum float64
		)
		alloc, err := core.NewAllocator(inst.model,
			core.WithDynamicAlpha(0.5),
			core.WithEpsilon(1e-4),
			core.WithMaxIterations(300),
			core.WithTrace(func(it core.Iteration) {
				var sum float64
				for i, v := range it.X {
					if v < 0 || math.IsNaN(v) {
						t.Fatalf("trial %d iter %d: x[%d] = %v violates Theorem 1 non-negativity", trial, it.Index, i, v)
					}
					sum += v
				}
				if d := math.Abs(sum - 1); d > worstSum {
					worstSum = d
				}
				if prevSet {
					tol := 1e-12 * math.Max(1, math.Abs(prevU))
					if it.Utility < prevU-tol {
						t.Fatalf("trial %d iter %d: utility fell %v -> %v under the Theorem-2 stepsize bound",
							trial, it.Index, prevU, it.Utility)
					}
				}
				prevU, prevSet = it.Utility, true
			}))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := alloc.Run(context.Background(), inst.x0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if worstSum > 1e-12 {
			t.Fatalf("trial %d: Σx drifted %g from 1 after %d iterations", trial, worstSum, res.Iterations)
		}
		if res.Reason == core.StopMaxIterations && res.Iterations == 0 {
			t.Fatalf("trial %d: no iterations ran", trial)
		}
	}
}

// TestRenormalizeGroupOrderInvariant proves Renormalize is a function of
// the group as a SET: 1000 seeded random allocations, each renormalized
// under two different permutations of the same survivor group, must agree
// bit for bit — the cross-node determinism membership churn depends on —
// and pin the survivor sum to 1 within 1 ulp.
func TestRenormalizeGroupOrderInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + r.Intn(10)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * math.Pow(10, float64(r.Intn(7)-3))
			if r.Float64() < 0.2 {
				x[i] = 0
			}
		}
		group := r.Perm(n)[:1+r.Intn(n)]
		shuffled := append([]int(nil), group...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		a := append([]float64(nil), x...)
		b := append([]float64(nil), x...)
		if err := core.Renormalize(a, group); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.Renormalize(b, shuffled); err != nil {
			t.Fatalf("trial %d (shuffled): %v", trial, err)
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("trial %d: group order changed the result at x[%d]: %v vs %v (group %v vs %v)",
					trial, i, a[i], b[i], group, shuffled)
			}
		}
		var sum float64
		for _, gi := range group {
			sum += a[gi]
		}
		// Sum the canonical ascending order like Renormalize's own
		// post-condition does; 1 ulp around 1 is 2^-52.
		var ascSum float64
		for i := 0; i < n; i++ {
			for _, gi := range group {
				if gi == i {
					ascSum += a[gi]
				}
			}
		}
		if d := math.Abs(ascSum - 1); d > 0x1p-52 {
			t.Fatalf("trial %d: survivor sum %v is %g off 1 (unordered sum %v)", trial, ascSum, d, sum)
		}
	}
}
