package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

func warmPair(t *testing.T, n int, opts ...Option) (*Allocator, *WarmSolver) {
	t.Helper()
	if len(opts) == 0 {
		// α = 0.4/n puts the quad objective's per-step contraction factor
		// at |1 − 2nα| = 0.2: fast, monotone, no boundary overshoot.
		opts = []Option{WithAlpha(0.4 / float64(n)), WithEpsilon(1e-6), WithKKTCheck()}
	}
	cold, err := NewAllocator(quad{n}, opts...)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	warm, err := NewWarmSolver(cold, WarmConfig{})
	if err != nil {
		t.Fatalf("NewWarmSolver: %v", err)
	}
	return cold, warm
}

func uniformInit(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestAllocatorSolveMatchesRunWithScratch pins the Solver interface's cold
// side: Allocator.Solve is RunWithScratch under the interface name.
func TestAllocatorSolveMatchesRunWithScratch(t *testing.T) {
	cold, _ := warmPair(t, 5)
	var s Solver = cold
	init := uniformInit(5)
	got, err := s.Solve(context.Background(), init, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := cold.RunWithScratch(context.Background(), init, nil)
	if err != nil {
		t.Fatalf("RunWithScratch: %v", err)
	}
	if got.Utility != want.Utility || got.Iterations != want.Iterations || got.Reason != want.Reason {
		t.Errorf("Solve = %+v, RunWithScratch = %+v", got, want)
	}
	if d := maxAbsDiff(got.X, want.X); d != 0 {
		t.Errorf("allocations differ by %v", d)
	}
}

// TestWarmSolveFromStaleAllocation is the warm-start contract: seeded
// near the optimum, the incremental path converges to the cold solve's
// allocation in a handful of steps without falling back.
func TestWarmSolveFromStaleAllocation(t *testing.T) {
	const n = 6
	cold, warm := warmPair(t, n)
	ctx := context.Background()
	coldRes, err := cold.Run(ctx, uniformInit(n))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}

	// A stale allocation: the optimum with mass shifted between the two
	// best-endowed nodes (high indices hold the mass for quad).
	stale := append([]float64(nil), coldRes.X...)
	shift := math.Min(0.02, stale[n-2])
	stale[n-1] += shift
	stale[n-2] -= shift

	res, fellBack, err := warm.SolveWarm(ctx, stale, NewScratch())
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if fellBack {
		t.Errorf("warm solve fell back to cold for a %v-shift stale start", shift)
	}
	if !res.Converged || res.Reason != StopConverged {
		t.Errorf("warm result not converged: %+v", res)
	}
	if res.Iterations >= coldRes.Iterations {
		t.Errorf("warm took %d steps, cold took %d — no warm-start advantage", res.Iterations, coldRes.Iterations)
	}
	if d := maxAbsDiff(res.X, coldRes.X); d > 1e-5 {
		t.Errorf("warm and cold optima differ by %v", d)
	}
}

// TestWarmSolveAlreadyOptimal: re-solving from the optimum itself takes
// zero steps.
func TestWarmSolveAlreadyOptimal(t *testing.T) {
	const n = 4
	cold, warm := warmPair(t, n)
	ctx := context.Background()
	coldRes, err := cold.Run(ctx, uniformInit(n))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	res, fellBack, err := warm.SolveWarm(ctx, coldRes.X, NewScratch())
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if fellBack || res.Iterations != 0 || !res.Converged {
		t.Errorf("re-solve of the optimum: fellBack=%v iterations=%d converged=%v, want false/0/true",
			fellBack, res.Iterations, res.Converged)
	}
}

// TestWarmSolveFallsBackWhenBudgetExhausted: a distant start cannot
// converge in one step, so the solve escalates to the cold path and still
// lands on the optimum.
func TestWarmSolveFallsBackWhenBudgetExhausted(t *testing.T) {
	const n = 6
	cold, _ := warmPair(t, n)
	warm, err := NewWarmSolver(cold, WarmConfig{MaxSteps: 1})
	if err != nil {
		t.Fatalf("NewWarmSolver: %v", err)
	}
	ctx := context.Background()
	coldRes, err := cold.Run(ctx, uniformInit(n))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	far := make([]float64, n)
	far[0] = 1
	res, fellBack, err := warm.SolveWarm(ctx, far, NewScratch())
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !fellBack {
		t.Error("one-step budget from a concentrated start did not fall back")
	}
	if !res.Converged {
		t.Errorf("fallback did not converge: %+v", res)
	}
	if d := maxAbsDiff(res.X, coldRes.X); d > 1e-5 {
		t.Errorf("fallback and cold optima differ by %v", d)
	}
}

// TestWarmSolveCertification exercises the Certify hook on both sides: a
// passing certificate keeps the warm exit; a vetoing one forces the cold
// fallback even though the internal criterion held.
func TestWarmSolveCertification(t *testing.T) {
	const n = 5
	cold, _ := warmPair(t, n)
	ctx := context.Background()
	coldRes, err := cold.Run(ctx, uniformInit(n))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	stale := append([]float64(nil), coldRes.X...)
	stale[n-1] += 0.01
	stale[n-2] -= 0.01

	calls := 0
	var gotQ float64
	pass, err := NewWarmSolver(cold, WarmConfig{Certify: func(x []float64, q float64) error {
		calls++
		gotQ = q
		var sum float64
		for _, xi := range x {
			sum += xi
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("certify saw an infeasible allocation (sum %v)", sum)
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("NewWarmSolver: %v", err)
	}
	res, fellBack, err := pass.SolveWarm(ctx, stale, NewScratch())
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if calls != 1 || fellBack || !res.Converged {
		t.Errorf("passing certificate: calls=%d fellBack=%v converged=%v, want 1/false/true", calls, fellBack, res.Converged)
	}
	if math.IsNaN(gotQ) || math.IsInf(gotQ, 0) {
		t.Errorf("certify saw q = %v", gotQ)
	}

	veto, err := NewWarmSolver(cold, WarmConfig{Certify: func([]float64, float64) error {
		return errors.New("not optimal enough")
	}})
	if err != nil {
		t.Fatalf("NewWarmSolver: %v", err)
	}
	res, fellBack, err = veto.SolveWarm(ctx, stale, NewScratch())
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !fellBack {
		t.Error("vetoed certificate did not force the cold fallback")
	}
	if d := maxAbsDiff(res.X, coldRes.X); d > 1e-5 {
		t.Errorf("vetoed solve diverged from the cold optimum by %v", d)
	}
}

func TestWarmSolveInfeasibleInit(t *testing.T) {
	_, warm := warmPair(t, 4)
	bad := []float64{0.5, 0.5, 0.5, -0.5}
	if _, _, err := warm.SolveWarm(context.Background(), bad, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("negative init: err = %v, want ErrInfeasible", err)
	}
}

func TestWarmSolveCanceled(t *testing.T) {
	_, warm := warmPair(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, fellBack, err := warm.SolveWarm(ctx, uniformInit(4), nil)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if res.Reason != StopCanceled || fellBack {
		t.Errorf("canceled solve: reason=%v fellBack=%v, want canceled/false", res.Reason, fellBack)
	}
}

func TestNewWarmSolverValidation(t *testing.T) {
	if _, err := NewWarmSolver(nil, WarmConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil allocator: err = %v, want ErrBadConfig", err)
	}
	cold, _ := warmPair(t, 3)
	if _, err := NewWarmSolver(cold, WarmConfig{MaxSteps: -2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative budget: err = %v, want ErrBadConfig", err)
	}
}

// TestWarmSolveSteadyStateAllocFree pins the warm-solve hot path at zero
// heap allocations once the scratch is warm — the catalog's re-solve loop
// relies on it (satellite of the //fap:zeroalloc annotation on
// incrementalStep).
func TestWarmSolveSteadyStateAllocFree(t *testing.T) {
	const n = 32
	cold, err := NewAllocator(quad{n}, WithAlpha(0.4/n), WithEpsilon(1e-6))
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	warm, err := NewWarmSolver(cold, WarmConfig{})
	if err != nil {
		t.Fatalf("NewWarmSolver: %v", err)
	}
	ctx := context.Background()
	s := NewScratch()
	coldRes, err := cold.RunWithScratch(ctx, uniformInit(n), s)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	stale := append([]float64(nil), coldRes.X...)
	stale[n-1] += 0.005
	stale[n-2] -= 0.005
	if _, _, err := warm.SolveWarm(ctx, stale, s); err != nil {
		t.Fatalf("warm-up solve: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := warm.SolveWarm(ctx, stale, s); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm SolveWarm allocated %.1f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := warm.incrementalStep(s, 0); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("incrementalStep allocated %.1f objects per call, want 0", allocs)
	}
}
