package core

import (
	"fmt"
	"math"
)

// boundaryTol is the allocation level below which a variable counts as
// sitting on the non-negativity boundary for active-set purposes.
const boundaryTol = 1e-12

// Step is the outcome of planning one iteration over one constraint group:
// the per-variable deltas and the active set A that produced them. Deltas of
// variables outside A are zero, and the deltas always sum to zero, so
// applying a Step preserves feasibility (Theorem 1).
type Step struct {
	// Delta has one entry per variable in the group's index order.
	Delta []float64
	// Active marks, per variable in group order, membership in the
	// active set A.
	Active []bool
	// AvgMarginal is the mean marginal utility over the final active set.
	AvgMarginal float64
	// Truncation is the feasible-step scaling factor applied (1 when the
	// full step was feasible; see below).
	Truncation float64
}

// PlanStep computes the re-allocation for one constraint group following
// the paper's section 5.2 procedure:
//
//	Δx_i = α·(∂U/∂x_i − avg_{j∈A} ∂U/∂x_j),  i ∈ A
//
// x and grad are the full allocation and marginal-utility vectors; group
// lists the variable indices belonging to this constraint; alpha is the
// stepsize.
//
// The active set A starts as the whole group and is refined to a fixed
// point by the paper's steps (i)–(v): variables on the non-negativity
// boundary whose share would shrink are excluded (their allocation is
// frozen at zero), and the excluded variable with the highest marginal
// utility is re-admitted whenever it exceeds the average over A.
//
// One deliberate refinement of the paper's literal step (i): when a large
// stepsize would drive a variable with a substantial positive allocation
// below zero (e.g. the paper's own α = 0.67 run from x⁰ = (0.8, 0.1, 0.1, 0),
// whose first step asks node 1 for 1.17 of its 0.8), excluding that
// variable from A would freeze its allocation and prevent convergence.
// Instead PlanStep applies the classical feasible-direction ratio test:
// the whole step is scaled by the largest t ≤ 1 keeping every allocation
// non-negative, so the binding variable lands exactly on the boundary and
// is handled by the exclusion rule on the next iteration. Scaling the whole
// step preserves both feasibility (the deltas still sum to zero) and the
// ascent property (⟨∇U, Δx⟩ = t·α·Σ(g_i − ḡ)² ≥ 0, Lemma 1). For stepsizes
// in the regime of the paper's theorems the test never fires and the
// procedure is exactly the paper's.
//
// PlanStep is deterministic: the decentralized runtime relies on every node
// planning byte-identical steps from identical round data.
func PlanStep(x, grad []float64, group []int, alpha float64) (Step, error) {
	var step Step
	if err := PlanStepInto(&step, x, grad, group, alpha); err != nil {
		return Step{}, err
	}
	return step, nil
}

// growFloats returns s resized to n entries, reusing its backing array
// when capacity allows.
//
//fap:allocok make fires only when the buffer must grow; steady-state rounds reuse capacity, pinned by the AllocsPerRun tests
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growBools returns s resized to n entries, reusing its backing array
// when capacity allows.
//
//fap:allocok make fires only when the buffer must grow; steady-state rounds reuse capacity, pinned by the AllocsPerRun tests
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// PlanStepInto is PlanStep writing into a caller-owned Step: step.Delta
// and step.Active are reused when their capacity suffices, so a solver
// iterating over the same groups plans every step allocation-free after
// the first. On error step's contents are unspecified. The planned result
// is byte-identical to PlanStep's.
//
//fap:zeroalloc
func PlanStepInto(step *Step, x, grad []float64, group []int, alpha float64) error {
	if step == nil {
		return fmt.Errorf("%w: nil step", ErrBadConfig)
	}
	if len(x) != len(grad) {
		return fmt.Errorf("%w: len(x)=%d len(grad)=%d", ErrDimension, len(x), len(grad))
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return fmt.Errorf("%w: alpha = %v", ErrBadConfig, alpha)
	}
	m := len(group)
	if m == 0 {
		return fmt.Errorf("%w: empty constraint group", ErrBadConfig)
	}
	for _, gi := range group {
		if gi < 0 || gi >= len(x) {
			return fmt.Errorf("%w: group index %d outside dimension %d", ErrDimension, gi, len(x))
		}
		if math.IsNaN(grad[gi]) || math.IsInf(grad[gi], 0) {
			return fmt.Errorf("%w: non-finite marginal utility at variable %d", ErrDiverged, gi)
		}
	}

	step.Delta = growFloats(step.Delta, m)
	step.Active = growBools(step.Active, m)
	step.AvgMarginal = 0
	step.Truncation = 1
	for k := range step.Active {
		step.Active[k] = true
	}

	// Fixed-point refinement of the active set. Each pass either drops
	// boundary variables that would shrink, re-admits the best excluded
	// variable whose marginal utility beats the A average, or terminates.
	// Drops and re-admissions each happen at most once per variable per
	// monotone phase, so 4m+4 passes are ample; exceeding the cap means a
	// logic error, not a hard problem instance.
	for pass := 0; ; pass++ {
		if pass > 4*m+4 {
			return fmt.Errorf("%w: active-set computation did not reach a fixed point", ErrDiverged)
		}
		active := 0
		avg := 0.0
		for k, on := range step.Active {
			if on {
				active++
				avg += grad[group[k]]
			}
		}
		if active == 0 {
			// Everything sits on the boundary and wants to shrink;
			// no move is possible this iteration.
			for k := range step.Delta {
				step.Delta[k] = 0
			}
			step.AvgMarginal = math.NaN()
			return nil
		}
		avg /= float64(active)
		step.AvgMarginal = avg

		for k, on := range step.Active {
			if on {
				step.Delta[k] = alpha * (grad[group[k]] - avg)
			} else {
				step.Delta[k] = 0
			}
		}
		if active == 1 {
			// A singleton active set cannot move (its delta is zero
			// by construction); the plan is a no-op.
			return nil
		}

		// Paper step (i), boundary case: exclude variables at zero
		// whose share would shrink further.
		dropped := false
		for k, on := range step.Active {
			if on && x[group[k]] <= boundaryTol && step.Delta[k] <= 0 {
				step.Active[k] = false
				dropped = true
			}
		}
		if dropped {
			continue
		}

		// Paper steps (ii)–(iv): re-admit the excluded variable with
		// the highest marginal utility if it beats the average over A.
		best := -1
		for k, on := range step.Active {
			if !on && (best < 0 || grad[group[k]] > grad[group[best]]) {
				best = k
			}
		}
		if best >= 0 && grad[group[best]] > avg {
			step.Active[best] = true
			continue
		}
		break
	}

	// Feasible-direction ratio test: scale the step so no interior
	// variable is driven below zero.
	t := 1.0
	for k, gi := range group {
		if d := step.Delta[k]; d < 0 {
			if ratio := x[gi] / -d; ratio < t {
				t = ratio
			}
		}
	}
	if t < 1 {
		step.Truncation = t
		for k := range step.Delta {
			step.Delta[k] *= t
		}
	}
	return nil
}

// Apply adds the planned deltas for group into x in place, clamping the
// tiny negative residue float addition can leave on a variable planned to
// land exactly on the boundary.
//
//fap:zeroalloc
func (s Step) Apply(x []float64, group []int) error {
	if len(s.Delta) != len(group) {
		return fmt.Errorf("%w: step for %d variables applied to group of %d", ErrDimension, len(s.Delta), len(group))
	}
	for k, gi := range group {
		if gi < 0 || gi >= len(x) {
			return fmt.Errorf("%w: group index %d outside dimension %d", ErrDimension, gi, len(x))
		}
		x[gi] += s.Delta[k]
		if x[gi] < 0 && x[gi] > -1e-9 {
			x[gi] = 0
		}
	}
	return nil
}

// IsNoOp reports whether the step moves nothing.
func (s Step) IsNoOp() bool {
	for _, d := range s.Delta {
		if d != 0 {
			return false
		}
	}
	return true
}

// Spread returns the largest pairwise difference of marginal utilities over
// the active set, the quantity compared against ε in the termination test
// (section 5.2's UNTIL clause).
//
//fap:zeroalloc
func (s Step) Spread(grad []float64, group []int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for k, gi := range group {
		if !s.Active[k] {
			continue
		}
		g := grad[gi]
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}

// GradientSpread returns the largest pairwise difference of marginal
// utilities over an entire group, ignoring active-set membership.
//
//fap:zeroalloc
func GradientSpread(grad []float64, group []int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, gi := range group {
		g := grad[gi]
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}
