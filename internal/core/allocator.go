package core

import (
	"context"
	"fmt"
	"math"
)

// StopReason explains why Run returned.
type StopReason int

const (
	// StopConverged means the termination criterion was met: all marginal
	// utilities over each active set differ by less than ε.
	StopConverged StopReason = iota + 1
	// StopMaxIterations means the iteration budget ran out first. The
	// returned allocation is still feasible and no worse than any earlier
	// iterate (the paper's premature-termination property).
	StopMaxIterations
	// StopStalled means no group could move (active sets collapsed to
	// singletons) before the ε criterion was met.
	StopStalled
	// StopCostDelta means the oscillation-tolerant criterion fired: the
	// utility change between successive iterations fell below the
	// configured threshold (section 7.3's modified halting rule).
	StopCostDelta
	// StopCanceled means the context was canceled mid-run.
	StopCanceled
)

func (r StopReason) String() string {
	switch r {
	case StopConverged:
		return "converged"
	case StopMaxIterations:
		return "max-iterations"
	case StopStalled:
		return "stalled"
	case StopCostDelta:
		return "cost-delta"
	case StopCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Iteration is a snapshot passed to trace hooks after each completed
// iteration (and once, with Index 0, for the initial allocation).
type Iteration struct {
	// Index is the iteration number; 0 is the initial allocation.
	Index int
	// X is the allocation after this iteration. The slice is reused
	// between calls; hooks must copy it to retain it.
	X []float64
	// Utility is U(X).
	Utility float64
	// Spread is the largest marginal-utility spread over any group's
	// active set (0 for the initial snapshot).
	Spread float64
	// Alpha is the stepsize used for this iteration.
	Alpha float64
}

// Result summarizes a Run.
type Result struct {
	// X is the final allocation.
	X []float64
	// Utility is U(X).
	Utility float64
	// Iterations is the number of re-allocation steps performed.
	Iterations int
	// Reason reports why the run stopped.
	Reason StopReason
	// Converged is true when Reason is StopConverged or StopCostDelta.
	Converged bool
}

// Option configures an Allocator.
type Option func(*Allocator)

// WithAlpha sets the fixed stepsize α (default 0.1).
func WithAlpha(alpha float64) Option {
	return func(a *Allocator) { a.alpha = alpha }
}

// WithEpsilon sets the termination threshold ε on the marginal-utility
// spread (default 1e-3, the paper's experimental setting).
func WithEpsilon(eps float64) Option {
	return func(a *Allocator) { a.epsilon = eps }
}

// WithMaxIterations bounds the number of iterations (default 10000).
func WithMaxIterations(n int) Option {
	return func(a *Allocator) { a.maxIter = n }
}

// WithTrace registers a hook invoked after every iteration. The hook runs
// synchronously on the solver goroutine.
func WithTrace(fn func(Iteration)) Option {
	return func(a *Allocator) { a.trace = fn }
}

// WithDynamicAlpha recomputes the stepsize each iteration from the
// Theorem-2 bound evaluated at the current gradient and curvature
// (the appendix's closing remark: "we could get a better value for α if we
// dynamically calculate it at each iteration"). The objective must
// implement Curvature. safety in (0,1] scales the bound; values near 1
// step aggressively, small values conservatively.
//
// The bound is evaluated at the pre-step point, so a step large enough to
// leave its validity region could still lower U. Run guards against this:
// whenever a dynamically sized step decreases the utility it backtracks —
// halving α and replanning from the same iterate — until the step is an
// ascent again, making U non-decreasing at every iteration (the Theorem-2
// contract, property-tested by TestTheoremInvariantsRandomized).
func WithDynamicAlpha(safety float64) Option {
	return func(a *Allocator) { a.dynamicSafety = safety }
}

// AdaptAlphaConfig tunes the oscillation-triggered stepsize decay used for
// discontinuous objectives such as the multiple-copy ring (section 7.3).
type AdaptAlphaConfig struct {
	// Patience is the number of utility decreases tolerated before α is
	// reduced.
	Patience int
	// Factor multiplies α at each reduction; must be in (0, 1).
	Factor float64
	// MinAlpha stops further reductions.
	MinAlpha float64
	// CostDelta, when positive, stops the run once |ΔU| between
	// successive iterations falls below it (the paper's modified
	// termination rule for oscillatory problems).
	CostDelta float64
}

// WithAdaptiveAlpha enables section 7.3's oscillation handling: when the
// utility decreases Patience times since the last reduction, α is multiplied
// by Factor; the run additionally stops when |ΔU| < CostDelta.
func WithAdaptiveAlpha(cfg AdaptAlphaConfig) Option {
	return func(a *Allocator) { a.adapt = &cfg }
}

// WithKKTCheck additionally requires, for termination, that every variable
// held at zero outside the active set has a marginal utility of at most the
// active-set average plus ε (the boundary half of the optimality conditions
// in section 5.3). The paper's own termination test omits this; it is
// implied by the active-set re-admission rule but checking it makes the
// convergence claim explicit.
func WithKKTCheck() Option {
	return func(a *Allocator) { a.kktCheck = true }
}

// Allocator runs the decentralized file allocation iteration in-process.
// It is the centralized counterpart of the agent runtime: both plan steps
// with PlanStep, so their trajectories are identical.
type Allocator struct {
	obj     Objective
	groups  [][]int
	alpha   float64
	epsilon float64
	maxIter int
	trace   func(Iteration)

	dynamicSafety float64
	adapt         *AdaptAlphaConfig
	kktCheck      bool
}

// NewAllocator returns a solver for the given objective.
func NewAllocator(obj Objective, opts ...Option) (*Allocator, error) {
	if obj == nil {
		return nil, fmt.Errorf("%w: nil objective", ErrBadConfig)
	}
	a := &Allocator{
		obj:     obj,
		alpha:   0.1,
		epsilon: 1e-3,
		maxIter: 10000,
	}
	for _, opt := range opts {
		opt(a)
	}
	switch {
	case a.alpha <= 0 || math.IsNaN(a.alpha):
		return nil, fmt.Errorf("%w: alpha = %v", ErrBadConfig, a.alpha)
	case a.epsilon <= 0:
		return nil, fmt.Errorf("%w: epsilon = %v", ErrBadConfig, a.epsilon)
	case a.maxIter < 1:
		return nil, fmt.Errorf("%w: max iterations = %d", ErrBadConfig, a.maxIter)
	case a.dynamicSafety < 0 || a.dynamicSafety > 1:
		return nil, fmt.Errorf("%w: dynamic-alpha safety = %v", ErrBadConfig, a.dynamicSafety)
	}
	if a.dynamicSafety > 0 {
		if _, ok := obj.(Curvature); !ok {
			return nil, fmt.Errorf("%w: dynamic alpha requires a Curvature objective", ErrBadConfig)
		}
	}
	if a.adapt != nil {
		if a.adapt.Factor <= 0 || a.adapt.Factor >= 1 {
			return nil, fmt.Errorf("%w: adaptive-alpha factor = %v", ErrBadConfig, a.adapt.Factor)
		}
		if a.adapt.Patience < 1 {
			return nil, fmt.Errorf("%w: adaptive-alpha patience = %d", ErrBadConfig, a.adapt.Patience)
		}
	}
	if g, ok := obj.(Grouped); ok {
		a.groups = g.Groups()
	}
	if len(a.groups) == 0 {
		all := make([]int, obj.Dim())
		for i := range all {
			all[i] = i
		}
		a.groups = [][]int{all}
	}
	if err := validateGroups(a.groups, obj.Dim()); err != nil {
		return nil, err
	}
	return a, nil
}

func validateGroups(groups [][]int, dim int) error {
	seen := make([]bool, dim)
	for _, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("%w: empty constraint group", ErrBadConfig)
		}
		for _, gi := range g {
			if gi < 0 || gi >= dim {
				return fmt.Errorf("%w: group index %d outside dimension %d", ErrDimension, gi, dim)
			}
			if seen[gi] {
				return fmt.Errorf("%w: variable %d appears in two groups", ErrBadConfig, gi)
			}
			seen[gi] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: variable %d belongs to no group", ErrBadConfig, i)
		}
	}
	return nil
}

// CheckFeasible verifies that x has the objective's dimension, is
// non-negative, and that each constraint group sums to the corresponding
// total (within a small tolerance).
func (a *Allocator) CheckFeasible(x []float64, totals []float64) error {
	if len(x) != a.obj.Dim() {
		return fmt.Errorf("%w: allocation has %d entries for dimension %d", ErrDimension, len(x), a.obj.Dim())
	}
	if len(totals) != len(a.groups) {
		return fmt.Errorf("%w: %d totals for %d groups", ErrDimension, len(totals), len(a.groups))
	}
	for i, v := range x {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: x[%d] = %v", ErrInfeasible, i, v)
		}
	}
	for gi, g := range a.groups {
		var sum float64
		for _, idx := range g {
			sum += x[idx]
		}
		if math.Abs(sum-totals[gi]) > 1e-9*math.Max(1, totals[gi]) {
			return fmt.Errorf("%w: group %d sums to %v, want %v", ErrInfeasible, gi, sum, totals[gi])
		}
	}
	return nil
}

// Scratch holds every buffer a solve needs — the working allocation, the
// gradient, per-group step planning buffers, and the dynamic-α Hessian —
// so repeated solves reuse one set of allocations. The zero value is
// ready to use; buffers grow on first use and are reused (or regrown)
// by later runs of any dimension. A Scratch is single-goroutine: sweeps
// build one per worker (sweep.RunWithScratch pairs naturally with
// NewScratch).
type Scratch struct {
	x, grad, hess, xPrev, totals []float64
	steps                        []Step
}

// NewScratch returns an empty Scratch. It exists so callers can pass the
// constructor itself where a factory is expected (e.g.
// sweep.RunWithScratch(ctx, n, workers, core.NewScratch, fn)).
func NewScratch() *Scratch { return &Scratch{} }

// Run iterates from the initial allocation init until convergence, stall,
// cancellation, or the iteration budget. init is not modified. Totals are
// inferred from init: each group conserves its initial sum, so init must
// already be feasible for the intended problem (e.g. sum 1 for a single
// file, m for m copies).
func (a *Allocator) Run(ctx context.Context, init []float64) (Result, error) {
	// A fresh scratch per call keeps Run's historical contract: the
	// returned Result.X is exclusively the caller's.
	return a.RunWithScratch(ctx, init, &Scratch{})
}

// RunWithScratch is Run drawing every buffer from s, so a caller solving
// many instances (a stepsize sweep, a grid search) allocates the solve
// machinery once and reuses it: after the first call on a given problem
// shape, subsequent calls allocate nothing (asserted by
// TestRunWithScratchSteadyStateAllocFree). A nil s runs with a private
// scratch, equivalent to Run.
//
// The returned Result.X aliases s and is overwritten by the next run
// using the same scratch — copy it to retain it. Results are
// byte-identical to Run's for the same inputs.
func (a *Allocator) RunWithScratch(ctx context.Context, init []float64, s *Scratch) (Result, error) {
	if s == nil {
		s = &Scratch{}
	}
	totals := growFloats(s.totals, len(a.groups))
	s.totals = totals
	for gi, g := range a.groups {
		totals[gi] = 0
		for _, idx := range g {
			if idx < len(init) {
				totals[gi] += init[idx]
			}
		}
	}
	if err := a.CheckFeasible(init, totals); err != nil {
		return Result{}, err
	}

	x := growFloats(s.x, len(init))
	s.x = x
	copy(x, init)
	grad := growFloats(s.grad, len(x))
	s.grad = grad
	for i := range grad {
		grad[i] = 0
	}
	alpha := a.alpha

	// All per-iteration scratch comes from s, so the inner loop below
	// runs allocation-free (asserted by TestRunInnerLoopAllocFree):
	// PlanStepInto reuses each group's Delta/Active buffers — growing
	// them in place when a larger group appears — and dynamicAlpha
	// reuses hess. Run stays reentrant because each call owns its
	// scratch; sharing one Scratch across concurrent runs is the
	// caller's bug.
	if cap(s.steps) < len(a.groups) {
		steps := make([]Step, len(a.groups))
		copy(steps, s.steps)
		s.steps = steps
	} else {
		s.steps = s.steps[:len(a.groups)]
	}
	steps := s.steps
	var hess, xPrev []float64
	if a.dynamicSafety > 0 {
		hess = growFloats(s.hess, len(x))
		s.hess = hess
		xPrev = growFloats(s.xPrev, len(x))
		s.xPrev = xPrev
		for i := range hess {
			hess[i] = 0
			xPrev[i] = 0
		}
	}

	u, err := a.obj.Utility(x)
	if err != nil {
		return Result{}, fmt.Errorf("core: evaluating initial utility: %w", err)
	}
	if a.trace != nil {
		a.trace(Iteration{Index: 0, X: x, Utility: u, Alpha: alpha})
	}

	decreases := 0
	prevU := u
	for iter := 1; iter <= a.maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: StopCanceled}, nil
		}
		if err := a.obj.Gradient(grad, x); err != nil {
			return Result{}, fmt.Errorf("core: gradient at iteration %d: %w", iter, err)
		}
		if a.dynamicSafety > 0 {
			dyn, err := a.dynamicAlpha(x, grad, hess)
			if err != nil {
				return Result{}, fmt.Errorf("core: dynamic alpha at iteration %d: %w", iter, err)
			}
			if dyn > 0 {
				alpha = dyn
			}
		}

		converged := true
		movable := false
		spread := 0.0
		for gi, g := range a.groups {
			if err := PlanStepInto(&steps[gi], x, grad, g, alpha); err != nil {
				return Result{}, fmt.Errorf("core: planning iteration %d: %w", iter, err)
			}
			st := steps[gi]
			sp := st.Spread(grad, g)
			if sp > spread {
				spread = sp
			}
			if sp >= a.epsilon {
				converged = false
			} else if a.kktCheck && !kktHolds(st, grad, x, g, a.epsilon) {
				converged = false
			}
			for _, d := range st.Delta {
				if d != 0 {
					movable = true
				}
			}
		}
		if converged {
			return Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: StopConverged, Converged: true}, nil
		}
		if !movable {
			return Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: StopStalled}, nil
		}
		if xPrev != nil {
			copy(xPrev, x)
		}
		for gi, g := range a.groups {
			if err := steps[gi].Apply(x, g); err != nil {
				return Result{}, fmt.Errorf("core: applying iteration %d: %w", iter, err)
			}
		}

		u, err := a.obj.Utility(x)
		if err != nil {
			if xPrev == nil {
				return Result{}, fmt.Errorf("core: utility at iteration %d: %w", iter, err)
			}
			// An overshot step can leave the iterate outside the model's
			// domain entirely (a queue driven past its service rate has
			// infinite cost, so Utility errors rather than returning a
			// number). Treat it as a utility of -Inf: the backtracking
			// guard below halves α from the saved iterate until the step
			// lands back inside the domain.
			u = math.Inf(-1)
		}
		// Theorem-2 backtracking guard, dynamic stepsize only: the bound is
		// evaluated at the pre-step point, and M/M/1 curvature grows along
		// the step, so a large move can overshoot the bound's validity region
		// and lower U. Halving α — replanning and reapplying from the saved
		// iterate — restores the monotone-ascent contract WithDynamicAlpha
		// documents; trajectories that never overshoot are untouched.
		if xPrev != nil && u < prevU {
			for try := 0; try < 48 && u < prevU; try++ {
				alpha /= 2
				copy(x, xPrev)
				for gi, g := range a.groups {
					if err := PlanStepInto(&steps[gi], x, grad, g, alpha); err != nil {
						return Result{}, fmt.Errorf("core: replanning iteration %d: %w", iter, err)
					}
					if err := steps[gi].Apply(x, g); err != nil {
						return Result{}, fmt.Errorf("core: reapplying iteration %d: %w", iter, err)
					}
				}
				if u, err = a.obj.Utility(x); err != nil {
					u = math.Inf(-1) // still outside the domain: keep halving
				}
			}
			if u < prevU {
				// No stepsize makes representable progress: hold the last
				// good iterate rather than accept a descent.
				copy(x, xPrev)
				return Result{X: x, Utility: prevU, Iterations: iter - 1, Reason: StopStalled}, nil
			}
		}
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return Result{}, fmt.Errorf("%w: utility %v at iteration %d", ErrDiverged, u, iter)
		}
		if a.trace != nil {
			a.trace(Iteration{Index: iter, X: x, Utility: u, Spread: spread, Alpha: alpha})
		}

		if a.adapt != nil {
			if u < prevU {
				decreases++
				if decreases >= a.adapt.Patience {
					decreases = 0
					if next := alpha * a.adapt.Factor; next >= a.adapt.MinAlpha {
						alpha = next
					}
				}
			}
			if a.adapt.CostDelta > 0 && math.Abs(u-prevU) < a.adapt.CostDelta {
				return Result{X: x, Utility: u, Iterations: iter, Reason: StopCostDelta, Converged: true}, nil
			}
		}
		prevU = u
	}
	return Result{X: x, Utility: prevU, Iterations: a.maxIter, Reason: StopMaxIterations}, nil
}

// kktHolds reports whether every variable excluded from the active set and
// held at (numerically) zero satisfies the boundary optimality condition
// ∂U/∂x_i ≤ q + ε.
//
//fap:zeroalloc
func kktHolds(st Step, grad, x []float64, group []int, eps float64) bool {
	for k, gi := range group {
		if st.Active[k] {
			continue
		}
		if x[gi] <= 1e-12 && grad[gi] > st.AvgMarginal+eps {
			return false
		}
	}
	return true
}

// dynamicAlpha evaluates the Theorem-2 expression
//
//	α < 2·Σ g_i(g_i − ḡ) / |Σ h_i (g_i − ḡ)²|
//
// at the current point, scaled by the configured safety factor. hess is
// caller-owned scratch of len(x) entries. It returns 0 when the
// expression is degenerate (already converged or flat).
//
//fap:zeroalloc
func (a *Allocator) dynamicAlpha(x, grad, hess []float64) (float64, error) {
	curv := a.obj.(Curvature) // checked in NewAllocator
	if err := curv.SecondDerivative(hess, x); err != nil {
		return 0, err
	}
	var num, den float64
	for _, g := range a.groups {
		var avg float64
		for _, gi := range g {
			avg += grad[gi]
		}
		avg /= float64(len(g))
		for _, gi := range g {
			dev := grad[gi] - avg
			num += dev * dev // Lemma 1: Σ g(g−ḡ) = Σ (g−ḡ)²
			den += hess[gi] * dev * dev
		}
	}
	den = math.Abs(den)
	if den < 1e-300 || num <= 0 {
		return 0, nil
	}
	return a.dynamicSafety * 2 * num / den, nil
}
