package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestRenormalizeSumExactWithinOneUlp is the Theorem-1 property test: over
// many seeded random allocations and survivor groups, the renormalized
// group sums to 1 within 1 ulp and everything outside the group is zero.
func TestRenormalizeSumExactWithinOneUlp(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	ulp := math.Nextafter(1, 2) - 1
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 2
		}
		// A random nonempty survivor subset, in random order.
		perm := rng.Perm(n)
		group := perm[:1+rng.Intn(n)]
		if err := Renormalize(x, group); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inGroup := make(map[int]bool, len(group))
		for _, gi := range group {
			inGroup[gi] = true
		}
		var sum float64
		for i, xi := range x {
			if !inGroup[i] {
				if xi != 0 {
					t.Fatalf("trial %d: x[%d] = %v outside group", trial, i, xi)
				}
				continue
			}
			if xi < 0 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, i, xi)
			}
			sum += xi
		}
		if math.Abs(sum-1) > ulp {
			t.Fatalf("trial %d: Σx = %v, off by %v > 1 ulp", trial, sum, sum-1)
		}
	}
}

func TestRenormalizeZeroMassGoesToLowestIndex(t *testing.T) {
	x := []float64{0.5, 0, 0, 0.5}
	if err := Renormalize(x, []int{2, 1}); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestRenormalizeRejectsBadInput(t *testing.T) {
	if err := Renormalize([]float64{1, 0}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty group = %v, want ErrBadConfig", err)
	}
	if err := Renormalize([]float64{1, 0}, []int{0, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("out-of-range index = %v, want ErrDimension", err)
	}
	if err := Renormalize([]float64{1, 0}, []int{0, 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate index = %v, want ErrBadConfig", err)
	}
	if err := Renormalize([]float64{-0.5, 1}, []int{0, 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("negative fragment = %v, want ErrInfeasible", err)
	}
	if err := Renormalize([]float64{math.NaN(), 1}, []int{0, 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("NaN fragment = %v, want ErrInfeasible", err)
	}
}

func TestRenormalizeIsDeterministic(t *testing.T) {
	a := []float64{0.3, 0.2, 0.1, 0.4}
	b := append([]float64(nil), a...)
	if err := Renormalize(a, []int{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := Renormalize(b, []int{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestAscentNonNegativeOnPlannedSteps is the Theorem-2 certificate: the
// step PlanStep constructs always predicts ΔU ≥ 0 over its own group,
// whatever subset the quorum produced.
func TestAscentNonNegativeOnPlannedSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(10)
		x := make([]float64, n)
		grad := make([]float64, n)
		var sum float64
		for i := range x {
			x[i] = rng.Float64()
			sum += x[i]
			grad[i] = -5 * rng.Float64()
		}
		for i := range x {
			x[i] /= sum
		}
		perm := rng.Perm(n)
		group := perm[:2+rng.Intn(n-1)]
		step, err := PlanStep(x, grad, group, 0.1+rng.Float64())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		du, err := Ascent(grad, group, step)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if du < 0 {
			t.Fatalf("trial %d: planned step predicts ΔU = %v < 0", trial, du)
		}
	}
}

func TestAscentRejectsShapeMismatch(t *testing.T) {
	s := Step{Delta: []float64{1, -1}}
	if _, err := Ascent([]float64{1, 2, 3}, []int{0, 1, 2}, s); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatched step = %v, want ErrDimension", err)
	}
	if _, err := Ascent([]float64{1}, []int{0, 5}, s); !errors.Is(err, ErrDimension) {
		t.Errorf("out-of-range group = %v, want ErrDimension", err)
	}
}
