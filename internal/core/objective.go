// Package core implements the paper's primary contribution: the
// resource-directed, decentralized, iterative file allocation algorithm of
// Kurose & Simha (section 5), together with its active-set procedure,
// convergence criteria, and the adaptive stepsize control used for the
// multiple-copy extension (section 7.3).
//
// The algorithm maximizes a concave system-wide utility U(x) over
// allocations x that conserve the total amount of resource. Each iteration
// moves resource toward variables whose marginal utility ∂U/∂x_i is above
// the average and away from those below it:
//
//	Δx_i = α · (∂U/∂x_i − avg_{j∈A} ∂U/∂x_j)
//
// which preserves feasibility (Theorem 1), increases utility monotonically
// for α under the Theorem-2 bound, and converges to the KKT point where all
// marginal utilities on the support are equal.
package core

import "errors"

// Objective is a differentiable system-wide utility over allocations.
// Implementations are provided by the costmodel and multicopy packages; any
// continuous resource allocation problem can supply its own (section 5.4:
// "the optimization algorithm itself is very general in nature").
type Objective interface {
	// Dim returns the number of allocation variables.
	Dim() int
	// Utility returns U(x), the quantity the algorithm maximizes. For the
	// paper's cost models this is the negative of the expected access
	// cost (eq. 2).
	Utility(x []float64) (float64, error)
	// Gradient fills grad with the marginal utilities ∂U/∂x_i evaluated
	// at x. len(grad) == len(x) == Dim().
	Gradient(grad, x []float64) error
}

// Curvature is an optional extension exposing the diagonal of the Hessian,
// ∂²U/∂x_i². The paper's utility has no cross partials (Theorem 2), so the
// diagonal is the whole Hessian. It enables the dynamically computed
// Theorem-2 stepsize and the second-derivative algorithm of section 8.2.
type Curvature interface {
	// SecondDerivative fills hess with ∂²U/∂x_i² evaluated at x.
	SecondDerivative(hess, x []float64) error
}

// Grouped is an optional extension for objectives with more than one
// conservation constraint. Each group of variable indices conserves its own
// total (section 5.4's multi-file extension: Σ_i x_i^j = 1 per file j).
// Objectives without this extension have a single group covering all
// variables.
type Grouped interface {
	// Groups returns the constraint groups as index slices. Every
	// variable must belong to exactly one group. Callers must not
	// mutate the returned slices.
	Groups() [][]int
}

// Sentinel errors returned by the solver and objectives.
var (
	// ErrInfeasible reports an initial allocation that violates the
	// conservation constraint or non-negativity.
	ErrInfeasible = errors.New("core: infeasible allocation")
	// ErrUnstable reports an allocation that drives a queue beyond its
	// capacity (μ ≤ λ·x), where the M/M/1 delay is undefined.
	ErrUnstable = errors.New("core: queueing model unstable at allocation")
	// ErrDiverged reports an iteration whose utility became NaN/Inf or
	// oscillated without bound.
	ErrDiverged = errors.New("core: iteration diverged")
	// ErrBadConfig reports invalid solver options.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrDimension reports mismatched slice lengths.
	ErrDimension = errors.New("core: dimension mismatch")
)
