package core

import (
	"math"
	"testing"
)

// FuzzPlanStep feeds arbitrary 4-variable instances to the step planner:
// whatever it accepts must produce zero-sum deltas that keep the
// allocation non-negative and never decrease the linearized utility.
func FuzzPlanStep(f *testing.F) {
	f.Add(0.8, 0.1, 0.1, 0.0, -5.0, -2.7, -2.7, -2.6, 0.67)
	f.Add(0.25, 0.25, 0.25, 0.25, -1.0, -2.0, -3.0, -4.0, 0.1)
	f.Add(1.0, 0.0, 0.0, 0.0, -1.0, -1.0, -1.0, -1.0, 10.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 0.5)

	f.Fuzz(func(t *testing.T, x0, x1, x2, x3, g0, g1, g2, g3, alpha float64) {
		x := []float64{x0, x1, x2, x3}
		grad := []float64{g0, g1, g2, g3}
		// Sanitize into the planner's documented domain: the planner
		// requires a non-negative allocation, finite gradients, and a
		// positive finite alpha; anything else must be rejected with an
		// error (also exercised here).
		valid := !(alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0))
		for _, v := range grad {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				valid = false
			}
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				// Clamp: PlanStep does not validate x signs itself
				// (the solver does); keep the fuzz inside the
				// non-negative domain.
				x[i] = math.Abs(v)
				if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
					x[i] = 0
				}
			}
		}
		st, err := PlanStep(x, grad, []int{0, 1, 2, 3}, alpha)
		if !valid {
			if err == nil {
				t.Fatalf("invalid input accepted: x=%v g=%v α=%v", x, grad, alpha)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid input rejected: %v (x=%v g=%v α=%v)", err, x, grad, alpha)
		}
		var sum, dot float64
		for i, d := range st.Delta {
			sum += d
			dot += grad[i] * d
			if after := x[i] + d; after < -1e-9*(1+x[i]) {
				t.Fatalf("variable %d driven to %g (x=%v Δ=%v)", i, after, x, st.Delta)
			}
		}
		scale := 0.0
		for _, d := range st.Delta {
			scale += math.Abs(d)
		}
		if math.Abs(sum) > 1e-9*(1+scale) {
			t.Fatalf("deltas sum to %g (Δ=%v)", sum, st.Delta)
		}
		if dot < -1e-6*(1+scale) {
			t.Fatalf("descent direction: ⟨g,Δ⟩ = %g", dot)
		}
	})
}
