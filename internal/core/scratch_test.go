package core

import (
	"context"
	"reflect"
	"testing"
)

// seqInit returns an n-dim feasible start with all mass on variable 0.
func seqInit(n int) []float64 {
	init := make([]float64, n)
	init[0] = 1
	return init
}

// TestRunWithScratchMatchesRun requires byte-identical results from the
// scratch-reusing path and plain Run across configurations — fixed α,
// dynamic α, adaptive decay — and across repeated reuse of one scratch,
// including runs of different dimensions through the same scratch.
func TestRunWithScratchMatchesRun(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		obj  Objective
		init []float64
		opts []Option
	}{
		{"fixed-alpha", quad{n: 8}, seqInit(8), []Option{WithAlpha(0.01), WithEpsilon(1e-9)}},
		{"dynamic-alpha", quad{n: 8}, seqInit(8), []Option{WithAlpha(0.001), WithEpsilon(1e-9), WithDynamicAlpha(0.5)}},
		{"adaptive", quad{n: 6}, seqInit(6), []Option{WithAlpha(0.02), WithEpsilon(1e-9),
			WithAdaptiveAlpha(AdaptAlphaConfig{Patience: 2, Factor: 0.5, MinAlpha: 1e-6, CostDelta: 1e-12})}},
		{"smaller-dim-after-larger", quad{n: 4}, seqInit(4), []Option{WithAlpha(0.05), WithEpsilon(1e-9)}},
		{"kkt-check", quad{n: 8}, seqInit(8), []Option{WithAlpha(0.01), WithEpsilon(1e-9), WithKKTCheck()}},
	}
	scratch := NewScratch() // one scratch reused across all cases
	for _, tc := range cases {
		alloc, err := NewAllocator(tc.obj, tc.opts...)
		if err != nil {
			t.Fatalf("%s: NewAllocator: %v", tc.name, err)
		}
		want, err := alloc.Run(ctx, tc.init)
		if err != nil {
			t.Fatalf("%s: Run: %v", tc.name, err)
		}
		for rep := 0; rep < 3; rep++ { // reuse must not drift
			got, err := alloc.RunWithScratch(ctx, tc.init, scratch)
			if err != nil {
				t.Fatalf("%s rep %d: RunWithScratch: %v", tc.name, rep, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s rep %d: RunWithScratch diverged from Run:\n run:     %+v\n scratch: %+v",
					tc.name, rep, want, got)
			}
		}
	}
}

// TestRunWithScratchNilScratch pins the nil-scratch convenience: it must
// behave exactly like Run.
func TestRunWithScratchNilScratch(t *testing.T) {
	obj := quad{n: 8}
	alloc, err := NewAllocator(obj, WithAlpha(0.01), WithEpsilon(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := alloc.Run(ctx, seqInit(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := alloc.RunWithScratch(ctx, seqInit(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("nil scratch diverged from Run:\n run: %+v\n nil: %+v", want, got)
	}
}

// TestRunWithScratchResultAliasesScratch documents the aliasing contract:
// the next run through the same scratch overwrites the previous Result.X,
// so retaining callers must copy.
func TestRunWithScratchResultAliasesScratch(t *testing.T) {
	obj := quad{n: 8}
	alloc, err := NewAllocator(obj, WithAlpha(0.01), WithEpsilon(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s := NewScratch()
	first, err := alloc.RunWithScratch(ctx, seqInit(8), s)
	if err != nil {
		t.Fatal(err)
	}
	retained := first.X
	snapshot := append([]float64(nil), retained...)
	// A second run from a different start must overwrite the retained
	// slice — that is the point of the scratch.
	other := make([]float64, 8)
	for i := range other {
		other[i] = 1.0 / 8
	}
	if _, err := alloc.RunWithScratch(ctx, other, s); err != nil {
		t.Fatal(err)
	}
	if &retained[0] != &s.x[0] {
		t.Fatalf("Result.X does not alias the scratch buffer")
	}
	_ = snapshot // the copy is how a caller would retain the first result
}

// TestRunWithScratchSteadyStateAllocFree extends the zero-allocation
// discipline across whole solves: once the scratch is warm, a full
// RunWithScratch — feasibility check, gradient evaluations, step
// planning, application, termination test — performs zero heap
// allocations, for the fixed-α and the dynamic-α configuration.
func TestRunWithScratchSteadyStateAllocFree(t *testing.T) {
	obj := quad{n: 16}
	init := seqInit(16)
	ctx := context.Background()
	configs := []struct {
		name string
		opts []Option
	}{
		{"fixed-alpha", []Option{WithAlpha(0.001), WithEpsilon(1e-12), WithMaxIterations(60)}},
		{"dynamic-alpha", []Option{WithAlpha(0.0001), WithEpsilon(1e-12), WithDynamicAlpha(0.001), WithMaxIterations(60)}},
	}
	for _, cfg := range configs {
		alloc, err := NewAllocator(obj, cfg.opts...)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		s := NewScratch()
		// Warm-up sizes every buffer.
		if _, err := alloc.RunWithScratch(ctx, init, s); err != nil {
			t.Fatalf("%s: warm-up: %v", cfg.name, err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := alloc.RunWithScratch(ctx, init, s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm RunWithScratch allocated %.1f objects per solve, want 0", cfg.name, allocs)
		}
	}
}

// TestRunWithScratchRejectsInfeasible keeps the validation path intact
// through the scratch refactor.
func TestRunWithScratchRejectsInfeasible(t *testing.T) {
	obj := quad{n: 4}
	alloc, err := NewAllocator(obj, WithAlpha(0.01))
	if err != nil {
		t.Fatal(err)
	}
	bad := []float64{0.5, -0.5, 0.5, 0.5}
	if _, err := alloc.RunWithScratch(context.Background(), bad, NewScratch()); err == nil {
		t.Error("negative allocation accepted")
	}
	short := []float64{1, 0}
	if _, err := alloc.RunWithScratch(context.Background(), short, NewScratch()); err == nil {
		t.Error("wrong-dimension allocation accepted")
	}
}
