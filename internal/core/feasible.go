package core

import (
	"fmt"
	"math"
	"sort"
)

// Renormalize rescales the allocation mass held by the variables in group
// so they sum to exactly 1, and zeroes every variable outside the group —
// the feasibility-preserving redistribution step of membership churn: when
// a node departs, the survivors (the group) absorb its fraction in
// proportion to their current holdings, so Theorem 1's Σx_i = 1 invariant
// is restored on the reduced support without disturbing the relative
// allocation the iteration has built up.
//
// The proportional scale is followed by an exact residual fix-up on the
// largest surviving variable, so the post-condition Σ_{i∈group} x_i = 1
// holds to within 1 ulp (property-tested). Variables already at zero stay
// at zero — they re-enter through the active-set mechanics of PlanStep if
// the optimum wants mass there.
//
// When every surviving variable is zero (nothing to scale), the whole unit
// of mass is placed on the lowest-indexed group member; every caller on
// every node makes this identical deterministic choice.
func Renormalize(x []float64, group []int) error {
	if len(group) == 0 {
		return fmt.Errorf("%w: empty survivor group", ErrBadConfig)
	}
	seen := make(map[int]bool, len(group))
	for _, gi := range group {
		if gi < 0 || gi >= len(x) {
			return fmt.Errorf("%w: group index %d outside dimension %d", ErrDimension, gi, len(x))
		}
		if seen[gi] {
			return fmt.Errorf("%w: duplicate group index %d", ErrBadConfig, gi)
		}
		seen[gi] = true
		if x[gi] < 0 || math.IsNaN(x[gi]) || math.IsInf(x[gi], 0) {
			return fmt.Errorf("%w: x[%d] = %v", ErrInfeasible, gi, x[gi])
		}
	}
	// ALL arithmetic — including the pre-scale sum — iterates in ascending
	// index order, whatever order the caller listed the group in: float
	// summation rounds per-order, and the 1-ulp post-condition (and its
	// identical outcome on every node) requires one canonical order.
	// Summing in caller order would make the divisor, and so every rescaled
	// value, differ by an ulp between nodes that list the same survivor set
	// differently (caught by TestRenormalizeGroupOrderInvariant).
	asc := append([]int(nil), group...)
	sort.Ints(asc)
	var sum float64
	for _, gi := range asc {
		sum += x[gi]
	}
	for i := range x {
		if !seen[i] {
			x[i] = 0
		}
	}
	if sum == 0 {
		x[asc[0]] = 1
		return nil
	}
	for _, gi := range asc {
		x[gi] /= sum
	}
	// Exact residual fix-up: float division leaves the rescaled sum a few
	// ulps off 1; absorb the residual into the largest survivor (the one
	// whose relative perturbation is smallest), iterating to the fixed
	// point where the ascending-order sum is exactly 1 — or the residual
	// is too small to change the survivor, which bounds it under 1 ulp.
	for pass := 0; pass < 32; pass++ {
		var total float64
		for _, gi := range asc {
			total += x[gi]
		}
		if total == 1 {
			return nil
		}
		big := asc[0]
		for _, gi := range asc {
			if x[gi] > x[big] {
				big = gi
			}
		}
		prev := x[big]
		x[big] += 1 - total
		if x[big] < 0 {
			return fmt.Errorf("%w: renormalization residual %v exceeds largest survivor", ErrInfeasible, 1-total)
		}
		if x[big] == prev {
			return nil // correction below representable precision
		}
	}
	return nil
}

// Ascent reports the predicted objective change ⟨∇U, Δx⟩ of a planned step
// over its group — the Theorem-2 monotonicity certificate. PlanStep's
// construction makes it t·α·Σ(g−ḡ)² ≥ 0; quorum rounds re-check it before
// applying a step planned from a partial report set and reject any step
// that would decrease U.
func Ascent(grad []float64, group []int, s Step) (float64, error) {
	if len(s.Delta) != len(group) {
		return 0, fmt.Errorf("%w: step for %d variables over group of %d", ErrDimension, len(s.Delta), len(group))
	}
	var du float64
	for k, gi := range group {
		if gi < 0 || gi >= len(grad) {
			return 0, fmt.Errorf("%w: group index %d outside dimension %d", ErrDimension, gi, len(grad))
		}
		du += grad[gi] * s.Delta[k]
	}
	return du, nil
}
